(* Sharded KV quickstart (ISSUE 7): the first post-paper workload, judged
   end to end by the generic linearizability checker instead of bespoke
   spec assertions.

   1. Place shards on a consistent-hash ring and watch a node join move
      some shards and leave others put.
   2. Record a tiny client history by hand and ask the checker about it.
   3. Hunt a seeded rebalancing bug under crash+delay faults on the
      virtual clock; the violation the engine reports *is* the checker's
      verdict on the recorded history.

     dune exec examples/sharded_kv.exe *)

let () =
  let open Psharp in
  (* 1. Consistent hashing: a join is a rebalance, not a reshuffle. *)
  Format.printf "=== ring placement across a join ===@.";
  let before = Shardkv.Ring.create ~n_shards:4 ~replicas:2 [ "N0"; "N1" ] in
  let after = Shardkv.Ring.add_node before "N2" in
  Format.printf "before: %s@.after:  %s@.moved shards: [%s]@.@."
    (Shardkv.Ring.to_string before)
    (Shardkv.Ring.to_string after)
    (String.concat "; "
       (List.map string_of_int (Shardkv.Ring.moved_shards ~before ~after)));

  (* 2. The checker on a hand-written history: a write whose effect is
     seen by one read and then un-seen by a later one has no explaining
     order. *)
  Format.printf "=== the checker on a hand-written history ===@.";
  let h = History.create () in
  let invoke client op =
    History.invoke h ~client ~at:0 ~repr:(Shardkv.Model.op_repr op) op
  in
  let respond id res =
    History.respond h ~id ~at:0 ~repr:(Shardkv.Model.res_repr res) res
  in
  let w = invoke "C0" (Shardkv.Model.Put ("k", 1)) in
  let r1 = invoke "C1" (Shardkv.Model.Get "k") in
  respond r1 (Shardkv.Model.Got (Some 1));
  let r2 = invoke "C1" (Shardkv.Model.Get "k") in
  respond r2 (Shardkv.Model.Got None);
  respond w Shardkv.Model.Put_ok;
  Format.printf "%s@.verdict: %s@.@."
    (String.trim (History.to_string h))
    (Linearizability.verdict_to_string
       (Linearizability.check Shardkv.Model.lin_model h));

  (* 3. Systematic testing: the stale-ring routing bug. The harness
     records every client operation into a history and the engine's
     assertion failure carries the checker's violation string. *)
  Format.printf "=== hunting ShardkvStaleRingServe under crash+delay ===@.";
  let entry = Catalog.Bug_catalog.find "ShardkvStaleRingServe" in
  let config =
    {
      Engine.default_config with
      max_executions = 2_000;
      max_steps = entry.Catalog.Bug_catalog.max_steps;
      faults = entry.Catalog.Bug_catalog.faults;
      clock = entry.Catalog.Bug_catalog.clock;
      seed = 1L;
    }
  in
  (match Engine.run config entry.Catalog.Bug_catalog.harness with
   | Engine.Bug_found (report, stats) ->
     Format.printf "FOUND after %d executions (%.2fs, #NDC %d)@.  %s@." stats.Engine.executions
       stats.Engine.elapsed
       (Trace.length report.Error.trace)
       (Error.kind_to_string report.Error.kind)
   | Engine.No_bug stats ->
     Format.printf "not found in %d executions@." stats.Engine.executions);

  (* ...and the fixed protocol survives the same faults. *)
  match Engine.run config entry.Catalog.Bug_catalog.fixed_harness with
  | Engine.No_bug stats ->
    Format.printf "fixed protocol: clean over %d executions@."
      stats.Engine.executions
  | Engine.Bug_found (report, _) ->
    Format.printf "fixed protocol UNEXPECTEDLY flagged: %s@."
      (Error.kind_to_string report.Error.kind)
