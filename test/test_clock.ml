(* The discrete-event virtual clock (ISSUE 6): unit behavior of [Clock],
   quiescence-driven advancement through the runtime ([send_after],
   [sleep], [sleep_until]), the timer's clocked drive mode restoring
   quiescence to timer-bearing harnesses (satellite 1), countdown-ordered
   release of delayed messages (satellite 2), the drain-at-bound grace
   before the liveness verdict (satellite 3), and the timeout/retry
   catalog bug only virtual time makes reachable. *)

module R = Psharp.Runtime
module E = Psharp.Engine
module Clock = Psharp.Clock
module Trace = Psharp.Trace
module Error = Psharp.Error
module Fault = Psharp.Fault
module Event = Psharp.Event
module Monitor = Psharp.Monitor
module Timer = Psharp.Timer
module Bug_catalog = Catalog.Bug_catalog

type Event.t += Ping of int | Heat | Cool | Spin

let random_strategy ~seed =
  match
    (Psharp.Random_strategy.factory ~seed).Psharp.Strategy.fresh ~iteration:0
  with
  | Some s -> s
  | None -> assert false

let replay_strategy trace =
  match
    (Psharp.Replay_strategy.factory trace).Psharp.Strategy.fresh ~iteration:0
  with
  | Some s -> s
  | None -> assert false

let clock_cfg ?(max_time = 10_000) ?(max_steps = 2_000) () =
  { R.default_config with R.max_steps; clock = Some { Clock.max_time } }

(* --- Clock unit behavior -------------------------------------------------- *)

let test_clock_fire_order () =
  let ck = Clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Clock.now ck);
  Alcotest.(check bool) "starts empty" true (Clock.is_empty ck);
  ignore (Clock.arm ck ~after:5 ~target:0 ~sender:(-1) ~stamp:(-1) (Ping 0));
  ignore (Clock.arm ck ~after:2 ~target:1 ~sender:(-1) ~stamp:(-1) (Ping 1));
  ignore (Clock.arm ck ~after:2 ~target:2 ~sender:(-1) ~stamp:(-1) (Ping 2));
  Alcotest.(check int) "three pending" 3 (Clock.pending ck);
  (match Clock.next_due ck with
   | Some 2 -> ()
   | _ -> Alcotest.fail "earliest deadline should be 2");
  let pop () =
    match Clock.pop_due ck ~horizon:10_000 with
    | Some e -> (e.Clock.at, e.Clock.target)
    | None -> Alcotest.fail "expected a due entry"
  in
  Alcotest.(check (pair int int))
    "same-instant entries fire in arming order" (2, 1) (pop ());
  Alcotest.(check (pair int int)) "tie-break by arming seq" (2, 2) (pop ());
  Alcotest.(check int) "time advanced to the fired instant" 2 (Clock.now ck);
  Alcotest.(check (pair int int)) "later deadline fires last" (5, 0) (pop ());
  Alcotest.(check int) "time at the last fire" 5 (Clock.now ck);
  Alcotest.(check bool) "drained" true (Clock.is_empty ck)

let test_clock_horizon_and_cancel () =
  let ck = Clock.create () in
  ignore (Clock.arm ck ~after:100 ~target:0 ~sender:(-1) ~stamp:(-1) (Ping 0));
  (match Clock.pop_due ck ~horizon:99 with
   | None -> ()
   | Some _ -> Alcotest.fail "entry beyond the horizon fired");
  Alcotest.(check int) "a horizon miss leaves time untouched" 0 (Clock.now ck);
  Alcotest.(check int) "and the entry pending" 1 (Clock.pending ck);
  Alcotest.check_raises "non-positive after rejected"
    (Invalid_argument "Clock.arm: after must be positive") (fun () ->
      ignore
        (Clock.arm ck ~after:0 ~target:0 ~sender:(-1) ~stamp:(-1) (Ping 0)));
  ignore (Clock.arm ck ~after:1 ~target:7 ~sender:(-1) ~stamp:(-1) (Ping 1));
  Clock.cancel_target ck 0;
  Alcotest.(check int) "crash cancels the target's entries" 1
    (Clock.pending ck);
  match Clock.pop_due ck ~horizon:10 with
  | Some e ->
    Alcotest.(check int) "survivor is the other target" 7 e.Clock.target
  | None -> Alcotest.fail "surviving entry did not fire"

(* --- Timed delivery through the runtime ----------------------------------- *)

let test_send_after_fires_in_deadline_order () =
  let order = ref [] in
  let result =
    R.execute (clock_cfg ()) (random_strategy ~seed:1L) ~monitors:[]
      ~name:"Root" (fun ctx ->
        let receiver =
          R.create ctx ~name:"Receiver" (fun rctx ->
              let rec loop k =
                if k > 0 then begin
                  (match R.receive rctx with
                   | Ping i -> order := (R.now rctx, i) :: !order
                   | _ -> ());
                  loop (k - 1)
                end
              in
              loop 2)
        in
        R.send_after ctx receiver (Ping 1) ~after:7;
        R.send_after ctx receiver (Ping 2) ~after:3)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list (pair int int)))
    "the later-armed but earlier-due message lands first, at its instant"
    [ (3, 2); (7, 1) ]
    (List.rev !order);
  Alcotest.(check int) "execution ends at the last deadline" 7
    result.R.final_time

let test_sleep_and_sleep_until () =
  let stamps = ref [] in
  let result =
    R.execute (clock_cfg ()) (random_strategy ~seed:1L) ~monitors:[]
      ~name:"Root" (fun ctx ->
        let note () = stamps := R.now ctx :: !stamps in
        Alcotest.(check bool) "clock is on" true (R.clock_on ctx);
        R.sleep ctx 4;
        note ();
        R.sleep_until ctx 10;
        note ();
        R.sleep_until ctx 5;
        (* already past: a draw-free no-op *)
        note ())
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list int)) "sleeps land at the requested instants"
    [ 4; 10; 10 ] (List.rev !stamps);
  Alcotest.(check int) "final time" 10 result.R.final_time

let test_clock_off_send_after_is_plain_send () =
  let got = ref [] in
  let cfg = { R.default_config with R.max_steps = 500 } in
  let result =
    R.execute cfg (random_strategy ~seed:1L) ~monitors:[] ~name:"Root"
      (fun ctx ->
        Alcotest.(check bool) "clock is off" false (R.clock_on ctx);
        Alcotest.(check int) "now falls back to the step count"
          (R.step_count ctx) (R.now ctx);
        let receiver =
          R.create ctx ~name:"Receiver" (fun rctx ->
              match R.receive rctx with
              | Ping i -> got := [ i ]
              | _ -> ())
        in
        R.send_after ctx receiver (Ping 9) ~after:50)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list int)) "delivered immediately" [ 9 ] !got;
  Alcotest.(check int) "no virtual time" 0 result.R.final_time;
  (* the timed refinement must be draw-free when disabled: only schedule
     picks may appear in the trace *)
  List.iter
    (function
      | Trace.Schedule _ -> ()
      | _ ->
        Alcotest.fail "send_after drew from the strategy with the clock off")
    (Trace.to_list result.R.choices)

(* --- Satellite 1: timers and quiescence ----------------------------------- *)

(* A consumer that never halts plus a timer that is never stopped: under
   the legacy self-send drive this harness cannot quiesce and every
   execution burns the whole step bound. Under the clock the timer blocks
   between firings, so the execution ends at the simulation horizon after
   a handful of steps. *)
let ticking_harness ticks ctx =
  let consumer =
    R.create ctx ~name:"Consumer" (fun cctx ->
        let rec loop () =
          (match R.receive cctx with
           | Timer.Timer_tick -> incr ticks
           | _ -> ());
          loop ()
        in
        loop ())
  in
  ignore (Timer.create ctx ~target:consumer ~period:10 ())

let test_timer_quiesces_under_clock () =
  let ticks = ref 0 in
  let cfg = clock_cfg ~max_time:200 ~max_steps:5_000 () in
  let result =
    R.execute cfg (random_strategy ~seed:1L) ~monitors:[] ~name:"Root"
      (ticking_harness ticks)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check bool) "horizon reached with the step bound barely touched"
    true
    (result.R.steps < 1_000);
  Alcotest.(check int) "last firing lands on the horizon" 200
    result.R.final_time;
  Alcotest.(check bool) "some ticks were delivered" true (!ticks > 0)

let test_timer_burns_bound_without_clock () =
  let ticks = ref 0 in
  let cfg = { R.default_config with R.max_steps = 500 } in
  let result =
    R.execute cfg (random_strategy ~seed:1L) ~monitors:[] ~name:"Root"
      (ticking_harness ticks)
  in
  Alcotest.(check bool) "no bug (bound cut, not deadlock)" true
    (result.R.bug = None);
  Alcotest.(check int) "the legacy drive runs to the step bound" 500
    result.R.steps

(* --- Satellite 2: countdown-ordered release at quiescence ------------------ *)

(* Two delay injections on the same link: the first held back 5
   deliveries, the second only 1. When quiescence releases them, the
   shorter-latency message must overtake — insertion order would replay
   [Ping 1] first. *)
let test_flush_releases_in_countdown_order () =
  let order = ref [] in
  let harness ctx =
    let receiver =
      R.create ctx ~name:"Receiver" (fun rctx ->
          let rec loop k =
            if k > 0 then begin
              (match R.receive rctx with
               | Ping i -> order := i :: !order
               | _ -> ());
              loop (k - 1)
            end
          in
          loop 2)
    in
    R.send_faulty ctx receiver (Ping 1);
    R.send_faulty ctx receiver (Ping 2)
  in
  let trace =
    Trace.of_list
      [
        Trace.Schedule 0 (* root runs to completion *);
        Trace.Bool true;
        Trace.Int 4 (* inject: hold Ping 1 back 5 deliveries *);
        Trace.Bool true;
        Trace.Int 0 (* inject: hold Ping 2 back 1 delivery *);
        Trace.Schedule 1 (* receiver starts, blocks; quiescence flushes *);
        Trace.Schedule 1 (* Ping 2 — countdown 1 — lands first *);
        Trace.Schedule 1 (* Ping 1 *);
      ]
  in
  let cfg =
    {
      R.default_config with
      R.max_steps = 100;
      faults = Fault.make ~budget:2 ~max_delay:5 [ Fault.Delay ];
    }
  in
  let result =
    R.execute cfg (replay_strategy trace) ~monitors:[] ~name:"Root" harness
  in
  (match result.R.bug with
   | None -> ()
   | Some k -> Alcotest.failf "replay tripped: %s" (Error.kind_to_string k));
  Alcotest.(check int) "both delays injected" 2 result.R.faults_injected;
  Alcotest.(check (list int)) "countdown order, not injection order" [ 2; 1 ]
    (List.rev !order)

(* --- Satellite 3: drain before the liveness verdict ------------------------ *)

let cooling_monitor () =
  Monitor.make ~name:"Cooling" ~initial:"Cold"
    ~states:[ ("Cold", Monitor.Cold); ("Hot", Monitor.Hot) ]
    (fun m e ->
      match e with
      | Heat -> Monitor.goto m "Hot"
      | Cool -> Monitor.goto m "Cold"
      | _ -> ())

(* The monitor runs hot from step 1 and the only thing that can cool it —
   [Cool], en route to the cooler machine — is delay-injected so it is
   still in flight when the step bound (10) cuts the execution. The
   spinner keeps the system from ever quiescing, so only the
   drain-at-bound flush can deliver it. *)
let drain_harness ctx =
  let spinner =
    R.create ctx ~name:"Spinner" (fun sctx ->
        let rec loop () =
          R.send sctx (R.self sctx) Spin;
          ignore (R.receive sctx);
          loop ()
        in
        loop ())
  in
  ignore spinner;
  let cooler =
    R.create ctx ~name:"Cooler" (fun cctx ->
        match R.receive cctx with
        | Cool -> R.notify cctx "Cooling" Cool
        | _ -> ())
  in
  R.notify ctx "Cooling" Heat;
  R.send_faulty ctx cooler Cool

let drain_cfg =
  {
    R.default_config with
    R.max_steps = 10;
    faults = Fault.make ~budget:1 ~max_delay:10 [ Fault.Delay ];
  }

let prefix_to_bound =
  [
    Trace.Schedule 0;
    Trace.Bool true;
    Trace.Int 9 (* hold Cool back 10 deliveries *);
    Trace.Schedule 2 (* cooler starts, blocks *);
  ]
  @ List.init 8 (fun _ -> Trace.Schedule 1)
(* spinner burns the remaining steps to the bound *)

let test_drain_at_bound_cools_monitor () =
  let trace =
    Trace.of_list
      (prefix_to_bound
      @ [ Trace.Schedule 2 ] (* drain: Cool lands, monitor cools *)
      @ List.init 63 (fun _ -> Trace.Schedule 1))
    (* spinner burns out the drain budget *)
  in
  let result =
    R.execute drain_cfg (replay_strategy trace)
      ~monitors:[ cooling_monitor () ] ~name:"Root" drain_harness
  in
  (match result.R.bug with
   | None -> ()
   | Some k ->
     Alcotest.failf "verdict despite the drain: %s" (Error.kind_to_string k));
  Alcotest.(check int) "drained to the extended bound" 74 result.R.steps

let test_still_hot_after_drain_is_a_violation () =
  (* Same execution, but the drained [Cool] is never scheduled: with the
     monitor genuinely hot through the drain, the verdict must stand. *)
  let trace =
    Trace.of_list (prefix_to_bound @ List.init 64 (fun _ -> Trace.Schedule 1))
  in
  let result =
    R.execute drain_cfg (replay_strategy trace)
      ~monitors:[ cooling_monitor () ] ~name:"Root" drain_harness
  in
  match result.R.bug with
  | Some (Error.Liveness_violation { monitor = "Cooling"; _ }) -> ()
  | Some k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  | None -> Alcotest.fail "hot-through-the-drain monitor not reported"

(* --- The timeout/retry catalog bug ----------------------------------------- *)

let retry_entry () = Bug_catalog.find "ChaintableRetryFreshSeq"

let retry_cfg entry ~executions =
  {
    E.default_config with
    E.seed = 1L;
    max_executions = executions;
    max_steps = entry.Bug_catalog.max_steps;
    faults = entry.Bug_catalog.faults;
    clock = entry.Bug_catalog.clock;
  }

let test_retry_bug_found_under_clock () =
  let entry = retry_entry () in
  match
    E.run ~monitors:entry.Bug_catalog.monitors
      (retry_cfg entry ~executions:2_000)
      entry.Bug_catalog.harness
  with
  | E.Bug_found (report, _) -> begin
    match report.Error.kind with
    | Error.Assertion_failure _ -> ()
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  end
  | E.No_bug _ -> Alcotest.fail "retry bug not found under virtual time"

let test_retry_bug_unreachable_without_clock () =
  (* Without the clock there is no RPC timeout, so the fresh-seq retry
     path cannot execute at all. *)
  let entry = retry_entry () in
  let cfg = { (retry_cfg entry ~executions:500) with E.clock = None } in
  match E.run ~monitors:entry.Bug_catalog.monitors cfg entry.Bug_catalog.harness with
  | E.No_bug _ -> ()
  | E.Bug_found _ -> Alcotest.fail "timeout-retry bug fired without a clock"

let test_retry_fixed_variant_clean () =
  let entry = retry_entry () in
  match
    E.run ~monitors:entry.Bug_catalog.monitors
      (retry_cfg entry ~executions:2_000)
      entry.Bug_catalog.fixed_harness
  with
  | E.No_bug _ -> ()
  | E.Bug_found (report, stats) ->
    Alcotest.failf "fixed variant tripped after %d executions: %s"
      stats.E.executions
      (Error.kind_to_string report.Error.kind)

let suite =
  [
    Alcotest.test_case "clock fires in deadline order" `Quick
      test_clock_fire_order;
    Alcotest.test_case "clock horizon and cancel" `Quick
      test_clock_horizon_and_cancel;
    Alcotest.test_case "send_after fires in deadline order" `Quick
      test_send_after_fires_in_deadline_order;
    Alcotest.test_case "sleep and sleep_until" `Quick test_sleep_and_sleep_until;
    Alcotest.test_case "clock-off send_after is a plain send" `Quick
      test_clock_off_send_after_is_plain_send;
    Alcotest.test_case "timer quiesces under the clock" `Quick
      test_timer_quiesces_under_clock;
    Alcotest.test_case "timer burns the bound without a clock" `Quick
      test_timer_burns_bound_without_clock;
    Alcotest.test_case "flush releases in countdown order" `Quick
      test_flush_releases_in_countdown_order;
    Alcotest.test_case "drain at the bound cools the monitor" `Quick
      test_drain_at_bound_cools_monitor;
    Alcotest.test_case "still hot after the drain is a violation" `Quick
      test_still_hot_after_drain_is_a_violation;
    Alcotest.test_case "retry bug found under virtual time" `Quick
      test_retry_bug_found_under_clock;
    Alcotest.test_case "retry bug unreachable without the clock" `Quick
      test_retry_bug_unreachable_without_clock;
    Alcotest.test_case "retry fixed variant clean" `Quick
      test_retry_fixed_variant_clean;
  ]
