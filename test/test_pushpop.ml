(* Push/pop state transitions (P# semantics) and the delay-bounded
   scheduler. *)

module R = Psharp.Runtime
module Sm = Psharp.Statemachine
module E = Psharp.Engine
module Event = Psharp.Event
module Error = Psharp.Error

type Event.t += Go_push | Go_pop | Shared of int | Only_base | Fin

let strategy ~seed =
  match (Psharp.Random_strategy.factory ~seed).Psharp.Strategy.fresh ~iteration:0 with
  | Some s -> s
  | None -> assert false

let execute body =
  R.execute { R.default_config with max_steps = 1_000 } (strategy ~seed:1L)
    ~monitors:[] ~name:"Root" body

type model = { mutable log : string list }

let record m s = m.log <- s :: m.log

let machine_with states init m ctx sctx =
  ignore ctx;
  Sm.run sctx ~machine:"PushPopSm" ~states ~init m

let base_states m =
  ignore m;
  let base =
    Sm.state "Base"
      ~entry:(fun _ m -> record m "enter base")
      [
        ("Go_push", fun _ _ _ -> Sm.Push "Overlay");
        ( "Only_base",
          fun _ m _ ->
            record m "base handled Only_base";
            Sm.Stay );
        ( "Shared",
          fun _ m _ ->
            record m "base handled Shared";
            Sm.Stay );
        ("Fin", fun _ _ _ -> Sm.Halt_machine);
      ]
  in
  let overlay =
    Sm.state "Overlay"
      ~entry:(fun _ m -> record m "enter overlay")
      ~exit_:(fun _ m -> record m "exit overlay")
      [
        ( "Shared",
          fun _ m _ ->
            record m "overlay handled Shared";
            Sm.Stay );
        ("Go_pop", fun _ _ _ -> Sm.Pop);
      ]
  in
  [ base; overlay ]

let test_push_inherits_lower_handlers () =
  let m = { log = [] } in
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              machine_with (base_states m) "Base" m ctx sctx)
        in
        R.send ctx sm Go_push;
        (* Overlay handles Shared itself, but Only_base falls through to
           the base state below. *)
        R.send ctx sm (Shared 1);
        R.send ctx sm Only_base;
        R.send ctx sm Go_pop;
        R.send ctx sm (Shared 2);
        R.send ctx sm Fin)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list string)) "push/pop event routing"
    [
      "enter base"; "enter overlay"; "overlay handled Shared";
      "base handled Only_base"; "exit overlay"; "base handled Shared";
    ]
    (List.rev m.log)

let test_pop_from_initial_is_bug () =
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let only =
                Sm.state "Only" [ ("Go_pop", fun _ _ _ -> Sm.Pop) ]
              in
              Sm.run sctx ~machine:"PopBug" ~states:[ only ] ~init:"Only"
                { log = [] })
        in
        R.send ctx sm Go_pop)
  in
  match result.R.bug with
  | Some (Error.Machine_exception _) -> ()
  | _ -> Alcotest.fail "expected pop-from-initial to be reported"

let test_unhandled_searches_whole_stack () =
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let base = Sm.state "Base" [ ("Go_push", fun _ _ _ -> Sm.Push "Top") ] in
              let top_ = Sm.state "Top" [] in
              Sm.run sctx ~machine:"StackBug" ~states:[ base; top_ ]
                ~init:"Base" { log = [] })
        in
        R.send ctx sm Go_push;
        R.send ctx sm (Shared 0))
  in
  match result.R.bug with
  | Some (Error.Unhandled_event { state = "Top"; _ }) -> ()
  | _ -> Alcotest.fail "expected unhandled event reported at the top state"

(* --- Delay-bounded strategy ------------------------------------------------ *)

let test_delay_strategy_deterministic () =
  let get ~iteration =
    match
      (Psharp.Delay_strategy.factory ~seed:4L ~delays:2 ~max_steps:100 ())
        .Psharp.Strategy.fresh ~iteration
    with
    | Some s -> s
    | None -> assert false
  in
  let drive s =
    List.init 50 (fun step ->
        s.Psharp.Strategy.next_schedule ~enabled:[| 0; 1; 2 |] ~n:3 ~step)
  in
  Alcotest.(check (list int)) "same iteration, same schedule"
    (drive (get ~iteration:0))
    (drive (get ~iteration:0));
  Alcotest.(check bool) "iterations differ" true
    (drive (get ~iteration:0) <> drive (get ~iteration:1))

let test_delay_strategy_run_to_completion () =
  (* With zero delays, the schedule must stick to one machine while it
     stays enabled. *)
  let s =
    match
      (Psharp.Delay_strategy.factory ~seed:4L ~delays:0 ~max_steps:100 ())
        .Psharp.Strategy.fresh ~iteration:0
    with
    | Some s -> s
    | None -> assert false
  in
  let picks =
    List.init 20 (fun step ->
        s.Psharp.Strategy.next_schedule ~enabled:[| 0; 1 |] ~n:2 ~step)
  in
  Alcotest.(check bool) "constant without delays" true
    (List.for_all (fun p -> p = List.hd picks) picks)

let test_delay_engine_finds_race () =
  let racy ctx =
    let flag = ref false in
    let referee =
      R.create ctx ~name:"Ref" (fun rctx ->
          ignore (R.receive rctx);
          R.assert_here rctx !flag "loser ran first")
    in
    ignore
      (R.create ctx ~name:"W1" (fun c ->
           flag := true;
           R.send c referee (Shared 0)));
    ignore (R.create ctx ~name:"W2" (fun c -> R.send c referee (Shared 1)))
  in
  let cfg =
    {
      E.default_config with
      strategy = E.Delay_bounded { delays = 2 };
      max_executions = 500;
      max_steps = 100;
    }
  in
  match E.run cfg racy with
  | E.Bug_found _ -> ()
  | E.No_bug _ -> Alcotest.fail "delay-bounded should find the race"

let suite =
  [
    Alcotest.test_case "push inherits lower handlers" `Quick
      test_push_inherits_lower_handlers;
    Alcotest.test_case "pop from initial is a bug" `Quick
      test_pop_from_initial_is_bug;
    Alcotest.test_case "unhandled searches whole stack" `Quick
      test_unhandled_searches_whole_stack;
    Alcotest.test_case "delay strategy deterministic" `Quick
      test_delay_strategy_deterministic;
    Alcotest.test_case "delay strategy run-to-completion" `Quick
      test_delay_strategy_run_to_completion;
    Alcotest.test_case "delay engine finds race" `Quick
      test_delay_engine_finds_race;
  ]
