(* Trace serialization and builder tests. *)

module Trace = Psharp.Trace

let sample =
  Trace.of_list
    [ Trace.Schedule 0; Trace.Bool true; Trace.Int 7; Trace.Schedule 3;
      Trace.Bool false ]

let test_roundtrip () =
  let s = Trace.to_string sample in
  Alcotest.(check bool) "roundtrip equal" true
    (Trace.equal sample (Trace.of_string s))

let test_empty_roundtrip () =
  Alcotest.(check bool) "empty roundtrip" true
    (Trace.equal Trace.empty (Trace.of_string (Trace.to_string Trace.empty)))

let test_length () =
  Alcotest.(check int) "length" 5 (Trace.length sample);
  Alcotest.(check int) "empty length" 0 (Trace.length Trace.empty)

let test_malformed () =
  Alcotest.(check bool) "malformed raises" true
    (try
       ignore (Trace.of_string "x:1");
       false
     with Failure _ -> true)

let test_builder () =
  let b = Trace.Builder.create () in
  Trace.Builder.add b (Trace.Schedule 1);
  Trace.Builder.add b (Trace.Bool false);
  Alcotest.(check int) "builder length" 2 (Trace.Builder.length b);
  let t = Trace.Builder.finish b in
  Alcotest.(check bool) "builder order" true
    (Trace.to_list t = [ Trace.Schedule 1; Trace.Bool false ])

let test_save_load () =
  let path = Filename.temp_file "psharp_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save ~path sample;
      Alcotest.(check bool) "save/load" true
        (Trace.equal sample (Trace.load ~path)))

let rejects label s =
  Alcotest.(check bool) label true
    (try
       ignore (Trace.of_string s);
       false
     with Failure _ -> true)

let test_strict_parsing () =
  (* [save] appends exactly one newline; accept that and nothing looser. *)
  Alcotest.(check bool) "one trailing newline accepted" true
    (Trace.equal sample (Trace.of_string (Trace.to_string sample ^ "\n")));
  rejects "two trailing newlines rejected" (Trace.to_string sample ^ "\n\n");
  rejects "interior blank line rejected" "s:0\n\nb:1";
  rejects "blank-only input rejected" "\n";
  rejects "non-canonical int spelling rejected" "i:0x10";
  rejects "leading zero rejected" "s:01";
  rejects "trailing whitespace rejected" "s:0 ";
  rejects "negative bool rejected" "b:2"

let choice_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Trace.Schedule i) (int_range 0 1_000);
        map (fun b -> Trace.Bool b) bool;
        map (fun i -> Trace.Int i) (int_range 0 1_000);
      ])

let prop_roundtrip =
  QCheck.Test.make ~name:"trace to_string/of_string roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (0 -- 50) choice_gen))
    (fun choices ->
      let t = Trace.of_list choices in
      Trace.equal t (Trace.of_string (Trace.to_string t)))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "empty roundtrip" `Quick test_empty_roundtrip;
    Alcotest.test_case "length" `Quick test_length;
    Alcotest.test_case "malformed input" `Quick test_malformed;
    Alcotest.test_case "strict parsing" `Quick test_strict_parsing;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "save/load file" `Quick test_save_load;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
