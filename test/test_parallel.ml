(* Domain-parallel exploration (Worker_pool / Engine.workers) and the
   engine budget/bounds fixes that ride along with it. *)

module E = Psharp.Engine
module R = Psharp.Runtime
module W = Psharp.Worker_pool
module Error = Psharp.Error
module Trace = Psharp.Trace
module Id = Psharp.Id
module Event = Psharp.Event

type Event.t += Token

(* Same minimal racy program as test_engine: roughly half of all schedules
   violate the referee's assertion. *)
let racy_harness ctx =
  let first = ref None in
  let referee =
    R.create ctx ~name:"Referee" (fun rctx ->
        ignore (R.receive rctx);
        R.assert_here rctx (!first = Some "A") "B overtook A")
  in
  let writer name wctx =
    if !first = None then first := Some name;
    R.send wctx referee Token
  in
  ignore (R.create ctx ~name:"A" (writer "A"));
  ignore (R.create ctx ~name:"B" (writer "B"))

let clean_harness ctx =
  let echo = R.create ctx ~name:"Echo" (fun ectx -> ignore (R.receive ectx)) in
  R.send ctx echo Token

let config = { E.default_config with max_executions = 500; max_steps = 200 }

(* --- Worker_pool ------------------------------------------------------- *)

let test_resolve () =
  Alcotest.(check int) "1 stays 1" 1 (W.resolve 1);
  Alcotest.(check int) "4 stays 4" 4 (W.resolve 4);
  Alcotest.(check bool) "0 means all cores (>= 1)" true (W.resolve 0 >= 1);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Worker_pool.resolve: negative worker count") (fun () ->
      ignore (W.resolve (-1)))

let test_pool_sweep_collects_everything () =
  let results, stats =
    W.sweep ~workers:4 ~max_iterations:20
      ~init:(fun ~worker -> worker)
      ~body:(fun _worker ~iteration ->
        ((if iteration mod 2 = 0 then Some iteration else None), 1))
      ()
  in
  Alcotest.(check int) "all iterations ran" 20 stats.W.executions;
  Alcotest.(check int) "steps summed" 20 stats.W.total_steps;
  Alcotest.(check (list (pair int int)))
    "even iterations, sorted by index"
    (List.init 10 (fun i -> (2 * i, 2 * i)))
    results

let test_pool_hunt_stops_early () =
  let winner, stats =
    W.hunt ~workers:4 ~max_iterations:10_000
      ~init:(fun ~worker:_ -> ())
      ~body:(fun () ~iteration ->
        ((if iteration >= 10 then Some iteration else None), 1))
      ()
  in
  (match winner with
   | Some (value, iteration) ->
     Alcotest.(check int) "value is its iteration" iteration value;
     Alcotest.(check bool) "a buggy iteration won" true (iteration >= 10)
   | None -> Alcotest.fail "expected a winner");
  Alcotest.(check bool) "stopped far short of the budget" true
    (stats.W.executions < 1_000)

let test_pool_hunt_lowest_iteration_wins () =
  (* Regression: a later iteration reporting first must not beat an
     earlier one still in flight. Iteration 3 sleeps long enough for
     iteration 7 to report; the min-updating stop bound must still let 3
     finish and crown it, at every worker count and thread timing. *)
  let winner, _ =
    W.hunt ~workers:3 ~max_iterations:100
      ~init:(fun ~worker:_ -> ())
      ~body:(fun () ~iteration ->
        if iteration = 3 then begin
          Unix.sleepf 0.05;
          (Some iteration, 1)
        end
        else if iteration = 7 then (Some iteration, 1)
        else (None, 1))
      ()
  in
  match winner with
  | Some (value, iteration) ->
    Alcotest.(check int) "lowest reporting iteration wins" 3 iteration;
    Alcotest.(check int) "value comes from that iteration" 3 value
  | None -> Alcotest.fail "expected a winner"

let test_pool_empty_budget () =
  let winner, stats =
    W.hunt ~workers:4 ~max_iterations:0
      ~init:(fun ~worker:_ -> ())
      ~body:(fun () ~iteration -> (Some iteration, 1))
      ()
  in
  Alcotest.(check bool) "no winner" true (winner = None);
  Alcotest.(check int) "no executions" 0 stats.W.executions

let test_pool_propagates_exceptions () =
  Alcotest.check_raises "worker exception reaches the caller"
    (Failure "boom") (fun () ->
      ignore
        (W.sweep ~workers:2 ~max_iterations:50
           ~init:(fun ~worker:_ -> ())
           ~body:(fun () ~iteration ->
             if iteration = 3 then failwith "boom" else (None, 1))
           ()))

(* --- Engine parallel semantics ----------------------------------------- *)

let test_parallel_clean_stats_match_sequential () =
  (* Parallel exploration covers exactly the sequential schedule set, so on
     a bug-free harness the merged step count must match sequentially. *)
  let cfg = { config with E.max_executions = 100 } in
  let seq =
    match E.run cfg clean_harness with
    | E.No_bug stats -> stats
    | E.Bug_found _ -> Alcotest.fail "clean harness reported a bug"
  in
  let par =
    match E.run { cfg with E.workers = 4 } clean_harness with
    | E.No_bug stats -> stats
    | E.Bug_found _ -> Alcotest.fail "clean harness reported a bug (parallel)"
  in
  Alcotest.(check int) "same executions" seq.E.executions par.E.executions;
  Alcotest.(check int) "same total steps" seq.E.total_steps par.E.total_steps

let test_parallel_finds_race () =
  match E.run { config with E.workers = 4; seed = 7L } racy_harness with
  | E.Bug_found (report, stats) ->
    (match report.Error.kind with
     | Error.Assertion_failure _ -> ()
     | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k));
    Alcotest.(check bool) "stopped early" true (stats.E.executions < 500);
    (* The reported witness replays deterministically. *)
    let result = E.replay config report.Error.trace racy_harness in
    (match result.R.bug with
     | Some (Error.Assertion_failure _) -> ()
     | _ -> Alcotest.fail "parallel witness did not replay")
  | E.No_bug _ -> Alcotest.fail "race not found with 4 workers"

let test_parallel_same_vnext_bug_kind_as_sequential () =
  let cfg =
    {
      E.default_config with
      max_executions = 4_000;
      max_steps = 3_000;
      seed = 0L;
    }
  in
  let hunt workers =
    match
      E.run
        ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
        { cfg with E.workers }
        (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.liveness_bug
           ~scenario:Vnext.Testing_driver.Fail_and_repair ())
    with
    | E.Bug_found (report, _) -> report.Error.kind
    | E.No_bug _ -> Alcotest.failf "bug not found with %d worker(s)" workers
  in
  match (hunt 1, hunt 4) with
  | ( Error.Liveness_violation { monitor = m1; _ },
      Error.Liveness_violation { monitor = m2; _ } ) ->
    Alcotest.(check string) "same monitor" m1 m2;
    Alcotest.(check string) "repair monitor" "RepairMonitor" m1
  | k1, k2 ->
    Alcotest.failf "kinds differ: %s vs %s" (Error.kind_to_string k1)
      (Error.kind_to_string k2)

let test_dfs_falls_back_to_sequential () =
  (* Stateful strategies ignore [workers] (with a notice) and must still
     work — including reporting search exhaustion. *)
  let cfg =
    {
      config with
      E.strategy = E.Dfs { max_depth = 50; int_cap = 2 };
      max_executions = 10_000;
      workers = 4;
    }
  in
  match E.run cfg clean_harness with
  | E.No_bug stats ->
    Alcotest.(check bool) "search exhausted" true stats.E.search_exhausted
  | E.Bug_found (r, _) ->
    Alcotest.failf "unexpected bug: %s" (Error.kind_to_string r.Error.kind)

(* --- Survey budget fixes ----------------------------------------------- *)

let test_survey_honors_max_seconds () =
  (* Before the fix, survey ignored max_seconds and would grind through the
     whole 10M-execution budget (minutes); now it stops at the deadline. *)
  let cfg =
    {
      E.default_config with
      max_executions = 10_000_000;
      max_steps = 200;
      max_seconds = Some 0.2;
    }
  in
  let started = Unix.gettimeofday () in
  let found = E.survey cfg clean_harness in
  let elapsed = Unix.gettimeofday () -. started in
  Alcotest.(check (list (pair reject int))) "no violations" [] found;
  Alcotest.(check bool) "returned at the deadline" true (elapsed < 5.0)

let test_deadline_aborts_inside_an_execution () =
  (* Regression: max_seconds used to be checked only *between* executions,
     so one long execution overshot the budget arbitrarily. The deadline
     is now threaded into the runtime step loop: a single execution that
     would run for ~half a minute aborts at the bound, and stats report
     the timeout. *)
  let spinner ctx =
    let rec loop () =
      R.send ctx (R.self ctx) Token;
      ignore (R.receive ctx);
      loop ()
    in
    loop ()
  in
  let cfg =
    {
      E.default_config with
      max_executions = 1;
      max_steps = 50_000_000;
      max_seconds = Some 0.2;
    }
  in
  let started = Unix.gettimeofday () in
  (match E.run cfg spinner with
   | E.No_bug stats ->
     Alcotest.(check bool) "stats report the timeout" true stats.E.timed_out
   | E.Bug_found (r, _) ->
     Alcotest.failf "unexpected bug: %s" (Error.kind_to_string r.Error.kind));
  Alcotest.(check bool) "aborted mid-execution at the bound" true
    (Unix.gettimeofday () -. started < 5.0)

let test_survey_partial_results_at_deadline () =
  let cfg =
    {
      E.default_config with
      max_executions = 10_000_000;
      max_steps = 200;
      max_seconds = Some 0.3;
    }
  in
  let found = E.survey cfg racy_harness in
  Alcotest.(check bool) "partial results collected" true (found <> []);
  List.iter
    (fun (report, n) ->
      Alcotest.(check bool) "positive count" true (n > 0);
      Alcotest.(check bool) "has witness" true
        (Trace.length report.Error.trace > 0))
    found

let test_survey_parallel_matches_sequential_kinds () =
  let cfg =
    { E.default_config with max_executions = 300; max_steps = 200; seed = 3L }
  in
  let kinds found =
    List.map (fun (r, _) -> Error.kind_to_string r.Error.kind) found
    |> List.sort compare
  in
  let seq = kinds (E.survey cfg racy_harness) in
  let par = kinds (E.survey { cfg with E.workers = 4 } racy_harness) in
  Alcotest.(check (list string)) "same distinct kinds" seq par;
  Alcotest.(check bool) "found something" true (seq <> [])

(* --- Runtime.name_of bounds -------------------------------------------- *)

let test_name_of_forged_negative_id () =
  let harness ctx =
    let forged = Id.make ~index:(-3) ~name:"ghost" in
    R.assert_here ctx
      (R.name_of ctx forged = "<unknown>")
      "negative index must map to <unknown>";
    (* And an index past the end still answers <unknown>. *)
    let beyond = Id.make ~index:999 ~name:"ghost" in
    R.assert_here ctx
      (R.name_of ctx beyond = "<unknown>")
      "out-of-range index must map to <unknown>"
  in
  match E.run { config with E.max_executions = 1 } harness with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "name_of misbehaved: %s" (Error.kind_to_string r.Error.kind)

(* --- Negative int choices in recorded traces --------------------------- *)

let test_lenient_strategy_rejects_negative_int () =
  let strategy =
    Psharp.Shrinker.lenient_strategy
      (Trace.of_list [ Trace.Int (-5) ])
      ~seed:42L
  in
  let v = strategy.Psharp.Strategy.next_int ~bound:10 ~step:0 in
  Alcotest.(check bool) "diverged to a valid value" true (v >= 0 && v < 10);
  (* Having diverged, the rest of the trace is abandoned. *)
  let v2 = strategy.Psharp.Strategy.next_int ~bound:10 ~step:1 in
  Alcotest.(check bool) "still valid" true (v2 >= 0 && v2 < 10)

let test_replay_rejects_negative_int () =
  let harness ctx = ignore (R.nondet_int ctx 10) in
  let trace = Trace.of_list [ Trace.Schedule 0; Trace.Int (-5) ] in
  let result = E.replay config trace harness in
  match result.R.bug with
  | Some (Error.Replay_divergence _) -> ()
  | Some k ->
    Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  | None -> Alcotest.fail "negative int choice replayed as if valid"

(* --- Claim-discipline equivalence (batched vs legacy stride) ------------ *)

(* The domain clamp would fold every worker onto this machine's cores;
   lifting it exercises the real multi-domain machinery regardless of how
   small the machine is. *)
let with_oversubscribe f =
  Unix.putenv "PSHARP_OVERSUBSCRIBE" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "PSHARP_OVERSUBSCRIBE" "0")
    f

let claim_modes =
  [
    ("batch1", W.Batch 1);
    ("batch4", W.Batch 4);
    ("batch16", W.Batch 16);
    ("stride", W.Stride);
  ]

let test_sweep_equivalent_across_claims_and_workers () =
  (* Every claim granularity and worker count must cover exactly the same
     iteration set and fold the same stats — the invariant that lets the
     engine swap claiming disciplines without moving any golden digest. *)
  with_oversubscribe @@ fun () ->
  let iterations = 60 in
  let body () ~iteration =
    ( (if iteration mod 3 = 0 then Some (iteration * iteration) else None),
      1 + (iteration mod 5) )
  in
  let expected_results =
    List.init iterations Fun.id
    |> List.filter_map (fun i ->
           if i mod 3 = 0 then Some (i * i, i) else None)
  in
  let expected_steps =
    List.fold_left ( + ) 0 (List.init iterations (fun i -> 1 + (i mod 5)))
  in
  List.iter
    (fun (label, claim) ->
      List.iter
        (fun workers ->
          let results, stats =
            W.sweep ~claim ~workers ~max_iterations:iterations
              ~init:(fun ~worker:_ -> ())
              ~body ()
          in
          let tag = Printf.sprintf "%s/%d-worker" label workers in
          Alcotest.(check (list (pair int int)))
            (tag ^ ": same results") expected_results results;
          Alcotest.(check int)
            (tag ^ ": all iterations ran") iterations stats.W.executions;
          Alcotest.(check int)
            (tag ^ ": same folded steps") expected_steps stats.W.total_steps)
        [ 1; 2; 4 ])
    claim_modes

let test_hunt_winner_identical_across_claims_and_workers () =
  (* Two iterations report (13 and 27); the lowest must win under every
     claim discipline, batch size and worker count. *)
  with_oversubscribe @@ fun () ->
  let body () ~iteration =
    ((if iteration = 13 || iteration = 27 then Some iteration else None), 1)
  in
  List.iter
    (fun (label, claim) ->
      List.iter
        (fun workers ->
          let winner, _ =
            W.hunt ~claim ~workers ~max_iterations:100
              ~init:(fun ~worker:_ -> ())
              ~body ()
          in
          match winner with
          | Some (value, iteration) ->
            let tag = Printf.sprintf "%s/%d-worker" label workers in
            Alcotest.(check int) (tag ^ ": lowest iteration wins") 13 iteration;
            Alcotest.(check int) (tag ^ ": value from that iteration") 13 value
          | None -> Alcotest.fail "expected a winner")
        [ 1; 2; 4 ])
    claim_modes

let test_merged_coverage_identical_1_2_4_workers () =
  (* Batch-boundary shard merging must produce the same merged map as the
     sequential accumulator — absorb is commutative, the iteration set is
     identical — at every worker count, on real domains. *)
  with_oversubscribe @@ fun () ->
  let explore workers =
    let stats =
      E.explore
        {
          config with
          E.max_executions = 120;
          collect_coverage = true;
          workers;
        }
        racy_harness
    in
    Alcotest.(check int) "full budget explored" 120 stats.E.executions;
    match stats.E.coverage with
    | Some cov -> cov
    | None -> Alcotest.fail "explore returned no coverage"
  in
  let seq = explore 1 in
  Alcotest.(check bool)
    "2-worker merged map = sequential" true
    (Psharp.Coverage.equal seq (explore 2));
  Alcotest.(check bool)
    "4-worker merged map = sequential" true
    (Psharp.Coverage.equal seq (explore 4))

let test_hunt_witness_identical_1_2_4_workers () =
  with_oversubscribe @@ fun () ->
  let witness workers =
    match E.run { config with E.workers; seed = 5L } racy_harness with
    | E.Bug_found (report, _) -> Trace.to_string report.Error.trace
    | E.No_bug _ -> Alcotest.failf "race not found with %d worker(s)" workers
  in
  let seq = witness 1 in
  Alcotest.(check string) "2-worker witness = sequential" seq (witness 2);
  Alcotest.(check string) "4-worker witness = sequential" seq (witness 4)

let suite =
  [
    Alcotest.test_case "pool: resolve worker counts" `Quick test_resolve;
    Alcotest.test_case "pool: sweep collects everything" `Quick
      test_pool_sweep_collects_everything;
    Alcotest.test_case "pool: hunt stops early" `Quick
      test_pool_hunt_stops_early;
    Alcotest.test_case "pool: lowest iteration wins the hunt" `Quick
      test_pool_hunt_lowest_iteration_wins;
    Alcotest.test_case "pool: empty budget" `Quick test_pool_empty_budget;
    Alcotest.test_case "pool: exceptions propagate" `Quick
      test_pool_propagates_exceptions;
    Alcotest.test_case "engine: parallel clean stats = sequential" `Quick
      test_parallel_clean_stats_match_sequential;
    Alcotest.test_case "engine: parallel finds race + witness replays" `Quick
      test_parallel_finds_race;
    Alcotest.test_case "engine: parallel finds same vnext bug kind" `Slow
      test_parallel_same_vnext_bug_kind_as_sequential;
    Alcotest.test_case "engine: dfs ignores workers, still exhausts" `Quick
      test_dfs_falls_back_to_sequential;
    Alcotest.test_case "survey: honors max_seconds" `Quick
      test_survey_honors_max_seconds;
    Alcotest.test_case "deadline aborts inside an execution" `Quick
      test_deadline_aborts_inside_an_execution;
    Alcotest.test_case "survey: partial results at deadline" `Quick
      test_survey_partial_results_at_deadline;
    Alcotest.test_case "survey: parallel matches sequential kinds" `Quick
      test_survey_parallel_matches_sequential_kinds;
    Alcotest.test_case "runtime: name_of guards forged ids" `Quick
      test_name_of_forged_negative_id;
    Alcotest.test_case "shrinker: lenient replay rejects negative ints" `Quick
      test_lenient_strategy_rejects_negative_int;
    Alcotest.test_case "replay: rejects negative int choices" `Quick
      test_replay_rejects_negative_int;
    Alcotest.test_case "pool: sweep equivalent across claims and workers"
      `Quick test_sweep_equivalent_across_claims_and_workers;
    Alcotest.test_case "pool: hunt winner identical across claims and workers"
      `Quick test_hunt_winner_identical_across_claims_and_workers;
    Alcotest.test_case "engine: merged coverage identical at 1/2/4 workers"
      `Quick test_merged_coverage_identical_1_2_4_workers;
    Alcotest.test_case "engine: hunt witness identical at 1/2/4 workers"
      `Quick test_hunt_witness_identical_1_2_4_workers;
  ]
