(* Strategy-equivalence battery for sleep-set partial-order reduction
   (ISSUE 5 satellite 1).

   The sleep wrapper is a heuristic *pruning* of the random strategy, so
   the load-bearing property is negative: it must not lose bugs. Every
   catalog bug that unreduced random finds within a fixed-seed budget must
   still be found with [--reduce sleep] under the same budget, and the
   executions-to-first-bug of both runs are printed side by side so a
   regression in reduction quality is visible in the test log. On no-bug
   fixed variants, a saturating exploration must reach the identical
   transition-triple set with and without pruning (pruned schedules skip
   interleavings, not behaviors). *)

module E = Psharp.Engine
module Error = Psharp.Error
module Coverage = Psharp.Coverage
module Bug_catalog = Catalog.Bug_catalog

let seed = 1L
let budget = 20_000

(* Bug identity up to schedule-specific detail: the constructor, plus the
   monitor for monitored violations (stable across schedules). Assertion
   failures keep no machine name — the migrating-table harnesses run two
   symmetric service machines and either one may trip the shared check,
   depending on the interleaving. *)
let bug_id = function
  | Error.Safety_violation { monitor; _ } -> "safety:" ^ monitor
  | Error.Liveness_violation { monitor; _ } -> "liveness:" ^ monitor
  | Error.Deadlock _ -> "deadlock"
  | Error.Unhandled_event { event; _ } -> "unhandled:" ^ event
  | Error.Assertion_failure _ -> "assert"
  | Error.Machine_exception _ -> "exn"
  | Error.Replay_divergence _ -> "replay-divergence"

let hunt entry ~reduce ~harness =
  let cfg =
    {
      E.default_config with
      seed;
      max_executions = budget;
      max_steps = entry.Bug_catalog.max_steps;
      faults = entry.Bug_catalog.faults;
      clock = entry.Bug_catalog.clock;
      reduce;
    }
  in
  match E.run ~monitors:entry.Bug_catalog.monitors cfg harness with
  | E.Bug_found (report, stats) ->
    Some (bug_id report.Error.kind, stats.E.executions)
  | E.No_bug _ -> None

(* Both the default and (when present) the custom harness count: a bug is
   "findable by unreduced random" if either harness exposes it. *)
let harnesses entry =
  ("default", entry.Bug_catalog.harness)
  ::
  (match entry.Bug_catalog.custom_harness with
   | Some h -> [ ("custom", h) ]
   | None -> [])

let test_no_bug_lost () =
  List.iter
    (fun entry ->
      List.iter
        (fun (hname, harness) ->
          match hunt entry ~reduce:E.No_reduction ~harness with
          | None -> ()  (* random can't find it here; nothing to preserve *)
          | Some (kind, execs_off) -> begin
            match hunt entry ~reduce:E.Sleep_sets ~harness with
            | None ->
              Alcotest.failf
                "%s (%s harness): found by unreduced random after %d \
                 executions but LOST under sleep-set reduction"
                entry.Bug_catalog.name hname execs_off
            | Some (kind', execs_on) ->
              Printf.printf
                "  %-40s %-7s  off:%6d  sleep:%6d  (%s)\n%!"
                entry.Bug_catalog.name hname execs_off execs_on kind;
              (* A harness may expose several distinct violations and the
                 pruned search may trip another one first (crash-fault
                 harnesses also deadlock, say). The recorded bug must then
                 still be reachable under reduction: survey a slice of the
                 budget and look for it among the distinct violations. *)
              if kind <> kind' then begin
                let cfg =
                  {
                    E.default_config with
                    seed;
                    max_executions = 2_000;
                    max_steps = entry.Bug_catalog.max_steps;
                    faults = entry.Bug_catalog.faults;
                    clock = entry.Bug_catalog.clock;
                    reduce = E.Sleep_sets;
                  }
                in
                let found =
                  E.survey ~monitors:entry.Bug_catalog.monitors cfg harness
                in
                let ids =
                  List.map (fun (r, _) -> bug_id r.Error.kind) found
                in
                if not (List.mem kind ids) then
                  Alcotest.failf
                    "%s (%s harness): unreduced random finds %s but the \
                     sleep-set survey only reached [%s]"
                    entry.Bug_catalog.name hname kind
                    (String.concat "; " ids)
              end
          end)
        (harnesses entry))
    Bug_catalog.all

(* Transition-triple coverage equality on saturating no-bug variants: a
   small harness explored far past its plateau reaches every reachable
   triple whether or not pruning skips some interleavings. *)
let triple_keys cov = List.map fst (Coverage.triples cov)

let test_fixed_variant_triples_equal () =
  List.iter
    (fun name ->
      let entry = Bug_catalog.find name in
      let explore reduce =
        let cfg =
          {
            E.default_config with
            seed;
            max_executions = 2_000;
            max_steps = entry.Bug_catalog.max_steps;
            collect_coverage = true;
            faults = entry.Bug_catalog.faults;
            clock = entry.Bug_catalog.clock;
            reduce;
          }
        in
        let stats =
          E.explore ~monitors:entry.Bug_catalog.monitors cfg
            entry.Bug_catalog.fixed_harness
        in
        match stats.E.coverage with
        | Some cov -> triple_keys cov
        | None -> Alcotest.fail "explore returned no coverage"
      in
      Alcotest.(check (list string))
        (name ^ " fixed variant: identical triple set under reduction")
        (explore E.Hb_track) (explore E.Sleep_sets))
    [ "ExampleDuplicateReplicaAck"; "PaxosForgetPromise"; "CScaleNullReference" ]

(* The wrapped strategy is as deterministic as its base: same seed, same
   witness trace, same execution count. *)
let test_sleep_determinism () =
  let entry = Bug_catalog.find "FabricPromoteDuringCopy" in
  let run () =
    let cfg =
      {
        E.default_config with
        seed;
        max_executions = budget;
        max_steps = entry.Bug_catalog.max_steps;
        reduce = E.Sleep_sets;
      }
    in
    match
      E.run ~monitors:entry.Bug_catalog.monitors cfg
        entry.Bug_catalog.harness
    with
    | E.Bug_found (report, stats) ->
      (Psharp.Trace.to_string report.Error.trace, stats.E.executions)
    | E.No_bug _ -> Alcotest.fail "expected bug"
  in
  let t1, n1 = run () and t2, n2 = run () in
  Alcotest.(check string) "same witness trace" t1 t2;
  Alcotest.(check int) "same execution count" n1 n2

(* Hb_track is measurement only: identical outcome and witness to an
   untracked run, choice for choice. *)
let test_track_does_not_perturb () =
  let entry = Bug_catalog.find "QueryAtomicFilterShadowing" in
  let run reduce =
    let cfg =
      {
        E.default_config with
        seed;
        max_executions = budget;
        max_steps = entry.Bug_catalog.max_steps;
        reduce;
      }
    in
    match
      E.run ~monitors:entry.Bug_catalog.monitors cfg
        entry.Bug_catalog.harness
    with
    | E.Bug_found (report, stats) ->
      (Psharp.Trace.to_string report.Error.trace, stats.E.executions)
    | E.No_bug _ -> Alcotest.fail "expected bug"
  in
  let t_off, n_off = run E.No_reduction in
  let t_track, n_track = run E.Hb_track in
  Alcotest.(check string) "identical witness" t_off t_track;
  Alcotest.(check int) "identical execution count" n_off n_track

let suite =
  [
    Alcotest.test_case "no catalog bug lost under sleep sets" `Slow
      test_no_bug_lost;
    Alcotest.test_case "fixed-variant triple sets equal" `Slow
      test_fixed_variant_triples_equal;
    Alcotest.test_case "sleep wrapper deterministic" `Quick
      test_sleep_determinism;
    Alcotest.test_case "hb tracking does not perturb the search" `Quick
      test_track_does_not_perturb;
  ]
