(* Scheduling strategies: determinism, coverage, replay, DFS exhaustion. *)

module S = Psharp.Strategy
module Trace = Psharp.Trace

let get_fresh factory ~iteration =
  match factory.S.fresh ~iteration with
  | Some s -> s
  | None -> Alcotest.fail "strategy exhausted unexpectedly"

let drive strategy n =
  List.init n (fun step ->
      strategy.S.next_schedule ~enabled:[| 0; 1; 2 |] ~n:3 ~step)

let test_random_deterministic_per_seed () =
  let f1 = Psharp.Random_strategy.factory ~seed:5L in
  let f2 = Psharp.Random_strategy.factory ~seed:5L in
  let a = drive (get_fresh f1 ~iteration:0) 50 in
  let b = drive (get_fresh f2 ~iteration:0) 50 in
  Alcotest.(check (list int)) "same seed, same schedule" a b

let test_random_iterations_differ () =
  let f = Psharp.Random_strategy.factory ~seed:5L in
  let a = drive (get_fresh f ~iteration:0) 50 in
  let b = drive (get_fresh f ~iteration:1) 50 in
  Alcotest.(check bool) "iterations differ" true (a <> b)

let test_random_covers_all_machines () =
  let f = Psharp.Random_strategy.factory ~seed:0L in
  let picks = drive (get_fresh f ~iteration:0) 200 in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "machine %d scheduled" m)
        true (List.mem m picks))
    [ 0; 1; 2 ]

let test_random_respects_enabled () =
  let s = get_fresh (Psharp.Random_strategy.factory ~seed:9L) ~iteration:0 in
  for step = 0 to 100 do
    let pick = s.S.next_schedule ~enabled:[| 4; 7 |] ~n:2 ~step in
    Alcotest.(check bool) "member of enabled" true (pick = 4 || pick = 7)
  done

let test_pct_prefers_priority () =
  (* Without hitting a change point, PCT must repeatedly pick the same
     (highest-priority) machine for a fixed enabled set. *)
  let s =
    get_fresh
      (Psharp.Pct_strategy.factory ~seed:1L ~change_points:0 ~max_steps:100 ())
      ~iteration:0
  in
  let picks = drive s 20 in
  match picks with
  | first :: rest ->
    Alcotest.(check bool) "stable priority" true
      (List.for_all (fun p -> p = first) rest)
  | [] -> Alcotest.fail "no picks"

let test_pct_change_points_change_schedule () =
  (* With many change points the winner must change at least once. *)
  let s =
    get_fresh
      (Psharp.Pct_strategy.factory ~seed:1L ~change_points:50 ~max_steps:60 ())
      ~iteration:0
  in
  let picks = drive s 60 in
  let distinct = List.sort_uniq compare picks in
  Alcotest.(check bool) "schedule not constant" true (List.length distinct > 1)

let test_rr_cycles () =
  let s = get_fresh (Psharp.Rr_strategy.factory ()) ~iteration:0 in
  let picks = drive s 6 in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 0; 1; 2 ] picks

let test_replay_feeds_back () =
  let trace =
    Trace.of_list [ Trace.Schedule 2; Trace.Bool true; Trace.Int 5 ]
  in
  let s = get_fresh (Psharp.Replay_strategy.factory trace) ~iteration:0 in
  Alcotest.(check int) "schedule" 2
    (s.S.next_schedule ~enabled:[| 0; 1; 2 |] ~n:3 ~step:0);
  Alcotest.(check bool) "bool" true (s.S.next_bool ~step:1);
  Alcotest.(check int) "int" 5 (s.S.next_int ~bound:10 ~step:2)

let test_replay_single_iteration () =
  let f = Psharp.Replay_strategy.factory Trace.empty in
  Alcotest.(check bool) "first iteration available" true
    (f.S.fresh ~iteration:0 <> None);
  Alcotest.(check bool) "second iteration exhausted" true
    (f.S.fresh ~iteration:1 = None)

let test_replay_divergence_raises () =
  let trace = Trace.of_list [ Trace.Schedule 7 ] in
  let s = get_fresh (Psharp.Replay_strategy.factory trace) ~iteration:0 in
  Alcotest.(check bool) "divergence raises Bug" true
    (try
       ignore (s.S.next_schedule ~enabled:[| 0; 1 |] ~n:2 ~step:0);
       false
     with Psharp.Error.Bug (Psharp.Error.Replay_divergence _) -> true)

let test_dfs_enumerates_booleans () =
  (* A "program" with two boolean choices: DFS must enumerate all four
     outcomes, then exhaust. *)
  let f = Psharp.Dfs_strategy.factory () in
  let outcomes = ref [] in
  let rec go iteration =
    match f.S.fresh ~iteration with
    | None -> ()
    | Some s ->
      let a = s.S.next_bool ~step:0 in
      let b = s.S.next_bool ~step:1 in
      outcomes := (a, b) :: !outcomes;
      go (iteration + 1)
  in
  go 0;
  let sorted = List.sort_uniq compare !outcomes in
  Alcotest.(check int) "four distinct outcomes" 4 (List.length sorted);
  Alcotest.(check int) "exactly four executions" 4 (List.length !outcomes)

let test_dfs_enumerates_schedules () =
  (* Two scheduling choices over two machines: 4 paths. *)
  let f = Psharp.Dfs_strategy.factory () in
  let outcomes = ref [] in
  let rec go iteration =
    match f.S.fresh ~iteration with
    | None -> ()
    | Some s ->
      let a = s.S.next_schedule ~enabled:[| 0; 1 |] ~n:2 ~step:0 in
      let b = s.S.next_schedule ~enabled:[| 0; 1 |] ~n:2 ~step:1 in
      outcomes := (a, b) :: !outcomes;
      go (iteration + 1)
  in
  go 0;
  Alcotest.(check int) "four paths" 4 (List.length (List.sort_uniq compare !outcomes))

let test_dfs_int_cap () =
  let f = Psharp.Dfs_strategy.factory ~int_cap:2 () in
  let outcomes = ref [] in
  let rec go iteration =
    match f.S.fresh ~iteration with
    | None -> ()
    | Some s ->
      outcomes := s.S.next_int ~bound:100 ~step:0 :: !outcomes;
      go (iteration + 1)
  in
  go 0;
  Alcotest.(check (list int)) "capped enumeration" [ 0; 1 ]
    (List.sort compare !outcomes)

let suite =
  [
    Alcotest.test_case "random deterministic per seed" `Quick
      test_random_deterministic_per_seed;
    Alcotest.test_case "random iterations differ" `Quick
      test_random_iterations_differ;
    Alcotest.test_case "random covers machines" `Quick
      test_random_covers_all_machines;
    Alcotest.test_case "random respects enabled set" `Quick
      test_random_respects_enabled;
    Alcotest.test_case "pct stable without change points" `Quick
      test_pct_prefers_priority;
    Alcotest.test_case "pct change points take effect" `Quick
      test_pct_change_points_change_schedule;
    Alcotest.test_case "round robin cycles" `Quick test_rr_cycles;
    Alcotest.test_case "replay feeds back" `Quick test_replay_feeds_back;
    Alcotest.test_case "replay single iteration" `Quick
      test_replay_single_iteration;
    Alcotest.test_case "replay divergence" `Quick test_replay_divergence_raises;
    Alcotest.test_case "dfs enumerates booleans" `Quick
      test_dfs_enumerates_booleans;
    Alcotest.test_case "dfs enumerates schedules" `Quick
      test_dfs_enumerates_schedules;
    Alcotest.test_case "dfs int cap" `Quick test_dfs_int_cap;
  ]
