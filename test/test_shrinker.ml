(* Trace shrinking: shrunk witnesses are no longer than the original,
   still fail with the same bug kind, and replay exactly. *)

module E = Psharp.Engine
module Error = Psharp.Error
module Trace = Psharp.Trace

let config =
  {
    E.default_config with
    max_executions = 5_000;
    max_steps = 2_000;
    seed = 3L;
  }

let bug1_harness = Replication.Harness.test ~bugs:Replication.Bug_flags.bug1 ()
let monitors () = Replication.Harness.monitors ()

let find_bug () =
  match E.run ~monitors config bug1_harness with
  | E.Bug_found (report, _) -> report
  | E.No_bug _ -> Alcotest.fail "bug 1 not found"

let test_shrinks_and_replays () =
  let original = find_bug () in
  let shrunk = Psharp.Shrinker.shrink ~monitors config original bug1_harness in
  Alcotest.(check bool) "not longer" true
    (Trace.length shrunk.Error.trace <= Trace.length original.Error.trace);
  (match (original.Error.kind, shrunk.Error.kind) with
   | Error.Safety_violation a, Error.Safety_violation b ->
     Alcotest.(check string) "same monitor" a.monitor b.monitor
   | _ -> Alcotest.fail "kind changed");
  let result = E.replay ~monitors config shrunk.Error.trace bug1_harness in
  match result.Psharp.Runtime.bug with
  | Some (Error.Safety_violation _) -> ()
  | _ -> Alcotest.fail "shrunk trace does not replay"

let test_shrink_actually_reduces () =
  (* Not guaranteed in general, but stable for this seed; guards against
     the shrinker silently becoming a no-op. *)
  let original = find_bug () in
  let shrunk = Psharp.Shrinker.shrink ~monitors config original bug1_harness in
  Alcotest.(check bool) "strictly shorter" true
    (Trace.length shrunk.Error.trace < Trace.length original.Error.trace)

let test_shrink_assertion_bug () =
  let harness = Chaintable.Harness.test_for_bug "DeletePrimaryKey" in
  let cfg = { config with max_steps = 4_000 } in
  match E.run cfg harness with
  | E.No_bug _ -> Alcotest.fail "DeletePrimaryKey not found"
  | E.Bug_found (report, _) ->
    let shrunk = Psharp.Shrinker.shrink cfg report harness in
    Alcotest.(check bool) "not longer" true
      (Trace.length shrunk.Error.trace <= Trace.length report.Error.trace);
    let result = E.replay cfg shrunk.Error.trace harness in
    (match result.Psharp.Runtime.bug with
     | Some (Error.Assertion_failure _) -> ()
     | _ -> Alcotest.fail "shrunk trace does not replay")

let test_lenient_divergence_abandons_stale_tape () =
  (* Regression: once the lenient replay strategy diverges it must abandon
     the rest of the recorded tape entirely. If a stale tape were still
     consulted, the recorded [Int 5] (valid for bound 6) would leak into
     the diverged run at step 1 for every seed; at least one seed drawing
     something else proves the tape was dropped. *)
  let recorded = Trace.of_list [ Trace.Int 20; Trace.Int 5 ] in
  let differs seed =
    let s = Psharp.Shrinker.lenient_strategy recorded ~seed in
    let v0 = s.Psharp.Strategy.next_int ~bound:10 ~step:0 in
    Alcotest.(check bool) "diverged draw in range" true (v0 >= 0 && v0 < 10);
    let v1 = s.Psharp.Strategy.next_int ~bound:6 ~step:1 in
    Alcotest.(check bool) "post-divergence draw in range" true
      (v1 >= 0 && v1 < 6);
    v1 <> 5
  in
  let seeds = List.init 10 (fun i -> Int64.of_int (100 + i)) in
  Alcotest.(check bool) "stale tape abandoned after divergence" true
    (List.exists differs seeds)

let suite =
  [
    Alcotest.test_case "shrinks and replays" `Slow test_shrinks_and_replays;
    Alcotest.test_case "lenient divergence abandons the stale tape" `Quick
      test_lenient_divergence_abandons_stale_tape;
    Alcotest.test_case "actually reduces" `Slow test_shrink_actually_reduces;
    Alcotest.test_case "shrinks an assertion bug" `Slow
      test_shrink_assertion_bug;
  ]
