(* Coverage maps, engine coverage plumbing, the plateau bound and the
   feedback-directed fuzz strategy. *)

module Coverage = Psharp.Coverage
module E = Psharp.Engine
module R = Psharp.Runtime
module Error = Psharp.Error
module Trace = Psharp.Trace
module Event = Psharp.Event

type Event.t += Token

(* Same minimal racy program as test_parallel: roughly half of all
   schedules violate the referee's assertion. *)
let racy_harness ctx =
  let first = ref None in
  let referee =
    R.create ctx ~name:"Referee" (fun rctx ->
        ignore (R.receive rctx);
        R.assert_here rctx (!first = Some "A") "B overtook A")
  in
  let writer name wctx =
    if !first = None then first := Some name;
    R.send wctx referee Token
  in
  ignore (R.create ctx ~name:"A" (writer "A"));
  ignore (R.create ctx ~name:"B" (writer "B"))

let clean_harness ctx =
  let echo = R.create ctx ~name:"Echo" (fun ectx -> ignore (R.receive ectx)) in
  R.send ctx echo Token

let config = { E.default_config with max_executions = 500; max_steps = 200 }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- Map construction and merging -------------------------------------- *)

(* Three overlapping per-execution maps, as the workers would produce. *)
let sample_maps () =
  let a = Coverage.create () in
  Coverage.visit_state a ~machine:"M" ~state:"Init";
  Coverage.deliver a ~sender:"A" ~event:"Token" ~receiver:"M" ~state:"Init";
  Coverage.branch_bool a ~machine:"M" true;
  Coverage.note_execution a ~fingerprint:1L;
  let b = Coverage.create () in
  Coverage.visit_state b ~machine:"M" ~state:"Init";
  Coverage.visit_state b ~machine:"M" ~state:"Done";
  Coverage.branch_int b ~machine:"M" ~bound:3 2;
  Coverage.note_execution b ~fingerprint:2L;
  let c = Coverage.create () in
  Coverage.deliver c ~sender:"B" ~event:"Token" ~receiver:"M" ~state:"Done";
  Coverage.branch_bool c ~machine:"M" true;
  Coverage.note_execution c ~fingerprint:1L;
  (a, b, c)

let test_absorb_order_independent () =
  let merge order =
    let acc = Coverage.create () in
    List.iter (fun m -> ignore (Coverage.absorb ~into:acc m)) order;
    acc
  in
  let a, b, c = sample_maps () in
  let abc = merge [ a; b; c ] in
  let a, b, c = sample_maps () in
  let cba = merge [ c; b; a ] in
  let a, b, c = sample_maps () in
  let bac = merge [ b; a; c ] in
  Alcotest.(check bool) "abc = cba" true (Coverage.equal abc cba);
  Alcotest.(check bool) "abc = bac" true (Coverage.equal abc bac);
  let t = Coverage.totals abc in
  Alcotest.(check int) "states" 2 t.Coverage.machine_states;
  Alcotest.(check int) "event types" 1 t.Coverage.event_types;
  Alcotest.(check int) "triples" 2 t.Coverage.transition_triples;
  Alcotest.(check int) "branches" 2 t.Coverage.branch_outcomes;
  Alcotest.(check int) "unique schedules" 2 t.Coverage.unique_schedules;
  Alcotest.(check int) "executions" 3 t.Coverage.executions

let test_absorb_novelty () =
  let acc = Coverage.create () in
  let a, _, _ = sample_maps () in
  Alcotest.(check bool) "first absorb is novel" true
    (Coverage.absorb ~into:acc a);
  let a, _, _ = sample_maps () in
  Alcotest.(check bool) "identical absorb is not novel" false
    (Coverage.absorb ~into:acc a);
  (* A new schedule fingerprint alone does not count as novelty: random
     scheduling makes almost every schedule unique, which would drown the
     feedback signal. *)
  let fp_only = Coverage.create () in
  Coverage.visit_state fp_only ~machine:"M" ~state:"Init";
  Coverage.note_execution fp_only ~fingerprint:99L;
  Alcotest.(check bool) "new fingerprint alone is not novel" false
    (Coverage.absorb ~into:acc fp_only);
  let t = Coverage.totals acc in
  Alcotest.(check int) "fingerprint still filed" 2 t.Coverage.unique_schedules;
  Alcotest.(check int) "executions counted" 3 t.Coverage.executions

let test_fingerprint_pure () =
  let t1 = Trace.of_list [ Trace.Schedule 0; Trace.Bool true; Trace.Int 7 ] in
  let t2 = Trace.of_list [ Trace.Schedule 0; Trace.Bool true; Trace.Int 7 ] in
  let t3 = Trace.of_list [ Trace.Schedule 0; Trace.Bool false; Trace.Int 7 ] in
  Alcotest.(check bool) "same trace, same fingerprint" true
    (Int64.equal (Coverage.fingerprint t1) (Coverage.fingerprint t2));
  Alcotest.(check bool) "different trace, different fingerprint" false
    (Int64.equal (Coverage.fingerprint t1) (Coverage.fingerprint t3));
  Alcotest.(check bool) "empty differs from sample" false
    (Int64.equal (Coverage.fingerprint Trace.empty) (Coverage.fingerprint t1))

(* --- Engine plumbing ---------------------------------------------------- *)

let test_run_collects_coverage_and_files_bug_fingerprint () =
  match E.run { config with E.collect_coverage = true } racy_harness with
  | E.No_bug _ -> Alcotest.fail "race not found"
  | E.Bug_found (report, stats) ->
    let cov =
      match stats.E.coverage with
      | Some cov -> cov
      | None -> Alcotest.fail "coverage requested but absent"
    in
    let t = Coverage.totals cov in
    Alcotest.(check bool) "saw states" true (t.Coverage.machine_states > 0);
    Alcotest.(check bool) "saw triples" true
      (t.Coverage.transition_triples > 0);
    Alcotest.(check int) "every execution counted" stats.E.executions
      t.Coverage.executions;
    (* The buggy schedule's fingerprint is in the run's schedule set, and
       replaying the recorded trace reproduces it exactly. *)
    let fp = Coverage.fingerprint report.Error.trace in
    Alcotest.(check bool) "bug fingerprint filed" true
      (List.mem_assoc fp (Coverage.schedules cov));
    let result = E.replay config report.Error.trace racy_harness in
    Alcotest.(check bool) "replay reproduces the fingerprint" true
      (Int64.equal fp (Coverage.fingerprint result.R.choices))

let test_parallel_coverage_matches_sequential () =
  let cfg = { config with E.max_executions = 100; collect_coverage = true } in
  let coverage_of workers =
    match E.run { cfg with E.workers } clean_harness with
    | E.No_bug { coverage = Some cov; _ } -> cov
    | E.No_bug _ -> Alcotest.fail "coverage absent"
    | E.Bug_found _ -> Alcotest.fail "clean harness reported a bug"
  in
  let seq = coverage_of 1 in
  let par = coverage_of 2 in
  Alcotest.(check bool) "identical maps at the same budget" true
    (Coverage.equal seq par);
  let ts = Coverage.totals seq and tp = Coverage.totals par in
  Alcotest.(check int) "same executions" ts.Coverage.executions
    tp.Coverage.executions;
  Alcotest.(check int) "same unique schedules" ts.Coverage.unique_schedules
    tp.Coverage.unique_schedules

let test_plateau_stops_early () =
  let cfg =
    {
      config with
      E.max_executions = 5_000;
      coverage_plateau = Some 20;
    }
  in
  match E.run cfg clean_harness with
  | E.Bug_found _ -> Alcotest.fail "clean harness reported a bug"
  | E.No_bug stats ->
    Alcotest.(check bool) "plateaued" true stats.E.plateaued;
    Alcotest.(check bool) "stopped far short of the budget" true
      (stats.E.executions < 5_000);
    Alcotest.(check bool) "coverage collected implicitly" true
      (stats.E.coverage <> None)

let test_explore_never_stops_at_bugs () =
  let stats = E.explore { config with E.max_executions = 50 } racy_harness in
  Alcotest.(check int) "full budget spent" 50 stats.E.executions;
  match stats.E.coverage with
  | None -> Alcotest.fail "explore must collect coverage"
  | Some cov ->
    Alcotest.(check int) "every execution in the map" 50
      (Coverage.totals cov).Coverage.executions

(* --- Fuzz strategy ------------------------------------------------------ *)

let test_fuzz_finds_race_deterministically () =
  let cfg =
    { config with E.strategy = E.Fuzz { corpus_cap = 8 }; seed = 11L }
  in
  let run () =
    match E.run cfg racy_harness with
    | E.Bug_found (report, stats) -> (report, stats)
    | E.No_bug _ -> Alcotest.fail "fuzz did not find the race"
  in
  let r1, s1 = run () in
  let r2, s2 = run () in
  Alcotest.(check int) "same executions to bug" s1.E.executions
    s2.E.executions;
  Alcotest.(check bool) "same witness trace" true
    (Trace.equal r1.Error.trace r2.Error.trace);
  (* The witness replays deterministically like any other strategy's. *)
  let result = E.replay cfg r1.Error.trace racy_harness in
  match result.R.bug with
  | Some (Error.Assertion_failure _) -> ()
  | _ -> Alcotest.fail "fuzz witness did not replay"

let test_fuzz_ignores_workers () =
  (* Fuzz is stateful (corpus), so [workers] falls back to sequential and
     the result matches the sequential run exactly. *)
  let cfg =
    { config with E.strategy = E.Fuzz { corpus_cap = 8 }; seed = 11L }
  in
  let witness cfg =
    match E.run cfg racy_harness with
    | E.Bug_found (report, _) -> report.Error.trace
    | E.No_bug _ -> Alcotest.fail "fuzz did not find the race"
  in
  Alcotest.(check bool) "workers=4 matches sequential" true
    (Trace.equal (witness cfg) (witness { cfg with E.workers = 4 }))

(* --- Reporting ---------------------------------------------------------- *)

let test_pp_outcome_shows_steps_and_coverage () =
  let outcome = E.run { config with E.collect_coverage = true } racy_harness in
  let rendered = Format.asprintf "%a" E.pp_outcome outcome in
  Alcotest.(check bool) "mentions total steps" true
    (contains rendered "total step");
  Alcotest.(check bool) "mentions coverage states" true
    (contains rendered "states")

let test_to_json_wellformed () =
  let a, b, _ = sample_maps () in
  ignore (Coverage.absorb ~into:a b);
  let json = Coverage.to_json a in
  Alcotest.(check bool) "has totals" true (contains json "\"totals\"");
  Alcotest.(check bool) "has triples" true
    (contains json "A -[Token]-> M@Init");
  Alcotest.(check bool) "has schedules" true
    (contains json "\"schedule_fingerprints\"")

let suite =
  [
    Alcotest.test_case "absorb is order-independent" `Quick
      test_absorb_order_independent;
    Alcotest.test_case "absorb novelty excludes fingerprints" `Quick
      test_absorb_novelty;
    Alcotest.test_case "fingerprint is pure" `Quick test_fingerprint_pure;
    Alcotest.test_case "run collects coverage, files bug fingerprint" `Quick
      test_run_collects_coverage_and_files_bug_fingerprint;
    Alcotest.test_case "parallel coverage = sequential" `Quick
      test_parallel_coverage_matches_sequential;
    Alcotest.test_case "plateau stops early" `Quick test_plateau_stops_early;
    Alcotest.test_case "explore never stops at bugs" `Quick
      test_explore_never_stops_at_bugs;
    Alcotest.test_case "fuzz finds race deterministically" `Quick
      test_fuzz_finds_race_deterministically;
    Alcotest.test_case "fuzz ignores workers" `Quick test_fuzz_ignores_workers;
    Alcotest.test_case "pp_outcome shows steps and coverage" `Quick
      test_pp_outcome_shows_steps_and_coverage;
    Alcotest.test_case "to_json is well-formed" `Quick test_to_json_wellformed;
  ]
