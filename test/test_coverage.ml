(* Coverage maps, engine coverage plumbing, the plateau bound and the
   feedback-directed fuzz strategy. *)

module Coverage = Psharp.Coverage
module E = Psharp.Engine
module R = Psharp.Runtime
module Error = Psharp.Error
module Trace = Psharp.Trace
module Event = Psharp.Event
module Fuzz = Psharp.Fuzz_strategy

type Event.t += Token

(* Same minimal racy program as test_parallel: roughly half of all
   schedules violate the referee's assertion. *)
let racy_harness ctx =
  let first = ref None in
  let referee =
    R.create ctx ~name:"Referee" (fun rctx ->
        ignore (R.receive rctx);
        R.assert_here rctx (!first = Some "A") "B overtook A")
  in
  let writer name wctx =
    if !first = None then first := Some name;
    R.send wctx referee Token
  in
  ignore (R.create ctx ~name:"A" (writer "A"));
  ignore (R.create ctx ~name:"B" (writer "B"))

let clean_harness ctx =
  let echo = R.create ctx ~name:"Echo" (fun ectx -> ignore (R.receive ectx)) in
  R.send ctx echo Token

let config = { E.default_config with max_executions = 500; max_steps = 200 }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- Map construction and merging -------------------------------------- *)

(* Three overlapping per-execution maps, as the workers would produce. *)
let sample_maps () =
  let a = Coverage.create () in
  Coverage.visit_state a ~machine:"M" ~state:"Init";
  Coverage.deliver a ~sender:"A" ~event:"Token" ~receiver:"M" ~state:"Init";
  Coverage.branch_bool a ~machine:"M" true;
  Coverage.note_execution a ~fingerprint:1L;
  let b = Coverage.create () in
  Coverage.visit_state b ~machine:"M" ~state:"Init";
  Coverage.visit_state b ~machine:"M" ~state:"Done";
  Coverage.branch_int b ~machine:"M" ~bound:3 2;
  Coverage.note_execution b ~fingerprint:2L;
  let c = Coverage.create () in
  Coverage.deliver c ~sender:"B" ~event:"Token" ~receiver:"M" ~state:"Done";
  Coverage.branch_bool c ~machine:"M" true;
  Coverage.note_execution c ~fingerprint:1L;
  (a, b, c)

let test_absorb_order_independent () =
  let merge order =
    let acc = Coverage.create () in
    List.iter (fun m -> ignore (Coverage.absorb ~into:acc m)) order;
    acc
  in
  let a, b, c = sample_maps () in
  let abc = merge [ a; b; c ] in
  let a, b, c = sample_maps () in
  let cba = merge [ c; b; a ] in
  let a, b, c = sample_maps () in
  let bac = merge [ b; a; c ] in
  Alcotest.(check bool) "abc = cba" true (Coverage.equal abc cba);
  Alcotest.(check bool) "abc = bac" true (Coverage.equal abc bac);
  let t = Coverage.totals abc in
  Alcotest.(check int) "states" 2 t.Coverage.machine_states;
  Alcotest.(check int) "event types" 1 t.Coverage.event_types;
  Alcotest.(check int) "triples" 2 t.Coverage.transition_triples;
  Alcotest.(check int) "branches" 2 t.Coverage.branch_outcomes;
  Alcotest.(check int) "unique schedules" 2 t.Coverage.unique_schedules;
  Alcotest.(check int) "executions" 3 t.Coverage.executions

let test_absorb_novelty () =
  let acc = Coverage.create () in
  let a, _, _ = sample_maps () in
  Alcotest.(check bool) "first absorb is novel" true
    (Coverage.absorb ~into:acc a);
  let a, _, _ = sample_maps () in
  Alcotest.(check bool) "identical absorb is not novel" false
    (Coverage.absorb ~into:acc a);
  (* A new schedule fingerprint alone does not count as novelty: random
     scheduling makes almost every schedule unique, which would drown the
     feedback signal. *)
  let fp_only = Coverage.create () in
  Coverage.visit_state fp_only ~machine:"M" ~state:"Init";
  Coverage.note_execution fp_only ~fingerprint:99L;
  Alcotest.(check bool) "new fingerprint alone is not novel" false
    (Coverage.absorb ~into:acc fp_only);
  let t = Coverage.totals acc in
  Alcotest.(check int) "fingerprint still filed" 2 t.Coverage.unique_schedules;
  Alcotest.(check int) "executions counted" 3 t.Coverage.executions

let test_absorb_tagged_families () =
  let acc = Coverage.create () in
  let a, _, _ = sample_maps () in
  let n = Coverage.absorb_tagged ~into:acc a in
  Alcotest.(check int) "one new state" 1 n.Coverage.new_states;
  Alcotest.(check int) "one new event type" 1 n.Coverage.new_events;
  Alcotest.(check int) "one new triple" 1 n.Coverage.new_triples;
  Alcotest.(check int) "one new branch" 1 n.Coverage.new_branches;
  Alcotest.(check int) "no fault points" 0 n.Coverage.new_faults;
  Alcotest.(check bool) "core-novel" true (Coverage.novel_core n);
  Alcotest.(check (list string))
    "novel families in canonical order"
    [ "state"; "event"; "triple"; "branch" ]
    (List.map Coverage.family_kind_to_string (Coverage.novel_families n));
  (* the identical map again: nothing novel anywhere *)
  let a, _, _ = sample_maps () in
  let n2 = Coverage.absorb_tagged ~into:acc a in
  Alcotest.(check bool) "re-absorb not novel" false (Coverage.novel_core n2);
  Alcotest.(check (list string)) "no novel families" []
    (List.map Coverage.family_kind_to_string (Coverage.novel_families n2));
  (* a new hb fingerprint is reported in new_hb but excluded from the
     boolean core summary (the historical absorb semantics) *)
  let hb_only = Coverage.create () in
  Coverage.visit_state hb_only ~machine:"M" ~state:"Init";
  Coverage.note_hb hb_only ~fingerprint:7L;
  let n3 = Coverage.absorb_tagged ~into:acc hb_only in
  Alcotest.(check int) "new hb counted" 1 n3.Coverage.new_hb;
  Alcotest.(check bool) "hb alone is not core-novel" false
    (Coverage.novel_core n3);
  Alcotest.(check bool) "but novel_in Hb sees it" true
    (Coverage.novel_in n3 Coverage.Hb);
  Alcotest.(check bool) "absorb agrees with novel_core" false
    (let acc2 = Coverage.create () in
     ignore (Coverage.absorb ~into:acc2 hb_only);
     let again = Coverage.create () in
     Coverage.visit_state again ~machine:"M" ~state:"Init";
     Coverage.note_hb again ~fingerprint:8L;
     Coverage.absorb ~into:acc2 again)

let test_family_kind_strings () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "round-trips" true
        (Coverage.family_kind_of_string (Coverage.family_kind_to_string k) = k))
    Coverage.all_family_kinds;
  match Coverage.family_kind_of_string "warp" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown family name accepted"

let test_fingerprint_pure () =
  let t1 = Trace.of_list [ Trace.Schedule 0; Trace.Bool true; Trace.Int 7 ] in
  let t2 = Trace.of_list [ Trace.Schedule 0; Trace.Bool true; Trace.Int 7 ] in
  let t3 = Trace.of_list [ Trace.Schedule 0; Trace.Bool false; Trace.Int 7 ] in
  Alcotest.(check bool) "same trace, same fingerprint" true
    (Int64.equal (Coverage.fingerprint t1) (Coverage.fingerprint t2));
  Alcotest.(check bool) "different trace, different fingerprint" false
    (Int64.equal (Coverage.fingerprint t1) (Coverage.fingerprint t3));
  Alcotest.(check bool) "empty differs from sample" false
    (Int64.equal (Coverage.fingerprint Trace.empty) (Coverage.fingerprint t1))

(* --- Engine plumbing ---------------------------------------------------- *)

let test_run_collects_coverage_and_files_bug_fingerprint () =
  match E.run { config with E.collect_coverage = true } racy_harness with
  | E.No_bug _ -> Alcotest.fail "race not found"
  | E.Bug_found (report, stats) ->
    let cov =
      match stats.E.coverage with
      | Some cov -> cov
      | None -> Alcotest.fail "coverage requested but absent"
    in
    let t = Coverage.totals cov in
    Alcotest.(check bool) "saw states" true (t.Coverage.machine_states > 0);
    Alcotest.(check bool) "saw triples" true
      (t.Coverage.transition_triples > 0);
    Alcotest.(check int) "every execution counted" stats.E.executions
      t.Coverage.executions;
    (* The buggy schedule's fingerprint is in the run's schedule set, and
       replaying the recorded trace reproduces it exactly. *)
    let fp = Coverage.fingerprint report.Error.trace in
    Alcotest.(check bool) "bug fingerprint filed" true
      (List.mem_assoc fp (Coverage.schedules cov));
    let result = E.replay config report.Error.trace racy_harness in
    Alcotest.(check bool) "replay reproduces the fingerprint" true
      (Int64.equal fp (Coverage.fingerprint result.R.choices))

let test_parallel_coverage_matches_sequential () =
  let cfg = { config with E.max_executions = 100; collect_coverage = true } in
  let coverage_of workers =
    match E.run { cfg with E.workers } clean_harness with
    | E.No_bug { coverage = Some cov; _ } -> cov
    | E.No_bug _ -> Alcotest.fail "coverage absent"
    | E.Bug_found _ -> Alcotest.fail "clean harness reported a bug"
  in
  let seq = coverage_of 1 in
  let par = coverage_of 2 in
  Alcotest.(check bool) "identical maps at the same budget" true
    (Coverage.equal seq par);
  let ts = Coverage.totals seq and tp = Coverage.totals par in
  Alcotest.(check int) "same executions" ts.Coverage.executions
    tp.Coverage.executions;
  Alcotest.(check int) "same unique schedules" ts.Coverage.unique_schedules
    tp.Coverage.unique_schedules

let test_plateau_stops_early () =
  let cfg =
    {
      config with
      E.max_executions = 5_000;
      coverage_plateau = Some 20;
    }
  in
  match E.run cfg clean_harness with
  | E.Bug_found _ -> Alcotest.fail "clean harness reported a bug"
  | E.No_bug stats ->
    Alcotest.(check bool) "plateaued" true stats.E.plateaued;
    Alcotest.(check bool) "stopped far short of the budget" true
      (stats.E.executions < 5_000);
    Alcotest.(check bool) "coverage collected implicitly" true
      (stats.E.coverage <> None)

let test_explore_never_stops_at_bugs () =
  let stats = E.explore { config with E.max_executions = 50 } racy_harness in
  Alcotest.(check int) "full budget spent" 50 stats.E.executions;
  match stats.E.coverage with
  | None -> Alcotest.fail "explore must collect coverage"
  | Some cov ->
    Alcotest.(check int) "every execution in the map" 50
      (Coverage.totals cov).Coverage.executions

(* --- Fuzz strategy ------------------------------------------------------ *)

let test_fuzz_finds_race_deterministically () =
  let cfg =
    { config with E.strategy = E.Fuzz { corpus_cap = 8 }; seed = 11L }
  in
  let run () =
    match E.run cfg racy_harness with
    | E.Bug_found (report, stats) -> (report, stats)
    | E.No_bug _ -> Alcotest.fail "fuzz did not find the race"
  in
  let r1, s1 = run () in
  let r2, s2 = run () in
  Alcotest.(check int) "same executions to bug" s1.E.executions
    s2.E.executions;
  Alcotest.(check bool) "same witness trace" true
    (Trace.equal r1.Error.trace r2.Error.trace);
  (* The witness replays deterministically like any other strategy's. *)
  let result = E.replay cfg r1.Error.trace racy_harness in
  match result.R.bug with
  | Some (Error.Assertion_failure _) -> ()
  | _ -> Alcotest.fail "fuzz witness did not replay"

let test_fuzz_ignores_workers () =
  (* Fuzz is stateful (corpus), so [workers] falls back to sequential and
     the result matches the sequential run exactly. *)
  let cfg =
    { config with E.strategy = E.Fuzz { corpus_cap = 8 }; seed = 11L }
  in
  let witness cfg =
    match E.run cfg racy_harness with
    | E.Bug_found (report, _) -> report.Error.trace
    | E.No_bug _ -> Alcotest.fail "fuzz did not find the race"
  in
  Alcotest.(check bool) "workers=4 matches sequential" true
    (Trace.equal (witness cfg) (witness { cfg with E.workers = 4 }))

(* --- Fuzzing v2: mutation operators, power schedule, exchange, plateau -- *)

let e1_choices =
  [
    Trace.Schedule 0;
    Trace.Bool true;
    Trace.Int 5;
    Trace.Schedule 1;
    Trace.Bool true;
    Trace.Int 4;
    Trace.Schedule 0;
    Trace.Bool true;
  ]

let e2_choices =
  [ Trace.Schedule 1; Trace.Int 3; Trace.Schedule 0; Trace.Bool false; Trace.Int 2 ]

let mutation_corpus () = [ Trace.of_list e1_choices; Trace.of_list e2_choices ]

let mutants op =
  List.init 64 (fun s ->
      Array.of_list
        (Trace.to_list
           (Fuzz.mutate_for_test ~seed:(Int64.of_int s)
              ~corpus:(mutation_corpus ()) op)))

let is_prefix_of m e =
  Array.length m <= Array.length e
  && Array.for_all (fun i -> m.(i) = e.(i))
       (Array.init (Array.length m) Fun.id)

let test_mutation_operators_distinguishable () =
  let e1 = Array.of_list e1_choices and e2 = Array.of_list e2_choices in
  let source m =
    (* entry lengths differ, so a same-length mutant names its source *)
    if Array.length m = Array.length e1 then Some e1
    else if Array.length m = Array.length e2 then Some e2
    else None
  in
  let tr = mutants Fuzz.Truncate
  and rw = mutants Fuzz.Rewindow
  and sp = mutants Fuzz.Splice
  and ft = mutants Fuzz.Fault_tune in
  (* Truncate: always a non-empty prefix of a corpus entry. *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "truncate keeps a non-empty prefix" true
        (Array.length m > 0 && (is_prefix_of m e1 || is_prefix_of m e2)))
    tr;
  (* Rewindow: same length as its source, and — the repaired behavior —
     at least one mutant perturbs the interior while the final choice
     (beyond the window) survives. The pre-fix operator could only
     produce prefixes, indistinguishable from Truncate. *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "rewindow preserves the length" true
        (source m <> None))
    rw;
  Alcotest.(check bool) "rewindow perturbs the interior, keeps the suffix"
    true
    (List.exists
       (fun m ->
         match source m with
         | Some e ->
           let last = Array.length e - 1 in
           m.(last) = e.(last)
           && List.exists (fun i -> m.(i) <> e.(i))
                (List.init last Fun.id)
         | None -> false)
       rw);
  (* Splice: can cross entries, producing traces longer than either. *)
  Alcotest.(check bool) "splice crosses entries" true
    (List.exists (fun m -> Array.length m > Array.length e1) sp);
  (* Fault_tune: the Schedule spine is byte-identical to the source; only
     value draws move, and at least one actually does. *)
  let tuned = ref false in
  List.iter
    (fun m ->
      match source m with
      | None -> Alcotest.fail "fault-tune changed the length"
      | Some e ->
        Array.iteri
          (fun i c ->
            match e.(i) with
            | Trace.Schedule _ ->
              Alcotest.(check bool) "schedule spine untouched" true (c = e.(i))
            | Trace.Bool _ | Trace.Int _ -> if c <> e.(i) then tuned := true)
          m)
    ft;
  Alcotest.(check bool) "fault-tune perturbed some value draw" true !tuned;
  (* The three schedule operators yield pairwise different mutant streams
     from the same corpus and seeds. *)
  Alcotest.(check bool) "truncate <> rewindow" true (tr <> rw);
  Alcotest.(check bool) "truncate <> splice" true (tr <> sp);
  Alcotest.(check bool) "rewindow <> splice" true (rw <> sp)

let test_weighted_pick_distribution () =
  let energies = [| 1; 9; 2 |] in
  let counts = Array.make 3 0 in
  for r = 0 to 11 do
    let i =
      Fuzz.weighted_pick
        ~draw:(fun total ->
          Alcotest.(check int) "total is the energy sum" 12 total;
          r)
        energies
    in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check (list int)) "hits proportional to energy" [ 1; 9; 2 ]
    (Array.to_list counts);
  (* Non-positive energies are clamped to 1, never starved. *)
  Alcotest.(check int) "zero-energy entry still reachable" 0
    (Fuzz.weighted_pick ~draw:(fun _ -> 0) [| 0; 1 |])

let test_exchange_dedups_and_counts_drops () =
  let t1 = Trace.of_list [ Trace.Schedule 0; Trace.Bool true ] in
  let t2 = Trace.of_list [ Trace.Schedule 1 ] in
  let t3 = Trace.of_list [ Trace.Int 2 ] in
  let ex =
    Fuzz.Exchange.of_entries ~cap:2
      [
        { Fuzz.trace = t1; energy = 13; tags = [ Coverage.Fault; Coverage.Hb ] };
        Fuzz.entry_of_trace t1 (* same fingerprint: duplicate *);
        Fuzz.entry_of_trace t2;
        Fuzz.entry_of_trace t3 (* pool full: dropped at cap *);
      ]
  in
  let st = Fuzz.Exchange.stats ex in
  Alcotest.(check int) "accepted" 2 st.Fuzz.Exchange.accepted;
  Alcotest.(check int) "duplicate counted" 1 st.Fuzz.Exchange.dropped_dup;
  Alcotest.(check int) "cap drop counted" 1 st.Fuzz.Exchange.dropped_cap;
  match Fuzz.Exchange.snapshot ex with
  | [ a; b ] ->
    Alcotest.(check bool) "first entry survives with trace" true
      (Trace.equal a.Fuzz.trace t1);
    Alcotest.(check int) "energy preserved" 13 a.Fuzz.energy;
    Alcotest.(check (list string)) "tags preserved" [ "fault"; "hb" ]
      (List.map Coverage.family_kind_to_string a.Fuzz.tags);
    Alcotest.(check bool) "second entry is the non-duplicate" true
      (Trace.equal b.Fuzz.trace t2)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 entries, got %d" (List.length l))

let test_plateau_family_keys_the_bound () =
  (* Keyed to hb with happens-before tracking off, no execution ever
     contributes hb novelty — not even the first — so the hunt stops after
     exactly the bound. *)
  let cfg =
    {
      config with
      E.max_executions = 5_000;
      coverage_plateau = Some 10;
      plateau_family = Some Coverage.Hb;
    }
  in
  (match E.run cfg clean_harness with
  | E.Bug_found _ -> Alcotest.fail "clean harness reported a bug"
  | E.No_bug stats ->
    Alcotest.(check bool) "plateaued" true stats.E.plateaued;
    Alcotest.(check int) "no hb novelty from execution one" 10
      stats.E.executions);
  (* Keyed to the state family, the first execution's fresh states reset
     the counter before the drought starts. *)
  match E.run { cfg with E.plateau_family = Some Coverage.State } clean_harness with
  | E.Bug_found _ -> Alcotest.fail "clean harness reported a bug"
  | E.No_bug stats ->
    Alcotest.(check bool) "plateaued" true stats.E.plateaued;
    Alcotest.(check bool) "states reset the counter first" true
      (stats.E.executions > 10 && stats.E.executions < 5_000)

let test_fuzz_v2_deterministic () =
  (* Energy scheduling + fault mutation on (with hb tracking feeding the
     power schedule): still fully deterministic under a fixed seed, and
     the witness still replays. *)
  let cfg =
    {
      config with
      E.strategy = E.Fuzz { corpus_cap = 8 };
      seed = 11L;
      fuzz_energy = true;
      fuzz_mutate_faults = true;
      reduce = E.Hb_track;
    }
  in
  let run () =
    match E.run cfg racy_harness with
    | E.Bug_found (report, stats) -> (report, stats)
    | E.No_bug _ -> Alcotest.fail "fuzz v2 did not find the race"
  in
  let r1, s1 = run () in
  let r2, s2 = run () in
  Alcotest.(check int) "same executions to bug" s1.E.executions
    s2.E.executions;
  Alcotest.(check bool) "same witness trace" true
    (Trace.equal r1.Error.trace r2.Error.trace);
  let result = E.replay cfg r1.Error.trace racy_harness in
  match result.R.bug with
  | Some (Error.Assertion_failure _) -> ()
  | _ -> Alcotest.fail "fuzz v2 witness did not replay"

(* --- Reporting ---------------------------------------------------------- *)

let test_pp_outcome_shows_steps_and_coverage () =
  let outcome = E.run { config with E.collect_coverage = true } racy_harness in
  let rendered = Format.asprintf "%a" E.pp_outcome outcome in
  Alcotest.(check bool) "mentions total steps" true
    (contains rendered "total step");
  Alcotest.(check bool) "mentions coverage states" true
    (contains rendered "states")

let test_to_json_wellformed () =
  let a, b, _ = sample_maps () in
  ignore (Coverage.absorb ~into:a b);
  let json = Coverage.to_json a in
  Alcotest.(check bool) "has totals" true (contains json "\"totals\"");
  Alcotest.(check bool) "has triples" true
    (contains json "A -[Token]-> M@Init");
  Alcotest.(check bool) "has schedules" true
    (contains json "\"schedule_fingerprints\"")

let suite =
  [
    Alcotest.test_case "absorb is order-independent" `Quick
      test_absorb_order_independent;
    Alcotest.test_case "absorb novelty excludes fingerprints" `Quick
      test_absorb_novelty;
    Alcotest.test_case "absorb_tagged reports per-family novelty" `Quick
      test_absorb_tagged_families;
    Alcotest.test_case "family kind strings round-trip" `Quick
      test_family_kind_strings;
    Alcotest.test_case "fingerprint is pure" `Quick test_fingerprint_pure;
    Alcotest.test_case "run collects coverage, files bug fingerprint" `Quick
      test_run_collects_coverage_and_files_bug_fingerprint;
    Alcotest.test_case "parallel coverage = sequential" `Quick
      test_parallel_coverage_matches_sequential;
    Alcotest.test_case "plateau stops early" `Quick test_plateau_stops_early;
    Alcotest.test_case "explore never stops at bugs" `Quick
      test_explore_never_stops_at_bugs;
    Alcotest.test_case "fuzz finds race deterministically" `Quick
      test_fuzz_finds_race_deterministically;
    Alcotest.test_case "fuzz ignores workers" `Quick test_fuzz_ignores_workers;
    Alcotest.test_case "mutation operators are distinguishable" `Quick
      test_mutation_operators_distinguishable;
    Alcotest.test_case "weighted pick follows energies" `Quick
      test_weighted_pick_distribution;
    Alcotest.test_case "exchange dedups and counts drops" `Quick
      test_exchange_dedups_and_counts_drops;
    Alcotest.test_case "plateau family keys the bound" `Quick
      test_plateau_family_keys_the_bound;
    Alcotest.test_case "fuzz v2 is deterministic" `Quick
      test_fuzz_v2_deterministic;
    Alcotest.test_case "pp_outcome shows steps and coverage" `Quick
      test_pp_outcome_shows_steps_and_coverage;
    Alcotest.test_case "to_json is well-formed" `Quick test_to_json_wellformed;
  ]
