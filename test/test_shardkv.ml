(* The sharded KV harness (ISSUE 7): consistent-hash ring properties,
   catalog hunts for the three seeded rebalancing bugs under crash+delay
   faults on the virtual clock, fixed-variant cleanliness, and the
   history plumbing (on_history capture, coverage [history] family). *)

module E = Psharp.Engine
module Ring = Shardkv.Ring

let harness_ring () = Ring.create ~n_shards:4 ~replicas:2 [ "N0"; "N1" ]

(* --- ring placement ----------------------------------------------------- *)

let test_ring_determinism () =
  let a = harness_ring () and b = harness_ring () in
  Alcotest.(check string) "same nodes, same placement" (Ring.to_string a)
    (Ring.to_string b);
  for s = 0 to a.Ring.n_shards - 1 do
    Alcotest.(check (list string))
      (Printf.sprintf "shard %d placement" s)
      (Ring.placement a s) (Ring.placement b s)
  done;
  List.iter
    (fun k ->
      Alcotest.(check int) (k ^ " shard") (Ring.shard_of_key a k)
        (Ring.shard_of_key b k))
    [ "k0"; "k1"; "k2"; "key with spaces"; "" ]

let test_ring_placement_properties () =
  let check_ring ring =
    let n_nodes = List.length ring.Ring.nodes in
    for s = 0 to ring.Ring.n_shards - 1 do
      let p = Ring.placement ring s in
      Alcotest.(check int)
        (Printf.sprintf "shard %d replica count" s)
        (min ring.Ring.replicas n_nodes)
        (List.length p);
      Alcotest.(check int)
        (Printf.sprintf "shard %d replicas distinct" s)
        (List.length p)
        (List.length (List.sort_uniq compare p));
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d replica %s is a member" s n)
            true
            (List.mem n ring.Ring.nodes))
        p;
      Alcotest.(check string)
        (Printf.sprintf "shard %d primary heads placement" s)
        (List.hd p) (Ring.primary ring s)
    done
  in
  let before = harness_ring () in
  check_ring before;
  check_ring (Ring.add_node before "N2")

let test_ring_add_node () =
  let before = harness_ring () in
  let after = Ring.add_node before "N2" in
  Alcotest.(check int) "version bumps" (before.Ring.version + 1)
    after.Ring.version;
  Alcotest.(check int) "shards unchanged" before.Ring.n_shards
    after.Ring.n_shards;
  Alcotest.(check (list string))
    "membership in join order"
    (before.Ring.nodes @ [ "N2" ])
    after.Ring.nodes;
  (match Ring.add_node after "N2" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "re-joining an existing member accepted");
  (* keys hash to shards independently of membership *)
  List.iter
    (fun k ->
      Alcotest.(check int) (k ^ " shard stable across join")
        (Ring.shard_of_key before k) (Ring.shard_of_key after k))
    [ "k0"; "k1"; "k4"; "k63" ]

let test_ring_moved_shards () =
  let before = harness_ring () in
  let after = Ring.add_node before "N2" in
  let moved = Ring.moved_shards ~before ~after in
  (* moved_shards is exactly the primary-differs set... *)
  let recomputed =
    List.filter
      (fun s -> Ring.primary before s <> Ring.primary after s)
      (List.init before.Ring.n_shards Fun.id)
  in
  Alcotest.(check (list int)) "moved = primaries that changed" recomputed moved;
  (* ...and the join is a rebalance, not a reshuffle: something moves,
     but not everything (this is what the hash finalizer buys — raw FNV
     on short vnode labels collapses each node to one arc) *)
  Alcotest.(check bool) "join moves at least one shard" true (moved <> []);
  Alcotest.(check bool) "join does not move every shard" true
    (List.length moved < before.Ring.n_shards)

let test_moving_and_stable_keys () =
  let km, ks = Shardkv.Harness.moving_and_stable_keys () in
  let before = harness_ring () in
  let after = Ring.add_node before "N2" in
  let moved = Ring.moved_shards ~before ~after in
  Alcotest.(check bool) "moving key's shard migrates" true
    (List.mem (Ring.shard_of_key before km) moved);
  Alcotest.(check bool) "stable key's shard stays" false
    (List.mem (Ring.shard_of_key before ks) moved)

(* --- hunts and fixed variants ------------------------------------------- *)

let entry_config ?(executions = 2_000) name =
  let entry = Catalog.Bug_catalog.find name in
  {
    E.default_config with
    max_executions = executions;
    max_steps = entry.Catalog.Bug_catalog.max_steps;
    faults = entry.Catalog.Bug_catalog.faults;
    clock = entry.Catalog.Bug_catalog.clock;
    seed = 1L;
  }

let test_hunts_find_all_bugs () =
  List.iter
    (fun name ->
      let entry = Catalog.Bug_catalog.find name in
      match
        E.run (entry_config name) entry.Catalog.Bug_catalog.harness
      with
      | E.Bug_found (report, _) ->
        let kind = Psharp.Error.kind_to_string report.Psharp.Error.kind in
        Alcotest.(check bool)
          (name ^ " convicted by the linearizability oracle")
          true
          (String.length kind > 0
          && (let sub = "history not linearizable" in
              let n = String.length sub and m = String.length kind in
              let rec go i =
                i + n <= m && (String.sub kind i n = sub || go (i + 1))
              in
              go 0))
      | E.No_bug stats ->
        Alcotest.failf "%s not found in %d executions" name
          stats.E.executions)
    Shardkv.Bug_flags.names

let test_fixed_variants_clean () =
  (* the fixed harness must survive the same faults + clock that expose
     each seeded bug *)
  List.iter
    (fun name ->
      let entry = Catalog.Bug_catalog.find name in
      match
        E.run (entry_config name) entry.Catalog.Bug_catalog.fixed_harness
      with
      | E.No_bug _ -> ()
      | E.Bug_found (report, stats) ->
        Alcotest.failf "fixed %s flagged after %d executions: %s" name
          stats.E.executions
          (Psharp.Error.kind_to_string report.Psharp.Error.kind))
    Shardkv.Bug_flags.names

(* --- history plumbing --------------------------------------------------- *)

let test_on_history_capture () =
  let lines = ref [] in
  let config = { E.default_config with max_executions = 1 } in
  (match
     E.run config
       (Shardkv.Harness.test ~on_history:(fun l -> lines := l :: !lines) ())
   with
   | E.No_bug _ -> ()
   | E.Bug_found (report, _) ->
     Alcotest.failf "fault-free fixed run flagged: %s"
       (Psharp.Error.kind_to_string report.Psharp.Error.kind));
  let lines = List.rev !lines in
  Alcotest.(check int) "six completed operations" 6 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (l ^ " rendered as client op -> res")
        true
        (String.length l > 0
        && (String.sub l 0 1 = "C")
        && String.split_on_char ' ' l |> List.mem "->"))
    lines

let test_history_coverage_family () =
  let config =
    { E.default_config with max_executions = 5; collect_coverage = true }
  in
  match E.run config (Shardkv.Harness.test ()) with
  | E.Bug_found (report, _) ->
    Alcotest.failf "fault-free fixed run flagged: %s"
      (Psharp.Error.kind_to_string report.Psharp.Error.kind)
  | E.No_bug stats -> (
    match stats.E.coverage with
    | None -> Alcotest.fail "coverage requested but not returned"
    | Some cov ->
      let totals = Psharp.Coverage.totals cov in
      Alcotest.(check bool) "history coverage points recorded" true
        (totals.Psharp.Coverage.history_points > 0))

let suite =
  [
    Alcotest.test_case "ring determinism" `Quick test_ring_determinism;
    Alcotest.test_case "ring placement properties" `Quick
      test_ring_placement_properties;
    Alcotest.test_case "ring add_node" `Quick test_ring_add_node;
    Alcotest.test_case "ring moved_shards" `Quick test_ring_moved_shards;
    Alcotest.test_case "moving and stable keys" `Quick
      test_moving_and_stable_keys;
    Alcotest.test_case "hunts find all seeded bugs" `Slow
      test_hunts_find_all_bugs;
    Alcotest.test_case "fixed variants clean over 2000 executions" `Slow
      test_fixed_variants_clean;
    Alcotest.test_case "on_history captures completed ops" `Quick
      test_on_history_capture;
    Alcotest.test_case "history coverage family" `Quick
      test_history_coverage_family;
  ]
