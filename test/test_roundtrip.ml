(* Serialization round-trips (ISSUE 5 satellite 3): fixed-seed randomized
   batteries over [Trace.of_string]/[to_string] and
   [Fault.parse]/[to_string], plus strict-parsing rejection cases. *)

module Trace = Psharp.Trace
module Fault = Psharp.Fault
module Prng = Psharp.Prng

(* --- Trace --------------------------------------------------------------- *)

let random_trace prng =
  let len = Prng.int prng 60 in
  let choice () =
    match Prng.int prng 3 with
    | 0 -> Trace.Schedule (Prng.int prng 1_000)
    | 1 -> Trace.Bool (Prng.bool prng)
    | _ -> Trace.Int (Prng.int prng 1_000_000)
  in
  Trace.of_list (List.init len (fun _ -> choice ()))

let test_trace_roundtrip () =
  let prng = Prng.create ~seed:0x7e57L in
  for i = 1 to 600 do
    let t = random_trace prng in
    let s = Trace.to_string t in
    let t' = Trace.of_string s in
    if not (Trace.equal t t') then
      Alcotest.failf "trace round-trip %d failed for %S" i s;
    (* to_string is canonical: a second trip is the identity on strings *)
    if Trace.to_string t' <> s then
      Alcotest.failf "trace to_string not canonical on case %d" i
  done

let test_trace_rejections () =
  List.iter
    (fun s ->
      match Trace.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "malformed trace %S accepted" s)
    [
      "s:";            (* missing value *)
      "s:x";           (* not an int *)
      "b:2";           (* not a canonical bool *)
      "b:true";        (* wrong bool spelling *)
      "i:";            (* missing value *)
      "q:1";           (* unknown tag *)
      "s:1 s:2";       (* two choices on one line *)
      "s:1\n\ns:2";    (* blank line inside *)
      "s:1 ";          (* trailing junk *)
      "s:+1";          (* non-canonical int *)
    ]

(* --- Fault --------------------------------------------------------------- *)

let random_spec prng =
  let kinds =
    List.filter
      (fun _ -> Prng.bool prng)
      [ Fault.Drop; Fault.Duplicate; Fault.Delay; Fault.Crash ]
  in
  if kinds = [] then Fault.none
  else
    let delay_dist =
      if Prng.bool prng then Fault.Bimodal else Fault.Uniform
    in
    Fault.make ~budget:(Prng.int prng 10) ~delay_dist kinds

let test_fault_roundtrip () =
  let prng = Prng.create ~seed:0xfa17L in
  for i = 1 to 600 do
    let s = random_spec prng in
    let str = Fault.to_string s in
    match Fault.parse str with
    | Error e -> Alcotest.failf "case %d: %S did not parse back: %s" i str e
    | Ok s' ->
      (* max_delay is not serialized; everything else must survive *)
      if Fault.kinds s' <> Fault.kinds s then
        Alcotest.failf "case %d: kinds changed through %S" i str;
      if s'.Fault.delay_dist <> s.Fault.delay_dist then
        Alcotest.failf "case %d: delay_dist changed through %S" i str;
      let budget' = if Fault.kinds s = [] then 0 else s.Fault.budget in
      if s'.Fault.budget <> budget' then
        Alcotest.failf "case %d: budget changed through %S" i str;
      (* and to_string is a fixpoint of the grammar *)
      if Fault.to_string s' <> str then
        Alcotest.failf "case %d: to_string not canonical on %S" i str
  done

let test_fault_parse_accepts () =
  (match Fault.parse "none" with
   | Ok s -> Alcotest.(check bool) "none parses" false (Fault.enabled s)
   | Error e -> Alcotest.failf "none rejected: %s" e);
  (match Fault.parse "drop,crash(budget=3)" with
   | Ok s ->
     Alcotest.(check int) "budget suffix parsed" 3 s.Fault.budget;
     Alcotest.(check bool) "kinds parsed" true (s.Fault.drop && s.Fault.crash)
   | Error e -> Alcotest.failf "budget suffix rejected: %s" e);
  (match Fault.parse "delay" with
   | Ok s ->
     Alcotest.(check int) "no suffix: budget 1" 1 s.Fault.budget;
     Alcotest.(check bool) "plain delay is uniform" true
       (s.Fault.delay_dist = Fault.Uniform)
   | Error e -> Alcotest.failf "plain kind rejected: %s" e);
  (match Fault.parse "delay:uniform" with
   | Ok s ->
     Alcotest.(check bool) "delay:uniform alias" true
       (s.Fault.delay && s.Fault.delay_dist = Fault.Uniform);
     (* the alias canonicalizes to the plain spelling *)
     Alcotest.(check string) "alias canonical form" "delay(budget=1)"
       (Fault.to_string s)
   | Error e -> Alcotest.failf "delay:uniform rejected: %s" e);
  match Fault.parse "drop,delay:bimodal(budget=4)" with
  | Ok s ->
    Alcotest.(check bool) "bimodal parsed" true
      (s.Fault.drop && s.Fault.delay && s.Fault.delay_dist = Fault.Bimodal);
    Alcotest.(check string) "bimodal canonical form"
      "drop,delay:bimodal(budget=4)" (Fault.to_string s)
  | Error e -> Alcotest.failf "delay:bimodal rejected: %s" e

let test_fault_rejections () =
  List.iter
    (fun s ->
      match Fault.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed fault spec %S accepted" s)
    [
      "";
      "lightning";
      "drop(budget=)";
      "drop(budget=x)";
      "drop(budget=-1)";
      "drop(budget=1";      (* unclosed *)
      "drop(limit=1)";
      "(budget=1)";         (* no kinds *)
      "none,drop";          (* none only stands alone *)
      "delay:";             (* empty distribution *)
      "delay:gaussian";     (* unknown distribution *)
      "drop:bimodal";       (* distributions are delay-only *)
      "delay,delay:bimodal";   (* conflicting distributions *)
      "delay:uniform,delay:bimodal";
    ]

(* --- Scenario ------------------------------------------------------------ *)

module Scenario = Psharp.Scenario

let random_pat prng =
  let names =
    [| "Tables"; "Replica"; "EN"; "Client"; "N2"; "S"; "Harness"; "a_b-c.9" |]
  in
  let base = names.(Prng.int prng (Array.length names)) in
  match Prng.int prng 3 with
  | 0 -> Scenario.pat "*"
  | 1 -> Scenario.pat base
  | _ -> Scenario.pat (base ^ "*")

let random_trigger prng =
  match Prng.int prng 8 with
  | 0 -> Scenario.start
  | 1 -> Scenario.at_step (Prng.int prng 1_000)
  | 2 -> Scenario.at_time (Prng.int prng 1_000)
  | 3 -> Scenario.delivered (random_pat prng)
  | 4 -> Scenario.delivered ~count:(2 + Prng.int prng 5) (random_pat prng)
  | 5 -> Scenario.entered (random_pat prng) "Repairing"
  | 6 -> Scenario.quiet (random_pat prng)
  | _ -> Scenario.crashed (random_pat prng)

(* [until start] never opens a window, so it is rejected by construction
   (the trigger type is abstract: probe with a throwaway clause); draw
   until the trigger is accepted. *)
let rec random_until prng =
  let t = random_trigger prng in
  match
    Scenario.pause (Scenario.pat "probe") ~from_:Scenario.start ~until_:t
  with
  | _ -> t
  | exception Invalid_argument _ -> random_until prng

let random_clause prng =
  let w f =
    f ~from_:(random_trigger prng) ~until_:(random_until prng)
  in
  match Prng.int prng 8 with
  | 0 ->
    (* order needs distinct patterns *)
    let rec distinct () =
      let a = random_pat prng and b = random_pat prng in
      if Scenario.pat_to_string a = Scenario.pat_to_string b then distinct ()
      else Scenario.order a b
    in
    distinct ()
  | 1 -> Scenario.crash_when (random_pat prng) ~after:(random_trigger prng)
  | 2 -> w (Scenario.partition (random_pat prng) (random_pat prng))
  | 3 -> w (Scenario.drop_link ~src:(random_pat prng) ~dst:(random_pat prng))
  | 4 -> w (Scenario.dup_link ~src:(random_pat prng) ~dst:(random_pat prng))
  | 5 ->
    w
      (Scenario.delay_link ~src:(random_pat prng) ~dst:(random_pat prng)
         ~latency:(1 + Prng.int prng 6))
  | 6 -> w (Scenario.pause (random_pat prng))
  | _ -> w (Scenario.focus (random_pat prng))

let random_scenario prng =
  let n = 1 + Prng.int prng 5 in
  (* [make] rejects duplicate clauses; dedupe by canonical rendering *)
  let seen = Hashtbl.create 8 in
  let rec draw acc k =
    if k = 0 then acc
    else begin
      let c = random_clause prng in
      let s = Scenario.clause_to_string c in
      if Hashtbl.mem seen s then draw acc k
      else begin
        Hashtbl.add seen s ();
        draw (c :: acc) (k - 1)
      end
    end
  in
  Scenario.make (draw [] n)

let test_scenario_roundtrip () =
  let prng = Prng.create ~seed:0x5ce7L in
  for i = 1 to 600 do
    let t = random_scenario prng in
    let s = Scenario.to_string t in
    match Scenario.of_string s with
    | Error e -> Alcotest.failf "case %d: %S did not parse back: %s" i s e
    | Ok t' ->
      (* to_string is canonical: a second trip is the identity on strings *)
      if Scenario.to_string t' <> s then
        Alcotest.failf "case %d: to_string not canonical on %S" i s
  done

let test_scenario_rejections () =
  List.iter
    (fun s ->
      match Scenario.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed scenario %S accepted" s)
    [
      "";                                        (* empty scenario *)
      "crash * after step(5)";                   (* missing final newline *)
      "crash * after step(5)\n\n";               (* blank line *)
      "crash  * after step(5)\n";                (* double space *)
      "Crash * after step(5)\n";                 (* keyword case *)
      "crash * before step(5)\n";                (* wrong preposition *)
      "crash * after step(+5)\n";                (* non-canonical int *)
      "crash * after step(05)\n";                (* non-canonical int *)
      "crash * after step(-1)\n";                (* negative *)
      "crash * after step()\n";                  (* missing int *)
      "crash * after quake(5)\n";                (* unknown trigger *)
      "crash ** after step(5)\n";                (* bad pattern *)
      "crash *x after step(5)\n";                (* glob star not trailing *)
      "crash a/b after step(5)\n";               (* bad pattern char *)
      "order A before A\n";                      (* identical patterns *)
      "order A before B\norder A before B\n";    (* duplicate clause *)
      "pause M from start until start\n";        (* until start: no window *)
      "drop A->B from start until step(0) \n";   (* trailing junk *)
      "drop A -> B from start until step(9)\n";  (* spaces around arrow *)
      "delay A->B lat=0 from start until step(9)\n";   (* latency < 1 *)
      "delay A->B lat=2s from start until step(9)\n";  (* bad latency *)
      "dup A->B until step(9)\n";                (* missing from *)
      "partition A|B from start\n";              (* missing until *)
      "focus M from start until delivered(E x1)\n";   (* x1 renders bare *)
      "focus M from start until delivered(E x0)\n";   (* count < 1 *)
      "crash * after state(M,)\n";               (* empty state name *)
    ]

let test_scenario_catalog_fixpoints () =
  List.iter
    (fun e ->
      let s = e.Catalog.Scenario_catalog.text in
      match Scenario.of_string s with
      | Error err ->
        Alcotest.failf "catalog %s text does not parse: %s"
          e.Catalog.Scenario_catalog.name err
      | Ok t ->
        Alcotest.(check string)
          (e.Catalog.Scenario_catalog.name ^ " text is canonical")
          s (Scenario.to_string t))
    Catalog.Scenario_catalog.all

let suite =
  [
    Alcotest.test_case "trace round-trip x600" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace strict rejections" `Quick test_trace_rejections;
    Alcotest.test_case "fault round-trip x600" `Quick test_fault_roundtrip;
    Alcotest.test_case "fault parse acceptances" `Quick
      test_fault_parse_accepts;
    Alcotest.test_case "fault strict rejections" `Quick test_fault_rejections;
    Alcotest.test_case "scenario round-trip x600" `Quick
      test_scenario_roundtrip;
    Alcotest.test_case "scenario strict rejections" `Quick
      test_scenario_rejections;
    Alcotest.test_case "scenario catalog texts are canonical" `Quick
      test_scenario_catalog_fixpoints;
  ]
