(* Serialization round-trips (ISSUE 5 satellite 3): fixed-seed randomized
   batteries over [Trace.of_string]/[to_string] and
   [Fault.parse]/[to_string], plus strict-parsing rejection cases. *)

module Trace = Psharp.Trace
module Fault = Psharp.Fault
module Prng = Psharp.Prng

(* --- Trace --------------------------------------------------------------- *)

let random_trace prng =
  let len = Prng.int prng 60 in
  let choice () =
    match Prng.int prng 3 with
    | 0 -> Trace.Schedule (Prng.int prng 1_000)
    | 1 -> Trace.Bool (Prng.bool prng)
    | _ -> Trace.Int (Prng.int prng 1_000_000)
  in
  Trace.of_list (List.init len (fun _ -> choice ()))

let test_trace_roundtrip () =
  let prng = Prng.create ~seed:0x7e57L in
  for i = 1 to 600 do
    let t = random_trace prng in
    let s = Trace.to_string t in
    let t' = Trace.of_string s in
    if not (Trace.equal t t') then
      Alcotest.failf "trace round-trip %d failed for %S" i s;
    (* to_string is canonical: a second trip is the identity on strings *)
    if Trace.to_string t' <> s then
      Alcotest.failf "trace to_string not canonical on case %d" i
  done

let test_trace_rejections () =
  List.iter
    (fun s ->
      match Trace.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "malformed trace %S accepted" s)
    [
      "s:";            (* missing value *)
      "s:x";           (* not an int *)
      "b:2";           (* not a canonical bool *)
      "b:true";        (* wrong bool spelling *)
      "i:";            (* missing value *)
      "q:1";           (* unknown tag *)
      "s:1 s:2";       (* two choices on one line *)
      "s:1\n\ns:2";    (* blank line inside *)
      "s:1 ";          (* trailing junk *)
      "s:+1";          (* non-canonical int *)
    ]

(* --- Fault --------------------------------------------------------------- *)

let random_spec prng =
  let kinds =
    List.filter
      (fun _ -> Prng.bool prng)
      [ Fault.Drop; Fault.Duplicate; Fault.Delay; Fault.Crash ]
  in
  if kinds = [] then Fault.none
  else
    let delay_dist =
      if Prng.bool prng then Fault.Bimodal else Fault.Uniform
    in
    Fault.make ~budget:(Prng.int prng 10) ~delay_dist kinds

let test_fault_roundtrip () =
  let prng = Prng.create ~seed:0xfa17L in
  for i = 1 to 600 do
    let s = random_spec prng in
    let str = Fault.to_string s in
    match Fault.parse str with
    | Error e -> Alcotest.failf "case %d: %S did not parse back: %s" i str e
    | Ok s' ->
      (* max_delay is not serialized; everything else must survive *)
      if Fault.kinds s' <> Fault.kinds s then
        Alcotest.failf "case %d: kinds changed through %S" i str;
      if s'.Fault.delay_dist <> s.Fault.delay_dist then
        Alcotest.failf "case %d: delay_dist changed through %S" i str;
      let budget' = if Fault.kinds s = [] then 0 else s.Fault.budget in
      if s'.Fault.budget <> budget' then
        Alcotest.failf "case %d: budget changed through %S" i str;
      (* and to_string is a fixpoint of the grammar *)
      if Fault.to_string s' <> str then
        Alcotest.failf "case %d: to_string not canonical on %S" i str
  done

let test_fault_parse_accepts () =
  (match Fault.parse "none" with
   | Ok s -> Alcotest.(check bool) "none parses" false (Fault.enabled s)
   | Error e -> Alcotest.failf "none rejected: %s" e);
  (match Fault.parse "drop,crash(budget=3)" with
   | Ok s ->
     Alcotest.(check int) "budget suffix parsed" 3 s.Fault.budget;
     Alcotest.(check bool) "kinds parsed" true (s.Fault.drop && s.Fault.crash)
   | Error e -> Alcotest.failf "budget suffix rejected: %s" e);
  (match Fault.parse "delay" with
   | Ok s ->
     Alcotest.(check int) "no suffix: budget 1" 1 s.Fault.budget;
     Alcotest.(check bool) "plain delay is uniform" true
       (s.Fault.delay_dist = Fault.Uniform)
   | Error e -> Alcotest.failf "plain kind rejected: %s" e);
  (match Fault.parse "delay:uniform" with
   | Ok s ->
     Alcotest.(check bool) "delay:uniform alias" true
       (s.Fault.delay && s.Fault.delay_dist = Fault.Uniform);
     (* the alias canonicalizes to the plain spelling *)
     Alcotest.(check string) "alias canonical form" "delay(budget=1)"
       (Fault.to_string s)
   | Error e -> Alcotest.failf "delay:uniform rejected: %s" e);
  match Fault.parse "drop,delay:bimodal(budget=4)" with
  | Ok s ->
    Alcotest.(check bool) "bimodal parsed" true
      (s.Fault.drop && s.Fault.delay && s.Fault.delay_dist = Fault.Bimodal);
    Alcotest.(check string) "bimodal canonical form"
      "drop,delay:bimodal(budget=4)" (Fault.to_string s)
  | Error e -> Alcotest.failf "delay:bimodal rejected: %s" e

let test_fault_rejections () =
  List.iter
    (fun s ->
      match Fault.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed fault spec %S accepted" s)
    [
      "";
      "lightning";
      "drop(budget=)";
      "drop(budget=x)";
      "drop(budget=-1)";
      "drop(budget=1";      (* unclosed *)
      "drop(limit=1)";
      "(budget=1)";         (* no kinds *)
      "none,drop";          (* none only stands alone *)
      "delay:";             (* empty distribution *)
      "delay:gaussian";     (* unknown distribution *)
      "drop:bimodal";       (* distributions are delay-only *)
      "delay,delay:bimodal";   (* conflicting distributions *)
      "delay:uniform,delay:bimodal";
    ]

let suite =
  [
    Alcotest.test_case "trace round-trip x600" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace strict rejections" `Quick test_trace_rejections;
    Alcotest.test_case "fault round-trip x600" `Quick test_fault_roundtrip;
    Alcotest.test_case "fault parse acceptances" `Quick
      test_fault_parse_accepts;
    Alcotest.test_case "fault strict rejections" `Quick test_fault_rejections;
  ]
