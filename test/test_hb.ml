(* The happens-before recorder: vector-clock merges on delivery, crash and
   monitor edges, the independence relation's algebraic properties on real
   executions, and canonical-fingerprint invariance under commuting swaps. *)

module Hb = Psharp.Hb
module R = Psharp.Runtime
module E = Psharp.Engine
module Event = Psharp.Event
module Trace = Psharp.Trace
module Coverage = Psharp.Coverage

type Event.t += Token | Ping

(* --- unit-level: drive the recorder by hand ----------------------------- *)

(* root starts (step 0), creates machines 1 and 2, sends to 1; machine 1
   dequeues the message (step 1); machine 2 starts untouched (step 2). *)
let three_steps () =
  let h = Hb.create () in
  Hb.on_create h ~parent:(-1) ~child:0;
  Hb.begin_step h ~machine:0 ~msg:(-1);
  Hb.on_create h ~parent:0 ~child:1;
  Hb.on_create h ~parent:0 ~child:2;
  let stamp = Hb.on_send h ~target:1 in
  Hb.begin_step h ~machine:1 ~msg:stamp;
  Hb.begin_step h ~machine:2 ~msg:(-1);
  h

let test_delivery_merge () =
  let h = three_steps () in
  Alcotest.(check int) "three steps" 3 (Hb.steps h);
  Alcotest.(check bool) "send happens-before its delivery" true
    (Hb.ordered h 0 1);
  Alcotest.(check bool) "delivery not before the send" false (Hb.ordered h 1 0);
  Alcotest.(check bool) "creation edge orders the child's start" true
    (Hb.ordered h 0 2);
  Alcotest.(check bool) "siblings with no messages are independent" true
    (Hb.independent h 1 2)

let test_ordered_reflexive_independent_irreflexive () =
  let h = three_steps () in
  for i = 0 to Hb.steps h - 1 do
    Alcotest.(check bool) "ordered reflexive" true (Hb.ordered h i i);
    Alcotest.(check bool) "independent irreflexive" false (Hb.independent h i i)
  done

let test_crash_merge () =
  let h = three_steps () in
  (* machine 2 crashes machine 1: the crash conflicts with everything on
     the target, so 1's earlier dequeue step is now in 2's causal past *)
  Hb.begin_step h ~machine:2 ~msg:(-1);
  Hb.on_crash h ~target:1;
  let crash_step = Hb.steps h - 1 in
  Alcotest.(check bool) "target's past flows into the crasher" true
    (Hb.ordered h 1 crash_step);
  (* a subsequent step of the crashed machine sees the crash *)
  Hb.begin_step h ~machine:1 ~msg:(-1);
  Alcotest.(check bool) "restart step ordered after the crash" true
    (Hb.ordered h crash_step (Hb.steps h - 1))

let test_notify_total_order () =
  let h = Hb.create () in
  Hb.on_create h ~parent:(-1) ~child:0;
  Hb.begin_step h ~machine:0 ~msg:(-1);
  Hb.on_create h ~parent:0 ~child:1;
  Hb.on_create h ~parent:0 ~child:2;
  Hb.begin_step h ~machine:1 ~msg:(-1);
  Hb.on_notify h ~monitor:"Liveness";
  let first = Hb.steps h - 1 in
  Hb.begin_step h ~machine:2 ~msg:(-1);
  Hb.on_notify h ~monitor:"Liveness";
  let second = Hb.steps h - 1 in
  Alcotest.(check bool) "notifications of one monitor are ordered" true
    (Hb.ordered h first second);
  Alcotest.(check bool) "and not independent" false
    (Hb.independent h first second);
  (* a different monitor shares no clock: its notifier stays independent *)
  Hb.begin_step h ~machine:1 ~msg:(-1);
  Hb.on_notify h ~monitor:"Safety";
  Alcotest.(check bool) "distinct monitors do not order" true
    (Hb.independent h second (Hb.steps h - 1))

let test_canonical_fingerprint_linearization_invariant () =
  (* the same partial order built in two interleavings: root starts, then
     machines 1 and 2 each take one local step, in either order *)
  let build order =
    let h = Hb.create () in
    Hb.on_create h ~parent:(-1) ~child:0;
    Hb.begin_step h ~machine:0 ~msg:(-1);
    Hb.on_create h ~parent:0 ~child:1;
    Hb.on_create h ~parent:0 ~child:2;
    List.iter (fun m -> Hb.begin_step h ~machine:m ~msg:(-1)) order;
    Hb.canonical_fingerprint h
  in
  Alcotest.(check bool) "swapped independent steps hash identically" true
    (build [ 1; 2 ] = build [ 2; 1 ]);
  (* a genuinely different partial order (1 sends to 2 before 2 runs, vs 2
     running first) must not collapse *)
  let with_send first_sender =
    let h = Hb.create () in
    Hb.on_create h ~parent:(-1) ~child:0;
    Hb.begin_step h ~machine:0 ~msg:(-1);
    Hb.on_create h ~parent:0 ~child:1;
    Hb.on_create h ~parent:0 ~child:2;
    if first_sender then begin
      Hb.begin_step h ~machine:1 ~msg:(-1);
      let stamp = Hb.on_send h ~target:2 in
      Hb.begin_step h ~machine:2 ~msg:stamp
    end
    else begin
      Hb.begin_step h ~machine:2 ~msg:(-1);
      Hb.begin_step h ~machine:1 ~msg:(-1);
      ignore (Hb.on_send h ~target:2)
    end;
    Hb.canonical_fingerprint h
  in
  Alcotest.(check bool) "dependent reorder changes the fingerprint" true
    (with_send true <> with_send false)

(* --- runtime-level: sampled real executions ----------------------------- *)

let run_vnext ~seed =
  let h = Hb.create () in
  let cfg =
    {
      R.max_steps = 3_000;
      liveness_grace = None;
      deadlock_is_bug = true;
      collect_log = false;
      coverage = None;
      hb = Some h;
      faults = Psharp.Fault.none;
      deadline = None;
      clock = None;
      scenario = None;
    }
  in
  let strategy =
    match
      (Psharp.Random_strategy.factory ~seed).Psharp.Strategy.fresh ~iteration:0
    with
    | Some s -> s
    | None -> Alcotest.fail "random factory returned no strategy"
  in
  let result =
    R.execute cfg strategy
      ~monitors:(Vnext.Testing_driver.monitors ())
      ~name:"Harness"
      (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
         ~scenario:Vnext.Testing_driver.Fail_and_repair ())
  in
  (h, result)

let test_sampled_properties () =
  (* every scheduling step of the execution opens exactly one Hb step *)
  List.iter
    (fun seed ->
      let h, result = run_vnext ~seed in
      Alcotest.(check int) "one hb step per scheduling step" result.R.steps
        (Hb.steps h);
      let n = Hb.steps h in
      let prng = Psharp.Prng.create ~seed in
      for _ = 1 to 2_000 do
        let i = Psharp.Prng.int prng n and j = Psharp.Prng.int prng n in
        Alcotest.(check bool) "independent symmetric"
          (Hb.independent h i j) (Hb.independent h j i);
        if Hb.independent h i j then begin
          Alcotest.(check bool) "independent excludes ordered" false
            (Hb.ordered h i j || Hb.ordered h j i);
          Alcotest.(check bool) "independent steps on distinct machines" true
            (Hb.machine_of h i <> Hb.machine_of h j)
        end
      done;
      (* program order: consecutive steps of one machine are always ordered *)
      let last_of = Hashtbl.create 16 in
      for i = 0 to n - 1 do
        let m = Hb.machine_of h i in
        (match Hashtbl.find_opt last_of m with
         | Some prev ->
           if not (Hb.ordered h prev i) then
             Alcotest.failf "program order violated: steps %d and %d of %d"
               prev i m
         | None -> ());
        Hashtbl.replace last_of m i
      done)
    [ 7L; 42L; 1234L ]

(* --- swap invariance on a recorded execution ---------------------------- *)

(* Segment a trace by Schedule entries (each segment is one scheduling
   choice plus the Bool/Int draws its step made), swap two consecutive
   segments whose steps the recorder proves independent, replay, and check:
   the canonical fingerprint is unchanged (same Mazurkiewicz trace) while
   the raw schedule fingerprint differs. *)
let segments trace =
  let segs = ref [] and cur = ref [] in
  List.iter
    (fun c ->
      match c with
      | Trace.Schedule _ ->
        if !cur <> [] then segs := List.rev !cur :: !segs;
        cur := [ c ]
      | Trace.Bool _ | Trace.Int _ -> cur := c :: !cur)
    (Trace.to_list trace);
  if !cur <> [] then segs := List.rev !cur :: !segs;
  List.rev !segs

let test_swap_invariance () =
  let h, result = run_vnext ~seed:5L in
  let segs = Array.of_list (segments result.R.choices) in
  (* segment k corresponds to hb step k: both enumerate scheduling points *)
  let swappable = ref None in
  let k = ref 0 in
  while !swappable = None && !k + 1 < Array.length segs do
    if Hb.independent h !k (!k + 1) then swappable := Some !k;
    incr k
  done;
  match !swappable with
  | None -> Alcotest.fail "no adjacent independent steps in 3000"
  | Some k ->
    let swapped = Array.copy segs in
    swapped.(k) <- segs.(k + 1);
    swapped.(k + 1) <- segs.(k);
    let trace' = Trace.of_list (List.concat (Array.to_list swapped)) in
    let h' = Hb.create () in
    let cfg =
      {
        R.max_steps = 3_000;
        liveness_grace = None;
        deadlock_is_bug = true;
        collect_log = false;
        coverage = None;
        hb = Some h';
        faults = Psharp.Fault.none;
        deadline = None;
        clock = None;
        scenario = None;
      }
    in
    let strategy =
      match
        (Psharp.Replay_strategy.factory trace').Psharp.Strategy.fresh
          ~iteration:0
      with
      | Some s -> s
      | None -> Alcotest.fail "replay factory returned no strategy"
    in
    let result' =
      R.execute cfg strategy
        ~monitors:(Vnext.Testing_driver.monitors ())
        ~name:"Harness"
        (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
           ~scenario:Vnext.Testing_driver.Fail_and_repair ())
    in
    (match result'.R.bug with
     | Some (Psharp.Error.Replay_divergence _) ->
       Alcotest.fail "swapped independent steps diverged on replay"
     | _ -> ());
    Alcotest.(check bool) "raw schedule fingerprints differ" true
      (Coverage.fingerprint result.R.choices
      <> Coverage.fingerprint result'.R.choices);
    Alcotest.(check bool) "canonical partial-order fingerprints agree" true
      (Hb.canonical_fingerprint h = Hb.canonical_fingerprint h')

let suite =
  [
    Alcotest.test_case "delivery merge" `Quick test_delivery_merge;
    Alcotest.test_case "ordered reflexive / independent irreflexive" `Quick
      test_ordered_reflexive_independent_irreflexive;
    Alcotest.test_case "crash merge" `Quick test_crash_merge;
    Alcotest.test_case "monitor notify total order" `Quick
      test_notify_total_order;
    Alcotest.test_case "canonical fingerprint invariance" `Quick
      test_canonical_fingerprint_linearization_invariant;
    Alcotest.test_case "sampled vnext executions" `Slow test_sampled_properties;
    Alcotest.test_case "swap-adjacent-independent invariance" `Slow
      test_swap_invariance;
  ]
