(* FIFO inbox with filtered dequeue. *)

module Inbox = Psharp.Inbox
module Event = Psharp.Event

type Event.t += N of int

let n i = N i

let to_int = function N i -> i | _ -> -1

let drain inbox =
  let rec go acc =
    match Inbox.pop_first inbox (fun _ -> true) with
    | Some e -> go (to_int e :: acc)
    | None -> List.rev acc
  in
  go []

let test_fifo () =
  let q = Inbox.create () in
  List.iter (fun i -> Inbox.push q (n i)) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4 ] (drain q)

let test_filtered_pop_preserves_order () =
  let q = Inbox.create () in
  List.iter (fun i -> Inbox.push q (n i)) [ 1; 2; 3; 4; 5 ];
  let picked = Inbox.pop_first q (fun e -> to_int e mod 2 = 0) in
  Alcotest.(check int) "first even" 2 (to_int (Option.get picked));
  Alcotest.(check (list int)) "others in order" [ 1; 3; 4; 5 ] (drain q)

let test_pop_none () =
  let q = Inbox.create () in
  Inbox.push q (n 1);
  Alcotest.(check bool) "no match" true
    (Inbox.pop_first q (fun e -> to_int e = 9) = None);
  Alcotest.(check int) "element kept" 1 (Inbox.length q)

let test_exists_and_clear () =
  let q = Inbox.create () in
  Alcotest.(check bool) "empty" true (Inbox.is_empty q);
  Inbox.push q (n 5);
  Alcotest.(check bool) "exists" true (Inbox.exists q (fun e -> to_int e = 5));
  Alcotest.(check bool) "not exists" false (Inbox.exists q (fun e -> to_int e = 6));
  Inbox.clear q;
  Alcotest.(check bool) "cleared" true (Inbox.is_empty q)

let test_interleaved_push_pop () =
  let q = Inbox.create () in
  Inbox.push q (n 1);
  Inbox.push q (n 2);
  ignore (Inbox.pop_first q (fun _ -> true));
  Inbox.push q (n 3);
  Alcotest.(check (list int)) "order across push/pop" [ 2; 3 ] (drain q)

let test_filtered_pop_from_back_segment () =
  (* Force the removal to land in the not-yet-normalized tail: a first pop
     normalizes [1;2;3] into the front list, later pushes then live in the
     reversed back list, and the filtered pop must find 4 there while
     keeping both order and the O(1) length consistent. *)
  let q = Inbox.create () in
  List.iter (fun i -> Inbox.push q (n i)) [ 1; 2; 3 ];
  ignore (Inbox.pop_first q (fun _ -> true));
  List.iter (fun i -> Inbox.push q (n i)) [ 4; 5 ];
  let picked = Inbox.pop_first q (fun e -> to_int e = 4) in
  Alcotest.(check int) "picked from back" 4 (to_int (Option.get picked));
  Alcotest.(check int) "length maintained" 3 (Inbox.length q);
  Alcotest.(check (list int)) "order preserved" [ 2; 3; 5 ] (drain q)

(* Model-based property: Inbox behaves like a functional queue with
   filtered removal. *)
let prop_model =
  let open QCheck in
  Test.make ~name:"inbox matches list model" ~count:300
    (list (pair bool (int_range 0 9)))
    (fun ops ->
      let q = Inbox.create () in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Inbox.push q (n v);
            model := !model @ [ v ];
            true
          end
          else begin
            let pred e = to_int e mod 3 = v mod 3 in
            let expected =
              match List.find_opt (fun x -> x mod 3 = v mod 3) !model with
              | Some x ->
                model := (
                  let rec remove = function
                    | [] -> []
                    | y :: ys -> if y = x then ys else y :: remove ys
                  in
                  remove !model);
                Some x
              | None -> None
            in
            let got = Option.map to_int (Inbox.pop_first q pred) in
            got = expected && Inbox.length q = List.length !model
          end)
        ops)

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo;
    Alcotest.test_case "filtered pop preserves order" `Quick
      test_filtered_pop_preserves_order;
    Alcotest.test_case "pop with no match" `Quick test_pop_none;
    Alcotest.test_case "exists / clear" `Quick test_exists_and_clear;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
    Alcotest.test_case "filtered pop from back segment" `Quick
      test_filtered_pop_from_back_segment;
    QCheck_alcotest.to_alcotest prop_model;
  ]
