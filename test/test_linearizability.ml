(* The generic linearizability checker (ISSUE 7 tentpole): fixture
   histories over a tiny sequential register, determinism, history
   round-trips, partition equivalence, and the chaintable migration onto
   the generic oracle — lin witnesses replay to exact violation strings
   and the legacy per-operation asserts agree on the same schedules. *)

module H = Psharp.History
module L = Psharp.Linearizability
module E = Psharp.Engine
module Error = Psharp.Error

(* --- a minimal sequential spec: one integer register ------------------- *)

type rop = W of int | R
type rres = Ok_w | Val of int

let register : (int, rop, rres) L.model =
  {
    L.init = 0;
    apply = (fun s -> function W v -> (v, Ok_w) | R -> (s, Val s));
    match_res = ( = );
    repr_res = (function Ok_w -> "ok" | Val v -> Printf.sprintf "val %d" v);
    repr_state = string_of_int;
    key_of = None;
  }

let rop_repr = function W v -> Printf.sprintf "w %d" v | R -> "r"
let rres_repr = function Ok_w -> "ok" | Val v -> Printf.sprintf "val %d" v

(* A history from a script of [`I (name, op)] / [`R (name, res)] events in
   recording order; names identify operations, clients are [c]. *)
let history_of script =
  let h = H.create () in
  let ids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | `I (name, op) ->
        Hashtbl.replace ids name
          (H.invoke h ~client:"c" ~at:0 ~repr:(rop_repr op) op)
      | `R (name, res) ->
        H.respond h ~id:(Hashtbl.find ids name) ~at:0 ~repr:(rres_repr res)
          res)
    script;
  h

let expect_ok name h =
  match L.check register h with
  | L.Linearizable _ -> ()
  | L.Illegal msg -> Alcotest.failf "%s rejected: %s" name msg

let expect_illegal name h =
  match L.check register h with
  | L.Illegal _ -> ()
  | L.Linearizable _ -> Alcotest.failf "%s accepted" name

(* --- fixtures ----------------------------------------------------------- *)

let test_sequential () =
  expect_ok "write then read"
    (history_of
       [ `I ("w", W 1); `R ("w", Ok_w); `I ("r", R); `R ("r", Val 1) ])

let test_concurrent_either_order () =
  (* a read overlapping a write may see either value *)
  List.iter
    (fun seen ->
      expect_ok "overlapping read"
        (history_of
           [
             `I ("w", W 1);
             `I ("r", R);
             `R ("r", Val seen);
             `R ("w", Ok_w);
           ]))
    [ 0; 1 ]

let test_stale_read () =
  (* the write completed before the read was invoked: 0 is gone *)
  expect_illegal "stale read"
    (history_of
       [ `I ("w", W 1); `R ("w", Ok_w); `I ("r", R); `R ("r", Val 0) ])

let test_concurrent_read_anomaly () =
  (* Both reads individually overlap the write, but they are sequential
     with each other: new-then-old has no explaining order, because the
     first read pins the write before it and the second still sees the
     old value. *)
  expect_illegal "concurrent-read anomaly"
    (history_of
       [
         `I ("w", W 1);
         `I ("r1", R);
         `R ("r1", Val 1);
         `I ("r2", R);
         `R ("r2", Val 0);
         `R ("w", Ok_w);
       ]);
  (* the benign orientation — old then new — is fine *)
  expect_ok "reads old then new"
    (history_of
       [
         `I ("w", W 1);
         `I ("r1", R);
         `R ("r1", Val 0);
         `I ("r2", R);
         `R ("r2", Val 1);
         `R ("w", Ok_w);
       ])

let test_pending_ops () =
  (* a pending write may have taken effect... *)
  expect_ok "pending write took effect"
    (history_of [ `I ("w", W 1); `I ("r", R); `R ("r", Val 1) ]);
  (* ...or not *)
  expect_ok "pending write skipped"
    (history_of [ `I ("w", W 1); `I ("r", R); `R ("r", Val 0) ]);
  (* but it cannot half-apply: two sequential reads seeing new then old
     are illegal even when the write never responded *)
  expect_illegal "pending write half-applied"
    (history_of
       [
         `I ("w", W 1);
         `I ("r1", R);
         `R ("r1", Val 1);
         `I ("r2", R);
         `R ("r2", Val 0);
       ])

let test_determinism () =
  let script =
    [ `I ("w", W 1); `R ("w", Ok_w); `I ("r", R); `R ("r", Val 0) ]
  in
  let v1 = L.check register (history_of script) in
  let v2 = L.check register (history_of script) in
  Alcotest.(check string)
    "same history, same verdict" (L.verdict_to_string v1)
    (L.verdict_to_string v2);
  (match v1 with
   | L.Illegal msg ->
     let contains sub =
       let n = String.length sub and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool)
       "violation names the unexplained op" true
       (contains "no order explains" && contains "c r -> val 0")
   | L.Linearizable _ -> Alcotest.fail "expected a violation")

(* --- partition equivalence (P-compositionality) ------------------------- *)

let kv_script =
  (* two keys, interleaved; key b carries a stale read *)
  [
    `I ("wa", Shardkv.Model.Put ("a", 1));
    `I ("wb", Shardkv.Model.Put ("b", 2));
    `R ("wa", Shardkv.Model.Put_ok);
    `R ("wb", Shardkv.Model.Put_ok);
    `I ("ra", Shardkv.Model.Get "a");
    `R ("ra", Shardkv.Model.Got (Some 1));
    `I ("rb", Shardkv.Model.Get "b");
    `R ("rb", Shardkv.Model.Got None);
  ]

let kv_history script =
  let h = H.create () in
  let ids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | `I (name, op) ->
        Hashtbl.replace ids name
          (H.invoke h ~client:"c" ~at:0 ~repr:(Shardkv.Model.op_repr op) op)
      | `R (name, res) ->
        H.respond h ~id:(Hashtbl.find ids name) ~at:0
          ~repr:(Shardkv.Model.res_repr res) res)
    script;
  h

let test_partition_equivalence () =
  let partitioned = Shardkv.Model.lin_model in
  let unpartitioned = { partitioned with L.key_of = None } in
  let h () = kv_history kv_script in
  let p = L.check partitioned (h ()) in
  let u = L.check unpartitioned (h ()) in
  (match (p, u) with
   | L.Illegal _, L.Illegal _ -> ()
   | _ ->
     Alcotest.failf "partitioned=%s unpartitioned=%s" (L.verdict_to_string p)
       (L.verdict_to_string u));
  (* and a clean history is accepted by both *)
  let clean = List.filter (fun ev -> ev <> `R ("rb", Shardkv.Model.Got None)) kv_script
              |> List.filter (fun ev -> ev <> `I ("rb", Shardkv.Model.Get "b")) in
  (match (L.check partitioned (kv_history clean),
          L.check unpartitioned (kv_history clean)) with
   | L.Linearizable _, L.Linearizable _ -> ()
   | p, u ->
     Alcotest.failf "clean: partitioned=%s unpartitioned=%s"
       (L.verdict_to_string p) (L.verdict_to_string u))

(* --- history round-trip ------------------------------------------------- *)

let test_history_roundtrip () =
  let h = history_of
      [ `I ("w", W 7); `I ("r", R); `R ("r", Val 0); `R ("w", Ok_w) ]
  in
  let s = H.to_string h in
  let h' = H.of_string s in
  Alcotest.(check string) "of_string . to_string is the identity" s
    (H.to_string h');
  Alcotest.(check int) "size survives" (H.size h) (H.size h');
  Alcotest.(check int) "completed survives" (H.completed h) (H.completed h');
  let path = Filename.temp_file "psharp_history" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      H.save h ~path;
      Alcotest.(check string) "save/load round-trips" s
        (H.to_string (H.load ~path)))

let test_history_strictness () =
  List.iter
    (fun (label, text) ->
      match H.of_string text with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %s" label)
    [
      ("blank line", "i 0 0 0 c r\n\nr 0 1 0 val 0\n");
      ("bad tag", "x 0 0 0 c r\n");
      ("sparse ids", "i 1 0 0 c r\n");
      ("out-of-order seqs", "i 0 1 0 c r\ni 1 0 0 c w 1\n");
      ("response before invoke", "r 0 0 0 val 0\n");
      ("double response", "i 0 0 0 c r\nr 0 1 0 val 0\nr 0 2 0 val 0\n");
      ("non-canonical int", "i 00 0 0 c r\n");
    ]

(* --- chaintable on the generic checker (ISSUE 7 satellite) -------------- *)

let lin_witness_dir =
  lazy
    (let local = Filename.concat "witnesses" "lin" in
     if Sys.file_exists local then local
     else Filename.concat (Filename.concat "test" "witnesses") "lin")

(* Shrunk witnesses hunted under `--check-lin on`: the generic checker
   convicts these schedules with exactly these strings, and the legacy
   per-operation divergence asserts convict the very same schedules —
   the corpus-agreement half of migrating chaintable onto the generic
   oracle. (Truncated legacy witnesses are not re-judged the other way:
   a run aborted at its divergence assert leaves later constraining
   operations unrecorded, and the weaker some-order criterion can
   legitimately accept such a prefix.) *)
let lin_corpus =
  [
    ( "DeletePrimaryKey",
      "assertion failed in machine Harness(0): chaintable: history not \
       linearizable: linearized 4/10 complete ops; no order explains \
       Service1 Mutate(Delete(P1/r0, etag=*)) -> Ok(etag=-) (model would \
       produce Err(NotFound))",
      "assertion failed in machine Service1(3): outcome divergence on \
       Delete(P1/r0, etag=*): migrating table returned Ok(etag=-), \
       reference table returned Err(NotFound)" );
    ( "QueryAtomicFilterShadowing",
      "assertion failed in machine Harness(0): chaintable: history not \
       linearizable: linearized 5/9 complete ops; no order explains \
       Service0 QueryAtomic((v eq '1')) -> Rows[{P0/r1 etag=1 v=1}; \
       {P1/r1 etag=5 v=1}] (model would produce Rows[])",
      "assertion failed in machine Service0(2): query divergence on \
       (v eq '1'): migrating table Rows[{P0/r1 etag=1 v=1}; {P1/r1 etag=5 \
       v=1}], reference table Rows[{P0/r1 etag=1 v=1}]" );
  ]

let replay_chaintable ~oracle bug trace =
  let config = { E.default_config with max_executions = 1; max_steps = 4_000 } in
  let result =
    E.replay config trace
      (Chaintable.Harness.test ~bugs:(Chaintable.Bug_flags.with_bug bug)
         ~oracle ())
  in
  match result.Psharp.Runtime.bug with
  | Some kind -> Error.kind_to_string kind
  | None -> "NO BUG"

let chaintable_agreement (bug, lin_expected, legacy_expected) () =
  let trace =
    Psharp.Trace.load
      ~path:
        (Filename.concat (Lazy.force lin_witness_dir)
           ("ChaintableLin_" ^ bug ^ ".trace"))
  in
  Alcotest.(check string)
    (bug ^ " lin witness reproduces the checker verdict")
    lin_expected
    (replay_chaintable ~oracle:`Lin bug trace);
  Alcotest.(check string)
    (bug ^ " legacy oracle convicts the same schedule")
    legacy_expected
    (replay_chaintable ~oracle:`Legacy bug trace)

let test_chaintable_lin_fixed_clean () =
  let config =
    { E.default_config with max_executions = 500; max_steps = 4_000 }
  in
  match E.run config (Chaintable.Harness.test ~oracle:`Lin ()) with
  | E.No_bug _ -> ()
  | E.Bug_found (report, stats) ->
    Alcotest.failf "fixed chaintable under the lin oracle after %d execs: %s"
      stats.E.executions
      (Error.kind_to_string report.Error.kind)

let test_chaintable_lin_hunts () =
  (* the generic checker finds the divergence bugs on its own *)
  List.iter
    (fun (bug, budget) ->
      let config =
        { E.default_config with max_executions = budget; max_steps = 4_000 }
      in
      match
        E.run config
          (Chaintable.Harness.test ~bugs:(Chaintable.Bug_flags.with_bug bug)
             ~oracle:`Lin ())
      with
      | E.Bug_found _ -> ()
      | E.No_bug stats ->
        Alcotest.failf "%s not found by the lin oracle in %d execs" bug
          stats.E.executions)
    [ ("DeletePrimaryKey", 2_000); ("QueryAtomicFilterShadowing", 2_000) ]

let suite =
  [
    Alcotest.test_case "sequential accepted" `Quick test_sequential;
    Alcotest.test_case "overlapping read, either order" `Quick
      test_concurrent_either_order;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read;
    Alcotest.test_case "concurrent-read anomaly" `Quick
      test_concurrent_read_anomaly;
    Alcotest.test_case "pending operations" `Quick test_pending_ops;
    Alcotest.test_case "verdict determinism" `Quick test_determinism;
    Alcotest.test_case "partition equivalence" `Quick
      test_partition_equivalence;
    Alcotest.test_case "history round-trip" `Quick test_history_roundtrip;
    Alcotest.test_case "history parser strictness" `Quick
      test_history_strictness;
    Alcotest.test_case "chaintable fixed clean under lin oracle" `Slow
      test_chaintable_lin_fixed_clean;
    Alcotest.test_case "chaintable lin oracle hunts divergences" `Slow
      test_chaintable_lin_hunts;
  ]
  @ List.map
      (fun entry ->
        let bug, _, _ = entry in
        Alcotest.test_case
          ("chaintable lin/legacy agreement on " ^ bug)
          `Quick (chaintable_agreement entry))
      lin_corpus
