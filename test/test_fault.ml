(* The fault-injection substrate: specs, the message-fault interposition
   point (drop / duplicate / delay), crash/restart, trace recording and
   replay, and the three fault-only catalog bugs. *)

module E = Psharp.Engine
module R = Psharp.Runtime
module Fault = Psharp.Fault
module Error = Psharp.Error
module Trace = Psharp.Trace
module Event = Psharp.Event

type Event.t += Token | Hello

(* --- Fault.spec ---------------------------------------------------------- *)

let test_spec_basics () =
  Alcotest.(check bool) "none disabled" false (Fault.enabled Fault.none);
  let s = Fault.make [ Fault.Drop; Fault.Crash ] in
  Alcotest.(check bool) "made spec enabled" true (Fault.enabled s);
  Alcotest.(check bool) "message faults armed" true (Fault.message_faults s);
  let crash_only = Fault.make [ Fault.Crash ] in
  Alcotest.(check bool) "crash-only has no message faults" false
    (Fault.message_faults crash_only);
  Alcotest.(check bool) "crash-only still enabled" true
    (Fault.enabled crash_only);
  let dry = Fault.make ~budget:0 [ Fault.Drop ] in
  Alcotest.(check bool) "zero budget disables" false (Fault.enabled dry);
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Fault.make: budget must be non-negative") (fun () ->
      ignore (Fault.make ~budget:(-1) [ Fault.Drop ]))

let test_spec_parse () =
  (match Fault.parse "drop,dup,delay,crash" with
   | Ok s ->
     Alcotest.(check (list string))
       "all kinds, canonical order"
       [ "drop"; "dup"; "delay"; "crash" ]
       (List.map Fault.kind_to_string (Fault.kinds s))
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse " crash " with
   | Ok s ->
     Alcotest.(check bool) "whitespace tolerated" true s.Fault.crash;
     Alcotest.(check int) "budget defaults to 1" 1 s.Fault.budget
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse "duplicate" with
   | Ok s -> Alcotest.(check bool) "long form accepted" true s.Fault.duplicate
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse "lightning" with
   | Ok _ -> Alcotest.fail "unknown kind accepted"
   | Error _ -> ());
  match Fault.parse "" with
  | Ok _ -> Alcotest.fail "empty spec accepted"
  | Error _ -> ()

(* --- The interposition point --------------------------------------------- *)

(* One token sent via [send_faulty]; the receiver flags its arrival with
   an assertion failure, so "delivered" and "dropped" are distinguishable
   bug kinds (assertion vs. deadlock). *)
let one_shot_harness ctx =
  let receiver =
    R.create ctx ~name:"Receiver" (fun rctx ->
        ignore (R.receive rctx);
        R.assert_here rctx false "delivered")
  in
  ignore
    (R.create ctx ~name:"Sender" (fun sctx ->
         R.send_faulty sctx receiver Token))

let kind_tag = function
  | Error.Assertion_failure _ -> "assertion"
  | Error.Deadlock _ -> "deadlock"
  | Error.Safety_violation _ -> "safety"
  | Error.Liveness_violation _ -> "liveness"
  | Error.Unhandled_event _ -> "unhandled"
  | Error.Machine_exception _ -> "exception"
  | Error.Replay_divergence _ -> "divergence"

let kinds_of_survey found =
  List.map (fun (r, _) -> kind_tag r.Error.kind) found |> List.sort_uniq compare

let base_config =
  { E.default_config with max_executions = 300; max_steps = 200; seed = 11L }

let test_disabled_is_plain_send () =
  (* With Fault.none, send_faulty must be a plain send: the only recorded
     choices are schedule picks (zero fault draws), and the message always
     arrives. *)
  match E.run { base_config with E.max_executions = 20 } one_shot_harness with
  | E.Bug_found (report, _) ->
    (match report.Error.kind with
     | Error.Assertion_failure _ -> ()
     | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k));
    List.iter
      (function
        | Trace.Schedule _ -> ()
        | c ->
          Alcotest.failf "non-schedule choice recorded with faults off: %s"
            (match c with
             | Trace.Bool b -> Printf.sprintf "b:%b" b
             | Trace.Int i -> Printf.sprintf "i:%d" i
             | Trace.Schedule _ -> assert false))
      (Trace.to_list report.Error.trace)
  | E.No_bug _ -> Alcotest.fail "message did not arrive with faults off"

let test_drop_loses_the_message () =
  let faults = Fault.make [ Fault.Drop ] in
  let found =
    E.survey { base_config with E.faults } one_shot_harness |> kinds_of_survey
  in
  Alcotest.(check bool) "some schedule still delivers" true
    (List.exists (fun k -> k = "assertion") found);
  Alcotest.(check bool) "some schedule drops (receiver deadlocks)" true
    (List.exists (fun k -> k = "deadlock") found)

let test_duplicate_delivers_twice () =
  (* The receiver only trips the assertion on a second delivery of the
     single message sent, which requires an injected duplicate. *)
  let harness ctx =
    let receiver =
      R.create ctx ~name:"Receiver" (fun rctx ->
          ignore (R.receive rctx);
          ignore (R.receive rctx);
          R.assert_here rctx false "double delivery")
    in
    ignore
      (R.create ctx ~name:"Sender" (fun sctx ->
           R.send_faulty sctx receiver Token))
  in
  (match E.run { base_config with E.deadlock_is_bug = false } harness with
   | E.No_bug _ -> ()
   | E.Bug_found (r, _) ->
     Alcotest.failf "second delivery without faults: %s"
       (Error.kind_to_string r.Error.kind));
  let faults = Fault.make [ Fault.Duplicate ] in
  match
    E.run { base_config with E.faults; deadlock_is_bug = false } harness
  with
  | E.Bug_found ({ Error.kind = Error.Assertion_failure _; _ }, _) -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "wrong kind: %s" (Error.kind_to_string r.Error.kind)
  | E.No_bug _ -> Alcotest.fail "duplicate never injected"

let test_delay_reorders_same_sender () =
  (* FIFO per sender pair means the receiver always sees Token before
     Hello — unless an injected delay holds Token back behind a later
     delivery. *)
  let harness ctx =
    let receiver =
      R.create ctx ~name:"Receiver" (fun rctx ->
          match R.receive rctx with
          | Hello -> R.assert_here rctx false "B overtook A"
          | _ -> ())
    in
    ignore
      (R.create ctx ~name:"Sender" (fun sctx ->
           R.send_faulty sctx receiver Token;
           R.send_faulty sctx receiver Hello))
  in
  (match E.run { base_config with E.deadlock_is_bug = false } harness with
   | E.No_bug _ -> ()
   | E.Bug_found _ -> Alcotest.fail "FIFO broken without faults");
  let faults = Fault.make [ Fault.Delay ] in
  match
    E.run { base_config with E.faults; deadlock_is_bug = false } harness
  with
  | E.Bug_found ({ Error.kind = Error.Assertion_failure _; _ }, _) -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "wrong kind: %s" (Error.kind_to_string r.Error.kind)
  | E.No_bug _ -> Alcotest.fail "delay never reordered the pair"

let test_crash_restarts_persistent_machine () =
  (* The greeter announces itself on every (re)start; a second Hello can
     only come from a crash/restart injected by the Fault_driver. *)
  let harness ctx =
    let me = R.self ctx in
    (* Announce, then stay alive (blocked) so the Fault_driver can strike:
       a machine whose body returned is halted and no longer crashable. *)
    let greeter gctx =
      R.send gctx me Hello;
      ignore (R.receive gctx)
    in
    ignore
      (R.create ctx ~name:"Greeter" ~persistent:(fun () -> greeter) greeter);
    Psharp.Fault_driver.install ctx;
    (match R.receive ctx with
     | Hello -> ()
     | _ -> ());
    match R.receive ctx with
    | Hello -> R.assert_here ctx false "greeter restarted"
    | _ -> ()
  in
  (match E.run { base_config with E.deadlock_is_bug = false } harness with
   | E.No_bug _ -> ()
   | E.Bug_found _ -> Alcotest.fail "phantom restart without faults");
  let faults = Fault.make [ Fault.Crash ] in
  match
    E.run { base_config with E.faults; deadlock_is_bug = false } harness
  with
  | E.Bug_found ({ Error.kind = Error.Assertion_failure _; _ }, _) -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "wrong kind: %s" (Error.kind_to_string r.Error.kind)
  | E.No_bug _ -> Alcotest.fail "crash never injected"

let test_fault_trace_replays () =
  (* Every injected fault is a recorded choice: replaying a fault-found
     witness under the same spec reproduces the identical error. *)
  let faults = Fault.make [ Fault.Drop ] in
  let cfg = { base_config with E.faults } in
  let deadlocks =
    E.survey cfg one_shot_harness
    |> List.filter (fun (r, _) -> kind_tag r.Error.kind = "deadlock")
  in
  match deadlocks with
  | [] -> Alcotest.fail "no dropped-message witness found"
  | (report, _) :: _ ->
    let result = E.replay cfg report.Error.trace one_shot_harness in
    (match result.R.bug with
     | Some (Error.Deadlock _) -> ()
     | Some k ->
       Alcotest.failf "replayed to a different bug: %s"
         (Error.kind_to_string k)
     | None -> Alcotest.fail "fault witness did not replay")

(* --- The fault-only catalog bugs ----------------------------------------- *)

let entry_config ?(max_executions = 300) entry ~faults =
  {
    E.default_config with
    max_executions;
    max_steps = entry.Catalog.Bug_catalog.max_steps;
    seed = 1L;
    faults;
  }

let hunt_entry ?max_executions ?(fixed = false) entry ~faults =
  let harness =
    if fixed then entry.Catalog.Bug_catalog.fixed_harness
    else entry.Catalog.Bug_catalog.harness
  in
  E.run ~monitors:entry.Catalog.Bug_catalog.monitors
    (entry_config ?max_executions entry ~faults)
    harness

let check_fault_bug ~name ~expect =
  let entry = Catalog.Bug_catalog.find name in
  Alcotest.(check bool)
    "entry carries a fault spec" true
    (Fault.enabled entry.Catalog.Bug_catalog.faults);
  (* 1. Reachable under the entry's own fault spec... *)
  (match hunt_entry entry ~faults:entry.Catalog.Bug_catalog.faults with
   | E.Bug_found (report, _) ->
     expect report.Error.kind;
     (* ...and the witness replays to the identical error under the same
        spec. *)
     let result =
       E.replay
         ~monitors:entry.Catalog.Bug_catalog.monitors
         (entry_config entry ~faults:entry.Catalog.Bug_catalog.faults)
         report.Error.trace entry.Catalog.Bug_catalog.harness
     in
     (match result.R.bug with
      | Some kind ->
        Alcotest.(check string)
          "replay reproduces the identical error"
          (Error.kind_to_string report.Error.kind)
          (Error.kind_to_string kind)
      | None -> Alcotest.fail "fault witness did not replay")
   | E.No_bug _ -> Alcotest.failf "%s not found with its fault spec" name);
  (* 2. Unreachable without faults: these bugs need injection. *)
  (match
     hunt_entry entry ~max_executions:150 ~faults:Fault.none
   with
   | E.No_bug _ -> ()
   | E.Bug_found (r, _) ->
     Alcotest.failf "%s found without faults: %s" name
       (Error.kind_to_string r.Error.kind));
  (* 3. No false positive: the fixed harness survives the same faults. *)
  match
    hunt_entry entry ~max_executions:150 ~fixed:true
      ~faults:entry.Catalog.Bug_catalog.faults
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "fixed %s still fails: %s" name
      (Error.kind_to_string r.Error.kind)

let test_vnext_crash_bug () =
  check_fault_bug ~name:"ExtentNodeCrashLosesBinding" ~expect:(function
    | Error.Liveness_violation { monitor; _ } ->
      Alcotest.(check string) "repair monitor" "RepairMonitor" monitor
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k))

let test_chaintable_dup_bug () =
  check_fault_bug ~name:"ChaintableDuplicateBackendRequest" ~expect:(function
    | Error.Assertion_failure _ -> ()
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k))

let test_fabric_crash_bug () =
  check_fault_bug ~name:"FabricCrashSilentRestart" ~expect:(function
    | Error.Liveness_violation { monitor; _ } ->
      Alcotest.(check string) "client liveness monitor" "FabricClientLiveness"
        monitor
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k))

let test_shrink_fault_trace () =
  (* The shrinker minimizes a fault schedule like any other: the minimized
     vnext crash witness is shorter and still violates the same monitor. *)
  let entry = Catalog.Bug_catalog.find "ExtentNodeCrashLosesBinding" in
  let cfg = entry_config entry ~faults:entry.Catalog.Bug_catalog.faults in
  match
    E.run ~monitors:entry.Catalog.Bug_catalog.monitors cfg
      entry.Catalog.Bug_catalog.harness
  with
  | E.No_bug _ -> Alcotest.fail "crash bug not found"
  | E.Bug_found (report, _) ->
    (* One delta-debugging round keeps the test affordable: every shrink
       candidate of a liveness witness replays to the full step bound. *)
    let shrunk =
      Psharp.Shrinker.shrink ~rounds:1
        ~monitors:entry.Catalog.Bug_catalog.monitors cfg report
        entry.Catalog.Bug_catalog.harness
    in
    Alcotest.(check bool) "not longer" true
      (Trace.length shrunk.Error.trace <= Trace.length report.Error.trace);
    (match shrunk.Error.kind with
     | Error.Liveness_violation { monitor; _ } ->
       Alcotest.(check string) "same monitor" "RepairMonitor" monitor
     | k -> Alcotest.failf "kind changed: %s" (Error.kind_to_string k));
    let result =
      E.replay ~monitors:entry.Catalog.Bug_catalog.monitors cfg
        shrunk.Error.trace entry.Catalog.Bug_catalog.harness
    in
    (match result.R.bug with
     | Some (Error.Liveness_violation _) -> ()
     | _ -> Alcotest.fail "shrunk fault trace does not replay")

let suite =
  [
    Alcotest.test_case "spec: basics" `Quick test_spec_basics;
    Alcotest.test_case "spec: parse" `Quick test_spec_parse;
    Alcotest.test_case "disabled faults = plain send, zero draws" `Quick
      test_disabled_is_plain_send;
    Alcotest.test_case "drop loses the message" `Quick
      test_drop_loses_the_message;
    Alcotest.test_case "duplicate delivers twice" `Quick
      test_duplicate_delivers_twice;
    Alcotest.test_case "delay reorders a same-sender pair" `Quick
      test_delay_reorders_same_sender;
    Alcotest.test_case "crash restarts a persistent machine" `Quick
      test_crash_restarts_persistent_machine;
    Alcotest.test_case "fault witnesses replay" `Quick test_fault_trace_replays;
    Alcotest.test_case "catalog: vnext crash loses binding" `Slow
      test_vnext_crash_bug;
    Alcotest.test_case "catalog: chaintable duplicate backend request" `Slow
      test_chaintable_dup_bug;
    Alcotest.test_case "catalog: fabric crash silent restart" `Slow
      test_fabric_crash_bug;
    Alcotest.test_case "shrinker minimizes a fault trace" `Slow
      test_shrink_fault_trace;
  ]
