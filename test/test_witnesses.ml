(* Witness-corpus regression tests (ISSUE 5 satellite 2).

   [test/witnesses/] holds shrunk schedule traces for a spread of catalog
   bugs, checked in as a regression corpus: replaying each against today's
   harness must reproduce exactly the recorded violation. A failure here
   means a harness or runtime change silently altered scheduling semantics
   — the witness either diverges or trips a different bug. Regenerate a
   witness only for an *intentional* semantic change:

     psharp_test hunt BUG --seed 1 --executions 20000 --shrink \
       --trace-out test/witnesses/BUG.trace *)

module E = Psharp.Engine
module Error = Psharp.Error
module Bug_catalog = Catalog.Bug_catalog

(* bug name -> exact Error.kind_to_string of the recorded violation *)
let corpus =
  [
    ( "ChaintableDuplicateBackendRequest",
      "assertion failed in machine Tables(1): double linearization: \
       Service1(3) linearized a call with no pending logical operation" );
    ( "DeletePrimaryKey",
      "assertion failed in machine Service1(3): outcome divergence on \
       Delete(P1/r1, etag=9): migrating table returned \
       Err(PreconditionFailed), reference table returned Ok(etag=-)" );
    ( "ExampleDuplicateReplicaAck",
      "safety violation in monitor ReplicationSafety: Ack for request 1 \
       sent with only 2 of 3 true replicas" );
    ( "ExtentNodeCrashLosesBinding",
      "liveness violation: monitor RepairMonitor stuck in hot state \
       Repairing since step 349" );
    ( "FabricPromoteDuringCopy",
      "assertion failed in machine FailoverManager(1): replica 2 was \
       promoted to active secondary while being the primary" );
    ( "PaxosForgetPromise",
      "safety violation in monitor PaxosAgreement: agreement violated: 102 \
       chosen after 101" );
    ( "QueryAtomicFilterShadowing",
      "assertion failed in machine Service0(2): query divergence on \
       ((PartitionKey eq 'P0') and (not (v eq '2'))): migrating table \
       Rows[{P0/r0 etag=7 v=3}; {P0/r1 etag=1 v=1}], reference table \
       Rows[{P0/r1 etag=1 v=1}]" );
    ( "RaftDoubleVote",
      "safety violation in monitor RaftElectionSafety: two leaders in term \
       1: servers 2 and 0" );
    ( "ShardkvMigrationDoubleApply",
      "assertion failed in machine Harness(0): shardkv: key k4: history \
       not linearizable: linearized 0/4 complete ops; no order explains \
       C1 add k4 4 -> added 5 (model would produce added 4)" );
    ( "ShardkvStaleRingServe",
      "assertion failed in machine Harness(0): shardkv: key k4: history \
       not linearizable: linearized 2/4 complete ops; no order explains \
       C0 add k4 2 -> added 3 (model would produce added 7)" );
    ( "ShardkvCrashLosesShard",
      "assertion failed in machine Harness(0): shardkv: key k4: history \
       not linearizable: linearized 1/4 complete ops; no order explains \
       C1 add k4 4 -> added 6 (model would produce added 5)" );
  ]

(* Scenario-found witnesses (ISSUE 10 satellite 4): shrunk traces hunted
   *under a catalog scenario*. Replay needs the same scenario installed —
   the fault driver takes its steered branch only when one is armed, so
   the draw vocabulary of the trace matches. Regenerate with:

     psharp_test scenario run SCENARIO BUG --executions 20000 --shrink \
       --trace-out test/witnesses/BUG.scenario-SCENARIO.trace *)
let scenario_corpus =
  [
    ( "crash-mid-handoff",
      "ShardkvMigrationDoubleApply",
      "assertion failed in machine Harness(0): shardkv: key k4: history \
       not linearizable: linearized 0/4 complete ops; no order explains \
       C1 add k4 4 -> added 5 (model would produce added 4)" );
    ( "dup-backend",
      "ChaintableDuplicateBackendRequest",
      "assertion failed in machine Tables(1): double linearization: \
       Service0(2) linearized a call with no pending logical operation" );
    ( "lossy-window",
      "RaftDoubleVote",
      "safety violation in monitor RaftElectionSafety: two leaders in \
       term 1: servers 0 and 1" );
  ]

(* Resolve the corpus directory whether the binary runs from the dune
   sandbox (cwd = test/) or from the workspace root. *)
let witness_dir =
  lazy
    (if Sys.file_exists "witnesses" then "witnesses"
     else Filename.concat "test" "witnesses")

let replay_one (bug, expected) () =
  let entry = Bug_catalog.find bug in
  let trace =
    Psharp.Trace.load
      ~path:(Filename.concat (Lazy.force witness_dir) (bug ^ ".trace"))
  in
  let config =
    {
      E.default_config with
      max_executions = 1;
      max_steps = entry.Bug_catalog.max_steps;
      faults = entry.Bug_catalog.faults;
      clock = entry.Bug_catalog.clock;
    }
  in
  let result =
    E.replay ~monitors:entry.Bug_catalog.monitors config trace
      entry.Bug_catalog.harness
  in
  match result.Psharp.Runtime.bug with
  | Some kind ->
    Alcotest.(check string)
      (bug ^ " witness reproduces the recorded violation")
      expected (Error.kind_to_string kind)
  | None -> Alcotest.failf "%s witness replayed without a bug" bug

let replay_scenario (scenario_name, bug, expected) () =
  let entry = Bug_catalog.find bug in
  let scat = Catalog.Scenario_catalog.find scenario_name in
  let scenario = scat.Catalog.Scenario_catalog.scenario in
  let trace =
    Psharp.Trace.load
      ~path:
        (Filename.concat (Lazy.force witness_dir)
           (bug ^ ".scenario-" ^ scenario_name ^ ".trace"))
  in
  let config =
    {
      E.default_config with
      max_executions = 1;
      max_steps = entry.Bug_catalog.max_steps;
      faults = Psharp.Scenario.arm scenario entry.Bug_catalog.faults;
      clock = entry.Bug_catalog.clock;
      scenario = Some scenario;
    }
  in
  let result =
    E.replay ~monitors:entry.Bug_catalog.monitors config trace
      entry.Bug_catalog.harness
  in
  match result.Psharp.Runtime.bug with
  | Some kind ->
    Alcotest.(check string)
      (bug ^ " scenario witness reproduces the recorded violation")
      expected (Error.kind_to_string kind)
  | None ->
    Alcotest.failf "%s scenario witness replayed without a bug" bug

let test_corpus_complete () =
  (* every checked-in witness has a corpus entry, and vice versa *)
  let on_disk = Sys.readdir (Lazy.force witness_dir) |> Array.to_list in
  let expected =
    List.map (fun (b, _) -> b ^ ".trace") corpus
    @ List.map
        (fun (s, b, _) -> b ^ ".scenario-" ^ s ^ ".trace")
        scenario_corpus
  in
  Alcotest.(check (slist string String.compare))
    "corpus matches the files on disk" expected
    (List.filter (fun f -> Filename.check_suffix f ".trace") on_disk)

let suite =
  (Alcotest.test_case "corpus complete" `Quick test_corpus_complete
   :: List.map
        (fun entry ->
          Alcotest.test_case ("replay " ^ fst entry) `Quick
            (replay_one entry))
        corpus)
  @ List.map
      (fun ((s, b, _) as entry) ->
        Alcotest.test_case
          (Printf.sprintf "replay %s under %s" b s)
          `Quick (replay_scenario entry))
      scenario_corpus
