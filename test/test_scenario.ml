(* Scenario conformance battery (ISSUE 10 satellite 1).

   Every catalog scenario is run against every one of its target bugs and
   each sampled execution is revalidated with [Scenario.check] — the
   journal-based checker that recomputes trigger and window state
   independently of the enforcement code in the strategy wrapper — plus
   the wrapper's own wedge counter and enforcement self-checks. The
   battery also pins catalog shape (>= 15 scenarios, every entry >= 2
   targets spanning >= 2 case studies, all targets real), journal
   determinism at a fixed seed, and worker-count invariance (the multiset
   of journals is identical for any worker count, because parallel runs
   explore exactly the sequential schedule set). *)

module E = Psharp.Engine
module Scenario = Psharp.Scenario
module Scat = Catalog.Scenario_catalog
module Bug = Catalog.Bug_catalog

(* Executions sampled per scenario, split across its targets. *)
let battery_budget = 500

(* --- per-run audit accumulator ------------------------------------------- *)

type acc = {
  mu : Mutex.t;
  mutable executions : int;
  mutable wedges : int;
  mutable enforcement : string list;  (* wrapper self-check failures *)
  mutable check_failures : string list;  (* independent checker *)
  mutable journals : string list;  (* rendered, reverse audit order *)
}

let fresh_acc () =
  {
    mu = Mutex.create ();
    executions = 0;
    wedges = 0;
    enforcement = [];
    check_failures = [];
    journals = [];
  }

let render_journal obs =
  String.concat "\n"
    (List.map Scenario.journal_entry_to_string (Scenario.Obs.journal obs))

let audit scenario ?(keep_journals = false) acc obs =
  Mutex.protect acc.mu (fun () ->
      acc.executions <- acc.executions + 1;
      acc.wedges <- acc.wedges + Scenario.Obs.wedges obs;
      acc.enforcement <- Scenario.Obs.violations obs @ acc.enforcement;
      (match Scenario.check scenario (Scenario.Obs.journal obs) with
       | Ok () -> ()
       | Error vs -> acc.check_failures <- vs @ acc.check_failures);
      if keep_journals then acc.journals <- render_journal obs :: acc.journals)

(* Run [executions] schedules of [target]'s harness under the scenario and
   return the audit accumulator. [E.explore] never stops at a bug, so the
   full budget is always sampled. *)
let sample ?(keep_journals = false) ?(workers = 1) ~seed ~executions scenario
    target =
  let entry = Bug.find target in
  let acc = fresh_acc () in
  let config =
    {
      E.default_config with
      strategy = E.Random;
      seed;
      max_executions = executions;
      max_steps = entry.Bug.max_steps;
      workers;
      faults = Scenario.arm scenario entry.Bug.faults;
      clock = entry.Bug.clock;
      scenario = Some scenario;
      scenario_audit = Some (audit scenario ~keep_journals acc);
    }
  in
  let (_ : E.stats) =
    E.explore ~monitors:entry.Bug.monitors config entry.Bug.harness
  in
  acc

let head_of = function [] -> "-" | v :: _ -> v

(* --- catalog shape ------------------------------------------------------- *)

let test_catalog_shape () =
  let n = List.length Scat.all in
  if n < 15 then Alcotest.failf "only %d scenarios in the catalog" n;
  let names = List.map (fun e -> e.Scat.name) Scat.all in
  if List.length (List.sort_uniq compare names) <> n then
    Alcotest.fail "duplicate scenario names";
  List.iter
    (fun e ->
      if List.length e.Scat.targets < 2 then
        Alcotest.failf "%s has fewer than two targets" e.Scat.name;
      let studies =
        List.sort_uniq compare
          (List.map
             (fun t ->
               match Bug.find t with
               | entry -> (
                   (* The sample case study holds two genuinely different
                      harnesses (Paxos and Raft); split it by bug-name
                      prefix so either counts as its own harness. *)
                   match Bug.case_study_to_string entry.Bug.case_study with
                   | "s" when String.length t >= 5 && String.sub t 0 5 = "Paxos"
                     -> "s:paxos"
                   | "s" -> "s:raft"
                   | k -> k)
               | exception Invalid_argument _ ->
                 Alcotest.failf "%s targets unknown bug %s" e.Scat.name t)
             e.Scat.targets)
      in
      if List.length studies < 2 then
        Alcotest.failf "%s does not span two harnesses (only %s)" e.Scat.name
          (String.concat "," studies))
    Scat.all

(* --- conformance over the whole catalog ---------------------------------- *)

let test_conformance entry () =
  let targets = entry.Scat.targets in
  let per =
    (battery_budget + List.length targets - 1) / List.length targets
  in
  List.iteri
    (fun i target ->
      let acc =
        sample ~seed:(Int64.of_int (31 * i)) ~executions:per
          entry.Scat.scenario target
      in
      if acc.executions <> per then
        Alcotest.failf "%s on %s: sampled %d of %d executions" entry.Scat.name
          target acc.executions per;
      if acc.wedges <> 0 then
        Alcotest.failf "%s on %s: %d wedge(s) over %d executions"
          entry.Scat.name target acc.wedges per;
      if acc.enforcement <> [] then
        Alcotest.failf "%s on %s: %d enforcement violation(s), first: %s"
          entry.Scat.name target
          (List.length acc.enforcement)
          (head_of acc.enforcement);
      if acc.check_failures <> [] then
        Alcotest.failf "%s on %s: %d checker violation(s), first: %s"
          entry.Scat.name target
          (List.length acc.check_failures)
          (head_of acc.check_failures))
    targets

(* --- determinism --------------------------------------------------------- *)

let test_determinism () =
  let entry = Scat.find "crash-mid-handoff" in
  let target = List.hd entry.Scat.targets in
  let run () =
    let acc =
      sample ~keep_journals:true ~seed:7L ~executions:40 entry.Scat.scenario
        target
    in
    List.rev acc.journals
  in
  let a = run () and b = run () in
  if a <> b then
    Alcotest.fail
      "same seed, different journals: scenario runs are not deterministic"

(* --- worker-count invariance --------------------------------------------- *)

let test_worker_invariance () =
  List.iter
    (fun (name, budget) ->
      let entry = Scat.find name in
      let target = List.hd entry.Scat.targets in
      let journals ~workers =
        let acc =
          sample ~keep_journals:true ~workers ~seed:11L ~executions:budget
            entry.Scat.scenario target
        in
        (acc, List.sort compare acc.journals)
      in
      let acc1, seq = journals ~workers:1 in
      let acc3, par = journals ~workers:3 in
      if acc3.wedges <> 0 || acc3.enforcement <> [] then
        Alcotest.failf "%s: parallel run not conformant (wedges %d)" name
          acc3.wedges;
      if acc3.check_failures <> [] then
        Alcotest.failf "%s: parallel checker violation: %s" name
          (head_of acc3.check_failures);
      if acc1.executions <> acc3.executions then
        Alcotest.failf "%s: %d sequential vs %d parallel executions" name
          acc1.executions acc3.executions;
      if seq <> par then
        Alcotest.failf
          "%s: journal multiset differs between 1 and 3 workers" name)
    [ ("crash-mid-handoff", 60); ("dup-storm", 60) ]

let suite =
  Alcotest.test_case "catalog shape" `Quick test_catalog_shape
  :: Alcotest.test_case "journal determinism (fixed seed)" `Quick
       test_determinism
  :: Alcotest.test_case "worker-count invariance" `Quick
       test_worker_invariance
  :: List.map
       (fun e ->
         Alcotest.test_case
           (Printf.sprintf "conformance: %s x%d" e.Scat.name battery_budget)
           `Slow (test_conformance e))
       Scat.all
