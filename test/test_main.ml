let () =
  Alcotest.run "psharp-repro"
    [
      ("prng", Test_prng.suite);
      ("trace", Test_trace.suite);
      ("inbox", Test_inbox.suite);
      ("event", Test_event.suite);
      ("monitor", Test_monitor.suite);
      ("runtime", Test_runtime.suite);
      ("statemachine", Test_statemachine.suite);
      ("strategies", Test_strategies.suite);
      ("engine", Test_engine.suite);
      ("parallel", Test_parallel.suite);
      ("golden", Test_golden.suite);
      ("coverage", Test_coverage.suite);
      ("core-extra", Test_core_extra.suite);
      ("pushpop-delay", Test_pushpop.suite);
      ("replication", Test_replication.suite);
      ("vnext", Test_vnext.suite);
      ("chaintable", Test_chaintable.suite);
      ("chaintable-harness", Test_chaintable_harness.suite);
      ("fabric", Test_fabric.suite);
      ("consensus", Test_consensus.suite);
      ("shrinker", Test_shrinker.suite);
      ("fault", Test_fault.suite);
      ("clock", Test_clock.suite);
      ("substrate-extra", Test_substrate_extra.suite);
      ("hb", Test_hb.suite);
      ("reduction", Test_reduction.suite);
      ("linearizability", Test_linearizability.suite);
      ("shardkv", Test_shardkv.suite);
      ("witnesses", Test_witnesses.suite);
      ("roundtrip", Test_roundtrip.suite);
      ("scenario", Test_scenario.suite);
      ("campaign", Test_campaign.suite);
    ]
