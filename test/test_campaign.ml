(* Campaign persistence (Campaign) and the Coverage save format it rides
   on: canonical round-trips, the strict-parse rejection battery, and the
   headline resume property — a saved-and-resumed run accumulates exactly
   the coverage of an uninterrupted one. *)

module E = Psharp.Engine
module R = Psharp.Runtime
module Coverage = Psharp.Coverage
module Campaign = Psharp.Campaign
module Fuzz = Psharp.Fuzz_strategy
module Trace = Psharp.Trace
module Event = Psharp.Event

type Event.t += Token

let racy_harness ctx =
  let first = ref None in
  let referee =
    R.create ctx ~name:"Referee" (fun rctx ->
        ignore (R.receive rctx);
        R.assert_here rctx (!first = Some "A") "B overtook A")
  in
  let writer name wctx =
    if !first = None then first := Some name;
    ignore (R.nondet ctx);
    R.send wctx referee Token
  in
  ignore (R.create ctx ~name:"A" (writer "A"));
  ignore (R.create ctx ~name:"B" (writer "B"))

let explore_coverage ?(start_iteration = 0) ?prior_coverage ~executions () =
  let stats =
    E.explore
      {
        E.default_config with
        max_executions = executions;
        max_steps = 200;
        seed = 11L;
        start_iteration;
        prior_coverage;
      }
      racy_harness
  in
  match stats.E.coverage with
  | Some cov -> cov
  | None -> Alcotest.fail "explore returned no coverage"

(* --- Coverage save format ----------------------------------------------- *)

let test_coverage_save_roundtrip () =
  let cov = explore_coverage ~executions:50 () in
  let s = Coverage.to_save cov in
  let cov2 = Coverage.of_save s in
  Alcotest.(check bool) "loaded map equals original" true
    (Coverage.equal cov cov2);
  Alcotest.(check string) "canonical: re-saving yields identical bytes" s
    (Coverage.to_save cov2)

let test_coverage_save_empty () =
  let cov = Coverage.create () in
  let cov2 = Coverage.of_save (Coverage.to_save cov) in
  Alcotest.(check bool) "empty map round-trips" true (Coverage.equal cov cov2)

let expect_save_failure label data =
  match Coverage.of_save data with
  | exception Failure _ -> ()
  | _ -> Alcotest.failf "%s: corrupted save accepted" label

let test_coverage_save_rejects_corruption () =
  let s = Coverage.to_save (explore_coverage ~executions:20 ()) in
  let lines = String.split_on_char '\n' s in
  let rejoin ls = String.concat "\n" ls in
  expect_save_failure "wrong version"
    (rejoin ("psharp-coverage:99" :: List.tl lines));
  expect_save_failure "empty input" "";
  (* drop the end trailer: whole-line truncation must not load *)
  let no_trailer =
    List.filteri (fun i _ -> i < List.length lines - 2) lines
  in
  expect_save_failure "missing end trailer" (rejoin no_trailer ^ "\n");
  (* duplicate an entry line: duplicate keys must not double-count *)
  (match
     List.find_opt
       (fun l ->
         String.length l > 6
         && List.exists
              (fun p -> String.length l > String.length p
                        && String.sub l 0 (String.length p) = p)
              [ "state\t"; "event\t"; "triple\t" ])
       lines
   with
   | Some entry ->
     let dup =
       List.concat_map (fun l -> if l = entry then [ l; l ] else [ l ]) lines
     in
     expect_save_failure "duplicate entry" (rejoin dup)
   | None -> Alcotest.fail "expected at least one state/event/triple entry");
  (* blank interior line *)
  expect_save_failure "blank line"
    (rejoin (List.hd lines :: "" :: List.tl lines));
  (* content after the end trailer *)
  expect_save_failure "content after end" (s ^ "state\tGhost.Init\t1\n");
  (* non-canonical executions count *)
  let non_canonical =
    List.map
      (fun l ->
        if String.length l > 11 && String.sub l 0 11 = "executions:" then
          "executions:0" ^ String.sub l 11 (String.length l - 11)
        else l)
      lines
  in
  expect_save_failure "non-canonical executions" (rejoin non_canonical)

(* --- Campaign round-trip ------------------------------------------------ *)

let tmp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      ("psharp_test_campaign_" ^ name)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f))
          (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  dir

let sample_trace choices = Trace.of_list choices

let sample_campaign () =
  let cov = explore_coverage ~executions:20 () in
  let corpus =
    [
      (* a v2 entry with energy and typed novelty tags... *)
      {
        Fuzz.trace =
          sample_trace [ Trace.Schedule 0; Trace.Int 1; Trace.Bool true ];
        energy = Fuzz.energy_of_tags [ Coverage.Fault; Coverage.Hb ];
        tags = [ Coverage.Fault; Coverage.Hb ];
      };
      (* ...and a bare v1-shaped one (energy 1, no tags) *)
      Fuzz.entry_of_trace (sample_trace [ Trace.Schedule 1; Trace.Schedule 0 ]);
    ]
  in
  let witness = sample_trace [ Trace.Schedule 1; Trace.Bool false ] in
  let c = Campaign.create ~harness:"RacyExample" ~seed:11L in
  let c = Campaign.advance c ~executions:20 ~coverage:cov ~corpus in
  let c = Campaign.record_witness c ~kind:"assertion failed" ~trace:witness in
  (* a second witness of the same kind must not displace the first *)
  Campaign.record_witness c ~kind:"assertion failed"
    ~trace:(sample_trace [ Trace.Schedule 0 ])

(* Render a corpus entry fully — energy, tags and trace — so equality
   checks cover the v2 metadata, not just the schedules. *)
let corpus_to_strings =
  List.map (fun (e : Fuzz.corpus_entry) ->
      Printf.sprintf "%d|%s|%s" e.Fuzz.energy
        (String.concat ","
           (List.map Coverage.family_kind_to_string e.Fuzz.tags))
        (Trace.to_string e.Fuzz.trace))

let test_campaign_roundtrip () =
  let dir = tmp_dir "roundtrip" in
  let c = sample_campaign () in
  Campaign.save ~dir c;
  let l = Campaign.load ~dir in
  Alcotest.(check string) "harness" c.Campaign.harness l.Campaign.harness;
  Alcotest.(check int64) "seed" c.Campaign.seed l.Campaign.seed;
  Alcotest.(check int) "executions" 20 l.Campaign.executions;
  Alcotest.(check bool) "coverage" true
    (Coverage.equal c.Campaign.coverage l.Campaign.coverage);
  Alcotest.(check (list string))
    "corpus (energy and tags included)"
    (corpus_to_strings c.Campaign.corpus)
    (corpus_to_strings l.Campaign.corpus);
  Alcotest.(check (list (pair string string)))
    "witnesses (first of each kind)"
    (List.map (fun (k, t) -> (k, Trace.to_string t)) c.Campaign.witnesses)
    (List.map (fun (k, t) -> (k, Trace.to_string t)) l.Campaign.witnesses);
  Alcotest.(check int) "one witness per kind" 1
    (List.length l.Campaign.witnesses)

let test_campaign_fresh_roundtrip () =
  let dir = tmp_dir "fresh" in
  let c = Campaign.create ~harness:"Empty" ~seed:0L in
  Campaign.save ~dir c;
  let l = Campaign.load ~dir in
  Alcotest.(check int) "zero executions" 0 l.Campaign.executions;
  Alcotest.(check bool) "empty coverage" true
    (Coverage.equal (Coverage.create ()) l.Campaign.coverage);
  Alcotest.(check (list string)) "empty corpus" []
    (corpus_to_strings l.Campaign.corpus)

let test_campaign_load_opt_missing () =
  let dir = tmp_dir "missing" in
  Alcotest.(check bool) "no campaign -> None" true
    (Campaign.load_opt ~dir = None)

(* --- Campaign corruption battery ---------------------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc data)

let expect_load_failure label dir =
  match Campaign.load ~dir with
  | exception Failure _ -> ()
  | _ -> Alcotest.failf "%s: corrupted campaign loaded" label

(* Each case re-saves a pristine campaign, applies one corruption, and
   expects a loud [Failure]. *)
let test_campaign_rejects_corruption () =
  let dir = tmp_dir "corrupt" in
  let c = sample_campaign () in
  let meta = Filename.concat dir "campaign.meta" in
  let fresh () = Campaign.save ~dir c in
  let corrupt_meta label f =
    fresh ();
    write_file meta (f (read_file meta));
    expect_load_failure label dir
  in
  corrupt_meta "wrong meta version" (fun s ->
      "psharp-campaign:99" ^ String.sub s 17 (String.length s - 17));
  corrupt_meta "truncated meta (no end line)" (fun s ->
      (* drop the last (end) line *)
      let lines = String.split_on_char '\n' s in
      String.concat "\n"
        (List.filteri (fun i _ -> i < List.length lines - 2) lines)
      ^ "\n");
  corrupt_meta "witness count mismatch" (fun s ->
      let lines = String.split_on_char '\n' s in
      String.concat "\n"
        (List.map
           (fun l -> if l = "witnesses:1" then "witnesses:2" else l)
           lines));
  corrupt_meta "non-canonical executions" (fun s ->
      let lines = String.split_on_char '\n' s in
      String.concat "\n"
        (List.map
           (fun l -> if l = "executions:20" then "executions:020" else l)
           lines));
  corrupt_meta "garbage after end" (fun s -> s ^ "extra:line\n");
  (* the v2 corpus-entry metadata must be as strict as everything else *)
  let corrupt_centry label ~from ~to_ =
    corrupt_meta label (fun s ->
        let lines = String.split_on_char '\n' s in
        if not (List.mem from lines) then
          Alcotest.failf "%s: expected meta line %S" label from;
        String.concat "\n"
          (List.map (fun l -> if l = from then to_ else l) lines))
  in
  let tagged = "centry:" ^ string_of_int (Fuzz.energy_of_tags [ Coverage.Fault; Coverage.Hb ]) ^ ",fault,hb" in
  corrupt_centry "zero corpus energy" ~from:"centry:1" ~to_:"centry:0";
  corrupt_centry "non-canonical corpus energy" ~from:"centry:1" ~to_:"centry:01";
  corrupt_centry "unknown corpus tag" ~from:tagged
    ~to_:"centry:13,fault,warp";
  corrupt_centry "non-canonical corpus tag order" ~from:tagged
    ~to_:"centry:13,hb,fault";
  corrupt_centry "duplicate corpus tag" ~from:tagged
    ~to_:"centry:13,fault,fault,hb";
  corrupt_centry "corpus count vs centry lines" ~from:"corpus:2"
    ~to_:"corpus:3";
  fresh ();
  Sys.remove (Filename.concat dir "coverage");
  expect_load_failure "missing coverage file" dir;
  fresh ();
  Sys.remove (Filename.concat (Filename.concat dir "corpus") "00001.trace");
  expect_load_failure "missing corpus entry" dir;
  fresh ();
  write_file
    (Filename.concat (Filename.concat dir "corpus") "00000.trace")
    "not a trace\n";
  expect_load_failure "corrupted corpus entry" dir

(* --- Resume equivalence ------------------------------------------------- *)

let test_resume_equals_uninterrupted () =
  (* For an iteration-seeded strategy, 20 executions + save + load + 20
     resumed executions must accumulate exactly the coverage of one
     uninterrupted 40-execution run: execution seeds are a pure function
     of the global iteration, prior coverage seeds the accumulator, and
     absorb is commutative. *)
  let full = explore_coverage ~executions:40 () in
  let first = explore_coverage ~executions:20 () in
  let dir = tmp_dir "resume" in
  let corpus =
    [
      {
        Fuzz.trace = sample_trace [ Trace.Schedule 0; Trace.Bool true ];
        energy = Fuzz.energy_of_tags [ Coverage.Hb ];
        tags = [ Coverage.Hb ];
      };
    ]
  in
  let c = Campaign.create ~harness:"RacyExample" ~seed:11L in
  let c = Campaign.advance c ~executions:20 ~coverage:first ~corpus in
  Campaign.save ~dir c;
  let l = Campaign.load ~dir in
  (* the energy metadata rides along unchanged... *)
  Alcotest.(check (list string))
    "resumed corpus carries energy metadata" (corpus_to_strings corpus)
    (corpus_to_strings l.Campaign.corpus);
  (* ...and the resumed run still accumulates exactly the uninterrupted
     run's coverage *)
  let resumed =
    explore_coverage ~start_iteration:l.Campaign.executions
      ~prior_coverage:l.Campaign.coverage ~executions:20 ()
  in
  Alcotest.(check bool)
    "resumed cumulative coverage = uninterrupted run" true
    (Coverage.equal full resumed)

let suite =
  [
    Alcotest.test_case "coverage: save round-trips canonically" `Quick
      test_coverage_save_roundtrip;
    Alcotest.test_case "coverage: empty map round-trips" `Quick
      test_coverage_save_empty;
    Alcotest.test_case "coverage: corrupted saves rejected" `Quick
      test_coverage_save_rejects_corruption;
    Alcotest.test_case "campaign: directory round-trip" `Quick
      test_campaign_roundtrip;
    Alcotest.test_case "campaign: fresh campaign round-trips" `Quick
      test_campaign_fresh_roundtrip;
    Alcotest.test_case "campaign: load_opt on a missing dir" `Quick
      test_campaign_load_opt_missing;
    Alcotest.test_case "campaign: corrupted campaigns rejected" `Quick
      test_campaign_rejects_corruption;
    Alcotest.test_case "campaign: resume equals uninterrupted run" `Quick
      test_resume_equals_uninterrupted;
  ]
