(* Benchmark harness: regenerates every quantitative result of the paper.

   - [table1]: modeling-cost statistics (paper Table 1)
   - [table2]: bug-finding results for the random and priority-based
     schedulers (paper Table 2)
   - [vnext-fix]: the §3.6 fix validation (no bug in many executions)
   - [ablation]: scheduler / change-point / liveness-bound sweeps (ours)
   - [coverage-growth]: coverage-over-executions for random vs PCT vs
     feedback-directed fuzz (ours)
   - [micro]: bechamel micro-benchmarks of engine throughput (ours)

   With no arguments, everything runs with a wall-clock-friendly execution
   budget; [--full] restores the paper's 100,000-execution budget. *)

module E = Psharp.Engine
module Bug_catalog = Catalog.Bug_catalog
module Error = Psharp.Error
module Scenario_catalog = Catalog.Scenario_catalog

let base_seed = 1L

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let loc_of_files files =
  let count file =
    if Sys.file_exists file then begin
      let ic = open_in file in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> close_in ic);
      !n
    end
    else 0
  in
  List.fold_left (fun acc f -> acc + count f) 0 files

let lib d names = List.map (fun n -> Printf.sprintf "lib/%s/%s.ml" d n) names

type table1_row = {
  label : string;
  system_files : string list;
  harness_files : string list;
  bugs_modeled : int;
  machine_names : string list;  (** registry names counted for #M/#ST/#AH *)
  paper : string;  (** the paper's row, for side-by-side comparison *)
}

let table1_rows =
  [
    {
      label = "vNext Extent Manager";
      system_files =
        lib "vnext" [ "extent_manager"; "extent_center"; "extent_node_map" ];
      harness_files =
        lib "vnext"
          [ "events"; "relay"; "extent_node"; "mgr_machine"; "testing_driver";
            "repair_monitor"; "bug_flags" ];
      bugs_modeled = 1;
      machine_names =
        [ "ExtentManager"; "ExtentNode"; "NetworkEngine"; "TestingDriver";
          "Timer"; "RepairMonitor" ];
      paper = "19,775 LoC, 1 bug; harness 684 LoC, 5 M, 11 ST, 17 AH";
    };
    {
      label = "MigratingTable";
      system_files =
        lib "chaintable"
          [ "migrating_table"; "migrator"; "reference_table"; "table_types";
            "filter"; "filter0"; "internal"; "phase" ];
      harness_files =
        lib "chaintable"
          [ "events"; "tables_machine"; "service_machine"; "migrator_machine";
            "remote_backend"; "workload"; "harness"; "spec_check"; "linearize";
            "backend"; "bug_flags" ];
      bugs_modeled = 11;
      machine_names = [ "Tables"; "Service"; "Migrator"; "MigrationHarness" ];
      paper = "2,267 LoC, 11 bugs; harness 2,275 LoC, 3 M, 5 ST, 10 AH";
    };
    {
      label = "Fabric User Service";
      system_files = lib "fabric" [ "service"; "chained" ];
      harness_files =
        lib "fabric"
          [ "cluster_manager"; "replica"; "events"; "monitors"; "client";
            "harness"; "bug_flags" ];
      bugs_modeled = 2;
      machine_names =
        [ "FailoverManager"; "Replica"; "FabricClient"; "FabricTestingDriver";
          "FabricSinglePrimary"; "FabricClientLiveness"; "CScaleSource";
          "CScaleTransform"; "CScaleAggregator"; "CScaleControlRelay" ];
      paper = "31,959 LoC, 1 bug; harness 6,534 LoC, 13 M, 21 ST, 87 AH";
    };
  ]

(* Run each harness a few executions so the registry sees every machine,
   state and transition. *)
let populate_registry () =
  let quick harness monitors max_steps =
    let cfg =
      {
        E.default_config with
        max_executions = 3;
        max_steps;
        seed = base_seed;
      }
    in
    ignore (E.run ~monitors cfg harness)
  in
  quick
    (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
       ~scenario:Vnext.Testing_driver.Fail_and_repair ())
    (fun () -> Vnext.Testing_driver.monitors ())
    3_000;
  quick (Chaintable.Harness.test ()) (fun () -> []) 4_000;
  quick (Fabric.Harness.test ())
    (fun () -> Fabric.Harness.monitors ())
    3_000;
  quick (Fabric.Chained.test ()) (fun () -> []) 2_000;
  quick
    (Replication.Harness.test ~bugs:Replication.Bug_flags.none ())
    (fun () -> Replication.Harness.monitors ())
    2_000

let table1 () =
  print_endline "== Table 1: cost of environment modeling ==";
  print_endline
    "(LoC are this reproduction's; the paper's row is shown for shape \
     comparison)";
  populate_registry ();
  Printf.printf "%-22s | %10s %3s | %11s %3s %4s %4s\n" "System" "Sys LoC"
    "#B" "Harness LoC" "#M" "#ST" "#AH";
  print_endline (String.make 78 '-');
  List.iter
    (fun row ->
      let stats = Psharp.Registry.machines () in
      let mine =
        List.filter
          (fun s -> List.mem s.Psharp.Registry.machine row.machine_names)
          stats
      in
      let n_machines = List.length mine in
      let n_states =
        List.fold_left (fun a s -> a + s.Psharp.Registry.states) 0 mine
      in
      let n_handlers =
        List.fold_left (fun a s -> a + s.Psharp.Registry.handlers) 0 mine
      in
      let n_transitions =
        List.fold_left
          (fun a s ->
            a + Psharp.Registry.transitions ~machine:s.Psharp.Registry.machine)
          0 mine
      in
      Printf.printf "%-22s | %10d %3d | %11d %3d %4d %4d\n" row.label
        (loc_of_files row.system_files)
        row.bugs_modeled
        (loc_of_files row.harness_files)
        n_machines
        (n_states + n_transitions)
        n_handlers;
      Printf.printf "%-22s | paper: %s\n" "" row.paper)
    table1_rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

type bug_run = {
  found : [ `Found | `Custom | `Not_found ];
  time_to_bug : float;
  ndc : int;
  executions : int;
}

let run_one entry ~strategy ~budget ~harness =
  let cfg =
    {
      E.default_config with
      strategy;
      seed = base_seed;
      max_executions = budget;
      max_steps = entry.Bug_catalog.max_steps;
    }
  in
  let started = Unix.gettimeofday () in
  match E.run ~monitors:entry.Bug_catalog.monitors cfg harness with
  | E.Bug_found (report, stats) ->
    Some
      ( Unix.gettimeofday () -. started,
        Psharp.Trace.length report.Error.trace,
        stats.E.executions )
  | E.No_bug _ -> None

let hunt entry ~strategy ~budget =
  match run_one entry ~strategy ~budget ~harness:entry.Bug_catalog.harness with
  | Some (t, ndc, execs) ->
    { found = `Found; time_to_bug = t; ndc; executions = execs }
  | None -> begin
    match entry.Bug_catalog.custom_harness with
    | None -> { found = `Not_found; time_to_bug = 0.; ndc = 0; executions = 0 }
    | Some custom -> begin
      match run_one entry ~strategy ~budget ~harness:custom with
      | Some (t, ndc, execs) ->
        { found = `Custom; time_to_bug = t; ndc; executions = execs }
      | None ->
        { found = `Not_found; time_to_bug = 0.; ndc = 0; executions = 0 }
    end
  end

let pp_run r =
  match r.found with
  | `Not_found -> Printf.sprintf "%-2s %9s %7s" "x" "-" "-"
  | `Found | `Custom ->
    Printf.sprintf "%-2s %8.2fs %7d"
      (match r.found with `Found -> "Y" | `Custom -> "(Y)" | `Not_found -> "x")
      r.time_to_bug r.ndc

let table2 ~budget () =
  Printf.printf
    "== Table 2: systematic testing results (budget %d executions, seed %Ld) \
     ==\n"
    budget base_seed;
  print_endline
    "Y = found, (Y) = found only with the custom (pinned-input) test case, \
     x = not found";
  Printf.printf "%-3s %-40s | %-22s | %-22s\n" "CS" "Bug Identifier"
    "Random (BF?/time/#NDC)" "PCT d=2 (BF?/time/#NDC)";
  print_endline (String.make 98 '-');
  List.iter
    (fun entry ->
      let random = hunt entry ~strategy:E.Random ~budget in
      let pct = hunt entry ~strategy:(E.Pct { change_points = 2 }) ~budget in
      Printf.printf "%-3s %-40s | %s | %s\n"
        (Bug_catalog.case_study_to_string entry.Bug_catalog.case_study)
        entry.Bug_catalog.name (pp_run random) (pp_run pct))
    Bug_catalog.table2;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* §3.6 fix validation                                                 *)
(* ------------------------------------------------------------------ *)

let vnext_fix ~budget () =
  Printf.printf "== §3.6: fixed Extent Manager, %d executions ==\n" budget;
  let cfg =
    {
      E.default_config with
      seed = base_seed;
      max_executions = budget;
      max_steps = 3_000;
    }
  in
  let started = Unix.gettimeofday () in
  (match
     E.run
       ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
       cfg
       (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
          ~scenario:Vnext.Testing_driver.Fail_and_repair ())
   with
   | E.No_bug stats ->
     Printf.printf "no bugs found during %d executions (%.1fs)\n"
       stats.E.executions
       (Unix.gettimeofday () -. started)
   | E.Bug_found (report, stats) ->
     Printf.printf "UNEXPECTED bug after %d executions: %s\n"
       stats.E.executions
       (Error.kind_to_string report.Error.kind));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation ~budget () =
  print_endline "== Ablation 1: scheduler comparison (example bug 1, safety) ==";
  let entry = Bug_catalog.find "ExampleDuplicateReplicaAck" in
  List.iter
    (fun (name, strategy) ->
      let r = hunt entry ~strategy ~budget in
      Printf.printf "  %-22s %s\n" name (pp_run r))
    [
      ("random", E.Random);
      ("pct (d=2)", E.Pct { change_points = 2 });
      ("round-robin", E.Round_robin);
      ("dfs (depth 60)", E.Dfs { max_depth = 60; int_cap = 2 });
      ("delay-bounded (2)", E.Delay_bounded { delays = 2 });
    ];
  print_endline
    "== Ablation 2: PCT change-point budget on QueryStreamedBackUpNewStream ==";
  let entry = Bug_catalog.find "QueryStreamedBackUpNewStream" in
  List.iter
    (fun d ->
      let r = hunt entry ~strategy:(E.Pct { change_points = d }) ~budget in
      Printf.printf "  d=%-2d %s (executions to bug: %d)\n" d (pp_run r)
        r.executions)
    [ 1; 2; 4; 8 ];
  print_endline "== Ablation 3: liveness bound on ExtentNodeLivenessViolation ==";
  let entry = Bug_catalog.find "ExtentNodeLivenessViolation" in
  List.iter
    (fun max_steps ->
      let entry = { entry with Bug_catalog.max_steps } in
      let r = hunt entry ~strategy:E.Random ~budget:(min budget 3_000) in
      Printf.printf "  max_steps=%-5d %s\n" max_steps (pp_run r))
    [ 1_000; 2_000; 3_000 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Sample protocols (Paxos / Raft)                                     *)
(* ------------------------------------------------------------------ *)

let samples ~budget () =
  Printf.printf
    "== Sample protocols (P# repo samples the paper references, sec 2.3) ==\n";
  Printf.printf "%-3s %-40s | %-22s | %-22s\n" "CS" "Bug Identifier"
    "Random (BF?/time/#NDC)" "PCT d=2 (BF?/time/#NDC)";
  print_endline (String.make 98 '-');
  List.iter
    (fun entry ->
      let random = hunt entry ~strategy:E.Random ~budget in
      let pct = hunt entry ~strategy:(E.Pct { change_points = 2 }) ~budget in
      Printf.printf "%-3s %-40s | %s | %s\n"
        (Bug_catalog.case_study_to_string entry.Bug_catalog.case_study)
        entry.Bug_catalog.name (pp_run random) (pp_run pct))
    (List.filter
       (fun e -> e.Bug_catalog.case_study = Bug_catalog.Cs_sample)
       Bug_catalog.all);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Parallel scaling (Worker_pool across OCaml 5 domains)               *)
(* ------------------------------------------------------------------ *)

(* Throughput of the random-strategy vNext harness at increasing worker
   counts. The fixed (bug-free) variant is used so every execution runs to
   completion and the measurement is pure engine throughput, not
   time-to-bug luck. Results land in BENCH_parallel.json, alongside the
   pre-sharding baseline (per-execution shared-mutex coverage merging and
   domains spawned past the core count) for the before/after comparison.
   With [gate] set, a 2-worker speedup below the graceful-oversubscription
   floor fails the process — the CI regression gate. *)

let speedup_floor = 0.8

let scaling_baseline =
  (* measured on this 1-core container before per-worker coverage sharding,
     batched claiming and the domain-count clamp (see EXPERIMENTS.md) *)
  [ (1, 1.000); (2, 0.230); (4, 0.126); (8, 0.088) ]

let parallel_scaling ~budget ?(gate = false) () =
  Printf.printf
    "== Parallel scaling: random-strategy vNext harness, %d executions ==\n"
    budget;
  Printf.printf "(available cores: %d)\n" (Domain.recommended_domain_count ());
  let harness =
    Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
      ~scenario:Vnext.Testing_driver.Fail_and_repair ()
  in
  let monitors () = Vnext.Testing_driver.monitors () in
  let measure workers =
    let cfg =
      {
        E.default_config with
        seed = base_seed;
        max_executions = budget;
        max_steps = 3_000;
        workers;
      }
    in
    match E.run ~monitors cfg harness with
    | E.No_bug stats -> stats
    | E.Bug_found (report, stats) ->
      Printf.printf "UNEXPECTED bug during scaling run: %s\n"
        (Error.kind_to_string report.Error.kind);
      stats
  in
  let rows =
    List.map
      (fun workers ->
        let stats = measure workers in
        let throughput =
          if stats.E.elapsed > 0. then
            float_of_int stats.E.executions /. stats.E.elapsed
          else 0.
        in
        (workers, stats, throughput))
      [ 1; 2; 4; 8 ]
  in
  let base =
    match rows with
    | (_, _, t) :: _ -> t
    | [] -> 0.
  in
  Printf.printf "%8s %12s %10s %14s %9s\n" "workers" "executions" "elapsed"
    "execs/sec" "speedup";
  List.iter
    (fun (w, stats, t) ->
      Printf.printf "%8d %12d %9.2fs %14.1f %8.2fx\n" w stats.E.executions
        stats.E.elapsed t
        (if base > 0. then t /. base else 0.))
    rows;
  let oc = open_out "BENCH_parallel.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"harness\": \"vnext-fixed-random\",\n";
  Printf.fprintf oc "  \"budget\": %d,\n" budget;
  Printf.fprintf oc "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  output_string oc "  \"points\": [\n";
  List.iteri
    (fun i (w, stats, t) ->
      Printf.fprintf oc
        "    {\"workers\": %d, \"executions\": %d, \"total_steps\": %d, \
         \"elapsed_s\": %.4f, \"execs_per_sec\": %.1f, \"speedup\": %.3f}%s\n"
        w stats.E.executions stats.E.total_steps stats.E.elapsed t
        (if base > 0. then t /. base else 0.)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ],\n";
  output_string oc
    "  \"baseline_pre_sharding\": {\"note\": \"per-execution shared-mutex \
     coverage merge, no domain clamp, 1 core\", \"points\": [\n";
  List.iteri
    (fun i (w, s) ->
      Printf.fprintf oc "    {\"workers\": %d, \"speedup\": %.3f}%s\n" w s
        (if i = List.length scaling_baseline - 1 then "" else ","))
    scaling_baseline;
  output_string oc "  ]}\n}\n";
  close_out oc;
  print_endline "wrote BENCH_parallel.json";
  let speedup_at w =
    List.find_map
      (fun (w', _, t) ->
        if w' = w && base > 0. then Some (t /. base) else None)
      rows
  in
  (match speedup_at 2 with
   | Some s when gate && s < speedup_floor ->
     Printf.printf
       "FAIL: 2-worker speedup %.3f below the %.2f \
        graceful-oversubscription floor\n"
       s speedup_floor;
     exit 1
   | Some s when gate ->
     Printf.printf "gate: 2-worker speedup %.3f >= %.2f floor\n" s
       speedup_floor
   | _ -> ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Persistent campaigns (warm-start bug finding)                       *)
(* ------------------------------------------------------------------ *)

(* ISSUE 8 acceptance benchmark: does resuming a campaign find the bug in
   fewer executions than a cold start? For each bug, a cold uninterrupted
   fuzz hunt is compared against a two-invocation campaign — a short warm
   invocation whose coverage and corpus are carried into a resumed one
   (exactly the state `psharp_test hunt --campaign` persists). The
   resumed invocation starts with the corpus and the coverage history, so
   its executions-to-first-bug should drop. Results land in
   BENCH_campaign.json. *)

module Fuzz_exchange = Psharp.Fuzz_strategy.Exchange

(* (bug, warm-invocation budget): warm budgets sit below each bug's cold
   executions-to-first-bug so the warm invocation ends bug-free and the
   resumed one does the finding. *)
let campaign_cases =
  [
    ("QueryAtomicFilterShadowing", 8);
    ("DeleteNoLeaveTombstonesEtag", 16);
    ("ChaintableRetryFreshSeq", 7);
  ]

let campaign_bench ~budget () =
  Printf.printf
    "== Persistent campaigns: cold vs resumed fuzz hunt, budget %d (seed \
     %Ld) ==\n"
    budget base_seed;
  let hunt_execs entry cfg =
    match
      E.run ~monitors:entry.Bug_catalog.monitors cfg
        entry.Bug_catalog.harness
    with
    | E.Bug_found (_, stats) -> (Some stats.E.executions, stats)
    | E.No_bug stats -> (None, stats)
  in
  let rows =
    List.map
      (fun (name, warm_budget) ->
        let entry = Bug_catalog.find name in
        let base_cfg =
          {
            E.default_config with
            strategy = E.Fuzz { corpus_cap = 32 };
            seed = base_seed;
            max_steps = entry.Bug_catalog.max_steps;
            faults = entry.Bug_catalog.faults;
            clock = entry.Bug_catalog.clock;
          }
        in
        let cold, _ =
          hunt_execs entry { base_cfg with max_executions = budget }
        in
        (* warm invocation: the campaign's first run, collecting corpus
           (through the exchange hub) and coverage *)
        let hub = Fuzz_exchange.create () in
        let _, warm_stats =
          hunt_execs entry
            {
              base_cfg with
              max_executions = warm_budget;
              collect_coverage = true;
              fuzz_exchange = Some hub;
            }
        in
        let corpus = Fuzz_exchange.snapshot hub in
        (* resumed invocation: fresh iterations, prior coverage and corpus
           — the state `hunt --campaign` reloads *)
        let resumed, _ =
          hunt_execs entry
            {
              base_cfg with
              max_executions = budget;
              start_iteration = warm_stats.E.executions;
              prior_coverage = warm_stats.E.coverage;
              collect_coverage = true;
              fuzz_exchange = Some (Fuzz_exchange.of_entries corpus);
            }
        in
        (name, warm_budget, List.length corpus, cold, resumed))
      campaign_cases
  in
  let pp_execs = function Some n -> string_of_int n | None -> "not-found" in
  Printf.printf "%-36s %9s %7s %12s %14s\n" "bug" "warm" "corpus"
    "cold execs" "resumed execs";
  print_endline (String.make 84 '-');
  List.iter
    (fun (name, warm, corpus, cold, resumed) ->
      Printf.printf "%-36s %9d %7d %12s %14s\n" name warm corpus
        (pp_execs cold) (pp_execs resumed))
    rows;
  let improved =
    List.length
      (List.filter
         (fun (_, _, _, cold, resumed) ->
           match (cold, resumed) with
           | Some c, Some r -> r < c
           | _ -> false)
         rows)
  in
  Printf.printf
    "resumed invocation beat the cold start on %d/%d bugs\n" improved
    (List.length rows);
  let oc = open_out "BENCH_campaign.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"seed\": %Ld,\n" base_seed;
  Printf.fprintf oc "  \"budget\": %d,\n" budget;
  Printf.fprintf oc "  \"improved\": %d,\n" improved;
  output_string oc "  \"bugs\": [\n";
  let json_execs = function Some n -> string_of_int n | None -> "null" in
  List.iteri
    (fun i (name, warm, corpus, cold, resumed) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"warm_budget\": %d, \"corpus\": %d, \
         \"cold_execs_to_bug\": %s, \"resumed_execs_to_bug\": %s}%s\n"
        name warm corpus (json_execs cold) (json_execs resumed)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline "wrote BENCH_campaign.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Coverage growth (coverage maps + feedback-directed fuzzing)         *)
(* ------------------------------------------------------------------ *)

module Coverage = Psharp.Coverage

(* Coverage-over-executions for random vs PCT vs feedback-directed fuzz,
   at increasing execution budgets. [E.explore] is used instead of [E.run]
   so no strategy gets charged fewer executions for tripping a bug early,
   making the numbers comparable at a fixed budget. Results land in
   BENCH_coverage.json. *)

let coverage_strategies =
  [
    ("random", "random", E.Random);
    ("pct (d=2)", "pct2", E.Pct { change_points = 2 });
    ("fuzz", "fuzz", E.Fuzz { corpus_cap = 32 });
  ]

let coverage_totals_at entry ~strategy ~budget =
  let cfg =
    {
      E.default_config with
      strategy;
      seed = base_seed;
      max_executions = budget;
      max_steps = entry.Bug_catalog.max_steps;
    }
  in
  let stats = E.explore ~monitors:entry.Bug_catalog.monitors cfg
      entry.Bug_catalog.harness
  in
  match stats.E.coverage with
  | Some cov -> Coverage.totals cov
  | None -> assert false (* explore always collects coverage *)

let coverage_harness oc ~last entry ~budgets =
  Printf.printf "-- %s (max_steps %d) --\n" entry.Bug_catalog.name
    entry.Bug_catalog.max_steps;
  Printf.printf "%8s |" "budget";
  List.iter
    (fun (label, _, _) -> Printf.printf " %-26s |" (label ^ " st/ev/tr/br"))
    coverage_strategies;
  print_newline ();
  print_endline (String.make (10 + (29 * List.length coverage_strategies)) '-');
  let per_strategy =
    List.map
      (fun (label, json_name, strategy) ->
        ( label,
          json_name,
          List.map
            (fun budget -> (budget, coverage_totals_at entry ~strategy ~budget))
            budgets ))
      coverage_strategies
  in
  List.iteri
    (fun i budget ->
      Printf.printf "%8d |" budget;
      List.iter
        (fun (_, _, points) ->
          let t = snd (List.nth points i) in
          Printf.printf " %-26s |"
            (Printf.sprintf "%d/%d/%d/%d" t.Coverage.machine_states
               t.Coverage.event_types t.Coverage.transition_triples
               t.Coverage.branch_outcomes))
        per_strategy;
      print_newline ())
    budgets;
  (* The headline claim: feedback-directed fuzzing reaches more transition
     triples than undirected random search at the same budget. *)
  let final label =
    let _, _, points = List.find (fun (l, _, _) -> l = label) per_strategy in
    (snd (List.nth points (List.length budgets - 1)))
      .Coverage.transition_triples
  in
  let fuzz = final "fuzz" and random = final "random" in
  Printf.printf
    "final transition triples: fuzz %d vs random %d -> fuzz %s random\n" fuzz
    random
    (if fuzz > random then ">" else if fuzz = random then "=" else "<");
  Printf.fprintf oc "    {\n      \"name\": %S,\n      \"max_steps\": %d,\n"
    entry.Bug_catalog.name entry.Bug_catalog.max_steps;
  Printf.fprintf oc "      \"strategies\": [\n";
  List.iteri
    (fun i (_, json_name, points) ->
      Printf.fprintf oc "        {\"strategy\": %S, \"points\": [\n" json_name;
      List.iteri
        (fun j (budget, t) ->
          Printf.fprintf oc
            "          {\"budget\": %d, \"machine_states\": %d, \
             \"event_types\": %d, \"transition_triples\": %d, \
             \"branch_outcomes\": %d, \"unique_schedules\": %d, \
             \"executions\": %d}%s\n"
            budget t.Coverage.machine_states t.Coverage.event_types
            t.Coverage.transition_triples t.Coverage.branch_outcomes
            t.Coverage.unique_schedules t.Coverage.executions
            (if j = List.length points - 1 then "" else ","))
        points;
      Printf.fprintf oc "        ]}%s\n"
        (if i = List.length per_strategy - 1 then "" else ","))
    per_strategy;
  Printf.fprintf oc "      ]\n    }%s\n" (if last then "" else ",");
  print_newline ()

(* Replaying a recorded buggy schedule must reproduce the identical
   coverage fingerprint — the fingerprint is a pure function of the choice
   trace, and replay is deterministic. *)
let coverage_fingerprint_replay oc entry =
  let cfg =
    {
      E.default_config with
      seed = base_seed;
      max_executions = 20_000;
      max_steps = entry.Bug_catalog.max_steps;
      collect_coverage = true;
    }
  in
  match
    E.run ~monitors:entry.Bug_catalog.monitors cfg entry.Bug_catalog.harness
  with
  | E.No_bug _ ->
    Printf.printf "fingerprint replay: no bug found on %s (unexpected)\n"
      entry.Bug_catalog.name;
    Printf.fprintf oc "  \"fingerprint_replay\": {\"found\": false}\n"
  | E.Bug_found (report, _) ->
    let recorded = Coverage.fingerprint report.Error.trace in
    let result =
      E.replay ~monitors:entry.Bug_catalog.monitors cfg report.Error.trace
        entry.Bug_catalog.harness
    in
    let replayed = Coverage.fingerprint result.Psharp.Runtime.choices in
    Printf.printf
      "fingerprint replay on %s: recorded 0x%Lx, replayed 0x%Lx -> %s\n"
      entry.Bug_catalog.name recorded replayed
      (if Int64.equal recorded replayed then "identical" else "DIFFERENT");
    Printf.fprintf oc
      "  \"fingerprint_replay\": {\"found\": true, \"bug\": %S, \"recorded\": \
       \"0x%Lx\", \"replayed\": \"0x%Lx\", \"identical\": %b}\n"
      entry.Bug_catalog.name recorded replayed
      (Int64.equal recorded replayed)

(* Fuzz v2 on the fault-only catalog bugs: executions-to-first-bug under
   plain v1 fuzz vs the energy-scheduled fault-mutating v2, at the same
   seed and budget. These bugs fire only under injected faults (each
   entry's own spec), so the fault-tune operator has a real surface:
   perturbing recorded crash instants and drop/dup draws around a
   coverage-novel schedule. *)
let fuzz_v2_fault_bugs =
  [
    "ExtentNodeCrashLosesBinding";
    "ChaintableDuplicateBackendRequest";
    "FabricCrashSilentRestart";
  ]

let fuzz_v2_fault_block oc ~hunt_budget =
  Printf.printf
    "-- fuzz v2 vs plain fuzz on the fault-only bugs, budget %d --\n"
    hunt_budget;
  let execs entry ~v2 =
    let cfg =
      {
        E.default_config with
        strategy = E.Fuzz { corpus_cap = 32 };
        seed = base_seed;
        max_executions = hunt_budget;
        max_steps = entry.Bug_catalog.max_steps;
        faults = entry.Bug_catalog.faults;
        clock = entry.Bug_catalog.clock;
        reduce = (if v2 then E.Hb_track else E.No_reduction);
        fuzz_energy = v2;
        fuzz_mutate_faults = v2;
      }
    in
    match
      E.run ~monitors:entry.Bug_catalog.monitors cfg
        entry.Bug_catalog.harness
    with
    | E.Bug_found (_, stats) -> Some stats.E.executions
    | E.No_bug _ -> None
  in
  let rows =
    List.map
      (fun name ->
        let entry = Bug_catalog.find name in
        (name, execs entry ~v2:false, execs entry ~v2:true))
      fuzz_v2_fault_bugs
  in
  let pp_execs = function Some n -> string_of_int n | None -> "not-found" in
  Printf.printf "%-36s %12s %12s\n" "bug" "execs fuzz" "execs fzv2";
  print_endline (String.make 62 '-');
  List.iter
    (fun (name, fz, fz2) ->
      Printf.printf "%-36s %12s %12s\n" name (pp_execs fz) (pp_execs fz2))
    rows;
  let improved =
    List.length
      (List.filter
         (fun (_, fz, fz2) ->
           match (fz, fz2) with
           | Some a, Some b -> b <= a
           | None, Some _ -> true
           | _ -> false)
         rows)
  in
  Printf.printf "fuzz v2 <= plain fuzz on %d/%d fault-only bugs\n" improved
    (List.length rows);
  let json_execs = function Some n -> string_of_int n | None -> "null" in
  Printf.fprintf oc
    "  \"fuzz_v2_fault_bugs\": {\"hunt_budget\": %d, \"bugs\": [\n" hunt_budget;
  List.iteri
    (fun i (name, fz, fz2) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"execs_to_first_bug_fuzz\": %s, \
         \"execs_to_first_bug_fuzz_v2\": %s}%s\n"
        name (json_execs fz) (json_execs fz2)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]},\n"


(* PR 9 noted one fuzz-v2 regression: on the fault-free vnext liveness
   bug the energy schedule mutates long random tails (the liveness
   witness is a whole bound-length execution, so truncated mutants
   rarely stay hot) and v2 reached the bug later than v1 — the corpus
   held nothing worth mutating. The fix is a scenario-warmed pipeline:
   a cheap scenario-constrained random hunt (starve-network: pause the
   relay mid-run so in-flight sync reports go stale — the resurrection
   shape of this bug, and schedule-only, so the witness's draw
   vocabulary matches Fault.none) finds a witness much earlier than
   plain random, and a prefix of that witness seeds the fuzz-v2 corpus
   with a structured, bug-adjacent opening. The seeded column charges
   the seeding hunt's executions too, so the comparison stays honest. *)
let scenario_seed_prefix entry ~scenario_name ~budget ~prefix_choices =
  let scat = Scenario_catalog.find scenario_name in
  let scen = scat.Scenario_catalog.scenario in
  let cfg =
    {
      E.default_config with
      strategy = E.Random;
      seed = base_seed;
      max_executions = budget;
      max_steps = entry.Bug_catalog.max_steps;
      faults = Psharp.Scenario.arm scen entry.Bug_catalog.faults;
      clock = entry.Bug_catalog.clock;
      scenario = Some scen;
    }
  in
  match
    E.run ~monitors:entry.Bug_catalog.monitors cfg entry.Bug_catalog.harness
  with
  | E.Bug_found (report, stats) ->
    let prefix =
      Psharp.Trace.of_list
        (List.filteri
           (fun j _ -> j < prefix_choices)
           (Psharp.Trace.to_list report.Psharp.Error.trace))
    in
    (stats.E.executions, Some prefix)
  | E.No_bug stats -> (stats.E.executions, None)

let fuzz_v2_liveness_block oc ~hunt_budget =
  let entry = Bug_catalog.find "ExtentNodeLivenessViolation" in
  let seed_scenario = "starve-network" in
  let seed_prefix = 2_000 in
  Printf.printf
    "-- fuzz v2 on the fault-free vnext liveness bug, budget %d --\n"
    hunt_budget;
  let execs ~v2 ~fuzz_initial =
    let cfg =
      {
        E.default_config with
        strategy = E.Fuzz { corpus_cap = 32 };
        seed = base_seed;
        max_executions = hunt_budget;
        max_steps = entry.Bug_catalog.max_steps;
        faults = entry.Bug_catalog.faults;
        clock = entry.Bug_catalog.clock;
        reduce = (if v2 then E.Hb_track else E.No_reduction);
        fuzz_energy = v2;
        fuzz_mutate_faults = v2;
        fuzz_initial;
      }
    in
    match
      E.run ~monitors:entry.Bug_catalog.monitors cfg
        entry.Bug_catalog.harness
    with
    | E.Bug_found (_, stats) -> Some stats.E.executions
    | E.No_bug _ -> None
  in
  let v1 = execs ~v2:false ~fuzz_initial:[] in
  let v2_cold = execs ~v2:true ~fuzz_initial:[] in
  let seed_execs, prefix =
    scenario_seed_prefix entry ~scenario_name:seed_scenario
      ~budget:hunt_budget ~prefix_choices:seed_prefix
  in
  let v2_seeded =
    match prefix with
    | None -> None
    | Some p ->
      execs ~v2:true ~fuzz_initial:[ Psharp.Fuzz_strategy.entry_of_trace p ]
  in
  let total_seeded =
    match v2_seeded with Some n -> Some (seed_execs + n) | None -> None
  in
  let pp = function Some n -> string_of_int n | None -> "not-found" in
  Printf.printf "%-30s %10s %10s %10s %10s\n" "bug" "fuzz" "fzv2-cold"
    "seed-hunt" "fzv2-total";
  print_endline (String.make 76 '-');
  Printf.printf "%-30s %10s %10s %10s %10s\n" entry.Bug_catalog.name (pp v1)
    (pp v2_cold) (string_of_int seed_execs) (pp total_seeded);
  let json = function Some n -> string_of_int n | None -> "null" in
  Printf.fprintf oc
    "  \"fuzz_v2_vnext_liveness\": {\"hunt_budget\": %d, \"bug\": %S,      \"seed_scenario\": %S, \"seed_prefix_choices\": %d,      \"execs_to_first_bug_fuzz\": %s, \"execs_to_first_bug_fuzz_v2\": %s,      \"seed_hunt_execs\": %d, \"execs_to_first_bug_fuzz_v2_seeded\": %s,      \"execs_to_first_bug_fuzz_v2_seeded_total\": %s},\n"
    hunt_budget entry.Bug_catalog.name seed_scenario seed_prefix (json v1)
    (json v2_cold) seed_execs (json v2_seeded) (json total_seeded)

let coverage_growth ~budgets ~fuzz_budget () =
  Printf.printf
    "== Coverage growth: random vs PCT vs fuzz, budgets %s (seed %Ld) ==\n"
    (String.concat "/" (List.map string_of_int budgets))
    base_seed;
  print_endline
    "(st/ev/tr/br = machine states / event types / transition triples / \
     branch outcomes)";
  let entries =
    [
      Bug_catalog.find "ExtentNodeLivenessViolation";
      Bug_catalog.find "QueryStreamedLock";
    ]
  in
  let oc = open_out "BENCH_coverage.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"seed\": %Ld,\n" base_seed;
  Printf.fprintf oc "  \"budgets\": [%s],\n"
    (String.concat ", " (List.map string_of_int budgets));
  output_string oc "  \"harnesses\": [\n";
  List.iteri
    (fun i entry ->
      coverage_harness oc ~last:(i = List.length entries - 1) entry ~budgets)
    entries;
  output_string oc "  ],\n";
  fuzz_v2_fault_block oc ~hunt_budget:fuzz_budget;
  fuzz_v2_liveness_block oc ~hunt_budget:fuzz_budget;
  coverage_fingerprint_replay oc (Bug_catalog.find "ExtentNodeLivenessViolation");
  output_string oc "}\n";
  close_out oc;
  print_endline "wrote BENCH_coverage.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Executions/sec throughput                                           *)
(* ------------------------------------------------------------------ *)

(* Raw engine throughput on the three case-study harnesses under three
   observability configurations: plain (logging and coverage off — the
   bug-hunting hot path), coverage collection on, and per-execution
   logging on. Drives [Runtime.execute] directly with the seeded random
   strategy, mirroring the engine's per-execution coverage bookkeeping
   (fresh per-execution map absorbed into an accumulator), so the numbers
   isolate engine + harness cost. Results land in BENCH_throughput.json. *)

module Runtime = Psharp.Runtime

type throughput_case = {
  tname : string;
  t_harness : Runtime.ctx -> unit;
  t_monitors : unit -> Psharp.Monitor.t list;
  t_max_steps : int;
}

let throughput_cases () =
  [
    {
      tname = "vnext";
      t_harness =
        Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
          ~scenario:Vnext.Testing_driver.Fail_and_repair ();
      t_monitors = (fun () -> Vnext.Testing_driver.monitors ());
      t_max_steps = 3_000;
    };
    {
      tname = "chaintable";
      t_harness = Chaintable.Harness.test ();
      t_monitors = (fun () -> []);
      t_max_steps = 4_000;
    };
    {
      tname = "fabric";
      t_harness = Fabric.Harness.test ();
      t_monitors = (fun () -> Fabric.Harness.monitors ());
      t_max_steps = 3_000;
    };
  ]

type throughput_point = {
  p_config : string;
  p_executions : int;
  p_steps : int;
  p_elapsed : float;
}

let measure_throughput ?(faults = Psharp.Fault.none) ~budget ~collect_log
    ~coverage case =
  let factory = Psharp.Random_strategy.factory ~seed:base_seed in
  let acc = if coverage then Some (Coverage.create ()) else None in
  let total_steps = ref 0 in
  let started = Unix.gettimeofday () in
  for i = 0 to budget - 1 do
    match factory.Psharp.Strategy.fresh ~iteration:i with
    | None -> ()
    | Some strategy ->
      let exec_cov = Option.map (fun _ -> Coverage.create ()) acc in
      let cfg =
        {
          Runtime.max_steps = case.t_max_steps;
          liveness_grace = None;
          deadlock_is_bug = true;
          collect_log;
          coverage = exec_cov;
          hb = None;
          faults;
          deadline = None;
          clock = None;
          scenario = None;
        }
      in
      let result =
        Runtime.execute cfg strategy ~monitors:(case.t_monitors ())
          ~name:"Harness" case.t_harness
      in
      total_steps := !total_steps + result.Runtime.steps;
      (match (acc, exec_cov) with
       | Some acc, Some exec ->
         Coverage.note_execution exec
           ~fingerprint:(Coverage.fingerprint result.Runtime.choices);
         ignore (Coverage.absorb ~into:acc exec)
       | _ -> ())
  done;
  {
    p_config =
      (match (collect_log, coverage) with
       | false, false -> "plain"
       | false, true -> "coverage"
       | true, false -> "logging"
       | true, true -> "logging+coverage");
    p_executions = budget;
    p_steps = !total_steps;
    p_elapsed = Unix.gettimeofday () -. started;
  }

let exec_throughput ~budget () =
  Printf.printf
    "== Executions/sec: random strategy, %d executions per config (seed %Ld) \
     ==\n"
    budget base_seed;
  let configs =
    [ (false, false); (false, true); (true, false) ]
  in
  let rows =
    List.map
      (fun case ->
        let points =
          List.map
            (fun (collect_log, coverage) ->
              measure_throughput ~budget ~collect_log ~coverage case)
            configs
        in
        (case, points))
      (throughput_cases ())
  in
  Printf.printf "%-11s %-16s %12s %12s %14s %14s\n" "harness" "config"
    "executions" "steps" "execs/sec" "steps/sec";
  print_endline (String.make 84 '-');
  List.iter
    (fun (case, points) ->
      List.iter
        (fun p ->
          let eps =
            if p.p_elapsed > 0. then float_of_int p.p_executions /. p.p_elapsed
            else 0.
          and sps =
            if p.p_elapsed > 0. then float_of_int p.p_steps /. p.p_elapsed
            else 0.
          in
          Printf.printf "%-11s %-16s %12d %12d %14.1f %14.0f\n" case.tname
            p.p_config p.p_executions p.p_steps eps sps)
        points)
    rows;
  let oc = open_out "BENCH_throughput.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"seed\": %Ld,\n" base_seed;
  Printf.fprintf oc "  \"budget\": %d,\n" budget;
  Printf.fprintf oc "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  output_string oc "  \"harnesses\": [\n";
  List.iteri
    (fun i (case, points) ->
      Printf.fprintf oc "    {\"name\": %S, \"max_steps\": %d, \"configs\": [\n"
        case.tname case.t_max_steps;
      List.iteri
        (fun j p ->
          let eps =
            if p.p_elapsed > 0. then float_of_int p.p_executions /. p.p_elapsed
            else 0.
          and sps =
            if p.p_elapsed > 0. then float_of_int p.p_steps /. p.p_elapsed
            else 0.
          in
          Printf.fprintf oc
            "      {\"config\": %S, \"executions\": %d, \"total_steps\": %d, \
             \"elapsed_s\": %.4f, \"execs_per_sec\": %.1f, \
             \"steps_per_sec\": %.0f}%s\n"
            p.p_config p.p_executions p.p_steps p.p_elapsed eps sps
            (if j = List.length points - 1 then "" else ","))
        points;
      Printf.fprintf oc "    ]}%s\n"
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline "wrote BENCH_throughput.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fault-injection overhead                                            *)
(* ------------------------------------------------------------------ *)

(* The substrate's contract is that a disabled spec costs nothing: every
   [send_faulty] degenerates to a plain [send] with zero strategy draws
   (the golden-digest tests pin the schedules bit-for-bit), so throughput
   with [Fault.none] must match the pre-substrate baseline. This section
   quantifies that, plus the price actually paid when faults are armed. *)
let fault_overhead ~budget () =
  Printf.printf
    "== Fault-injection overhead: random strategy, %d executions per spec \
     (seed %Ld) ==\n"
    budget base_seed;
  let specs =
    [
      ("disabled", Psharp.Fault.none);
      ( "msg-faults(b=2)",
        Psharp.Fault.make ~budget:2
          [ Psharp.Fault.Drop; Psharp.Fault.Duplicate; Psharp.Fault.Delay ] );
      ( "all-faults(b=2)",
        Psharp.Fault.make ~budget:2
          [
            Psharp.Fault.Drop; Psharp.Fault.Duplicate; Psharp.Fault.Delay;
            Psharp.Fault.Crash;
          ] );
    ]
  in
  let rows =
    List.map
      (fun case ->
        let points =
          List.map
            (fun (label, faults) ->
              let p =
                measure_throughput ~faults ~budget ~collect_log:false
                  ~coverage:false case
              in
              (label, p))
            specs
        in
        (case, points))
      (throughput_cases ())
  in
  Printf.printf "%-11s %-16s %12s %14s %14s %12s\n" "harness" "faults"
    "executions" "execs/sec" "steps/sec" "vs disabled";
  print_endline (String.make 84 '-');
  List.iter
    (fun (case, points) ->
      let base_eps =
        match points with
        | (_, p) :: _ when p.p_elapsed > 0. ->
          float_of_int p.p_executions /. p.p_elapsed
        | _ -> 0.
      in
      List.iter
        (fun (label, p) ->
          let eps =
            if p.p_elapsed > 0. then float_of_int p.p_executions /. p.p_elapsed
            else 0.
          and sps =
            if p.p_elapsed > 0. then float_of_int p.p_steps /. p.p_elapsed
            else 0.
          in
          let rel =
            if base_eps > 0. then
              Printf.sprintf "%.1f%%" (100. *. eps /. base_eps)
            else "-"
          in
          Printf.printf "%-11s %-16s %12d %14.1f %14.0f %12s\n" case.tname
            label p.p_executions eps sps rel)
        points)
    rows;
  let oc = open_out "BENCH_fault.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"seed\": %Ld,\n" base_seed;
  Printf.fprintf oc "  \"budget\": %d,\n" budget;
  output_string oc "  \"harnesses\": [\n";
  List.iteri
    (fun i (case, points) ->
      Printf.fprintf oc "    {\"name\": %S, \"specs\": [\n" case.tname;
      List.iteri
        (fun j (label, p) ->
          let eps =
            if p.p_elapsed > 0. then float_of_int p.p_executions /. p.p_elapsed
            else 0.
          and sps =
            if p.p_elapsed > 0. then float_of_int p.p_steps /. p.p_elapsed
            else 0.
          in
          Printf.fprintf oc
            "      {\"faults\": %S, \"executions\": %d, \"total_steps\": %d, \
             \"elapsed_s\": %.4f, \"execs_per_sec\": %.1f, \
             \"steps_per_sec\": %.0f}%s\n"
            label p.p_executions p.p_steps p.p_elapsed eps sps
            (if j = List.length points - 1 then "" else ","))
        points;
      Printf.fprintf oc "    ]}%s\n"
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline "wrote BENCH_fault.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Virtual-time overhead                                               *)
(* ------------------------------------------------------------------ *)

(* The clock's contract mirrors the fault substrate's: with
   [config.clock = None] the whole virtual-time path is one option load
   away from the pre-clock runtime — no draw, no extra allocation — so
   the golden digests stay byte-identical and throughput must match the
   baseline. This section quantifies that, plus the price actually paid
   with the clock armed: on the three case-study harnesses (which never
   arm an entry, so clock-on measures pure plumbing) and on the
   chaintable RPC harness (whose timeouts and delay-latencies all ride
   the clock). Results land in BENCH_time.json. *)
let time_overhead ~budget () =
  Printf.printf
    "== Virtual-time overhead: random strategy, %d executions per mode \
     (seed %Ld) ==\n"
    budget base_seed;
  let measure ~faults ~clock case =
    let factory = Psharp.Random_strategy.factory ~seed:base_seed in
    let total_steps = ref 0 and total_vtime = ref 0 in
    let started = Unix.gettimeofday () in
    for i = 0 to budget - 1 do
      match factory.Psharp.Strategy.fresh ~iteration:i with
      | None -> ()
      | Some strategy ->
        let cfg =
          {
            Runtime.max_steps = case.t_max_steps;
            liveness_grace = None;
            deadlock_is_bug = true;
            collect_log = false;
            coverage = None;
            hb = None;
            faults;
            deadline = None;
            clock;
            scenario = None;
          }
        in
        let result =
          Runtime.execute cfg strategy ~monitors:(case.t_monitors ())
            ~name:"Harness" case.t_harness
        in
        total_steps := !total_steps + result.Runtime.steps;
        total_vtime := !total_vtime + result.Runtime.final_time
    done;
    (!total_steps, !total_vtime, Unix.gettimeofday () -. started)
  in
  let cases =
    List.map (fun c -> (c, Psharp.Fault.none)) (throughput_cases ())
    @ [
        ( {
            tname = "chaintable-rpc";
            t_harness =
              Chaintable.Harness.test
                ~workloads:Chaintable.Workload.retry_case ();
            t_monitors = (fun () -> []);
            t_max_steps = 4_000;
          },
          (* the catalog entry's spec: latency on the backend link drives
             the RPC timeout/retry machinery *)
          Psharp.Fault.make [ Psharp.Fault.Delay ] );
      ]
  in
  let rows =
    List.map
      (fun (case, faults) ->
        let modes =
          [
            ("off", measure ~faults ~clock:None case);
            ( "on",
              measure ~faults ~clock:(Some Psharp.Clock.default_config) case
            );
          ]
        in
        (case, faults, modes))
      cases
  in
  Printf.printf "%-15s %-6s %12s %14s %14s %12s %12s\n" "harness" "clock"
    "executions" "execs/sec" "steps/sec" "avg vtime" "vs off";
  print_endline (String.make 92 '-');
  List.iter
    (fun (case, _, modes) ->
      let base_eps =
        match modes with
        | (_, (_, _, elapsed)) :: _ when elapsed > 0. ->
          float_of_int budget /. elapsed
        | _ -> 0.
      in
      List.iter
        (fun (label, (steps, vtime, elapsed)) ->
          let eps = if elapsed > 0. then float_of_int budget /. elapsed else 0.
          and sps =
            if elapsed > 0. then float_of_int steps /. elapsed else 0.
          in
          let rel =
            if base_eps > 0. then
              Printf.sprintf "%.1f%%" (100. *. eps /. base_eps)
            else "-"
          in
          Printf.printf "%-15s %-6s %12d %14.1f %14.0f %12.1f %12s\n"
            case.tname label budget eps sps
            (float_of_int vtime /. float_of_int (max 1 budget))
            rel)
        modes)
    rows;
  let oc = open_out "BENCH_time.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"seed\": %Ld,\n" base_seed;
  Printf.fprintf oc "  \"budget\": %d,\n" budget;
  Printf.fprintf oc "  \"max_time\": %d,\n"
    Psharp.Clock.default_config.Psharp.Clock.max_time;
  output_string oc "  \"harnesses\": [\n";
  List.iteri
    (fun i (case, faults, modes) ->
      Printf.fprintf oc "    {\"name\": %S, \"faults\": %S, \"modes\": [\n"
        case.tname
        (Psharp.Fault.to_string faults);
      List.iteri
        (fun j (label, (steps, vtime, elapsed)) ->
          let eps = if elapsed > 0. then float_of_int budget /. elapsed else 0.
          and sps =
            if elapsed > 0. then float_of_int steps /. elapsed else 0.
          in
          Printf.fprintf oc
            "      {\"clock\": %S, \"executions\": %d, \"total_steps\": %d, \
             \"total_vtime\": %d, \"elapsed_s\": %.4f, \"execs_per_sec\": \
             %.1f, \"steps_per_sec\": %.0f}%s\n"
            label budget steps vtime elapsed eps sps
            (if j = List.length modes - 1 then "" else ","))
        modes;
      Printf.fprintf oc "    ]}%s\n"
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline "wrote BENCH_time.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Golden determinism digests                                          *)
(* ------------------------------------------------------------------ *)

(* Prints the values test/test_golden.ml pins: per-harness schedule-
   fingerprint digests of a fixed-seed [Engine.explore] (sequential and
   2-worker) plus the MD5 of the first execution's choice trace. Rerun
   this section to regenerate the literals after an *intentional*
   schedule-semantics change. *)
let golden_digests () =
  print_endline "== Golden determinism digests (seed 1, 25 executions) ==";
  List.iter
    (fun case ->
      let explore workers =
        let cfg =
          {
            E.default_config with
            seed = base_seed;
            max_executions = 25;
            max_steps = case.t_max_steps;
            workers;
          }
        in
        let stats = E.explore ~monitors:case.t_monitors cfg case.t_harness in
        match stats.E.coverage with
        | Some cov -> Coverage.schedule_digest cov
        | None -> "no-coverage"
      in
      let trace_md5 =
        let strategy =
          match
            (Psharp.Random_strategy.factory ~seed:base_seed).Psharp.Strategy
              .fresh ~iteration:0
          with
          | Some s -> s
          | None -> assert false
        in
        let cfg =
          {
            Runtime.max_steps = case.t_max_steps;
            liveness_grace = None;
            deadlock_is_bug = true;
            collect_log = false;
            coverage = None;
            hb = None;
            faults = Psharp.Fault.none;
            deadline = None;
            clock = None;
            scenario = None;
          }
        in
        let result =
          Runtime.execute cfg strategy ~monitors:(case.t_monitors ())
            ~name:"Harness" case.t_harness
        in
        Digest.to_hex
          (Digest.string (Psharp.Trace.to_string result.Runtime.choices))
      in
      Printf.printf
        "  %-11s sequential %s  workers2 %s  trace-md5 %s\n" case.tname
        (explore 1) (explore 2) trace_md5)
    (throughput_cases ());
  print_newline ();
  (* Fault-enabled hunts: the winning witness (lowest reporting iteration)
     must carry byte-identical choice traces at every worker count. *)
  print_endline "== Fault-hunt witness digests (seed 1, 50 executions) ==";
  List.iter
    (fun name ->
      let entry = Catalog.Bug_catalog.find name in
      let hunt workers =
        let cfg =
          {
            E.default_config with
            seed = base_seed;
            max_executions = 50;
            max_steps = entry.Catalog.Bug_catalog.max_steps;
            workers;
            faults = entry.Catalog.Bug_catalog.faults;
          }
        in
        match
          E.run ~monitors:entry.Catalog.Bug_catalog.monitors cfg
            entry.Catalog.Bug_catalog.harness
        with
        | E.Bug_found (report, _) ->
          Digest.to_hex
            (Digest.string (Psharp.Trace.to_string report.Error.trace))
        | E.No_bug _ -> "no-bug"
      in
      Printf.printf "  %-34s workers1 %s  workers2 %s\n" name (hunt 1) (hunt 2))
    [ "ExtentNodeCrashLosesBinding"; "ChaintableDuplicateBackendRequest" ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline
    "== Micro-benchmarks: one systematic-testing execution (bechamel OLS) ==";
  let open Bechamel in
  let run_once harness monitors max_steps =
    let counter = ref 0 in
    fun () ->
      incr counter;
      let cfg =
        {
          E.default_config with
          max_executions = 1;
          max_steps;
          seed = Int64.of_int !counter;
        }
      in
      ignore (E.run ~monitors cfg harness)
  in
  let tests =
    [
      Test.make ~name:"replication-fixed"
        (Staged.stage
           (run_once
              (Replication.Harness.test ~bugs:Replication.Bug_flags.none ())
              (fun () -> Replication.Harness.monitors ())
              500));
      Test.make ~name:"vnext-fixed"
        (Staged.stage
           (run_once
              (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
                 ~scenario:Vnext.Testing_driver.Fail_and_repair ())
              (fun () -> Vnext.Testing_driver.monitors ())
              1_000));
      Test.make ~name:"migratingtable-fixed"
        (Staged.stage
           (run_once (Chaintable.Harness.test ()) (fun () -> []) 4_000));
      Test.make ~name:"fabric-fixed"
        (Staged.stage
           (run_once (Fabric.Harness.test ())
              (fun () -> Fabric.Harness.monitors ())
              3_000));
      Test.make ~name:"cscale-fixed"
        (Staged.stage (run_once (Fabric.Chained.test ()) (fun () -> []) 2_000));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let result = Analyze.one ols instance raw in
          match Analyze.OLS.estimates result with
          | Some [ ns ] ->
            Printf.printf "  %-24s %10.0f ns/execution (%8.0f executions/s)\n"
              (Test.Elt.name elt) ns
              (1e9 /. ns)
          | Some _ | None ->
            Printf.printf "  %-24s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Linearizability-checker overhead                                    *)
(* ------------------------------------------------------------------ *)

(* ISSUE 7 acceptance benchmark, two questions:

   1. What does judging a harness by the generic checker cost end-to-end?
      The chaintable harness runs under both oracles — the paper-style
      per-operation divergence asserts ([`Legacy]) and history recording
      plus the WGL check at the end of the execution ([`Lin]) — at the
      same seed and budget, so the relative throughput is exactly the
      price of the generic oracle. The shardkv harness (lin-only) is
      reported as an absolute.

   2. How does the checker itself scale? Synthetic concurrent KV
      histories (every operation overlaps the next [window-1], so the
      search has real reordering freedom) are checked with the per-key
      partition on and off. Results land in BENCH_lin.json. *)

module History = Psharp.History
module Linearizability = Psharp.Linearizability

(* A valid concurrent history of [ops] operations from [clients] clients
   over [keys] keys: operations take effect in invocation order, but
   responses lag by up to [window], so consecutive operations overlap. *)
let synthetic_history ~keys ~clients ~window ~ops =
  let h = History.create () in
  let state = ref [] in
  let pending = Queue.create () in
  let respond () =
    let id, res = Queue.pop pending in
    History.respond h ~id ~at:0 ~repr:(Shardkv.Model.res_repr res) res
  in
  for i = 0 to ops - 1 do
    let key = Printf.sprintf "k%d" (i mod keys) in
    let op =
      match i mod 3 with
      | 0 -> Shardkv.Model.Put (key, i)
      | 1 -> Shardkv.Model.Add (key, 1)
      | _ -> Shardkv.Model.Get key
    in
    let id =
      History.invoke h
        ~client:(Printf.sprintf "C%d" (i mod clients))
        ~at:0 ~repr:(Shardkv.Model.op_repr op) op
    in
    let next, res = Shardkv.Model.apply !state op in
    state := next;
    Queue.push (id, res) pending;
    if Queue.length pending >= window then respond ()
  done;
  while not (Queue.is_empty pending) do
    respond ()
  done;
  h

let lin_overhead ~budget ~op_counts () =
  Printf.printf
    "== Linearizability overhead: random strategy, %d executions per oracle \
     (seed %Ld) ==\n"
    budget base_seed;
  let oracle_cases =
    [
      ( "chaintable",
        [
          ("legacy", Chaintable.Harness.test ~oracle:`Legacy ());
          ("lin", Chaintable.Harness.test ~oracle:`Lin ());
        ],
        4_000 );
      ("shardkv", [ ("lin", Shardkv.Harness.test ()) ], 5_000);
    ]
  in
  let measure harness max_steps =
    let factory = Psharp.Random_strategy.factory ~seed:base_seed in
    let total_steps = ref 0 in
    let started = Unix.gettimeofday () in
    for i = 0 to budget - 1 do
      match factory.Psharp.Strategy.fresh ~iteration:i with
      | None -> ()
      | Some strategy ->
        let cfg =
          {
            Runtime.max_steps;
            liveness_grace = None;
            deadlock_is_bug = true;
            collect_log = false;
            coverage = None;
            hb = None;
            faults = Psharp.Fault.none;
            deadline = None;
            clock = None;
            scenario = None;
          }
        in
        let result =
          Runtime.execute cfg strategy ~monitors:[] ~name:"Harness" harness
        in
        total_steps := !total_steps + result.Runtime.steps
    done;
    (!total_steps, Unix.gettimeofday () -. started)
  in
  let harness_rows =
    List.map
      (fun (name, oracles, max_steps) ->
        (name, List.map
           (fun (oracle, harness) -> (oracle, measure harness max_steps))
           oracles))
      oracle_cases
  in
  Printf.printf "%-11s %-8s %12s %14s %14s %12s\n" "harness" "oracle"
    "executions" "execs/sec" "steps/sec" "vs first";
  print_endline (String.make 78 '-');
  List.iter
    (fun (name, points) ->
      let base_eps =
        match points with
        | (_, (_, elapsed)) :: _ when elapsed > 0. ->
          float_of_int budget /. elapsed
        | _ -> 0.
      in
      List.iter
        (fun (oracle, (steps, elapsed)) ->
          let eps = if elapsed > 0. then float_of_int budget /. elapsed else 0.
          and sps =
            if elapsed > 0. then float_of_int steps /. elapsed else 0.
          in
          let rel =
            if base_eps > 0. then
              Printf.sprintf "%.1f%%" (100. *. eps /. base_eps)
            else "-"
          in
          Printf.printf "%-11s %-8s %12d %14.1f %14.0f %12s\n" name oracle
            budget eps sps rel)
        points)
    harness_rows;
  (* checker scaling: same history judged with the per-key partition on
     (shardkv's model declares [key_of]) and off *)
  let repeats = 20 in
  let keys = 4 and clients = 3 and window = 4 in
  let time_check model h =
    let started = Unix.gettimeofday () in
    for _ = 1 to repeats do
      match Linearizability.check model h with
      | Linearizability.Linearizable _ -> ()
      | Linearizability.Illegal msg ->
        failwith ("synthetic history rejected: " ^ msg)
    done;
    (Unix.gettimeofday () -. started) /. float_of_int repeats *. 1000.
  in
  let partitioned = Shardkv.Model.lin_model in
  let unpartitioned =
    { partitioned with Psharp.Linearizability.key_of = None }
  in
  Printf.printf
    "\n-- checker cost (%d keys, %d clients, overlap window %d, mean of %d \
     checks) --\n"
    keys clients window repeats;
  Printf.printf "%8s %16s %18s\n" "ops" "partitioned(ms)" "unpartitioned(ms)";
  let checker_rows =
    List.map
      (fun ops ->
        let h = synthetic_history ~keys ~clients ~window ~ops in
        let p = time_check partitioned h in
        let u = time_check unpartitioned h in
        Printf.printf "%8d %16.3f %18.3f\n" ops p u;
        (ops, p, u))
      op_counts
  in
  let oc = open_out "BENCH_lin.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"seed\": %Ld,\n" base_seed;
  Printf.fprintf oc "  \"budget\": %d,\n" budget;
  output_string oc "  \"harnesses\": [\n";
  List.iteri
    (fun i (name, points) ->
      Printf.fprintf oc "    {\"name\": %S, \"oracles\": [\n" name;
      List.iteri
        (fun j (oracle, (steps, elapsed)) ->
          let eps = if elapsed > 0. then float_of_int budget /. elapsed else 0.
          and sps =
            if elapsed > 0. then float_of_int steps /. elapsed else 0.
          in
          Printf.fprintf oc
            "      {\"oracle\": %S, \"executions\": %d, \"total_steps\": %d, \
             \"elapsed_s\": %.4f, \"execs_per_sec\": %.1f, \
             \"steps_per_sec\": %.0f}%s\n"
            oracle budget steps elapsed eps sps
            (if j = List.length points - 1 then "" else ","))
        points;
      Printf.fprintf oc "    ]}%s\n"
        (if i = List.length harness_rows - 1 then "" else ","))
    harness_rows;
  output_string oc "  ],\n";
  Printf.fprintf oc
    "  \"checker\": {\"keys\": %d, \"clients\": %d, \"window\": %d, \
     \"repeats\": %d, \"points\": [\n"
    keys clients window repeats;
  List.iteri
    (fun i (ops, p, u) ->
      Printf.fprintf oc
        "    {\"ops\": %d, \"partitioned_ms\": %.4f, \"unpartitioned_ms\": \
         %.4f}%s\n"
        ops p u
        (if i = List.length checker_rows - 1 then "" else ","))
    checker_rows;
  output_string oc "  ]}\n}\n";
  close_out oc;
  print_endline "wrote BENCH_lin.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Happens-before reduction                                            *)
(* ------------------------------------------------------------------ *)

(* ISSUE 5 acceptance benchmark, extended by ISSUE 9. For each paper case
   study: hunt the catalog bug with reduction off and with sleep sets
   (executions to first bug at a fixed seed), hunt it with plain v1 fuzz
   and with fuzz v2 (energy schedule + fault mutation, hb tracking on so
   partial-order novelty feeds the corpus), and explore the no-bug fixed
   variant with plain tracking vs sleep sets (distinct canonical partial
   orders per 1000 executions — how much of the budget lands on
   semantically new interleavings). Results land in BENCH_dpor.json; the
   pre-fuzz-v2 numbers are preserved as a baseline block. *)

let reduction_bugs =
  [
    ("vnext", "ExtentNodeLivenessViolation");
    ("chaintable", "QueryAtomicFilterShadowing");
    ("fabric", "FabricPromoteDuringCopy");
  ]

(* The ISSUE 5 numbers these extensions must not lose (seed 1, hunt
   budget 20000): off/sleep executions-to-first-bug per harness. *)
let reduction_baseline =
  [ ("vnext", 1009, 840); ("chaintable", 16, 20); ("fabric", 36, 14) ]

let reduction ~hunt_budget ~explore_budget () =
  Printf.printf
    "== Happens-before reduction: hunt %d / explore %d executions (seed \
     %Ld) ==\n"
    hunt_budget explore_budget base_seed;
  let hunt_execs entry ~reduce =
    let cfg =
      {
        E.default_config with
        seed = base_seed;
        max_executions = hunt_budget;
        max_steps = entry.Bug_catalog.max_steps;
        reduce;
      }
    in
    match
      E.run ~monitors:entry.Bug_catalog.monitors cfg
        entry.Bug_catalog.harness
    with
    | E.Bug_found (_, stats) -> Some stats.E.executions
    | E.No_bug _ -> None
  in
  let upo_per_1000 entry ~reduce =
    let cfg =
      {
        E.default_config with
        seed = base_seed;
        max_executions = explore_budget;
        max_steps = entry.Bug_catalog.max_steps;
        collect_coverage = true;
        reduce;
      }
    in
    let stats =
      E.explore ~monitors:entry.Bug_catalog.monitors cfg
        entry.Bug_catalog.fixed_harness
    in
    match stats.E.coverage with
    | Some cov when stats.E.executions > 0 ->
      let t = Coverage.totals cov in
      float_of_int t.Coverage.partial_orders
      /. float_of_int stats.E.executions *. 1000.
    | _ -> 0.
  in
  (* v1 fuzz vs fuzz v2: same seed and budget; v2 turns on the energy
     power-schedule and fault-tune mutation, with hb tracking so new
     partial orders feed the corpus (tracking is draw-free, so the two
     runs differ only in what the corpus does with novelty). *)
  let fuzz_execs entry ~v2 =
    let cfg =
      {
        E.default_config with
        strategy = E.Fuzz { corpus_cap = 32 };
        seed = base_seed;
        max_executions = hunt_budget;
        max_steps = entry.Bug_catalog.max_steps;
        faults = entry.Bug_catalog.faults;
        clock = entry.Bug_catalog.clock;
        reduce = (if v2 then E.Hb_track else E.No_reduction);
        fuzz_energy = v2;
        fuzz_mutate_faults = v2;
      }
    in
    match
      E.run ~monitors:entry.Bug_catalog.monitors cfg
        entry.Bug_catalog.harness
    with
    | E.Bug_found (_, stats) -> Some stats.E.executions
    | E.No_bug _ -> None
  in
  let rows =
    List.map
      (fun (harness, bug) ->
        let entry = Bug_catalog.find bug in
        let off = hunt_execs entry ~reduce:E.No_reduction in
        let on_ = hunt_execs entry ~reduce:E.Sleep_sets in
        let fz = fuzz_execs entry ~v2:false in
        let fz2 = fuzz_execs entry ~v2:true in
        let upo_track = upo_per_1000 entry ~reduce:E.Hb_track in
        let upo_sleep = upo_per_1000 entry ~reduce:E.Sleep_sets in
        (harness, bug, off, on_, fz, fz2, upo_track, upo_sleep))
      reduction_bugs
  in
  let pp_execs = function
    | Some n -> string_of_int n
    | None -> "not-found"
  in
  Printf.printf "%-11s %-36s %12s %12s %12s %12s %11s %11s\n" "harness" "bug"
    "execs (off)" "execs (on)" "execs fuzz" "execs fzv2" "upo/1k trk"
    "upo/1k slp";
  print_endline (String.make 124 '-');
  List.iter
    (fun (harness, bug, off, on_, fz, fz2, ut, us) ->
      Printf.printf "%-11s %-36s %12s %12s %12s %12s %11.1f %11.1f\n" harness
        bug (pp_execs off) (pp_execs on_) (pp_execs fz) (pp_execs fz2) ut us)
    rows;
  let improved =
    List.length
      (List.filter
         (fun (_, _, _, _, fz, fz2, _, _) ->
           match (fz, fz2) with
           | Some a, Some b -> b <= a
           | None, Some _ -> true
           | _ -> false)
         rows)
  in
  Printf.printf "fuzz v2 <= plain fuzz on %d/%d paper bugs\n" improved
    (List.length rows);
  let oc = open_out "BENCH_dpor.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"seed\": %Ld,\n" base_seed;
  Printf.fprintf oc "  \"hunt_budget\": %d,\n" hunt_budget;
  Printf.fprintf oc "  \"explore_budget\": %d,\n" explore_budget;
  output_string oc "  \"baseline_pre_fuzz_v2\": {\"seed\": 1, \"hunt_budget\": 20000, \"harnesses\": [\n";
  List.iteri
    (fun i (name, off, sleep) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"execs_to_first_bug_off\": %d, \
         \"execs_to_first_bug_sleep\": %d}%s\n"
        name off sleep
        (if i = List.length reduction_baseline - 1 then "" else ","))
    reduction_baseline;
  output_string oc "  ]},\n";
  output_string oc "  \"harnesses\": [\n";
  let json_execs = function
    | Some n -> string_of_int n
    | None -> "null"
  in
  List.iteri
    (fun i (harness, bug, off, on_, fz, fz2, ut, us) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"bug\": %S, \
         \"execs_to_first_bug_off\": %s, \"execs_to_first_bug_sleep\": \
         %s, \"execs_to_first_bug_fuzz\": %s, \
         \"execs_to_first_bug_fuzz_v2\": %s, \
         \"unique_partial_orders_per_1000_track\": %.1f, \
         \"unique_partial_orders_per_1000_sleep\": %.1f}%s\n"
        harness bug (json_execs off) (json_execs on_) (json_execs fz)
        (json_execs fz2) ut us
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline "wrote BENCH_dpor.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Scenario-constrained hunts                                          *)
(* ------------------------------------------------------------------ *)

(* Catalog scenarios paired with catalog bugs whose trigger shape they
   encode: the bench compares executions-to-first-bug with the scenario
   wrapper on against the plain fault hunt at the same seed and budget,
   and BENCH_scenario.json pins that constraining never costs executions
   on these pairs. *)
let scenario_cases =
  [
    ("crash-early", "FabricCrashSilentRestart");
    ("dup-backend", "ChaintableDuplicateBackendRequest");
    ("slow-backend", "ChaintableRetryFreshSeq");
    ("lossy-window", "PaxosForgetPromise");
    ("lossy-window", "RaftDoubleVote");
    ("isolate-joiner", "ShardkvStaleRingServe");
    ("crash-mid-handoff", "ShardkvMigrationDoubleApply");
  ]

let scenario_bench ~budget () =
  Printf.printf
    "== Scenario-constrained hunts: random strategy, budget %d, seed 0 ==\n"
    budget;
  let hunt_with entry ~scenario =
    let faults =
      match scenario with
      | None -> entry.Bug_catalog.faults
      | Some s -> Psharp.Scenario.arm s entry.Bug_catalog.faults
    in
    let cfg =
      {
        E.default_config with
        strategy = E.Random;
        seed = 0L;
        max_executions = budget;
        max_steps = entry.Bug_catalog.max_steps;
        faults;
        clock = entry.Bug_catalog.clock;
        scenario;
      }
    in
    let started = Unix.gettimeofday () in
    match
      E.run ~monitors:entry.Bug_catalog.monitors cfg entry.Bug_catalog.harness
    with
    | E.Bug_found (_, stats) ->
      (Some stats.E.executions, Unix.gettimeofday () -. started)
    | E.No_bug _ -> (None, Unix.gettimeofday () -. started)
  in
  let rows =
    List.map
      (fun (sname, bug) ->
        let entry = Bug_catalog.find bug in
        let scen = (Scenario_catalog.find sname).Scenario_catalog.scenario in
        let plain = hunt_with entry ~scenario:None in
        let constrained = hunt_with entry ~scenario:(Some scen) in
        (sname, bug, plain, constrained))
      scenario_cases
  in
  let pp = function Some n -> string_of_int n | None -> "not-found" in
  Printf.printf "%-18s %-34s %12s %12s\n" "scenario" "bug" "plain"
    "scenario";
  print_endline (String.make 80 '-');
  List.iter
    (fun (sname, bug, (p, _), (c, _)) ->
      Printf.printf "%-18s %-34s %12s %12s\n" sname bug (pp p) (pp c))
    rows;
  let no_worse =
    List.length
      (List.filter
         (fun (_, _, (p, _), (c, _)) ->
           match (p, c) with
           | Some a, Some b -> b <= a
           | None, _ -> true
           | Some _, None -> false)
         rows)
  in
  Printf.printf "scenario <= plain on %d/%d pairs\n\n" no_worse
    (List.length rows);
  let oc = open_out "BENCH_scenario.json" in
  let json = function Some n -> string_of_int n | None -> "null" in
  Printf.fprintf oc "{\n  \"seed\": 0,\n  \"budget\": %d,\n  \"pairs\": [\n"
    budget;
  List.iteri
    (fun i (sname, bug, (p, pt), (c, ct)) ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"bug\": %S, \"execs_to_first_bug_plain\": %s, \"elapsed_plain_s\": %.4f, \"execs_to_first_bug_scenario\": %s, \"elapsed_scenario_s\": %.4f}%s\n"
        sname bug (json p) pt (json c) ct
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"scenario_no_worse_pairs\": %d\n}\n" no_worse;
  close_out oc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let smoke = List.mem "--smoke" args in
  let sections =
    match List.filter (fun a -> a <> "--full" && a <> "--smoke") args with
    | [] ->
      [
        "table1"; "table2"; "vnext-fix"; "ablation"; "samples";
        "parallel-scaling"; "campaign"; "coverage-growth";
        "exec-throughput"; "fault-overhead"; "time-overhead";
        "lin-overhead"; "scenario"; "micro";
      ]
    | picked -> picked
  in
  let table2_budget = if full then 100_000 else 20_000 in
  let fix_budget = if full then 100_000 else 2_000 in
  let ablation_budget = if full then 100_000 else 20_000 in
  let samples_budget = if full then 100_000 else 10_000 in
  let scaling_budget = if full then 2_000 else if smoke then 150 else 400 in
  let campaign_budget = if full then 10_000 else if smoke then 1_500 else 3_000 in
  let coverage_budgets =
    if full then [ 100; 250; 500; 1_000 ] else [ 25; 50; 100; 200 ]
  in
  let throughput_budget = if full then 2_000 else if smoke then 60 else 400 in
  let lin_op_counts =
    if full then [ 200; 400; 800 ]
    else if smoke then [ 50; 100 ]
    else [ 100; 200; 400 ]
  in
  let reduction_hunt_budget = if full then 100_000 else if smoke then 2_000 else 20_000 in
  let reduction_explore_budget = if full then 2_000 else if smoke then 100 else 500 in
  List.iter
    (fun section ->
      match section with
      | "table1" -> table1 ()
      | "table2" -> table2 ~budget:table2_budget ()
      | "vnext-fix" -> vnext_fix ~budget:fix_budget ()
      | "ablation" -> ablation ~budget:ablation_budget ()
      | "samples" -> samples ~budget:samples_budget ()
      | "parallel-scaling" ->
        parallel_scaling ~budget:scaling_budget ~gate:smoke ()
      | "campaign" -> campaign_bench ~budget:campaign_budget ()
      | "coverage-growth" ->
        coverage_growth ~budgets:coverage_budgets
          ~fuzz_budget:reduction_hunt_budget ()
      | "exec-throughput" -> exec_throughput ~budget:throughput_budget ()
      | "fault-overhead" -> fault_overhead ~budget:throughput_budget ()
      | "time-overhead" -> time_overhead ~budget:throughput_budget ()
      | "lin-overhead" ->
        lin_overhead ~budget:throughput_budget ~op_counts:lin_op_counts ()
      | "golden-digests" -> golden_digests ()
      | "reduction" ->
        reduction ~hunt_budget:reduction_hunt_budget
          ~explore_budget:reduction_explore_budget ()
      | "scenario" ->
        scenario_bench ~budget:(if full then 100_000 else 20_000) ()
      | "micro" -> micro ()
      | other -> Printf.printf "unknown section %s\n" other)
    sections
