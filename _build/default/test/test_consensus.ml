(* Paxos and Raft sample protocols: seeded bugs are found, correct
   protocols survive systematic exploration. *)

module E = Psharp.Engine
module Error = Psharp.Error

let paxos_config =
  {
    E.default_config with
    max_executions = 20_000;
    max_steps = 2_000;
    seed = 1L;
  }

let raft_config = { paxos_config with max_executions = 3_000; max_steps = 1_500 }

let expect_agreement_violation outcome =
  match outcome with
  | E.Bug_found (report, _) -> begin
    match report.Error.kind with
    | Error.Safety_violation { monitor = "PaxosAgreement"; _ } -> ()
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  end
  | E.No_bug _ -> Alcotest.fail "agreement violation not found"

let test_paxos_forget_promise () =
  expect_agreement_violation
    (E.run
       ~monitors:(fun () -> Paxos.monitors ())
       paxos_config
       (Paxos.test ~bugs:Paxos.bug_forget_promise ()))

let test_paxos_choose_own_value () =
  expect_agreement_violation
    (E.run
       ~monitors:(fun () -> Paxos.monitors ())
       paxos_config
       (Paxos.test ~bugs:Paxos.bug_choose_own_value ()))

let test_paxos_correct_clean () =
  match
    E.run
      ~monitors:(fun () -> Paxos.monitors ())
      { paxos_config with max_executions = 3_000 }
      (Paxos.test ())
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let test_paxos_correct_clean_dfs () =
  (* Exhaustive-ish ground truth on a tiny instance: single proposer, no
     competition, bounded depth. *)
  match
    E.run
      ~monitors:(fun () -> Paxos.monitors ())
      {
        paxos_config with
        strategy = E.Dfs { max_depth = 40; int_cap = 2 };
        max_executions = 30_000;
      }
      (Paxos.test ~n_proposers:1 ~max_ballots:1 ())
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive under dfs: %s"
      (Error.kind_to_string r.Error.kind)

let test_raft_double_vote () =
  match
    E.run
      ~monitors:(fun () -> Raft.monitors ())
      raft_config
      (Raft.test ~bugs:Raft.bug_double_vote ())
  with
  | E.Bug_found (report, _) -> begin
    match report.Error.kind with
    | Error.Safety_violation { monitor = "RaftElectionSafety"; _ } -> ()
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  end
  | E.No_bug _ -> Alcotest.fail "two-leaders violation not found"

let test_raft_stale_leader () =
  match
    E.run
      ~monitors:(fun () -> Raft.monitors ())
      { raft_config with max_executions = 5_000 }
      (Raft.test ~bugs:Raft.bug_stale_leader_election ())
  with
  | E.Bug_found (report, _) -> begin
    match report.Error.kind with
    | Error.Safety_violation { monitor = "RaftStateMachineSafety"; _ } -> ()
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  end
  | E.No_bug _ -> Alcotest.fail "state-machine safety violation not found"

let test_raft_correct_clean () =
  match
    E.run
      ~monitors:(fun () -> Raft.monitors ())
      { raft_config with max_executions = 1_000 }
      (Raft.test ())
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let test_raft_bug_replays () =
  match
    E.run
      ~monitors:(fun () -> Raft.monitors ())
      raft_config
      (Raft.test ~bugs:Raft.bug_double_vote ())
  with
  | E.Bug_found (report, _) ->
    let result =
      E.replay
        ~monitors:(fun () -> Raft.monitors ())
        raft_config report.Error.trace
        (Raft.test ~bugs:Raft.bug_double_vote ())
    in
    (match result.Psharp.Runtime.bug with
     | Some (Error.Safety_violation _) -> ()
     | _ -> Alcotest.fail "raft bug does not replay")
  | E.No_bug _ -> Alcotest.fail "bug not found"

let suite =
  [
    Alcotest.test_case "paxos: forget-promise found" `Slow
      test_paxos_forget_promise;
    Alcotest.test_case "paxos: choose-own-value found" `Slow
      test_paxos_choose_own_value;
    Alcotest.test_case "paxos: correct clean" `Slow test_paxos_correct_clean;
    Alcotest.test_case "paxos: correct clean under dfs" `Slow
      test_paxos_correct_clean_dfs;
    Alcotest.test_case "raft: double-vote found" `Slow test_raft_double_vote;
    Alcotest.test_case "raft: stale-leader found" `Slow test_raft_stale_leader;
    Alcotest.test_case "raft: correct clean" `Slow test_raft_correct_clean;
    Alcotest.test_case "raft: bug replays" `Slow test_raft_bug_replays;
  ]
