(* Additional substrate coverage: lossy-network robustness for vNext,
   table-type algebra, workload plumbing, and reference-table properties. *)

module E = Psharp.Engine
module Error = Psharp.Error
module T = Chaintable.Table_types
module F0 = Chaintable.Filter0
module Rt = Chaintable.Reference_table

(* --- vNext under a lossy network ------------------------------------------ *)

let test_vnext_fixed_safe_under_message_loss () =
  (* Message drops are controlled nondeterminism, so the scheduler can act
     as an adversary that drops every repair message — liveness is
     legitimately unachievable under unfair loss, and the monitor may
     fire. What the fixed system must never produce under loss is a
     safety-class failure (assertion, unhandled event, crash, deadlock). *)
  let cfg =
    {
      E.default_config with
      max_executions = 400;
      max_steps = 4_000;
      seed = 5L;
    }
  in
  let rec hunt_safety iteration =
    if iteration >= 5 then ()
    else
      match
        E.run
          ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
          { cfg with seed = Int64.of_int (iteration + 1) }
          (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
             ~lossy_network:true
             ~scenario:Vnext.Testing_driver.Fail_and_repair ())
      with
      | E.No_bug _ -> hunt_safety (iteration + 1)
      | E.Bug_found ({ Error.kind = Error.Liveness_violation _; _ }, _) ->
        (* adversarial starvation: allowed *)
        hunt_safety (iteration + 1)
      | E.Bug_found (r, _) ->
        Alcotest.failf "lossy network broke safety: %s"
          (Error.kind_to_string r.Error.kind)
  in
  hunt_safety 0

let test_vnext_bug_found_with_loss () =
  let cfg =
    {
      E.default_config with
      max_executions = 4_000;
      max_steps = 3_000;
      seed = 5L;
    }
  in
  match
    E.run
      ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
      cfg
      (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.liveness_bug
         ~lossy_network:true ~scenario:Vnext.Testing_driver.Fail_and_repair ())
  with
  | E.Bug_found (r, _) -> begin
    match r.Error.kind with
    | Error.Liveness_violation _ -> ()
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  end
  | E.No_bug _ -> Alcotest.fail "bug not found under message loss"

(* --- Table types ------------------------------------------------------------ *)

let test_norm_props_last_wins () =
  Alcotest.(check (list (pair string string)))
    "dedup + sort"
    [ ("a", "2"); ("b", "1") ]
    (T.norm_props [ ("b", "1"); ("a", "1"); ("a", "2") ])

let test_merge_props () =
  Alcotest.(check (list (pair string string)))
    "update wins"
    [ ("a", "9"); ("b", "1"); ("c", "3") ]
    (T.merge_props ~base:[ ("a", "1"); ("b", "1") ]
       ~update:[ ("a", "9"); ("c", "3") ])

let test_key_compare () =
  let a = T.key "P" "a" and b = T.key "P" "b" and q = T.key "Q" "a" in
  Alcotest.(check bool) "rk order" true (T.compare_key a b < 0);
  Alcotest.(check bool) "pk dominates" true (T.compare_key b q < 0);
  Alcotest.(check int) "reflexive" 0 (T.compare_key a a)

let test_outcome_equivalence () =
  let row etag props = { T.key = T.key "P" "a"; props; etag } in
  Alcotest.(check bool) "rows equal modulo etag" true
    (T.outcome_equivalent
       (T.Row (Some (row 1 [ ("v", "1") ])))
       (T.Row (Some (row 99 [ ("v", "1") ]))));
  Alcotest.(check bool) "props differ" false
    (T.outcome_equivalent
       (T.Row (Some (row 1 [ ("v", "1") ])))
       (T.Row (Some (row 1 [ ("v", "2") ]))));
  Alcotest.(check bool) "ok vs error" false
    (T.outcome_equivalent
       (T.Mutated (Ok { T.new_etag = None }))
       (T.Mutated (Error T.Conflict)));
  Alcotest.(check bool) "same error" true
    (T.outcome_equivalent
       (T.Mutated (Error T.Not_found))
       (T.Mutated (Error T.Not_found)));
  Alcotest.(check bool) "rows length mismatch" false
    (T.outcome_equivalent (T.Rows []) (T.Rows [ row 1 [] ]))

let test_op_introspection () =
  let key = T.key "P" "a" in
  List.iter
    (fun op -> Alcotest.(check bool) "op key" true (T.op_key op = key))
    [
      T.Insert { key; props = [] };
      T.Replace { key; etag = 1; props = [] };
      T.Merge { key; etag = 1; props = [] };
      T.Insert_or_replace { key; props = [] };
      T.Insert_or_merge { key; props = [] };
      T.Delete { key; etag = None };
    ];
  Alcotest.(check bool) "op renders" true
    (String.length (T.op_to_string (T.Delete { key; etag = Some 4 })) > 0)

(* --- Filter0 ----------------------------------------------------------------- *)

let test_filter0_printing_and_size () =
  let f =
    F0.And
      (F0.Compare (F0.Pk, F0.Eq, "P"), F0.Not (F0.Compare (F0.Prop "v", F0.Lt, "3")))
  in
  Alcotest.(check bool) "renders" true (String.length (F0.to_string f) > 0);
  Alcotest.(check int) "size" 4 (F0.size f)

(* --- Workload / bug-flag plumbing ---------------------------------------------- *)

let test_bug_flags_roundtrip () =
  List.iter
    (fun name -> ignore (Chaintable.Bug_flags.with_bug name))
    Chaintable.Bug_flags.names;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Chaintable.Bug_flags.with_bug "NoSuchBug");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "eleven bugs" 11 (List.length Chaintable.Bug_flags.names)

let test_custom_case_unknown () =
  Alcotest.(check bool) "no custom case raises" true
    (try
       ignore (Chaintable.Workload.custom_case "QueryAtomicFilterShadowing");
       false
     with Invalid_argument _ -> true)

let test_catalog_consistency () =
  let module C = Catalog.Bug_catalog in
  Alcotest.(check int) "twelve table2 rows" 12 (List.length C.table2);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s custom-case flag consistent" e.C.name)
        e.C.needs_custom_case
        (e.C.custom_harness <> None && e.C.in_table2))
    C.table2;
  Alcotest.(check bool) "find works" true
    ((C.find "ExtentNodeLivenessViolation").C.name
     = "ExtentNodeLivenessViolation")

(* --- Reference-table properties -------------------------------------------------- *)

let prop_etags_unique =
  QCheck.Test.make ~name:"reference table never reuses etags" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_range 0 2) (int_range 0 3)))
    (fun ops ->
      let t = Rt.create () in
      let seen = Hashtbl.create 16 in
      List.for_all
        (fun (rk, v) ->
          let key = T.key "P" (string_of_int rk) in
          match
            Rt.execute t
              (T.Insert_or_replace { key; props = [ ("v", string_of_int v) ] })
          with
          | Ok { T.new_etag = Some e } ->
            if Hashtbl.mem seen e then false
            else begin
              Hashtbl.replace seen e ();
              true
            end
          | _ -> false)
        ops)

let prop_query_equals_filtered_rows =
  QCheck.Test.make ~name:"query = filter over all rows" ~count:100
    QCheck.(list_of_size Gen.(0 -- 20) (pair (int_range 0 4) (int_range 0 3)))
    (fun ops ->
      let t = Rt.create () in
      List.iter
        (fun (rk, v) ->
          ignore
            (Rt.execute t
               (T.Insert_or_replace
                  { key = T.key "P" (string_of_int rk);
                    props = [ ("v", string_of_int v) ] })))
        ops;
      let f = F0.Compare (F0.Prop "v", F0.Eq, "1") in
      Rt.query t f
      = List.filter (fun r -> Chaintable.Filter.matches f r) (Rt.rows t))

let prop_batch_equals_sequential_when_ok =
  QCheck.Test.make
    ~name:"successful batch = sequential application" ~count:100
    QCheck.(list_of_size Gen.(1 -- 5) (int_range 0 9))
    (fun rks ->
      let rks = List.sort_uniq compare rks in
      QCheck.assume (rks <> []);
      let mk rk =
        T.Insert
          { key = T.key "P" (string_of_int rk); props = [ ("v", "1") ] }
      in
      let batch_table = Rt.create () and seq_table = Rt.create () in
      let batch_result = Rt.execute_batch batch_table (List.map mk rks) in
      List.iter (fun rk -> ignore (Rt.execute seq_table (mk rk))) rks;
      (match batch_result with Ok _ -> true | Error _ -> false)
      && List.map (fun r -> (r.T.key, r.T.props)) (Rt.rows batch_table)
         = List.map (fun r -> (r.T.key, r.T.props)) (Rt.rows seq_table))

let suite =
  [
    Alcotest.test_case "vnext fixed safe under message loss" `Slow
      test_vnext_fixed_safe_under_message_loss;
    Alcotest.test_case "vnext bug found with loss" `Slow
      test_vnext_bug_found_with_loss;
    Alcotest.test_case "norm props" `Quick test_norm_props_last_wins;
    Alcotest.test_case "merge props" `Quick test_merge_props;
    Alcotest.test_case "key compare" `Quick test_key_compare;
    Alcotest.test_case "outcome equivalence" `Quick test_outcome_equivalence;
    Alcotest.test_case "op introspection" `Quick test_op_introspection;
    Alcotest.test_case "filter0 printing/size" `Quick
      test_filter0_printing_and_size;
    Alcotest.test_case "bug flags roundtrip" `Quick test_bug_flags_roundtrip;
    Alcotest.test_case "custom case unknown" `Quick test_custom_case_unknown;
    Alcotest.test_case "catalog consistency" `Quick test_catalog_consistency;
    QCheck_alcotest.to_alcotest prop_etags_unique;
    QCheck_alcotest.to_alcotest prop_query_equals_filtered_rows;
    QCheck_alcotest.to_alcotest prop_batch_equals_sequential_when_ok;
  ]
