(* Declarative state-machine layer: dispatch, goto, entry/exit, defer,
   ignore, implicit halt, unhandled events. *)

module R = Psharp.Runtime
module Sm = Psharp.Statemachine
module Event = Psharp.Event
module Error = Psharp.Error

type Event.t += Go | Work of int | Noise | Finish

let strategy ~seed =
  match (Psharp.Random_strategy.factory ~seed).Psharp.Strategy.fresh ~iteration:0 with
  | Some s -> s
  | None -> assert false

let config = { R.default_config with max_steps = 1_000 }

let execute body =
  R.execute config (strategy ~seed:1L) ~monitors:[] ~name:"Root" body

type model = { mutable log : string list }

let record m s = m.log <- s :: m.log

let run_machine ctx states init m = Sm.run ctx ~machine:"TestSm" ~states ~init m

let test_goto_entry_exit () =
  let m = { log = [] } in
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let a =
                Sm.state "A"
                  ~entry:(fun _ m -> record m "enter A")
                  ~exit_:(fun _ m -> record m "exit A")
                  [
                    ("Go", fun _ _ _ -> Sm.Goto "B");
                  ]
              in
              let b =
                Sm.state "B"
                  ~entry:(fun _ m -> record m "enter B")
                  [ ("Finish", fun _ _ _ -> Sm.Halt_machine) ]
              in
              run_machine sctx [ a; b ] "A" m)
        in
        R.send ctx sm Go;
        R.send ctx sm Finish)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list string)) "lifecycle order"
    [ "enter A"; "exit A"; "enter B" ] (List.rev m.log)

let test_defer_replayed_in_next_state () =
  let m = { log = [] } in
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let a =
                Sm.state "A" ~defer:[ "Work" ]
                  [ ("Go", fun _ _ _ -> Sm.Goto "B") ]
              in
              let b =
                Sm.state "B"
                  [
                    ( "Work",
                      fun _ m e ->
                        (match e with
                         | Work i -> record m (Printf.sprintf "work %d" i)
                         | _ -> ());
                        Sm.Stay );
                    ("Finish", fun _ _ _ -> Sm.Halt_machine);
                  ]
              in
              run_machine sctx [ a; b ] "A" m)
        in
        (* Work arrives while in A (deferred), then Go transitions to B,
           where the deferred Work must be replayed before Finish. *)
        R.send ctx sm (Work 1);
        R.send ctx sm (Work 2);
        R.send ctx sm Go;
        R.send ctx sm Finish)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list string)) "deferred replayed in order"
    [ "work 1"; "work 2" ] (List.rev m.log)

let test_ignore_drops () =
  let m = { log = [] } in
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let a =
                Sm.state "A" ~ignore_:[ "Noise" ]
                  [ ("Finish", fun _ _ _ -> Sm.Halt_machine) ]
              in
              run_machine sctx [ a ] "A" m)
        in
        R.send ctx sm Noise;
        R.send ctx sm Noise;
        R.send ctx sm Finish)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None)

let test_unhandled_event_bug () =
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let a = Sm.state "A" [] in
              run_machine sctx [ a ] "A" { log = [] })
        in
        R.send ctx sm Noise)
  in
  match result.R.bug with
  | Some (Error.Unhandled_event { state = "A"; _ }) -> ()
  | _ -> Alcotest.fail "expected unhandled-event bug"

let test_halt_event_implicit () =
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let a = Sm.state "A" [] in
              run_machine sctx [ a ] "A" { log = [] })
        in
        R.send ctx sm Event.Halt_event)
  in
  Alcotest.(check bool) "halt event halts gracefully" true (result.R.bug = None)

let test_undeclared_initial_state () =
  let result =
    execute (fun ctx ->
        ignore ctx;
        let a = Sm.state "A" [] in
        R.create ctx ~name:"Sm" (fun sctx ->
            run_machine sctx [ a ] "Nope" { log = [] })
        |> ignore)
  in
  match result.R.bug with
  | Some (Error.Machine_exception _) -> ()
  | _ -> Alcotest.fail "expected machine exception for undeclared state"

let test_transition_handler_receives_event () =
  let got = ref 0 in
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let a =
                Sm.state "A"
                  [
                    ( "Work",
                      fun _ _ e ->
                        (match e with Work i -> got := i | _ -> ());
                        Sm.Halt_machine );
                  ]
              in
              run_machine sctx [ a ] "A" { log = [] })
        in
        R.send ctx sm (Work 42))
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check int) "payload" 42 !got

let test_registry_counts () =
  Psharp.Registry.reset ();
  let result =
    execute (fun ctx ->
        let sm =
          R.create ctx ~name:"Sm" (fun sctx ->
              let a =
                Sm.state "A" [ ("Go", fun _ _ _ -> Sm.Goto "B") ]
              in
              let b = Sm.state "B" [ ("Finish", fun _ _ _ -> Sm.Halt_machine) ] in
              Sm.run sctx ~machine:"RegistryProbe" ~states:[ a; b ] ~init:"A"
                { log = [] })
        in
        R.send ctx sm Go;
        R.send ctx sm Finish)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  let stats =
    List.find
      (fun s -> s.Psharp.Registry.machine = "RegistryProbe")
      (Psharp.Registry.machines ())
  in
  Alcotest.(check int) "states" 2 stats.Psharp.Registry.states;
  Alcotest.(check int) "handlers" 2 stats.Psharp.Registry.handlers;
  Alcotest.(check int) "observed transitions" 1
    (Psharp.Registry.transitions ~machine:"RegistryProbe")

let suite =
  [
    Alcotest.test_case "goto + entry/exit" `Quick test_goto_entry_exit;
    Alcotest.test_case "defer replayed in next state" `Quick
      test_defer_replayed_in_next_state;
    Alcotest.test_case "ignore drops events" `Quick test_ignore_drops;
    Alcotest.test_case "unhandled event is a bug" `Quick
      test_unhandled_event_bug;
    Alcotest.test_case "Halt_event halts implicitly" `Quick
      test_halt_event_implicit;
    Alcotest.test_case "undeclared initial state" `Quick
      test_undeclared_initial_state;
    Alcotest.test_case "handler receives payload" `Quick
      test_transition_handler_receives_event;
    Alcotest.test_case "registry counts" `Quick test_registry_counts;
  ]
