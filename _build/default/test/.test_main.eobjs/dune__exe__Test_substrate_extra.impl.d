test/test_substrate_extra.ml: Alcotest Catalog Chaintable Gen Hashtbl Int64 List Printf Psharp QCheck QCheck_alcotest String Vnext
