test/test_pushpop.ml: Alcotest List Psharp
