test/test_event.ml: Alcotest Printf Psharp
