test/test_strategies.ml: Alcotest List Printf Psharp
