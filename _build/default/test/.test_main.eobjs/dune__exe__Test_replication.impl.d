test/test_replication.ml: Alcotest Printf Psharp Replication
