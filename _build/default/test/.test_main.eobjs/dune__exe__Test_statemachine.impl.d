test/test_statemachine.ml: Alcotest List Printf Psharp
