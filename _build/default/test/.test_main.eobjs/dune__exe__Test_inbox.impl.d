test/test_inbox.ml: Alcotest List Option Psharp QCheck QCheck_alcotest Test
