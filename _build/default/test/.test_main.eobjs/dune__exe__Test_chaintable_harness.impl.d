test/test_chaintable_harness.ml: Alcotest Chaintable List Printf Psharp
