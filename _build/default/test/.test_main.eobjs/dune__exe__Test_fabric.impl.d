test/test_fabric.ml: Alcotest Fabric Psharp String
