test/test_consensus.ml: Alcotest Paxos Psharp Raft
