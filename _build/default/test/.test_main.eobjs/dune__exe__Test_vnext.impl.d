test/test_vnext.ml: Alcotest List Psharp Vnext
