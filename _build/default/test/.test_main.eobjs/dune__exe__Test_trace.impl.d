test/test_trace.ml: Alcotest Filename Fun Psharp QCheck QCheck_alcotest Sys
