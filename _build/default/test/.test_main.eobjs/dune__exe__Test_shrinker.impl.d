test/test_shrinker.ml: Alcotest Chaintable Psharp Replication
