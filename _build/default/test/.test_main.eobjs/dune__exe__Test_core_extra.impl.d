test/test_core_extra.ml: Alcotest List Psharp QCheck QCheck_alcotest String Unix
