test/test_engine.ml: Alcotest List Psharp Replication
