test/test_prng.ml: Alcotest Array Fun Gen List Psharp QCheck QCheck_alcotest
