test/test_monitor.ml: Alcotest Psharp
