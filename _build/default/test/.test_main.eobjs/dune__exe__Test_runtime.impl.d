test/test_runtime.ml: Alcotest List Printf Psharp String
