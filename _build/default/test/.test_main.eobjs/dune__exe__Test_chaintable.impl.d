test/test_chaintable.ml: Alcotest Chaintable List Option Printf QCheck QCheck_alcotest
