(* The testing engine: bug search, determinism, replay, DFS ground truth. *)

module E = Psharp.Engine
module R = Psharp.Runtime
module Event = Psharp.Event
module Error = Psharp.Error
module Trace = Psharp.Trace

type Event.t += Token

(* A minimal racy program: two writers race on a shared cell via a referee
   machine; the referee asserts writer A got there first. Roughly half of
   all schedules violate it. *)
let racy_harness ctx =
  let first = ref None in
  let referee =
    R.create ctx ~name:"Referee" (fun rctx ->
        ignore (R.receive rctx);
        R.assert_here rctx (!first = Some "A") "B overtook A")
  in
  let writer name =
    fun wctx ->
      if !first = None then first := Some name;
      R.send wctx referee Token
  in
  ignore (R.create ctx ~name:"A" (writer "A"));
  ignore (R.create ctx ~name:"B" (writer "B"))

let config =
  { E.default_config with max_executions = 500; max_steps = 200 }

let test_finds_race () =
  match E.run config racy_harness with
  | E.Bug_found (report, stats) ->
    (match report.Error.kind with
     | Error.Assertion_failure _ -> ()
     | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k));
    Alcotest.(check bool) "few executions needed" true (stats.E.executions < 100)
  | E.No_bug _ -> Alcotest.fail "race not found"

let test_seed_determinism () =
  let run () =
    match E.run { config with seed = 99L } racy_harness with
    | E.Bug_found (report, stats) ->
      (Trace.to_string report.Error.trace, stats.E.executions)
    | E.No_bug _ -> Alcotest.fail "expected bug"
  in
  let t1, n1 = run () and t2, n2 = run () in
  Alcotest.(check string) "same trace" t1 t2;
  Alcotest.(check int) "same execution count" n1 n2

let test_replay_reproduces () =
  match E.run config racy_harness with
  | E.Bug_found (report, _) ->
    let result = E.replay config report.Error.trace racy_harness in
    (match result.R.bug with
     | Some (Error.Assertion_failure _) -> ()
     | _ -> Alcotest.fail "replay did not reproduce the bug")
  | E.No_bug _ -> Alcotest.fail "expected bug"

let test_replay_log_collected () =
  match E.run { config with collect_log_on_bug = true } racy_harness with
  | E.Bug_found (report, _) ->
    Alcotest.(check bool) "log non-empty" true (report.Error.log <> [])
  | E.No_bug _ -> Alcotest.fail "expected bug"

let test_ndc_matches_trace () =
  match E.run config racy_harness with
  | E.Bug_found (report, _) as outcome ->
    Alcotest.(check (option int)) "ndc = trace length"
      (Some (Trace.length report.Error.trace))
      (E.ndc outcome)
  | E.No_bug _ -> Alcotest.fail "expected bug"

let test_no_bug_on_correct_program () =
  let harness ctx =
    let echo =
      R.create ctx ~name:"Echo" (fun ectx -> ignore (R.receive ectx))
    in
    R.send ctx echo Token
  in
  match E.run { config with max_executions = 50 } harness with
  | E.No_bug stats -> Alcotest.(check int) "all executions ran" 50 stats.E.executions
  | E.Bug_found (r, _) ->
    Alcotest.failf "unexpected bug: %s" (Error.kind_to_string r.Error.kind)

let test_dfs_finds_and_exhausts () =
  (* DFS over the racy program must find the bug. *)
  let dfs_config =
    { config with E.strategy = E.Dfs { max_depth = 50; int_cap = 2 } }
  in
  (match E.run dfs_config racy_harness with
   | E.Bug_found _ -> ()
   | E.No_bug _ -> Alcotest.fail "dfs should find the race");
  (* And on a correct program it must exhaust the space. *)
  let harness ctx =
    let echo = R.create ctx ~name:"Echo" (fun ectx -> ignore (R.receive ectx)) in
    R.send ctx echo Token
  in
  match E.run { dfs_config with max_executions = 10_000 } harness with
  | E.No_bug stats ->
    Alcotest.(check bool) "search exhausted" true stats.E.search_exhausted
  | E.Bug_found (r, _) ->
    Alcotest.failf "unexpected bug: %s" (Error.kind_to_string r.Error.kind)

let test_pct_finds_race () =
  let pct_config = { config with E.strategy = E.Pct { change_points = 2 } } in
  match E.run pct_config racy_harness with
  | E.Bug_found _ -> ()
  | E.No_bug _ -> Alcotest.fail "pct should find the race"

let test_monitors_fresh_per_execution () =
  (* The monitor accumulates one notification per execution; if the engine
     failed to create fresh monitors, the count would exceed 1 and fail. *)
  let harness ctx = R.notify ctx "Fresh" Token in
  let monitors () =
    let count = ref 0 in
    [
      Psharp.Monitor.make ~name:"Fresh" ~initial:"S"
        ~states:[ ("S", Psharp.Monitor.Neutral) ]
        (fun m _ ->
          incr count;
          Psharp.Monitor.assert_ m (!count <= 1) "stale monitor state");
    ]
  in
  match E.run ~monitors { config with max_executions = 20 } harness with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "monitor state leaked: %s" (Error.kind_to_string r.Error.kind)

let suite =
  [
    Alcotest.test_case "finds a simple race" `Quick test_finds_race;
    Alcotest.test_case "seeded determinism" `Quick test_seed_determinism;
    Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces;
    Alcotest.test_case "log collected on bug" `Quick test_replay_log_collected;
    Alcotest.test_case "ndc equals trace length" `Quick test_ndc_matches_trace;
    Alcotest.test_case "no false positives" `Quick test_no_bug_on_correct_program;
    Alcotest.test_case "dfs finds and exhausts" `Quick test_dfs_finds_and_exhausts;
    Alcotest.test_case "pct finds race" `Quick test_pct_finds_race;
    Alcotest.test_case "monitors fresh per execution" `Quick
      test_monitors_fresh_per_execution;
  ]

let test_survey_collects_distinct_bugs () =
  (* The replication bug-1 harness produces distinct violations (one per
     request the early ack can hit); survey must dedupe and count. *)
  let cfg =
    {
      E.default_config with
      max_executions = 800;
      max_steps = 2_000;
      seed = 0L;
    }
  in
  let found =
    E.survey
      ~monitors:(fun () -> Replication.Harness.monitors ())
      cfg
      (Replication.Harness.test ~bugs:Replication.Bug_flags.bug1 ())
  in
  Alcotest.(check bool) "at least one distinct bug" true (found <> []);
  List.iter
    (fun (report, n) ->
      Alcotest.(check bool) "positive count" true (n > 0);
      Alcotest.(check bool) "has witness" true
        (Trace.length report.Error.trace > 0))
    found

let test_survey_empty_on_correct_system () =
  let cfg = { E.default_config with max_executions = 50; max_steps = 200 } in
  Alcotest.(check int) "no violations" 0
    (List.length (E.survey cfg (fun _ctx -> ())))

let suite =
  suite
  @ [
      Alcotest.test_case "survey collects distinct bugs" `Slow
        test_survey_collects_distinct_bugs;
      Alcotest.test_case "survey empty on correct system" `Quick
        test_survey_empty_on_correct_system;
    ]
