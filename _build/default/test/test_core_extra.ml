(* Additional core coverage: timers, coalescing with custom equality,
   engine configuration corners, id/error formatting, and cross-seed
   determinism properties. *)

module R = Psharp.Runtime
module E = Psharp.Engine
module Event = Psharp.Event
module Error = Psharp.Error
module Trace = Psharp.Trace

type Event.t += Tick_seen | Probe of int

let strategy ~seed =
  match (Psharp.Random_strategy.factory ~seed).Psharp.Strategy.fresh ~iteration:0 with
  | Some s -> s
  | None -> assert false

let config = { R.default_config with max_steps = 2_000 }

let execute ?(cfg = config) ?(monitors = []) ?(seed = 1L) body =
  R.execute cfg (strategy ~seed) ~monitors ~name:"Root" body

(* --- Timer --------------------------------------------------------------- *)

let test_timer_delivers_and_stops () =
  let ticks = ref 0 in
  let result =
    execute (fun ctx ->
        let me = R.self ctx in
        let timer = Psharp.Timer.create ctx ~target:me () in
        let rec await n =
          if n > 0 then begin
            match R.receive ctx with
            | Psharp.Timer.Timer_tick ->
              incr ticks;
              await (n - 1)
            | _ -> await n
          end
        in
        await 3;
        R.send ctx timer Psharp.Timer.Timer_stop
        (* root returns; timer halts on stop; execution drains *))
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check int) "three ticks" 3 !ticks

let test_timer_custom_tick () =
  let seen = ref false in
  let result =
    execute (fun ctx ->
        let timer =
          Psharp.Timer.create ctx ~target:(R.self ctx)
            ~tick:(fun () -> Tick_seen)
            ()
        in
        (match R.receive ctx with Tick_seen -> seen := true | _ -> ());
        R.send ctx timer Psharp.Timer.Timer_stop)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check bool) "custom tick" true !seen

(* --- Coalescing with custom equality ------------------------------------- *)

let test_send_unless_pending_custom_same () =
  let got = ref [] in
  let result =
    execute (fun ctx ->
        let sink =
          R.create ctx ~name:"Sink" (fun sctx ->
              let rec loop () =
                match R.receive sctx with
                | Probe i ->
                  got := i :: !got;
                  loop ()
                | Event.Halt_event -> R.halt sctx
                | _ -> loop ()
              in
              loop ())
        in
        let same_payload i = function Probe j -> i = j | _ -> false in
        (* Same constructor, distinct payloads: default coalescing would
           drop the second; payload-equality keeps both. *)
        R.send_unless_pending ~same:(same_payload 1) ctx sink (Probe 1);
        R.send_unless_pending ~same:(same_payload 2) ctx sink (Probe 2);
        R.send_unless_pending ~same:(same_payload 1) ctx sink (Probe 1);
        R.send ctx sink Event.Halt_event)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list int)) "payload-aware coalescing" [ 1; 2 ]
    (List.rev !got)

(* --- Engine corners ------------------------------------------------------- *)

let racy ctx =
  let flag = ref false in
  let referee =
    R.create ctx ~name:"Ref" (fun rctx ->
        ignore (R.receive rctx);
        R.assert_here rctx !flag "loser ran first")
  in
  ignore (R.create ctx ~name:"W1" (fun c -> flag := true; R.send c referee (Probe 0)));
  ignore (R.create ctx ~name:"W2" (fun c -> R.send c referee (Probe 1)))

let test_engine_round_robin_deterministic () =
  let cfg =
    { E.default_config with strategy = E.Round_robin; max_executions = 10 }
  in
  let a = E.run cfg racy and b = E.run cfg racy in
  let key = function
    | E.Bug_found (r, s) -> (Trace.to_string r.Error.trace, s.E.executions)
    | E.No_bug s -> ("none", s.E.executions)
  in
  Alcotest.(check (pair string int)) "rr deterministic" (key a) (key b)

let test_engine_ndc_none_without_bug () =
  let cfg = { E.default_config with max_executions = 5 } in
  let outcome = E.run cfg (fun _ctx -> ()) in
  Alcotest.(check (option int)) "no ndc" None (E.ndc outcome)

let test_engine_stops_at_budget () =
  let cfg = { E.default_config with max_executions = 7 } in
  match E.run cfg (fun _ctx -> ()) with
  | E.No_bug stats -> Alcotest.(check int) "exactly budget" 7 stats.E.executions
  | E.Bug_found _ -> Alcotest.fail "unexpected bug"

let test_pct_seed_determinism () =
  let cfg =
    {
      E.default_config with
      strategy = E.Pct { change_points = 2 };
      max_executions = 200;
      seed = 11L;
    }
  in
  let key = function
    | E.Bug_found (r, _) -> Trace.to_string r.Error.trace
    | E.No_bug _ -> "none"
  in
  Alcotest.(check string) "pct deterministic" (key (E.run cfg racy))
    (key (E.run cfg racy))

(* --- Formatting ----------------------------------------------------------- *)

let test_id_to_string () =
  let id = Psharp.Id.make ~index:3 ~name:"Node" in
  Alcotest.(check string) "render" "Node(3)" (Psharp.Id.to_string id);
  Alcotest.(check int) "index" 3 (Psharp.Id.index id);
  Alcotest.(check bool) "equal by index" true
    (Psharp.Id.equal id (Psharp.Id.make ~index:3 ~name:"Other"))

let test_error_kind_strings () =
  let cases =
    [
      Error.Safety_violation { monitor = "M"; message = "m" };
      Error.Liveness_violation { monitor = "M"; hot_since = 2; state = "Hot" };
      Error.Deadlock { blocked = [ "A(1)" ] };
      Error.Unhandled_event { machine = "A"; state = "S"; event = "E" };
      Error.Assertion_failure { machine = "A"; message = "m" };
      Error.Machine_exception { machine = "A"; exn = "Boom" };
      Error.Replay_divergence { step = 4; message = "m" };
    ]
  in
  List.iter
    (fun kind ->
      Alcotest.(check bool) "nonempty rendering" true
        (String.length (Error.kind_to_string kind) > 0))
    cases

(* --- Cross-seed determinism property -------------------------------------- *)

let prop_engine_deterministic_per_seed =
  QCheck.Test.make ~name:"engine outcome is a function of the seed" ~count:25
    QCheck.int64 (fun seed ->
      let cfg =
        { E.default_config with seed; max_executions = 50; max_steps = 200 }
      in
      let key = function
        | E.Bug_found (r, s) -> (Trace.to_string r.Error.trace, s.E.executions)
        | E.No_bug s -> ("none", s.E.executions)
      in
      key (E.run cfg racy) = key (E.run cfg racy))

let prop_replay_is_exact =
  QCheck.Test.make ~name:"replay reproduces trace exactly" ~count:25
    QCheck.int64 (fun seed ->
      let cfg =
        { E.default_config with seed; max_executions = 100; max_steps = 200 }
      in
      match E.run cfg racy with
      | E.No_bug _ -> true
      | E.Bug_found (report, _) ->
        let result = E.replay cfg report.Error.trace racy in
        result.R.bug <> None
        && Trace.equal result.R.choices report.Error.trace)

let suite =
  [
    Alcotest.test_case "timer delivers and stops" `Quick
      test_timer_delivers_and_stops;
    Alcotest.test_case "timer custom tick" `Quick test_timer_custom_tick;
    Alcotest.test_case "coalescing with custom equality" `Quick
      test_send_unless_pending_custom_same;
    Alcotest.test_case "round robin deterministic" `Quick
      test_engine_round_robin_deterministic;
    Alcotest.test_case "ndc none without bug" `Quick
      test_engine_ndc_none_without_bug;
    Alcotest.test_case "budget respected" `Quick test_engine_stops_at_budget;
    Alcotest.test_case "pct seed determinism" `Quick test_pct_seed_determinism;
    Alcotest.test_case "id formatting" `Quick test_id_to_string;
    Alcotest.test_case "error kind strings" `Quick test_error_kind_strings;
    QCheck_alcotest.to_alcotest prop_engine_deterministic_per_seed;
    QCheck_alcotest.to_alcotest prop_replay_is_exact;
  ]

let test_time_budget_stops_search () =
  (* A harness with no bug and a tiny time budget: the engine must stop
     well before the execution budget. *)
  let cfg =
    {
      E.default_config with
      max_executions = max_int - 1;
      max_seconds = Some 0.2;
      max_steps = 200;
    }
  in
  let started = Unix.gettimeofday () in
  match E.run cfg (fun _ctx -> ()) with
  | E.No_bug stats ->
    Alcotest.(check bool) "stopped on time" true
      (Unix.gettimeofday () -. started < 5.0);
    Alcotest.(check bool) "ran some executions" true (stats.E.executions > 0)
  | E.Bug_found _ -> Alcotest.fail "unexpected bug"

let suite =
  suite
  @ [
      Alcotest.test_case "time budget stops search" `Quick
        test_time_budget_stops_search;
    ]
