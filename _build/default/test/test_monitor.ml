(* Monitor mechanics: states, temperatures, transitions, failures. *)

module M = Psharp.Monitor
module Event = Psharp.Event

type Event.t += Up | Down

let mk () =
  M.make ~name:"Mon" ~initial:"Cold"
    ~states:[ ("Cold", M.Cold); ("Hot", M.Hot); ("Mid", M.Neutral) ]
    (fun m e ->
      match e with
      | Up -> M.goto m "Hot"
      | Down -> M.goto m "Cold"
      | _ -> ())

let test_initial_state () =
  let m = mk () in
  Alcotest.(check string) "initial" "Cold" (M.current m);
  Alcotest.(check bool) "cold not hot" false (M.is_hot m)

let test_transitions_and_temperature () =
  let m = mk () in
  M.notify m Up;
  Alcotest.(check string) "hot state" "Hot" (M.current m);
  Alcotest.(check bool) "is hot" true (M.is_hot m);
  M.notify m Down;
  Alcotest.(check bool) "cooled" false (M.is_hot m)

let test_goto_undeclared () =
  let m = mk () in
  Alcotest.(check bool) "undeclared goto raises" true
    (try
       M.goto m "Nope";
       false
     with Invalid_argument _ -> true)

let test_initial_undeclared () =
  Alcotest.(check bool) "undeclared initial raises" true
    (try
       ignore
         (M.make ~name:"Bad" ~initial:"X" ~states:[ ("A", M.Neutral) ]
            (fun _ _ -> ()));
       false
     with Invalid_argument _ -> true)

let test_fail_raises_bug () =
  let m = mk () in
  Alcotest.(check bool) "fail raises Error.Bug" true
    (try
       M.fail m "oops"
     with
     | Psharp.Error.Bug (Psharp.Error.Safety_violation { monitor; message }) ->
       monitor = "Mon" && message = "oops")

let test_assert_passthrough () =
  let m = mk () in
  M.assert_ m true "fine";
  Alcotest.(check bool) "assert true is no-op" true (M.current m = "Cold")

let test_hot_since_bookkeeping () =
  let m = mk () in
  Alcotest.(check (option int)) "initially none" None (M.hot_since m);
  M.set_hot_since m (Some 17);
  Alcotest.(check (option int)) "stored" (Some 17) (M.hot_since m)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "transitions and temperature" `Quick
      test_transitions_and_temperature;
    Alcotest.test_case "goto undeclared" `Quick test_goto_undeclared;
    Alcotest.test_case "initial undeclared" `Quick test_initial_undeclared;
    Alcotest.test_case "fail raises" `Quick test_fail_raises_bug;
    Alcotest.test_case "assert passthrough" `Quick test_assert_passthrough;
    Alcotest.test_case "hot_since bookkeeping" `Quick test_hot_since_bookkeeping;
  ]
