(* MigratingTable substrate: reference-table spec, filters, internal row
   metadata, phases, and the migration protocol driven synchronously
   through the local backend. *)

module T = Chaintable.Table_types
module F0 = Chaintable.Filter0
module Filter = Chaintable.Filter
module Rt = Chaintable.Reference_table
module Mt = Chaintable.Migrating_table
module Lb = Chaintable.Local_backend
module Lin = Chaintable.Linearize
module Phase = Chaintable.Phase
module Internal = Chaintable.Internal
module Bug_flags = Chaintable.Bug_flags

let k pk rk = T.key pk rk
let props v = [ ("v", v) ]

let ok_etag = function
  | Ok { T.new_etag = Some e } -> e
  | Ok { T.new_etag = None } -> Alcotest.fail "expected etag"
  | Error e -> Alcotest.failf "unexpected error %s" (T.op_error_to_string e)

(* --- Reference table --------------------------------------------------- *)

let test_insert_and_conflict () =
  let t = Rt.create () in
  let e = ok_etag (Rt.execute t (T.Insert { key = k "P" "a"; props = props "1" })) in
  Alcotest.(check bool) "etag positive" true (e > 0);
  Alcotest.(check bool) "conflict on reinsert" true
    (Rt.execute t (T.Insert { key = k "P" "a"; props = props "2" })
     = Error T.Conflict)

let test_replace_etag_semantics () =
  let t = Rt.create () in
  let e1 = ok_etag (Rt.execute t (T.Insert { key = k "P" "a"; props = props "1" })) in
  Alcotest.(check bool) "replace missing row" true
    (Rt.execute t (T.Replace { key = k "P" "b"; etag = 1; props = [] })
     = Error T.Not_found);
  let e2 =
    ok_etag (Rt.execute t (T.Replace { key = k "P" "a"; etag = e1; props = props "2" }))
  in
  Alcotest.(check bool) "etag changed" true (e2 <> e1);
  Alcotest.(check bool) "stale etag rejected" true
    (Rt.execute t (T.Replace { key = k "P" "a"; etag = e1; props = props "3" })
     = Error T.Precondition_failed);
  match Rt.retrieve t (k "P" "a") with
  | Some row -> Alcotest.(check string) "value" "2" (List.assoc "v" row.T.props)
  | None -> Alcotest.fail "row missing"

let test_merge_keeps_other_props () =
  let t = Rt.create () in
  let e1 =
    ok_etag
      (Rt.execute t (T.Insert { key = k "P" "a"; props = [ ("x", "1"); ("y", "2") ] }))
  in
  ignore
    (ok_etag
       (Rt.execute t (T.Merge { key = k "P" "a"; etag = e1; props = [ ("y", "9"); ("z", "3") ] })));
  match Rt.retrieve t (k "P" "a") with
  | Some row ->
    Alcotest.(check (list (pair string string)))
      "merged" [ ("x", "1"); ("y", "9"); ("z", "3") ] row.T.props
  | None -> Alcotest.fail "row missing"

let test_delete_semantics () =
  let t = Rt.create () in
  let e1 = ok_etag (Rt.execute t (T.Insert { key = k "P" "a"; props = props "1" })) in
  Alcotest.(check bool) "delete stale etag" true
    (Rt.execute t (T.Delete { key = k "P" "a"; etag = Some (e1 + 1) })
     = Error T.Precondition_failed);
  Alcotest.(check bool) "delete ok" true
    (Rt.execute t (T.Delete { key = k "P" "a"; etag = Some e1 })
     = Ok { T.new_etag = None });
  Alcotest.(check bool) "delete missing" true
    (Rt.execute t (T.Delete { key = k "P" "a"; etag = None }) = Error T.Not_found)

let test_insert_or_variants () =
  let t = Rt.create () in
  ignore (ok_etag (Rt.execute t (T.Insert_or_replace { key = k "P" "a"; props = [ ("x", "1") ] })));
  ignore (ok_etag (Rt.execute t (T.Insert_or_merge { key = k "P" "a"; props = [ ("y", "2") ] })));
  ignore (ok_etag (Rt.execute t (T.Insert_or_replace { key = k "P" "a"; props = [ ("z", "3") ] })));
  match Rt.retrieve t (k "P" "a") with
  | Some row ->
    Alcotest.(check (list (pair string string))) "replace wins" [ ("z", "3") ]
      row.T.props
  | None -> Alcotest.fail "row missing"

let test_batch_atomicity () =
  let t = Rt.create () in
  ignore (ok_etag (Rt.execute t (T.Insert { key = k "P" "a"; props = props "1" })));
  (* Second op fails (conflict), so the first must not be applied. *)
  let r =
    Rt.execute_batch t
      [
        T.Insert { key = k "P" "b"; props = props "2" };
        T.Insert { key = k "P" "a"; props = props "3" };
      ]
  in
  Alcotest.(check bool) "batch failed" true (r = Error T.Conflict);
  Alcotest.(check bool) "b not inserted" true (Rt.retrieve t (k "P" "b") = None)

let test_batch_rejects_cross_partition () =
  let t = Rt.create () in
  match
    Rt.execute_batch t
      [
        T.Insert { key = k "P" "a"; props = [] };
        T.Insert { key = k "Q" "b"; props = [] };
      ]
  with
  | Error (T.Batch_rejected _) -> ()
  | _ -> Alcotest.fail "cross-partition batch must be rejected"

let test_batch_rejects_duplicate_key () =
  let t = Rt.create () in
  match
    Rt.execute_batch t
      [
        T.Insert { key = k "P" "a"; props = [] };
        T.Insert_or_replace { key = k "P" "a"; props = [] };
      ]
  with
  | Error (T.Batch_rejected _) -> ()
  | _ -> Alcotest.fail "duplicate key in batch must be rejected"

let test_batch_success_applies_all () =
  let t = Rt.create () in
  match
    Rt.execute_batch t
      [
        T.Insert { key = k "P" "a"; props = props "1" };
        T.Insert { key = k "P" "b"; props = props "2" };
      ]
  with
  | Ok results ->
    Alcotest.(check int) "two results" 2 (List.length results);
    Alcotest.(check int) "two rows" 2 (Rt.size t)
  | Error e -> Alcotest.failf "batch failed: %s" (T.op_error_to_string e)

let test_query_and_peek () =
  let t = Rt.create () in
  List.iter
    (fun (pk, rk, v) ->
      ignore (Rt.execute t (T.Insert { key = k pk rk; props = props v })))
    [ ("P", "a", "1"); ("P", "b", "2"); ("Q", "a", "1") ];
  let rows = Rt.query t (Filter.of_pk "P") in
  Alcotest.(check int) "partition query" 2 (List.length rows);
  let v1 = Rt.query t (F0.Compare (F0.Prop "v", F0.Eq, "1")) in
  Alcotest.(check int) "filter by prop" 2 (List.length v1);
  (match Rt.peek_after t None F0.True with
   | Some row -> Alcotest.(check string) "first key" "P/a" (T.key_to_string row.T.key)
   | None -> Alcotest.fail "peek empty");
  (match Rt.peek_after t (Some (k "P" "a")) F0.True with
   | Some row -> Alcotest.(check string) "next key" "P/b" (T.key_to_string row.T.key)
   | None -> Alcotest.fail "peek after empty")

let test_history_records_versions () =
  let t = Rt.create () in
  let e1 = ok_etag (Rt.execute t (T.Insert { key = k "P" "a"; props = props "1" })) in
  ignore (Rt.execute t (T.Replace { key = k "P" "a"; etag = e1; props = props "2" }));
  ignore (Rt.execute t (T.Delete { key = k "P" "a"; etag = None }));
  let hist = Rt.history t (k "P" "a") in
  Alcotest.(check int) "three versions" 3 (List.length hist);
  (match hist with
   | [ (_, Some r1); (_, Some r2); (_, None) ] ->
     Alcotest.(check string) "v1" "1" (List.assoc "v" r1.T.props);
     Alcotest.(check string) "v2" "2" (List.assoc "v" r2.T.props)
   | _ -> Alcotest.fail "unexpected history shape");
  Alcotest.(check int) "known keys" 1 (List.length (Rt.known_keys t))

(* --- Filters ------------------------------------------------------------ *)

let row_with props = { T.key = k "P" "a"; props = T.norm_props props; etag = 1 }

let test_filter_semantics () =
  let row = row_with [ ("v", "5") ] in
  let check name f expected =
    Alcotest.(check bool) name expected (Filter.matches f row)
  in
  check "true" F0.True true;
  check "pk eq" (F0.Compare (F0.Pk, F0.Eq, "P")) true;
  check "rk ge" (F0.Compare (F0.Rk, F0.Ge, "a")) true;
  check "prop eq" (F0.Compare (F0.Prop "v", F0.Eq, "5")) true;
  check "prop lt" (F0.Compare (F0.Prop "v", F0.Lt, "4")) false;
  check "missing prop eq is false" (F0.Compare (F0.Prop "w", F0.Eq, "5")) false;
  check "missing prop ne is true" (F0.Compare (F0.Prop "w", F0.Ne, "5")) true;
  check "and" (F0.And (F0.True, F0.Compare (F0.Prop "v", F0.Eq, "5"))) true;
  check "or" (F0.Or (F0.Compare (F0.Prop "v", F0.Eq, "6"), F0.True)) true;
  check "not" (F0.Not F0.True) false

(* --- Internal metadata --------------------------------------------------- *)

let test_internal_vetag_strip () =
  let raw =
    { T.key = k "P" "a";
      props = T.norm_props [ ("v", "1"); ("__vetag", "7") ];
      etag = 42 }
  in
  Alcotest.(check int) "vetag from prop" 7 (Internal.vetag raw);
  let stripped = Internal.strip ~bugs:Bug_flags.none raw in
  Alcotest.(check int) "virtual etag" 7 stripped.T.etag;
  Alcotest.(check (list (pair string string))) "reserved props stripped"
    [ ("v", "1") ] stripped.T.props;
  let leaky =
    Internal.strip ~bugs:(Bug_flags.with_bug "TombstoneOutputETag") raw
  in
  Alcotest.(check int) "bug leaks backend etag" 42 leaky.T.etag

let test_internal_tombstone () =
  let tomb = { T.key = k "P" "a"; props = Internal.tombstone_props; etag = 1 } in
  Alcotest.(check bool) "is tombstone" true (Internal.is_tombstone tomb);
  Alcotest.(check bool) "live row is not" false
    (Internal.is_tombstone (row_with (props "1")))

(* --- Phases -------------------------------------------------------------- *)

let test_phase_order_and_compat () =
  Alcotest.(check int) "five phases" 5 (List.length Phase.all);
  Alcotest.(check bool) "next chain" true
    (Phase.next Phase.Use_old = Some Phase.Prefer_old
     && Phase.next Phase.Use_new = None);
  Alcotest.(check bool) "use_old incompatible with later" false
    (Phase.compatible Phase.Use_old Phase.Prefer_old);
  Alcotest.(check bool) "overlay incompatible with cleanup" false
    (Phase.compatible Phase.Prefer_new Phase.Use_new_with_tombstones);
  Alcotest.(check bool) "overlay overlap ok" true
    (Phase.compatible Phase.Prefer_old Phase.Prefer_new)

(* --- Migration protocol through the local backend ------------------------ *)

let mutate lb mt mt_op rt_op =
  Lb.set_pending lb (Lin.Mutate rt_op);
  let res = Mt.mutate mt mt_op in
  let rt = Lb.take_rt_outcome lb in
  Alcotest.(check bool)
    (Printf.sprintf "linearized: %s" (T.op_to_string mt_op))
    true (rt <> None);
  Alcotest.(check bool)
    (Printf.sprintf "equivalent outcome: %s" (T.op_to_string mt_op))
    true
    (T.outcome_equivalent (T.Mutated res) (Option.get rt));
  res

let retrieve lb mt key =
  Lb.set_pending lb (Lin.Read (T.Retrieve key));
  let row = Mt.retrieve mt key in
  let rt = Option.get (Lb.take_rt_outcome lb) in
  Alcotest.(check bool) "retrieve equivalent" true
    (T.outcome_equivalent (T.Row row) rt);
  row

let query lb mt filter =
  Lb.set_pending lb (Lin.Read (T.Query_atomic filter));
  let rows = Mt.query_atomic mt filter in
  let rt = Option.get (Lb.take_rt_outcome lb) in
  Alcotest.(check bool) "query equivalent" true
    (T.outcome_equivalent (T.Rows rows) rt);
  rows

let same op = (op, op)

let test_full_migration_with_ops () =
  let lb = Lb.create () in
  let mt = Mt.create (Lb.ops lb) in
  (* USE_OLD *)
  let m1, r1 = same (T.Insert { key = k "P" "a"; props = props "1" }) in
  let e_mt = ok_etag (mutate lb mt m1 r1) in
  let e_rt =
    match Rt.retrieve (Lb.rt lb) (k "P" "a") with
    | Some r -> r.T.etag
    | None -> Alcotest.fail "rt row"
  in
  (* overlay: conditional update using the pair of observed etags *)
  Lb.set_phase lb Phase.Prefer_old;
  let e_mt2 =
    ok_etag
      (mutate lb mt
         (T.Replace { key = k "P" "a"; etag = e_mt; props = props "2" })
         (T.Replace { key = k "P" "a"; etag = e_rt; props = props "2" }))
  in
  ignore e_mt2;
  (* stale etags fail on both sides *)
  (match
     mutate lb mt
       (T.Replace { key = k "P" "a"; etag = e_mt; props = props "3" })
       (T.Replace { key = k "P" "a"; etag = e_rt; props = props "3" })
   with
   | Error T.Precondition_failed -> ()
   | _ -> Alcotest.fail "stale replace must fail");
  (* insert another row, delete it (tombstone), check reads *)
  let m2, r2 = same (T.Insert { key = k "P" "b"; props = props "9" }) in
  ignore (ok_etag (mutate lb mt m2 r2));
  let m3, r3 = same (T.Delete { key = k "P" "b"; etag = None }) in
  (match mutate lb mt m3 r3 with
   | Ok { T.new_etag = None } -> ()
   | _ -> Alcotest.fail "delete should succeed");
  Alcotest.(check bool) "deleted row invisible" true
    (retrieve lb mt (k "P" "b") = None);
  (* run the migration to completion *)
  Chaintable.Migrator.run
    { Chaintable.Migrator.backend = Lb.ops lb; advance = Lb.advance lb };
  Alcotest.(check bool) "reaches USE_NEW" true (Lb.phase lb = Phase.Use_new);
  Alcotest.(check int) "old table emptied" 0 (Rt.size (Lb.old_table lb));
  Alcotest.(check int) "no tombstones left" 1 (Rt.size (Lb.new_table lb));
  (* post-migration behavior *)
  let rows = query lb mt F0.True in
  Alcotest.(check int) "one live row" 1 (List.length rows);
  (match retrieve lb mt (k "P" "a") with
   | Some row -> Alcotest.(check string) "value survived" "2" (List.assoc "v" row.T.props)
   | None -> Alcotest.fail "row lost by migration")

let test_migration_preserves_held_etags () =
  (* An etag observed before migration must keep working afterwards
     (virtual etags). *)
  let lb = Lb.create () in
  let mt = Mt.create (Lb.ops lb) in
  let m1, r1 = same (T.Insert { key = k "P" "a"; props = props "1" }) in
  let e_mt = ok_etag (mutate lb mt m1 r1) in
  let e_rt = (Option.get (Rt.retrieve (Lb.rt lb) (k "P" "a"))).T.etag in
  Chaintable.Migrator.run
    { Chaintable.Migrator.backend = Lb.ops lb; advance = Lb.advance lb };
  match
    mutate lb mt
      (T.Replace { key = k "P" "a"; etag = e_mt; props = props "2" })
      (T.Replace { key = k "P" "a"; etag = e_rt; props = props "2" })
  with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "pre-migration etag rejected after migration: %s"
      (T.op_error_to_string e)

let test_streamed_query_post_migration () =
  let lb = Lb.create () in
  let mt = Mt.create (Lb.ops lb) in
  List.iter
    (fun (rk, v) ->
      let op, op' = same (T.Insert { key = k "P" rk; props = props v }) in
      ignore (ok_etag (mutate lb mt op op')))
    [ ("a", "1"); ("b", "2"); ("c", "1") ];
  Chaintable.Migrator.run
    { Chaintable.Migrator.backend = Lb.ops lb; advance = Lb.advance lb };
  let stream = Mt.query_streamed mt (F0.Compare (F0.Prop "v", F0.Eq, "1")) in
  let rows = Mt.stream_to_list stream in
  Alcotest.(check (list string)) "filtered stream in key order"
    [ "P/a"; "P/c" ]
    (List.map (fun r -> T.key_to_string r.T.key) rows)

let test_skip_prefer_old_loses_rows () =
  let lb = Lb.create () in
  let mt = Mt.create (Lb.ops lb) in
  let op, op' = same (T.Insert { key = k "P" "a"; props = props "1" }) in
  ignore (ok_etag (mutate lb mt op op'));
  Chaintable.Migrator.run
    ~bugs:(Bug_flags.with_bug "MigrateSkipPreferOld")
    { Chaintable.Migrator.backend = Lb.ops lb; advance = Lb.advance lb };
  (* The row is gone from the virtual table but the reference table still
     has it: the retrieve comparison must now diverge. *)
  Lb.set_pending lb (Lin.Read (T.Retrieve (k "P" "a")));
  let row = Mt.retrieve mt (k "P" "a") in
  let rt = Option.get (Lb.take_rt_outcome lb) in
  Alcotest.(check bool) "divergence detected" false
    (T.outcome_equivalent (T.Row row) rt)

(* --- Spec_check ----------------------------------------------------------- *)

let make_history_table () =
  (* key a: v=1 at t=1, v=2 at t=10; key b: v=1 at t=1, deleted at t=10. *)
  let t = Rt.create () in
  let e_a = ok_etag (Rt.execute ~at:1 t (T.Insert { key = k "P" "a"; props = props "1" })) in
  let e_b = ok_etag (Rt.execute ~at:1 t (T.Insert { key = k "P" "b"; props = props "1" })) in
  ignore (Rt.execute ~at:10 t (T.Replace { key = k "P" "a"; etag = e_a; props = props "2" }));
  ignore (Rt.execute ~at:10 t (T.Delete { key = k "P" "b"; etag = Some e_b }));
  t

let emission rk v at =
  { Chaintable.Spec_check.row = { T.key = k "P" rk; props = props v; etag = 0 }; at }

let check_stream rt ~started_at ~finished_at emissions =
  Chaintable.Spec_check.check_stream ~rt ~started_at ~finished_at
    ~filter:F0.True ~emissions

let test_spec_valid_stream () =
  let rt = make_history_table () in
  (* Stream spanning the change: may see old or new values. *)
  Alcotest.(check bool) "old values ok" true
    (check_stream rt ~started_at:5 ~finished_at:8
       [ emission "a" "1" 6; emission "b" "1" 7 ]
     = Ok ());
  Alcotest.(check bool) "new value + skip deleted ok" true
    (check_stream rt ~started_at:5 ~finished_at:15 [ emission "a" "2" 12 ] = Ok ())

let test_spec_rejects_stale_emission () =
  let rt = make_history_table () in
  (* Stream started after the update: v=1 is no longer observable. *)
  Alcotest.(check bool) "stale row rejected" true
    (check_stream rt ~started_at:11 ~finished_at:15 [ emission "a" "1" 12 ]
     <> Ok ())

let test_spec_rejects_missed_row () =
  let rt = make_history_table () in
  (* Key a exists continuously; a stream that never emits it is wrong. *)
  Alcotest.(check bool) "missed row rejected" true
    (check_stream rt ~started_at:2 ~finished_at:8 [ emission "b" "1" 6 ] <> Ok ())

let test_spec_rejects_unordered () =
  let rt = make_history_table () in
  Alcotest.(check bool) "unordered rejected" true
    (check_stream rt ~started_at:5 ~finished_at:8
       [ emission "b" "1" 6; emission "a" "1" 7 ]
     <> Ok ())

let test_spec_allows_skip_of_deleted () =
  let rt = make_history_table () in
  (* Key b absent from t=10 on: a stream reading past it later may skip it. *)
  Alcotest.(check bool) "skip of deleted ok" true
    (check_stream rt ~started_at:5 ~finished_at:20 [ emission "a" "2" 18 ] = Ok ())

(* --- Property test: random synchronous histories ------------------------- *)

let op_gen =
  let open QCheck.Gen in
  let key_g = map2 (fun pk rk -> k pk rk)
      (oneofl [ "P0"; "P1" ]) (oneofl [ "a"; "b"; "c" ]) in
  let v_g = map (fun i -> props (string_of_int i)) (int_range 0 5) in
  frequency
    [
      (3, map2 (fun key props -> `Insert (key, props)) key_g v_g);
      (3, map2 (fun key props -> `Upsert (key, props)) key_g v_g);
      (2, map2 (fun key props -> `Replace_current (key, props)) key_g v_g);
      (2, map2 (fun key props -> `Merge_current (key, props)) key_g v_g);
      (2, map (fun key -> `Delete_uncond key) key_g);
      (1, map (fun key -> `Delete_current key) key_g);
      (2, map (fun key -> `Retrieve key) key_g);
      (1, return `Query);
      (1, return `Advance);
      (1, map2 (fun rks v -> `Batch (rks, v))
           (list_size (2 -- 3) (oneofl [ "a"; "b"; "c"; "d" ]))
           (int_range 0 5));
    ]

let prop_mt_equals_rt =
  QCheck.Test.make ~name:"migrating table ≡ reference table (synchronous)"
    ~count:150
    (QCheck.make QCheck.Gen.(list_size (5 -- 40) op_gen))
    (fun ops ->
      let lb = Lb.create () in
      let mt = Mt.create (Lb.ops lb) in
      (* (mt_etag, rt_etag) pairs per key, newest first *)
      let pairs : (T.key * (int * int)) list ref = ref [] in
      let current key = List.assoc_opt key !pairs in
      let run mt_op rt_op =
        Lb.set_pending lb (Lin.Mutate rt_op);
        let res = Mt.mutate mt mt_op in
        match Lb.take_rt_outcome lb with
        | None -> false
        | Some rt ->
          let equiv = T.outcome_equivalent (T.Mutated res) rt in
          (match (res, rt) with
           | Ok { T.new_etag = Some m }, T.Mutated (Ok { T.new_etag = Some r }) ->
             pairs := (T.op_key mt_op, (m, r))
                      :: List.remove_assoc (T.op_key mt_op) !pairs
           | _ -> ());
          equiv
      in
      let step = function
        | `Insert (key, props) ->
          run (T.Insert { key; props }) (T.Insert { key; props })
        | `Upsert (key, props) ->
          run (T.Insert_or_replace { key; props })
            (T.Insert_or_replace { key; props })
        | `Replace_current (key, props) -> begin
          match current key with
          | Some (m, r) ->
            run (T.Replace { key; etag = m; props })
              (T.Replace { key; etag = r; props })
          | None -> true
        end
        | `Merge_current (key, props) -> begin
          match current key with
          | Some (m, r) ->
            run (T.Merge { key; etag = m; props })
              (T.Merge { key; etag = r; props })
          | None -> true
        end
        | `Delete_uncond key ->
          run (T.Delete { key; etag = None }) (T.Delete { key; etag = None })
        | `Delete_current key -> begin
          match current key with
          | Some (m, r) ->
            run (T.Delete { key; etag = Some m })
              (T.Delete { key; etag = Some r })
          | None -> true
        end
        | `Retrieve key ->
          Lb.set_pending lb (Lin.Read (T.Retrieve key));
          let row = Mt.retrieve mt key in
          (match Lb.take_rt_outcome lb with
           | Some rt -> T.outcome_equivalent (T.Row row) rt
           | None -> false)
        | `Query ->
          Lb.set_pending lb (Lin.Read (T.Query_atomic F0.True));
          let rows = Mt.query_atomic mt F0.True in
          (match Lb.take_rt_outcome lb with
           | Some rt -> T.outcome_equivalent (T.Rows rows) rt
           | None -> false)
        | `Batch (rks, v) -> begin
          let rks = List.sort_uniq compare rks in
          let ops =
            List.map
              (fun rk ->
                T.Insert_or_replace
                  { key = k "P0" rk; props = props (string_of_int v) })
              rks
          in
          let res = Mt.mutate_batch mt ops in
          ignore (Lb.take_rt_outcome lb);
          match (Lb.phase lb, List.length ops) with
          | (Phase.Prefer_old | Phase.Prefer_new), n when n > 1 ->
            (* documented restriction: nothing may have been applied *)
            (match res with Error (T.Batch_rejected _) -> true | _ -> false)
          | _ ->
            let rt_res = Rt.execute_batch (Lb.rt lb) ops in
            (match (res, rt_res) with
             | Ok a, Ok b -> List.length a = List.length b
             | Error a, Error b -> a = b
             | _ -> false)
        end
        | `Advance -> begin
          match Phase.next (Lb.phase lb) with
          | Some Phase.Prefer_new ->
            (* Entering PREFER_NEW requires the copy pass to be complete. *)
            Chaintable.Migrator.(
              run { backend = Lb.ops lb; advance = Lb.advance lb });
            true
          | Some p ->
            Lb.advance lb p;
            true
          | None -> true
        end
      in
      List.for_all step ops)

let suite =
  [
    Alcotest.test_case "rt: insert + conflict" `Quick test_insert_and_conflict;
    Alcotest.test_case "rt: replace etag semantics" `Quick
      test_replace_etag_semantics;
    Alcotest.test_case "rt: merge keeps props" `Quick test_merge_keeps_other_props;
    Alcotest.test_case "rt: delete semantics" `Quick test_delete_semantics;
    Alcotest.test_case "rt: insert-or variants" `Quick test_insert_or_variants;
    Alcotest.test_case "rt: batch atomicity" `Quick test_batch_atomicity;
    Alcotest.test_case "rt: batch cross-partition" `Quick
      test_batch_rejects_cross_partition;
    Alcotest.test_case "rt: batch duplicate key" `Quick
      test_batch_rejects_duplicate_key;
    Alcotest.test_case "rt: batch success" `Quick test_batch_success_applies_all;
    Alcotest.test_case "rt: query + peek" `Quick test_query_and_peek;
    Alcotest.test_case "rt: history" `Quick test_history_records_versions;
    Alcotest.test_case "filter semantics" `Quick test_filter_semantics;
    Alcotest.test_case "internal: vetag + strip" `Quick test_internal_vetag_strip;
    Alcotest.test_case "internal: tombstone" `Quick test_internal_tombstone;
    Alcotest.test_case "phases" `Quick test_phase_order_and_compat;
    Alcotest.test_case "mt: full migration with ops" `Quick
      test_full_migration_with_ops;
    Alcotest.test_case "mt: held etags survive migration" `Quick
      test_migration_preserves_held_etags;
    Alcotest.test_case "mt: streamed query post-migration" `Quick
      test_streamed_query_post_migration;
    Alcotest.test_case "mt: skip-prefer-old loses rows" `Quick
      test_skip_prefer_old_loses_rows;
    Alcotest.test_case "spec: valid stream" `Quick test_spec_valid_stream;
    Alcotest.test_case "spec: stale emission" `Quick
      test_spec_rejects_stale_emission;
    Alcotest.test_case "spec: missed row" `Quick test_spec_rejects_missed_row;
    Alcotest.test_case "spec: unordered" `Quick test_spec_rejects_unordered;
    Alcotest.test_case "spec: skip of deleted" `Quick
      test_spec_allows_skip_of_deleted;
    QCheck_alcotest.to_alcotest prop_mt_equals_rt;
  ]

(* --- Batches through the migrating table -------------------------------- *)

(* For batches the reference outcome is computed by applying the same
   batch directly to the reference table (the local backend is race-free,
   so no linearization plumbing is needed). *)
let batch lb mt ops rt_ops =
  let res = Mt.mutate_batch mt ops in
  ignore (Lb.take_rt_outcome lb);
  let rt_res = Rt.execute_batch (Lb.rt lb) rt_ops in
  (res, rt_res)

let test_batch_use_old_passthrough () =
  let lb = Lb.create () in
  let mt = Mt.create (Lb.ops lb) in
  let ops =
    [
      T.Insert { key = k "P" "a"; props = props "1" };
      T.Insert { key = k "P" "b"; props = props "2" };
    ]
  in
  (match batch lb mt ops ops with
   | Ok rs, Ok rs' ->
     Alcotest.(check int) "two results" 2 (List.length rs);
     Alcotest.(check int) "rt two results" 2 (List.length rs')
   | _ -> Alcotest.fail "batch should succeed in USE_OLD");
  (* atomicity: second op conflicts, first must not apply *)
  let ops2 =
    [
      T.Insert { key = k "P" "c"; props = props "3" };
      T.Insert { key = k "P" "a"; props = props "9" };
    ]
  in
  (match batch lb mt ops2 ops2 with
   | Error T.Conflict, Error T.Conflict -> ()
   | _ -> Alcotest.fail "conflicting batch must fail on both");
  Lb.set_pending lb (Lin.Read (T.Retrieve (k "P" "c")));
  Alcotest.(check bool) "c not inserted" true (Mt.retrieve mt (k "P" "c") = None)

let test_batch_rejected_during_overlay () =
  let lb = Lb.create () in
  let mt = Mt.create (Lb.ops lb) in
  Lb.set_phase lb Phase.Prefer_old;
  match
    Mt.mutate_batch mt
      [
        T.Insert { key = k "P" "a"; props = props "1" };
        T.Insert { key = k "P" "b"; props = props "2" };
      ]
  with
  | Error (T.Batch_rejected _) -> ()
  | _ -> Alcotest.fail "multi-op batch must be rejected mid-migration"

let test_batch_new_only_translates_etags () =
  let lb = Lb.create () in
  let mt = Mt.create (Lb.ops lb) in
  (* Insert pre-migration so the row carries a virtual etag afterwards. *)
  let m1, r1 = same (T.Insert { key = k "P" "a"; props = props "1" }) in
  let e_mt = ok_etag (mutate lb mt m1 r1) in
  Chaintable.Migrator.run
    { Chaintable.Migrator.backend = Lb.ops lb; advance = Lb.advance lb };
  (* Conditional replace via a batch using the pre-migration virtual etag,
     bundled with an insert. *)
  let ops =
    [
      T.Replace { key = k "P" "a"; etag = e_mt; props = props "2" };
      T.Insert { key = k "P" "b"; props = props "3" };
    ]
  in
  (match Mt.mutate_batch mt ops with
   | Ok rs -> Alcotest.(check int) "two results" 2 (List.length rs)
   | Error e ->
     Alcotest.failf "batch failed post-migration: %s" (T.op_error_to_string e));
  (* Stale etag in a batch fails and applies nothing. *)
  (match
     Mt.mutate_batch mt
       [
         T.Replace { key = k "P" "a"; etag = e_mt; props = props "9" };
         T.Delete { key = k "P" "b"; etag = None };
       ]
   with
   | Error T.Precondition_failed -> ()
   | _ -> Alcotest.fail "stale conditional batch must fail");
  Lb.set_pending lb (Lin.Read (T.Retrieve (k "P" "b")));
  Alcotest.(check bool) "b survived the failed batch" true
    (Mt.retrieve mt (k "P" "b") <> None)

let test_batch_singleton_any_phase () =
  let lb = Lb.create () in
  let mt = Mt.create (Lb.ops lb) in
  Lb.set_phase lb Phase.Prefer_old;
  Lb.set_pending lb (Lin.Mutate (T.Insert { key = k "P" "a"; props = props "1" }));
  match Mt.mutate_batch mt [ T.Insert { key = k "P" "a"; props = props "1" } ] with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "singleton batch must work during migration"

let suite =
  suite
  @ [
      Alcotest.test_case "mt batch: use_old passthrough + atomicity" `Quick
        test_batch_use_old_passthrough;
      Alcotest.test_case "mt batch: rejected during overlay" `Quick
        test_batch_rejected_during_overlay;
      Alcotest.test_case "mt batch: etag translation post-migration" `Quick
        test_batch_new_only_translates_etags;
      Alcotest.test_case "mt batch: singleton in any phase" `Quick
        test_batch_singleton_any_phase;
    ]
