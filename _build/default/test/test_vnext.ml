(* vNext extent management: unit tests for the real manager's data
   structures and logic, plus end-to-end bug finding (paper §3). *)

module E = Psharp.Engine
module Error = Psharp.Error
module Ec = Vnext.Extent_center
module Enm = Vnext.Extent_node_map
module Mgr = Vnext.Extent_manager

(* --- ExtentCenter --- *)

let test_center_sync_replaces () =
  let c = Ec.create () in
  Ec.apply_sync c ~en:1 ~extents:[ 10; 11 ];
  Alcotest.(check (list int)) "holdings" [ 10; 11 ] (Ec.extents_of c ~en:1);
  Ec.apply_sync c ~en:1 ~extents:[ 11; 12 ];
  Alcotest.(check (list int)) "replaced" [ 11; 12 ] (Ec.extents_of c ~en:1);
  Alcotest.(check int) "10 dropped" 0 (Ec.replica_count c ~extent:10)

let test_center_replica_count () =
  let c = Ec.create () in
  Ec.apply_sync c ~en:1 ~extents:[ 5 ];
  Ec.apply_sync c ~en:2 ~extents:[ 5 ];
  Ec.apply_sync c ~en:3 ~extents:[ 5; 6 ];
  Alcotest.(check int) "three replicas" 3 (Ec.replica_count c ~extent:5);
  Alcotest.(check int) "one replica" 1 (Ec.replica_count c ~extent:6);
  Alcotest.(check (list int)) "holders sorted" [ 1; 2; 3 ] (Ec.holders c ~extent:5)

let test_center_remove_en () =
  let c = Ec.create () in
  Ec.apply_sync c ~en:1 ~extents:[ 5 ];
  Ec.apply_sync c ~en:2 ~extents:[ 5 ];
  Ec.remove_en c ~en:1;
  Alcotest.(check int) "one left" 1 (Ec.replica_count c ~extent:5);
  Alcotest.(check bool) "holds false" false (Ec.holds c ~en:1 ~extent:5);
  Ec.remove_en c ~en:2;
  Alcotest.(check (list int)) "extent disappears entirely" [] (Ec.extents c)

let test_center_add_idempotent () =
  let c = Ec.create () in
  Ec.add c ~en:1 ~extent:5;
  Ec.add c ~en:1 ~extent:5;
  Alcotest.(check int) "set semantics" 1 (Ec.replica_count c ~extent:5)

(* --- ExtentNodeMap --- *)

let test_node_map_expiry_after_misses () =
  let m = Enm.create ~misses_before_expiry:3 in
  Enm.heartbeat m ~en:1;
  Alcotest.(check (list int)) "sweep 1" [] (Enm.sweep m);
  Alcotest.(check (list int)) "sweep 2" [] (Enm.sweep m);
  Alcotest.(check (list int)) "sweep 3 expires" [ 1 ] (Enm.sweep m);
  Alcotest.(check bool) "gone" false (Enm.mem m ~en:1)

let test_node_map_heartbeat_resets () =
  let m = Enm.create ~misses_before_expiry:2 in
  Enm.heartbeat m ~en:1;
  Alcotest.(check (list int)) "sweep" [] (Enm.sweep m);
  Enm.heartbeat m ~en:1;
  Alcotest.(check (list int)) "reset, survives" [] (Enm.sweep m);
  Alcotest.(check (list int)) "expires eventually" [ 1 ] (Enm.sweep m)

let test_node_map_multiple_nodes () =
  let m = Enm.create ~misses_before_expiry:2 in
  Enm.heartbeat m ~en:1;
  Enm.heartbeat m ~en:2;
  ignore (Enm.sweep m);
  Enm.heartbeat m ~en:2;
  Alcotest.(check (list int)) "only silent node expires" [ 1 ] (Enm.sweep m);
  Alcotest.(check (list int)) "live nodes" [ 2 ] (Enm.live m)

(* --- Extent manager logic (with a recording network engine) --- *)

let make_mgr ?(bugs = Vnext.Bug_flags.none) () =
  let sent = ref [] in
  let net =
    {
      Mgr.send_repair_request =
        (fun ~en ~extent ~source -> sent := (en, extent, source) :: !sent);
    }
  in
  let mgr =
    Mgr.create { Mgr.replica_target = 3; heartbeat_misses = 3; bugs } net
  in
  (mgr, sent)

let test_mgr_repairs_missing_replicas () =
  let mgr, sent = make_mgr () in
  Mgr.process_message mgr (Mgr.Heartbeat { en = 0 });
  Mgr.process_message mgr (Mgr.Heartbeat { en = 1 });
  Mgr.process_message mgr (Mgr.Heartbeat { en = 2 });
  Mgr.process_message mgr (Mgr.Sync_report { en = 0; extents = [ 7 ] });
  Alcotest.(check int) "one request" 1 (Mgr.run_repair_loop mgr);
  (match !sent with
   | [ (en, 7, 0) ] ->
     Alcotest.(check bool) "destination is a non-holder" true (en = 1 || en = 2)
   | _ -> Alcotest.fail "expected one repair request for extent 7 from EN0")

let test_mgr_no_repair_at_target () =
  let mgr, _sent = make_mgr () in
  List.iter (fun en -> Mgr.process_message mgr (Mgr.Heartbeat { en })) [ 0; 1; 2 ];
  List.iter
    (fun en -> Mgr.process_message mgr (Mgr.Sync_report { en; extents = [ 7 ] }))
    [ 0; 1; 2 ];
  Alcotest.(check int) "no requests" 0 (Mgr.run_repair_loop mgr)

let test_mgr_fixed_drops_unknown_sync () =
  let mgr, _ = make_mgr () in
  (* EN 5 never heartbeated: its sync must be ignored. *)
  Mgr.process_message mgr (Mgr.Sync_report { en = 5; extents = [ 7 ] });
  Alcotest.(check int) "not recorded" 0 (Mgr.replica_count mgr ~extent:7)

let test_mgr_buggy_accepts_unknown_sync () =
  let mgr, _ = make_mgr ~bugs:Vnext.Bug_flags.liveness_bug () in
  Mgr.process_message mgr (Mgr.Sync_report { en = 5; extents = [ 7 ] });
  Alcotest.(check int) "recorded despite unknown node" 1
    (Mgr.replica_count mgr ~extent:7)

let test_mgr_expiration_cleans_center () =
  let mgr, _ = make_mgr () in
  Mgr.process_message mgr (Mgr.Heartbeat { en = 0 });
  Mgr.process_message mgr (Mgr.Sync_report { en = 0; extents = [ 7 ] });
  Alcotest.(check (list int)) "sweep 1" [] (Mgr.run_expiration_loop mgr);
  Alcotest.(check (list int)) "sweep 2" [] (Mgr.run_expiration_loop mgr);
  Alcotest.(check (list int)) "sweep 3 expires" [ 0 ] (Mgr.run_expiration_loop mgr);
  Alcotest.(check int) "records deleted" 0 (Mgr.replica_count mgr ~extent:7)

let test_mgr_paper_interleaving () =
  (* The exact §3.6 sequence, replayed against the real component:
     (i-ii) EN0 expires, (iii) replica count drops, (iv) stale sync from
     EN0 arrives, (v) buggy manager resurrects the count. *)
  let play bugs =
    let mgr, sent = make_mgr ~bugs () in
    List.iter (fun en -> Mgr.process_message mgr (Mgr.Heartbeat { en })) [ 0; 1; 2 ];
    List.iter
      (fun en -> Mgr.process_message mgr (Mgr.Sync_report { en; extents = [ 7 ] }))
      [ 0; 1; 2 ];
    (* EN0 dies silently; EN1/EN2 keep heartbeating through 3 sweeps. *)
    for _ = 1 to 3 do
      Mgr.process_message mgr (Mgr.Heartbeat { en = 1 });
      Mgr.process_message mgr (Mgr.Heartbeat { en = 2 });
      ignore (Mgr.run_expiration_loop mgr)
    done;
    Alcotest.(check int) "replica count dropped" 2 (Mgr.replica_count mgr ~extent:7);
    (* a fresh empty EN3 is launched and registers *)
    Mgr.process_message mgr (Mgr.Heartbeat { en = 3 });
    (* (iv) delayed sync report from the dead EN0 *)
    Mgr.process_message mgr (Mgr.Sync_report { en = 0; extents = [ 7 ] });
    (Mgr.replica_count mgr ~extent:7, Mgr.run_repair_loop mgr, !sent)
  in
  let count_fixed, repairs_fixed, _ = play Vnext.Bug_flags.none in
  Alcotest.(check int) "fixed: still 2" 2 count_fixed;
  Alcotest.(check int) "fixed: repair scheduled" 1 repairs_fixed;
  let count_buggy, repairs_buggy, _ = play Vnext.Bug_flags.liveness_bug in
  Alcotest.(check int) "buggy: resurrected to 3" 3 count_buggy;
  Alcotest.(check int) "buggy: repair never scheduled" 0 repairs_buggy

(* --- End-to-end systematic testing --- *)

let config =
  {
    E.default_config with
    max_executions = 4_000;
    max_steps = 3_000;
    seed = 0L;
  }

let run_scenario ?(config = config) ~bugs scenario =
  E.run
    ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
    config
    (Vnext.Testing_driver.test ~bugs ~scenario ())

let test_engine_finds_liveness_bug () =
  match run_scenario ~bugs:Vnext.Bug_flags.liveness_bug
          Vnext.Testing_driver.Fail_and_repair with
  | E.Bug_found (report, _) ->
    (match report.Error.kind with
     | Error.Liveness_violation { monitor; _ } ->
       Alcotest.(check string) "repair monitor" "RepairMonitor" monitor
     | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k))
  | E.No_bug _ -> Alcotest.fail "ExtentNodeLivenessViolation not found"

let test_fixed_repair_clean () =
  match
    run_scenario
      ~config:{ config with max_executions = 300 }
      ~bugs:Vnext.Bug_flags.none Vnext.Testing_driver.Fail_and_repair
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let test_fixed_initial_replication_clean () =
  match
    run_scenario
      ~config:{ config with max_executions = 300 }
      ~bugs:Vnext.Bug_flags.none Vnext.Testing_driver.Initial_replication
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let test_liveness_bug_replay () =
  match run_scenario ~bugs:Vnext.Bug_flags.liveness_bug
          Vnext.Testing_driver.Fail_and_repair with
  | E.Bug_found (report, _) ->
    let result =
      E.replay
        ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
        config report.Error.trace
        (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.liveness_bug
           ~scenario:Vnext.Testing_driver.Fail_and_repair ())
    in
    (match result.Psharp.Runtime.bug with
     | Some (Error.Liveness_violation _) -> ()
     | _ -> Alcotest.fail "replay did not reproduce the liveness bug")
  | E.No_bug _ -> Alcotest.fail "bug not found"

let suite =
  [
    Alcotest.test_case "center: sync replaces holdings" `Quick
      test_center_sync_replaces;
    Alcotest.test_case "center: replica counting" `Quick
      test_center_replica_count;
    Alcotest.test_case "center: remove node" `Quick test_center_remove_en;
    Alcotest.test_case "center: add idempotent" `Quick test_center_add_idempotent;
    Alcotest.test_case "node map: expiry after misses" `Quick
      test_node_map_expiry_after_misses;
    Alcotest.test_case "node map: heartbeat resets" `Quick
      test_node_map_heartbeat_resets;
    Alcotest.test_case "node map: multiple nodes" `Quick
      test_node_map_multiple_nodes;
    Alcotest.test_case "mgr: repairs missing replicas" `Quick
      test_mgr_repairs_missing_replicas;
    Alcotest.test_case "mgr: no repair at target" `Quick
      test_mgr_no_repair_at_target;
    Alcotest.test_case "mgr: fixed drops unknown sync" `Quick
      test_mgr_fixed_drops_unknown_sync;
    Alcotest.test_case "mgr: buggy accepts unknown sync" `Quick
      test_mgr_buggy_accepts_unknown_sync;
    Alcotest.test_case "mgr: expiration cleans center" `Quick
      test_mgr_expiration_cleans_center;
    Alcotest.test_case "mgr: paper §3.6 interleaving" `Quick
      test_mgr_paper_interleaving;
    Alcotest.test_case "engine finds ExtentNodeLivenessViolation" `Slow
      test_engine_finds_liveness_bug;
    Alcotest.test_case "fixed repair scenario clean" `Slow
      test_fixed_repair_clean;
    Alcotest.test_case "fixed initial replication clean" `Slow
      test_fixed_initial_replication_clean;
    Alcotest.test_case "liveness bug trace replays" `Slow
      test_liveness_bug_replay;
  ]

(* --- Multi-extent scenarios (the stress tests of §3 use many extents) --- *)

let test_multi_extent_initial_replication () =
  match
    run_scenario
      ~config:{ config with max_executions = 200; max_steps = 4_000 }
      ~bugs:Vnext.Bug_flags.none Vnext.Testing_driver.Initial_replication
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let run_multi ?(config = config) ~bugs scenario =
  E.run
    ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
    config
    (Vnext.Testing_driver.test ~bugs ~n_extents:3 ~scenario ())

let test_multi_extent_fixed_clean () =
  match
    run_multi
      ~config:{ config with max_executions = 150; max_steps = 5_000 }
      ~bugs:Vnext.Bug_flags.none Vnext.Testing_driver.Fail_and_repair
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "multi-extent false positive: %s"
      (Error.kind_to_string r.Error.kind)

let test_multi_extent_bug_found () =
  match
    run_multi
      ~config:{ config with max_executions = 4_000; max_steps = 3_000 }
      ~bugs:Vnext.Bug_flags.liveness_bug Vnext.Testing_driver.Fail_and_repair
  with
  | E.Bug_found (r, _) -> begin
    match r.Error.kind with
    | Error.Liveness_violation _ -> ()
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  end
  | E.No_bug _ -> Alcotest.fail "liveness bug not found with 3 extents"

let suite =
  suite
  @ [
      Alcotest.test_case "multi-extent initial replication" `Slow
        test_multi_extent_initial_replication;
      Alcotest.test_case "multi-extent fixed clean" `Slow
        test_multi_extent_fixed_clean;
      Alcotest.test_case "multi-extent bug found" `Slow
        test_multi_extent_bug_found;
    ]
