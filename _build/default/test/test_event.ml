(* Event naming and printer registration. *)

module Event = Psharp.Event

type Event.t += Sample_event of int | Other_event

let test_name_strips_path () =
  Alcotest.(check string) "bare constructor name" "Sample_event"
    (Event.name (Sample_event 3));
  Alcotest.(check string) "builtin" "Halt_event" (Event.name Event.Halt_event)

let test_default_to_string () =
  Alcotest.(check string) "falls back to name" "Other_event"
    (Event.to_string Other_event)

let test_registered_printer_wins () =
  Event.register_printer (function
    | Sample_event i -> Some (Printf.sprintf "Sample(%d)" i)
    | _ -> None);
  Alcotest.(check string) "printer used" "Sample(7)"
    (Event.to_string (Sample_event 7));
  Alcotest.(check string) "other unaffected" "Other_event"
    (Event.to_string Other_event)

let suite =
  [
    Alcotest.test_case "name strips module path" `Quick test_name_strips_path;
    Alcotest.test_case "default to_string" `Quick test_default_to_string;
    Alcotest.test_case "registered printer wins" `Quick
      test_registered_printer_wins;
  ]
