(* Engine-driven MigratingTable harness tests: the correct protocol is
   clean under systematic exploration, and each Table 2 bug is found. *)

module E = Psharp.Engine
module Error = Psharp.Error

let config =
  {
    E.default_config with
    max_executions = 10_000;
    max_steps = 4_000;
    seed = 1L;
  }

let test_correct_protocol_clean () =
  match
    E.run { config with max_executions = 800 } (Chaintable.Harness.test ())
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let test_correct_protocol_clean_pct () =
  match
    E.run
      { config with
        max_executions = 800;
        strategy = E.Pct { change_points = 2 } }
      (Chaintable.Harness.test ())
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive under pct: %s"
      (Error.kind_to_string r.Error.kind)

(* Each bug must be found by random search (with its custom case as
   fallback, as in the paper), except QueryStreamedBackUpNewStream, which
   random misses and the priority-based scheduler catches — the paper's
   Table 2 distinction. *)
let find_bug ?(strategy = E.Random) ?(custom = false) name =
  E.run { config with strategy }
    (Chaintable.Harness.test_for_bug ~custom name)

let test_bug_found name () =
  match find_bug name with
  | E.Bug_found _ -> ()
  | E.No_bug _ -> Alcotest.failf "%s not found" name

let test_backup_new_stream_needs_pct () =
  (match
     E.run
       { config with max_executions = 3_000 }
       (Chaintable.Harness.test_for_bug "QueryStreamedBackUpNewStream")
   with
   | E.No_bug _ -> ()
   | E.Bug_found _ ->
     (* Not a failure per se, but the paper's distinction should hold for
        this seed/budget; flag it so we notice the workload drifted. *)
     Alcotest.fail
       "random unexpectedly found QueryStreamedBackUpNewStream quickly");
  match
    find_bug ~strategy:(E.Pct { change_points = 2 })
      "QueryStreamedBackUpNewStream"
  with
  | E.Bug_found _ -> ()
  | E.No_bug _ -> Alcotest.fail "pct did not find QueryStreamedBackUpNewStream"

let test_custom_cases_quick () =
  List.iter
    (fun name ->
      if Chaintable.Bug_flags.needs_custom_case name then
        match
          E.run { config with max_executions = 2_000 }
            (Chaintable.Harness.test_for_bug ~custom:true name)
        with
        | E.Bug_found _ -> ()
        | E.No_bug _ -> Alcotest.failf "custom case for %s failed" name)
    Chaintable.Bug_flags.names

let test_bug_trace_replays () =
  match find_bug "DeletePrimaryKey" with
  | E.Bug_found (report, _) ->
    let result =
      E.replay config report.Error.trace
        (Chaintable.Harness.test_for_bug "DeletePrimaryKey")
    in
    (match result.Psharp.Runtime.bug with
     | Some (Error.Assertion_failure _) -> ()
     | _ -> Alcotest.fail "replay did not reproduce DeletePrimaryKey")
  | E.No_bug _ -> Alcotest.fail "DeletePrimaryKey not found"

let found_by_random =
  [
    "QueryAtomicFilterShadowing"; "QueryStreamedLock";
    "DeleteNoLeaveTombstonesEtag"; "DeletePrimaryKey";
    "EnsurePartitionSwitchedFromPopulated"; "TombstoneOutputETag";
    "QueryStreamedFilterShadowing"; "MigrateSkipPreferOld";
    "MigrateSkipUseNewWithTombstones"; "InsertBehindMigrator";
  ]

let suite =
  Alcotest.test_case "correct protocol clean (random)" `Slow
    test_correct_protocol_clean
  :: Alcotest.test_case "correct protocol clean (pct)" `Slow
       test_correct_protocol_clean_pct
  :: Alcotest.test_case "BackUpNewStream needs pct" `Slow
       test_backup_new_stream_needs_pct
  :: Alcotest.test_case "custom cases trigger quickly" `Slow
       test_custom_cases_quick
  :: Alcotest.test_case "bug trace replays" `Slow test_bug_trace_replays
  :: List.map
       (fun name ->
         Alcotest.test_case (Printf.sprintf "finds %s" name) `Slow
           (test_bug_found name))
       found_by_random
