(* Core runtime semantics: machine lifecycle, FIFO delivery, nondet
   recording, halting, deadlock and liveness detection. *)

module R = Psharp.Runtime
module Event = Psharp.Event
module Error = Psharp.Error
module Trace = Psharp.Trace

type Event.t += Msg of int | Ping | Pong

let strategy ~seed =
  match (Psharp.Random_strategy.factory ~seed).Psharp.Strategy.fresh ~iteration:0 with
  | Some s -> s
  | None -> assert false

let rr_strategy () =
  match (Psharp.Rr_strategy.factory ()).Psharp.Strategy.fresh ~iteration:0 with
  | Some s -> s
  | None -> assert false

let config =
  { R.default_config with max_steps = 1_000; deadlock_is_bug = true }

let execute ?(cfg = config) ?(monitors = []) body =
  R.execute cfg (strategy ~seed:1L) ~monitors ~name:"Root" body

let test_clean_completion () =
  let result = execute (fun ctx -> ignore (R.self ctx)) in
  Alcotest.(check bool) "no bug" true (result.R.bug = None)

let test_fifo_per_sender () =
  (* One sender, one receiver: delivery order must match send order. *)
  let received = ref [] in
  let result =
    execute (fun ctx ->
        let receiver =
          R.create ctx ~name:"Receiver" (fun rctx ->
              for _ = 1 to 5 do
                match R.receive rctx with
                | Msg i -> received := i :: !received
                | _ -> ()
              done)
        in
        for i = 1 to 5 do
          R.send ctx receiver (Msg i)
        done)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4; 5 ]
    (List.rev !received)

let test_receive_where () =
  let got = ref (-1) in
  let result =
    execute (fun ctx ->
        let receiver =
          R.create ctx ~name:"Receiver" (fun rctx ->
              (match
                 R.receive_where rctx (function Msg i -> i > 2 | _ -> false)
               with
               | Msg i -> got := i
               | _ -> ());
              (* remaining events still delivered in order *)
              match R.receive rctx with
              | Msg i -> Alcotest.(check int) "skipped stays first" 1 i
              | _ -> ())
        in
        R.send ctx receiver (Msg 1);
        R.send ctx receiver (Msg 3))
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check int) "filtered receive" 3 !got

let test_halt_drops_messages () =
  let result =
    execute (fun ctx ->
        let dead = R.create ctx ~name:"Dead" (fun hctx -> R.halt hctx) in
        (* Give the scheduler a chance to start (and halt) the machine, then
           send — the send must be dropped silently. *)
        let _waiter =
          R.create ctx ~name:"Waiter" (fun wctx ->
              ignore (R.receive_where wctx (function
                | Pong -> true
                | _ -> false)))
        in
        R.send ctx dead (Msg 1))
  in
  (* waiter never gets Pong -> deadlock expected, not a crash *)
  match result.R.bug with
  | Some (Error.Deadlock _) -> ()
  | other ->
    Alcotest.failf "expected deadlock, got %s"
      (match other with
       | None -> "no bug"
       | Some k -> Error.kind_to_string k)

let test_deadlock_detection () =
  let result =
    execute (fun ctx -> ignore (R.receive ctx) (* root waits forever *))
  in
  match result.R.bug with
  | Some (Error.Deadlock { blocked }) ->
    Alcotest.(check bool) "root blocked" true
      (List.exists (fun s -> s = "Root(0)") blocked)
  | _ -> Alcotest.fail "expected deadlock"

let test_deadlock_opt_out () =
  let cfg = { config with R.deadlock_is_bug = false } in
  let result = execute ~cfg (fun ctx -> ignore (R.receive ctx)) in
  Alcotest.(check bool) "no bug when opted out" true (result.R.bug = None)

let test_machine_exception () =
  let result = execute (fun _ctx -> failwith "boom") in
  match result.R.bug with
  | Some (Error.Machine_exception { exn; _ }) ->
    Alcotest.(check bool) "exn mentions boom" true
      (String.length exn > 0)
  | _ -> Alcotest.fail "expected machine exception"

let test_assert_here () =
  let result = execute (fun ctx -> R.assert_here ctx false "bad invariant") in
  match result.R.bug with
  | Some (Error.Assertion_failure { message; _ }) ->
    Alcotest.(check string) "message" "bad invariant" message
  | _ -> Alcotest.fail "expected assertion failure"

let test_nondet_recorded () =
  let result =
    execute (fun ctx ->
        ignore (R.nondet ctx);
        ignore (R.nondet_int ctx 10))
  in
  let has_bool =
    List.exists
      (function Trace.Bool _ -> true | _ -> false)
      (Trace.to_list result.R.choices)
  and has_int =
    List.exists
      (function Trace.Int _ -> true | _ -> false)
      (Trace.to_list result.R.choices)
  in
  Alcotest.(check bool) "bool recorded" true has_bool;
  Alcotest.(check bool) "int recorded" true has_int

let test_choose_singleton_no_choice () =
  let result =
    execute (fun ctx -> Alcotest.(check int) "singleton" 5 (R.choose ctx [ 5 ]))
  in
  let ints =
    List.filter
      (function Trace.Int _ -> true | _ -> false)
      (Trace.to_list result.R.choices)
  in
  Alcotest.(check int) "no choice recorded for singleton" 0 (List.length ints)

let test_send_unless_pending_coalesces () =
  let count = ref 0 in
  let result =
    execute (fun ctx ->
        let receiver =
          R.create ctx ~name:"Receiver" (fun rctx ->
              let rec loop () =
                match R.receive rctx with
                | Ping ->
                  incr count;
                  loop ()
                | Pong -> ()
                | _ -> loop ()
              in
              loop ())
        in
        R.send_unless_pending ctx receiver Ping;
        R.send_unless_pending ctx receiver Ping;
        R.send_unless_pending ctx receiver Ping;
        R.send ctx receiver Pong)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check int) "coalesced to one" 1 !count

let test_ping_pong_round_trip () =
  let rounds = ref 0 in
  let result =
    execute (fun ctx ->
        let root = R.self ctx in
        let ponger =
          R.create ctx ~name:"Ponger" (fun pctx ->
              let rec loop () =
                match R.receive pctx with
                | Ping ->
                  R.send pctx root Pong;
                  loop ()
                | Event.Halt_event -> R.halt pctx
                | _ -> loop ()
              in
              loop ())
        in
        for _ = 1 to 3 do
          R.send ctx ponger Ping;
          (match R.receive ctx with Pong -> incr rounds | _ -> ());
          ()
        done;
        R.send ctx ponger Event.Halt_event)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check int) "three round trips" 3 !rounds

let test_monitor_safety_violation () =
  let monitor () =
    Psharp.Monitor.make ~name:"M" ~initial:"S"
      ~states:[ ("S", Psharp.Monitor.Neutral) ] (fun m e ->
        match e with
        | Msg i when i > 2 -> Psharp.Monitor.fail m "too big"
        | _ -> ())
  in
  let result =
    execute ~monitors:[ monitor () ] (fun ctx -> R.notify ctx "M" (Msg 5))
  in
  match result.R.bug with
  | Some (Error.Safety_violation { monitor = "M"; message }) ->
    Alcotest.(check string) "message" "too big" message
  | _ -> Alcotest.fail "expected safety violation"

let test_monitor_liveness_violation () =
  let monitor () =
    Psharp.Monitor.make ~name:"L" ~initial:"Cold"
      ~states:[ ("Cold", Psharp.Monitor.Cold); ("Hot", Psharp.Monitor.Hot) ]
      (fun m e ->
        match e with
        | Ping -> Psharp.Monitor.goto m "Hot"
        | _ -> ())
  in
  (* Root notifies hot, then a timer loops forever: the bound is reached
     with the monitor hot the whole time. *)
  let cfg = { config with R.max_steps = 200; liveness_grace = Some 50 } in
  let result =
    R.execute cfg (strategy ~seed:3L) ~monitors:[ monitor () ] ~name:"Root"
      (fun ctx ->
        R.notify ctx "L" Ping;
        let rec spin n =
          if n > 0 then begin
            R.send ctx (R.self ctx) Pong;
            ignore (R.receive ctx);
            spin (n - 1)
          end
        in
        spin 10_000)
  in
  match result.R.bug with
  | Some (Error.Liveness_violation { monitor = "L"; _ }) -> ()
  | _ -> Alcotest.fail "expected liveness violation"

let test_liveness_grace_suppresses_fresh_hot () =
  (* Monitor goes hot only at the very end: with a grace window it must NOT
     be reported. *)
  let monitor () =
    Psharp.Monitor.make ~name:"L" ~initial:"Cold"
      ~states:[ ("Cold", Psharp.Monitor.Cold); ("Hot", Psharp.Monitor.Hot) ]
      (fun m e ->
        match e with
        | Ping -> Psharp.Monitor.goto m "Hot"
        | _ -> ())
  in
  let cfg = { config with R.max_steps = 100; liveness_grace = Some 50 } in
  let result =
    R.execute cfg (rr_strategy ()) ~monitors:[ monitor () ] ~name:"Root"
      (fun ctx ->
        let rec spin n =
          if n = 95 then R.notify ctx "L" Ping;
          if n > 0 then begin
            R.send ctx (R.self ctx) Pong;
            ignore (R.receive ctx);
            spin (n - 1)
          end
        in
        spin 200)
  in
  Alcotest.(check bool) "fresh hot not reported" true (result.R.bug = None)

let test_create_ids_sequential () =
  let ids = ref [] in
  let result =
    execute (fun ctx ->
        for i = 0 to 2 do
          let id =
            R.create ctx ~name:(Printf.sprintf "M%d" i) (fun _ -> ())
          in
          ids := Psharp.Id.index id :: !ids
        done)
  in
  Alcotest.(check bool) "no bug" true (result.R.bug = None);
  Alcotest.(check (list int)) "sequential indices" [ 1; 2; 3 ] (List.rev !ids)

let suite =
  [
    Alcotest.test_case "clean completion" `Quick test_clean_completion;
    Alcotest.test_case "fifo per sender" `Quick test_fifo_per_sender;
    Alcotest.test_case "filtered receive" `Quick test_receive_where;
    Alcotest.test_case "send to halted dropped" `Quick test_halt_drops_messages;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "deadlock opt-out" `Quick test_deadlock_opt_out;
    Alcotest.test_case "machine exception" `Quick test_machine_exception;
    Alcotest.test_case "assert_here" `Quick test_assert_here;
    Alcotest.test_case "nondet recorded in trace" `Quick test_nondet_recorded;
    Alcotest.test_case "choose singleton" `Quick test_choose_singleton_no_choice;
    Alcotest.test_case "send_unless_pending coalesces" `Quick
      test_send_unless_pending_coalesces;
    Alcotest.test_case "ping-pong round trips" `Quick test_ping_pong_round_trip;
    Alcotest.test_case "monitor safety violation" `Quick
      test_monitor_safety_violation;
    Alcotest.test_case "monitor liveness violation" `Quick
      test_monitor_liveness_violation;
    Alcotest.test_case "liveness grace suppresses fresh hot" `Quick
      test_liveness_grace_suppresses_fresh_hot;
    Alcotest.test_case "machine ids sequential" `Quick test_create_ids_sequential;
  ]
