(* Unit and property tests for the SplitMix64 generator. *)

module Prng = Psharp.Prng

let test_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_known_value () =
  (* SplitMix64 with seed 0: published first output. *)
  let g = Prng.create ~seed:0L in
  Alcotest.(check int64) "first output" 0xE220A8397B1DCDAFL (Prng.next_int64 g)

let test_copy_independent () =
  let a = Prng.create ~seed:7L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b);
  ignore (Prng.next_int64 a);
  (* advancing [a] further must not affect [b] *)
  let before = Prng.next_int64 b in
  let b2 = Prng.copy b in
  Alcotest.(check int64) "copy isolated" (Prng.next_int64 b) (Prng.next_int64 b2);
  ignore before

let test_split_differs () =
  let a = Prng.create ~seed:3L in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_int_bounds_invalid () =
  let g = Prng.create ~seed:0L in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0));
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g (-3)))

let test_pick_empty () =
  let g = Prng.create ~seed:0L in
  Alcotest.check_raises "empty list" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick g []))

let test_shuffle_permutation () =
  let g = Prng.create ~seed:11L in
  let xs = Array.init 50 Fun.id in
  Prng.shuffle g xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int in [0, bound)" ~count:500
    QCheck.(pair int64 (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"Prng.float in [0, bound)" ~count:500
    QCheck.(pair int64 (float_bound_exclusive 1_000.))
    (fun (seed, bound) ->
      QCheck.assume (bound > 0.);
      let g = Prng.create ~seed in
      let v = Prng.float g bound in
      v >= 0. && v < bound)

let prop_bool_both_values =
  QCheck.Test.make ~name:"Prng.bool not constant over 64 draws" ~count:100
    QCheck.int64 (fun seed ->
      let g = Prng.create ~seed in
      let seen_true = ref false and seen_false = ref false in
      for _ = 1 to 64 do
        if Prng.bool g then seen_true := true else seen_false := true
      done;
      !seen_true && !seen_false)

let prop_pick_member =
  QCheck.Test.make ~name:"Prng.pick returns a member" ~count:300
    QCheck.(pair int64 (list_of_size Gen.(1 -- 20) small_int))
    (fun (seed, xs) ->
      QCheck.assume (xs <> []);
      let g = Prng.create ~seed in
      List.mem (Prng.pick g xs) xs)

let suite =
  [
    Alcotest.test_case "deterministic stream" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "known SplitMix64 value" `Quick test_known_value;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "split differs" `Quick test_split_differs;
    Alcotest.test_case "int bound validation" `Quick test_int_bounds_invalid;
    Alcotest.test_case "pick empty list" `Quick test_pick_empty;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_float_in_bounds;
    QCheck_alcotest.to_alcotest prop_bool_both_values;
    QCheck_alcotest.to_alcotest prop_pick_member;
  ]
