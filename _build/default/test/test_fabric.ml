(* Fabric model: user services, replica lifecycle via the engine, the §5
   promotion bug, and the CScale-like chained service. *)

module E = Psharp.Engine
module Error = Psharp.Error
module Service = Fabric.Service

(* --- User services ------------------------------------------------------- *)

let test_counter_service () =
  let s = Service.counter () in
  Alcotest.(check bool) "increment" true (s.Service.apply Service.Increment = Service.Value 1);
  Alcotest.(check bool) "add" true (s.Service.apply (Service.Add 4) = Service.Value 5);
  Alcotest.(check bool) "get" true (s.Service.apply (Service.Get "_") = Service.Value 5)

let test_counter_snapshot_restore () =
  let a = Service.counter () in
  ignore (a.Service.apply (Service.Add 7));
  let b = Service.counter () in
  b.Service.restore (a.Service.snapshot ());
  Alcotest.(check bool) "restored" true
    (b.Service.apply (Service.Get "_") = Service.Value 7)

let test_kv_service () =
  let s = Service.kv_store () in
  Alcotest.(check bool) "get missing" true
    (s.Service.apply (Service.Get "k") = Service.Absent);
  ignore (s.Service.apply (Service.Put ("k", 3)));
  Alcotest.(check bool) "get" true (s.Service.apply (Service.Get "k") = Service.Value 3);
  let b = Service.kv_store () in
  b.Service.restore (s.Service.snapshot ());
  Alcotest.(check bool) "snapshot/restore" true
    (b.Service.apply (Service.Get "k") = Service.Value 3)

let test_mutates () =
  Alcotest.(check bool) "increment mutates" true (Service.mutates Service.Increment);
  Alcotest.(check bool) "get does not" false (Service.mutates (Service.Get "x"))

(* --- Engine-driven fabric tests ------------------------------------------ *)

let config =
  {
    E.default_config with
    max_executions = 5_000;
    max_steps = 3_000;
    seed = 0L;
  }

let run_fabric ?(config = config) bugs =
  E.run
    ~monitors:(fun () -> Fabric.Harness.monitors ())
    config
    (Fabric.Harness.test ~bugs ())

let test_promotion_bug_found () =
  match run_fabric Fabric.Bug_flags.promotion_bug with
  | E.Bug_found (report, _) -> begin
    match report.Error.kind with
    | Error.Assertion_failure { message; _ } ->
      Alcotest.(check bool) "promotion assertion" true
        (String.length message > 0)
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  end
  | E.No_bug _ -> Alcotest.fail "promotion bug not found"

let test_fixed_fabric_clean () =
  match
    run_fabric ~config:{ config with max_executions = 500 } Fabric.Bug_flags.none
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let test_promotion_bug_replays () =
  match run_fabric Fabric.Bug_flags.promotion_bug with
  | E.Bug_found (report, _) ->
    let result =
      E.replay
        ~monitors:(fun () -> Fabric.Harness.monitors ())
        config report.Error.trace
        (Fabric.Harness.test ~bugs:Fabric.Bug_flags.promotion_bug ())
    in
    (match result.Psharp.Runtime.bug with
     | Some (Error.Assertion_failure _) -> ()
     | _ -> Alcotest.fail "replay did not reproduce the promotion bug")
  | E.No_bug _ -> Alcotest.fail "bug not found"

let test_kv_service_on_fabric () =
  match
    E.run
      ~monitors:(fun () -> Fabric.Harness.monitors ())
      { config with max_executions = 300 }
      (Fabric.Harness.test ~make_service:Service.kv_store ())
  with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "kv service false positive: %s"
      (Error.kind_to_string r.Error.kind)

(* --- CScale-like chained service ------------------------------------------ *)

let run_cscale ?(config = config) bugs =
  E.run config (Fabric.Chained.test ~bugs ())

let test_cscale_bug_found () =
  match run_cscale Fabric.Bug_flags.cscale_bug with
  | E.Bug_found (report, _) -> begin
    match report.Error.kind with
    | Error.Machine_exception { exn; _ } ->
      Alcotest.(check bool) "is the null dereference" true
        (String.length exn > 0)
    | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k)
  end
  | E.No_bug _ -> Alcotest.fail "CScale null dereference not found"

let test_cscale_fixed_clean () =
  match run_cscale ~config:{ config with max_executions = 2_000 } Fabric.Bug_flags.none with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let suite =
  [
    Alcotest.test_case "counter service" `Quick test_counter_service;
    Alcotest.test_case "counter snapshot/restore" `Quick
      test_counter_snapshot_restore;
    Alcotest.test_case "kv service" `Quick test_kv_service;
    Alcotest.test_case "mutates classification" `Quick test_mutates;
    Alcotest.test_case "promotion bug found" `Slow test_promotion_bug_found;
    Alcotest.test_case "fixed fabric clean" `Slow test_fixed_fabric_clean;
    Alcotest.test_case "promotion bug replays" `Slow test_promotion_bug_replays;
    Alcotest.test_case "kv service on fabric" `Slow test_kv_service_on_fabric;
    Alcotest.test_case "cscale bug found" `Slow test_cscale_bug_found;
    Alcotest.test_case "cscale fixed clean" `Slow test_cscale_fixed_clean;
  ]
