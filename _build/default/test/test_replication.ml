(* The Fig. 1 replication system: server logic unit tests and end-to-end
   bug finding with the engine (paper §2). *)

module E = Psharp.Engine
module Error = Psharp.Error
module Logic = Replication.Server.Logic
module Bug_flags = Replication.Bug_flags

let id i = Psharp.Id.make ~index:i ~name:(Printf.sprintf "SN%d" i)

(* --- Server logic unit tests (the "real component") --- *)

let setup ?(bugs = Bug_flags.none) () =
  let s = Logic.create ~bugs ~replica_target:3 in
  Logic.set_nodes s [ id 1; id 2; id 3 ];
  s

let test_client_req_broadcasts () =
  let s = setup () in
  match Logic.on_client_req s ~client:(id 9) ~seq:1 with
  | [ Logic.Broadcast_repl 1 ] -> ()
  | _ -> Alcotest.fail "expected broadcast of seq 1"

let test_stale_sync_resent () =
  let s = setup () in
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:2);
  match Logic.on_sync s ~node:(id 1) ~stored:(Some 1) with
  | [ Logic.Resend_repl { seq = 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected resend for stale node"

let test_empty_log_resent () =
  let s = setup () in
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:1);
  match Logic.on_sync s ~node:(id 1) ~stored:None with
  | [ Logic.Resend_repl _ ] -> ()
  | _ -> Alcotest.fail "expected resend for empty node"

let test_ack_after_three_unique () =
  let s = setup () in
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:1);
  Alcotest.(check bool) "no ack after 1" true
    (Logic.on_sync s ~node:(id 1) ~stored:(Some 1) = []);
  Alcotest.(check bool) "no ack after duplicate" true
    (Logic.on_sync s ~node:(id 1) ~stored:(Some 1) = []);
  Alcotest.(check bool) "no ack after 2" true
    (Logic.on_sync s ~node:(id 2) ~stored:(Some 1) = []);
  match Logic.on_sync s ~node:(id 3) ~stored:(Some 1) with
  | [ Logic.Send_ack { seq = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected ack after third unique replica"

let test_buggy_counts_duplicates () =
  let s = setup ~bugs:Bug_flags.bug1 () in
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:1);
  ignore (Logic.on_sync s ~node:(id 1) ~stored:(Some 1));
  ignore (Logic.on_sync s ~node:(id 1) ~stored:(Some 1));
  match Logic.on_sync s ~node:(id 1) ~stored:(Some 1) with
  | [ Logic.Send_ack _ ] -> ()
  | _ -> Alcotest.fail "buggy server should ack after 3 duplicate syncs"

let test_counter_resets_for_next_request () =
  let s = setup () in
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:1);
  ignore (Logic.on_sync s ~node:(id 1) ~stored:(Some 1));
  ignore (Logic.on_sync s ~node:(id 2) ~stored:(Some 1));
  ignore (Logic.on_sync s ~node:(id 3) ~stored:(Some 1));
  Alcotest.(check int) "counter reset after ack" 0 (Logic.replica_count s);
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:2);
  ignore (Logic.on_sync s ~node:(id 1) ~stored:(Some 2));
  ignore (Logic.on_sync s ~node:(id 2) ~stored:(Some 2));
  match Logic.on_sync s ~node:(id 3) ~stored:(Some 2) with
  | [ Logic.Send_ack { seq = 2; _ } ] -> ()
  | _ -> Alcotest.fail "second request should also be acked"

let test_buggy_counter_sticks () =
  let s = setup ~bugs:Bug_flags.bug2 () in
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:1);
  ignore (Logic.on_sync s ~node:(id 1) ~stored:(Some 1));
  ignore (Logic.on_sync s ~node:(id 2) ~stored:(Some 1));
  ignore (Logic.on_sync s ~node:(id 3) ~stored:(Some 1));
  Alcotest.(check int) "counter stuck at 3" 3 (Logic.replica_count s);
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:2);
  ignore (Logic.on_sync s ~node:(id 1) ~stored:(Some 2));
  ignore (Logic.on_sync s ~node:(id 2) ~stored:(Some 2));
  Alcotest.(check bool) "no ack ever again" true
    (Logic.on_sync s ~node:(id 3) ~stored:(Some 2) = [])

let test_stale_sync_after_ack_ignored () =
  let s = setup () in
  ignore (Logic.on_client_req s ~client:(id 9) ~seq:1);
  ignore (Logic.on_sync s ~node:(id 1) ~stored:(Some 1));
  ignore (Logic.on_sync s ~node:(id 2) ~stored:(Some 1));
  ignore (Logic.on_sync s ~node:(id 3) ~stored:(Some 1));
  (* Acked; a racing duplicate sync must not count toward anything. *)
  Alcotest.(check bool) "post-ack sync is a no-op" true
    (Logic.on_sync s ~node:(id 1) ~stored:(Some 1) = []);
  Alcotest.(check int) "counter still 0" 0 (Logic.replica_count s)

(* --- End-to-end systematic testing (paper §2.3-2.5) --- *)

let config =
  {
    E.default_config with
    max_executions = 3_000;
    max_steps = 2_000;
    seed = 0L;
  }

let run_harness ?(config = config) bugs =
  E.run
    ~monitors:(fun () -> Replication.Harness.monitors ())
    config
    (Replication.Harness.test ~bugs ())

let test_engine_finds_bug1_safety () =
  match run_harness Bug_flags.bug1 with
  | E.Bug_found (report, _) ->
    (match report.Error.kind with
     | Error.Safety_violation { monitor; _ } ->
       Alcotest.(check string) "safety monitor" "ReplicationSafety" monitor
     | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k))
  | E.No_bug _ -> Alcotest.fail "bug 1 not found"

let test_engine_finds_bug2_liveness () =
  match run_harness Bug_flags.bug2 with
  | E.Bug_found (report, _) ->
    (match report.Error.kind with
     | Error.Liveness_violation { monitor; _ } ->
       Alcotest.(check string) "liveness monitor" "ReplicationLiveness" monitor
     | k -> Alcotest.failf "wrong kind: %s" (Error.kind_to_string k))
  | E.No_bug _ -> Alcotest.fail "bug 2 not found"

let test_fixed_system_clean () =
  match run_harness ~config:{ config with max_executions = 300 } Bug_flags.none with
  | E.No_bug _ -> ()
  | E.Bug_found (r, _) ->
    Alcotest.failf "false positive: %s" (Error.kind_to_string r.Error.kind)

let test_bug1_replay () =
  match run_harness Bug_flags.bug1 with
  | E.Bug_found (report, _) ->
    let result =
      E.replay
        ~monitors:(fun () -> Replication.Harness.monitors ())
        config report.Error.trace
        (Replication.Harness.test ~bugs:Bug_flags.bug1 ())
    in
    (match result.Psharp.Runtime.bug with
     | Some (Error.Safety_violation _) -> ()
     | _ -> Alcotest.fail "replay did not reproduce bug 1")
  | E.No_bug _ -> Alcotest.fail "bug 1 not found"

let suite =
  [
    Alcotest.test_case "client req broadcasts" `Quick test_client_req_broadcasts;
    Alcotest.test_case "stale sync resent" `Quick test_stale_sync_resent;
    Alcotest.test_case "empty log resent" `Quick test_empty_log_resent;
    Alcotest.test_case "ack after three unique" `Quick
      test_ack_after_three_unique;
    Alcotest.test_case "bug1 counts duplicates" `Quick
      test_buggy_counts_duplicates;
    Alcotest.test_case "counter resets per request" `Quick
      test_counter_resets_for_next_request;
    Alcotest.test_case "bug2 counter sticks" `Quick test_buggy_counter_sticks;
    Alcotest.test_case "post-ack sync ignored" `Quick
      test_stale_sync_after_ack_ignored;
    Alcotest.test_case "engine finds bug1 (safety)" `Slow
      test_engine_finds_bug1_safety;
    Alcotest.test_case "engine finds bug2 (liveness)" `Slow
      test_engine_finds_bug2_liveness;
    Alcotest.test_case "fixed system clean" `Slow test_fixed_system_clean;
    Alcotest.test_case "bug1 trace replays" `Slow test_bug1_replay;
  ]
