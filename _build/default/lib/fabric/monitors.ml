module M = Psharp.Monitor
module Int_set = Set.Make (Int)

let primary_name = "FabricSinglePrimary"
let liveness_name = "FabricClientLiveness"

let single_primary () =
  let primaries = ref Int_set.empty in
  M.make ~name:primary_name ~initial:"Watching"
    ~states:[ ("Watching", M.Neutral) ]
    (fun m e ->
      match e with
      | Events.M_became_primary rid ->
        primaries := Int_set.add rid !primaries;
        M.assert_ m
          (Int_set.cardinal !primaries <= 1)
          (Printf.sprintf "two live primaries: [%s]"
             (String.concat ";"
                (List.map string_of_int (Int_set.elements !primaries))))
      | Events.M_primary_down rid -> primaries := Int_set.remove rid !primaries
      | _ -> ())

let client_liveness () =
  let pending = ref Int_set.empty in
  M.make ~name:liveness_name ~initial:"Idle"
    ~states:[ ("Idle", M.Cold); ("AwaitingResponse", M.Hot) ]
    (fun m e ->
      let refresh () =
        if Int_set.is_empty !pending then M.goto m "Idle"
        else M.goto m "AwaitingResponse"
      in
      match e with
      | Events.M_request id ->
        pending := Int_set.add id !pending;
        refresh ()
      | Events.M_response id ->
        pending := Int_set.remove id !pending;
        refresh ()
      | _ -> ())

let all () = [ single_primary (); client_liveness () ]
