module R = Psharp.Runtime

type Psharp.Event.t +=
  | Cs_start of { batch : int }
  | Cs_record of { batch : int; value : int }
  | Cs_end of { batch : int; count : int }
  | Cs_result of { batch : int; sum : int }
  | Cs_ctl of Psharp.Event.t  (** control-path envelope *)

(* Control relay: batch-control messages take an extra hop, so the
   scheduler can deliver data records ahead of their batch-open message. *)
let control_relay ~target ctx =
  Psharp.Registry.register_machine ~machine:"CScaleControlRelay"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  let rec loop () =
    (match R.receive ctx with
     | Cs_ctl inner -> R.send ctx target inner
     | Psharp.Event.Halt_event -> R.halt ctx
     | _ -> ());
    loop ()
  in
  loop ()

(* Aggregation stage: sums each batch's records, emits the sum on batch
   end. *)
let aggregator ~bugs ~sink ctx =
  Psharp.Registry.register_machine ~machine:"CScaleAggregator"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:3;
  let current : (int * int ref * int ref) option ref = ref None in
  (* Records that arrived before their batch opened, and batch-end control
     messages awaiting the last record. *)
  let buffered : (int * int) list ref = ref [] in
  let pending_end : (int * int) list ref = ref [] in
  let add_record batch value =
    if bugs.Bug_flags.null_deref then begin
      (* The CScale defect: assume the batch is already open. If the data
         path overtook the control path, [current] is None and this is the
         NullReferenceException. *)
      let _, sum, received = Option.get !current in
      sum := !sum + value;
      incr received
    end
    else begin
      match !current with
      | Some (open_batch, sum, received) when open_batch = batch ->
        sum := !sum + value;
        incr received
      | Some _ | None -> buffered := (batch, value) :: !buffered
    end
  in
  let try_finish () =
    match !current with
    | Some (batch, sum, received)
      when (match List.assoc_opt batch !pending_end with
            | Some count -> count = !received
            | None -> false) ->
      pending_end := List.remove_assoc batch !pending_end;
      R.send ctx sink (Cs_result { batch; sum = !sum });
      current := None
    | Some _ | None -> ()
  in
  let rec loop () =
    (match R.receive ctx with
     | Cs_start { batch } ->
       current := Some (batch, ref 0, ref 0);
       (* Replay records buffered while the control message was in flight. *)
       let mine, rest = List.partition (fun (b, _) -> b = batch) !buffered in
       buffered := rest;
       List.iter (fun (b, v) -> add_record b v) (List.rev mine);
       try_finish ()
     | Cs_record { batch; value } ->
       add_record batch value;
       try_finish ()
     | Cs_end { batch; count } ->
       pending_end := (batch, count) :: !pending_end;
       try_finish ()
     | Psharp.Event.Halt_event -> R.halt ctx
     | _ -> ());
    loop ()
  in
  loop ()

(* Transform stage: forwards records (doubling them) and routes batch
   control through the relay. *)
let transform ~relay ~aggregator_id ctx =
  Psharp.Registry.register_machine ~machine:"CScaleTransform"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:3;
  let rec loop () =
    (match R.receive ctx with
     | Cs_start _ as e -> R.send ctx relay (Cs_ctl e)
     | Cs_end _ as e -> R.send ctx relay (Cs_ctl e)
     | Cs_record { batch; value } ->
       R.send ctx aggregator_id (Cs_record { batch; value = 2 * value })
     | Psharp.Event.Halt_event -> R.halt ctx
     | _ -> ());
    loop ()
  in
  loop ()

let test ?(bugs = Bug_flags.none) ?(n_batches = 2) ?(batch_size = 2) () ctx =
  Psharp.Registry.register_machine ~machine:"CScaleSource"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  let sink = R.self ctx in
  let agg = R.create ctx ~name:"Aggregator" (aggregator ~bugs ~sink) in
  let relay = R.create ctx ~name:"ControlRelay" (control_relay ~target:agg) in
  let stage1 =
    R.create ctx ~name:"Transform" (transform ~relay ~aggregator_id:agg)
  in
  (* Source: stream the batches. *)
  for batch = 1 to n_batches do
    R.send ctx stage1 (Cs_start { batch });
    for i = 1 to batch_size do
      R.send ctx stage1 (Cs_record { batch; value = i })
    done;
    R.send ctx stage1 (Cs_end { batch; count = batch_size })
  done;
  (* Sink: await one result per batch and check the sums. *)
  let expected_sum = batch_size * (batch_size + 1) in
  for _ = 1 to n_batches do
    match
      R.receive_where ctx (function Cs_result _ -> true | _ -> false)
    with
    | Cs_result { batch; sum } ->
      R.assert_here ctx (sum = expected_sum)
        (Printf.sprintf "batch %d aggregated to %d, expected %d" batch sum
           expected_sum)
    | _ -> assert false
  done;
  R.send ctx agg Psharp.Event.Halt_event;
  R.send ctx stage1 Psharp.Event.Halt_event;
  R.send ctx relay Psharp.Event.Halt_event
