type request =
  | Increment
  | Add of int
  | Put of string * int
  | Get of string

type response =
  | Value of int
  | Absent
  | Done

let request_to_string = function
  | Increment -> "Increment"
  | Add n -> Printf.sprintf "Add(%d)" n
  | Put (k, v) -> Printf.sprintf "Put(%s,%d)" k v
  | Get k -> Printf.sprintf "Get(%s)" k

let response_to_string = function
  | Value v -> Printf.sprintf "Value(%d)" v
  | Absent -> "Absent"
  | Done -> "Done"

let mutates = function
  | Increment | Add _ | Put _ -> true
  | Get _ -> false

type t = {
  name : string;
  apply : request -> response;
  snapshot : unit -> string;
  restore : string -> unit;
}

let counter () =
  let state = ref 0 in
  {
    name = "Counter";
    apply =
      (fun req ->
        match req with
        | Increment ->
          incr state;
          Value !state
        | Add n ->
          state := !state + n;
          Value !state
        | Get _ -> Value !state
        | Put _ -> Done);
    snapshot = (fun () -> string_of_int !state);
    restore = (fun s -> state := int_of_string s);
  }

let kv_store () =
  let state : (string, int) Hashtbl.t = Hashtbl.create 8 in
  {
    name = "KvStore";
    apply =
      (fun req ->
        match req with
        | Put (k, v) ->
          Hashtbl.replace state k v;
          Done
        | Get k ->
          (match Hashtbl.find_opt state k with
           | Some v -> Value v
           | None -> Absent)
        | Increment | Add _ -> Done);
    snapshot =
      (fun () ->
        Hashtbl.fold (fun k v acc -> Printf.sprintf "%s=%d;%s" k v acc) state "");
    restore =
      (fun s ->
        Hashtbl.reset state;
        String.split_on_char ';' s
        |> List.iter (fun entry ->
               match String.index_opt entry '=' with
               | Some i ->
                 let k = String.sub entry 0 i in
                 let v =
                   int_of_string
                     (String.sub entry (i + 1) (String.length entry - i - 1))
                 in
                 Hashtbl.replace state k v
               | None -> ()));
  }
