(** Failover manager of the Fabric model (paper §5).

    Launches and tracks the replica set of one user service: routes client
    requests to the primary, elects a new primary when the current one
    fails, launches replacement replicas and drives their build (state
    copy) and promotion.

    The model's promotion assertion lives here: a completed state copy may
    only promote a replica that is still an idle secondary — "only a
    secondary can be promoted to an active secondary" (§5). The
    [promote_during_copy] bug makes the election consider idle (still
    copying) secondaries, which lets a stale copy complete against the new
    primary and trip the assertion. *)

val machine :
  bugs:Bug_flags.t ->
  make_service:(unit -> Service.t) ->
  n_replicas:int ->
  Psharp.Runtime.ctx ->
  unit
