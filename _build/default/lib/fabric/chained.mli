(** CScale-like chained stream-processing application (paper §5): multiple
    services chained via RPC. A source streams record batches through a
    transform stage into an aggregation stage; batch-control messages
    travel on a separate control path, so data can overtake control — the
    class of race behind the NullReferenceException the paper found when
    running CScale against the Fabric model.

    With [Bug_flags.null_deref], the aggregation stage dereferences its
    current-batch state without checking when a record arrives before the
    batch-open control message; the correct implementation buffers early
    records. *)

(** Root harness body: source, transform stage, control relay, aggregation
    stage, and a sink that checks batch sums. *)
val test :
  ?bugs:Bug_flags.t ->
  ?n_batches:int ->
  ?batch_size:int ->
  unit ->
  Psharp.Runtime.ctx ->
  unit
