(** Modeled client of a Fabric-hosted service: issues requests through the
    failover manager, one at a time, waiting for each response; reports to
    the harness and halts when done. *)

val machine :
  manager:Psharp.Id.t ->
  report_to:Psharp.Id.t ->
  n_requests:int ->
  Psharp.Runtime.ctx ->
  unit
