(** User services hosted on the Fabric model (paper §5): a service receives
    requests and mutates its state; Fabric replicates the state-mutating
    operations across replicas. Implementations must be deterministic. *)

type request =
  | Increment
  | Add of int
  | Put of string * int
  | Get of string

type response =
  | Value of int
  | Absent
  | Done

val request_to_string : request -> string
val response_to_string : response -> string

(** Is the request state-mutating (and thus replicated)? *)
val mutates : request -> bool

type t = {
  name : string;
  apply : request -> response;
      (** apply one request to the local state (imperative) *)
  snapshot : unit -> string;  (** serialize state (for replica copy) *)
  restore : string -> unit;  (** install a snapshot *)
}

(** A replicated counter: [Increment]/[Add]/[Get "_"]. *)
val counter : unit -> t

(** A small replicated key-value store. *)
val kv_store : unit -> t
