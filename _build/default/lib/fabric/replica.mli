(** Replica machine (paper §5): hosts one copy of a user service and moves
    through the replica lifecycle — idle secondary (waiting for its state
    copy) → active secondary (caught up, applying replicated operations) →
    primary (serving client requests and replicating mutations).

    The lifecycle states are P# states of the machine; the failover manager
    drives transitions with [Promote_to_active] and [Become_primary]. On
    [Fail_replica] the replica notifies the manager and halts. *)

val machine :
  rid:int ->
  manager:Psharp.Id.t ->
  make_service:(unit -> Service.t) ->
  initial_role:[ `Primary | `Active | `Idle ] ->
  Psharp.Runtime.ctx ->
  unit
