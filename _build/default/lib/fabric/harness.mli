(** Test harness for the Fabric model (paper §5): a failover manager with
    its replica set hosting a user service, a client driving requests, and
    a driver that injects a replica failure at a nondeterministic time —
    the scenario in which "the primary replica fails at some
    nondeterministic point". *)

val test :
  ?bugs:Bug_flags.t ->
  ?n_replicas:int ->
  ?n_requests:int ->
  ?make_service:(unit -> Service.t) ->
  unit ->
  Psharp.Runtime.ctx ->
  unit

val monitors : unit -> Psharp.Monitor.t list
