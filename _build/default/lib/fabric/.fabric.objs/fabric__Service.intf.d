lib/fabric/service.mli:
