lib/fabric/harness.ml: Bug_flags Client Cluster_manager Events Monitors Psharp Service
