lib/fabric/bug_flags.ml:
