lib/fabric/client.mli: Psharp
