lib/fabric/client.ml: Events Psharp Service
