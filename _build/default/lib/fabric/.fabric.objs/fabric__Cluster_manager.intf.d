lib/fabric/cluster_manager.mli: Bug_flags Psharp Service
