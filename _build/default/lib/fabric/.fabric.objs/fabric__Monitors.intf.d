lib/fabric/monitors.mli: Psharp
