lib/fabric/chained.ml: Bug_flags List Option Printf Psharp
