lib/fabric/bug_flags.mli:
