lib/fabric/replica.mli: Psharp Service
