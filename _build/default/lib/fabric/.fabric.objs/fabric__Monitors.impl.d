lib/fabric/monitors.ml: Events Int List Printf Psharp Set String
