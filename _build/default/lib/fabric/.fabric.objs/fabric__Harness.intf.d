lib/fabric/harness.mli: Bug_flags Psharp Service
