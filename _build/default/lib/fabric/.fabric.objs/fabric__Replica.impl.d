lib/fabric/replica.ml: Events List Monitors Psharp Service
