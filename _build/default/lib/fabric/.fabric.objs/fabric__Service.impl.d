lib/fabric/service.ml: Hashtbl List Printf String
