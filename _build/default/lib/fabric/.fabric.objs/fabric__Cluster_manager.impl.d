lib/fabric/cluster_manager.ml: Bug_flags Events List Monitors Printf Psharp Replica Service
