lib/fabric/events.ml: List Printf Psharp Service String
