lib/fabric/chained.mli: Bug_flags Psharp
