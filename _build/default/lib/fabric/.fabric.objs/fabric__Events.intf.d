lib/fabric/events.mli: Psharp Service
