(** Monitors for the Fabric model. *)

val primary_name : string
val liveness_name : string

(** Safety: at most one live primary at any time. *)
val single_primary : unit -> Psharp.Monitor.t

(** Liveness: every accepted client request is eventually answered. *)
val client_liveness : unit -> Psharp.Monitor.t

val all : unit -> Psharp.Monitor.t list
