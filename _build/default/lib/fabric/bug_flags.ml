type t = {
  promote_during_copy : bool;
  null_deref : bool;
}

let none = { promote_during_copy = false; null_deref = false }
let promotion_bug = { none with promote_during_copy = true }
let cscale_bug = { none with null_deref = true }
