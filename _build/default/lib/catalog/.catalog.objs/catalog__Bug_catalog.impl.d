lib/catalog/bug_catalog.ml: Chaintable Fabric List Paxos Printf Psharp Raft Replication Vnext
