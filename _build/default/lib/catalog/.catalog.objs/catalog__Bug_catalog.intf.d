lib/catalog/bug_catalog.mli: Psharp
