(** A compact Raft (Ongaro & Ousterhout, USENIX ATC 2014) — the other
    sample protocol the paper points readers to (§2.3). Leader election
    with randomized (modeled) timeouts plus log replication; replication
    ships the leader's full log, which preserves Raft's safety structure
    while staying small.

    Safety monitors:
    - election safety: at most one leader per term;
    - state-machine safety: all servers agree on the command committed at
      each log index.

    Seeded bugs:
    - [double_vote]: a voter forgets it already voted in the current term,
      so competing candidates can both win it — two leaders in one term;
    - [stale_leader_election]: voters skip the log up-to-dateness check, so
      a candidate missing committed entries can be elected and overwrite
      them — a state-machine safety violation. *)

type bugs = {
  double_vote : bool;
  stale_leader_election : bool;
}

val no_bugs : bugs
val bug_double_vote : bugs
val bug_stale_leader_election : bugs

(** [test ~bugs ~n_servers ~n_commands ()] is a harness body: a cluster of
    servers with modeled election/heartbeat timers, and a client machine
    that broadcasts commands at nondeterministic times. *)
val test :
  ?bugs:bugs ->
  ?n_servers:int ->
  ?n_commands:int ->
  unit ->
  Psharp.Runtime.ctx ->
  unit

val monitors : unit -> Psharp.Monitor.t list
