lib/vnext/repair_monitor.mli: Psharp
