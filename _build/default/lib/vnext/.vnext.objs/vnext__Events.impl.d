lib/vnext/events.ml: Extent_manager List Printf Psharp String
