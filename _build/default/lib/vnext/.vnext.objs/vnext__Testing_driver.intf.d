lib/vnext/testing_driver.mli: Bug_flags Psharp
