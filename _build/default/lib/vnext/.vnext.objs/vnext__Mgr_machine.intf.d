lib/vnext/mgr_machine.mli: Bug_flags Psharp
