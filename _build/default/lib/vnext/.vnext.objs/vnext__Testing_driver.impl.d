lib/vnext/testing_driver.ml: Bug_flags Events Extent_node Fun List Mgr_machine Printf Psharp Relay Repair_monitor
