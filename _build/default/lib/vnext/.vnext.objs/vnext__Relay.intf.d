lib/vnext/relay.mli: Psharp
