lib/vnext/mgr_machine.ml: Events Extent_manager List Printf Psharp Relay String
