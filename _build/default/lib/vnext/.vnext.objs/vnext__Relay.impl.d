lib/vnext/relay.ml: Events Printf Psharp
