lib/vnext/extent_node_map.ml: Int List Map
