lib/vnext/extent_node_map.mli:
