lib/vnext/repair_monitor.ml: Events Int List Map Option Psharp Set
