lib/vnext/bug_flags.mli:
