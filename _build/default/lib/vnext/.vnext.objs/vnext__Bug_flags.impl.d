lib/vnext/bug_flags.ml:
