lib/vnext/extent_center.ml: Int List Map Option Set
