lib/vnext/events.mli: Extent_manager Psharp
