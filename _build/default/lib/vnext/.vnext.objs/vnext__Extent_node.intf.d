lib/vnext/extent_node.mli: Psharp
