lib/vnext/extent_manager.mli: Bug_flags
