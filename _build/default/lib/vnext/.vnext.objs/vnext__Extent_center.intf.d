lib/vnext/extent_center.mli:
