lib/vnext/extent_manager.ml: Bug_flags Extent_center Extent_node_map List
