lib/vnext/extent_node.ml: Events Extent_center Extent_manager List Printf Psharp Relay Repair_monitor
