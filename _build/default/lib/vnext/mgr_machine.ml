module Sm = Psharp.Statemachine
module R = Psharp.Runtime

type model = {
  ext_mgr : Extent_manager.t;
  mutable directory : (int * Psharp.Id.t) list;
}

let machine ?(heartbeat_misses = 3) ~bugs ~replica_target ~relay ctx =
  Events.install_printer ();
  (* The modeled network engine (Fig. 7): intercepts the manager's outbound
     messages and dispatches them through the testing engine. *)
  let directory = ref [] in
  let net : Extent_manager.network_engine =
    {
      send_repair_request =
        (fun ~en ~extent ~source ->
          match List.assoc_opt en !directory with
          | Some target ->
            Relay.send ctx ~relay ~target
              (Events.Repair_request { extent; source })
          | None -> ());
    }
  in
  let ext_mgr =
    Extent_manager.create { Extent_manager.replica_target; heartbeat_misses; bugs } net
  in
  ignore
    (Psharp.Timer.create ctx ~target:(R.self ctx)
       ~tick:(fun () -> Events.Expiration_tick)
       ~name:"ExpirationTimer" ());
  ignore
    (Psharp.Timer.create ctx ~target:(R.self ctx)
       ~tick:(fun () -> Events.Repair_tick)
       ~name:"RepairTimer" ());
  let m = { ext_mgr; directory = [] } in
  let handlers =
    [
      ( "To_mgr",
        fun ctx m e ->
          match e with
          | Events.To_mgr msg ->
            ignore ctx;
            Extent_manager.process_message m.ext_mgr msg;
            Sm.Stay
          | _ -> Sm.Unhandled );
      ( "Expiration_tick",
        fun ctx m _e ->
          let expired = Extent_manager.run_expiration_loop m.ext_mgr in
          if expired <> [] then
            R.log ctx
              (Printf.sprintf "expired ENs [%s]"
                 (String.concat ";" (List.map string_of_int expired)));
          Sm.Stay );
      ( "Repair_tick",
        fun _ctx m _e ->
          ignore (Extent_manager.run_repair_loop m.ext_mgr);
          Sm.Stay );
      ( "Bind_directory",
        fun _ctx m e ->
          match e with
          | Events.Bind_directory d ->
            m.directory <- d;
            directory := d;
            Sm.Stay
          | _ -> Sm.Unhandled );
    ]
  in
  let active = Sm.state "Active" handlers in
  Sm.run ctx ~machine:"ExtentManager" ~states:[ active ] ~init:"Active" m
