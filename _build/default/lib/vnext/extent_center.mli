(** ExtentCenter: the extent manager's map from extents to the extent nodes
    believed to host a replica (paper Fig. 6). Updated upon sync reports,
    which carry the ground truth of one node's holdings. This is "real"
    vNext code — it knows nothing about the testing framework, and the
    modeled extent nodes reuse it for their own bookkeeping (§3.2). *)

type extent_id = int
type en_id = int

type t

val create : unit -> t

(** [apply_sync t ~en ~extents] replaces [en]'s holdings with [extents]. *)
val apply_sync : t -> en:en_id -> extents:extent_id list -> unit

(** [add t ~en ~extent] records a single new replica (used by extent nodes
    when a copy completes). *)
val add : t -> en:en_id -> extent:extent_id -> unit

(** [remove_en t ~en] deletes every record of [en] (EN expiration). *)
val remove_en : t -> en:en_id -> unit

val replica_count : t -> extent:extent_id -> int
val holders : t -> extent:extent_id -> en_id list

(** All known extents, ascending. *)
val extents : t -> extent_id list

(** Extents hosted by [en], ascending (a node's sync report). *)
val extents_of : t -> en:en_id -> extent_id list

val holds : t -> en:en_id -> extent:extent_id -> bool
