(** ExtentManager machine: thin wrapper around the real {!Extent_manager}
    (paper §3.1, Fig. 5). Relays inbound EN messages to the wrapped
    component and drives its expiration and repair loops from modeled
    timers; outbound repair requests leave through a modeled network engine
    that routes them via the relay. *)

val machine :
  ?heartbeat_misses:int ->
  bugs:Bug_flags.t ->
  replica_target:int ->
  relay:Psharp.Id.t ->
  Psharp.Runtime.ctx ->
  unit
