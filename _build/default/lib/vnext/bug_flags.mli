(** Re-introducible bugs of the vNext extent manager (paper §3.6). *)

type t = {
  sync_after_expiry : bool;
      (** ExtentNodeLivenessViolation: the manager accepts a sync report
          from an extent node it has already expired and deleted, which
          resurrects the node's extent records in the extent center. The
          replica count then looks healthy while a true replica is missing,
          so the repair loop never schedules the repair. *)
}

val none : t
val liveness_bug : t
