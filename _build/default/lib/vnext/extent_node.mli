(** Modeled extent node (paper §3.2, Fig. 8).

    Omits most of a real EN and models only the logic needed for testing:
    periodic heartbeats and sync reports (driven by modeled timers the node
    creates for itself), repairing an extent from a source replica, and
    failure handling. Re-uses the real {!Extent_center} data structure for
    bookkeeping, as the paper's harness does. *)

(** [machine ~en ~mgr ~relay ~initial_extents ctx] runs an EN with logical
    id [en]. The node awaits [Bind_directory] before serving repairs. *)
val machine :
  en:int ->
  mgr:Psharp.Id.t ->
  relay:Psharp.Id.t ->
  initial_extents:int list ->
  Psharp.Runtime.ctx ->
  unit
