(** RepairMonitor (paper §3.5, Fig. 11): a liveness monitor that is hot
    while any extent has fewer true replicas than the target, and cold when
    every extent is fully replicated. Tracks reality (which ENs actually
    hold replicas), not the manager's view. *)

val name : string

(** [create ~replica_target ()] returns a fresh monitor. The harness must
    notify it with [M_initial_extents] before the scenario starts. *)
val create : replica_target:int -> unit -> Psharp.Monitor.t
