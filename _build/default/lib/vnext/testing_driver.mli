(** TestingDriver (paper §3.4, Fig. 10): drives the two vNext testing
    scenarios and injects nondeterministic failures. *)

type scenario =
  | Initial_replication
      (** one extent on one EN; wait for it to replicate to the target *)
  | Fail_and_repair
      (** extent fully replicated; fail a nondeterministically chosen EN at
          a nondeterministic time, launch a fresh EN, wait for repair *)

(** Root harness body. *)
val test :
  ?bugs:Bug_flags.t ->
  ?n_nodes:int ->
  ?replica_target:int ->
  ?n_extents:int ->
  ?lossy_network:bool ->
  ?warmup_ticks:int ->
  scenario:scenario ->
  unit ->
  Psharp.Runtime.ctx ->
  unit

val monitors : ?replica_target:int -> unit -> Psharp.Monitor.t list
