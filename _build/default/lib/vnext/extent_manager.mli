(** The real Extent Manager of Azure Storage vNext (paper §3, Fig. 6).

    This module is the system-under-test: plain OCaml with no dependency on
    the testing framework. It receives heartbeats and sync reports from
    extent nodes, runs an EN-expiration loop and an extent-repair loop, and
    sends repair requests through a pluggable {!network_engine} — the
    virtual-dispatch seam the P# harness overrides (paper Fig. 7). Both
    loops are driven externally (the paper's [DisableTimer] change, §3.3):
    production wires them to real timers, the harness to modeled ones. *)

type extent_id = int
type en_id = int

(** Messages from extent nodes. *)
type message =
  | Heartbeat of { en : en_id }
  | Sync_report of { en : en_id; extents : extent_id list }

(** Outbound interface; production sends over sockets, the harness relays
    through the testing engine. *)
type network_engine = {
  send_repair_request :
    en:en_id -> extent:extent_id -> source:en_id -> unit;
}

type config = {
  replica_target : int;  (** desired replicas per extent (3 in the paper) *)
  heartbeat_misses : int;
      (** consecutive expiration sweeps without a heartbeat before a node
          expires (the "extended period" of §3) *)
  bugs : Bug_flags.t;
}

type t

val create : config -> network_engine -> t

(** Handle one inbound message ([ExtMgr.ProcessMessage]). *)
val process_message : t -> message -> unit

(** One iteration of the EN expiration loop: expire nodes missing
    heartbeats, delete their extent records. Returns the expired nodes. *)
val run_expiration_loop : t -> en_id list

(** One iteration of the extent repair loop: examine every extent in the
    extent center and send a repair request for each one that is missing
    replicas. Returns the number of requests issued. *)
val run_repair_loop : t -> int

(** Manager's current view (diagnostics and tests). *)
val replica_count : t -> extent:extent_id -> int

val known_holders : t -> extent:extent_id -> en_id list
val live_nodes : t -> en_id list
