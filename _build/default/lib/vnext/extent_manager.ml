type extent_id = int
type en_id = int

type message =
  | Heartbeat of { en : en_id }
  | Sync_report of { en : en_id; extents : extent_id list }

type network_engine = {
  send_repair_request :
    en:en_id -> extent:extent_id -> source:en_id -> unit;
}

type config = {
  replica_target : int;
  heartbeat_misses : int;
  bugs : Bug_flags.t;
}

type t = {
  config : config;
  net : network_engine;
  center : Extent_center.t;
  node_map : Extent_node_map.t;
}

let create config net =
  {
    config;
    net;
    center = Extent_center.create ();
    node_map = Extent_node_map.create ~misses_before_expiry:config.heartbeat_misses;
  }

let process_message t = function
  | Heartbeat { en } -> Extent_node_map.heartbeat t.node_map ~en
  | Sync_report { en; extents } ->
    (* The repaired manager drops reports from nodes it no longer tracks —
       they are either dead (the report was delayed in the network) or will
       re-register with their next heartbeat and report again. The buggy
       manager applies them unconditionally, resurrecting a deleted node's
       extent records (§3.6, step iv). *)
    if t.config.bugs.Bug_flags.sync_after_expiry
       || Extent_node_map.mem t.node_map ~en
    then Extent_center.apply_sync t.center ~en ~extents

let run_expiration_loop t =
  let expired = Extent_node_map.sweep t.node_map in
  List.iter (fun en -> Extent_center.remove_en t.center ~en) expired;
  expired

(* Lowest-id live node not already holding the extent; real vNext balances
   load, which is irrelevant to correctness here. *)
let pick_destination t ~extent =
  let holders = Extent_center.holders t.center ~extent in
  List.find_opt
    (fun en -> not (List.mem en holders))
    (Extent_node_map.live t.node_map)

(* A live holder to copy from; prefer the lowest id for determinism. *)
let pick_source t ~extent =
  List.find_opt
    (fun en -> Extent_node_map.mem t.node_map ~en)
    (Extent_center.holders t.center ~extent)

let run_repair_loop t =
  List.fold_left
    (fun issued extent ->
      if Extent_center.replica_count t.center ~extent
         >= t.config.replica_target
      then issued
      else
        match (pick_destination t ~extent, pick_source t ~extent) with
        | Some en, Some source ->
          t.net.send_repair_request ~en ~extent ~source;
          issued + 1
        | None, _ | _, None -> issued)
    0 (Extent_center.extents t.center)

let replica_count t ~extent = Extent_center.replica_count t.center ~extent
let known_holders t ~extent = Extent_center.holders t.center ~extent
let live_nodes t = Extent_node_map.live t.node_map
