(** Events of the vNext test harness (paper Fig. 4). *)

type Psharp.Event.t +=
  | To_mgr of Extent_manager.message
      (** EN-to-manager traffic (heartbeats, sync reports); routed through
          the modeled network relay so it can be delayed *)
  | Net_deliver of { target : Psharp.Id.t; event : Psharp.Event.t }
      (** envelope processed by the relay machine *)
  | Repair_request of { extent : int; source : int }
      (** manager asks an EN to repair [extent] from EN [source] *)
  | Copy_request of { extent : int; requester : Psharp.Id.t }
      (** EN asks a source EN for a replica *)
  | Copy_response of { extent : int; ok : bool }
  | Bind_directory of (int * Psharp.Id.t) list
      (** logical EN id to machine id map (for EN-to-EN copies) *)
  | Fail_en  (** injected node failure (paper Fig. 10) *)
  | Heartbeat_tick
  | Sync_tick
  | Expiration_tick
  | Repair_tick
  | Driver_tick
  (* monitor notifications *)
  | M_initial_extents of (int * int list) list
  | M_en_failed of int
  | M_extent_repaired of { en : int; extent : int }

val install_printer : unit -> unit
