module Sm = Psharp.Statemachine
module R = Psharp.Runtime

type model = {
  en : int;
  mgr : Psharp.Id.t;
  relay : Psharp.Id.t;
  center : Extent_center.t;  (* real vNext data structure, re-used (§3.2) *)
  mutable directory : (int * Psharp.Id.t) list;
}

let holds m extent = Extent_center.holds m.center ~en:m.en ~extent

(* EN-to-manager messages do not go through the modeled network engine;
   they are delivered to the ExtentManager machine directly (§3.1). A
   periodic report identical to one still queued at the manager is
   coalesced — a node does not stack up identical reports. *)
let send_report ctx m report =
  let e = Events.To_mgr report in
  let rendered = Psharp.Event.to_string e in
  R.send_unless_pending
    ~same:(fun e' -> Psharp.Event.to_string e' = rendered)
    ctx m.mgr e

let on_heartbeat_tick ctx m _e =
  send_report ctx m (Extent_manager.Heartbeat { en = m.en });
  Sm.Stay

let on_sync_tick ctx m _e =
  let extents = Extent_center.extents_of m.center ~en:m.en in
  send_report ctx m (Extent_manager.Sync_report { en = m.en; extents });
  Sm.Stay

let on_copy_request ctx m e =
  match e with
  | Events.Copy_request { extent; requester } ->
    Relay.send ctx ~relay:m.relay ~target:requester
      (Events.Copy_response { extent; ok = holds m extent });
    Sm.Stay
  | _ -> Sm.Unhandled

let on_copy_response ctx m e =
  match e with
  | Events.Copy_response { extent; ok } ->
    if ok && not (holds m extent) then begin
      Extent_center.add m.center ~en:m.en ~extent;
      R.notify ctx Repair_monitor.name
        (Events.M_extent_repaired { en = m.en; extent })
    end;
    Sm.Stay
  | _ -> Sm.Unhandled

let on_failure ctx m _e =
  R.notify ctx Repair_monitor.name (Events.M_en_failed m.en);
  Sm.Halt_machine

let on_repair_request ctx m e =
  match e with
  | Events.Repair_request { extent; source } ->
    if not (holds m extent) then begin
      match List.assoc_opt source m.directory with
      | Some source_machine ->
        Relay.send ctx ~relay:m.relay ~target:source_machine
          (Events.Copy_request { extent; requester = R.self ctx })
      | None -> ()
    end;
    Sm.Stay
  | _ -> Sm.Unhandled

let machine ~en ~mgr ~relay ~initial_extents ctx =
  Events.install_printer ();
  let m = { en; mgr; relay; center = Extent_center.create (); directory = [] } in
  List.iter (fun extent -> Extent_center.add m.center ~en ~extent)
    initial_extents;
  ignore
    (Psharp.Timer.create ctx ~target:(R.self ctx)
       ~tick:(fun () -> Events.Heartbeat_tick)
       ~name:(Printf.sprintf "HbTimer%d" en) ());
  ignore
    (Psharp.Timer.create ctx ~target:(R.self ctx)
       ~tick:(fun () -> Events.Sync_tick)
       ~name:(Printf.sprintf "SyncTimer%d" en) ());
  let common =
    [
      ("Heartbeat_tick", on_heartbeat_tick);
      ("Sync_tick", on_sync_tick);
      ("Copy_request", on_copy_request);
      ("Copy_response", on_copy_response);
      ("Fail_en", on_failure);
    ]
  in
  let init =
    Sm.state "Init" ~defer:[ "Repair_request" ]
      (( "Bind_directory",
         fun _ctx m e ->
           match e with
           | Events.Bind_directory d ->
             m.directory <- d;
             Sm.Goto "Active"
           | _ -> Sm.Unhandled )
       :: common)
  in
  let rebind _ctx m e =
    match e with
    | Events.Bind_directory d ->
      m.directory <- d;
      Sm.Stay
    | _ -> Sm.Unhandled
  in
  let active =
    Sm.state "Active"
      (("Repair_request", on_repair_request)
       :: ("Bind_directory", rebind) :: common)
  in
  Sm.run ctx ~machine:"ExtentNode" ~states:[ init; active ] ~init:"Init" m
