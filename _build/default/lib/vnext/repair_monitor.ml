module M = Psharp.Monitor
module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

let name = "RepairMonitor"

(* Tracks, per extent, which ENs truly hold a replica. Hot while any
   tracked extent is below the target. *)
let create ~replica_target () =
  let replicas : Int_set.t Int_map.t ref = ref Int_map.empty in
  let refresh m =
    let deficient =
      Int_map.exists
        (fun _extent ens -> Int_set.cardinal ens < replica_target)
        !replicas
    in
    if deficient then M.goto m "Repairing" else M.goto m "Repaired"
  in
  let update extent f =
    let current =
      Option.value (Int_map.find_opt extent !replicas)
        ~default:Int_set.empty
    in
    replicas := Int_map.add extent (f current) !replicas
  in
  M.make ~name ~initial:"Repaired"
    ~states:[ ("Repaired", M.Cold); ("Repairing", M.Hot) ]
    (fun m e ->
      match e with
      | Events.M_initial_extents layout ->
        replicas :=
          List.fold_left
            (fun acc (extent, ens) ->
              Int_map.add extent (Int_set.of_list ens) acc)
            Int_map.empty layout;
        refresh m
      | Events.M_en_failed en ->
        replicas := Int_map.map (fun ens -> Int_set.remove en ens) !replicas;
        refresh m
      | Events.M_extent_repaired { en; extent } ->
        update extent (Int_set.add en);
        refresh m
      | _ -> ())
