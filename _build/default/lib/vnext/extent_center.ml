type extent_id = int
type en_id = int

module Int_set = Set.Make (Int)

type t = { mutable by_extent : Int_set.t Map.Make(Int).t }

module Int_map = Map.Make (Int)

let create () = { by_extent = Int_map.empty }

let holders_set t extent =
  Option.value (Int_map.find_opt extent t.by_extent) ~default:Int_set.empty

let remove_en t ~en =
  t.by_extent <-
    Int_map.filter_map
      (fun _extent ens ->
        let ens = Int_set.remove en ens in
        if Int_set.is_empty ens then None else Some ens)
      t.by_extent

let add t ~en ~extent =
  t.by_extent <-
    Int_map.add extent (Int_set.add en (holders_set t extent)) t.by_extent

let apply_sync t ~en ~extents =
  remove_en t ~en;
  List.iter (fun extent -> add t ~en ~extent) extents

let replica_count t ~extent = Int_set.cardinal (holders_set t extent)

let holders t ~extent = Int_set.elements (holders_set t extent)

let extents t = List.map fst (Int_map.bindings t.by_extent)

let extents_of t ~en =
  Int_map.fold
    (fun extent ens acc -> if Int_set.mem en ens then extent :: acc else acc)
    t.by_extent []
  |> List.rev

let holds t ~en ~extent = Int_set.mem en (holders_set t extent)
