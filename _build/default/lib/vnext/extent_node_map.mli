(** ExtentNodeMap: the extent manager's map from extent nodes to heartbeat
    freshness (paper Fig. 6).

    Real vNext compares heartbeat timestamps against a wall-clock timeout
    spanning many heartbeat periods ("missing heartbeats for an extended
    period"). Under the testing engine all timing is logical, so freshness
    is modeled by counting expiration sweeps: a node expires after
    [misses_before_expiry] consecutive sweeps with no heartbeat in
    between. *)

type en_id = int

type t

val create : misses_before_expiry:int -> t

(** Record a heartbeat: (re-)registers the node and resets its miss count. *)
val heartbeat : t -> en:en_id -> unit

(** One expiration sweep: increments every node's miss count and removes
    (and returns) the nodes that reached the threshold. *)
val sweep : t -> en_id list

val mem : t -> en:en_id -> bool

(** Registered nodes, ascending. *)
val live : t -> en_id list

val remove : t -> en:en_id -> unit
