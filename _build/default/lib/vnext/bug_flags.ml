type t = { sync_after_expiry : bool }

let none = { sync_after_expiry = false }
let liveness_bug = { sync_after_expiry = true }
