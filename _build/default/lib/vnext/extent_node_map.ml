type en_id = int

module Int_map = Map.Make (Int)

type t = {
  misses_before_expiry : int;
  mutable nodes : int Int_map.t;  (* en -> consecutive sweeps missed *)
}

let create ~misses_before_expiry = { misses_before_expiry; nodes = Int_map.empty }

let heartbeat t ~en = t.nodes <- Int_map.add en 0 t.nodes

let sweep t =
  let expired =
    Int_map.fold
      (fun en misses acc ->
        if misses + 1 >= t.misses_before_expiry then en :: acc else acc)
      t.nodes []
  in
  t.nodes <-
    Int_map.filter_map
      (fun _en misses ->
        if misses + 1 >= t.misses_before_expiry then None else Some (misses + 1))
      t.nodes;
  List.rev expired

let mem t ~en = Int_map.mem en t.nodes

let live t = List.map fst (Int_map.bindings t.nodes)

let remove t ~en = t.nodes <- Int_map.remove en t.nodes
