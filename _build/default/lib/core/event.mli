(** Events exchanged between machines.

    [Event.t] is an extensible variant: each system under test declares its
    own message constructors ([type Event.t += ClientReq of data | ...]).
    The engine identifies events by constructor name (used for tracing and
    for the declarative state-machine layer's handler tables). *)

type t = ..

(** Built-in events understood by the engine. *)
type t +=
  | Halt_event  (** requests the receiving machine to halt *)
  | Unit_event  (** payload-free wake-up *)

(** [name e] is the constructor name of [e], e.g. ["ClientReq"]. *)
val name : t -> string

(** Register a pretty-printer used by [to_string]. Printers are tried most
    recent first; the first to return [Some] wins. *)
val register_printer : (t -> string option) -> unit

(** [to_string e] renders [e] with the registered printers, falling back to
    the bare constructor name. *)
val to_string : t -> string
