(** Deterministic pseudo-random number generator (SplitMix64).

    The systematic testing engine must be reproducible across runs and
    machines, so we implement our own generator rather than relying on the
    stdlib's. SplitMix64 passes BigCrush and supports cheap splitting, which
    gives independent streams per execution iteration. *)

type t

(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : seed:int64 -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)
val split : t -> t

(** [next_int64 t] returns the next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [float t bound] returns a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [pick t xs] returns a uniform element of [xs].
    @raise Invalid_argument on the empty list. *)
val pick : t -> 'a list -> 'a

(** [pick_array t xs] returns a uniform element of [xs].
    @raise Invalid_argument on the empty array. *)
val pick_array : t -> 'a array -> 'a

(** [shuffle t xs] permutes [xs] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
