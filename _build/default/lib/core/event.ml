type t = ..

type t +=
  | Halt_event
  | Unit_event

(* Extension-constructor names are fully qualified ("Psharp.Timer.Timer_tick");
   handler tables use the bare constructor name, so strip the module path. *)
let name (e : t) =
  let full =
    Obj.Extension_constructor.name (Obj.Extension_constructor.of_val e)
  in
  match String.rindex_opt full '.' with
  | None -> full
  | Some i -> String.sub full (i + 1) (String.length full - i - 1)

let printers : (t -> string option) list ref = ref []

let register_printer f = printers := f :: !printers

let to_string e =
  let rec try_printers = function
    | [] -> name e
    | f :: rest -> (match f e with Some s -> s | None -> try_printers rest)
  in
  try_printers !printers
