(** Randomized delay-bounded scheduler (Emmi, Qadeer & Rakamarić, POPL
    2011 — cited as the paper's [11]).

    The baseline schedule is non-preemptive: keep running the same machine
    while it stays enabled (run-to-completion), otherwise fall to the
    lowest-index enabled machine. A budget of [delays] is spent at random
    steps: when one triggers, the scheduler "delays" the machine that
    would have run and picks the next enabled machine instead. Many
    concurrency bugs need only a couple of delays off the deterministic
    schedule, which makes small budgets a strong search heuristic. *)

val factory :
  seed:int64 -> ?delays:int -> ?max_steps:int -> unit -> Strategy.factory
