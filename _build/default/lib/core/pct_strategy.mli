(** Randomized priority-based scheduler (paper §6.2; Burckhardt et al.,
    ASPLOS 2010 — "PCT").

    Each machine is assigned a random priority when first seen; at every
    scheduling point the highest-priority enabled machine runs. The strategy
    additionally places [change_points] priority-change points at random
    steps of the execution; when one is hit, the machine about to run is
    demoted below every other machine. The paper configures a budget of
    2 change points per execution. *)

val factory : seed:int64 -> ?change_points:int -> ?max_steps:int -> unit -> Strategy.factory
