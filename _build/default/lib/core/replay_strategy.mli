(** Deterministic replay of a recorded trace.

    Feeds back the exact choices of a previous execution. If the program has
    changed (or the trace is stale) so that a recorded choice is no longer
    possible, the execution aborts with [Error.Replay_divergence]. The
    factory yields exactly one strategy: replay is a single execution. *)

val factory : Trace.t -> Strategy.factory
