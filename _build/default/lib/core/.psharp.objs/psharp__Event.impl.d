lib/core/event.ml: Obj String
