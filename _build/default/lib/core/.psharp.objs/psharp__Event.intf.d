lib/core/event.mli:
