lib/core/error.mli: Format Trace
