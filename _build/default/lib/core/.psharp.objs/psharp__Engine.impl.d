lib/core/engine.ml: Delay_strategy Dfs_strategy Error Format Hashtbl List Pct_strategy Random_strategy Replay_strategy Rr_strategy Runtime Strategy Trace Unix
