lib/core/statemachine.ml: Error Event Id List Printf Registry Runtime
