lib/core/replay_strategy.ml: Array Error Printf Strategy Trace
