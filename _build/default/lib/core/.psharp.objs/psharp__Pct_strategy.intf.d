lib/core/pct_strategy.mli: Strategy
