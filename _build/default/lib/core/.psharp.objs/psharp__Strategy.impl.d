lib/core/strategy.ml:
