lib/core/inbox.mli: Event
