lib/core/prng.ml: Array Int64 List
