lib/core/trace.ml: Array Fun List Printf String
