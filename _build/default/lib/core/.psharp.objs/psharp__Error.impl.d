lib/core/error.ml: Format Printf String Trace
