lib/core/rr_strategy.ml: Array Strategy
