lib/core/random_strategy.mli: Strategy
