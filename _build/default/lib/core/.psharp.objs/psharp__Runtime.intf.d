lib/core/runtime.mli: Error Event Id Monitor Strategy Trace
