lib/core/dfs_strategy.ml: Array List Strategy Trace
