lib/core/shrinker.ml: Array Engine Error Int64 List Prng Runtime Strategy Trace
