lib/core/shrinker.mli: Engine Error Monitor Runtime
