lib/core/delay_strategy.ml: Array Int Int64 Prng Set Strategy
