lib/core/monitor.mli: Event
