lib/core/strategy.mli:
