lib/core/runtime.ml: Array Effect Error Event Id Inbox List Monitor Option Printexc Printf Strategy Trace
