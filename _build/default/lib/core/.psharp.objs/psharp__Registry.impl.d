lib/core/registry.ml: Hashtbl List Option Set
