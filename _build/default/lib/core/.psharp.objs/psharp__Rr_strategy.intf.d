lib/core/rr_strategy.mli: Strategy
