lib/core/delay_strategy.mli: Strategy
