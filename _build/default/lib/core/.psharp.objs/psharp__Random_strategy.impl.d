lib/core/random_strategy.ml: Int64 Prng Strategy
