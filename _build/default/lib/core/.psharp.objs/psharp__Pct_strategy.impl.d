lib/core/pct_strategy.ml: Array Hashtbl Int Int64 Prng Set Strategy
