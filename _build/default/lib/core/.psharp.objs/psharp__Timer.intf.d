lib/core/timer.mli: Event Id Runtime
