lib/core/id.ml: Format Int Printf
