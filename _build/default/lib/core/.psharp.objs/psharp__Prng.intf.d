lib/core/prng.mli:
