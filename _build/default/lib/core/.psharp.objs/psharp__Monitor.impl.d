lib/core/monitor.ml: Error Event List Printf Registry
