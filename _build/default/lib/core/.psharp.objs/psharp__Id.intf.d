lib/core/id.mli: Format
