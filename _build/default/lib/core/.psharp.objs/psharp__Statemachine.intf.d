lib/core/statemachine.mli: Event Runtime
