lib/core/inbox.ml: Event List
