lib/core/replay_strategy.mli: Strategy Trace
