lib/core/trace.mli:
