lib/core/timer.ml: Event Registry Runtime
