lib/core/registry.mli:
