lib/core/engine.mli: Error Format Monitor Runtime Trace
