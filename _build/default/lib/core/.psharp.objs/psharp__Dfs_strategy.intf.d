lib/core/dfs_strategy.mli: Strategy
