(** Bug reports produced by the testing engine. *)

type kind =
  | Safety_violation of { monitor : string; message : string }
      (** a safety monitor's assertion failed (§2.4) *)
  | Liveness_violation of { monitor : string; hot_since : int; state : string }
      (** a liveness monitor was hot when the bounded "infinite" execution
          ended (§2.5); [hot_since] is the step at which it last became hot *)
  | Deadlock of { blocked : string list }
      (** no machine is enabled but some are still waiting for events *)
  | Unhandled_event of { machine : string; state : string; event : string }
      (** a machine received an event its current state does not handle *)
  | Assertion_failure of { machine : string; message : string }
      (** a local [assert_] in a machine failed *)
  | Machine_exception of { machine : string; exn : string }
      (** a machine body raised an unexpected exception *)
  | Replay_divergence of { step : int; message : string }
      (** a recorded trace could not be replayed against this program *)

type report = {
  kind : kind;
  step : int;  (** scheduling step at which the bug was detected *)
  trace : Trace.t;  (** full schedule witnessing the bug *)
  log : string list;  (** global-order event log, oldest first *)
}

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val pp_report : Format.formatter -> report -> unit

(** Raised inside an execution to abort it with a bug; callers outside the
    runtime never see this exception. *)
exception Bug of kind
