let make ~seed ~iteration : Strategy.t =
  let rng =
    Prng.create ~seed:(Int64.add seed (Int64.of_int (iteration * 2 + 1)))
  in
  {
    name = "random";
    next_schedule = (fun ~enabled ~step:_ -> Prng.pick_array rng enabled);
    next_bool = (fun ~step:_ -> Prng.bool rng);
    next_int = (fun ~bound ~step:_ -> Prng.int rng bound);
  }

let factory ~seed =
  Strategy.stateless ~name:"random" (fun ~iteration -> make ~seed ~iteration)
