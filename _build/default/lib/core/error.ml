type kind =
  | Safety_violation of { monitor : string; message : string }
  | Liveness_violation of { monitor : string; hot_since : int; state : string }
  | Deadlock of { blocked : string list }
  | Unhandled_event of { machine : string; state : string; event : string }
  | Assertion_failure of { machine : string; message : string }
  | Machine_exception of { machine : string; exn : string }
  | Replay_divergence of { step : int; message : string }

type report = {
  kind : kind;
  step : int;
  trace : Trace.t;
  log : string list;
}

let kind_to_string = function
  | Safety_violation { monitor; message } ->
    Printf.sprintf "safety violation in monitor %s: %s" monitor message
  | Liveness_violation { monitor; hot_since; state } ->
    Printf.sprintf
      "liveness violation: monitor %s stuck in hot state %s since step %d"
      monitor state hot_since
  | Deadlock { blocked } ->
    Printf.sprintf "deadlock: machines [%s] are blocked and none is enabled"
      (String.concat "; " blocked)
  | Unhandled_event { machine; state; event } ->
    Printf.sprintf "machine %s in state %s cannot handle event %s" machine
      state event
  | Assertion_failure { machine; message } ->
    Printf.sprintf "assertion failed in machine %s: %s" machine message
  | Machine_exception { machine; exn } ->
    Printf.sprintf "machine %s raised: %s" machine exn
  | Replay_divergence { step; message } ->
    Printf.sprintf "replay diverged at step %d: %s" step message

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

let pp_report fmt r =
  Format.fprintf fmt "@[<v>bug at step %d: %s@,trace length (#NDC): %d@]"
    r.step (kind_to_string r.kind) (Trace.length r.trace)

exception Bug of kind
