(** P#-style declarative state machines (paper §2.1).

    A machine is a set of named states; each state registers action handlers
    keyed by event (constructor) name, plus sets of deferred and ignored
    events. The layer implements P# semantics on top of {!Runtime}:

    - events are dequeued FIFO and dispatched to the current state's handler;
    - a {e deferred} event is stashed and re-delivered when the machine
      enters a state that can handle it;
    - an {e ignored} event is dropped;
    - an event with no handler that is neither deferred nor ignored is an
      {e unhandled-event} bug — except [Event.Halt_event], which halts the
      machine gracefully;
    - [Goto] transitions run the exit action of the source state and the
      entry action of the target state.

    Declared states and handlers are recorded in {!Registry} (Table 1's
    #ST and #AH columns); observed transitions accumulate there too. *)

type 'm transition =
  | Stay
  | Goto of string  (** replace the whole state stack with the target *)
  | Push of string
      (** enter the target keeping the current state below it: events the
          pushed state does not handle fall through to the states below
          (P#'s push transition) *)
  | Pop  (** return to the state below (P#'s pop) *)
  | Halt_machine
  | Unhandled

type 'm handler = Runtime.ctx -> 'm -> Event.t -> 'm transition

type 'm state

(** [state name handlers] declares a state. [handlers] maps event names
    (see {!Event.name}) to actions. [defer]/[ignore_] list event names. *)
val state :
  ?entry:(Runtime.ctx -> 'm -> unit) ->
  ?exit_:(Runtime.ctx -> 'm -> unit) ->
  ?defer:string list ->
  ?ignore_:string list ->
  string ->
  (string * 'm handler) list ->
  'm state

(** [run ctx ~machine ~states ~init model] drives the machine forever (or
    until halt). [machine] is the registry name; [init] the initial state.
    @raise Invalid_argument if [init] or a [Goto] target is not declared. *)
val run :
  Runtime.ctx ->
  machine:string ->
  states:'m state list ->
  init:string ->
  'm ->
  unit
