(** Uniform random scheduler (paper §6.2).

    At every scheduling point, picks uniformly among the enabled machines;
    [nondet] choices are uniform too. Each execution derives an independent
    stream from the base seed, so a run is reproducible from
    [(seed, iteration)]. *)

val factory : seed:int64 -> Strategy.factory
