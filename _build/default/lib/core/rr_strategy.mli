(** Round-robin scheduler.

    Deterministic baseline used in ablations: machines are scheduled in
    creation order, cycling. [nondet] booleans alternate per execution
    (iteration parity) and integers count up, so successive executions are
    not all identical, but coverage is intentionally poor — this is the
    contrast case for the randomized strategies. *)

val factory : unit -> Strategy.factory
