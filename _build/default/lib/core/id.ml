type t = { index : int; name : string }

let make ~index ~name = { index; name }

let index t = t.index
let name t = t.name

let equal a b = a.index = b.index
let compare a b = Int.compare a.index b.index
let hash t = t.index

let to_string t = Printf.sprintf "%s(%d)" t.name t.index

let pp fmt t = Format.pp_print_string fmt (to_string t)
