(** Bounded exhaustive depth-first enumeration of schedules.

    Systematically enumerates every sequence of choices up to [max_depth]
    decisions, backtracking across executions. Only practical for small
    harnesses (the engine re-executes the program from scratch on every
    iteration), but valuable as ground truth in tests: if DFS exhausts the
    space without finding a bug, no schedule within the bound triggers it.

    Integer choices with bounds larger than [int_cap] are enumerated only up
    to [int_cap] values to keep the space finite. *)

val factory : ?max_depth:int -> ?int_cap:int -> unit -> Strategy.factory
