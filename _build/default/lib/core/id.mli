(** Machine identifiers.

    A machine id is its creation index within one execution, plus a
    human-readable name. Because the testing engine replays executions
    deterministically, creation indices are stable across replays of the
    same schedule, which lets traces refer to machines by index. *)

type t = private { index : int; name : string }

val make : index:int -> name:string -> t

val index : t -> int
val name : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** "name(index)" *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
