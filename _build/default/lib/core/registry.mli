(** Global statistics registry backing the Table 1 reproduction.

    Machine specifications register themselves (name, declared states,
    declared action handlers); the runtime records observed state
    transitions. [Registry] deduplicates by machine name, so repeated
    executions do not inflate the counts of declared artifacts, while
    transition counts accumulate distinct (from, to) edges. *)

type kind = Machine | Monitor

type machine_stats = {
  machine : string;
  kind : kind;
  states : int;
  handlers : int;
}

val register_machine :
  machine:string -> kind:kind -> states:int -> handlers:int -> unit

val record_transition : machine:string -> from_:string -> to_:string -> unit

(** All registered machines, in registration order. *)
val machines : unit -> machine_stats list

(** Number of distinct observed (from, to) transitions for [machine]. *)
val transitions : machine:string -> int

(** Aggregate over machines whose name passes [matching]. Returns
    (#machines, #states, #transitions, #handlers). *)
val aggregate : matching:(string -> bool) -> int * int * int * int

(** Forget everything (used by tests). *)
val reset : unit -> unit
