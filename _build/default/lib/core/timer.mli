(** Modeled timer (paper Fig. 9).

    All timing-related nondeterminism is delegated to the testing engine:
    the timer machine loops, nondeterministically deciding at each turn
    whether to deliver a tick to its target. The scheduler is thus free to
    interleave timeout events arbitrarily with regular system events. *)

type Event.t +=
  | Timer_tick  (** default tick delivered to the target *)
  | Timer_repeat  (** internal self-message driving the loop *)
  | Timer_stop  (** stops and halts the timer machine *)

(** [create ctx ~target ()] spawns a timer machine that repeatedly,
    nondeterministically sends [tick ()] (default [Timer_tick]) to
    [target]. Returns the timer's id; send it [Timer_stop] to stop it. *)
val create :
  Runtime.ctx ->
  target:Id.t ->
  ?tick:(unit -> Event.t) ->
  ?name:string ->
  unit ->
  Id.t
