type temperature = Hot | Cold | Neutral

type t = {
  name : string;
  states : (string * temperature) list;
  mutable current : string;
  mutable handler : (t -> Event.t -> unit) option;
  mutable hot_since : int option;
}

let make ~name ~initial ~states handler =
  if not (List.mem_assoc initial states) then
    invalid_arg
      (Printf.sprintf "Monitor.make: initial state %s not declared" initial);
  Registry.register_machine ~machine:name ~kind:Registry.Monitor
    ~states:(List.length states) ~handlers:1;
  { name; states; current = initial; handler = Some handler; hot_since = None }

let name t = t.name
let current t = t.current

let temperature t =
  match List.assoc_opt t.current t.states with
  | Some temp -> temp
  | None -> Neutral

let is_hot t = temperature t = Hot

let goto t s =
  if not (List.mem_assoc s t.states) then
    invalid_arg (Printf.sprintf "Monitor.goto: state %s not declared" s);
  if t.current <> s then
    Registry.record_transition ~machine:t.name ~from_:t.current ~to_:s;
  t.current <- s

let fail t msg =
  raise (Error.Bug (Error.Safety_violation { monitor = t.name; message = msg }))

let assert_ t cond msg = if not cond then fail t msg

let notify t e =
  match t.handler with
  | Some h -> h t e
  | None -> ()

let hot_since t = t.hot_since
let set_hot_since t v = t.hot_since <- v
