(** Safety and liveness monitors (paper §2.4–2.5).

    A monitor is a special machine that can receive, but not send, events.
    Machines notify monitors synchronously via [Runtime.notify]; the monitor
    updates private state and may (a) fail an assertion — a safety
    violation — or (b) move between {e hot} and {e cold} states. An
    execution that ends (or exceeds the step bound) while some liveness
    monitor is hot is a liveness violation.

    Monitors keep their instrumentation state in closures: build them inside
    the thunk passed to [Engine.run] so each execution gets fresh state. *)

type temperature = Hot | Cold | Neutral

type t

(** [make ~name ~initial ~states handler] creates a monitor whose states are
    [states] (name, temperature); [initial] must be one of them. [handler]
    receives the monitor (for [goto]/[current]/[fail]) and each notified
    event.
    @raise Invalid_argument if [initial] is not declared. *)
val make :
  name:string ->
  initial:string ->
  states:(string * temperature) list ->
  (t -> Event.t -> unit) ->
  t

val name : t -> string
val current : t -> string
val temperature : t -> temperature
val is_hot : t -> bool

(** [goto m s] transitions the monitor to state [s].
    @raise Invalid_argument if [s] was not declared. *)
val goto : t -> string -> unit

(** [fail m msg] flags a safety violation. *)
val fail : t -> string -> 'a

(** [assert_ m cond msg] is [fail m msg] when [cond] is false. *)
val assert_ : t -> bool -> string -> unit

(** [notify m e] runs the handler. Used by the runtime; may raise
    [Error.Bug]. *)
val notify : t -> Event.t -> unit

(** Step at which the monitor last entered a hot state, if currently hot.
    Maintained by the runtime. *)
val hot_since : t -> int option

val set_hot_since : t -> int option -> unit
