(* Classic two-list deque: [front] is the head in order, [back] is the tail
   reversed. Filtered removal rebuilds at most once. *)

type t = { mutable front : Event.t list; mutable back : Event.t list }

let create () = { front = []; back = [] }

let push t e = t.back <- e :: t.back

let normalize t =
  if t.front = [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let is_empty t = t.front = [] && t.back = []

let length t = List.length t.front + List.length t.back

let to_list t = t.front @ List.rev t.back

let pop_first t pred =
  normalize t;
  let rec remove acc = function
    | [] -> None
    | e :: rest ->
      if pred e then Some (e, List.rev_append acc rest)
      else remove (e :: acc) rest
  in
  match remove [] t.front with
  | Some (e, front') ->
    t.front <- front';
    Some e
  | None ->
    (match remove [] (List.rev t.back) with
     | Some (e, back_in_order) ->
       t.front <- t.front @ back_in_order;
       t.back <- [];
       Some e
     | None -> None)

let exists t pred = List.exists pred t.front || List.exists pred t.back

let clear t =
  t.front <- [];
  t.back <- []
