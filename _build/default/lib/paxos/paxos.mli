(** Single-decree Paxos (Lamport, "The Part-Time Parliament"), one of the
    sample protocols shipped with P# that the paper points readers to
    (§2.3). Competing proposers drive prepare/accept rounds against a set
    of acceptors; the agreement invariant — at most one value is ever
    chosen — is checked by a safety monitor.

    Two classic seeded bugs:
    - [forget_promise]: an acceptor accepts a proposal it has promised a
      higher ballot to reject;
    - [choose_own_value]: a proposer ignores the highest-ballot accepted
      value reported in promises and proposes its own value instead.

    Both allow two different values to be chosen under the right
    interleaving of messages from competing proposers. *)

type bugs = {
  forget_promise : bool;
  choose_own_value : bool;
}

val no_bugs : bugs
val bug_forget_promise : bugs
val bug_choose_own_value : bugs

(** [test ~bugs ~n_acceptors ~n_proposers ()] is a harness body: each
    proposer tries to get its own value chosen, retrying with higher
    ballots a bounded number of times. *)
val test :
  ?bugs:bugs ->
  ?n_acceptors:int ->
  ?n_proposers:int ->
  ?max_ballots:int ->
  unit ->
  Psharp.Runtime.ctx ->
  unit

(** The agreement monitor. *)
val monitors : unit -> Psharp.Monitor.t list
