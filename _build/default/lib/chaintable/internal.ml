let tombstone_prop = "__tombstone"
let vetag_prop = "__vetag"

let is_reserved_prop name = String.length name >= 2 && String.sub name 0 2 = "__"

let is_tombstone (row : Table_types.row) =
  List.mem_assoc tombstone_prop row.Table_types.props

let tombstone_props = [ (tombstone_prop, "1") ]

let with_vetag props ~vetag =
  Table_types.norm_props ((vetag_prop, string_of_int vetag) :: props)

let vetag (row : Table_types.row) =
  match List.assoc_opt vetag_prop row.Table_types.props with
  | Some v -> (try int_of_string v with Failure _ -> row.Table_types.etag)
  | None -> row.Table_types.etag

let app_props props =
  List.filter (fun (name, _) -> not (is_reserved_prop name)) props

let strip ~bugs (row : Table_types.row) =
  let etag =
    (* TombstoneOutputETag: leak the backend etag instead of the virtual
       one; later conditional operations with it spuriously fail. *)
    if bugs.Bug_flags.tombstone_output_etag then row.Table_types.etag
    else vetag row
  in
  { row with Table_types.props = app_props row.Table_types.props; etag }

let strip_old (row : Table_types.row) =
  { row with Table_types.props = app_props row.Table_types.props }
