(** Internal row metadata the MigratingTable stores in the new table:
    tombstones (deletion markers that shadow old-table rows) and virtual
    etags (the etag a row had in the old table when the migrator or a
    copy-on-write moved it, preserved so application-held etags survive the
    move). Reserved property names start with "__" and are stripped from
    application-visible rows. *)

val tombstone_prop : string
val vetag_prop : string

val is_reserved_prop : string -> bool

(** Does this (new-table) row represent a deletion? *)
val is_tombstone : Table_types.row -> bool

(** Property bag of a tombstone marker. *)
val tombstone_props : Table_types.props

(** [with_vetag props ~vetag] tags copied properties with the originating
    etag. *)
val with_vetag : Table_types.props -> vetag:int -> Table_types.props

(** The row's virtual etag: its [__vetag] property if present, else its
    backend etag. *)
val vetag : Table_types.row -> int

(** Application-visible view of a new-table row: reserved properties
    stripped, etag virtualized. [bugs] may substitute the backend etag
    (TombstoneOutputETag). *)
val strip : bugs:Bug_flags.t -> Table_types.row -> Table_types.row

(** Application-visible view of an old-table row (no reserved props). *)
val strip_old : Table_types.row -> Table_types.row

(** Application property bag (reserved props removed). *)
val app_props : Table_types.props -> Table_types.props
