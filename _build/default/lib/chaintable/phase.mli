(** Migration phases (paper §4).

    The migrator drives the configuration through these phases in order;
    every MigratingTable instance fetches the current phase at the start of
    each logical operation and follows the corresponding protocol. *)

type t =
  | Use_old  (** all operations pass through the old table *)
  | Prefer_old
      (** migrator is copying old → new; reads/writes use the overlay
          protocol (new shadows old, writes go to new via copy-on-write) *)
  | Prefer_new  (** copy complete; migrator is pruning the old table *)
  | Use_new_with_tombstones
      (** old table empty; tombstones may remain in the new table *)
  | Use_new  (** migration finished; new table only, no tombstones *)

val all : t list
val to_string : t -> string
val index : t -> int
val next : t -> t option

(** [compatible q p]: may an operation that began under phase [q] still be
    in flight when the system moves to phase [p]? False for [Use_old]
    against any later phase (the old table must be write-frozen once
    migration starts), and for overlay phases against the tombstone-free
    phases (tombstone writers must drain before cleanup). *)
val compatible : t -> t -> bool
