(** Core data model of the IChainTable interface (paper §4).

    Rows live in a single logical table keyed by (partition key, row key);
    every row carries a server-assigned etag used for optimistic
    concurrency, exactly as in Azure tables. *)

type key = { pk : string; rk : string }

val key : string -> string -> key
val compare_key : key -> key -> int
val key_to_string : key -> string

(** Property bag: sorted association list, string-valued. *)
type props = (string * string) list

(** Normalize (sort, last write wins per name). *)
val norm_props : props -> props

(** [merge_props ~base ~update] is Azure merge semantics: [update] values
    win per property, other [base] properties are retained. *)
val merge_props : base:props -> update:props -> props

type row = { key : key; props : props; etag : int }

val row_to_string : row -> string

(** Write operations (the IChainTable mutation vocabulary). [etag]-carrying
    operations are conditional: they fail with [Precondition_failed] unless
    the stored row's etag matches. *)
type op =
  | Insert of { key : key; props : props }
  | Replace of { key : key; etag : int; props : props }
  | Merge of { key : key; etag : int; props : props }
  | Insert_or_replace of { key : key; props : props }
  | Insert_or_merge of { key : key; props : props }
  | Delete of { key : key; etag : int option }
      (** [None] means unconditional delete ("*" etag) *)

val op_key : op -> key
val op_to_string : op -> string

type op_error =
  | Conflict  (** insert of an existing row *)
  | Not_found  (** conditional op on a missing row *)
  | Precondition_failed  (** etag mismatch *)
  | Batch_rejected of { index : int; error : string }
      (** cross-partition or malformed batch *)

val op_error_to_string : op_error -> string

(** Result of a successful mutation: the new etag ([None] for deletes). *)
type op_result = { new_etag : int option }

(** A logical operation as issued by an application: either one mutation or
    a read. Streamed queries are separate (see {!Reference_table} and
    {!Migrating_table}). *)
type read =
  | Retrieve of key
  | Query_atomic of Filter0.t

(** Outcome of a logical operation, as compared between the migrating table
    and the reference table. *)
type outcome =
  | Mutated of (op_result, op_error) result
  | Row of row option
  | Rows of row list

val outcome_to_string : outcome -> string

(** Outcome equality modulo etag values: etags are server-assigned counters
    that legitimately differ between the migrating table and the reference
    table, so comparison checks shape (success/error, row contents) and
    ignores the numeric etag. *)
val outcome_equivalent : outcome -> outcome -> bool
