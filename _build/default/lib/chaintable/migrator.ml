module T = Table_types
module B = Backend

type env = {
  backend : Backend.ops;
  advance : Phase.t -> unit;
}

(* Copy one row old -> new unless the new table already has an entry
   (a newer write or tombstone must win over the migrator's copy). *)
let copy_row env (row : T.row) =
  match env.backend.retrieve B.New row.T.key with
  | Some _ -> ()
  | None ->
    (match
       env.backend.execute B.New
         (T.Insert
            {
              key = row.T.key;
              props = Internal.with_vetag row.T.props ~vetag:row.T.etag;
            })
     with
     | Ok _ | Error T.Conflict -> ()  (* Conflict: someone wrote it first *)
     | Error (T.Not_found | T.Precondition_failed | T.Batch_rejected _) -> ())

(* Copy pass: walk the old table in key order. The
   EnsurePartitionSwitchedFromPopulated bug skips a partition wholesale
   when the new table already contains any row of it. *)
let copy_pass ~bugs env =
  let skip_partition pk =
    bugs.Bug_flags.ensure_partition_switched_from_populated
    && env.backend.peek_after B.New None (Filter.of_pk pk) <> None
  in
  let rec walk cursor skipping_pk =
    match env.backend.peek_after B.Old cursor Filter0.True with
    | None -> ()
    | Some row ->
      let pk = row.T.key.T.pk in
      let skip =
        match skipping_pk with
        | Some (p, skip) when p = pk -> skip
        | _ -> skip_partition pk
      in
      if not skip then copy_row env row;
      walk (Some row.T.key) (Some (pk, skip))
  in
  walk None None

(* Prune pass: the copy pass is complete, so every old row's authoritative
   version lives in the new table; physically delete the old rows. *)
let prune_pass env =
  let rec walk () =
    match env.backend.peek_after B.Old None Filter0.True with
    | None -> ()
    | Some row ->
      ignore
        (env.backend.execute B.Old (T.Delete { key = row.T.key; etag = None }));
      walk ()
  in
  walk ()

(* Cleanup pass: remove tombstone markers (conditionally — a marker
   replaced by a live row since we looked must survive). *)
let cleanup_pass env =
  let rec walk cursor =
    match env.backend.peek_after B.New cursor Filter0.True with
    | None -> ()
    | Some row ->
      if Internal.is_tombstone row then
        ignore
          (env.backend.execute B.New
             (T.Delete { key = row.T.key; etag = Some row.T.etag }));
      walk (Some row.T.key)
  in
  walk None

let run ?(bugs = Bug_flags.none) env =
  if bugs.Bug_flags.migrate_skip_prefer_old then begin
    (* Notional bug: jump straight over the copy phase; the prune pass then
       destroys rows that were never copied. *)
    env.advance Phase.Prefer_old;
    env.advance Phase.Prefer_new;
    prune_pass env;
    env.advance Phase.Use_new_with_tombstones;
    cleanup_pass env;
    env.advance Phase.Use_new
  end
  else if bugs.Bug_flags.migrate_skip_use_new_with_tombstones then begin
    (* Notional bug: skip the tombstone-cleanup phase; the USE_NEW fast
       path then exposes tombstone markers as live rows. *)
    env.advance Phase.Prefer_old;
    copy_pass ~bugs env;
    env.advance Phase.Prefer_new;
    prune_pass env;
    env.advance Phase.Use_new_with_tombstones;
    env.advance Phase.Use_new
  end
  else begin
    env.advance Phase.Prefer_old;
    copy_pass ~bugs env;
    env.advance Phase.Prefer_new;
    prune_pass env;
    env.advance Phase.Use_new_with_tombstones;
    cleanup_pass env;
    env.advance Phase.Use_new
  end
