(** Service machine (paper Fig. 12): owns one MigratingTable instance and
    issues a workload of logical operations through it. For every logical
    operation it registers the equivalent reference-table operation with
    the Tables machine, receives the reference outcome captured at the
    linearization point, and asserts the two outcomes are equivalent.
    Completed streamed reads are validated against the reference history
    via the Tables machine.

    The service tracks, per key, the pairs of etags (migrating-table
    virtual etag, reference-table etag) it has observed, so conditional
    operations can be issued with semantically matched conditions — the
    current pair for a valid condition, an older pair for a stale one. *)

val machine :
  tables:Psharp.Id.t ->
  bugs:Bug_flags.t ->
  workload:Workload.t ->
  report_to:Psharp.Id.t ->
  Psharp.Runtime.ctx ->
  unit
