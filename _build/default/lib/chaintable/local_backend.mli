(** Synchronous, single-threaded backend for unit tests and examples: two
    reference tables as the backends, plus a linked reference table that
    receives the pending logical operation at each linearization point —
    the same semantics as the harness's Tables machine, without machines. *)

type t

val create : unit -> t

(** The backend interface to hand to {!Migrating_table.create} and
    {!Migrator}. [begin_op]/[end_op] are trivial here (no concurrency). *)
val ops : t -> Backend.ops

val old_table : t -> Reference_table.t
val new_table : t -> Reference_table.t

(** The linked reference table (the virtual-table oracle). *)
val rt : t -> Reference_table.t

val phase : t -> Phase.t
val set_phase : t -> Phase.t -> unit

(** Advance function for {!Migrator.run} (no draining needed locally). *)
val advance : t -> Phase.t -> unit

(** Register the pending logical operation for the next linearization. *)
val set_pending : t -> Linearize.pending -> unit

(** The reference-table outcome captured at the last linearization point,
    clearing it. [None] if no linearization fired since the last take. *)
val take_rt_outcome : t -> Table_types.outcome option

(** Logical clock (advances on every backend call). *)
val now : t -> int
