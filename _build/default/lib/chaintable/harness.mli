(** Complete MigratingTable test environment (paper Fig. 12, §4): one
    Tables machine (backend tables + reference table), a set of service
    machines issuing workloads through their own MigratingTable instances,
    and a migrator machine moving the data set in the background. The
    harness root waits for every participant to finish, then shuts the
    Tables machine down so executions terminate cleanly. *)

(** [test ~bugs ()] is a root machine body for {!Psharp.Engine.run}.
    [workloads] gives one workload per service (default: two services with
    the default random workload). *)
val test :
  ?bugs:Bug_flags.t ->
  ?workloads:Workload.t list ->
  ?initial_rows:(Table_types.key * Table_types.props) list ->
  unit ->
  Psharp.Runtime.ctx ->
  unit

(** The harness for one named Table 2 bug: the default random harness, or
    the bug's pinned custom test case when [custom] (the paper's ⊙ runs). *)
val test_for_bug : ?custom:bool -> string -> Psharp.Runtime.ctx -> unit
