let compare_with cmp (a : string) (b : string) =
  let c = String.compare a b in
  match (cmp : Filter0.cmp) with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let field_value (row : Table_types.row) = function
  | Filter0.Pk -> Some row.Table_types.key.pk
  | Filter0.Rk -> Some row.Table_types.key.rk
  | Filter0.Prop p -> List.assoc_opt p row.Table_types.props

let rec matches f row =
  match (f : Filter0.t) with
  | True -> true
  | Compare (field, cmp, v) ->
    (match field_value row field with
     | Some actual -> compare_with cmp actual v
     | None -> cmp = Filter0.Ne)
  | And (a, b) -> matches a row && matches b row
  | Or (a, b) -> matches a row || matches b row
  | Not a -> not (matches a row)

let of_key (k : Table_types.key) =
  Filter0.And
    (Filter0.Compare (Filter0.Pk, Filter0.Eq, k.Table_types.pk),
     Filter0.Compare (Filter0.Rk, Filter0.Eq, k.Table_types.rk))

let of_pk pk = Filter0.Compare (Filter0.Pk, Filter0.Eq, pk)
