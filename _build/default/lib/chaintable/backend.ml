type table = Old | New

let table_to_string = function Old -> "old" | New -> "new"

type call_result =
  | Exec_result of (Table_types.op_result, Table_types.op_error) result
  | Batch_result of
      (Table_types.op_result list, Table_types.op_error) result
  | Row_result of Table_types.row option
  | Rows_result of Table_types.row list

type lin = call_result -> bool

type ops = {
  begin_op : unit -> Phase.t;
  end_op : unit -> unit;
  execute :
    ?lin:lin ->
    table ->
    Table_types.op ->
    (Table_types.op_result, Table_types.op_error) result;
  execute_batch :
    ?lin:lin ->
    table ->
    Table_types.op list ->
    (Table_types.op_result list, Table_types.op_error) result;
  retrieve : ?lin:lin -> table -> Table_types.key -> Table_types.row option;
  query : ?lin:lin -> table -> Filter0.t -> Table_types.row list;
  peek_after :
    ?lin:lin ->
    table ->
    Table_types.key option ->
    Filter0.t ->
    Table_types.row option;
  stream_phase : unit -> Phase.t;
}
