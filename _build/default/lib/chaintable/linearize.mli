(** Pending logical operations applied to the reference table at
    linearization points (paper §4): the harness registers one before each
    logical MigratingTable operation; the environment applies it to the
    reference table at the instant the backend call marked as the
    linearization point executes. *)

type pending =
  | Mutate of Table_types.op  (** etag condition uses reference-table etags *)
  | Read of Table_types.read

val pending_to_string : pending -> string

(** Apply to the reference table, stamping history with [at]. *)
val apply : Reference_table.t -> at:int -> pending -> Table_types.outcome
