(** Migrator machine (paper Fig. 12): runs the background migration job to
    completion against the Tables machine, then reports and halts. *)

val machine :
  tables:Psharp.Id.t ->
  bugs:Bug_flags.t ->
  report_to:Psharp.Id.t ->
  Psharp.Runtime.ctx ->
  unit
