lib/chaintable/local_backend.mli: Backend Linearize Phase Reference_table Table_types
