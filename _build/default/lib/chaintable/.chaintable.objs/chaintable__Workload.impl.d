lib/chaintable/workload.ml: Filter0 Printf Table_types
