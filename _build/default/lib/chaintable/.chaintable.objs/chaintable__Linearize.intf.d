lib/chaintable/linearize.mli: Reference_table Table_types
