lib/chaintable/migrator_machine.mli: Bug_flags Psharp
