lib/chaintable/filter.mli: Filter0 Table_types
