lib/chaintable/migrating_table.ml: Backend Bug_flags Filter Filter0 Fun Internal List Map Option Phase Table_types
