lib/chaintable/events.ml: Backend Filter0 Linearize List Phase Printf Psharp Spec_check Table_types
