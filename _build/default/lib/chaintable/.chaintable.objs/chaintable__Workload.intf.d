lib/chaintable/workload.mli: Filter0 Table_types
