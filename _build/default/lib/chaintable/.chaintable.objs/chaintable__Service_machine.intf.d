lib/chaintable/service_machine.mli: Bug_flags Psharp Workload
