lib/chaintable/harness.mli: Bug_flags Psharp Table_types Workload
