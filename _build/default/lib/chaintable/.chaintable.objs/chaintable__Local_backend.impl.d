lib/chaintable/local_backend.ml: Backend Linearize Phase Reference_table Table_types
