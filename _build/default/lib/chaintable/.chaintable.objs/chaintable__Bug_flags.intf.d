lib/chaintable/bug_flags.mli:
