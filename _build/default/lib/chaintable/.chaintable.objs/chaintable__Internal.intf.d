lib/chaintable/internal.mli: Bug_flags Table_types
