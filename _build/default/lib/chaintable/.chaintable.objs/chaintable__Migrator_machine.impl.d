lib/chaintable/migrator_machine.ml: Events Migrator Phase Printf Psharp Remote_backend
