lib/chaintable/remote_backend.ml: Backend Events Linearize Psharp Table_types
