lib/chaintable/backend.ml: Filter0 Phase Table_types
