lib/chaintable/bug_flags.ml: Printf
