lib/chaintable/events.mli: Backend Filter0 Linearize Phase Psharp Spec_check Table_types
