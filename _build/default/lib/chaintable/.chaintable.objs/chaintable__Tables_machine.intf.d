lib/chaintable/tables_machine.mli: Psharp Table_types
