lib/chaintable/table_types.ml: Filter0 Hashtbl List Printf String
