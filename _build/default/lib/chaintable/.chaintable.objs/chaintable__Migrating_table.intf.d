lib/chaintable/migrating_table.mli: Backend Bug_flags Filter0 Table_types
