lib/chaintable/filter0.ml: Printf
