lib/chaintable/filter0.mli:
