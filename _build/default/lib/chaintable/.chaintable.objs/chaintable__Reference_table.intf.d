lib/chaintable/reference_table.mli: Filter0 Table_types
