lib/chaintable/linearize.ml: Filter0 Printf Reference_table Table_types
