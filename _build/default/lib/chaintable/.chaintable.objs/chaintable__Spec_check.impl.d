lib/chaintable/spec_check.ml: Filter List Printf Reference_table Table_types
