lib/chaintable/spec_check.mli: Filter0 Reference_table Table_types
