lib/chaintable/remote_backend.mli: Backend Linearize Psharp Table_types
