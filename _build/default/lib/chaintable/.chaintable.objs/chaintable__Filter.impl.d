lib/chaintable/filter.ml: Filter0 List String Table_types
