lib/chaintable/phase.mli:
