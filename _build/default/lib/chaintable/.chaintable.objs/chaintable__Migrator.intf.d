lib/chaintable/migrator.mli: Backend Bug_flags Phase
