lib/chaintable/table_types.mli: Filter0
