lib/chaintable/tables_machine.ml: Backend Events Hashtbl Linearize List Phase Printf Psharp Reference_table Spec_check Table_types
