lib/chaintable/phase.ml:
