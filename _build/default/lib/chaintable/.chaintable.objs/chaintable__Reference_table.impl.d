lib/chaintable/reference_table.ml: Filter Hashtbl List Map Option Table_types
