lib/chaintable/internal.ml: Bug_flags List String Table_types
