lib/chaintable/harness.ml: Bug_flags Events List Migrator_machine Printf Psharp Service_machine Tables_machine Workload
