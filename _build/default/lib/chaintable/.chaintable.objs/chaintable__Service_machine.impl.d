lib/chaintable/service_machine.ml: Backend Events Filter0 Linearize List Map Migrating_table Option Printf Psharp Remote_backend Spec_check Table_types Workload
