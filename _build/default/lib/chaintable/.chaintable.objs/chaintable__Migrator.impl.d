lib/chaintable/migrator.ml: Backend Bug_flags Filter Filter0 Internal Phase Table_types
