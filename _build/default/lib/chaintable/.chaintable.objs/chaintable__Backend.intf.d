lib/chaintable/backend.mli: Filter0 Phase Table_types
