module T = Table_types
module B = Backend

type t = { backend : B.ops; bugs : Bug_flags.t }

let create ?(bugs = Bug_flags.none) backend = { backend; bugs }

let max_retries = 25

let lin_always : B.lin = fun _ -> true

let lin_ok : B.lin = function
  | B.Exec_result (Ok _) -> true
  | B.Exec_result (Error _) | B.Batch_result _ | B.Row_result _
  | B.Rows_result _ -> false

exception Retry_budget_exhausted

(* --- Key resolution (DeletePrimaryKey bug) ---------------------------- *)

(* The buggy delete path resolves its target by partition key only,
   hitting the first row of the partition. *)
let delete_target t (key : T.key) =
  match t.bugs.Bug_flags.delete_primary_key with
  | false -> key
  | true ->
    (match t.backend.peek_after B.New None (Filter.of_pk key.T.pk) with
     | Some row -> row.T.key
     | None ->
       (match t.backend.peek_after B.Old None (Filter.of_pk key.T.pk) with
        | Some row -> row.T.key
        | None -> key))

let resolve_op_key t (op : T.op) =
  match op with
  | T.Delete { key; etag } -> T.Delete { key = delete_target t key; etag }
  | T.Insert _ | T.Replace _ | T.Merge _ | T.Insert_or_replace _
  | T.Insert_or_merge _ -> op

(* --- Linearization predicates for the overlay reads -------------------

   The overlay protocol reads the OLD table first, then the NEW table.
   This order is essential: new-table entries are never deleted during the
   overlay phases (tombstone cleanup drains overlay operations first), so
   if the new-table read finds no entry, none existed throughout the
   two-read window, the old table was authoritative the whole time, and
   the old-read's result is still valid at the new-read instant. Reading
   new-then-old would let a row migrate between the reads and appear
   absent from both. The new-table read is therefore always the potential
   linearization point; its predicate folds in the already-known old-table
   result. *)

let new_read_decides (op : T.op) (old_row : T.row option) : B.lin = function
  | B.Row_result (Some row) ->
    (* The new table has an entry: it is authoritative. *)
    let tomb = Internal.is_tombstone row in
    (match op with
     | T.Insert _ -> not tomb  (* Conflict *)
     | T.Replace { etag; _ } | T.Merge { etag; _ }
     | T.Delete { etag = Some etag; _ } ->
       tomb (* Not_found *) || Internal.vetag row <> etag
       (* Precondition_failed *)
     | T.Delete { etag = None; _ } -> tomb  (* Not_found *)
     | T.Insert_or_replace _ | T.Insert_or_merge _ -> false)
  | B.Row_result None ->
    (* No new-table entry: the old-table result decides. *)
    (match old_row with
     | None ->
       (match op with
        | T.Insert _ | T.Insert_or_replace _ | T.Insert_or_merge _ -> false
        | T.Replace _ | T.Merge _ | T.Delete _ -> true (* Not_found *))
     | Some old_row ->
       (match op with
        | T.Insert _ -> true  (* Conflict *)
        | T.Replace { etag; _ } | T.Merge { etag; _ }
        | T.Delete { etag = Some etag; _ } ->
          old_row.T.etag <> etag  (* Precondition_failed *)
        | T.Delete { etag = None; _ } | T.Insert_or_replace _
        | T.Insert_or_merge _ -> false))
  | B.Exec_result _ | B.Batch_result _ | B.Rows_result _ -> false

(* --- Overlay mutation (PREFER_OLD / PREFER_NEW) ----------------------- *)

(* Replace the (existing, non-tombstone) new-table row [nrow] with
   app-level [props], conditioned on its backend etag. Returns [None] to
   signal an internal race requiring a retry of the whole operation. *)
let conditional_swap t ~lin (nrow : T.row) props =
  match
    t.backend.execute ~lin B.New
      (T.Replace { key = nrow.T.key; etag = nrow.T.etag; props })
  with
  | Ok r -> Some (Ok r)
  | Error (T.Precondition_failed | T.Not_found) -> None
  | Error (T.Conflict | T.Batch_rejected _) -> None

let overlay_mutate t ~phase (op : T.op) =
  let op = resolve_op_key t op in
  let key = T.op_key op in
  let rec go n =
    if n > max_retries then raise Retry_budget_exhausted;
    let retry () = go (n + 1) in
    let old_row = t.backend.retrieve B.Old key in
    match t.backend.retrieve ~lin:(new_read_decides op old_row) B.New key with
    | Some nrow when Internal.is_tombstone nrow ->
      (* Virtual table: row absent; physical: tombstone entry present. *)
      (match op with
       | T.Insert { props; _ } | T.Insert_or_replace { props; _ }
       | T.Insert_or_merge { props; _ } ->
         (match conditional_swap t ~lin:lin_ok nrow (T.norm_props props) with
          | Some result -> result
          | None -> retry ())
       | T.Replace _ | T.Merge _ | T.Delete _ ->
         Error T.Not_found (* linearized at the read *))
    | Some nrow -> begin
      (* Live row in the new table: it is authoritative. *)
      let base = Internal.app_props nrow.T.props in
      match op with
      | T.Insert _ -> Error T.Conflict
      | T.Replace { etag; props; _ } ->
        if Internal.vetag nrow <> etag then Error T.Precondition_failed
        else begin
          match conditional_swap t ~lin:lin_ok nrow (T.norm_props props) with
          | Some result -> result
          | None -> retry ()
        end
      | T.Merge { etag; props; _ } ->
        if Internal.vetag nrow <> etag then Error T.Precondition_failed
        else begin
          match
            conditional_swap t ~lin:lin_ok nrow
              (T.merge_props ~base ~update:props)
          with
          | Some result -> result
          | None -> retry ()
        end
      | T.Delete { etag; _ } ->
        (match etag with
         | Some e when Internal.vetag nrow <> e -> Error T.Precondition_failed
         | Some _ | None -> begin
           (* Deletes leave a tombstone: the old-table version (if any)
              must remain shadowed. *)
           match conditional_swap t ~lin:lin_ok nrow Internal.tombstone_props with
           | Some (Ok _) -> Ok { T.new_etag = None }
           | Some (Error e) -> Error e
           | None -> retry ()
         end)
      | T.Insert_or_replace { props; _ } ->
        (match conditional_swap t ~lin:lin_ok nrow (T.norm_props props) with
         | Some result -> result
         | None -> retry ())
      | T.Insert_or_merge { props; _ } ->
        (match
           conditional_swap t ~lin:lin_ok nrow (T.merge_props ~base ~update:props)
         with
         | Some result -> result
         | None -> retry ())
    end
    | None -> begin
      (* No new-table entry throughout the window: the old-table result is
         authoritative (see the ordering argument above); the outcome was
         linearized at the new-table read. *)
      match old_row with
      | Some old_row -> begin
        match op with
        | T.Insert _ -> Error T.Conflict
        | T.Replace { etag; _ } | T.Merge { etag; _ }
        | T.Delete { etag = Some etag; _ }
          when old_row.T.etag <> etag ->
          Error T.Precondition_failed
        | T.Delete _ ->
          (* Tombstone the key in the new table to shadow the old row. *)
          (match
             t.backend.execute ~lin:lin_ok B.New
               (T.Insert { key; props = Internal.tombstone_props })
           with
           | Ok _ -> Ok { T.new_etag = None }
           | Error _ -> retry ())
        | T.Insert_or_replace { props; _ } ->
          (* The old version is irrelevant; write directly. *)
          (match
             t.backend.execute ~lin:lin_ok B.New
               (T.Insert { key; props = T.norm_props props })
           with
           | Ok r -> Ok r
           | Error _ -> retry ())
        | T.Replace _ | T.Merge _ | T.Insert_or_merge _ ->
          (* Copy-on-write: move the old version into the new table (with
             its virtual etag), then retry against the new table. *)
          ignore
            (t.backend.execute B.New
               (T.Insert
                  {
                    key;
                    props =
                      Internal.with_vetag old_row.T.props
                        ~vetag:old_row.T.etag;
                  }));
          retry ()
      end
      | None -> begin
        (* Row exists nowhere. *)
        match op with
        | T.Insert { props; _ } ->
          let target =
            (* InsertBehindMigrator: during PREFER_OLD, insert straight
               into the old table; a row behind the migrator's copy cursor
               is never copied and is destroyed by the prune pass. *)
            if t.bugs.Bug_flags.insert_behind_migrator
               && phase = Phase.Prefer_old
            then B.Old
            else B.New
          in
          t.backend.execute ~lin:lin_always target
            (T.Insert { key; props = T.norm_props props })
        | T.Insert_or_replace { props; _ } | T.Insert_or_merge { props; _ } ->
          (match
             t.backend.execute ~lin:lin_ok B.New
               (T.Insert { key; props = T.norm_props props })
           with
           | Ok r -> Ok r
           | Error T.Conflict -> retry ()
           | Error _ as e -> e)
        | T.Replace _ | T.Merge _ | T.Delete _ ->
          Error T.Not_found (* linearized at the old read *)
      end
    end
  in
  go 0

(* --- New-table-only mutation (USE_NEW_WITH_TOMBSTONES / USE_NEW) ------ *)

let new_only_read_decides (op : T.op) : B.lin = function
  | B.Row_result (Some row) ->
    let tomb = Internal.is_tombstone row in
    (match op with
     | T.Insert _ -> not tomb
     | T.Replace { etag; _ } | T.Merge { etag; _ }
     | T.Delete { etag = Some etag; _ } ->
       tomb || Internal.vetag row <> etag
     | T.Delete { etag = None; _ } -> tomb
     | T.Insert_or_replace _ | T.Insert_or_merge _ -> false)
  | B.Row_result None ->
    (match op with
     | T.Insert _ | T.Insert_or_replace _ | T.Insert_or_merge _ -> false
     | T.Replace _ | T.Merge _ | T.Delete _ -> true)
  | B.Exec_result _ | B.Batch_result _ | B.Rows_result _ -> false

let new_only_mutate t (op : T.op) =
  let op = resolve_op_key t op in
  let key = T.op_key op in
  let rec go n =
    if n > max_retries then raise Retry_budget_exhausted;
    let retry () = go (n + 1) in
    if t.bugs.Bug_flags.delete_no_leave_tombstones_etag
       && (match op with T.Delete _ -> true | _ -> false)
    then
      (* DeleteNoLeaveTombstonesEtag: when no tombstone needs to be left,
         the etag condition is dropped entirely. *)
      t.backend.execute ~lin:lin_always B.New (T.Delete { key; etag = None })
    else
      match t.backend.retrieve ~lin:(new_only_read_decides op) B.New key with
      | Some nrow when Internal.is_tombstone nrow ->
        (match op with
         | T.Insert { props; _ } | T.Insert_or_replace { props; _ }
         | T.Insert_or_merge { props; _ } ->
           (match conditional_swap t ~lin:lin_ok nrow (T.norm_props props) with
            | Some result -> result
            | None -> retry ())
         | T.Replace _ | T.Merge _ | T.Delete _ -> Error T.Not_found)
      | Some nrow -> begin
        let base = Internal.app_props nrow.T.props in
        match op with
        | T.Insert _ -> Error T.Conflict
        | T.Replace { etag; props; _ } ->
          if Internal.vetag nrow <> etag then Error T.Precondition_failed
          else begin
            match conditional_swap t ~lin:lin_ok nrow (T.norm_props props) with
            | Some result -> result
            | None -> retry ()
          end
        | T.Merge { etag; props; _ } ->
          if Internal.vetag nrow <> etag then Error T.Precondition_failed
          else begin
            match
              conditional_swap t ~lin:lin_ok nrow
                (T.merge_props ~base ~update:props)
            with
            | Some result -> result
            | None -> retry ()
          end
        | T.Delete { etag; _ } -> begin
          (* No tombstone needed: the old table is empty. Physical delete,
             conditioned on the backend etag of the row we validated. *)
          match etag with
          | Some e when Internal.vetag nrow <> e -> Error T.Precondition_failed
          | Some _ | None ->
            (match
               t.backend.execute ~lin:lin_ok B.New
                 (T.Delete { key; etag = Some nrow.T.etag })
             with
             | Ok r -> Ok r
             | Error _ -> retry ())
        end
        | T.Insert_or_replace { props; _ } ->
          (match conditional_swap t ~lin:lin_ok nrow (T.norm_props props) with
           | Some result -> result
           | None -> retry ())
        | T.Insert_or_merge { props; _ } ->
          (match
             conditional_swap t ~lin:lin_ok nrow
               (T.merge_props ~base ~update:props)
           with
           | Some result -> result
           | None -> retry ())
      end
      | None -> begin
        match op with
        | T.Insert { props; _ } ->
          t.backend.execute ~lin:lin_always B.New
            (T.Insert { key; props = T.norm_props props })
        | T.Insert_or_replace { props; _ } | T.Insert_or_merge { props; _ } ->
          (match
             t.backend.execute ~lin:lin_ok B.New
               (T.Insert { key; props = T.norm_props props })
           with
           | Ok r -> Ok r
           | Error T.Conflict -> retry ()
           | Error _ as e -> e)
        | T.Replace _ | T.Merge _ | T.Delete _ -> Error T.Not_found
      end
  in
  go 0

(* --- Public mutation entry point --------------------------------------- *)

let mutate t op =
  let phase = t.backend.begin_op () in
  Fun.protect
    ~finally:(fun () -> t.backend.end_op ())
    (fun () ->
      match phase with
      | Phase.Use_old -> t.backend.execute ~lin:lin_always B.Old op
      | Phase.Prefer_old | Phase.Prefer_new -> overlay_mutate t ~phase op
      | Phase.Use_new_with_tombstones | Phase.Use_new -> new_only_mutate t op)


(* --- Batches -------------------------------------------------------------

   Single-partition atomic batches are supported where a single backend
   table is authoritative: pass-through in USE_OLD, and etag-translated
   against the new table in USE_NEW_WITH_TOMBSTONES / USE_NEW. During the
   overlay phases a multi-operation batch would span two tables and cannot
   be atomic, so it is rejected (batch traffic is restricted while a
   migration is in progress); singleton batches reduce to ordinary
   mutations in every phase. *)

let lin_batch_ok : B.lin = function
  | B.Batch_result (Ok _) -> true
  | B.Batch_result (Error _) | B.Exec_result _ | B.Row_result _
  | B.Rows_result _ -> false

(* Translate one op's virtual-etag condition into a backend condition
   against the new table; [Error] when the read already decides the op's
   failure. *)
let translate_new_only t (op : T.op) =
  let key = T.op_key op in
  match t.backend.retrieve B.New key with
  | Some nrow when Internal.is_tombstone nrow -> begin
    match op with
    | T.Insert { props; _ } | T.Insert_or_replace { props; _ }
    | T.Insert_or_merge { props; _ } ->
      Ok (T.Replace { key; etag = nrow.T.etag; props = T.norm_props props })
    | T.Replace _ | T.Merge _ | T.Delete _ -> Error T.Not_found
  end
  | Some nrow -> begin
    let base = Internal.app_props nrow.T.props in
    match op with
    | T.Insert _ -> Error T.Conflict
    | T.Replace { etag; props; _ } ->
      if Internal.vetag nrow <> etag then Error T.Precondition_failed
      else
        Ok (T.Replace { key; etag = nrow.T.etag; props = T.norm_props props })
    | T.Merge { etag; props; _ } ->
      if Internal.vetag nrow <> etag then Error T.Precondition_failed
      else
        Ok
          (T.Replace
             { key; etag = nrow.T.etag;
               props = T.merge_props ~base ~update:props })
    | T.Delete { etag; _ } -> begin
      match etag with
      | Some e when Internal.vetag nrow <> e -> Error T.Precondition_failed
      | Some _ | None -> Ok (T.Delete { key; etag = Some nrow.T.etag })
    end
    | T.Insert_or_replace { props; _ } ->
      Ok (T.Replace { key; etag = nrow.T.etag; props = T.norm_props props })
    | T.Insert_or_merge { props; _ } ->
      Ok
        (T.Replace
           { key; etag = nrow.T.etag;
             props = T.merge_props ~base ~update:props })
  end
  | None -> begin
    match op with
    | T.Insert { props; _ } | T.Insert_or_replace { props; _ }
    | T.Insert_or_merge { props; _ } ->
      Ok (T.Insert { key; props = T.norm_props props })
    | T.Replace _ | T.Merge _ | T.Delete _ -> Error T.Not_found
  end

let new_only_batch t ops =
  let rec go n =
    if n > max_retries then raise Retry_budget_exhausted;
    let rec translate acc = function
      | [] -> Ok (List.rev acc)
      | op :: rest -> begin
        match translate_new_only t op with
        | Error e -> Error e
        | Ok backend_op -> translate (backend_op :: acc) rest
      end
    in
    match translate [] ops with
    | Error e ->
      (* Decided by the reads; make the failure the linearization point
         via a dedicated no-op read on the first key. *)
      ignore
        (t.backend.retrieve ~lin:(fun _ -> true) B.New (T.op_key (List.hd ops)));
      Error e
    | Ok backend_ops -> begin
      match t.backend.execute_batch ~lin:lin_batch_ok B.New backend_ops with
      | Ok results ->
        (* Deletes report no etag at the app level. *)
        Ok
          (List.map2
             (fun (op : T.op) (r : T.op_result) ->
               match op with
               | T.Delete _ -> { T.new_etag = None }
               | T.Insert _ | T.Replace _ | T.Merge _
               | T.Insert_or_replace _ | T.Insert_or_merge _ -> r)
             ops results)
      | Error (T.Batch_rejected _ as e) -> Error e
      | Error (T.Precondition_failed | T.Not_found | T.Conflict) ->
        (* a row changed between translation and execution: retry *)
        go (n + 1)
    end
  in
  go 0

let mutate_batch t ops =
  match ops with
  | [] -> Error (T.Batch_rejected { index = 0; error = "empty batch" })
  | [ op ] -> begin
    (* A singleton batch is an ordinary mutation in every phase. *)
    match mutate t op with
    | Ok r -> Ok [ r ]
    | Error e -> Error e
  end
  | _ -> begin
    let phase = t.backend.begin_op () in
    Fun.protect
      ~finally:(fun () -> t.backend.end_op ())
      (fun () ->
        match phase with
        | Phase.Use_old -> t.backend.execute_batch ~lin:lin_batch_ok B.Old ops
        | Phase.Use_new_with_tombstones | Phase.Use_new -> new_only_batch t ops
        | Phase.Prefer_old | Phase.Prefer_new ->
          Error
            (T.Batch_rejected
               {
                 index = 0;
                 error =
                   "multi-operation batches are unavailable while a \
                    migration is in progress";
               }))
  end

(* --- Reads -------------------------------------------------------------- *)

let retrieve t key =
  let phase = t.backend.begin_op () in
  Fun.protect
    ~finally:(fun () -> t.backend.end_op ())
    (fun () ->
      match phase with
      | Phase.Use_old ->
        Option.map Internal.strip_old
          (t.backend.retrieve ~lin:lin_always B.Old key)
      | Phase.Prefer_old | Phase.Prefer_new -> begin
        (* Old first, then new (see the read-ordering argument above); the
           new-table read is always the linearization point. *)
        let old_row = t.backend.retrieve B.Old key in
        match t.backend.retrieve ~lin:lin_always B.New key with
        | Some row ->
          if Internal.is_tombstone row then None
          else Some (Internal.strip ~bugs:t.bugs row)
        | None -> Option.map Internal.strip_old old_row
      end
      | Phase.Use_new_with_tombstones -> begin
        match t.backend.retrieve ~lin:lin_always B.New key with
        | Some row when Internal.is_tombstone row -> None
        | Some row -> Some (Internal.strip ~bugs:t.bugs row)
        | None -> None
      end
      | Phase.Use_new ->
        (* Fast path: migration guarantees no tombstones remain. *)
        Option.map (Internal.strip ~bugs:t.bugs)
          (t.backend.retrieve ~lin:lin_always B.New key))

module Key_map = Map.Make (struct
  type t = T.key

  let compare = T.compare_key
end)

let query_atomic t user_filter =
  let phase = t.backend.begin_op () in
  Fun.protect
    ~finally:(fun () -> t.backend.end_op ())
    (fun () ->
      let post rows =
        List.filter (fun row -> Filter.matches user_filter row) rows
      in
      match phase with
      | Phase.Use_old ->
        List.map Internal.strip_old
          (t.backend.query ~lin:lin_always B.Old user_filter)
      | Phase.Prefer_old | Phase.Prefer_new ->
        (* QueryAtomicFilterShadowing: pushing the user filter down to the
           backends lets an unfiltered-out old version escape shadowing by
           its filtered-out new version. The repaired code fetches
           everything and filters after the merge. *)
        let pushdown =
          if t.bugs.Bug_flags.query_atomic_filter_shadowing then user_filter
          else Filter0.True
        in
        let old_rows = t.backend.query B.Old pushdown in
        let new_rows = t.backend.query ~lin:lin_always B.New pushdown in
        let merged =
          List.fold_left
            (fun acc (row : T.row) -> Key_map.add row.T.key (`New row) acc)
            (List.fold_left
               (fun acc (row : T.row) -> Key_map.add row.T.key (`Old row) acc)
               Key_map.empty old_rows)
            new_rows
        in
        Key_map.fold
          (fun _key entry acc ->
            match entry with
            | `New row when Internal.is_tombstone row -> acc
            | `New row -> Internal.strip ~bugs:t.bugs row :: acc
            | `Old row -> Internal.strip_old row :: acc)
          merged []
        |> List.rev |> post
      | Phase.Use_new_with_tombstones ->
        t.backend.query ~lin:lin_always B.New Filter0.True
        |> List.filter (fun row -> not (Internal.is_tombstone row))
        |> List.map (Internal.strip ~bugs:t.bugs)
        |> post
      | Phase.Use_new ->
        (* Fast path: no tombstone filtering. *)
        t.backend.query ~lin:lin_always B.New Filter0.True
        |> List.map (Internal.strip ~bugs:t.bugs)
        |> post)

(* --- Streamed queries --------------------------------------------------- *)

type stream_mode =
  | S_old_only
  | S_overlay
  | S_new_only of { drop_tombstones : bool }

type stream = {
  table : t;
  user_filter : Filter0.t;
  mode : stream_mode;
  mutable cursor : T.key option;
  mutable finished : bool;
  mutable cached_new : T.row option option;
      (** read-ahead cache of the new-table peek; only consulted when the
          QueryStreamedBackUpNewStream bug is enabled *)
}

let query_streamed t user_filter =
  let phase = t.backend.stream_phase () in
  let mode =
    match phase with
    | Phase.Use_old -> S_old_only
    | Phase.Prefer_old | Phase.Prefer_new -> S_overlay
    | Phase.Use_new_with_tombstones -> S_new_only { drop_tombstones = true }
    | Phase.Use_new -> S_new_only { drop_tombstones = false }
  in
  { table = t; user_filter; mode; cursor = None; finished = false;
    cached_new = None }

let stream_pushdown s =
  if s.table.bugs.Bug_flags.query_streamed_filter_shadowing then s.user_filter
  else Filter0.True

let peek_new s =
  let t = s.table in
  if t.bugs.Bug_flags.query_streamed_back_up_new_stream then begin
    (* Keep the previous read-ahead instead of backing the stream up to the
       merge cursor: rows that moved old -> new behind the read-ahead are
       missed (§6.2). *)
    match s.cached_new with
    | Some peek -> peek
    | None ->
      let peek = t.backend.peek_after B.New s.cursor (stream_pushdown s) in
      s.cached_new <- Some peek;
      peek
  end
  else t.backend.peek_after B.New s.cursor (stream_pushdown s)

let consume_new s (row : T.row) =
  (* The cached read-ahead was emitted (or skipped); refill next time. *)
  (match s.cached_new with
   | Some (Some cached) when T.compare_key cached.T.key row.T.key <= 0 ->
     s.cached_new <- None
   | Some _ | None -> ());
  ()

let rec stream_next s =
  if s.finished then None
  else begin
    let t = s.table in
    let emit ~from_new (row : T.row) =
      s.cursor <- Some row.T.key;
      if from_new then consume_new s row;
      if from_new && Internal.is_tombstone row then stream_next s
      else begin
        let visible =
          if from_new then Internal.strip ~bugs:t.bugs row
          else Internal.strip_old row
        in
        if Filter.matches s.user_filter visible then Some visible
        else stream_next s
      end
    in
    match s.mode with
    | S_old_only -> begin
      match t.backend.peek_after B.Old s.cursor (stream_pushdown s) with
      | None ->
        s.finished <- true;
        None
      | Some row -> emit ~from_new:false row
    end
    | S_new_only { drop_tombstones } -> begin
      match peek_new s with
      | None ->
        s.finished <- true;
        None
      | Some row ->
        s.cursor <- Some row.T.key;
        consume_new s row;
        if drop_tombstones && Internal.is_tombstone row then stream_next s
        else begin
          let visible = Internal.strip ~bugs:t.bugs row in
          if Filter.matches s.user_filter visible then Some visible
          else stream_next s
        end
    end
    | S_overlay -> begin
      let old_peek = t.backend.peek_after B.Old s.cursor (stream_pushdown s) in
      let new_peek = peek_new s in
      match (old_peek, new_peek) with
      | None, None ->
        s.finished <- true;
        None
      | Some row, None -> emit ~from_new:false row
      | None, Some row -> emit ~from_new:true row
      | Some old_row, Some new_row ->
        let c = T.compare_key old_row.T.key new_row.T.key in
        if c < 0 then emit ~from_new:false old_row
        else if c > 0 then emit ~from_new:true new_row
        else if t.bugs.Bug_flags.query_streamed_lock then begin
          (* QueryStreamedLock: the merge breaks the tie toward the old
             table, emitting stale or deleted versions. *)
          consume_new s new_row;
          emit ~from_new:false old_row
        end
        else emit ~from_new:true new_row
    end
  end

let stream_to_list s =
  let rec go acc =
    match stream_next s with
    | Some row -> go (row :: acc)
    | None -> List.rev acc
  in
  go []
