module T = Table_types

module Key_map = Map.Make (struct
  type t = T.key

  let compare = T.compare_key
end)

type t = {
  mutable rows : T.row Key_map.t;
  mutable clock : int;
  mutable next_etag : int;
  etag_step : int;
  history : (T.key, (int * T.row option) list ref) Hashtbl.t;
}

(* Real table etags are globally unique opaque tokens; numbering tables in
   disjoint residue classes keeps distinct versions from ever comparing
   equal across tables (virtual etags mix both tables' etags). *)
let create ?(first_etag = 1) ?(etag_step = 1) () =
  {
    rows = Key_map.empty;
    clock = 0;
    next_etag = first_etag;
    etag_step;
    history = Hashtbl.create 32;
  }

let now t = t.clock

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let fresh_etag t =
  let e = t.next_etag in
  t.next_etag <- e + t.etag_step;
  e

let record_version t key version ~at =
  let log =
    match Hashtbl.find_opt t.history key with
    | Some log -> log
    | None ->
      let log = ref [] in
      Hashtbl.replace t.history key log;
      log
  in
  log := (at, version) :: !log

let retrieve t key = Key_map.find_opt key t.rows

(* Validate and compute the effect of one op against the current [rows],
   without assigning etags or mutating state. *)
let plan rows (op : T.op) :
  (T.props option (* new value; None = delete *), T.op_error) result =
  let current = Key_map.find_opt (T.op_key op) rows in
  match (op, current) with
  | T.Insert _, Some _ -> Error T.Conflict
  | T.Insert { props; _ }, None -> Ok (Some (T.norm_props props))
  | T.Replace _, None | T.Merge _, None -> Error T.Not_found
  | T.Replace { etag; props; _ }, Some row ->
    if row.T.etag = etag then Ok (Some (T.norm_props props))
    else Error T.Precondition_failed
  | T.Merge { etag; props; _ }, Some row ->
    if row.T.etag = etag then
      Ok (Some (T.merge_props ~base:row.T.props ~update:props))
    else Error T.Precondition_failed
  | T.Insert_or_replace { props; _ }, _ -> Ok (Some (T.norm_props props))
  | T.Insert_or_merge { props; _ }, None -> Ok (Some (T.norm_props props))
  | T.Insert_or_merge { props; _ }, Some row ->
    Ok (Some (T.merge_props ~base:row.T.props ~update:props))
  | T.Delete _, None -> Error T.Not_found
  | T.Delete { etag = None; _ }, Some _ -> Ok None
  | T.Delete { etag = Some etag; _ }, Some row ->
    if row.T.etag = etag then Ok None else Error T.Precondition_failed

let commit t key effect_ ~at =
  match effect_ with
  | Some props ->
    let row = { T.key; props; etag = fresh_etag t } in
    t.rows <- Key_map.add key row t.rows;
    record_version t key (Some row) ~at;
    { T.new_etag = Some row.T.etag }
  | None ->
    t.rows <- Key_map.remove key t.rows;
    record_version t key None ~at;
    { T.new_etag = None }

let execute ?at t op =
  match plan t.rows op with
  | Error e -> Error e
  | Ok effect_ ->
    let at = match at with Some at -> t.clock <- max t.clock at; at | None -> tick t in
    Ok (commit t (T.op_key op) effect_ ~at)

let validate_batch ops =
  let rec check index seen_keys pk = function
    | [] -> Ok ()
    | op :: rest ->
      let key = T.op_key op in
      if Option.is_some pk && Some key.T.pk <> pk then
        Error
          (T.Batch_rejected
             { index; error = "all batch operations must share a partition" })
      else if List.exists (fun k -> T.compare_key k key = 0) seen_keys then
        Error
          (T.Batch_rejected
             { index; error = "duplicate key in batch" })
      else check (index + 1) (key :: seen_keys) (Some key.T.pk) rest
  in
  match ops with
  | [] -> Error (T.Batch_rejected { index = 0; error = "empty batch" })
  | _ -> check 0 [] None ops

let execute_batch ?at t ops =
  match validate_batch ops with
  | Error e -> Error e
  | Ok () ->
    (* All-or-nothing: plan every op against the pre-state, then commit. *)
    let rec plan_all acc = function
      | [] -> Ok (List.rev acc)
      | op :: rest ->
        (match plan t.rows op with
         | Error e -> Error e
         | Ok eff -> plan_all ((T.op_key op, eff) :: acc) rest)
    in
    (match plan_all [] ops with
     | Error e -> Error e
     | Ok effects ->
       let at =
         match at with
         | Some at ->
           t.clock <- max t.clock at;
           at
         | None -> tick t
       in
       Ok (List.map (fun (key, eff) -> commit t key eff ~at) effects))

let query t filter =
  Key_map.fold
    (fun _key row acc -> if Filter.matches filter row then row :: acc else acc)
    t.rows []
  |> List.rev

let peek_after t after filter =
  let greater key =
    match after with
    | None -> true
    | Some a -> T.compare_key key a > 0
  in
  Key_map.fold
    (fun key row acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if greater key && Filter.matches filter row then Some row else None)
    t.rows None

let rows t = List.map snd (Key_map.bindings t.rows)

let size t = Key_map.cardinal t.rows

let history t key =
  match Hashtbl.find_opt t.history key with
  | Some log -> List.rev !log
  | None -> []

let known_keys t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.history []
  |> List.sort T.compare_key
