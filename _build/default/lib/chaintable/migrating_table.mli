(** MigratingTable: transparent live migration of a key-value data set
    between two chain tables (paper §4).

    Each application process creates its own instance over the same two
    backend tables; all data access goes through it. Every logical
    operation is implemented as a sequence of backend operations according
    to the phase-dependent protocol below, designed so that logical
    outcomes comply with the IChainTable specification as if performed on a
    single virtual table:

    - [USE_OLD]: pass-through to the old table.
    - [PREFER_OLD]/[PREFER_NEW] (the overlay phases): the new table shadows
      the old one. Writes go to the new table, moving the row's old-table
      version first when needed (copy-on-write, preserving the original
      etag as a virtual etag); deletes write tombstones that shadow
      old-table rows; reads merge the two tables.
    - [USE_NEW_WITH_TOMBSTONES]: the old table is empty; operations use the
      new table only, still honouring tombstones and virtual etags.
    - [USE_NEW]: tombstones have been cleaned up; a fast path that skips
      tombstone filtering (virtual etags remain honoured forever).

    Etags given to / returned from this interface are {e virtual} etags;
    conditional operations are translated to backend-etag conditions
    atomically at the decisive backend call, and raced attempts retry.

    Linearization points are reported to the environment via the backend's
    [lin] markers so the test harness can apply the logical operation to
    the reference table at the same instant (paper §4). *)

type t

val create : ?bugs:Bug_flags.t -> Backend.ops -> t

(** Apply one mutation; etag conditions are virtual etags previously
    returned by this interface. *)
val mutate :
  t ->
  Table_types.op ->
  (Table_types.op_result, Table_types.op_error) result

(** Single-partition atomic batch. Supported where one backend table is
    authoritative (USE_OLD, USE_NEW_WITH_TOMBSTONES, USE_NEW — with
    virtual-etag translation on the new table); a multi-operation batch
    during the overlay phases returns [Batch_rejected], since it would
    span two tables and cannot be atomic. Singleton batches reduce to
    {!mutate} in every phase. *)
val mutate_batch :
  t ->
  Table_types.op list ->
  (Table_types.op_result list, Table_types.op_error) result

(** Point read of the virtual table. *)
val retrieve : t -> Table_types.key -> Table_types.row option

(** Atomic snapshot query of the virtual table, in key order. *)
val query_atomic : t -> Filter0.t -> Table_types.row list

(** Streamed query: rows in ascending key order; each row may reflect the
    virtual table's state at any time between stream start and the row's
    read (the IChainTable streaming contract, §6.2). *)
type stream

val query_streamed : t -> Filter0.t -> stream
val stream_next : stream -> Table_types.row option

(** Drain a stream to a list (unit tests / examples). *)
val stream_to_list : stream -> Table_types.row list
