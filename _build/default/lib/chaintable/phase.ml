type t =
  | Use_old
  | Prefer_old
  | Prefer_new
  | Use_new_with_tombstones
  | Use_new

let all = [ Use_old; Prefer_old; Prefer_new; Use_new_with_tombstones; Use_new ]

let to_string = function
  | Use_old -> "USE_OLD"
  | Prefer_old -> "PREFER_OLD"
  | Prefer_new -> "PREFER_NEW"
  | Use_new_with_tombstones -> "USE_NEW_WITH_TOMBSTONES"
  | Use_new -> "USE_NEW"

let index = function
  | Use_old -> 0
  | Prefer_old -> 1
  | Prefer_new -> 2
  | Use_new_with_tombstones -> 3
  | Use_new -> 4

let next = function
  | Use_old -> Some Prefer_old
  | Prefer_old -> Some Prefer_new
  | Prefer_new -> Some Use_new_with_tombstones
  | Use_new_with_tombstones -> Some Use_new
  | Use_new -> None

let compatible a b =
  match (a, b) with
  | Use_old, Use_old -> true
  | Use_old, _ | _, Use_old -> false
  | (Prefer_old | Prefer_new), (Use_new_with_tombstones | Use_new) ->
    (* Overlay ops may write tombstones; they must drain before the
       migrator's tombstone cleanup can run. *)
    false
  | _, _ -> true
