(** Filter evaluation over rows. *)

(** [matches filter row] evaluates the filter. Property comparisons on a
    property the row lacks are false (Azure semantics), except [Ne], which
    is true for a missing property. *)
val matches : Filter0.t -> Table_types.row -> bool

(** A filter that selects exactly [key]. *)
val of_key : Table_types.key -> Filter0.t

(** A filter that selects a whole partition. *)
val of_pk : string -> Filter0.t
