type field =
  | Pk
  | Rk
  | Prop of string

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Compare of field * cmp * string
  | And of t * t
  | Or of t * t
  | Not of t

let field_to_string = function
  | Pk -> "PartitionKey"
  | Rk -> "RowKey"
  | Prop p -> p

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let rec to_string = function
  | True -> "true"
  | Compare (f, c, v) ->
    Printf.sprintf "(%s %s '%s')" (field_to_string f) (cmp_to_string c) v
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "(not %s)" (to_string a)

let rec size = function
  | True -> 1
  | Compare _ -> 1
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Not a -> 1 + size a
