type key = { pk : string; rk : string }

let key pk rk = { pk; rk }

let compare_key a b =
  match String.compare a.pk b.pk with
  | 0 -> String.compare a.rk b.rk
  | c -> c

let key_to_string k = Printf.sprintf "%s/%s" k.pk k.rk

type props = (string * string) list

let norm_props props =
  (* Last write wins per name, then sort by name. *)
  let tbl = Hashtbl.create 8 in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name v) props;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_props ~base ~update = norm_props (base @ update)

type row = { key : key; props : props; etag : int }

let row_to_string r =
  Printf.sprintf "{%s etag=%d %s}" (key_to_string r.key) r.etag
    (String.concat ","
       (List.map (fun (n, v) -> Printf.sprintf "%s=%s" n v) r.props))

type op =
  | Insert of { key : key; props : props }
  | Replace of { key : key; etag : int; props : props }
  | Merge of { key : key; etag : int; props : props }
  | Insert_or_replace of { key : key; props : props }
  | Insert_or_merge of { key : key; props : props }
  | Delete of { key : key; etag : int option }

let op_key = function
  | Insert { key; _ }
  | Replace { key; _ }
  | Merge { key; _ }
  | Insert_or_replace { key; _ }
  | Insert_or_merge { key; _ }
  | Delete { key; _ } -> key

let op_to_string = function
  | Insert { key; _ } -> Printf.sprintf "Insert(%s)" (key_to_string key)
  | Replace { key; etag; _ } ->
    Printf.sprintf "Replace(%s, etag=%d)" (key_to_string key) etag
  | Merge { key; etag; _ } ->
    Printf.sprintf "Merge(%s, etag=%d)" (key_to_string key) etag
  | Insert_or_replace { key; _ } ->
    Printf.sprintf "InsertOrReplace(%s)" (key_to_string key)
  | Insert_or_merge { key; _ } ->
    Printf.sprintf "InsertOrMerge(%s)" (key_to_string key)
  | Delete { key; etag } ->
    Printf.sprintf "Delete(%s, etag=%s)" (key_to_string key)
      (match etag with None -> "*" | Some e -> string_of_int e)

type op_error =
  | Conflict
  | Not_found
  | Precondition_failed
  | Batch_rejected of { index : int; error : string }

let op_error_to_string = function
  | Conflict -> "Conflict"
  | Not_found -> "NotFound"
  | Precondition_failed -> "PreconditionFailed"
  | Batch_rejected { index; error } ->
    Printf.sprintf "BatchRejected(op %d: %s)" index error

type op_result = { new_etag : int option }

type read =
  | Retrieve of key
  | Query_atomic of Filter0.t

type outcome =
  | Mutated of (op_result, op_error) result
  | Row of row option
  | Rows of row list

let outcome_to_string = function
  | Mutated (Ok { new_etag }) ->
    Printf.sprintf "Ok(etag=%s)"
      (match new_etag with None -> "-" | Some e -> string_of_int e)
  | Mutated (Error e) -> Printf.sprintf "Err(%s)" (op_error_to_string e)
  | Row None -> "Row(none)"
  | Row (Some r) -> Printf.sprintf "Row(%s)" (row_to_string r)
  | Rows rs ->
    Printf.sprintf "Rows[%s]" (String.concat "; " (List.map row_to_string rs))

let row_equivalent a b =
  compare_key a.key b.key = 0 && norm_props a.props = norm_props b.props

let outcome_equivalent a b =
  match (a, b) with
  | Mutated (Ok _), Mutated (Ok _) -> true
  | Mutated (Error x), Mutated (Error y) -> x = y
  | Row None, Row None -> true
  | Row (Some x), Row (Some y) -> row_equivalent x y
  | Rows xs, Rows ys ->
    List.length xs = List.length ys && List.for_all2 row_equivalent xs ys
  | _ -> false
