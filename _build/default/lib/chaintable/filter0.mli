(** Filter expressions over table rows (AST only; evaluation lives in
    {!Filter}, which knows about rows). Mirrors the Azure table query
    filter language: comparisons on the partition key, row key, and
    properties, combined with boolean connectives. *)

type field =
  | Pk
  | Rk
  | Prop of string

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Compare of field * cmp * string
  | And of t * t
  | Or of t * t
  | Not of t

val to_string : t -> string

(** Structural size (number of nodes), for generators and stats. *)
val size : t -> int
