module T = Table_types
module B = Backend

type t = {
  old_table : Reference_table.t;
  new_table : Reference_table.t;
  rt : Reference_table.t;
  mutable phase : Phase.t;
  mutable vclock : int;
  mutable pending : Linearize.pending option;
  mutable last_rt : T.outcome option;
}

let create () =
  {
    old_table = Reference_table.create ~first_etag:1 ~etag_step:2 ();
    new_table = Reference_table.create ~first_etag:2 ~etag_step:2 ();
    rt = Reference_table.create ();
    phase = Phase.Use_old;
    vclock = 0;
    pending = None;
    last_rt = None;
  }

let old_table t = t.old_table
let new_table t = t.new_table
let rt t = t.rt
let phase t = t.phase
let set_phase t p = t.phase <- p
let advance t p = t.phase <- p
let set_pending t p = t.pending <- Some p
let now t = t.vclock

let take_rt_outcome t =
  let o = t.last_rt in
  t.last_rt <- None;
  o

let table_of t = function
  | B.Old -> t.old_table
  | B.New -> t.new_table

let maybe_linearize t lin result =
  match lin with
  | None -> ()
  | Some pred ->
    if pred result then begin
      match t.pending with
      | Some pending ->
        t.last_rt <- Some (Linearize.apply t.rt ~at:t.vclock pending);
        t.pending <- None
      | None -> ()
    end

let ops t : B.ops =
  let tick () = t.vclock <- t.vclock + 1 in
  {
    B.begin_op = (fun () -> t.phase);
    end_op = (fun () -> ());
    execute =
      (fun ?lin table op ->
        tick ();
        let result = Reference_table.execute ~at:t.vclock (table_of t table) op in
        maybe_linearize t lin (B.Exec_result result);
        result);
    execute_batch =
      (fun ?lin table ops ->
        tick ();
        let result =
          Reference_table.execute_batch ~at:t.vclock (table_of t table) ops
        in
        maybe_linearize t lin (B.Batch_result result);
        result);
    retrieve =
      (fun ?lin table key ->
        tick ();
        let result = Reference_table.retrieve (table_of t table) key in
        maybe_linearize t lin (B.Row_result result);
        result);
    query =
      (fun ?lin table filter ->
        tick ();
        let result = Reference_table.query (table_of t table) filter in
        maybe_linearize t lin (B.Rows_result result);
        result);
    peek_after =
      (fun ?lin table after filter ->
        tick ();
        let result =
          Reference_table.peek_after (table_of t table) after filter
        in
        maybe_linearize t lin (B.Row_result result);
        result);
    stream_phase = (fun () -> t.phase);
  }
