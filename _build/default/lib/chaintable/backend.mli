(** The backend interface a MigratingTable instance operates against.

    In production these calls hit two real Azure tables; under the test
    harness each call is a message round trip through the Tables machine,
    which serializes all backend operations (paper Fig. 12) — so every call
    is a potential interleaving point for the testing engine.

    Linearization-point reporting: a call may carry a [lin] predicate. The
    environment evaluates it on the call's result; if it returns true, this
    call was the linearization point of the current logical operation, and
    the environment atomically applies the pending reference-table
    operation (see {!Tables_machine}). The MigratingTable code itself knows
    nothing about the reference table — it only marks which backend call
    decided the outcome. *)

type table = Old | New

val table_to_string : table -> string

type call_result =
  | Exec_result of (Table_types.op_result, Table_types.op_error) result
  | Batch_result of
      (Table_types.op_result list, Table_types.op_error) result
  | Row_result of Table_types.row option
  | Rows_result of Table_types.row list

(** Linearization predicate, evaluated atomically with the call. *)
type lin = call_result -> bool

type ops = {
  begin_op : unit -> Phase.t;
      (** fetch the migration phase and register this logical operation as
          in flight (phase transitions drain incompatible in-flight ops) *)
  end_op : unit -> unit;
  execute :
    ?lin:lin ->
    table ->
    Table_types.op ->
    (Table_types.op_result, Table_types.op_error) result;
  execute_batch :
    ?lin:lin ->
    table ->
    Table_types.op list ->
    (Table_types.op_result list, Table_types.op_error) result;
  retrieve : ?lin:lin -> table -> Table_types.key -> Table_types.row option;
  query : ?lin:lin -> table -> Filter0.t -> Table_types.row list;
  peek_after :
    ?lin:lin ->
    table ->
    Table_types.key option ->
    Filter0.t ->
    Table_types.row option;
  stream_phase : unit -> Phase.t;
      (** fetch the phase without registering an in-flight operation (used
          by long-lived streams, which must not block phase transitions) *)
}
