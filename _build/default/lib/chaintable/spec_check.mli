(** Checker for the streamed-read contract (paper §4, §6.2).

    The IChainTable streaming specification: a stream returns rows in
    ascending key order, and "each row read from a stream may reflect the
    state of the table at any time between when the stream was started and
    the row was read". The checker validates one completed stream against
    the reference table's version history:

    - keys must be strictly ascending;
    - every emitted row must equal some version of its key whose active
      interval intersects the window from stream start to that row's read;
    - every key the stream skipped must have been absent — or not matching
      the filter — at some instant of the relevant window (a row that
      matched continuously and was never emitted is a missed row, the
      defect of QueryStreamedBackUpNewStream). *)

type emission = { row : Table_types.row; at : int }

val check_stream :
  rt:Reference_table.t ->
  started_at:int ->
  finished_at:int ->
  filter:Filter0.t ->
  emissions:emission list ->
  (unit, string) result
