module T = Table_types

type emission = { row : T.row; at : int }

(* Versions of [key] as (state, active interval [from, until)) with
   [until = max_int] for the current version; the state before the first
   recorded version is None-from-minus-infinity. *)
let intervals history =
  let rec go = function
    | [] -> []
    | [ (t, v) ] -> [ (v, t, max_int) ]
    | (t, v) :: ((t', _) :: _ as rest) -> (v, t, t') :: go rest
  in
  (None, min_int, (match history with [] -> max_int | (t, _) :: _ -> t))
  :: go history

let window_intersects (from_, until) (a, b) =
  (* [from_, until) ∩ [a, b] ≠ ∅ *)
  from_ <= b && until > a

let props_equal (a : T.props) (b : T.props) = T.norm_props a = T.norm_props b

(* Could [key] have legitimately been skipped given window [a, b]? Yes iff
   at some instant it was absent or not matching the filter. *)
let skippable ~rt ~filter key (a, b) =
  let hist = Reference_table.history rt key in
  List.exists
    (fun (state, from_, until) ->
      window_intersects (from_, until) (a, b)
      &&
      match state with
      | None -> true
      | Some row -> not (Filter.matches filter row))
    (intervals hist)

(* Was some version of [key] equal to [row] active within the window? *)
let emittable ~rt key row (a, b) =
  let hist = Reference_table.history rt key in
  List.exists
    (fun (state, from_, until) ->
      window_intersects (from_, until) (a, b)
      &&
      match state with
      | None -> false
      | Some stored -> props_equal stored.T.props row.T.props)
    (intervals hist)

let check_stream ~rt ~started_at ~finished_at ~filter ~emissions =
  (* 1. ascending keys *)
  let rec ascending = function
    | e1 :: (e2 :: _ as rest) ->
      if T.compare_key e1.row.T.key e2.row.T.key >= 0 then
        Error
          (Printf.sprintf "stream keys not ascending: %s then %s"
             (T.key_to_string e1.row.T.key)
             (T.key_to_string e2.row.T.key))
      else ascending rest
    | [] | [ _ ] -> Ok ()
  in
  match ascending emissions with
  | Error _ as e -> e
  | Ok () ->
    (* 2. every emission matches some version in its window *)
    let bad_emission =
      List.find_opt
        (fun e ->
          (not (Filter.matches filter e.row))
          || not (emittable ~rt e.row.T.key e.row (started_at, e.at)))
        emissions
    in
    (match bad_emission with
     | Some e ->
       Error
         (Printf.sprintf
            "stream emitted %s, which matches no table state in its window"
            (T.row_to_string e.row))
     | None ->
       (* 3. skipped keys: for each key in the reference history, find the
          window in which the stream passed it. *)
       let skip_window key =
         (* The stream "passed" [key] when it emitted the first larger key
            (that read's time bounds the window), or at stream end. *)
         let rec find = function
           | [] -> Some (started_at, finished_at)
           | e :: rest ->
             let c = T.compare_key e.row.T.key key in
             if c = 0 then None (* emitted, not skipped *)
             else if c > 0 then Some (started_at, e.at)
             else find rest
         in
         find emissions
       in
       let keys = Reference_table.known_keys rt in
       let missed =
         List.find_opt
           (fun key ->
             match skip_window key with
             | None -> false
             | Some window -> not (skippable ~rt ~filter key window))
           keys
       in
       (match missed with
        | Some key ->
          Error
            (Printf.sprintf
               "stream missed key %s, which matched the filter continuously \
                throughout its window"
               (T.key_to_string key))
        | None -> Ok ()))
