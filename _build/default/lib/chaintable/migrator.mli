(** The migrator job (paper §4): moves the data set old → new in the
    background while applications keep using their MigratingTable
    instances.

    Pass structure:
    + advance to PREFER_OLD (drains USE_OLD operations);
    + copy pass: partition by partition, copy every old-table row that has
      no new-table entry yet, tagging it with its virtual etag;
    + advance to PREFER_NEW;
    + prune pass: delete all old-table rows (their authoritative versions
      now live in the new table);
    + advance to USE_NEW_WITH_TOMBSTONES (drains overlay operations);
    + cleanup pass: delete tombstone markers from the new table;
    + advance to USE_NEW.

    [advance] is provided by the environment (the Tables machine applies
    transitions only once incompatible in-flight operations drain). *)

type env = {
  backend : Backend.ops;
  advance : Phase.t -> unit;  (** blocks until the transition is applied *)
}

(** Run the whole migration to completion. Every backend call is an
    interleaving point under the test harness. *)
val run : ?bugs:Bug_flags.t -> env -> unit
