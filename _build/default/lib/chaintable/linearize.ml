module T = Table_types

type pending =
  | Mutate of T.op
  | Read of T.read

let pending_to_string = function
  | Mutate op -> Printf.sprintf "Mutate(%s)" (T.op_to_string op)
  | Read (T.Retrieve key) ->
    Printf.sprintf "Retrieve(%s)" (T.key_to_string key)
  | Read (T.Query_atomic f) ->
    Printf.sprintf "QueryAtomic(%s)" (Filter0.to_string f)

let apply rt ~at = function
  | Mutate op -> T.Mutated (Reference_table.execute ~at rt op)
  | Read (T.Retrieve key) -> T.Row (Reference_table.retrieve rt key)
  | Read (T.Query_atomic f) -> T.Rows (Reference_table.query rt f)
