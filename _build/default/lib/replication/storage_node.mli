(** Modeled storage node (paper §2.3): stores data in memory rather than on
    disk, reports its log to the server when its modeled timer fires, and
    notifies the safety monitor whenever it durably stores a request. *)

val machine :
  server:Psharp.Id.t -> node_index:int -> Psharp.Runtime.ctx -> unit
