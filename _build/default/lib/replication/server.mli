(** The replication server — the "real component" of the Fig. 1 system.

    [Logic] is the plain, framework-free server implementation (the code a
    production system would ship); [machine] wraps it in a P#-style machine
    exactly as the paper wraps real components (§2.3, Fig. 5). *)

module Logic : sig
  type t

  type effect_ =
    | Broadcast_repl of int  (** send ReplReq(seq) to every storage node *)
    | Resend_repl of { node : Psharp.Id.t; seq : int }
    | Send_ack of { client : Psharp.Id.t; seq : int }

  val create : bugs:Bug_flags.t -> replica_target:int -> t

  val set_nodes : t -> Psharp.Id.t list -> unit

  (** Client request [seq] from [client]: store and return the broadcast. *)
  val on_client_req : t -> client:Psharp.Id.t -> seq:int -> effect_ list

  (** Sync report from a node: returns repair/ack effects per Fig. 1. *)
  val on_sync :
    t -> node:Psharp.Id.t -> stored:int option -> effect_ list

  val replica_count : t -> int
  val current_seq : t -> int option
  val nodes : t -> Psharp.Id.t list
end

(** The server machine. Initially waits for [Bind_nodes], then serves
    client requests and sync reports, notifying the monitors. *)
val machine : bugs:Bug_flags.t -> replica_target:int -> Psharp.Runtime.ctx -> unit
