(** Events of the simple replicating storage system (paper Fig. 1). *)

type Psharp.Event.t +=
  | Client_req of { client : Psharp.Id.t; seq : int }
      (** data (identified by sequence number) to replicate *)
  | Repl_req of int  (** server asks a storage node to store [seq] *)
  | Sync of { node : Psharp.Id.t; node_index : int; stored : int option }
      (** storage node reports its log to the server *)
  | Ack  (** server acknowledges full replication to the client *)
  | Bind_nodes of Psharp.Id.t list  (** harness wires the nodes to the server *)
  (* monitor notifications *)
  | M_req of int  (** server accepted request [seq] *)
  | M_ack of int  (** server acked request [seq] *)
  | M_stored of { node_index : int; seq : int }
      (** a storage node durably stored [seq] *)

(** Install a pretty-printer for these events (idempotent). *)
val install_printer : unit -> unit
