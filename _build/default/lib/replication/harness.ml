module R = Psharp.Runtime

let test ?(bugs = Bug_flags.none) ?(n_nodes = 3) ?(n_requests = 2) () ctx =
  Events.install_printer ();
  let server =
    R.create ctx ~name:"Server"
      (Server.machine ~bugs ~replica_target:n_nodes)
  in
  let nodes =
    List.init n_nodes (fun node_index ->
        R.create ctx
          ~name:(Printf.sprintf "SN%d" node_index)
          (Storage_node.machine ~server ~node_index))
  in
  R.send ctx server (Events.Bind_nodes nodes);
  List.iter
    (fun node -> ignore (Psharp.Timer.create ctx ~target:node ()))
    nodes;
  ignore (R.create ctx ~name:"Client" (Client.machine ~server ~n_requests))

let monitors ?(n_nodes = 3) () = Monitors.all ~replica_target:n_nodes ()
