type t = {
  count_duplicates : bool;
  no_counter_reset : bool;
}

let none = { count_duplicates = false; no_counter_reset = false }
let bug1 = { none with count_duplicates = true }
let bug2 = { none with no_counter_reset = true }
let both = { count_duplicates = true; no_counter_reset = true }
