(** Safety and liveness monitors for the Fig. 1 system (paper §2.4–2.5). *)

val safety_name : string
val liveness_name : string

(** Safety: tracks which storage nodes durably stored the current request;
    when the server Acks, asserts at least [replica_target] true replicas
    exist. *)
val safety : replica_target:int -> unit -> Psharp.Monitor.t

(** Liveness: hot from the moment the server accepts a request until it
    sends the matching Ack. *)
val liveness : unit -> Psharp.Monitor.t

(** Both monitors, fresh; pass to [Psharp.Engine.run ~monitors]. *)
val all : replica_target:int -> unit -> Psharp.Monitor.t list
