(** Modeled client (paper §2.3): issues [n_requests] replication requests,
    waiting for an Ack between consecutive requests, then halts. *)

val machine : server:Psharp.Id.t -> n_requests:int -> Psharp.Runtime.ctx -> unit
