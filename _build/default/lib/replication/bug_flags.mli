(** Re-introducible bugs of the Fig. 1 example system (paper §2.2). *)

type t = {
  count_duplicates : bool;
      (** bug 1 (safety): the server does not track unique replicas — the
          counter increments on every up-to-date sync, so an Ack can be sent
          with fewer than three true replicas *)
  no_counter_reset : bool;
      (** bug 2 (liveness): the replica counter is not reset after an Ack,
          so no later request is ever acknowledged *)
}

val none : t
val bug1 : t
val bug2 : t
val both : t
