lib/replication/events.mli: Psharp
