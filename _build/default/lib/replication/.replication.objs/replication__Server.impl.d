lib/replication/server.ml: Bug_flags Events List Monitors Psharp Set
