lib/replication/monitors.ml: Events Hashtbl Printf Psharp
