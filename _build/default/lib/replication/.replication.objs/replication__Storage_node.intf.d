lib/replication/storage_node.mli: Psharp
