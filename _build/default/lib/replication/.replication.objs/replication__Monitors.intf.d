lib/replication/monitors.mli: Psharp
