lib/replication/client.ml: Events Psharp
