lib/replication/harness.mli: Bug_flags Psharp
