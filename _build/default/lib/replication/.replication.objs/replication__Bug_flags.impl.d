lib/replication/bug_flags.ml:
