lib/replication/storage_node.ml: Events Monitors Psharp
