lib/replication/harness.ml: Bug_flags Client Events List Monitors Printf Psharp Server Storage_node
