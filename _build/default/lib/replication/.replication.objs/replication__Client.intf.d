lib/replication/client.mli: Psharp
