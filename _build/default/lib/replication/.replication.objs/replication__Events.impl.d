lib/replication/events.ml: Printf Psharp
