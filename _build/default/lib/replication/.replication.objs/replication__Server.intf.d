lib/replication/server.mli: Bug_flags Psharp
