lib/replication/bug_flags.mli:
