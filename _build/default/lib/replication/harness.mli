(** P# test harness for the Fig. 1 system (paper Fig. 2): real server,
    modeled client, modeled storage nodes, modeled timers, plus the safety
    and liveness monitors. *)

(** Root machine body: creates the whole system. *)
val test :
  ?bugs:Bug_flags.t ->
  ?n_nodes:int ->
  ?n_requests:int ->
  unit ->
  Psharp.Runtime.ctx ->
  unit

(** Fresh monitors matching [test]'s replica target. *)
val monitors : ?n_nodes:int -> unit -> Psharp.Monitor.t list
