module M = Psharp.Monitor

let safety_name = "ReplicationSafety"
let liveness_name = "ReplicationLiveness"

let safety ~replica_target () =
  let current_seq = ref 0 in
  let stored : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  M.make ~name:safety_name ~initial:"Watching"
    ~states:[ ("Watching", M.Neutral) ]
    (fun m e ->
      match e with
      | Events.M_req seq ->
        current_seq := seq;
        Hashtbl.reset stored
      | Events.M_stored { node_index; seq } ->
        if seq = !current_seq then Hashtbl.replace stored node_index ()
      | Events.M_ack seq ->
        let replicas = Hashtbl.length stored in
        M.assert_ m
          (replicas >= replica_target)
          (Printf.sprintf
             "Ack for request %d sent with only %d of %d true replicas" seq
             replicas replica_target)
      | _ -> ())

let liveness () =
  M.make ~name:liveness_name ~initial:"Acked"
    ~states:[ ("Acked", M.Cold); ("WaitingForAck", M.Hot) ]
    (fun m e ->
      match e with
      | Events.M_req _ -> M.goto m "WaitingForAck"
      | Events.M_ack _ -> M.goto m "Acked"
      | _ -> ())

let all ~replica_target () = [ safety ~replica_target (); liveness () ]
