(* The Azure Storage vNext case study (paper §3): find the
   ExtentNodeLivenessViolation — an extent replica that is never repaired
   because a delayed sync report from an expired extent node resurrects its
   records in the extent center.

     dune exec examples/extent_repair.exe *)

let () =
  let open Psharp in
  let config =
    {
      Engine.default_config with
      max_executions = 10_000;
      max_steps = 3_000;
      seed = 0L;
      collect_log_on_bug = true;
    }
  in
  Format.printf "hunting the extent-repair liveness bug (this is the bug the \
                 paper's developers chased for months in stress tests)...@.";
  (match
     Engine.run
       ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
       config
       (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.liveness_bug
          ~scenario:Vnext.Testing_driver.Fail_and_repair ())
   with
   | Engine.Bug_found (report, stats) ->
     Format.printf "%a@." Error.pp_report report;
     Format.printf "found after %d execution(s) in %.2fs@."
       stats.Engine.executions stats.Engine.elapsed;
     (* Show the §3.6 interleaving from the trace log: expiry followed by a
        stale sync report. *)
     let interesting line =
       let contains s =
         let ls = String.lowercase_ascii line in
         let lp = String.lowercase_ascii s in
         let n = String.length ls and m = String.length lp in
         let rec go i = i + m <= n && (String.sub ls i m = lp || go (i + 1)) in
         go 0
       in
       contains "expired" || contains "injected"
       || contains "dequeues SyncReport"
     in
     List.iter
       (fun line -> if interesting line then Format.printf "  %s@." line)
       report.Error.log
   | Engine.No_bug stats ->
     Format.printf "not found in %d executions (%.2fs) — try more@."
       stats.Engine.executions stats.Engine.elapsed);
  Format.printf "@.validating the fix over 1,000 executions...@.";
  match
    Engine.run
      ~monitors:(fun () -> Vnext.Testing_driver.monitors ())
      { config with max_executions = 1_000 }
      (Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
         ~scenario:Vnext.Testing_driver.Fail_and_repair ())
  with
  | Engine.No_bug stats ->
    Format.printf "fix holds: no bugs in %d executions (%.1fs)@."
      stats.Engine.executions stats.Engine.elapsed
  | Engine.Bug_found (report, _) ->
    Format.printf "unexpected: %a@." Error.pp_report report
