(* Quickstart: systematically test the simple replicating storage system of
   the paper's Fig. 1 and find both of its bugs (§2.2-2.5).

     dune exec examples/quickstart.exe

   The system: a client sends data to a server, which replicates it to
   three storage nodes and acknowledges once three replicas exist. Bug 1
   (safety): the server counts duplicate sync reports as distinct replicas
   and can acknowledge too early. Bug 2 (liveness): the server never resets
   its replica counter, so a second request is never acknowledged. *)

let () =
  let open Psharp in
  let config =
    {
      Engine.default_config with
      max_executions = 5_000;
      max_steps = 2_000;
      seed = 7L;
      collect_log_on_bug = true;
    }
  in
  let hunt title bugs =
    Format.printf "--- %s ---@." title;
    let outcome =
      Engine.run
        ~monitors:(fun () -> Replication.Harness.monitors ())
        config
        (Replication.Harness.test ~bugs ())
    in
    (match outcome with
     | Engine.Bug_found (report, stats) ->
       Format.printf "%a@." Error.pp_report report;
       Format.printf "found after %d execution(s) in %.2fs@."
         stats.Engine.executions stats.Engine.elapsed;
       (* The last few lines of the P#-style global-order trace log: *)
       let log = report.Error.log in
       let tail =
         let n = List.length log in
         List.filteri (fun i _ -> i >= n - 8) log
       in
       List.iter (fun line -> Format.printf "  %s@." line) tail
     | Engine.No_bug stats ->
       Format.printf "no bug found in %d executions (%.2fs)@."
         stats.Engine.executions stats.Engine.elapsed);
    Format.printf "@."
  in
  hunt "bug 1: duplicate replica counting (safety)" Replication.Bug_flags.bug1;
  hunt "bug 2: counter never reset (liveness)" Replication.Bug_flags.bug2;
  hunt "fixed system (should be clean)" Replication.Bug_flags.none
