(* Deterministic replay (paper §2): a found bug is witnessed by a full
   schedule trace; replaying it reproduces the identical execution, which
   is what makes these bugs debuggable. The trace can be saved to a file
   and replayed later (or after adding more logging, as the vNext
   developers did in §3.6).

     dune exec examples/replay_demo.exe *)

let () =
  let open Psharp in
  let config =
    {
      Engine.default_config with
      max_executions = 5_000;
      max_steps = 2_000;
      seed = 3L;
    }
  in
  let harness = Replication.Harness.test ~bugs:Replication.Bug_flags.bug1 () in
  let monitors () = Replication.Harness.monitors () in
  match Engine.run ~monitors config harness with
  | Engine.No_bug _ -> Format.printf "no bug found; nothing to replay@."
  | Engine.Bug_found (report, stats) ->
    Format.printf "found: %s@." (Error.kind_to_string report.Error.kind);
    Format.printf "after %d executions; trace has %d choices@."
      stats.Engine.executions
      (Trace.length report.Error.trace);
    (* Persist the witness, as a bug report would. *)
    let path = Filename.temp_file "psharp_bug" ".trace" in
    Trace.save ~path report.Error.trace;
    Format.printf "trace saved to %s@." path;
    (* Replay it: same bug, same step, fully deterministic. *)
    let loaded = Trace.load ~path in
    let result = Engine.replay ~monitors config loaded harness in
    (match result.Runtime.bug with
     | Some kind ->
       Format.printf "replay reproduced: %s at step %d@."
         (Error.kind_to_string kind) result.Runtime.bug_step;
       Format.printf "replay trace equals original: %b@."
         (Trace.equal result.Runtime.choices report.Error.trace)
     | None -> Format.printf "replay FAILED to reproduce (should not happen)@.");
    Sys.remove path
