(* The consensus sample protocols the paper points readers to (§2.3):
   single-decree Paxos and Raft, with classic seeded safety bugs found by
   the systematic testing engine.

     dune exec examples/consensus.exe *)

let () =
  let open Psharp in
  let hunt name monitors harness ~max_steps =
    let config =
      {
        Engine.default_config with
        max_executions = 10_000;
        max_steps;
        seed = 1L;
      }
    in
    match Engine.run ~monitors config harness with
    | Engine.Bug_found (report, stats) ->
      Format.printf "%-28s FOUND after %d execution(s) (%.2fs):@.  %s@." name
        stats.Engine.executions stats.Engine.elapsed
        (Error.kind_to_string report.Error.kind)
    | Engine.No_bug stats ->
      Format.printf "%-28s clean over %d executions (%.2fs)@." name
        stats.Engine.executions stats.Engine.elapsed
  in
  Format.printf "=== single-decree Paxos ===@.";
  hunt "forget-promise bug"
    (fun () -> Paxos.monitors ())
    (Paxos.test ~bugs:Paxos.bug_forget_promise ())
    ~max_steps:2_000;
  hunt "choose-own-value bug"
    (fun () -> Paxos.monitors ())
    (Paxos.test ~bugs:Paxos.bug_choose_own_value ())
    ~max_steps:2_000;
  hunt "correct Paxos"
    (fun () -> Paxos.monitors ())
    (Paxos.test ()) ~max_steps:2_000;
  Format.printf "@.=== Raft ===@.";
  hunt "double-vote bug"
    (fun () -> Raft.monitors ())
    (Raft.test ~bugs:Raft.bug_double_vote ())
    ~max_steps:1_500;
  hunt "stale-leader-election bug"
    (fun () -> Raft.monitors ())
    (Raft.test ~bugs:Raft.bug_stale_leader_election ())
    ~max_steps:1_500;
  hunt "correct Raft"
    (fun () -> Raft.monitors ())
    (Raft.test ())
    ~max_steps:1_500
