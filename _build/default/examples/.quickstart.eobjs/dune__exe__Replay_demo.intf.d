examples/replay_demo.mli:
