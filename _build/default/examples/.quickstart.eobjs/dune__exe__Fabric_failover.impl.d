examples/fabric_failover.ml: Engine Error Fabric Format Psharp
