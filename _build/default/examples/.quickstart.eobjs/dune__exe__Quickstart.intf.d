examples/quickstart.mli:
