examples/table_migration.mli:
