examples/consensus.mli:
