examples/quickstart.ml: Engine Error Format List Psharp Replication
