examples/table_migration.ml: Chaintable Engine Error Format List Psharp String Trace
