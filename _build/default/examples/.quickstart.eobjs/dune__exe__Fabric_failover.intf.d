examples/fabric_failover.mli:
