examples/consensus.ml: Engine Error Format Paxos Psharp Raft
