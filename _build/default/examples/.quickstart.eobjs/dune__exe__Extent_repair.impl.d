examples/extent_repair.ml: Engine Error Format List Psharp String Vnext
