examples/replay_demo.ml: Engine Error Filename Format Psharp Replication Runtime Sys Trace
