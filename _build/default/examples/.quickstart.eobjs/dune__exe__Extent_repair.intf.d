examples/extent_repair.mli:
