(* The Service Fabric case study (paper §5): a replicated user service on
   the Fabric model, with the primary failing at a nondeterministic point.
   With the buggy election, a secondary that is still waiting for its state
   copy can be elected primary and then wrongly "promoted" to active
   secondary — the assertion the paper's authors hit in their model.

     dune exec examples/fabric_failover.exe *)

let () =
  let open Psharp in
  let config =
    {
      Engine.default_config with
      max_executions = 10_000;
      max_steps = 3_000;
      seed = 0L;
      collect_log_on_bug = true;
    }
  in
  Format.printf "hunting the replica-promotion bug in the Fabric model...@.";
  (match
     Engine.run
       ~monitors:(fun () -> Fabric.Harness.monitors ())
       config
       (Fabric.Harness.test ~bugs:Fabric.Bug_flags.promotion_bug ())
   with
   | Engine.Bug_found (report, stats) ->
     Format.printf "%a@." Error.pp_report report;
     Format.printf "found after %d execution(s) in %.2fs@.@."
       stats.Engine.executions stats.Engine.elapsed
   | Engine.No_bug _ -> Format.printf "not found — try a larger budget@.@.");
  Format.printf "the fixed model, counter service: ";
  (match
     Engine.run
       ~monitors:(fun () -> Fabric.Harness.monitors ())
       { config with max_executions = 1_000 }
       (Fabric.Harness.test ())
   with
   | Engine.No_bug stats ->
     Format.printf "clean over %d executions@." stats.Engine.executions
   | Engine.Bug_found (r, _) ->
     Format.printf "unexpected bug: %s@." (Error.kind_to_string r.Error.kind));
  Format.printf "the CScale-like chained service (null dereference): ";
  match
    Engine.run { config with max_executions = 1_000 }
      (Fabric.Chained.test ~bugs:Fabric.Bug_flags.cscale_bug ())
  with
  | Engine.Bug_found (report, stats) ->
    Format.printf "found after %d execution(s): %s@." stats.Engine.executions
      (Error.kind_to_string report.Error.kind)
  | Engine.No_bug _ -> Format.printf "not found@."
