(* The Live Table Migration case study (paper §4): run a live migration
   under concurrent application traffic, compare every logical operation
   against the reference table, and demonstrate the scheduler-sensitivity
   of the QueryStreamedBackUpNewStream bug (§6.2) — the random scheduler
   misses it, the priority-based scheduler finds it.

     dune exec examples/table_migration.exe *)

module T = Chaintable.Table_types

let () =
  let open Psharp in
  (* 1. A plain (non-systematic) migration demo through the local backend:
     the migrating table behaves exactly like the reference table while the
     data set moves. *)
  Format.printf "=== live migration, synchronous demo ===@.";
  let lb = Chaintable.Local_backend.create () in
  let mt = Chaintable.Migrating_table.create (Chaintable.Local_backend.ops lb) in
  let put rk v =
    ignore
      (Chaintable.Migrating_table.mutate mt
         (T.Insert_or_replace { key = T.key "P" rk; props = [ ("v", v) ] }))
  in
  put "a" "1";
  put "b" "2";
  Format.printf "before migration: phase=%s, old has %d rows, new has %d@."
    (Chaintable.Phase.to_string (Chaintable.Local_backend.phase lb))
    (Chaintable.Reference_table.size (Chaintable.Local_backend.old_table lb))
    (Chaintable.Reference_table.size (Chaintable.Local_backend.new_table lb));
  Chaintable.Migrator.run
    {
      Chaintable.Migrator.backend = Chaintable.Local_backend.ops lb;
      advance = Chaintable.Local_backend.advance lb;
    };
  put "c" "3";
  let rows = Chaintable.Migrating_table.query_atomic mt Chaintable.Filter0.True in
  Format.printf "after migration: phase=%s, old has %d rows, new has %d, \
                 virtual table sees [%s]@.@."
    (Chaintable.Phase.to_string (Chaintable.Local_backend.phase lb))
    (Chaintable.Reference_table.size (Chaintable.Local_backend.old_table lb))
    (Chaintable.Reference_table.size (Chaintable.Local_backend.new_table lb))
    (String.concat "; " (List.map T.row_to_string rows));

  (* 2. Systematic testing: the stream-merge bug that needs the
     priority-based scheduler. *)
  Format.printf "=== QueryStreamedBackUpNewStream, random vs priority-based ===@.";
  let hunt name strategy budget =
    let config =
      {
        Engine.default_config with
        strategy;
        max_executions = budget;
        max_steps = 4_000;
        seed = 1L;
      }
    in
    match
      Engine.run config
        (Chaintable.Harness.test_for_bug "QueryStreamedBackUpNewStream")
    with
    | Engine.Bug_found (report, stats) ->
      Format.printf "%-22s FOUND after %d executions (%.2fs, #NDC %d)@." name
        stats.Engine.executions stats.Engine.elapsed
        (Trace.length report.Error.trace)
    | Engine.No_bug stats ->
      Format.printf "%-22s not found in %d executions (%.2fs)@." name
        stats.Engine.executions stats.Engine.elapsed
  in
  hunt "random" Engine.Random 10_000;
  hunt "priority-based (d=2)" (Engine.Pct { change_points = 2 }) 10_000
