module R = Psharp.Runtime
module M = Psharp.Monitor

type bugs = {
  forget_promise : bool;
  choose_own_value : bool;
}

let no_bugs = { forget_promise = false; choose_own_value = false }
let bug_forget_promise = { no_bugs with forget_promise = true }
let bug_choose_own_value = { no_bugs with choose_own_value = true }

(* Ballots are (round, proposer id) ordered lexicographically, so ballots
   of distinct proposers never tie. *)
type ballot = int * int

let compare_ballot (a : ballot) (b : ballot) = compare a b

type Psharp.Event.t +=
  | Prepare of { ballot : ballot; proposer : Psharp.Id.t }
  | Promise of {
      acceptor : int;
      ballot : ballot;
      accepted : (ballot * int) option;
          (** highest proposal this acceptor has accepted, if any *)
    }
  | Accept of { ballot : ballot; value : int; proposer : Psharp.Id.t }
  | Accepted of { acceptor : int; ballot : ballot }
  | Rejected of { ballot : ballot }
  | M_chosen of { value : int; ballot : ballot }
  | Proposer_done

let monitor_name = "PaxosAgreement"

let agreement_monitor () =
  let chosen = ref None in
  M.make ~name:monitor_name ~initial:"Watching"
    ~states:[ ("Watching", M.Neutral) ]
    (fun m e ->
      match e with
      | M_chosen { value; ballot = _ } -> begin
        match !chosen with
        | None -> chosen := Some value
        | Some v ->
          M.assert_ m (v = value)
            (Printf.sprintf "agreement violated: %d chosen after %d" value v)
      end
      | _ -> ())

let monitors () = [ agreement_monitor () ]

(* --- Acceptor ----------------------------------------------------------- *)

let acceptor ~bugs ~aid ctx =
  Psharp.Registry.register_machine ~machine:"PaxosAcceptor"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:2;
  let promised : ballot option ref = ref None in
  let accepted : (ballot * int) option ref = ref None in
  let rec loop () =
    (match R.receive ctx with
     | Prepare { ballot; proposer } ->
       let higher =
         match !promised with
         | None -> true
         | Some p -> compare_ballot ballot p > 0
       in
       if higher then begin
         promised := Some ballot;
         R.send_faulty ctx proposer
           (Promise { acceptor = aid; ballot; accepted = !accepted })
       end
       else R.send_faulty ctx proposer (Rejected { ballot })
     | Accept { ballot; value; proposer } ->
       let ok =
         if bugs.forget_promise then
           (* Bug: honour only previously accepted ballots and ignore the
              promise — a higher prepare no longer blocks this accept. *)
           match !accepted with
           | None -> true
           | Some (b, _) -> compare_ballot ballot b >= 0
         else
           match !promised with
           | None -> true
           | Some p -> compare_ballot ballot p >= 0
       in
       if ok then begin
         accepted := Some (ballot, value);
         R.send_faulty ctx proposer (Accepted { acceptor = aid; ballot })
       end
       else R.send_faulty ctx proposer (Rejected { ballot })
     | Psharp.Event.Halt_event -> R.halt ctx
     | _ -> ());
    loop ()
  in
  loop ()

(* --- Proposer ----------------------------------------------------------- *)

let proposer ~bugs ~pid ~acceptors ~my_value ~max_ballots ~report_to ctx =
  Psharp.Registry.register_machine ~machine:"PaxosProposer"
    ~kind:Psharp.Registry.Machine ~states:2 ~handlers:3;
  let n = List.length acceptors in
  let majority = (n / 2) + 1 in
  let rec try_ballot round =
    if round > max_ballots then ()
    else begin
      let ballot = (round, pid) in
      List.iter
        (fun a -> R.send_faulty ctx a (Prepare { ballot; proposer = R.self ctx }))
        acceptors;
      (* Phase 1: gather promises (or give up on enough rejections). *)
      let promises = ref [] in
      let rejections = ref 0 in
      let mine = function
        | Promise { ballot = b; _ } | Rejected { ballot = b } ->
          compare_ballot b ballot = 0
        | Accepted { ballot = b; _ } -> compare_ballot b ballot = 0
        | _ -> false
      in
      let rec phase1 () =
        if List.length !promises >= majority then `Proceed
        else if !rejections > n - majority then `Retry
        else begin
          match R.receive_where ctx mine with
          | Promise { accepted; _ } ->
            promises := accepted :: !promises;
            phase1 ()
          | Rejected _ ->
            incr rejections;
            phase1 ()
          | _ -> phase1 ()
        end
      in
      match phase1 () with
      | `Retry -> try_ballot (round + 1)
      | `Proceed ->
        (* Choose the value: the accepted value of the highest ballot among
           the promises, or this proposer's own value. The buggy proposer
           always pushes its own value. *)
        let value =
          if bugs.choose_own_value then my_value
          else
            let best =
              List.fold_left
                (fun acc reported ->
                  match (acc, reported) with
                  | None, r -> r
                  | Some (b1, _), Some (b2, v2) when compare_ballot b2 b1 > 0 ->
                    Some (b2, v2)
                  | acc, _ -> acc)
                None !promises
            in
            match best with
            | Some (_, v) -> v
            | None -> my_value
        in
        List.iter
          (fun a ->
            R.send_faulty ctx a (Accept { ballot; value; proposer = R.self ctx }))
          acceptors;
        (* Phase 2: gather accepts. *)
        let accepts = ref 0 in
        let rejections = ref 0 in
        let rec phase2 () =
          if !accepts >= majority then begin
            R.notify ctx monitor_name (M_chosen { value; ballot });
            R.log ctx (Printf.sprintf "chose %d at ballot (%d,%d)" value round pid)
          end
          else if !rejections > n - majority then try_ballot (round + 1)
          else begin
            match R.receive_where ctx mine with
            | Accepted _ ->
              incr accepts;
              phase2 ()
            | Rejected _ ->
              incr rejections;
              phase2 ()
            | _ -> phase2 ()
          end
        in
        phase2 ()
    end
  in
  try_ballot 1;
  R.send ctx report_to Proposer_done;
  R.halt ctx

(* --- Harness ------------------------------------------------------------ *)

let test ?(bugs = no_bugs) ?(n_acceptors = 3) ?(n_proposers = 2)
    ?(max_ballots = 3) () ctx =
  Psharp.Registry.register_machine ~machine:"PaxosHarness"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  let acceptors =
    List.init n_acceptors (fun aid ->
        R.create ctx ~name:(Printf.sprintf "Acceptor%d" aid)
          (acceptor ~bugs ~aid))
  in
  for pid = 1 to n_proposers do
    ignore
      (R.create ctx
         ~name:(Printf.sprintf "Proposer%d" pid)
         (proposer ~bugs ~pid ~acceptors ~my_value:(100 + pid) ~max_ballots
            ~report_to:(R.self ctx)))
  done;
  (* Wait for every proposer to finish, then release the acceptors so the
     execution terminates cleanly. *)
  for _ = 1 to n_proposers do
    ignore
      (R.receive_where ctx (function Proposer_done -> true | _ -> false))
  done;
  List.iter (fun a -> R.send ctx a Psharp.Event.Halt_event) acceptors
