module T = Table_types

type step =
  | S_insert of T.key * string
  | S_upsert of T.key * string
  | S_replace_current of T.key * string
  | S_delete_uncond of T.key
  | S_delete_current of T.key
  | S_delete_stale of T.key
  | S_retrieve of T.key
  | S_query of Filter0.t
  | S_stream of Filter0.t
  | S_pause of int

type t =
  | Random_ops of { n_ops : int }
  | Scripted of step list

let default = Random_ops { n_ops = 5 }

let key_space =
  [
    T.key "P0" "r0"; T.key "P0" "r1"; T.key "P0" "r2";
    T.key "P1" "r0"; T.key "P1" "r1";
  ]

let value_space = [ "0"; "1"; "2"; "3" ]

let v_eq value = Filter0.Compare (Filter0.Prop "v", Filter0.Eq, value)

let filter_pool =
  [
    Filter0.True;
    v_eq "1";
    Filter0.Compare (Filter0.Rk, Filter0.Ge, "r1");
    Filter0.And
      (Filter0.Compare (Filter0.Pk, Filter0.Eq, "P0"), Filter0.Not (v_eq "2"));
  ]

let initial_rows =
  [
    (T.key "P0" "r1", [ ("v", "1") ]);
    (T.key "P0" "r2", [ ("v", "2") ]);
    (T.key "P1" "r1", [ ("v", "1") ]);
  ]

(* Stream-free workloads for the virtual-time retry entry
   (ChaintableRetryFreshSeq). Under the clock, a delay fault is a latency:
   a stream whose first backend read is held in flight can execute after
   the whole migration completed, tripping the (pre-existing,
   schedule-reachable, astronomically unlikely under uniform random) race
   where a stream keeps the phase mode it snapshotted at creation. That
   separate defect would drown the retry bug this entry isolates, so its
   workloads stick to mutations and atomic reads — plenty of linearized
   RPCs for the timeout-retry race, no streams. *)
let retry_case =
  [
    Scripted
      [
        S_upsert (T.key "P0" "r0", "1");
        S_replace_current (T.key "P0" "r1", "2");
        S_retrieve (T.key "P0" "r1");
        S_delete_current (T.key "P0" "r2");
        S_query Filter0.True;
      ];
    Scripted
      [
        S_insert (T.key "P1" "r0", "3");
        S_query (v_eq "1");
        S_upsert (T.key "P1" "r1", "0");
        S_retrieve (T.key "P0" "r0");
        S_delete_uncond (T.key "P1" "r0");
      ];
  ]

let custom_case = function
  | "QueryStreamedFilterShadowing" ->
    (* A row whose current version does not match the filter but whose
       stale old-table version does: the buggy pushdown lets the stale
       version escape shadowing. The stream starts only after the update,
       so the stale emission falls outside every legal window. *)
    [
      Scripted
        [
          S_pause 4;
          S_upsert (T.key "P0" "r1", "3");
          S_stream (v_eq "1");
          S_retrieve (T.key "P0" "r1");
          S_pause 4;
          S_stream (v_eq "1");
        ];
    ]
  | "MigrateSkipPreferOld" ->
    (* Any pre-seeded row suffices: the prune pass destroys rows the
       skipped copy pass never moved. *)
    [
      Scripted
        [
          S_pause 8;
          S_query Filter0.True;
          S_retrieve (T.key "P0" "r1");
          S_pause 4;
          S_query Filter0.True;
        ];
    ]
  | "MigrateSkipUseNewWithTombstones" ->
    (* Delete during the overlay phases leaves a tombstone; skipping the
       cleanup phase lets the USE_NEW fast path expose it. *)
    [
      Scripted
        [
          S_pause 2;
          S_delete_uncond (T.key "P0" "r1");
          S_pause 8;
          S_query Filter0.True;
          S_retrieve (T.key "P0" "r1");
          S_pause 4;
          S_query Filter0.True;
        ];
    ]
  | "InsertBehindMigrator" ->
    (* Insert a key that sorts before the seeded rows while the migrator's
       copy cursor may already have passed it. *)
    [
      Scripted
        [
          S_pause 3;
          S_insert (T.key "P0" "r0", "7");
          S_pause 6;
          S_retrieve (T.key "P0" "r0");
          S_pause 4;
          S_retrieve (T.key "P0" "r0");
          S_query Filter0.True;
        ];
    ]
  | name ->
    invalid_arg
      (Printf.sprintf "Workload.custom_case: no custom case for %s" name)
