(** Complete MigratingTable test environment (paper Fig. 12, §4): one
    Tables machine (backend tables + reference table), a set of service
    machines issuing workloads through their own MigratingTable instances,
    and a migrator machine moving the data set in the background. The
    harness root waits for every participant to finish, then shuts the
    Tables machine down so executions terminate cleanly. *)

(** [test ~bugs ()] is a root machine body for {!Psharp.Engine.run}.
    [workloads] gives one workload per service (default: two services with
    the default random workload).

    [oracle] selects the spec machinery judging point operations:
    [`Legacy] (default) keeps the paper's per-operation divergence asserts
    at the linearization point; [`Lin] records every point operation into
    a {!Psharp.History} instead and runs the generic
    {!Psharp.Linearizability} checker against {!Lin_oracle.model} when the
    workload completes. Streamed reads are validated by {!Spec_check}
    under both oracles. Both modes draw identically, so a witness trace
    hunts/replays the same under either.

    [history], when supplied, captures the operation history regardless
    of oracle — the corpus-agreement tests replay legacy witnesses with a
    history attached and re-judge the recorded prefix with the generic
    checker. [history_out] saves the recorded history (arming one if
    necessary) to that path when the workload completes, before the
    [`Lin] verdict, so a witness replay leaves the violating history on
    disk next to its trace. *)
val test :
  ?bugs:Bug_flags.t ->
  ?workloads:Workload.t list ->
  ?initial_rows:(Table_types.key * Table_types.props) list ->
  ?oracle:[ `Legacy | `Lin ] ->
  ?history:(Linearize.pending, Table_types.outcome) Psharp.History.t ->
  ?history_out:string ->
  unit ->
  Psharp.Runtime.ctx ->
  unit

(** The harness for one named Table 2 bug: the default random harness, or
    the bug's pinned custom test case when [custom] (the paper's ⊙ runs). *)
val test_for_bug : ?custom:bool -> string -> Psharp.Runtime.ctx -> unit
