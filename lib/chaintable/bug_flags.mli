(** The eleven re-introducible MigratingTable bugs of Table 2 (paper §6.2):
    eight organic bugs that occurred during development and three notional
    bugs (⊙). Each flag re-introduces one defect in the protocol; see
    DESIGN.md for the mapping. *)

type t = {
  query_atomic_filter_shadowing : bool;
      (** push the user filter down to both backend queries before merging,
          so a new-table row that fails the filter cannot shadow its stale
          old-table version *)
  query_streamed_lock : bool;
      (** stream merge breaks ties toward the old table, emitting stale or
          deleted (tombstoned) versions *)
  query_streamed_back_up_new_stream : bool;
      (** stream merge caches the new-table read-ahead instead of backing
          the new stream up to the merge cursor, missing rows the migrator
          moved old → new (§6.2 narrative) *)
  delete_no_leave_tombstones_etag : bool;
      (** in phases that do not leave tombstones, delete ignores the
          caller's etag and deletes unconditionally *)
  delete_primary_key : bool;
      (** delete resolves its target row by partition key only, hitting the
          first row of the partition instead of the addressed row *)
  ensure_partition_switched_from_populated : bool;
      (** the migrator's copy pass skips a partition that already has rows
          in the new table, assuming it was already copied *)
  tombstone_output_etag : bool;
      (** reads return the backend etag instead of the virtual etag for
          migrated rows, breaking later conditional operations *)
  query_streamed_filter_shadowing : bool;
      (** ⊙ streamed variant of the filter-shadowing defect *)
  migrate_skip_prefer_old : bool;
      (** ⊙ the migrator advances straight to PREFER_NEW, skipping the copy
          pass, so the prune pass destroys uncopied rows *)
  migrate_skip_use_new_with_tombstones : bool;
      (** ⊙ the migrator advances straight to USE_NEW, skipping tombstone
          cleanup, so the USE_NEW fast path exposes tombstone rows *)
  insert_behind_migrator : bool;
      (** ⊙ during PREFER_OLD, inserts go directly to the old table; a row
          inserted behind the migrator's copy cursor is never copied *)
  backend_no_dedup : bool;
      (** ChaintableDuplicateBackendRequest (not in Table 2, absent from
          [names]): the Tables machine skips the per-client sequence-number
          dedup, so a backend request duplicated by the fault substrate
          executes twice and a linearized call trips the
          double-linearization assert. Only findable with [dup] message
          faults enabled. *)
  retry_fresh_seq : bool;
      (** ChaintableRetryFreshSeq (not in Table 2, absent from [names]):
          under virtual time {!Remote_backend} retries a backend RPC whose
          response missed the timeout. The fixed protocol retransmits the
          {e same} sequence number, so the server's dedup absorbs the
          retry of an already-executed call; with this flag the retry
          draws a {e fresh} sequence number — the classic
          timeout-retry-as-new-request defect — so when the response (not
          the request) was delayed, the already-linearized call executes a
          second time and trips the double-linearization assert. Only
          findable with the clock on and [delay] message faults. *)
}

val none : t

(** [none] with [backend_no_dedup] armed. *)
val dup_bug : t

(** [none] with [retry_fresh_seq] armed. *)
val retry_bug : t

(** [with_bug name] returns [none] with the named flag set.
    @raise Invalid_argument on an unknown name. *)
val with_bug : string -> t

(** All bug names, in Table 2 order. *)
val names : string list

(** Is the named bug one of the three notional (⊙) bugs? *)
val is_notional : string -> bool

(** Bugs the paper could only trigger with a custom (pinned-input) test
    case — the ⊙ column of Table 2. *)
val needs_custom_case : string -> bool
