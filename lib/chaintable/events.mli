(** Events of the MigratingTable test harness (paper Fig. 12). All backend
    operations are messages to the Tables machine, which serializes them,
    evaluates linearization predicates, and applies pending logical
    operations to the reference table at the linearization instant. *)

type call =
  | C_execute of Table_types.op
  | C_batch of Table_types.op list
  | C_retrieve of Table_types.key
  | C_query of Filter0.t
  | C_peek_after of Table_types.key option * Filter0.t

type Psharp.Event.t +=
  | Backend_request of {
      reply_to : Psharp.Id.t;
      seq : int;
          (** per-client sequence number; the Tables machine discards a
              request it has already handled (a duplicate injected by the
              fault substrate) *)
      table : Backend.table;
      call : call;
      lin : Backend.lin option;
    }
  | Backend_response of {
      seq : int;  (** echoes the request's sequence number *)
      result : Backend.call_result;
      rt_outcome : Table_types.outcome option;
          (** present when this call was the linearization point *)
      at : int;  (** the Tables machine's logical clock *)
    }
  | Begin_op of {
      reply_to : Psharp.Id.t;
      pending : Linearize.pending option;
    }
  | Begin_reply of { phase : Phase.t }
  | End_op of { service : Psharp.Id.t }
  | Phase_request of { reply_to : Psharp.Id.t }
  | Phase_reply of { phase : Phase.t; at : int }
  | Advance_request of { reply_to : Psharp.Id.t; target : Phase.t }
  | Advance_done
  | Validate_stream of {
      reply_to : Psharp.Id.t;
      started_at : int;
      finished_at : int;
      filter : Filter0.t;
      emissions : Spec_check.emission list;
    }
  | Validate_reply of { verdict : (unit, string) result }
  | Rpc_timeout of { token : int }
      (** timed self-delivery armed by {!Remote_backend} alongside each
          backend request under virtual time; the token identifies the
          attempt, so a timeout that fires after its response arrived is
          recognizably stale *)
  | Participant_done
  | Tables_shutdown

val install_printer : unit -> unit
