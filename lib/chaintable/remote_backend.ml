module B = Backend
module R = Psharp.Runtime

type stash = {
  mutable next_pending : Linearize.pending option;
  mutable rt_outcome : Table_types.outcome option;
  mutable last_at : int;
  mutable next_seq : int;
  mutable next_token : int;
}

let create_stash () =
  {
    next_pending = None;
    rt_outcome = None;
    last_at = 0;
    next_seq = 0;
    next_token = 0;
  }

(* Virtual-time units an RPC waits before retrying. Deliberately below the
   fault substrate's default [max_delay] (3): a delayed hop can outlive the
   timeout, so the timeout-retry race is reachable. *)
let rpc_timeout = 2

let take_rt_outcome stash =
  let o = stash.rt_outcome in
  stash.rt_outcome <- None;
  o

let ops ?(bugs = Bug_flags.none) ctx ~tables ~stash : B.ops =
  (* The backend RPC hop goes through [send_faulty]: with message faults
     armed the request can be duplicated or delayed in flight (a plain send
     otherwise). The sequence number lets the Tables machine discard a
     duplicate, and the reply filter ignores any response that is not for
     the outstanding call. *)
  let send_request seq table call lin =
    R.send_faulty ctx tables
      (Events.Backend_request { reply_to = R.self ctx; seq; table; call; lin })
  in
  let finish = function
    | Events.Backend_response { result; rt_outcome; at; _ } ->
      stash.last_at <- at;
      (match rt_outcome with
       | Some o -> stash.rt_outcome <- Some o
       | None -> ());
      result
    | _ -> assert false
  in
  (* Under virtual time an RPC hop has latency, so the call carries a
     timeout: each attempt arms a timed self-delivery ([Rpc_timeout],
     tokenized so a stale firing is ignored) and retransmits when it beats
     the response. The fixed protocol retries with the {e same} sequence
     number — the server's dedup absorbs a retry of a call it already
     executed; [bugs.retry_fresh_seq] re-introduces the classic defect of
     retrying as a brand-new request, which double-executes an
     already-linearized call (ChaintableRetryFreshSeq). *)
  let rec timed_request seq table call lin =
    send_request seq table call lin;
    let token = stash.next_token in
    stash.next_token <- token + 1;
    R.send_after ctx (R.self ctx) (Events.Rpc_timeout { token })
      ~after:rpc_timeout;
    match
      R.receive_where ctx (function
        | Events.Backend_response { seq = s; _ } -> s = seq
        | Events.Rpc_timeout { token = t } -> t = token
        | _ -> false)
    with
    | Events.Rpc_timeout _ ->
      let seq' =
        if bugs.Bug_flags.retry_fresh_seq then begin
          let s = stash.next_seq in
          stash.next_seq <- s + 1;
          s
        end
        else seq
      in
      R.log ctx
        (Printf.sprintf "rpc timeout seq=%d; retrying as seq=%d" seq seq');
      timed_request seq' table call lin
    | response -> finish response
  in
  let request table call lin =
    let seq = stash.next_seq in
    stash.next_seq <- seq + 1;
    if R.clock_on ctx then timed_request seq table call lin
    else begin
      send_request seq table call lin;
      finish
        (R.receive_where ctx (function
           | Events.Backend_response { seq = s; _ } -> s = seq
           | _ -> false))
    end
  in
  {
    B.begin_op =
      (fun () ->
        let pending = stash.next_pending in
        stash.next_pending <- None;
        R.send ctx tables
          (Events.Begin_op { reply_to = R.self ctx; pending });
        match
          R.receive_where ctx (function
            | Events.Begin_reply _ -> true
            | _ -> false)
        with
        | Events.Begin_reply { phase } -> phase
        | _ -> assert false);
    end_op =
      (fun () -> R.send ctx tables (Events.End_op { service = R.self ctx }));
    execute =
      (fun ?lin table op ->
        match request table (Events.C_execute op) lin with
        | B.Exec_result r -> r
        | B.Batch_result _ | B.Row_result _ | B.Rows_result _ ->
          assert false);
    execute_batch =
      (fun ?lin table ops ->
        match request table (Events.C_batch ops) lin with
        | B.Batch_result r -> r
        | B.Exec_result _ | B.Row_result _ | B.Rows_result _ ->
          assert false);
    retrieve =
      (fun ?lin table key ->
        match request table (Events.C_retrieve key) lin with
        | B.Row_result r -> r
        | B.Exec_result _ | B.Batch_result _ | B.Rows_result _ ->
          assert false);
    query =
      (fun ?lin table filter ->
        match request table (Events.C_query filter) lin with
        | B.Rows_result r -> r
        | B.Exec_result _ | B.Batch_result _ | B.Row_result _ ->
          assert false);
    peek_after =
      (fun ?lin table after filter ->
        match request table (Events.C_peek_after (after, filter)) lin with
        | B.Row_result r -> r
        | B.Exec_result _ | B.Batch_result _ | B.Rows_result _ ->
          assert false);
    stream_phase =
      (fun () ->
        R.send ctx tables (Events.Phase_request { reply_to = R.self ctx });
        match
          R.receive_where ctx (function
            | Events.Phase_reply _ -> true
            | _ -> false)
        with
        | Events.Phase_reply { phase; at } ->
          stash.last_at <- at;
          phase
        | _ -> assert false);
  }
