module B = Backend
module R = Psharp.Runtime

type stash = {
  mutable next_pending : Linearize.pending option;
  mutable rt_outcome : Table_types.outcome option;
  mutable last_at : int;
  mutable next_seq : int;
}

let create_stash () =
  { next_pending = None; rt_outcome = None; last_at = 0; next_seq = 0 }

let take_rt_outcome stash =
  let o = stash.rt_outcome in
  stash.rt_outcome <- None;
  o

let ops ctx ~tables ~stash : B.ops =
  (* The backend RPC hop goes through [send_faulty]: with message faults
     armed the request can be duplicated or delayed in flight (a plain send
     otherwise). The sequence number lets the Tables machine discard a
     duplicate, and the reply filter ignores any response that is not for
     the outstanding call. *)
  let request table call lin =
    let seq = stash.next_seq in
    stash.next_seq <- seq + 1;
    R.send_faulty ctx tables
      (Events.Backend_request { reply_to = R.self ctx; seq; table; call; lin });
    match
      R.receive_where ctx (function
        | Events.Backend_response { seq = s; _ } -> s = seq
        | _ -> false)
    with
    | Events.Backend_response { result; rt_outcome; at; _ } ->
      stash.last_at <- at;
      (match rt_outcome with
       | Some o -> stash.rt_outcome <- Some o
       | None -> ());
      result
    | _ -> assert false
  in
  {
    B.begin_op =
      (fun () ->
        let pending = stash.next_pending in
        stash.next_pending <- None;
        R.send ctx tables
          (Events.Begin_op { reply_to = R.self ctx; pending });
        match
          R.receive_where ctx (function
            | Events.Begin_reply _ -> true
            | _ -> false)
        with
        | Events.Begin_reply { phase } -> phase
        | _ -> assert false);
    end_op =
      (fun () -> R.send ctx tables (Events.End_op { service = R.self ctx }));
    execute =
      (fun ?lin table op ->
        match request table (Events.C_execute op) lin with
        | B.Exec_result r -> r
        | B.Batch_result _ | B.Row_result _ | B.Rows_result _ ->
          assert false);
    execute_batch =
      (fun ?lin table ops ->
        match request table (Events.C_batch ops) lin with
        | B.Batch_result r -> r
        | B.Exec_result _ | B.Row_result _ | B.Rows_result _ ->
          assert false);
    retrieve =
      (fun ?lin table key ->
        match request table (Events.C_retrieve key) lin with
        | B.Row_result r -> r
        | B.Exec_result _ | B.Batch_result _ | B.Rows_result _ ->
          assert false);
    query =
      (fun ?lin table filter ->
        match request table (Events.C_query filter) lin with
        | B.Rows_result r -> r
        | B.Exec_result _ | B.Batch_result _ | B.Row_result _ ->
          assert false);
    peek_after =
      (fun ?lin table after filter ->
        match request table (Events.C_peek_after (after, filter)) lin with
        | B.Row_result r -> r
        | B.Exec_result _ | B.Batch_result _ | B.Rows_result _ ->
          assert false);
    stream_phase =
      (fun () ->
        R.send ctx tables (Events.Phase_request { reply_to = R.self ctx });
        match
          R.receive_where ctx (function
            | Events.Phase_reply _ -> true
            | _ -> false)
        with
        | Events.Phase_reply { phase; at } ->
          stash.last_at <- at;
          phase
        | _ -> assert false);
  }
