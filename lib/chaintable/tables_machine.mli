(** The Tables machine (paper Fig. 12): owns the two backend tables and the
    reference table, and serializes every backend operation.

    Responsibilities:
    - execute backend calls and reply to the requesting machine;
    - evaluate linearization predicates: when a call is the linearization
      point of a logical operation, apply the operation registered by
      [Begin_op] to the reference table {e atomically with the call} and
      return the reference outcome in the response;
    - track in-flight logical operations and their phases, deferring phase
      transitions (and the starts of operations that would extend the
      drain) until incompatible operations complete;
    - validate completed streamed reads against the reference table's
      version history ({!Spec_check});
    - discard backend requests whose per-client sequence number was
      already handled — duplicates injected by the fault substrate —
      unless [bugs.backend_no_dedup] re-introduces the double execution;
    - halt on [Tables_shutdown]. *)

(** [machine ~initial_rows ctx] runs the Tables machine. [initial_rows]
    seeds the old table and the reference table identically (the
    pre-migration data set). *)
val machine :
  ?bugs:Bug_flags.t ->
  initial_rows:(Table_types.key * Table_types.props) list ->
  Psharp.Runtime.ctx ->
  unit
