type t = {
  query_atomic_filter_shadowing : bool;
  query_streamed_lock : bool;
  query_streamed_back_up_new_stream : bool;
  delete_no_leave_tombstones_etag : bool;
  delete_primary_key : bool;
  ensure_partition_switched_from_populated : bool;
  tombstone_output_etag : bool;
  query_streamed_filter_shadowing : bool;
  migrate_skip_prefer_old : bool;
  migrate_skip_use_new_with_tombstones : bool;
  insert_behind_migrator : bool;
  backend_no_dedup : bool;
  retry_fresh_seq : bool;
}

let none =
  {
    query_atomic_filter_shadowing = false;
    query_streamed_lock = false;
    query_streamed_back_up_new_stream = false;
    delete_no_leave_tombstones_etag = false;
    delete_primary_key = false;
    ensure_partition_switched_from_populated = false;
    tombstone_output_etag = false;
    query_streamed_filter_shadowing = false;
    migrate_skip_prefer_old = false;
    migrate_skip_use_new_with_tombstones = false;
    insert_behind_migrator = false;
    backend_no_dedup = false;
    retry_fresh_seq = false;
  }

(* Not part of Table 2 (hence absent from [names]): only observable when
   the engine injects message faults. *)
let dup_bug = { none with backend_no_dedup = true }

(* Not part of Table 2 either: only observable under virtual time with
   delay faults, where an RPC can outlive its timeout. *)
let retry_bug = { none with retry_fresh_seq = true }

let names =
  [
    "QueryAtomicFilterShadowing";
    "QueryStreamedLock";
    "QueryStreamedBackUpNewStream";
    "DeleteNoLeaveTombstonesEtag";
    "DeletePrimaryKey";
    "EnsurePartitionSwitchedFromPopulated";
    "TombstoneOutputETag";
    "QueryStreamedFilterShadowing";
    "MigrateSkipPreferOld";
    "MigrateSkipUseNewWithTombstones";
    "InsertBehindMigrator";
  ]

let with_bug = function
  | "QueryAtomicFilterShadowing" -> { none with query_atomic_filter_shadowing = true }
  | "QueryStreamedLock" -> { none with query_streamed_lock = true }
  | "QueryStreamedBackUpNewStream" ->
    { none with query_streamed_back_up_new_stream = true }
  | "DeleteNoLeaveTombstonesEtag" ->
    { none with delete_no_leave_tombstones_etag = true }
  | "DeletePrimaryKey" -> { none with delete_primary_key = true }
  | "EnsurePartitionSwitchedFromPopulated" ->
    { none with ensure_partition_switched_from_populated = true }
  | "TombstoneOutputETag" -> { none with tombstone_output_etag = true }
  | "QueryStreamedFilterShadowing" ->
    { none with query_streamed_filter_shadowing = true }
  | "MigrateSkipPreferOld" -> { none with migrate_skip_prefer_old = true }
  | "MigrateSkipUseNewWithTombstones" ->
    { none with migrate_skip_use_new_with_tombstones = true }
  | "InsertBehindMigrator" -> { none with insert_behind_migrator = true }
  | name -> invalid_arg (Printf.sprintf "Bug_flags.with_bug: unknown bug %s" name)

let is_notional = function
  | "MigrateSkipPreferOld" | "MigrateSkipUseNewWithTombstones"
  | "InsertBehindMigrator" -> true
  | _ -> false

let needs_custom_case = function
  | "QueryStreamedFilterShadowing" | "MigrateSkipPreferOld"
  | "MigrateSkipUseNewWithTombstones" | "InsertBehindMigrator" -> true
  | _ -> false
