(** Workloads the service machines drive through their MigratingTable
    instances. [Random_ops] mirrors the paper's harness: operation kinds,
    keys, values, filters and etag choices are all drawn through the
    engine's controlled nondeterminism (§4, "they used the P# Nondet()
    method to choose all of the parameters independently"). [Scripted] is
    the paper's "custom test case with a specific input" used for the four
    ⊙ bugs of Table 2. *)

type step =
  | S_insert of Table_types.key * string  (** Insert with property v=value *)
  | S_upsert of Table_types.key * string  (** InsertOrReplace *)
  | S_replace_current of Table_types.key * string
      (** conditional Replace using the most recently observed etag *)
  | S_delete_uncond of Table_types.key
  | S_delete_current of Table_types.key
  | S_delete_stale of Table_types.key
      (** conditional Delete using the oldest observed etag *)
  | S_retrieve of Table_types.key
  | S_query of Filter0.t
  | S_stream of Filter0.t
  | S_pause of int  (** let other machines run for roughly [n] round trips *)

type t =
  | Random_ops of { n_ops : int }
  | Scripted of step list

(** Default random workload per service. *)
val default : t

(** The pinned-input custom test case for a ⊙ bug of Table 2, as a
    per-service workload list.
    @raise Invalid_argument for bugs with no custom case. *)
val custom_case : string -> t list

(** Stream-free mutation/atomic-read workloads for the virtual-time
    timeout-retry entry (ChaintableRetryFreshSeq): plenty of linearized
    RPCs for the retry race, no streams — a latency-delayed stream read
    would instead trip the separate snapshot-phase stream race. *)
val retry_case : t list

(** Keys/values the random workload draws from. *)
val key_space : Table_types.key list

val value_space : string list

(** Filter pool for random queries. *)
val filter_pool : Filter0.t list

(** Default initial data set (seeded into the old table). *)
val initial_rows : (Table_types.key * Table_types.props) list
