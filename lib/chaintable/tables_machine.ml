module T = Table_types
module B = Backend
module R = Psharp.Runtime

type model = {
  old_table : Reference_table.t;
  new_table : Reference_table.t;
  rt : Reference_table.t;
  mutable vclock : int;
  mutable phase : Phase.t;
  mutable in_flight : (Psharp.Id.t * Phase.t) list;
  pending : (int, Linearize.pending) Hashtbl.t;
  mutable queued_advance : (Psharp.Id.t * Phase.t) option;
  mutable deferred_begins : (Psharp.Id.t * Linearize.pending option) list;
  (* highest backend-request sequence number handled per client, so a
     request duplicated by the fault substrate is executed exactly once *)
  last_seq : (int, int) Hashtbl.t;
}

let table_of m = function
  | B.Old -> m.old_table
  | B.New -> m.new_table

let run_call m table call =
  match call with
  | Events.C_execute op ->
    B.Exec_result (Reference_table.execute ~at:m.vclock table op)
  | Events.C_batch ops ->
    B.Batch_result (Reference_table.execute_batch ~at:m.vclock table ops)
  | Events.C_retrieve key -> B.Row_result (Reference_table.retrieve table key)
  | Events.C_query filter -> B.Rows_result (Reference_table.query table filter)
  | Events.C_peek_after (after, filter) ->
    B.Row_result (Reference_table.peek_after table after filter)

let handle_backend_request ctx m ~reply_to ~seq ~table ~call ~lin =
  m.vclock <- m.vclock + 1;
  let result = run_call m (table_of m table) call in
  let rt_outcome =
    match lin with
    | Some pred when pred result -> begin
      match Hashtbl.find_opt m.pending (Psharp.Id.index reply_to) with
      | Some pending ->
        Hashtbl.remove m.pending (Psharp.Id.index reply_to);
        let outcome = Linearize.apply m.rt ~at:m.vclock pending in
        R.log ctx
          (Printf.sprintf "linearized %s -> %s"
             (Linearize.pending_to_string pending)
             (T.outcome_to_string outcome));
        Some outcome
      | None ->
        R.assert_here ctx false
          (Printf.sprintf
             "double linearization: %s linearized a call with no pending \
              logical operation"
             (Psharp.Id.to_string reply_to));
        None
    end
    | Some _ | None -> None
  in
  let response =
    Events.Backend_response { seq; result; rt_outcome; at = m.vclock }
  in
  (* Under virtual time the response hop crosses the network too, so it is
     equally exposed to the fault substrate — a delayed response is what
     makes the client's RPC timeout fire after the call already executed
     (the ChaintableRetryFreshSeq race). Clock off keeps the pre-clock
     single-faulty-hop protocol byte-identical. *)
  if R.clock_on ctx then R.send_faulty ctx reply_to response
  else R.send ctx reply_to response

let register_begin ctx m (requester, pending) =
  m.in_flight <- (requester, m.phase) :: m.in_flight;
  (match pending with
   | Some p -> Hashtbl.replace m.pending (Psharp.Id.index requester) p
   | None -> ());
  R.send ctx requester (Events.Begin_reply { phase = m.phase })

let try_apply_advance ctx m =
  match m.queued_advance with
  | None -> ()
  | Some (requester, target) ->
    let drained =
      List.for_all (fun (_, q) -> Phase.compatible q target) m.in_flight
    in
    if drained then begin
      m.phase <- target;
      m.queued_advance <- None;
      R.log ctx (Printf.sprintf "phase -> %s" (Phase.to_string target));
      R.send ctx requester Events.Advance_done;
      (* Release begins that were deferred behind the transition. *)
      let deferred = List.rev m.deferred_begins in
      m.deferred_begins <- [];
      List.iter (register_begin ctx m) deferred
    end

let handle_begin ctx m ~reply_to ~pending =
  let must_defer =
    match m.queued_advance with
    | Some (_, target) -> not (Phase.compatible m.phase target)
    | None -> false
  in
  if must_defer then
    (* Starting a new op at the current phase would extend the drain the
       queued transition is waiting on; hold it until the phase changes. *)
    m.deferred_begins <- (reply_to, pending) :: m.deferred_begins
  else register_begin ctx m (reply_to, pending)

let handle_end ctx m ~service =
  m.in_flight <-
    List.filter (fun (id, _) -> not (Psharp.Id.equal id service)) m.in_flight;
  (match Hashtbl.find_opt m.pending (Psharp.Id.index service) with
   | Some pending ->
     R.assert_here ctx false
       (Printf.sprintf
          "logical operation %s by %s completed without a linearization point"
          (Linearize.pending_to_string pending)
          (Psharp.Id.to_string service))
   | None -> ());
  try_apply_advance ctx m

let handle_advance ctx m ~reply_to ~target =
  R.assert_here ctx (m.queued_advance = None)
    "concurrent phase transitions requested";
  m.queued_advance <- Some (reply_to, target);
  try_apply_advance ctx m

let handle_validate ctx m ~reply_to ~started_at ~finished_at ~filter ~emissions =
  let verdict =
    Spec_check.check_stream ~rt:m.rt ~started_at ~finished_at ~filter
      ~emissions
  in
  R.send ctx reply_to (Events.Validate_reply { verdict })

let machine ?(bugs = Bug_flags.none) ~initial_rows ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"Tables"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:7;
  let m =
    {
      old_table = Reference_table.create ~first_etag:1 ~etag_step:2 ();
      new_table = Reference_table.create ~first_etag:2 ~etag_step:2 ();
      rt = Reference_table.create ();
      vclock = 0;
      phase = Phase.Use_old;
      in_flight = [];
      pending = Hashtbl.create 8;
      queued_advance = None;
      deferred_begins = [];
      last_seq = Hashtbl.create 8;
    }
  in
  List.iter
    (fun (key, props) ->
      match
        ( Reference_table.execute ~at:0 m.old_table (T.Insert { key; props }),
          Reference_table.execute ~at:0 m.rt (T.Insert { key; props }) )
      with
      | Ok _, Ok _ -> ()
      | _ -> R.assert_here ctx false "initial row seeding failed")
    initial_rows;
  let rec loop () =
    (match R.receive ctx with
     | Events.Backend_request { reply_to; seq; table; call; lin } ->
       let duplicate =
         (not bugs.Bug_flags.backend_no_dedup)
         &&
         match Hashtbl.find_opt m.last_seq (Psharp.Id.index reply_to) with
         | Some s -> seq <= s
         | None -> false
       in
       if duplicate then
         (* ChaintableDuplicateBackendRequest: without this dedup a request
            duplicated in flight executes twice — the second run of a
            linearized call finds no pending logical operation and trips
            the double-linearization assert. *)
         R.log ctx
           (Printf.sprintf "discarded duplicate backend request seq=%d" seq)
       else begin
         Hashtbl.replace m.last_seq (Psharp.Id.index reply_to) seq;
         handle_backend_request ctx m ~reply_to ~seq ~table ~call ~lin
       end
     | Events.Begin_op { reply_to; pending } ->
       handle_begin ctx m ~reply_to ~pending
     | Events.End_op { service } -> handle_end ctx m ~service
     | Events.Phase_request { reply_to } ->
       R.send ctx reply_to
         (Events.Phase_reply { phase = m.phase; at = m.vclock })
     | Events.Advance_request { reply_to; target } ->
       handle_advance ctx m ~reply_to ~target
     | Events.Validate_stream
         { reply_to; started_at; finished_at; filter; emissions } ->
       handle_validate ctx m ~reply_to ~started_at ~finished_at ~filter
         ~emissions
     | Events.Tables_shutdown -> R.halt ctx
     | _ -> ());
    loop ()
  in
  loop ()
