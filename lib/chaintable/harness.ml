module R = Psharp.Runtime

let test ?(bugs = Bug_flags.none)
    ?(workloads = [ Workload.default; Workload.default ])
    ?(initial_rows = Workload.initial_rows) () ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"MigrationHarness"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  let tables =
    R.create ctx ~name:"Tables" (Tables_machine.machine ~bugs ~initial_rows)
  in
  let root = R.self ctx in
  List.iteri
    (fun i workload ->
      ignore
        (R.create ctx
           ~name:(Printf.sprintf "Service%d" i)
           (Service_machine.machine ~tables ~bugs ~workload ~report_to:root)))
    workloads;
  ignore
    (R.create ctx ~name:"Migrator"
       (Migrator_machine.machine ~tables ~bugs ~report_to:root));
  let participants = List.length workloads + 1 in
  for _ = 1 to participants do
    ignore
      (R.receive_where ctx (function
        | Events.Participant_done -> true
        | _ -> false))
  done;
  R.send ctx tables Events.Tables_shutdown

let test_for_bug ?(custom = false) name ctx =
  let bugs = Bug_flags.with_bug name in
  if custom then test ~bugs ~workloads:(Workload.custom_case name) () ctx
  else test ~bugs () ctx
