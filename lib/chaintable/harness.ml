module R = Psharp.Runtime

let test ?(bugs = Bug_flags.none)
    ?(workloads = [ Workload.default; Workload.default ])
    ?(initial_rows = Workload.initial_rows) ?(oracle = `Legacy) ?history
    ?history_out () ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"MigrationHarness"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  (* [`Lin] (or a [history_out] request) needs a history even if the
     caller brought none; under plain [`Legacy] one is recorded only on
     request (corpus-agreement tests). Either way recording is draw-free,
     so schedules are unchanged. Completed operations double as [history]
     coverage points whenever a history is armed. *)
  let history =
    match (history, oracle, history_out) with
    | (Some _ as h), _, _ -> h
    | None, `Lin, _ | None, `Legacy, Some _ ->
      Some
        (Psharp.History.create ~on_complete:(R.history_point ctx) ())
    | None, `Legacy, None -> None
  in
  let check_outcomes = oracle = `Legacy in
  let tables =
    R.create ctx ~name:"Tables" (Tables_machine.machine ~bugs ~initial_rows)
  in
  let root = R.self ctx in
  List.iteri
    (fun i workload ->
      let name = Printf.sprintf "Service%d" i in
      ignore
        (R.create ctx ~name
           (Service_machine.machine ?history ~check_outcomes ~tables ~bugs
              ~workload ~name ~report_to:root)))
    workloads;
  ignore
    (R.create ctx ~name:"Migrator"
       (Migrator_machine.machine ~tables ~bugs ~report_to:root));
  let participants = List.length workloads + 1 in
  for _ = 1 to participants do
    ignore
      (R.receive_where ctx (function
        | Events.Participant_done -> true
        | _ -> false))
  done;
  R.send ctx tables Events.Tables_shutdown;
  (* saved before the verdict so a violating history is on disk too *)
  (match (history, history_out) with
   | Some h, Some path -> Psharp.History.save h ~path
   | _ -> ());
  match (oracle, history) with
  | `Lin, Some h -> begin
    match Psharp.Linearizability.check (Lin_oracle.model initial_rows) h with
    | Psharp.Linearizability.Linearizable _ -> ()
    | Psharp.Linearizability.Illegal msg ->
      R.assert_here ctx false (Printf.sprintf "chaintable: %s" msg)
  end
  | _ -> ()

let test_for_bug ?(custom = false) name ctx =
  let bugs = Bug_flags.with_bug name in
  if custom then test ~bugs ~workloads:(Workload.custom_case name) () ctx
  else test ~bugs () ctx
