(** Reference implementation of the IChainTable specification (paper §4).

    An in-memory, linearizable chain table with Azure batch semantics:
    single-partition atomic batches, etag-conditional mutations, snapshot
    queries, and cursor-based streamed reads. The paper's harness uses this
    implementation both as the two backend tables and as the reference
    table the migrating table is compared against; it additionally records
    per-key version history so streamed reads can be validated against the
    weak streaming specification. *)

module Key_map : Map.S with type key = Table_types.key

type t

(** [plan rows op] validates [op] against a row snapshot and returns its
    effect — [Some props] for a write, [None] for a delete — without
    assigning an etag or touching any state. Exposed so the
    {!Lin_oracle} replay model shares the exact conditional-mutation
    semantics of the reference table instead of re-implementing them. *)
val plan :
  Table_types.row Key_map.t ->
  Table_types.op ->
  (Table_types.props option, Table_types.op_error) result

(** [create ~first_etag ~etag_step ()]: etags are assigned from the
    arithmetic progression [first_etag, first_etag + etag_step, ...].
    Tables that participate in one virtual table must use disjoint
    progressions so distinct versions never share an etag, mirroring the
    global uniqueness of real table etags. *)
val create : ?first_etag:int -> ?etag_step:int -> unit -> t

(** Logical clock: incremented by every mutating call; reads return the
    current value. Version history is stamped with it. *)
val now : t -> int

(** Point lookup. *)
val retrieve : t -> Table_types.key -> Table_types.row option

(** Apply one mutation. [at] overrides the version-history timestamp with
    an external logical clock (the harness's); defaults to the internal
    clock tick. *)
val execute :
  ?at:int ->
  t ->
  Table_types.op ->
  (Table_types.op_result, Table_types.op_error) result

(** Atomic batch: all operations must target the same partition and
    distinct keys, else [Batch_rejected]; on any op failure nothing is
    applied and the first failure is returned. *)
val execute_batch :
  ?at:int ->
  t ->
  Table_types.op list ->
  (Table_types.op_result list, Table_types.op_error) result

(** Snapshot query: all matching rows in key order. *)
val query : t -> Filter0.t -> Table_types.row list

(** [peek_after t after filter] is the first matching row with key
    strictly greater than [after] ([None] = from the start) — one step of
    a streamed read against the live table. *)
val peek_after :
  t -> Table_types.key option -> Filter0.t -> Table_types.row option

(** All rows in key order (diagnostics). *)
val rows : t -> Table_types.row list

(** Number of live rows. *)
val size : t -> int

(** [history t key] is the version history of [key], oldest first:
    [(t, Some row)] means the row took that value at time [t];
    [(t, None)] means it was deleted at time [t]. Empty if never written. *)
val history : t -> Table_types.key -> (int * Table_types.row option) list

(** Every key that ever appeared in the history, in key order. *)
val known_keys : t -> Table_types.key list
