(** Backend implementation used inside harness machines: every call is a
    message round trip to the Tables machine (a scheduling point for the
    testing engine). The [stash] captures out-of-band data the
    MigratingTable code itself never sees: the reference-table outcome
    delivered at the linearization point, and the logical time of the last
    backend call (used to timestamp stream reads). *)

type stash = {
  mutable next_pending : Linearize.pending option;
      (** registered with the next [begin_op] *)
  mutable rt_outcome : Table_types.outcome option;
      (** captured when a linearization fires *)
  mutable last_at : int;  (** Tables clock of the last response *)
  mutable next_seq : int;
      (** sequence number for the next backend request; the Tables machine
          uses it to discard duplicates injected by the fault substrate *)
}

val create_stash : unit -> stash

(** [ops ctx ~tables ~stash] builds the backend interface for the machine
    running in [ctx]. *)
val ops : Psharp.Runtime.ctx -> tables:Psharp.Id.t -> stash:stash -> Backend.ops

(** Take (and clear) the captured reference outcome. *)
val take_rt_outcome : stash -> Table_types.outcome option
