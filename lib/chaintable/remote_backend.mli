(** Backend implementation used inside harness machines: every call is a
    message round trip to the Tables machine (a scheduling point for the
    testing engine). The [stash] captures out-of-band data the
    MigratingTable code itself never sees: the reference-table outcome
    delivered at the linearization point, and the logical time of the last
    backend call (used to timestamp stream reads). *)

type stash = {
  mutable next_pending : Linearize.pending option;
      (** registered with the next [begin_op] *)
  mutable rt_outcome : Table_types.outcome option;
      (** captured when a linearization fires *)
  mutable last_at : int;  (** Tables clock of the last response *)
  mutable next_seq : int;
      (** sequence number for the next backend request; the Tables machine
          uses it to discard duplicates injected by the fault substrate *)
  mutable next_token : int;
      (** token for the next RPC-timeout self-delivery (virtual time only);
          distinguishes a live timeout from a stale one whose response
          already arrived *)
}

val create_stash : unit -> stash

(** [ops ctx ~tables ~stash] builds the backend interface for the machine
    running in [ctx]. Under virtual time ({!Psharp.Runtime.clock_on}) each
    call carries a timeout and retransmits when the response misses it —
    with the same sequence number, so the server's dedup keeps the call
    exactly-once; [bugs.retry_fresh_seq] re-introduces the retry-as-new-
    request defect (ChaintableRetryFreshSeq). With the clock off the RPC
    path is byte-identical to the pre-clock protocol. *)
val ops :
  ?bugs:Bug_flags.t ->
  Psharp.Runtime.ctx ->
  tables:Psharp.Id.t ->
  stash:stash ->
  Backend.ops

(** Take (and clear) the captured reference outcome. *)
val take_rt_outcome : stash -> Table_types.outcome option
