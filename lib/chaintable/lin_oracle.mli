(** The generic-checker oracle for the MigratingTable harness (ISSUE 7
    satellite): a sequential replay model over the reference table's own
    [plan] semantics, judged by {!Psharp.Linearizability} against the
    history of (reference-table operation, migrating-table outcome) pairs
    the service machines record.

    Where the legacy oracle ({!Spec_check} plus the per-operation
    divergence asserts in {!Service_machine}) compares outcomes at the
    exact linearization point the Tables machine observed, this oracle
    only requires that {e some} linearization order within each
    operation's invoke/response window explains every recorded
    migrating-table outcome — the textbook correctness condition. The two
    agree on the witness corpus (see [test/test_linearizability.ml]);
    streamed reads remain validated by {!Spec_check}, as interval reads
    are outside a point-operation checker's vocabulary. *)

type state

(** [model initial_rows] is the sequential spec, starting from the same
    seeded state the Tables machine gives its reference table. *)
val model :
  (Table_types.key * Table_types.props) list ->
  (state, Linearize.pending, Table_types.outcome) Psharp.Linearizability.model
