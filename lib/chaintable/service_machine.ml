module T = Table_types
module R = Psharp.Runtime
module Mt = Migrating_table

module Key_map = Map.Make (struct
  type t = T.key

  let compare = T.compare_key
end)

type state = {
  mt : Mt.t;
  stash : Remote_backend.stash;
  tables : Psharp.Id.t;
  name : string;
  history : (Linearize.pending, T.outcome) Psharp.History.t option;
      (** when present, every point operation is recorded as an
          invoke/response pair — the input of the generic
          linearizability oracle (see {!Lin_oracle}) *)
  check_outcomes : bool;
      (** legacy oracle: assert MT/RT outcome equivalence per operation
          at the linearization point *)
  mutable pairs : (int * int) list Key_map.t;
      (** observed (virtual etag, reference etag) pairs, newest first *)
}

(* History recording is draw-free, so arming it cannot perturb
   schedules; the [at] stamps are the reference table's logical clock
   (informational — precedence comes from recording order). *)
let record_invoke s pending =
  match s.history with
  | None -> None
  | Some h ->
    Some
      (Psharp.History.invoke h ~client:s.name
         ~at:s.stash.Remote_backend.last_at
         ~repr:(Linearize.pending_to_string pending)
         pending)

let record_respond s id outcome =
  match (s.history, id) with
  | Some h, Some id ->
    Psharp.History.respond h ~id ~at:s.stash.Remote_backend.last_at
      ~repr:(T.outcome_to_string outcome) outcome
  | _ -> ()

let observed s key = Option.value (Key_map.find_opt key s.pairs) ~default:[]

let record_pair s key pair =
  let existing = observed s key in
  if match existing with p :: _ -> p <> pair | [] -> true then
    s.pairs <- Key_map.add key (pair :: existing) s.pairs

let record_rows s mt_rows rt_rows =
  List.iter
    (fun (mt_row : T.row) ->
      match
        List.find_opt
          (fun (rt_row : T.row) -> T.compare_key rt_row.T.key mt_row.T.key = 0)
          rt_rows
      with
      | Some rt_row -> record_pair s mt_row.T.key (mt_row.T.etag, rt_row.T.etag)
      | None -> ())
    mt_rows

(* Run one logical mutation through the MT and the RT, assert equivalent
   outcomes, update etag bookkeeping. *)
let run_mutation ctx s ~mt_op ~rt_op =
  let inv = record_invoke s (Linearize.Mutate rt_op) in
  s.stash.Remote_backend.next_pending <- Some (Linearize.Mutate rt_op);
  let mt_outcome = T.Mutated (Mt.mutate s.mt mt_op) in
  record_respond s inv mt_outcome;
  match Remote_backend.take_rt_outcome s.stash with
  | None ->
    R.assert_here ctx false
      (Printf.sprintf "%s never reached a linearization point"
         (T.op_to_string mt_op))
  | Some rt_outcome ->
    if s.check_outcomes then
      R.assert_here ctx
        (T.outcome_equivalent mt_outcome rt_outcome)
        (Printf.sprintf
           "outcome divergence on %s: migrating table returned %s, reference \
            table returned %s"
           (T.op_to_string mt_op)
           (T.outcome_to_string mt_outcome)
           (T.outcome_to_string rt_outcome));
    (match (mt_outcome, rt_outcome) with
     | ( T.Mutated (Ok { T.new_etag = Some m }),
         T.Mutated (Ok { T.new_etag = Some r }) ) ->
       record_pair s (T.op_key mt_op) (m, r)
     | _ -> ())

let run_retrieve ctx s key =
  let inv = record_invoke s (Linearize.Read (T.Retrieve key)) in
  s.stash.Remote_backend.next_pending <- Some (Linearize.Read (T.Retrieve key));
  let mt_row = Mt.retrieve s.mt key in
  record_respond s inv (T.Row mt_row);
  match Remote_backend.take_rt_outcome s.stash with
  | None -> R.assert_here ctx false "retrieve never linearized"
  | Some rt_outcome ->
    if s.check_outcomes then
      R.assert_here ctx
        (T.outcome_equivalent (T.Row mt_row) rt_outcome)
        (Printf.sprintf
           "retrieve divergence on %s: migrating table %s, reference table %s"
           (T.key_to_string key)
           (T.outcome_to_string (T.Row mt_row))
           (T.outcome_to_string rt_outcome));
    (match (mt_row, rt_outcome) with
     | Some m, T.Row (Some r) -> record_pair s key (m.T.etag, r.T.etag)
     | _ -> ())

let run_query ctx s filter =
  let inv = record_invoke s (Linearize.Read (T.Query_atomic filter)) in
  s.stash.Remote_backend.next_pending <-
    Some (Linearize.Read (T.Query_atomic filter));
  let mt_rows = Mt.query_atomic s.mt filter in
  record_respond s inv (T.Rows mt_rows);
  match Remote_backend.take_rt_outcome s.stash with
  | None -> R.assert_here ctx false "query never linearized"
  | Some rt_outcome ->
    if s.check_outcomes then
      R.assert_here ctx
        (T.outcome_equivalent (T.Rows mt_rows) rt_outcome)
        (Printf.sprintf
           "query divergence on %s: migrating table %s, reference table %s"
           (Filter0.to_string filter)
           (T.outcome_to_string (T.Rows mt_rows))
           (T.outcome_to_string rt_outcome));
    (match rt_outcome with
     | T.Rows rt_rows -> record_rows s mt_rows rt_rows
     | _ -> ())

let run_stream ctx s filter =
  let stream = Mt.query_streamed s.mt filter in
  let started_at = s.stash.Remote_backend.last_at in
  let rec collect acc =
    match Mt.stream_next stream with
    | Some row ->
      collect ({ Spec_check.row; at = s.stash.Remote_backend.last_at } :: acc)
    | None -> List.rev acc
  in
  let emissions = collect [] in
  let finished_at = s.stash.Remote_backend.last_at in
  R.send ctx s.tables
    (Events.Validate_stream
       { reply_to = R.self ctx; started_at; finished_at; filter; emissions });
  match
    R.receive_where ctx (function Events.Validate_reply _ -> true | _ -> false)
  with
  | Events.Validate_reply { verdict = Ok () } -> ()
  | Events.Validate_reply { verdict = Error msg } ->
    R.assert_here ctx false
      (Printf.sprintf "streamed read violated the specification: %s" msg)
  | _ -> assert false

let pause ctx s n =
  (* A few harmless round trips so other machines can make progress. *)
  let backend = Remote_backend.ops ctx ~tables:s.tables ~stash:s.stash in
  for _ = 1 to n do
    ignore (backend.Backend.stream_phase ())
  done

(* --- Random workload ---------------------------------------------------- *)

let props_of value = [ ("v", value) ]

let random_op ctx s =
  let key = R.choose ctx Workload.key_space in
  let value = R.choose ctx Workload.value_space in
  let props = props_of value in
  let conditional make =
    match observed s key with
    | [] ->
      (* No etag ever observed: fall back to an upsert. *)
      ( T.Insert_or_replace { key; props },
        T.Insert_or_replace { key; props } )
    | pairs ->
      let idx = R.nondet_int ctx (min 3 (List.length pairs)) in
      let m_etag, r_etag = List.nth pairs idx in
      (make m_etag, make r_etag)
  in
  match R.nondet_int ctx 9 with
  | 0 ->
    let mk _ = T.Insert { key; props } in
    Some (mk 0, mk 0)
  | 1 ->
    let mt, rt = conditional (fun etag -> T.Replace { key; etag; props }) in
    Some (mt, rt)
  | 2 ->
    let mt, rt = conditional (fun etag -> T.Merge { key; etag; props }) in
    Some (mt, rt)
  | 3 -> Some (T.Insert_or_replace { key; props }, T.Insert_or_replace { key; props })
  | 4 -> Some (T.Insert_or_merge { key; props }, T.Insert_or_merge { key; props })
  | 5 ->
    let mt, rt =
      conditional (fun etag -> T.Delete { key; etag = Some etag })
    in
    Some (mt, rt)
  | 6 -> Some (T.Delete { key; etag = None }, T.Delete { key; etag = None })
  | _ -> None (* handled by caller: reads *)

let run_random ctx s n_ops =
  for _ = 1 to n_ops do
    match random_op ctx s with
    | Some (mt_op, rt_op) -> run_mutation ctx s ~mt_op ~rt_op
    | None -> begin
      match R.nondet_int ctx 3 with
      | 0 -> run_retrieve ctx s (R.choose ctx Workload.key_space)
      | 1 -> run_query ctx s (R.choose ctx Workload.filter_pool)
      | _ -> run_stream ctx s (R.choose ctx Workload.filter_pool)
    end
  done

(* --- Scripted workload -------------------------------------------------- *)

let run_step ctx s (step : Workload.step) =
  match step with
  | Workload.S_insert (key, value) ->
    let op etag = ignore etag; T.Insert { key; props = props_of value } in
    run_mutation ctx s ~mt_op:(op 0) ~rt_op:(op 0)
  | Workload.S_upsert (key, value) ->
    let op = T.Insert_or_replace { key; props = props_of value } in
    run_mutation ctx s ~mt_op:op ~rt_op:op
  | Workload.S_replace_current (key, value) -> begin
    match observed s key with
    | (m, r) :: _ ->
      run_mutation ctx s
        ~mt_op:(T.Replace { key; etag = m; props = props_of value })
        ~rt_op:(T.Replace { key; etag = r; props = props_of value })
    | [] -> run_retrieve ctx s key
  end
  | Workload.S_delete_uncond key ->
    let op = T.Delete { key; etag = None } in
    run_mutation ctx s ~mt_op:op ~rt_op:op
  | Workload.S_delete_current key -> begin
    match observed s key with
    | (m, r) :: _ ->
      run_mutation ctx s
        ~mt_op:(T.Delete { key; etag = Some m })
        ~rt_op:(T.Delete { key; etag = Some r })
    | [] -> run_retrieve ctx s key
  end
  | Workload.S_delete_stale key -> begin
    match List.rev (observed s key) with
    | (m, r) :: _ ->
      run_mutation ctx s
        ~mt_op:(T.Delete { key; etag = Some m })
        ~rt_op:(T.Delete { key; etag = Some r })
    | [] -> run_retrieve ctx s key
  end
  | Workload.S_retrieve key -> run_retrieve ctx s key
  | Workload.S_query filter -> run_query ctx s filter
  | Workload.S_stream filter -> run_stream ctx s filter
  | Workload.S_pause n -> pause ctx s n

(* --- Entry point -------------------------------------------------------- *)

let machine ?history ?(check_outcomes = true) ~tables ~bugs ~workload ~name
    ~report_to ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"Service"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:3;
  let stash = Remote_backend.create_stash () in
  let backend = Remote_backend.ops ~bugs ctx ~tables ~stash in
  let s =
    {
      mt = Mt.create ~bugs backend;
      stash;
      tables;
      name;
      history;
      check_outcomes;
      pairs = Key_map.empty;
    }
  in
  (match workload with
   | Workload.Random_ops { n_ops } -> run_random ctx s n_ops
   | Workload.Scripted steps -> List.iter (run_step ctx s) steps);
  R.send ctx report_to Events.Participant_done;
  R.halt ctx
