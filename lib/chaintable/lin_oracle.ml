module T = Table_types
module Key_map = Reference_table.Key_map

type state = { rows : T.row Key_map.t; next_etag : int }

(* The reference table seeds initial rows as plain inserts with etags
   1, 2, ... before any client runs (Tables_machine); the model starts
   from the same state so recorded conditional operations — which carry
   concrete reference-table etags — evaluate identically. *)
let init_state initial_rows =
  List.fold_left
    (fun s (key, props) ->
      match Reference_table.plan s.rows (T.Insert { key; props }) with
      | Ok (Some props) ->
        {
          rows = Key_map.add key { T.key; props; etag = s.next_etag } s.rows;
          next_etag = s.next_etag + 1;
        }
      | Ok None | Error _ ->
        invalid_arg "Lin_oracle: initial rows must insert cleanly")
    { rows = Key_map.empty; next_etag = 1 }
    initial_rows

let apply s op =
  match op with
  | Linearize.Mutate op -> begin
    match Reference_table.plan s.rows op with
    | Error e -> (s, T.Mutated (Error e))
    | Ok (Some props) ->
      let key = T.op_key op in
      let row = { T.key; props; etag = s.next_etag } in
      ( { rows = Key_map.add key row s.rows; next_etag = s.next_etag + 1 },
        T.Mutated (Ok { T.new_etag = Some row.T.etag }) )
    | Ok None ->
      ( { s with rows = Key_map.remove (T.op_key op) s.rows },
        T.Mutated (Ok { T.new_etag = None }) )
  end
  | Linearize.Read (T.Retrieve key) -> (s, T.Row (Key_map.find_opt key s.rows))
  | Linearize.Read (T.Query_atomic f) ->
    let rows =
      Key_map.fold
        (fun _ row acc -> if Filter.matches f row then row :: acc else acc)
        s.rows []
      |> List.rev
    in
    (s, T.Rows rows)

let repr_state s =
  Printf.sprintf "e%d|%s" s.next_etag
    (String.concat ";"
       (List.map
          (fun (_, row) -> T.row_to_string row)
          (Key_map.bindings s.rows)))

let model initial_rows :
  (state, Linearize.pending, T.outcome) Psharp.Linearizability.model =
  {
    Psharp.Linearizability.init = init_state initial_rows;
    apply;
    (* [outcome_equivalent] compares the model's reference-style outcome
       against the recorded migrating-table outcome modulo etag values —
       the same equivalence the legacy per-operation assert used. *)
    match_res = T.outcome_equivalent;
    repr_res = T.outcome_to_string;
    repr_state;
    (* queries span keys, so the history cannot be partitioned per key *)
    key_of = None;
  }
