module R = Psharp.Runtime

let machine ~tables ~bugs ~report_to ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"Migrator"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:2;
  let stash = Remote_backend.create_stash () in
  let backend = Remote_backend.ops ~bugs ctx ~tables ~stash in
  let advance target =
    R.send ctx tables
      (Events.Advance_request { reply_to = R.self ctx; target });
    match
      R.receive_where ctx (function Events.Advance_done -> true | _ -> false)
    with
    | Events.Advance_done ->
      (* Phase marker for the coverage maps: deliveries to the migrator now
         carry the migration phase as the receiver state. *)
      R.set_state_name ctx (Phase.to_string target);
      R.log ctx (Printf.sprintf "advanced to %s" (Phase.to_string target))
    | _ -> assert false
  in
  Migrator.run ~bugs { Migrator.backend; advance };
  R.send ctx report_to Events.Participant_done;
  R.halt ctx
