(** Service machine (paper Fig. 12): owns one MigratingTable instance and
    issues a workload of logical operations through it. For every logical
    operation it registers the equivalent reference-table operation with
    the Tables machine, receives the reference outcome captured at the
    linearization point, and (under the legacy oracle) asserts the two
    outcomes are equivalent. Completed streamed reads are validated
    against the reference history via the Tables machine.

    The service tracks, per key, the pairs of etags (migrating-table
    virtual etag, reference-table etag) it has observed, so conditional
    operations can be issued with semantically matched conditions — the
    current pair for a valid condition, an older pair for a stale one.

    [history], when given, receives every point operation as an
    invoke/response pair (the reference-table operation and the
    migrating-table outcome) for the generic linearizability oracle;
    recording is draw-free and never perturbs schedules. The response is
    recorded {e before} the legacy assert fires, so a history captured
    during a failing legacy run still contains the diverging outcome.
    [check_outcomes] (default true) keeps the legacy per-operation
    asserts; the [`Lin] harness oracle turns them off and judges the
    recorded history instead. *)

val machine :
  ?history:(Linearize.pending, Table_types.outcome) Psharp.History.t ->
  ?check_outcomes:bool ->
  tables:Psharp.Id.t ->
  bugs:Bug_flags.t ->
  workload:Workload.t ->
  name:string ->
  report_to:Psharp.Id.t ->
  Psharp.Runtime.ctx ->
  unit
