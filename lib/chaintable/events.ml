type call =
  | C_execute of Table_types.op
  | C_batch of Table_types.op list
  | C_retrieve of Table_types.key
  | C_query of Filter0.t
  | C_peek_after of Table_types.key option * Filter0.t

type Psharp.Event.t +=
  | Backend_request of {
      reply_to : Psharp.Id.t;
      seq : int;  (** per-client sequence number, lets the server dedup *)
      table : Backend.table;
      call : call;
      lin : Backend.lin option;
    }
  | Backend_response of {
      seq : int;  (** echoes the request's sequence number *)
      result : Backend.call_result;
      rt_outcome : Table_types.outcome option;
      at : int;
    }
  | Begin_op of {
      reply_to : Psharp.Id.t;
      pending : Linearize.pending option;
    }
  | Begin_reply of { phase : Phase.t }
  | End_op of { service : Psharp.Id.t }
  | Phase_request of { reply_to : Psharp.Id.t }
  | Phase_reply of { phase : Phase.t; at : int }
  | Advance_request of { reply_to : Psharp.Id.t; target : Phase.t }
  | Advance_done
  | Validate_stream of {
      reply_to : Psharp.Id.t;
      started_at : int;
      finished_at : int;
      filter : Filter0.t;
      emissions : Spec_check.emission list;
    }
  | Validate_reply of { verdict : (unit, string) result }
  | Rpc_timeout of { token : int }
  | Participant_done
  | Tables_shutdown

let call_to_string = function
  | C_execute op -> Table_types.op_to_string op
  | C_batch ops -> Printf.sprintf "Batch(%d ops)" (List.length ops)
  | C_retrieve key -> Printf.sprintf "Retrieve(%s)" (Table_types.key_to_string key)
  | C_query f -> Printf.sprintf "Query(%s)" (Filter0.to_string f)
  | C_peek_after (after, f) ->
    Printf.sprintf "PeekAfter(%s, %s)"
      (match after with
       | None -> "-"
       | Some k -> Table_types.key_to_string k)
      (Filter0.to_string f)

let printer = function
  | Backend_request { table; call; _ } ->
    Some
      (Printf.sprintf "BackendRequest(%s, %s)"
         (Backend.table_to_string table)
         (call_to_string call))
  | Backend_response { result; rt_outcome; at; _ } ->
    let result_str =
      match result with
      | Backend.Exec_result (Ok _) -> "ok"
      | Backend.Exec_result (Error e) -> Table_types.op_error_to_string e
      | Backend.Row_result None -> "row:-"
      | Backend.Row_result (Some r) -> Table_types.row_to_string r
      | Backend.Rows_result rs -> Printf.sprintf "%d rows" (List.length rs)
      | Backend.Batch_result (Ok rs) ->
        Printf.sprintf "batch ok (%d)" (List.length rs)
      | Backend.Batch_result (Error e) ->
        Printf.sprintf "batch %s" (Table_types.op_error_to_string e)
    in
    Some
      (Printf.sprintf "BackendResponse(%s%s, at=%d)" result_str
         (if rt_outcome <> None then ", linearized" else "")
         at)
  | Begin_op { pending; _ } ->
    Some
      (Printf.sprintf "BeginOp(%s)"
         (match pending with
          | None -> "-"
          | Some p -> Linearize.pending_to_string p))
  | Begin_reply { phase } ->
    Some (Printf.sprintf "BeginReply(%s)" (Phase.to_string phase))
  | Phase_reply { phase; at } ->
    Some (Printf.sprintf "PhaseReply(%s, at=%d)" (Phase.to_string phase) at)
  | Advance_request { target; _ } ->
    Some (Printf.sprintf "AdvanceRequest(%s)" (Phase.to_string target))
  | Validate_stream { emissions; _ } ->
    Some (Printf.sprintf "ValidateStream(%d emissions)" (List.length emissions))
  | Rpc_timeout { token } -> Some (Printf.sprintf "RpcTimeout(%d)" token)
  | Validate_reply { verdict } ->
    Some
      (Printf.sprintf "ValidateReply(%s)"
         (match verdict with Ok () -> "ok" | Error e -> e))
  | _ -> None

(* First executions may race across domains: CAS so the printer is
   registered exactly once. *)
let installed = Atomic.make false

let install_printer () =
  if Atomic.compare_and_set installed false true then
    Psharp.Event.register_printer printer
