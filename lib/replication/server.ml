module Logic = struct
  module Id_set = Set.Make (Psharp.Id)

  type t = {
    bugs : Bug_flags.t;
    replica_target : int;
    mutable nodes : Psharp.Id.t list;
    mutable data : int option;  (** seq of the request being replicated *)
    mutable client : Psharp.Id.t option;
    mutable counter : int;
    mutable replicas : Id_set.t;  (** used only by the fixed server *)
    mutable acked : bool;
        (** stale syncs that race past an Ack must not count toward the
            next request *)
  }

  type effect_ =
    | Broadcast_repl of int
    | Resend_repl of { node : Psharp.Id.t; seq : int }
    | Send_ack of { client : Psharp.Id.t; seq : int }

  let create ~bugs ~replica_target =
    {
      bugs;
      replica_target;
      nodes = [];
      data = None;
      client = None;
      counter = 0;
      replicas = Id_set.empty;
      acked = false;
    }

  let set_nodes t nodes = t.nodes <- nodes

  let on_client_req t ~client ~seq =
    t.data <- Some seq;
    t.client <- Some client;
    t.acked <- false;
    [ Broadcast_repl seq ]

  let is_up_to_date t ~stored =
    match (t.data, stored) with
    | Some seq, Some stored_seq -> seq = stored_seq
    | Some _, None -> false
    | None, _ -> false

  let on_sync t ~node ~stored =
    match t.data with
    | None -> []
    | Some _ when t.acked -> []
    | Some seq ->
      if not (is_up_to_date t ~stored) then
        [ Resend_repl { node; seq } ]
      else begin
        (* Bug 1: count every up-to-date sync, even from a node already
           counted as a replica. The fixed server tracks unique nodes.
           As in Fig. 1, the ack test runs right after an increment. *)
        let incremented =
          if t.bugs.Bug_flags.count_duplicates then begin
            t.counter <- t.counter + 1;
            true
          end
          else if not (Id_set.mem node t.replicas) then begin
            t.replicas <- Id_set.add node t.replicas;
            t.counter <- t.counter + 1;
            true
          end
          else false
        in
        if incremented && t.counter = t.replica_target then begin
          t.acked <- true;
          (* Bug 2: forget to reset the counter after acknowledging. *)
          if not t.bugs.Bug_flags.no_counter_reset then begin
            t.counter <- 0;
            t.replicas <- Id_set.empty
          end;
          match t.client with
          | Some client -> [ Send_ack { client; seq } ]
          | None -> []
        end
        else []
      end

  let replica_count t = t.counter
  let current_seq t = t.data
  let nodes t = t.nodes
end

(* --- The machine wrapper (paper Fig. 5 style) --- *)

module Sm = Psharp.Statemachine
module R = Psharp.Runtime

let machine ~bugs ~replica_target ctx =
  Events.install_printer ();
  let logic = Logic.create ~bugs ~replica_target in
  let apply ctx (eff : Logic.effect_) =
    match eff with
    | Logic.Broadcast_repl seq ->
      List.iter (fun n -> R.send_faulty ctx n (Events.Repl_req seq)) (Logic.nodes logic)
    | Logic.Resend_repl { node; seq } -> R.send_faulty ctx node (Events.Repl_req seq)
    | Logic.Send_ack { client; seq } ->
      R.notify ctx Monitors.safety_name (Events.M_ack seq);
      R.notify ctx Monitors.liveness_name (Events.M_ack seq);
      R.send_faulty ctx client Events.Ack
  in
  let init_state =
    Sm.state "Init"
      ~defer:[ "Client_req"; "Sync" ]
      [
        ( "Bind_nodes",
          fun _ctx _logic e ->
            match e with
            | Events.Bind_nodes nodes ->
              Logic.set_nodes logic nodes;
              Sm.Goto "Active"
            | _ -> Sm.Unhandled );
      ]
  in
  let active_state =
    Sm.state "Active"
      [
        ( "Client_req",
          fun ctx _logic e ->
            match e with
            | Events.Client_req { client; seq } ->
              R.notify ctx Monitors.safety_name (Events.M_req seq);
              R.notify ctx Monitors.liveness_name (Events.M_req seq);
              List.iter (apply ctx) (Logic.on_client_req logic ~client ~seq);
              Sm.Stay
            | _ -> Sm.Unhandled );
        ( "Sync",
          fun ctx _logic e ->
            match e with
            | Events.Sync { node; stored; _ } ->
              List.iter (apply ctx) (Logic.on_sync logic ~node ~stored);
              Sm.Stay
            | _ -> Sm.Unhandled );
      ]
  in
  Sm.run ctx ~machine:"ReplicationServer"
    ~states:[ init_state; active_state ]
    ~init:"Init" logic
