module R = Psharp.Runtime

let machine ~server ~n_requests ctx =
  Events.install_printer ();
  Psharp.Registry.register_machine ~machine:"ReplicationClient"
    ~kind:Psharp.Registry.Machine ~states:1 ~handlers:1;
  for seq = 1 to n_requests do
    R.send_faulty ctx server (Events.Client_req { client = R.self ctx; seq });
    let is_ack e = match e with Events.Ack -> true | _ -> false in
    ignore (R.receive_where ctx is_ack)
  done;
  R.halt ctx
