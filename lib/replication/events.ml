type Psharp.Event.t +=
  | Client_req of { client : Psharp.Id.t; seq : int }
  | Repl_req of int
  | Sync of { node : Psharp.Id.t; node_index : int; stored : int option }
  | Ack
  | Bind_nodes of Psharp.Id.t list
  | M_req of int
  | M_ack of int
  | M_stored of { node_index : int; seq : int }

let printer = function
  | Client_req { seq; _ } -> Some (Printf.sprintf "ClientReq(seq=%d)" seq)
  | Repl_req seq -> Some (Printf.sprintf "ReplReq(seq=%d)" seq)
  | Sync { node_index; stored; _ } ->
    Some
      (Printf.sprintf "Sync(node=%d, stored=%s)" node_index
         (match stored with None -> "-" | Some s -> string_of_int s))
  | M_req seq -> Some (Printf.sprintf "M_req(%d)" seq)
  | M_ack seq -> Some (Printf.sprintf "M_ack(%d)" seq)
  | M_stored { node_index; seq } ->
    Some (Printf.sprintf "M_stored(node=%d, seq=%d)" node_index seq)
  | _ -> None

(* First executions may race across domains: CAS so the printer is
   registered exactly once. *)
let installed = Atomic.make false

let install_printer () =
  if Atomic.compare_and_set installed false true then
    Psharp.Event.register_printer printer
