module Sm = Psharp.Statemachine
module R = Psharp.Runtime

type model = { mutable stored : int option }

let machine ~server ~node_index ctx =
  Events.install_printer ();
  let model = { stored = None } in
  let running =
    Sm.state "Running"
      [
        ( "Repl_req",
          fun ctx model e ->
            match e with
            | Events.Repl_req seq ->
              model.stored <- Some seq;
              R.notify ctx Monitors.safety_name
                (Events.M_stored { node_index; seq });
              Sm.Stay
            | _ -> Sm.Unhandled );
        ( "Timer_tick",
          fun ctx model _e ->
            R.send_faulty ctx server
              (Events.Sync
                 { node = R.self ctx; node_index; stored = model.stored });
            Sm.Stay );
      ]
  in
  Sm.run ctx ~machine:"StorageNode" ~states:[ running ] ~init:"Running" model
