(** The cross-harness scenario library (ISSUE 10).

    Each entry pairs a named {!Psharp.Scenario} — written in the canonical
    text form, parsed once at module init — with the {!Bug_catalog}
    entries it is meant to run against. Scenarios constrain, not replace,
    the search: a hunt under a scenario still explores freely inside the
    clauses, so every entry lists {e several} targets (spanning at least
    two harnesses) and the same text steers each of them.

    Patterns bind per-harness: [Client*] is the fabric and replication
    client, [S*] the replication server and storage nodes as well as the
    chaintable services, [Copy*] both vNext copy messages and fabric state
    copies. On a target where a pattern matches nothing the clause is
    vacuous — the scenario still runs and conforms, it just does not bite
    there (armed fault kinds then inject freely, unconstrained). *)

type entry = {
  name : string;  (** CLI handle, kebab-case *)
  summary : string;  (** one line for [scenario list] *)
  text : string;  (** canonical scenario text ({!Psharp.Scenario.to_string}) *)
  scenario : Psharp.Scenario.t;
  targets : string list;
      (** {!Bug_catalog} entry names this scenario is tuned for; the first
          target is the default for [scenario run] *)
}

(** All entries, stable order. Every [text] is a parse-and-render fixpoint
    and every target names a {!Bug_catalog} entry (pinned by
    [test/test_scenario.ml]). *)
val all : entry list

(** @raise Invalid_argument on an unknown name. *)
val find : string -> entry
