type case_study =
  | Cs_vnext
  | Cs_migrating_table
  | Cs_fabric
  | Cs_example
  | Cs_sample
  | Cs_shardkv

let case_study_to_string = function
  | Cs_vnext -> "1"
  | Cs_migrating_table -> "2"
  | Cs_fabric -> "3"
  | Cs_example -> "ex"
  | Cs_sample -> "s"
  | Cs_shardkv -> "kv"

type lin_support = {
  lin_default : bool;
  lin_harness : history_out:string option -> Psharp.Runtime.ctx -> unit;
  lin_fixed : history_out:string option -> Psharp.Runtime.ctx -> unit;
}

type entry = {
  name : string;
  case_study : case_study;
  in_table2 : bool;
  needs_custom_case : bool;
  kind : [ `Safety | `Liveness ];
  harness : Psharp.Runtime.ctx -> unit;
  custom_harness : (Psharp.Runtime.ctx -> unit) option;
  fixed_harness : Psharp.Runtime.ctx -> unit;
  monitors : unit -> Psharp.Monitor.t list;
  max_steps : int;
  faults : Psharp.Fault.spec;
      (* faults the hunt must inject for the bug to be reachable;
         Fault.none for every schedule-only bug *)
  clock : Psharp.Clock.config option;
      (* virtual-time config the hunt must run with; None for every bug
         reachable without simulated time *)
  lin : lin_support option;
      (* generic-linearizability-oracle variants of the harness, for
         workloads that record client histories; None elsewhere *)
}

let no_monitors () = []

(* Chaintable under the generic checker: same harness, oracle [`Lin] —
   per-operation divergence asserts off, the recorded history judged by
   {!Chaintable.Lin_oracle} at workload end. Draw-identical to the legacy
   harness, so `--check-lin on` hunts the same schedule space. *)
let chaintable_lin ?(bugs = Chaintable.Bug_flags.none) ?workloads () =
  {
    lin_default = false;
    lin_harness =
      (fun ~history_out ->
        Chaintable.Harness.test ~bugs ?workloads ~oracle:`Lin ?history_out ());
    lin_fixed =
      (fun ~history_out ->
        Chaintable.Harness.test ?workloads ~oracle:`Lin ?history_out ());
  }

let vnext_entry =
  {
    name = "ExtentNodeLivenessViolation";
    case_study = Cs_vnext;
    in_table2 = true;
    needs_custom_case = false;
    kind = `Liveness;
    harness =
      Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.liveness_bug
        ~scenario:Vnext.Testing_driver.Fail_and_repair ();
    custom_harness = None;
    fixed_harness =
      Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
        ~scenario:Vnext.Testing_driver.Fail_and_repair ();
    monitors = (fun () -> Vnext.Testing_driver.monitors ());
    max_steps = 3_000;
    faults = Psharp.Fault.none;
    clock = None;
    lin = None;
  }

let migrating_table_entry name =
  {
    name;
    case_study = Cs_migrating_table;
    in_table2 = true;
    needs_custom_case = Chaintable.Bug_flags.needs_custom_case name;
    kind = `Safety;
    harness = Chaintable.Harness.test_for_bug name;
    custom_harness =
      (if Chaintable.Bug_flags.needs_custom_case name then
         Some (Chaintable.Harness.test_for_bug ~custom:true name)
       else None);
    fixed_harness = Chaintable.Harness.test ();
    monitors = no_monitors;
    max_steps = 4_000;
    faults = Psharp.Fault.none;
    clock = None;
    lin = Some (chaintable_lin ~bugs:(Chaintable.Bug_flags.with_bug name) ());
  }

let fabric_promotion_entry =
  {
    name = "FabricPromoteDuringCopy";
    case_study = Cs_fabric;
    in_table2 = false;
    needs_custom_case = false;
    kind = `Safety;
    harness = Fabric.Harness.test ~bugs:Fabric.Bug_flags.promotion_bug ();
    custom_harness = None;
    fixed_harness = Fabric.Harness.test ();
    monitors = (fun () -> Fabric.Harness.monitors ());
    max_steps = 3_000;
    faults = Psharp.Fault.none;
    clock = None;
    lin = None;
  }

let cscale_entry =
  {
    name = "CScaleNullReference";
    case_study = Cs_fabric;
    in_table2 = false;
    needs_custom_case = false;
    kind = `Safety;
    harness = Fabric.Chained.test ~bugs:Fabric.Bug_flags.cscale_bug ();
    custom_harness = None;
    fixed_harness = Fabric.Chained.test ();
    monitors = no_monitors;
    max_steps = 2_000;
    faults = Psharp.Fault.none;
    clock = None;
    lin = None;
  }

let example_entry name bugs kind =
  {
    name;
    case_study = Cs_example;
    in_table2 = false;
    needs_custom_case = false;
    kind;
    harness = Replication.Harness.test ~bugs ();
    custom_harness = None;
    fixed_harness = Replication.Harness.test ~bugs:Replication.Bug_flags.none ();
    monitors = (fun () -> Replication.Harness.monitors ());
    max_steps = 2_000;
    faults = Psharp.Fault.none;
    clock = None;
    lin = None;
  }

(* --- fault-only bugs (PR 4): reachable only when the engine injects
   faults, so each entry carries the spec the hunt must run with. --- *)

let vnext_crash_entry =
  {
    name = "ExtentNodeCrashLosesBinding";
    case_study = Cs_vnext;
    in_table2 = false;
    needs_custom_case = false;
    kind = `Liveness;
    harness =
      Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.crash_bug
        ~scenario:Vnext.Testing_driver.Fail_and_repair ();
    custom_harness = None;
    fixed_harness =
      Vnext.Testing_driver.test ~bugs:Vnext.Bug_flags.none
        ~scenario:Vnext.Testing_driver.Fail_and_repair ();
    monitors = (fun () -> Vnext.Testing_driver.monitors ());
    max_steps = 3_000;
    faults = Psharp.Fault.make [ Psharp.Fault.Crash ];
    clock = None;
    lin = None;
  }

let chaintable_dup_entry =
  {
    name = "ChaintableDuplicateBackendRequest";
    case_study = Cs_migrating_table;
    in_table2 = false;
    needs_custom_case = false;
    kind = `Safety;
    harness = Chaintable.Harness.test ~bugs:Chaintable.Bug_flags.dup_bug ();
    custom_harness = None;
    fixed_harness = Chaintable.Harness.test ();
    monitors = no_monitors;
    max_steps = 4_000;
    (* duplicate only: the backend RPC is a blocking round trip, so a
       dropped request would read as a deadlock rather than this bug *)
    faults = Psharp.Fault.make [ Psharp.Fault.Duplicate ];
    clock = None;
    lin = Some (chaintable_lin ~bugs:Chaintable.Bug_flags.dup_bug ());
  }

(* --- timeout/retry bug (virtual time): reachable only when the clock is
   on (the RPC timeout exists) and delay faults give hops latency. --- *)

let chaintable_retry_entry =
  {
    name = "ChaintableRetryFreshSeq";
    case_study = Cs_migrating_table;
    in_table2 = false;
    needs_custom_case = false;
    kind = `Safety;
    harness =
      Chaintable.Harness.test ~bugs:Chaintable.Bug_flags.retry_bug
        ~workloads:Chaintable.Workload.retry_case ();
    custom_harness = None;
    (* stream-free workloads (see Workload.retry_case): a latency-delayed
       stream read trips a separate pre-existing race that would drown
       this entry's defect *)
    fixed_harness =
      Chaintable.Harness.test ~workloads:Chaintable.Workload.retry_case ();
    monitors = no_monitors;
    max_steps = 4_000;
    (* delay only: a response held in flight past the RPC timeout is what
       makes the client retransmit; rpc_timeout (2) < max_delay (3) keeps
       the race reachable *)
    faults = Psharp.Fault.make [ Psharp.Fault.Delay ];
    clock = Some Psharp.Clock.default_config;
    lin =
      Some
        (chaintable_lin ~bugs:Chaintable.Bug_flags.retry_bug
           ~workloads:Chaintable.Workload.retry_case ());
  }

let fabric_crash_entry =
  {
    name = "FabricCrashSilentRestart";
    case_study = Cs_fabric;
    in_table2 = false;
    needs_custom_case = false;
    kind = `Liveness;
    harness = Fabric.Harness.test ~bugs:Fabric.Bug_flags.restart_bug ();
    custom_harness = None;
    fixed_harness = Fabric.Harness.test ();
    monitors = (fun () -> Fabric.Harness.monitors ());
    max_steps = 3_000;
    faults = Psharp.Fault.make [ Psharp.Fault.Crash ];
    clock = None;
    lin = None;
  }

(* --- shardkv rebalance bugs (post-paper workload): every entry is
   checked by the generic linearizability oracle over the recorded client
   history, runs on the virtual clock (client retransmits and handoff
   retries need timeouts), and hunts under crash+delay faults. --- *)

let shardkv_entry name =
  {
    name;
    case_study = Cs_shardkv;
    in_table2 = false;
    needs_custom_case = false;
    kind = `Safety;
    harness = Shardkv.Harness.test_for_bug name;
    custom_harness = None;
    fixed_harness = Shardkv.Harness.test ();
    monitors = no_monitors;
    max_steps = 5_000;
    faults =
      Psharp.Fault.make ~budget:2 [ Psharp.Fault.Delay; Psharp.Fault.Crash ];
    clock = Some Psharp.Clock.default_config;
    (* shardkv has no other oracle: the default harness IS the generic
       checker, so `--check-lin off` is rejected for these entries *)
    lin =
      Some
        {
          lin_default = true;
          lin_harness =
            (fun ~history_out ->
              Shardkv.Harness.test ~bugs:(Shardkv.Bug_flags.with_bug name)
                ?history_out ());
          lin_fixed =
            (fun ~history_out -> Shardkv.Harness.test ?history_out ());
        };
  }

let sample_entry name ~harness ~fixed_harness ~monitors ~max_steps =
  {
    name;
    case_study = Cs_sample;
    in_table2 = false;
    needs_custom_case = false;
    kind = `Safety;
    harness;
    custom_harness = None;
    fixed_harness;
    monitors;
    max_steps;
    faults = Psharp.Fault.none;
    clock = None;
    lin = None;
  }

let all =
  vnext_entry
  :: List.map migrating_table_entry Chaintable.Bug_flags.names
  @ [
      fabric_promotion_entry;
      cscale_entry;
      vnext_crash_entry;
      chaintable_dup_entry;
      chaintable_retry_entry;
      fabric_crash_entry;
    ]
  @ List.map shardkv_entry Shardkv.Bug_flags.names
  @ [
      example_entry "ExampleDuplicateReplicaAck" Replication.Bug_flags.bug1
        `Safety;
      example_entry "ExampleCounterNotReset" Replication.Bug_flags.bug2
        `Liveness;
      sample_entry "PaxosForgetPromise"
        ~harness:(Paxos.test ~bugs:Paxos.bug_forget_promise ())
        ~fixed_harness:(Paxos.test ())
        ~monitors:(fun () -> Paxos.monitors ())
        ~max_steps:2_000;
      sample_entry "PaxosChooseOwnValue"
        ~harness:(Paxos.test ~bugs:Paxos.bug_choose_own_value ())
        ~fixed_harness:(Paxos.test ())
        ~monitors:(fun () -> Paxos.monitors ())
        ~max_steps:2_000;
      sample_entry "RaftDoubleVote"
        ~harness:(Raft.test ~bugs:Raft.bug_double_vote ())
        ~fixed_harness:(Raft.test ())
        ~monitors:(fun () -> Raft.monitors ())
        ~max_steps:1_500;
      sample_entry "RaftStaleLeaderElection"
        ~harness:(Raft.test ~bugs:Raft.bug_stale_leader_election ())
        ~fixed_harness:(Raft.test ())
        ~monitors:(fun () -> Raft.monitors ())
        ~max_steps:1_500;
    ]

let table2 = List.filter (fun e -> e.in_table2) all

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Bug_catalog.find: unknown bug %s" name)
