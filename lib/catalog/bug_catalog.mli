(** The re-introducible bugs of Table 2 (paper §6.2), plus the extra bugs
    this reproduction models (the Fig. 1 example bugs, the Fabric promotion
    bug and the CScale exception, which the paper discusses outside
    Table 2).

    "After all the discovered bugs were fixed, we added flags to allow them
    to be individually re-introduced, for purposes of evaluation." *)

type case_study =
  | Cs_vnext  (** 1 — Azure Storage vNext *)
  | Cs_migrating_table  (** 2 — MigratingTable *)
  | Cs_fabric  (** Fabric model / CScale (not in the paper's Table 2) *)
  | Cs_example  (** the §2.2 running example *)
  | Cs_sample  (** P# sample protocols the paper points to: Paxos, Raft *)
  | Cs_shardkv
      (** sharded rebalancing KV — post-paper workload checked by the
          generic linearizability oracle *)

val case_study_to_string : case_study -> string

(** Generic-linearizability-oracle variants of a harness (ISSUE 7):
    available for workloads that record client {!Psharp.History}s and
    carry a sequential model for the {!Psharp.Linearizability} checker.
    [history_out], when [Some path], makes the harness save the recorded
    history to [path] once the workload completes (used by
    [replay --history-out]). *)
type lin_support = {
  lin_default : bool;
      (** the entry's default [harness] already judges by the generic
          checker (shardkv) — there is no legacy oracle to fall back to *)
  lin_harness : history_out:string option -> Psharp.Runtime.ctx -> unit;
  lin_fixed : history_out:string option -> Psharp.Runtime.ctx -> unit;
}

type entry = {
  name : string;  (** Table 2 "Bug Identifier" *)
  case_study : case_study;
  in_table2 : bool;  (** appears as a row of the paper's Table 2 *)
  needs_custom_case : bool;  (** the paper's ⊙ marker *)
  kind : [ `Safety | `Liveness ];
  harness : Psharp.Runtime.ctx -> unit;  (** default (random-input) harness *)
  custom_harness : (Psharp.Runtime.ctx -> unit) option;
      (** pinned-input custom test case, when one exists *)
  fixed_harness : Psharp.Runtime.ctx -> unit;
      (** same harness with the bug fixed (for no-false-positive runs) *)
  monitors : unit -> Psharp.Monitor.t list;
  max_steps : int;  (** liveness bound suited to this harness *)
  faults : Psharp.Fault.spec;
      (** faults the hunt must inject for the bug to be reachable
          ({!Psharp.Fault.none} for every schedule-only bug). The runner
          uses this spec unless the user overrides it with [--faults]. *)
  clock : Psharp.Clock.config option;
      (** virtual-time config the hunt must run with ([None] for every bug
          reachable without simulated time). The runner uses it unless the
          user overrides it with [--clock]. *)
  lin : lin_support option;
      (** generic-checker harness variants ([--check-lin]); [None] for
          harnesses that do not record client histories *)
}

(** All catalog entries, Table 2 rows first, in the paper's order. *)
val all : entry list

(** Only the 12 rows of the paper's Table 2. *)
val table2 : entry list

val find : string -> entry
