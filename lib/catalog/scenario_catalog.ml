type entry = {
  name : string;
  summary : string;
  text : string;
  scenario : Psharp.Scenario.t;
  targets : string list;
}

(* Parsed once at init; a text that fails the strict parser is a build-time
   defect of this module, not a user error. *)
let entry ~name ~summary ~targets text =
  match Psharp.Scenario.of_string text with
  | Ok scenario -> { name; summary; text; scenario; targets }
  | Error e ->
    invalid_arg
      (Printf.sprintf "Scenario_catalog.%s: bad scenario text: %s" name e)

let all =
  [
    (* --- crash placement ------------------------------------------------ *)
    entry ~name:"crash-early"
      ~summary:"crash one machine in the first few scheduling steps"
      ~targets:
        [
          "ExtentNodeCrashLosesBinding";
          "FabricCrashSilentRestart";
          "ShardkvCrashLosesShard";
        ]
      "crash * after step(10)\n";
    entry ~name:"crash-late"
      ~summary:"crash one machine only after the system has warmed up"
      ~targets:
        [
          "FabricCrashSilentRestart";
          "ShardkvCrashLosesShard";
          "ExtentNodeCrashLosesBinding";
        ]
      "crash * after step(150)\n";
    entry ~name:"rolling-restart"
      ~summary:"two staggered crashes, a rolling-restart shape"
      ~targets:
        [
          "FabricCrashSilentRestart";
          "ShardkvCrashLosesShard";
          "ExtentNodeCrashLosesBinding";
        ]
      "crash * after step(30)\ncrash * after step(100)\n";
    entry ~name:"crash-after-quiesce"
      ~summary:"crash only once a client machine has gone quiescent"
      ~targets:[ "FabricCrashSilentRestart"; "ShardkvCrashLosesShard" ]
      "crash * after quiet(C*)\n";
    entry ~name:"crash-mid-copy"
      ~summary:"crash while a state/extent copy is in flight"
      ~targets:[ "ExtentNodeCrashLosesBinding"; "FabricCrashSilentRestart" ]
      "crash * after delivered(Copy*)\n";
    entry ~name:"crash-mid-handoff"
      ~summary:"crash once a shard handoff has been requested"
      ~targets:
        [
          "ShardkvCrashLosesShard";
          "ShardkvMigrationDoubleApply";
          "FabricCrashSilentRestart";
        ]
      "crash * after delivered(Handoff_request)\n";
    (* --- duplication ---------------------------------------------------- *)
    entry ~name:"dup-storm"
      ~summary:"duplicate every interposed message for the first 300 steps"
      ~targets:
        [
          "ChaintableDuplicateBackendRequest";
          "ExampleDuplicateReplicaAck";
          "PaxosForgetPromise";
          "RaftDoubleVote";
        ]
      "dup *->* from start until step(300)\n";
    entry ~name:"dup-from-server"
      ~summary:"duplicate everything servers and services send"
      ~targets:
        [ "ExampleDuplicateReplicaAck"; "ChaintableDuplicateBackendRequest" ]
      "dup S*->* from start until step(400)\n";
    entry ~name:"dup-backend"
      ~summary:"duplicate every message into the Tables backend"
      ~targets:
        [ "ChaintableDuplicateBackendRequest"; "ExampleDuplicateReplicaAck" ]
      "dup *->Tables from start until step(600)\n";
    (* --- latency -------------------------------------------------------- *)
    entry ~name:"slow-network"
      ~summary:"every interposed message takes latency 2"
      ~targets:
        [
          "ChaintableRetryFreshSeq";
          "ShardkvMigrationDoubleApply";
          "ShardkvStaleRingServe";
        ]
      "delay *->* lat=2 from start until step(400)\n";
    entry ~name:"slow-backend"
      ~summary:"backend responses held past the RPC timeout"
      ~targets:[ "ChaintableRetryFreshSeq"; "ShardkvStaleRingServe" ]
      "delay Tables->* lat=3 from start until step(600)\n";
    (* --- loss and partitions -------------------------------------------- *)
    entry ~name:"lossy-window"
      ~summary:"drop every interposed message between steps 40 and 90"
      ~targets:
        [ "PaxosForgetPromise"; "RaftDoubleVote"; "RaftStaleLeaderElection" ]
      "drop *->* from step(40) until step(90)\n";
    entry ~name:"isolate-joiner"
      ~summary:"partition the joining node N2 from everyone mid-run"
      ~targets:
        [
          "ShardkvStaleRingServe";
          "ShardkvCrashLosesShard";
          "PaxosChooseOwnValue";
        ]
      "partition *|N2 from step(60) until step(260)\n";
    (* --- scheduling shape ----------------------------------------------- *)
    entry ~name:"hold-clients"
      ~summary:"keep client machines paused while the cluster boots"
      ~targets:[ "FabricPromoteDuringCopy"; "ExampleDuplicateReplicaAck" ]
      "pause Client* from start until step(60)\n";
    entry ~name:"focus-servers"
      ~summary:"prefer server-side machines through the mid-game"
      ~targets:[ "ExampleCounterNotReset"; "InsertBehindMigrator" ]
      "focus S* from step(20) until step(200)\n";
    entry ~name:"ordered-bind"
      ~summary:"no repair request before the directory is bound"
      ~targets:
        [
          "ExtentNodeLivenessViolation";
          "ExtentNodeCrashLosesBinding";
          "FabricCrashSilentRestart";
        ]
      "order Bind_directory before Repair_request\n";
    entry ~name:"starve-network"
      ~summary:"hold the network relay mid-run so in-flight reports go stale"
      ~targets:[ "ExtentNodeLivenessViolation"; "FabricCrashSilentRestart" ]
      "pause Network* from step(40) until step(600)\n";
    entry ~name:"ordered-join"
      ~summary:"no migration release before a ring update has landed"
      ~targets:[ "ShardkvMigrationDoubleApply"; "ExampleDuplicateReplicaAck" ]
      "order Ring_update before Release\n";
  ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Scenario_catalog.find: unknown scenario %s" name)
