let make ~seed ~iteration : Strategy.t =
  (* Domain-safety audit: the only state is this Prng, created fresh per
     execution from (seed, iteration) and owned by the strategy value —
     never shared across executions or worker domains. Seeding by the
     global iteration index keeps the explored schedule set identical for
     every Worker_pool worker count. *)
  let rng =
    Prng.create ~seed:(Int64.add seed (Int64.of_int (iteration * 2 + 1)))
  in
  {
    name = "random";
    next_schedule = (fun ~enabled ~n ~step:_ -> enabled.(Prng.int rng n));
    next_bool = (fun ~step:_ -> Prng.bool rng);
    next_int = (fun ~bound ~step:_ -> Prng.int rng bound);
  }

let factory ~seed =
  Strategy.stateless ~name:"random" (fun ~iteration -> make ~seed ~iteration)
