type kind = Machine | Monitor

type machine_stats = {
  machine : string;
  kind : kind;
  states : int;
  handlers : int;
}

let registered : (string, machine_stats) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []

module Edge_set = Set.Make (struct
  type t = string * string

  let compare = compare
end)

let edges : (string, Edge_set.t) Hashtbl.t = Hashtbl.create 32

(* The registry is global, and executions may run concurrently across
   domains (Worker_pool); every access goes through this lock. *)
let mu = Mutex.create ()

let register_machine ~machine ~kind ~states ~handlers =
  Mutex.protect mu (fun () ->
      if not (Hashtbl.mem registered machine) then begin
        Hashtbl.replace registered machine { machine; kind; states; handlers };
        order := machine :: !order
      end)

let record_transition ~machine ~from_ ~to_ =
  Mutex.protect mu (fun () ->
      let current =
        Option.value (Hashtbl.find_opt edges machine) ~default:Edge_set.empty
      in
      Hashtbl.replace edges machine (Edge_set.add (from_, to_) current))

let machines () =
  Mutex.protect mu (fun () ->
      List.rev_map (fun name -> Hashtbl.find registered name) !order)

let transitions ~machine =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt edges machine with
      | Some s -> Edge_set.cardinal s
      | None -> 0)

let aggregate ~matching =
  List.fold_left
    (fun (m, s, t, h) st ->
      if matching st.machine then
        (m + 1, s + st.states, t + transitions ~machine:st.machine,
         h + st.handlers)
      else (m, s, t, h))
    (0, 0, 0, 0) (machines ())

let reset () =
  Mutex.protect mu (fun () ->
      Hashtbl.reset registered;
      Hashtbl.reset edges;
      order := [])
