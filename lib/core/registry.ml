type kind = Machine | Monitor

type machine_stats = {
  machine : string;
  kind : kind;
  states : int;
  handlers : int;
}

let registered : (string, machine_stats) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []

module Edge_set = Set.Make (struct
  type t = string * string

  let compare = compare
end)

let edges : (string, Edge_set.t) Hashtbl.t = Hashtbl.create 32

(* The registry is global, and executions may run concurrently across
   domains (Worker_pool); every write to the shared tables goes through
   this lock. *)
let mu = Mutex.create ()

(* Per-domain seen caches keep [record_transition] and [register_machine]
   off the global mutex on the hot path: both are called on every machine
   start / state transition of every execution, yet after the first few
   executions they almost never contribute a new edge or machine. A
   domain-local hashtable filters the repeats without any locking; only
   genuinely unseen keys take the mutex. [reset] bumps the generation to
   invalidate every domain's cache. *)
let generation = Atomic.make 0

type local_cache = {
  mutable gen : int;
  seen_machines : (string, unit) Hashtbl.t;
  seen_edges : (string * string * string, unit) Hashtbl.t;
}

let cache_key =
  Domain.DLS.new_key (fun () ->
      {
        gen = Atomic.get generation;
        seen_machines = Hashtbl.create 32;
        seen_edges = Hashtbl.create 256;
      })

let local_cache () =
  let c = Domain.DLS.get cache_key in
  let g = Atomic.get generation in
  if c.gen <> g then begin
    Hashtbl.reset c.seen_machines;
    Hashtbl.reset c.seen_edges;
    c.gen <- g
  end;
  c

let register_machine ~machine ~kind ~states ~handlers =
  let c = local_cache () in
  if not (Hashtbl.mem c.seen_machines machine) then begin
    Hashtbl.replace c.seen_machines machine ();
    Mutex.protect mu (fun () ->
        if not (Hashtbl.mem registered machine) then begin
          Hashtbl.replace registered machine { machine; kind; states; handlers };
          order := machine :: !order
        end)
  end

let record_transition ~machine ~from_ ~to_ =
  let c = local_cache () in
  let key = (machine, from_, to_) in
  if not (Hashtbl.mem c.seen_edges key) then begin
    Hashtbl.replace c.seen_edges key ();
    Mutex.protect mu (fun () ->
        let current =
          Option.value (Hashtbl.find_opt edges machine) ~default:Edge_set.empty
        in
        Hashtbl.replace edges machine (Edge_set.add (from_, to_) current))
  end

let machines () =
  Mutex.protect mu (fun () ->
      List.rev_map (fun name -> Hashtbl.find registered name) !order)

let transitions ~machine =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt edges machine with
      | Some s -> Edge_set.cardinal s
      | None -> 0)

let aggregate ~matching =
  List.fold_left
    (fun (m, s, t, h) st ->
      if matching st.machine then
        (m + 1, s + st.states, t + transitions ~machine:st.machine,
         h + st.handlers)
      else (m, s, t, h))
    (0, 0, 0, 0) (machines ())

let reset () =
  Mutex.protect mu (fun () ->
      Hashtbl.reset registered;
      Hashtbl.reset edges;
      order := []);
  Atomic.incr generation
