(* Each frame records the alternatives available at one decision point and
   which alternative the current execution took. The stack is shared across
   executions; before execution [i+1] we advance the deepest frame that still
   has untried alternatives and truncate everything below it. *)

type frame = { alternatives : Trace.choice array; mutable taken : int }

type state = {
  mutable stack : frame list;  (* deepest first *)
  mutable depth : int;  (* decisions made in the current execution *)
  max_depth : int;
  int_cap : int;
}

let frame_at st idx =
  (* Stack is deepest-first; decision [idx] counts from the root. *)
  let len = List.length st.stack in
  List.nth st.stack (len - 1 - idx)

let decide st alternatives =
  let idx = st.depth in
  st.depth <- idx + 1;
  if idx > st.max_depth then
    (* Beyond the bound: always take the first alternative, do not record. *)
    alternatives.(0)
  else begin
    let len = List.length st.stack in
    if idx < len then begin
      let f = frame_at st idx in
      f.alternatives.(f.taken)
    end
    else begin
      let f = { alternatives; taken = 0 } in
      st.stack <- f :: st.stack;
      f.alternatives.(0)
    end
  end

(* Drop frames below the last one with untried alternatives, advance it.
   Returns false when the whole space is exhausted. *)
let advance st =
  let rec pop = function
    | [] -> None
    | f :: rest ->
      if f.taken + 1 < Array.length f.alternatives then begin
        f.taken <- f.taken + 1;
        Some (f :: rest)
      end
      else pop rest
  in
  match pop st.stack with
  | None -> false
  | Some stack ->
    st.stack <- stack;
    true

let make st : Strategy.t =
  let next_schedule ~enabled ~n ~step:_ =
    (* Copy the enabled prefix: frames outlive the runtime's scratch array. *)
    let alts = Array.init n (fun i -> Trace.Schedule enabled.(i)) in
    match decide st alts with
    | Trace.Schedule m -> m
    | _ -> assert false
  in
  let next_bool ~step:_ =
    match decide st [| Trace.Bool false; Trace.Bool true |] with
    | Trace.Bool b -> b
    | _ -> assert false
  in
  let next_int ~bound ~step:_ =
    let n = min bound st.int_cap in
    match decide st (Array.init n (fun i -> Trace.Int i)) with
    | Trace.Int i -> i
    | _ -> assert false
  in
  { name = "dfs"; next_schedule; next_bool; next_int }

let factory ?(max_depth = 1_000) ?(int_cap = 4) () : Strategy.factory =
  let st = { stack = []; depth = 0; max_depth; int_cap } in
  {
    factory_name = "dfs";
    (* The backtracking stack is shared across iterations. *)
    parallel_safe = false;
    fresh =
      (fun ~iteration ->
        if iteration = 0 then begin
          st.depth <- 0;
          Some (make st)
        end
        else if advance st then begin
          st.depth <- 0;
          Some (make st)
        end
        else None);
    feedback = None;
  }
