(** Nondeterministic crash driver.

    A helper machine (in the spirit of {!Timer}) that models node crashes
    as controlled nondeterminism: it draws a crash instant uniformly over
    its lifetime, and when the instant arrives crashes one of the
    execution's currently crashable machines (those created with
    [Runtime.create ~persistent]), picked by another draw. Every decision
    is recorded in the trace, so crash schedules are replayed, shrunk and
    fuzzed exactly like message interleavings (SAMC-style crash/reboot
    under the paper's §2.3 controlled-nondeterminism methodology). *)

type Event.t += Fault_tick  (** internal self-message driving the loop *)

(** [install ctx ()] spawns the driver — {e only} when the execution's
    fault spec arms [crash] with a positive budget; otherwise it is a
    draw-free no-op, so harnesses may call it unconditionally without
    perturbing fault-free schedules. The driver crashes at most
    [max_crashes] machines (default 1, kept low to avoid drowning
    executions in failures) within [max_ticks] turns (default 40), and
    stops early when the shared fault budget runs out.

    Under a crash-steering scenario ({!Runtime.scenario_crash_steering})
    the driver switches modes: each tick marks the current victims and
    draws a coin the scenario wrapper forces, so crashes land exactly
    where the scenario's [crash] clauses ask; [max_crashes] is raised to
    the scenario's crash slots and [max_ticks] to at least 160 so late
    triggers stay reachable. Without a scenario the draw sequence is
    byte-identical to before.
    @raise Invalid_argument on non-positive [max_crashes]/[max_ticks]. *)
val install : ?max_crashes:int -> ?max_ticks:int -> Runtime.ctx -> unit
