type t = ..

type t +=
  | Halt_event
  | Unit_event

(* Extension-constructor names are fully qualified ("Psharp.Timer.Timer_tick");
   handler tables use the bare constructor name, so strip the module path. *)
let name (e : t) =
  let full =
    Obj.Extension_constructor.name (Obj.Extension_constructor.of_val e)
  in
  match String.rindex_opt full '.' with
  | None -> full
  | Some i -> String.sub full (i + 1) (String.length full - i - 1)

(* Registration happens lazily from machine bodies, which may execute
   concurrently across domains; publish the list with a CAS loop so no
   registration is lost. Reads are plain: a momentarily stale list only
   affects how an event renders. *)
let printers : (t -> string option) list Atomic.t = Atomic.make []

let register_printer f =
  let rec loop () =
    let current = Atomic.get printers in
    if not (Atomic.compare_and_set printers current (f :: current)) then
      loop ()
  in
  loop ()

let to_string e =
  let rec try_printers = function
    | [] -> name e
    | f :: rest -> (match f e with Some s -> s | None -> try_printers rest)
  in
  try_printers (Atomic.get printers)
