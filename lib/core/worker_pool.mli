(** Domain-parallel iteration driver.

    Fans a budget of independent iterations (systematic-testing executions)
    across OCaml 5 domains. Work is handed out in {e batches}: a shared
    atomic cursor claims [N] consecutive global iterations at a time
    (see {!claim}), so the only shared-memory traffic on the per-iteration
    hot path is one read of the early-stop bound — progress counters and
    results accumulate in worker-local records and are folded after the
    join. The {e set} of iterations explored (and hence, for seed-derived
    strategies, the set of schedules explored) is identical for every
    worker count and claim granularity, including the sequential case;
    only the wall-clock order of exploration can vary.

    Each worker builds its own iteration state (strategy factory, PRNGs)
    via [init], inside its own domain. Requested worker counts beyond the
    available cores are clamped to the core count: the iterations are
    independent and minor collections are stop-the-world across domains,
    so oversubscription only multiplies GC barriers without exploring
    anything extra. Setting the environment variable
    [PSHARP_OVERSUBSCRIBE=1] disables the clamp (used by tests to exercise
    the multi-domain machinery on small machines). *)

(** How workers claim global iterations. Both disciplines cover exactly
    the iterations [0 .. max_iterations - 1]. *)
type claim =
  | Batch of int
      (** claim this many consecutive iterations per atomic cursor bump;
          the wall-clock deadline is polled once per claimed batch *)
  | Stride
      (** legacy static assignment — worker [w] of [n] runs [w], [w + n],
          [w + 2n], ... Kept for equivalence testing. *)

(** [Batch 16] — the default used when [?claim] is omitted. *)
val default_claim : claim

type stats = {
  executions : int;  (** iterations completed across all workers *)
  total_steps : int;  (** sum of per-iteration step counts *)
  elapsed : float;  (** wall-clock seconds for the whole fan-out *)
  timed_out : bool;
      (** some worker stopped because [max_seconds] ran out (the iteration
          budget was not exhausted) *)
}

(** [resolve n] is the effective worker count: [n] itself when positive,
    the number of available cores ([Domain.recommended_domain_count])
    when [n = 0].
    @raise Invalid_argument when [n] is negative. *)
val resolve : int -> int

(** [hunt ~workers ~max_iterations ?max_seconds ~init ~body ()] drives
    [body] over iterations [0 .. max_iterations - 1] and stops early once
    a [Some] result is found: the first report min-updates an atomic
    iteration bound, and workers keep completing iterations {e below} the
    best known result (possibly lowering the bound further) while skipping
    those above it. Batch claims are monotone, so every iteration below a
    reported one is guaranteed to have been claimed and run. [body]
    returns the optional result of one iteration plus the number of
    scheduler steps it took. Returns the winning result tagged with its
    global iteration index — always the {e lowest} reporting iteration, so
    for deterministic iterations the winner is identical at every worker
    count and claim granularity (only the number of higher iterations
    additionally explored varies with timing). A worker exception is
    re-raised in the calling domain after all workers have been joined.

    [on_batch state] is called on the worker's own state after each
    claimed batch completes and once more before the worker exits — the
    engine merges per-worker coverage shards there, keeping the
    per-iteration path free of shared mutexes. *)
val hunt :
  ?claim:claim ->
  workers:int ->
  max_iterations:int ->
  ?max_seconds:float ->
  init:(worker:int -> 'w) ->
  ?on_batch:('w -> unit) ->
  body:('w -> iteration:int -> 'r option * int) ->
  unit ->
  ('r * int) option * stats

(** [sweep] is [hunt] without the early stop: every iteration of the
    budget runs (subject to [max_seconds]) and all [Some] results are
    collected, sorted by iteration index. *)
val sweep :
  ?claim:claim ->
  workers:int ->
  max_iterations:int ->
  ?max_seconds:float ->
  init:(worker:int -> 'w) ->
  ?on_batch:('w -> unit) ->
  body:('w -> iteration:int -> 'r option * int) ->
  unit ->
  ('r * int) list * stats
