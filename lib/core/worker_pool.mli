(** Domain-parallel iteration driver.

    Fans a budget of independent iterations (systematic-testing executions)
    across OCaml 5 domains. Iterations are assigned statically: worker [w]
    of [n] runs global iterations [w], [w + n], [w + 2n], ... — so the
    {e set} of iterations explored (and hence, for seed-derived strategies,
    the set of schedules explored) is identical for every worker count,
    including the sequential [n = 1] case. Only the wall-clock order of
    exploration, and therefore which of several buggy iterations is hit
    first, can vary with [n].

    Each worker builds its own iteration state (strategy factory, PRNGs)
    via [init], inside its own domain; nothing is shared between workers
    except the atomic progress counters and the result accumulator. *)

type stats = {
  executions : int;  (** iterations completed across all workers *)
  total_steps : int;  (** sum of per-iteration step counts *)
  elapsed : float;  (** wall-clock seconds for the whole fan-out *)
  timed_out : bool;
      (** some worker stopped because [max_seconds] ran out (the iteration
          budget was not exhausted) *)
}

(** [resolve n] is the effective worker count: [n] itself when positive,
    the number of available cores ([Domain.recommended_domain_count])
    when [n = 0].
    @raise Invalid_argument when [n] is negative. *)
val resolve : int -> int

(** [hunt ~workers ~max_iterations ?max_seconds ~init ~body ()] drives
    [body] over iterations [0 .. max_iterations - 1] and stops early once
    a [Some] result is found: the first report min-updates an atomic
    iteration bound, and workers keep completing iterations {e below} the
    best known result (possibly lowering the bound further) while skipping
    those above it. [body] returns the optional result of one iteration
    plus the number of scheduler steps it took. Returns the winning result
    tagged with its global iteration index — always the {e lowest}
    reporting iteration, so for deterministic iterations the winner is
    identical at every worker count (only the number of higher iterations
    additionally explored varies with timing). A worker exception is
    re-raised in the calling domain after all workers have been joined. *)
val hunt :
  workers:int ->
  max_iterations:int ->
  ?max_seconds:float ->
  init:(worker:int -> 'w) ->
  body:('w -> iteration:int -> 'r option * int) ->
  unit ->
  ('r * int) option * stats

(** [sweep] is [hunt] without the early stop: every iteration of the
    budget runs (subject to [max_seconds]) and all [Some] results are
    collected, sorted by iteration index. *)
val sweep :
  workers:int ->
  max_iterations:int ->
  ?max_seconds:float ->
  init:(worker:int -> 'w) ->
  body:('w -> iteration:int -> 'r option * int) ->
  unit ->
  ('r * int) list * stats
