(* Coverage keys are interned: the first time a key is seen it is assigned
   an integer slot, and from then on recording is one hashtable lookup plus
   an int-array bump — no Printf/Buffer allocation on the hot path. Keys
   are structured tuples; their human-readable renderings (the public,
   report-facing key strings) are produced only at read time. *)

type 'k family = {
  slots : ('k, int) Hashtbl.t;  (* key -> slot *)
  mutable keys : 'k array;      (* slot -> key, first [n] valid *)
  mutable counts : int array;   (* slot -> visit count *)
  mutable n : int;
}

let family_create size =
  { slots = Hashtbl.create size; keys = [||]; counts = [||]; n = 0 }

(* Add [add] visits of [key]; returns [true] when the key is new. *)
let family_bump_n fam key add =
  match Hashtbl.find_opt fam.slots key with
  | Some id ->
    fam.counts.(id) <- fam.counts.(id) + add;
    false
  | None ->
    if fam.n = Array.length fam.keys then begin
      let cap = max 16 (2 * fam.n) in
      let keys = Array.make cap key in
      Array.blit fam.keys 0 keys 0 fam.n;
      fam.keys <- keys;
      let counts = Array.make cap 0 in
      Array.blit fam.counts 0 counts 0 fam.n;
      fam.counts <- counts
    end;
    Hashtbl.replace fam.slots key fam.n;
    fam.keys.(fam.n) <- key;
    fam.counts.(fam.n) <- add;
    fam.n <- fam.n + 1;
    true

let family_bump fam key = ignore (family_bump_n fam key 1)

type branch_key =
  | Branch_bool of string * bool          (* machine, outcome *)
  | Branch_int of string * int * int      (* machine, value, bound *)

type t = {
  states : (string * string) family;                    (* machine, state *)
  events : string family;
  triples : (string * string * string * string) family;
      (* sender, event, receiver, receiver-state *)
  branches : branch_key family;
  faults : (string * string) family;                    (* kind, target *)
  histories : string family;
      (* completed client operations ("client op -> res"); empty unless a
         harness records a History *)
  schedules : (int64, int) Hashtbl.t;
  hb : (int64, int) Hashtbl.t;
      (* canonical partial-order fingerprints (Hb); empty unless
         happens-before tracking is on *)
  mutable executions : int;
}

let create () =
  {
    states = family_create 64;
    events = family_create 64;
    triples = family_create 256;
    branches = family_create 64;
    faults = family_create 16;
    histories = family_create 16;
    schedules = Hashtbl.create 64;
    hb = Hashtbl.create 64;
    executions = 0;
  }

(* --- Recording --------------------------------------------------------- *)

let visit_state t ~machine ~state = family_bump t.states (machine, state)

let deliver t ~sender ~event ~receiver ~state =
  family_bump t.events event;
  family_bump t.triples (sender, event, receiver, state)

let branch_bool t ~machine b = family_bump t.branches (Branch_bool (machine, b))

let branch_int t ~machine ~bound v =
  family_bump t.branches (Branch_int (machine, v, bound))

let fault t ~kind ~target = family_bump t.faults (kind, target)
let history t ~point = family_bump t.histories point

(* FNV-1a over the choice sequence; tags keep [Schedule 1] and [Int 1]
   from colliding. *)
let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let fingerprint trace =
  Trace.fold
    (fun h c ->
      match c with
      | Trace.Schedule i -> mix (mix h 1) i
      | Trace.Bool b -> mix (mix h 2) (if b then 1 else 0)
      | Trace.Int i -> mix (mix h 3) i)
    fnv_offset trace

(* One 64-bit digest of the whole schedule-fingerprint multiset: FNV-1a
   over the sorted (fingerprint, count) pairs. Two maps have the same
   digest iff they saw the same schedules the same number of times (up to
   hash collisions), which makes it a compact golden value for
   determinism tests. *)
let schedule_digest t =
  let entries =
    Hashtbl.fold (fun fp n acc -> (fp, n) :: acc) t.schedules []
    |> List.sort compare
  in
  let h =
    List.fold_left
      (fun h (fp, n) ->
        let h = Int64.mul (Int64.logxor h fp) fnv_prime in
        Int64.mul (Int64.logxor h (Int64.of_int n)) fnv_prime)
      fnv_offset entries
  in
  Printf.sprintf "%016Lx" h

let note_hb t ~fingerprint =
  match Hashtbl.find_opt t.hb fingerprint with
  | Some n -> Hashtbl.replace t.hb fingerprint (n + 1)
  | None -> Hashtbl.replace t.hb fingerprint 1

let note_execution t ~fingerprint =
  (match Hashtbl.find_opt t.schedules fingerprint with
   | Some n -> Hashtbl.replace t.schedules fingerprint (n + 1)
   | None -> Hashtbl.replace t.schedules fingerprint 1);
  t.executions <- t.executions + 1

(* --- Merging ----------------------------------------------------------- *)

let absorb ~into src =
  let novel = ref false in
  let merge src_fam dst_fam =
    for i = 0 to src_fam.n - 1 do
      if family_bump_n dst_fam src_fam.keys.(i) src_fam.counts.(i) then
        novel := true
    done
  in
  merge src.states into.states;
  merge src.events into.events;
  merge src.triples into.triples;
  merge src.branches into.branches;
  merge src.faults into.faults;
  merge src.histories into.histories;
  (* Schedule and partial-order fingerprints merge like the rest but do
     not feed the novelty flag: almost every random schedule is unique. *)
  let merge_fp src dst =
    Hashtbl.iter
      (fun k n ->
        match Hashtbl.find_opt dst k with
        | Some m -> Hashtbl.replace dst k (m + n)
        | None -> Hashtbl.replace dst k n)
      src
  in
  merge_fp src.schedules into.schedules;
  merge_fp src.hb into.hb;
  into.executions <- into.executions + src.executions;
  !novel

(* --- Reading ----------------------------------------------------------- *)

(* Rendered (report-facing) key strings; these spellings are the public
   format of the table and JSON reports and must stay stable. *)

let render_state (machine, state) = machine ^ "." ^ state

let render_triple (sender, event, receiver, state) =
  Printf.sprintf "%s -[%s]-> %s@%s" sender event receiver state

let render_branch = function
  | Branch_bool (machine, b) -> Printf.sprintf "%s ? %b" machine b
  | Branch_int (machine, v, bound) -> Printf.sprintf "%s ? %d/%d" machine v bound

let render_fault (kind, target) = kind ^ " " ^ target

let sorted_entries render fam =
  let acc = ref [] in
  for i = fam.n - 1 downto 0 do
    acc := (render fam.keys.(i), fam.counts.(i)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let states t = sorted_entries render_state t.states
let events t = sorted_entries Fun.id t.events
let triples t = sorted_entries render_triple t.triples
let branches t = sorted_entries render_branch t.branches
let faults t = sorted_entries render_fault t.faults
let histories t = sorted_entries Fun.id t.histories

let schedules t =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.schedules []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hb_fingerprints t =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.hb []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let equal a b =
  states a = states b && events a = events b && triples a = triples b
  && branches a = branches b
  && faults a = faults b
  && histories a = histories b
  && schedules a = schedules b
  && hb_fingerprints a = hb_fingerprints b
  && a.executions = b.executions

type totals = {
  machine_states : int;
  event_types : int;
  transition_triples : int;
  branch_outcomes : int;
  fault_points : int;
  history_points : int;
  unique_schedules : int;
  partial_orders : int;
  executions : int;
}

let totals t =
  {
    machine_states = t.states.n;
    event_types = t.events.n;
    transition_triples = t.triples.n;
    branch_outcomes = t.branches.n;
    fault_points = t.faults.n;
    history_points = t.histories.n;
    unique_schedules = Hashtbl.length t.schedules;
    partial_orders = Hashtbl.length t.hb;
    executions = t.executions;
  }

(* --- Reporting --------------------------------------------------------- *)

let pp_totals fmt t =
  let s = totals t in
  Format.fprintf fmt
    "%d states, %d event types, %d triples, %d branch outcomes, %d/%d \
     unique schedules"
    s.machine_states s.event_types s.transition_triples s.branch_outcomes
    s.unique_schedules s.executions;
  (* fault-free runs keep the historical one-liner byte-identical *)
  if s.fault_points > 0 then
    Format.fprintf fmt ", %d fault points" s.fault_points;
  (* likewise: only happens-before-tracked runs mention partial orders *)
  if s.partial_orders > 0 then
    Format.fprintf fmt ", %d partial orders" s.partial_orders;
  (* and only history-recording harnesses mention history points *)
  if s.history_points > 0 then
    Format.fprintf fmt ", %d history points" s.history_points

let pp_section fmt ~title ~cap entries =
  let by_count = List.sort (fun (_, a) (_, b) -> compare b a) entries in
  let shown = List.filteri (fun i _ -> i < cap) by_count in
  Format.fprintf fmt "@,%s (%d):" title (List.length entries);
  List.iter
    (fun (key, n) -> Format.fprintf fmt "@,  %8d  %s" n key)
    shown;
  let rest = List.length entries - List.length shown in
  if rest > 0 then Format.fprintf fmt "@,  ... and %d more" rest

let pp_table fmt t =
  Format.fprintf fmt "@[<v>coverage: %a" pp_totals t;
  pp_section fmt ~title:"machine states" ~cap:20 (states t);
  pp_section fmt ~title:"event types" ~cap:20 (events t);
  pp_section fmt ~title:"transition triples" ~cap:20 (triples t);
  pp_section fmt ~title:"branch outcomes" ~cap:20 (branches t);
  if t.faults.n > 0 then
    pp_section fmt ~title:"fault points" ~cap:20 (faults t);
  if t.histories.n > 0 then
    pp_section fmt ~title:"history points" ~cap:20 (histories t);
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  let s = totals t in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"totals\": {\"machine_states\": %d, \"event_types\": %d, \
        \"transition_triples\": %d, \"branch_outcomes\": %d, \
        \"fault_points\": %d, \"history_points\": %d, \
        \"unique_schedules\": %d, \
        \"partial_orders\": %d, \"executions\": %d},\n"
       s.machine_states s.event_types s.transition_triples s.branch_outcomes
       s.fault_points s.history_points s.unique_schedules s.partial_orders
       s.executions);
  let family name entries ~last =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {" name);
    List.iteri
      (fun i (key, n) ->
        Buffer.add_string buf
          (Printf.sprintf "%s\n    \"%s\": %d"
             (if i = 0 then "" else ",")
             (json_escape key) n))
      entries;
    Buffer.add_string buf
      (if entries = [] then Printf.sprintf "}%s\n" (if last then "" else ",")
       else Printf.sprintf "\n  }%s\n" (if last then "" else ","))
  in
  family "machine_states" (states t) ~last:false;
  family "event_types" (events t) ~last:false;
  family "transition_triples" (triples t) ~last:false;
  family "branch_outcomes" (branches t) ~last:false;
  family "fault_points" (faults t) ~last:false;
  family "history_points" (histories t) ~last:false;
  family "hb_fingerprints"
    (List.map (fun (fp, n) -> (Printf.sprintf "%Lx" fp, n)) (hb_fingerprints t))
    ~last:false;
  family "schedule_fingerprints"
    (List.map (fun (fp, n) -> (Printf.sprintf "%Lx" fp, n)) (schedules t))
    ~last:true;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
