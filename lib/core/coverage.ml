(* Coverage keys are interned: the first time a key is seen it is assigned
   an integer slot, and from then on recording is one hashtable lookup plus
   an int-array bump — no Printf/Buffer allocation on the hot path. Keys
   are structured tuples; their human-readable renderings (the public,
   report-facing key strings) are produced only at read time. *)

type 'k family = {
  slots : ('k, int) Hashtbl.t;  (* key -> slot *)
  mutable keys : 'k array;      (* slot -> key, first [n] valid *)
  mutable counts : int array;   (* slot -> visit count *)
  mutable n : int;
}

let family_create size =
  { slots = Hashtbl.create size; keys = [||]; counts = [||]; n = 0 }

(* Add [add] visits of [key]; returns [true] when the key is new. *)
let family_bump_n fam key add =
  match Hashtbl.find_opt fam.slots key with
  | Some id ->
    fam.counts.(id) <- fam.counts.(id) + add;
    false
  | None ->
    if fam.n = Array.length fam.keys then begin
      let cap = max 16 (2 * fam.n) in
      let keys = Array.make cap key in
      Array.blit fam.keys 0 keys 0 fam.n;
      fam.keys <- keys;
      let counts = Array.make cap 0 in
      Array.blit fam.counts 0 counts 0 fam.n;
      fam.counts <- counts
    end;
    Hashtbl.replace fam.slots key fam.n;
    fam.keys.(fam.n) <- key;
    fam.counts.(fam.n) <- add;
    fam.n <- fam.n + 1;
    true

let family_bump fam key = ignore (family_bump_n fam key 1)

type branch_key =
  | Branch_bool of string * bool          (* machine, outcome *)
  | Branch_int of string * int * int      (* machine, value, bound *)

type t = {
  states : (string * string) family;                    (* machine, state *)
  events : string family;
  triples : (string * string * string * string) family;
      (* sender, event, receiver, receiver-state *)
  branches : branch_key family;
  faults : (string * string) family;                    (* kind, target *)
  histories : string family;
      (* completed client operations ("client op -> res"); empty unless a
         harness records a History *)
  schedules : (int64, int) Hashtbl.t;
  hb : (int64, int) Hashtbl.t;
      (* canonical partial-order fingerprints (Hb); empty unless
         happens-before tracking is on *)
  mutable executions : int;
}

let create () =
  {
    states = family_create 64;
    events = family_create 64;
    triples = family_create 256;
    branches = family_create 64;
    faults = family_create 16;
    histories = family_create 16;
    schedules = Hashtbl.create 64;
    hb = Hashtbl.create 64;
    executions = 0;
  }

(* --- Recording --------------------------------------------------------- *)

let visit_state t ~machine ~state = family_bump t.states (machine, state)

let deliver t ~sender ~event ~receiver ~state =
  family_bump t.events event;
  family_bump t.triples (sender, event, receiver, state)

let branch_bool t ~machine b = family_bump t.branches (Branch_bool (machine, b))

let branch_int t ~machine ~bound v =
  family_bump t.branches (Branch_int (machine, v, bound))

let fault t ~kind ~target = family_bump t.faults (kind, target)
let history t ~point = family_bump t.histories point

(* FNV-1a over the choice sequence; tags keep [Schedule 1] and [Int 1]
   from colliding. *)
let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let fingerprint trace =
  Trace.fold
    (fun h c ->
      match c with
      | Trace.Schedule i -> mix (mix h 1) i
      | Trace.Bool b -> mix (mix h 2) (if b then 1 else 0)
      | Trace.Int i -> mix (mix h 3) i)
    fnv_offset trace

(* One 64-bit digest of the whole schedule-fingerprint multiset: FNV-1a
   over the sorted (fingerprint, count) pairs. Two maps have the same
   digest iff they saw the same schedules the same number of times (up to
   hash collisions), which makes it a compact golden value for
   determinism tests. *)
let schedule_digest t =
  let entries =
    Hashtbl.fold (fun fp n acc -> (fp, n) :: acc) t.schedules []
    |> List.sort compare
  in
  let h =
    List.fold_left
      (fun h (fp, n) ->
        let h = Int64.mul (Int64.logxor h fp) fnv_prime in
        Int64.mul (Int64.logxor h (Int64.of_int n)) fnv_prime)
      fnv_offset entries
  in
  Printf.sprintf "%016Lx" h

let note_hb t ~fingerprint =
  match Hashtbl.find_opt t.hb fingerprint with
  | Some n -> Hashtbl.replace t.hb fingerprint (n + 1)
  | None -> Hashtbl.replace t.hb fingerprint 1

let note_execution t ~fingerprint =
  (match Hashtbl.find_opt t.schedules fingerprint with
   | Some n -> Hashtbl.replace t.schedules fingerprint (n + 1)
   | None -> Hashtbl.replace t.schedules fingerprint 1);
  t.executions <- t.executions + 1

(* --- Merging ----------------------------------------------------------- *)

type family_kind = State | Event | Triple | Branch | Fault | History | Hb

let all_family_kinds = [ State; Event; Triple; Branch; Fault; History; Hb ]

let family_kind_to_string = function
  | State -> "state"
  | Event -> "event"
  | Triple -> "triple"
  | Branch -> "branch"
  | Fault -> "fault"
  | History -> "history"
  | Hb -> "hb"

let family_kind_of_string = function
  | "state" -> State
  | "event" -> Event
  | "triple" -> Triple
  | "branch" -> Branch
  | "fault" -> Fault
  | "history" -> History
  | "hb" -> Hb
  | s -> failwith (Printf.sprintf "Coverage: unknown coverage family %S" s)

type novelty = {
  new_states : int;
  new_events : int;
  new_triples : int;
  new_branches : int;
  new_faults : int;
  new_histories : int;
  new_hb : int;
}

let no_novelty =
  {
    new_states = 0;
    new_events = 0;
    new_triples = 0;
    new_branches = 0;
    new_faults = 0;
    new_histories = 0;
    new_hb = 0;
  }

let novel_core n =
  n.new_states > 0 || n.new_events > 0 || n.new_triples > 0
  || n.new_branches > 0 || n.new_faults > 0 || n.new_histories > 0

let novel_in n = function
  | State -> n.new_states > 0
  | Event -> n.new_events > 0
  | Triple -> n.new_triples > 0
  | Branch -> n.new_branches > 0
  | Fault -> n.new_faults > 0
  | History -> n.new_histories > 0
  | Hb -> n.new_hb > 0

let novel_families n = List.filter (novel_in n) all_family_kinds

let absorb_tagged ~into src =
  let merge src_fam dst_fam =
    let fresh = ref 0 in
    for i = 0 to src_fam.n - 1 do
      if family_bump_n dst_fam src_fam.keys.(i) src_fam.counts.(i) then
        incr fresh
    done;
    !fresh
  in
  let new_states = merge src.states into.states in
  let new_events = merge src.events into.events in
  let new_triples = merge src.triples into.triples in
  let new_branches = merge src.branches into.branches in
  let new_faults = merge src.faults into.faults in
  let new_histories = merge src.histories into.histories in
  (* Fingerprint multisets merge like the rest. Raw schedule fingerprints
     never count as novelty — almost every random schedule is unique —
     but new hb fingerprints are reported per family: a semantically new
     partial order is exactly the signal hb-guided fuzzing feeds on. *)
  let merge_fp src dst =
    let fresh = ref 0 in
    Hashtbl.iter
      (fun k n ->
        match Hashtbl.find_opt dst k with
        | Some m -> Hashtbl.replace dst k (m + n)
        | None ->
          incr fresh;
          Hashtbl.replace dst k n)
      src;
    !fresh
  in
  let (_ : int) = merge_fp src.schedules into.schedules in
  let new_hb = merge_fp src.hb into.hb in
  into.executions <- into.executions + src.executions;
  {
    new_states;
    new_events;
    new_triples;
    new_branches;
    new_faults;
    new_histories;
    new_hb;
  }

let absorb ~into src = novel_core (absorb_tagged ~into src)

(* --- Reading ----------------------------------------------------------- *)

(* Rendered (report-facing) key strings; these spellings are the public
   format of the table and JSON reports and must stay stable. *)

let render_state (machine, state) = machine ^ "." ^ state

let render_triple (sender, event, receiver, state) =
  Printf.sprintf "%s -[%s]-> %s@%s" sender event receiver state

let render_branch = function
  | Branch_bool (machine, b) -> Printf.sprintf "%s ? %b" machine b
  | Branch_int (machine, v, bound) -> Printf.sprintf "%s ? %d/%d" machine v bound

let render_fault (kind, target) = kind ^ " " ^ target

let sorted_entries render fam =
  let acc = ref [] in
  for i = fam.n - 1 downto 0 do
    acc := (render fam.keys.(i), fam.counts.(i)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let states t = sorted_entries render_state t.states
let events t = sorted_entries Fun.id t.events
let triples t = sorted_entries render_triple t.triples
let branches t = sorted_entries render_branch t.branches
let faults t = sorted_entries render_fault t.faults
let histories t = sorted_entries Fun.id t.histories

let schedules t =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.schedules []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hb_fingerprints t =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.hb []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let equal a b =
  states a = states b && events a = events b && triples a = triples b
  && branches a = branches b
  && faults a = faults b
  && histories a = histories b
  && schedules a = schedules b
  && hb_fingerprints a = hb_fingerprints b
  && a.executions = b.executions

type totals = {
  machine_states : int;
  event_types : int;
  transition_triples : int;
  branch_outcomes : int;
  fault_points : int;
  history_points : int;
  unique_schedules : int;
  partial_orders : int;
  executions : int;
}

let totals t =
  {
    machine_states = t.states.n;
    event_types = t.events.n;
    transition_triples = t.triples.n;
    branch_outcomes = t.branches.n;
    fault_points = t.faults.n;
    history_points = t.histories.n;
    unique_schedules = Hashtbl.length t.schedules;
    partial_orders = Hashtbl.length t.hb;
    executions = t.executions;
  }

(* --- Persistence (campaign save/load) ---------------------------------- *)

(* Versioned, line-oriented, tab-separated dump of the full map — the
   structured keys, not the rendered report strings, so a loaded map
   merges and compares exactly like the original. The parse is strict in
   the Trace.of_string mold: unknown tags, blank lines, non-canonical
   numbers, dangling escapes, duplicate keys and a missing/short trailer
   all fail loudly — a corrupted campaign must not resume as a subtly
   different one. The trailing [end:<entries>] line catches whole-line
   truncation that a line-wise parse would otherwise silently accept. *)

let save_version = "psharp-coverage:1"

let escape_field s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_field s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '\\' ->
        if i + 1 >= n then failwith "Coverage.of_save: dangling escape"
        else begin
          (match s.[i + 1] with
           | '\\' -> Buffer.add_char buf '\\'
           | 't' -> Buffer.add_char buf '\t'
           | 'n' -> Buffer.add_char buf '\n'
           | c ->
             failwith
               (Printf.sprintf "Coverage.of_save: unknown escape \\%c" c));
          go (i + 2)
        end
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  Buffer.contents buf

let to_save (t : t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf save_version;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "executions:%d\n" t.executions);
  let lines = ref [] in
  let entry fields count =
    lines :=
      String.concat "\t" (fields @ [ string_of_int count ]) :: !lines
  in
  let each_family fam f =
    for i = 0 to fam.n - 1 do
      f fam.keys.(i) fam.counts.(i)
    done
  in
  each_family t.states (fun (m, s) c ->
      entry [ "state"; escape_field m; escape_field s ] c);
  each_family t.events (fun e c -> entry [ "event"; escape_field e ] c);
  each_family t.triples (fun (s, e, r, st) c ->
      entry
        [ "triple"; escape_field s; escape_field e; escape_field r;
          escape_field st ]
        c);
  each_family t.branches (fun k c ->
      match k with
      | Branch_bool (m, b) ->
        entry [ "bbool"; escape_field m; (if b then "1" else "0") ] c
      | Branch_int (m, v, bound) ->
        entry
          [ "bint"; escape_field m; string_of_int v; string_of_int bound ]
          c);
  each_family t.faults (fun (k, tgt) c ->
      entry [ "fault"; escape_field k; escape_field tgt ] c);
  each_family t.histories (fun p c -> entry [ "hist"; escape_field p ] c);
  Hashtbl.iter
    (fun fp c -> entry [ "sched"; Printf.sprintf "%016Lx" fp ] c)
    t.schedules;
  Hashtbl.iter
    (fun fp c -> entry [ "hb"; Printf.sprintf "%016Lx" fp ] c)
    t.hb;
  (* canonical order: equal maps save to identical bytes *)
  let sorted = List.sort compare !lines in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    sorted;
  Buffer.add_string buf (Printf.sprintf "end:%d\n" (List.length sorted));
  Buffer.contents buf

let canonical_int s =
  match int_of_string_opt s with
  | Some n when string_of_int n = s -> Some n
  | _ -> None

let parse_count line s =
  match canonical_int s with
  | Some n when n > 0 -> n
  | _ ->
    failwith (Printf.sprintf "Coverage.of_save: bad count on line %d" line)

let parse_fingerprint line s =
  let hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
  if String.length s = 16 && String.for_all hex s then
    Int64.of_string ("0x" ^ s)
  else
    failwith
      (Printf.sprintf "Coverage.of_save: bad fingerprint on line %d" line)

let of_save data =
  let lines = String.split_on_char '\n' data in
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let t = create () in
  let seen_schedules = Hashtbl.create 64 and seen_hb = Hashtbl.create 64 in
  let entries = ref 0 in
  let fresh line ok =
    if not ok then
      failwith (Printf.sprintf "Coverage.of_save: duplicate key on line %d" line)
  in
  let file_fp line table seen fp count =
    if Hashtbl.mem seen fp then fresh line false;
    Hashtbl.replace seen fp ();
    Hashtbl.replace table fp count
  in
  let parse_entry line fields =
    incr entries;
    match fields with
    | [ "state"; m; s; c ] ->
      fresh line
        (family_bump_n t.states (unescape_field m, unescape_field s)
           (parse_count line c))
    | [ "event"; e; c ] ->
      fresh line (family_bump_n t.events (unescape_field e) (parse_count line c))
    | [ "triple"; s; e; r; st; c ] ->
      fresh line
        (family_bump_n t.triples
           ( unescape_field s, unescape_field e, unescape_field r,
             unescape_field st )
           (parse_count line c))
    | [ "bbool"; m; b; c ] ->
      let b =
        match b with
        | "0" -> false
        | "1" -> true
        | _ ->
          failwith
            (Printf.sprintf "Coverage.of_save: bad bool on line %d" line)
      in
      fresh line
        (family_bump_n t.branches (Branch_bool (unescape_field m, b))
           (parse_count line c))
    | [ "bint"; m; v; bound; c ] ->
      let int_of s =
        match canonical_int s with
        | Some n -> n
        | None ->
          failwith
            (Printf.sprintf "Coverage.of_save: bad integer on line %d" line)
      in
      fresh line
        (family_bump_n t.branches
           (Branch_int (unescape_field m, int_of v, int_of bound))
           (parse_count line c))
    | [ "fault"; k; tgt; c ] ->
      fresh line
        (family_bump_n t.faults (unescape_field k, unescape_field tgt)
           (parse_count line c))
    | [ "hist"; p; c ] ->
      fresh line
        (family_bump_n t.histories (unescape_field p) (parse_count line c))
    | [ "sched"; fp; c ] ->
      file_fp line t.schedules seen_schedules (parse_fingerprint line fp)
        (parse_count line c)
    | [ "hb"; fp; c ] ->
      file_fp line t.hb seen_hb (parse_fingerprint line fp)
        (parse_count line c)
    | [ "" ] -> failwith (Printf.sprintf "Coverage.of_save: blank line %d" line)
    | tag :: _ ->
      failwith
        (Printf.sprintf "Coverage.of_save: malformed entry %S on line %d" tag
           line)
    | [] -> failwith (Printf.sprintf "Coverage.of_save: blank line %d" line)
  in
  let rec go lineno saw_end = function
    | [] ->
      if not saw_end then
        failwith "Coverage.of_save: truncated (missing end line)"
    | _ :: _ when saw_end ->
      failwith
        (Printf.sprintf "Coverage.of_save: content after end line %d"
           (lineno - 1))
    | line :: rest ->
      (match String.index_opt line ':' with
       | Some i when String.sub line 0 i = "end" ->
         let n = String.sub line (i + 1) (String.length line - i - 1) in
         (match canonical_int n with
          | Some n when n = !entries -> ()
          | Some _ ->
            failwith
              (Printf.sprintf
                 "Coverage.of_save: entry count mismatch on line %d (file \
                  truncated?)"
                 lineno)
          | None ->
            failwith
              (Printf.sprintf "Coverage.of_save: bad end line %d" lineno));
         go (lineno + 1) true rest
       | _ ->
         parse_entry lineno (String.split_on_char '\t' line);
         go (lineno + 1) saw_end rest)
  in
  (match lines with
   | v :: rest when v = save_version -> begin
     match rest with
     | ex :: rest ->
       (match String.index_opt ex ':' with
        | Some i when String.sub ex 0 i = "executions" ->
          let n = String.sub ex (i + 1) (String.length ex - i - 1) in
          (match canonical_int n with
           | Some n when n >= 0 -> t.executions <- n
           | _ -> failwith "Coverage.of_save: bad executions line")
        | _ -> failwith "Coverage.of_save: missing executions line");
       go 3 false rest
     | [] -> failwith "Coverage.of_save: truncated (missing executions line)"
   end
   | v :: _ ->
     failwith
       (Printf.sprintf "Coverage.of_save: unsupported version line %S" v)
   | [] -> failwith "Coverage.of_save: empty input");
  t

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_save t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_save (really_input_string ic len))

(* --- Reporting --------------------------------------------------------- *)

let pp_totals fmt t =
  let s = totals t in
  Format.fprintf fmt
    "%d states, %d event types, %d triples, %d branch outcomes, %d/%d \
     unique schedules"
    s.machine_states s.event_types s.transition_triples s.branch_outcomes
    s.unique_schedules s.executions;
  (* fault-free runs keep the historical one-liner byte-identical *)
  if s.fault_points > 0 then
    Format.fprintf fmt ", %d fault points" s.fault_points;
  (* likewise: only happens-before-tracked runs mention partial orders *)
  if s.partial_orders > 0 then
    Format.fprintf fmt ", %d partial orders" s.partial_orders;
  (* and only history-recording harnesses mention history points *)
  if s.history_points > 0 then
    Format.fprintf fmt ", %d history points" s.history_points

let pp_section fmt ~title ~cap entries =
  let by_count = List.sort (fun (_, a) (_, b) -> compare b a) entries in
  let shown = List.filteri (fun i _ -> i < cap) by_count in
  Format.fprintf fmt "@,%s (%d):" title (List.length entries);
  List.iter
    (fun (key, n) -> Format.fprintf fmt "@,  %8d  %s" n key)
    shown;
  let rest = List.length entries - List.length shown in
  if rest > 0 then Format.fprintf fmt "@,  ... and %d more" rest

let pp_table fmt t =
  Format.fprintf fmt "@[<v>coverage: %a" pp_totals t;
  pp_section fmt ~title:"machine states" ~cap:20 (states t);
  pp_section fmt ~title:"event types" ~cap:20 (events t);
  pp_section fmt ~title:"transition triples" ~cap:20 (triples t);
  pp_section fmt ~title:"branch outcomes" ~cap:20 (branches t);
  if t.faults.n > 0 then
    pp_section fmt ~title:"fault points" ~cap:20 (faults t);
  if t.histories.n > 0 then
    pp_section fmt ~title:"history points" ~cap:20 (histories t);
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  let s = totals t in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"totals\": {\"machine_states\": %d, \"event_types\": %d, \
        \"transition_triples\": %d, \"branch_outcomes\": %d, \
        \"fault_points\": %d, \"history_points\": %d, \
        \"unique_schedules\": %d, \
        \"partial_orders\": %d, \"executions\": %d},\n"
       s.machine_states s.event_types s.transition_triples s.branch_outcomes
       s.fault_points s.history_points s.unique_schedules s.partial_orders
       s.executions);
  let family name entries ~last =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {" name);
    List.iteri
      (fun i (key, n) ->
        Buffer.add_string buf
          (Printf.sprintf "%s\n    \"%s\": %d"
             (if i = 0 then "" else ",")
             (json_escape key) n))
      entries;
    Buffer.add_string buf
      (if entries = [] then Printf.sprintf "}%s\n" (if last then "" else ",")
       else Printf.sprintf "\n  }%s\n" (if last then "" else ","))
  in
  family "machine_states" (states t) ~last:false;
  family "event_types" (events t) ~last:false;
  family "transition_triples" (triples t) ~last:false;
  family "branch_outcomes" (branches t) ~last:false;
  family "fault_points" (faults t) ~last:false;
  family "history_points" (histories t) ~last:false;
  family "hb_fingerprints"
    (List.map (fun (fp, n) -> (Printf.sprintf "%Lx" fp, n)) (hb_fingerprints t))
    ~last:false;
  family "schedule_fingerprints"
    (List.map (fun (fp, n) -> (Printf.sprintf "%Lx" fp, n)) (schedules t))
    ~last:true;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
