type t = {
  states : (string, int) Hashtbl.t;
  events : (string, int) Hashtbl.t;
  triples : (string, int) Hashtbl.t;
  branches : (string, int) Hashtbl.t;
  schedules : (int64, int) Hashtbl.t;
  mutable executions : int;
}

let create () =
  {
    states = Hashtbl.create 64;
    events = Hashtbl.create 64;
    triples = Hashtbl.create 256;
    branches = Hashtbl.create 64;
    schedules = Hashtbl.create 64;
    executions = 0;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some n -> Hashtbl.replace tbl key (n + 1)
  | None -> Hashtbl.replace tbl key 1

(* --- Recording --------------------------------------------------------- *)

let visit_state t ~machine ~state = bump t.states (machine ^ "." ^ state)

let deliver t ~sender ~event ~receiver ~state =
  bump t.events event;
  bump t.triples (Printf.sprintf "%s -[%s]-> %s@%s" sender event receiver state)

let branch_bool t ~machine b =
  bump t.branches (Printf.sprintf "%s ? %b" machine b)

let branch_int t ~machine ~bound v =
  bump t.branches (Printf.sprintf "%s ? %d/%d" machine v bound)

(* FNV-1a over the choice sequence; tags keep [Schedule 1] and [Int 1]
   from colliding. *)
let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let fingerprint trace =
  List.fold_left
    (fun h c ->
      match c with
      | Trace.Schedule i -> mix (mix h 1) i
      | Trace.Bool b -> mix (mix h 2) (if b then 1 else 0)
      | Trace.Int i -> mix (mix h 3) i)
    fnv_offset (Trace.to_list trace)

let note_execution t ~fingerprint =
  (match Hashtbl.find_opt t.schedules fingerprint with
   | Some n -> Hashtbl.replace t.schedules fingerprint (n + 1)
   | None -> Hashtbl.replace t.schedules fingerprint 1);
  t.executions <- t.executions + 1

(* --- Merging ----------------------------------------------------------- *)

let absorb ~into src =
  let novel = ref false in
  let merge src_tbl dst_tbl =
    Hashtbl.iter
      (fun k n ->
        match Hashtbl.find_opt dst_tbl k with
        | Some m -> Hashtbl.replace dst_tbl k (m + n)
        | None ->
          novel := true;
          Hashtbl.replace dst_tbl k n)
      src_tbl
  in
  merge src.states into.states;
  merge src.events into.events;
  merge src.triples into.triples;
  merge src.branches into.branches;
  (* Schedule fingerprints merge like the rest but do not feed the novelty
     flag: almost every random schedule is unique. *)
  Hashtbl.iter
    (fun k n ->
      match Hashtbl.find_opt into.schedules k with
      | Some m -> Hashtbl.replace into.schedules k (m + n)
      | None -> Hashtbl.replace into.schedules k n)
    src.schedules;
  into.executions <- into.executions + src.executions;
  !novel

(* --- Reading ----------------------------------------------------------- *)

let sorted_entries tbl =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let states t = sorted_entries t.states
let events t = sorted_entries t.events
let triples t = sorted_entries t.triples
let branches t = sorted_entries t.branches
let schedules t = sorted_entries t.schedules

let equal a b =
  states a = states b && events a = events b && triples a = triples b
  && branches a = branches b
  && schedules a = schedules b
  && a.executions = b.executions

type totals = {
  machine_states : int;
  event_types : int;
  transition_triples : int;
  branch_outcomes : int;
  unique_schedules : int;
  executions : int;
}

let totals t =
  {
    machine_states = Hashtbl.length t.states;
    event_types = Hashtbl.length t.events;
    transition_triples = Hashtbl.length t.triples;
    branch_outcomes = Hashtbl.length t.branches;
    unique_schedules = Hashtbl.length t.schedules;
    executions = t.executions;
  }

(* --- Reporting --------------------------------------------------------- *)

let pp_totals fmt t =
  let s = totals t in
  Format.fprintf fmt
    "%d states, %d event types, %d triples, %d branch outcomes, %d/%d \
     unique schedules"
    s.machine_states s.event_types s.transition_triples s.branch_outcomes
    s.unique_schedules s.executions

let pp_section fmt ~title ~cap entries =
  let by_count = List.sort (fun (_, a) (_, b) -> compare b a) entries in
  let shown = List.filteri (fun i _ -> i < cap) by_count in
  Format.fprintf fmt "@,%s (%d):" title (List.length entries);
  List.iter
    (fun (key, n) -> Format.fprintf fmt "@,  %8d  %s" n key)
    shown;
  let rest = List.length entries - List.length shown in
  if rest > 0 then Format.fprintf fmt "@,  ... and %d more" rest

let pp_table fmt t =
  Format.fprintf fmt "@[<v>coverage: %a" pp_totals t;
  pp_section fmt ~title:"machine states" ~cap:20 (states t);
  pp_section fmt ~title:"event types" ~cap:20 (events t);
  pp_section fmt ~title:"transition triples" ~cap:20 (triples t);
  pp_section fmt ~title:"branch outcomes" ~cap:20 (branches t);
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  let s = totals t in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"totals\": {\"machine_states\": %d, \"event_types\": %d, \
        \"transition_triples\": %d, \"branch_outcomes\": %d, \
        \"unique_schedules\": %d, \"executions\": %d},\n"
       s.machine_states s.event_types s.transition_triples s.branch_outcomes
       s.unique_schedules s.executions);
  let family name entries ~last =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {" name);
    List.iteri
      (fun i (key, n) ->
        Buffer.add_string buf
          (Printf.sprintf "%s\n    \"%s\": %d"
             (if i = 0 then "" else ",")
             (json_escape key) n))
      entries;
    Buffer.add_string buf
      (if entries = [] then Printf.sprintf "}%s\n" (if last then "" else ",")
       else Printf.sprintf "\n  }%s\n" (if last then "" else ","))
  in
  family "machine_states" (states t) ~last:false;
  family "event_types" (events t) ~last:false;
  family "transition_triples" (triples t) ~last:false;
  family "branch_outcomes" (branches t) ~last:false;
  family "schedule_fingerprints"
    (List.map (fun (fp, n) -> (Printf.sprintf "%Lx" fp, n)) (schedules t))
    ~last:true;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
