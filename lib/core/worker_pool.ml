type claim = Batch of int | Stride

let default_claim = Batch 16

type stats = {
  executions : int;
  total_steps : int;
  elapsed : float;
  timed_out : bool;
}

let resolve n =
  if n < 0 then invalid_arg "Worker_pool.resolve: negative worker count"
  else if n = 0 then Domain.recommended_domain_count ()
  else n

(* Spawning more domains than cores is never faster here: the iterations
   are independent, their set is worker-count-invariant, and OCaml 5 minor
   collections are stop-the-world across domains, so oversubscription just
   multiplies GC barriers. Clamp to the core count by default; the
   environment escape hatch lets tests exercise the genuinely-concurrent
   machinery on small machines. *)
let oversubscribe_requested () =
  match Sys.getenv_opt "PSHARP_OVERSUBSCRIBE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* An [Atomic.t] is a one-word heap box; boxes allocated back to back end
   up on the same cache line, so a hot store to one (the claim cursor)
   would keep invalidating readers of its neighbour (the stop bound). A
   dead spacer allocation between them is a best-effort separator — the
   load-bearing fix is that the per-iteration counters live in
   worker-local records, not in shared atomics at all. *)
let spaced_atomic v =
  let a = Atomic.make v in
  ignore (Sys.opaque_identity (Array.make 15 0));
  a

(* Per-worker accumulator, allocated inside the worker's own domain (its
   own minor heap), so the hot per-iteration bumps never touch a cache
   line another domain writes. *)
type 'r local = {
  mutable results : ('r * int) list;
  mutable execs : int;
  mutable steps : int;
}

let drive ?(claim = default_claim) ~workers ~max_iterations ?max_seconds
    ~stop_on_result ~init ?on_batch ~body () =
  (match claim with
   | Batch n when n <= 0 ->
     invalid_arg "Worker_pool.drive: batch size must be positive"
   | _ -> ());
  let workers = max 1 (min (resolve workers) (max 1 max_iterations)) in
  let workers =
    if oversubscribe_requested () then workers
    else max 1 (min workers (Domain.recommended_domain_count ()))
  in
  let started = Unix.gettimeofday () in
  (* Early-stop bound: workers keep running iterations strictly below it.
     A plain boolean stop flag is not enough for a deterministic winner —
     when worker A reports at global iteration 7, worker B may not yet
     have {e started} iteration 3, and a boolean would make B exit without
     running it, crowning 7 as a non-minimal "first" bug that varies with
     the worker count and thread timing. Min-updating the bound instead
     lets every iteration below the best known result complete (and
     possibly lower the bound further), so the winner is the lowest
     reporting iteration at every worker count. Batch claims are monotone,
     so every iteration below a reported one is already claimed by some
     worker and will run to completion. *)
  let stop_before = spaced_atomic max_int in
  let next = spaced_atomic 0 in (* batch-claim cursor *)
  let timed_out = Atomic.make false in
  let mu = Mutex.create () in
  let failure : (exn * Printexc.raw_backtrace) option ref = ref None in
  let locals : 'r local option array = Array.make workers None in
  (* Hoisted deadline: with no [max_seconds] the poll is a constant, not a
     [Unix.gettimeofday] syscall per check. *)
  let past_deadline =
    match max_seconds with
    | None -> fun () -> false
    | Some budget ->
      let deadline = started +. budget in
      fun () -> Unix.gettimeofday () >= deadline
  in
  let rec lower_stop_before v =
    let cur = Atomic.get stop_before in
    if v < cur && not (Atomic.compare_and_set stop_before cur v) then
      lower_stop_before v
  in
  let worker_loop w =
    let state = init ~worker:w in
    let acc = { results = []; execs = 0; steps = 0 } in
    locals.(w) <- Some acc;
    let flush () = match on_batch with Some f -> f state | None -> () in
    let run_one g =
      (* Re-checked per iteration so a bound lowered mid-batch skips the
         claimed iterations above it (they cannot win) while iterations
         below it still run (they can). *)
      if g < Atomic.get stop_before then begin
        let r, steps = body state ~iteration:g in
        acc.execs <- acc.execs + 1;
        acc.steps <- acc.steps + steps;
        match r with
        | None -> ()
        | Some v ->
          acc.results <- (v, g) :: acc.results;
          if stop_on_result then lower_stop_before g
      end
    in
    (match claim with
     | Batch size ->
       (* Claim [size] consecutive global iterations per shared-counter
          bump; the wall clock is polled once per claimed batch. *)
       let running = ref true in
       while !running do
         let base = Atomic.fetch_and_add next size in
         if base >= max_iterations || base >= Atomic.get stop_before then
           running := false
         else if past_deadline () then begin
           Atomic.set timed_out true;
           running := false
         end
         else begin
           let stop = min (base + size) max_iterations in
           for g = base to stop - 1 do
             run_one g
           done;
           flush ()
         end
       done
     | Stride ->
       (* Legacy static assignment: worker [w] of [n] runs w, w+n, w+2n...
          Kept for the merge-equivalence tests; the schedule {e set} is the
          same as under batch claiming for every worker count. *)
       let g = ref w in
       let running = ref true in
       while !running do
         if !g >= max_iterations || !g >= Atomic.get stop_before then
           running := false
         else if past_deadline () then begin
           Atomic.set timed_out true;
           running := false
         end
         else begin
           run_one !g;
           g := !g + workers
         end
       done);
    flush ()
  in
  let guarded w () =
    try worker_loop w
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.protect mu (fun () ->
          if !failure = None then failure := Some (e, bt));
      Atomic.set stop_before 0
  in
  let domains =
    List.init (workers - 1) (fun i -> Domain.spawn (guarded (i + 1)))
  in
  guarded 0 ();
  List.iter Domain.join domains;
  (match !failure with
   | Some (e, bt) -> Printexc.raise_with_backtrace e bt
   | None -> ());
  let results, execs, steps =
    Array.fold_left
      (fun (rs, e, s) local ->
        match local with
        | None -> (rs, e, s)
        | Some l -> (List.rev_append l.results rs, e + l.execs, s + l.steps))
      ([], 0, 0) locals
  in
  let collected = List.sort (fun (_, g1) (_, g2) -> compare g1 g2) results in
  ( collected,
    {
      executions = execs;
      total_steps = steps;
      elapsed = Unix.gettimeofday () -. started;
      timed_out = Atomic.get timed_out;
    } )

let hunt ?claim ~workers ~max_iterations ?max_seconds ~init ?on_batch ~body ()
    =
  let collected, stats =
    drive ?claim ~workers ~max_iterations ?max_seconds ~stop_on_result:true
      ~init ?on_batch ~body ()
  in
  let winner = match collected with [] -> None | best :: _ -> Some best in
  (winner, stats)

let sweep ?claim ~workers ~max_iterations ?max_seconds ~init ?on_batch ~body
    () =
  drive ?claim ~workers ~max_iterations ?max_seconds ~stop_on_result:false
    ~init ?on_batch ~body ()
