type stats = {
  executions : int;
  total_steps : int;
  elapsed : float;
  timed_out : bool;
}

let resolve n =
  if n < 0 then invalid_arg "Worker_pool.resolve: negative worker count"
  else if n = 0 then Domain.recommended_domain_count ()
  else n

let drive ~workers ~max_iterations ?max_seconds ~stop_on_result ~init ~body ()
    =
  let workers = max 1 (min (resolve workers) (max 1 max_iterations)) in
  let started = Unix.gettimeofday () in
  (* Early-stop bound: workers keep running iterations strictly below it.
     A plain boolean stop flag is not enough for a deterministic winner —
     when worker A reports at global iteration 7, worker B may not yet
     have {e started} iteration 3, and a boolean would make B exit without
     running it, crowning 7 as a non-minimal "first" bug that varies with
     the worker count and thread timing. Min-updating the bound instead
     lets every iteration below the best known result complete (and
     possibly lower the bound further), so the winner is the lowest
     reporting iteration at every worker count. *)
  let stop_before = Atomic.make max_int in
  let timed_out = Atomic.make false in
  let executions = Atomic.make 0 in
  let total_steps = Atomic.make 0 in
  let mu = Mutex.create () in
  let results = ref [] in
  let failure : (exn * Printexc.raw_backtrace) option ref = ref None in
  let out_of_time () =
    match max_seconds with
    | Some budget -> Unix.gettimeofday () -. started >= budget
    | None -> false
  in
  let rec lower_stop_before v =
    let cur = Atomic.get stop_before in
    if v < cur && not (Atomic.compare_and_set stop_before cur v) then
      lower_stop_before v
  in
  let worker_loop w =
    let state = init ~worker:w in
    let g = ref w in
    let running = ref true in
    while !running do
      if !g >= max_iterations || !g >= Atomic.get stop_before then
        running := false
      else if out_of_time () then begin
        Atomic.set timed_out true;
        running := false
      end
      else begin
        let r, steps = body state ~iteration:!g in
        ignore (Atomic.fetch_and_add executions 1);
        ignore (Atomic.fetch_and_add total_steps steps);
        (match r with
         | None -> ()
         | Some v ->
           Mutex.protect mu (fun () -> results := (v, !g) :: !results);
           if stop_on_result then lower_stop_before !g);
        g := !g + workers
      end
    done
  in
  let guarded w () =
    try worker_loop w
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.protect mu (fun () ->
          if !failure = None then failure := Some (e, bt));
      Atomic.set stop_before 0
  in
  let domains =
    List.init (workers - 1) (fun i -> Domain.spawn (guarded (i + 1)))
  in
  guarded 0 ();
  List.iter Domain.join domains;
  (match !failure with
   | Some (e, bt) -> Printexc.raise_with_backtrace e bt
   | None -> ());
  let collected = List.sort (fun (_, g1) (_, g2) -> compare g1 g2) !results in
  ( collected,
    {
      executions = Atomic.get executions;
      total_steps = Atomic.get total_steps;
      elapsed = Unix.gettimeofday () -. started;
      timed_out = Atomic.get timed_out;
    } )

let hunt ~workers ~max_iterations ?max_seconds ~init ~body () =
  let collected, stats =
    drive ~workers ~max_iterations ?max_seconds ~stop_on_result:true ~init
      ~body ()
  in
  let winner = match collected with [] -> None | best :: _ -> Some best in
  (winner, stats)

let sweep ~workers ~max_iterations ?max_seconds ~init ~body () =
  drive ~workers ~max_iterations ?max_seconds ~stop_on_result:false ~init
    ~body ()
