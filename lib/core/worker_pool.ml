type stats = {
  executions : int;
  total_steps : int;
  elapsed : float;
}

let resolve n =
  if n < 0 then invalid_arg "Worker_pool.resolve: negative worker count"
  else if n = 0 then Domain.recommended_domain_count ()
  else n

let drive ~workers ~max_iterations ?max_seconds ~stop_on_result ~init ~body ()
    =
  let workers = max 1 (min (resolve workers) (max 1 max_iterations)) in
  let started = Unix.gettimeofday () in
  let stop = Atomic.make false in
  let executions = Atomic.make 0 in
  let total_steps = Atomic.make 0 in
  let mu = Mutex.create () in
  let results = ref [] in
  let failure : (exn * Printexc.raw_backtrace) option ref = ref None in
  let out_of_time () =
    match max_seconds with
    | Some budget -> Unix.gettimeofday () -. started >= budget
    | None -> false
  in
  let worker_loop w =
    let state = init ~worker:w in
    let g = ref w in
    while
      !g < max_iterations && (not (Atomic.get stop)) && not (out_of_time ())
    do
      let r, steps = body state ~iteration:!g in
      ignore (Atomic.fetch_and_add executions 1);
      ignore (Atomic.fetch_and_add total_steps steps);
      (match r with
       | None -> ()
       | Some v ->
         Mutex.protect mu (fun () -> results := (v, !g) :: !results);
         if stop_on_result then Atomic.set stop true);
      g := !g + workers
    done
  in
  let guarded w () =
    try worker_loop w
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.protect mu (fun () ->
          if !failure = None then failure := Some (e, bt));
      Atomic.set stop true
  in
  let domains =
    List.init (workers - 1) (fun i -> Domain.spawn (guarded (i + 1)))
  in
  guarded 0 ();
  List.iter Domain.join domains;
  (match !failure with
   | Some (e, bt) -> Printexc.raise_with_backtrace e bt
   | None -> ());
  let collected = List.sort (fun (_, g1) (_, g2) -> compare g1 g2) !results in
  ( collected,
    {
      executions = Atomic.get executions;
      total_steps = Atomic.get total_steps;
      elapsed = Unix.gettimeofday () -. started;
    } )

let hunt ~workers ~max_iterations ?max_seconds ~init ~body () =
  let collected, stats =
    drive ~workers ~max_iterations ?max_seconds ~stop_on_result:true ~init
      ~body ()
  in
  let winner = match collected with [] -> None | best :: _ -> Some best in
  (winner, stats)

let sweep ~workers ~max_iterations ?max_seconds ~init ~body () =
  drive ~workers ~max_iterations ?max_seconds ~stop_on_result:false ~init
    ~body ()
