(** FIFO event inbox with filtered dequeue.

    Machines dequeue in FIFO order; a filtered receive removes the first
    event satisfying the predicate and leaves the rest in order (P#'s
    [Receive] semantics). *)

type t

val create : unit -> t

(** [push ?sender ?stamp t e] enqueues [e]. [sender] is the creation index
    of the sending machine (default [-1], unknown); it tags the entry for
    coverage attribution. [stamp] is the happens-before message stamp
    ({!Hb.on_send}; default [-1], untracked). Neither tag affects delivery
    order or filtering. *)
val push : ?sender:int -> ?stamp:int -> t -> Event.t -> unit

val is_empty : t -> bool

(** O(1): the inbox maintains a count. *)
val length : t -> int

(** First event satisfying [pred], removed from the inbox. *)
val pop_first : t -> (Event.t -> bool) -> Event.t option

(** First event satisfying [pred], left in place — what a filtered receive
    {e would} dequeue. Scenario order clauses peek at the imminent dequeue
    without perturbing the queue. *)
val peek_first : t -> (Event.t -> bool) -> Event.t option

(** Like {!pop_first} but also returns the sender and stamp tags the event
    was pushed with. *)
val pop_entry : t -> (Event.t -> bool) -> (Event.t * int * int) option

(** Does any queued event satisfy [pred]? *)
val exists : t -> (Event.t -> bool) -> bool

(** Queued events, front first (for diagnostics). *)
val to_list : t -> Event.t list

val clear : t -> unit
