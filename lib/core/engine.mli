(** The systematic testing engine (paper §2).

    Serializes the system-under-test and repeatedly executes it from start
    to completion, each time exploring a potentially different set of
    nondeterministic choices, until it reaches the execution budget or hits
    a safety or liveness violation. A found bug is witnessed by a full
    schedule trace that {!replay} reproduces deterministically.

    With coverage enabled the engine also answers {e what} those executions
    explored: every execution records a {!Coverage} map (machine-state
    visits, delivered event types, transition triples, branch outcomes and
    a schedule fingerprint) which is merged — domain-safely when exploring
    across {!Worker_pool} workers — into a per-run accumulator returned in
    {!stats}. *)

type strategy_spec =
  | Random
  | Pct of { change_points : int }
      (** randomized priority-based scheduler; the paper uses 2 change
          points per execution *)
  | Dfs of { max_depth : int; int_cap : int }
  | Round_robin
  | Delay_bounded of { delays : int }
      (** randomized delay-bounded scheduling (the paper's [11]) *)
  | Replay_trace of Trace.t
  | Fuzz of { corpus_cap : int }
      (** coverage-feedback-directed schedule fuzzing ({!Fuzz_strategy}):
          keeps a corpus (bounded by [corpus_cap]) of schedules that found
          new coverage and mutates them (splice / truncate / re-randomize
          suffix). Stateful, hence sequential-only. *)

(** Happens-before instrumentation for an exploration run. *)
type reduction =
  | No_reduction  (** no tracking: the zero-cost default *)
  | Hb_track
      (** record each execution's happens-before relation ({!Hb}) and file
          its canonical partial-order fingerprint into coverage's [hb]
          family — measurement only, the schedule explored is untouched *)
  | Sleep_sets
      (** [Hb_track] plus sleep-set partial-order reduction: the sequential
          base strategy is wrapped in {!Sleep_strategy}, which prunes
          enabled machines whose next step provably commutes with a
          just-skipped alternative, steering the budget toward distinct
          Mazurkiewicz traces. Composes with any sequential strategy;
          [Dfs] and [Replay_trace] keep their own schedule discipline and
          are downgraded to [Hb_track] with a notice. *)

type config = {
  strategy : strategy_spec;
  seed : int64;
  max_executions : int;
  max_seconds : float option;
      (** wall-clock budget; the paper's engine stops at "a user-supplied
          bound (e.g. in number of executions or time)" (§2) *)
  max_steps : int;  (** liveness bound: longer executions count as infinite *)
  liveness_grace : int option;
      (** minimum continuous hot span at the bound (default [max_steps/2]) *)
  deadlock_is_bug : bool;
  collect_log_on_bug : bool;
      (** re-execute the buggy schedule to capture a readable trace log *)
  workers : int;
      (** number of OCaml domains exploring the execution budget in
          parallel: [1] (the default) is fully sequential, [0] means one
          worker per available core. Parallel exploration covers exactly
          the same set of schedules as sequential exploration — execution
          seeds derive from the global iteration index, not from the
          worker — so a bug found with any worker count is found with
          every other (only wall-clock time and, when several distinct
          buggy schedules exist, which one is reported first can differ).
          Stateful strategies (DFS, trace replay, fuzz) are not
          parallel-safe; the engine logs a notice and falls back to
          sequential. *)
  collect_coverage : bool;
      (** record per-execution coverage maps and return the merged map in
          [stats.coverage]. Coverage is also collected implicitly when
          [coverage_plateau] is set or the strategy is feedback-directed
          (fuzz). *)
  coverage_plateau : int option;
      (** stop after this many consecutive executions that uncovered no new
          coverage point (state, event type, triple or branch outcome —
          raw schedule and hb fingerprints never count, see
          {!Coverage.absorb}); [stats.plateaued] reports the early stop.
          In parallel mode the consecutive count is a cross-worker
          approximation. *)
  plateau_family : Coverage.family_kind option;
      (** key the plateau counter on a single coverage family ([None] by
          default: any core-family novelty counts as gain). With
          [Some Hb], for instance, only new canonical partial orders reset
          the counter — the right bound for long fuzz campaigns, which
          keep trickling coarse novelty long after the interleaving
          structure has been exhausted. Only meaningful together with
          [coverage_plateau]. *)
  faults : Fault.spec;
      (** fault-injection spec handed to every execution's runtime
          ({!Fault.none} by default — zero draws, schedules untouched).
          Because every injected fault is an ordinary recorded choice,
          {!replay} of a fault-found trace — which receives the same spec
          through this config — reproduces the identical faults, and the
          shrinker minimizes fault schedules like any other. *)
  reduce : reduction;
      (** happens-before tracking / sleep-set reduction
          ([No_reduction] by default — strictly opt-in: the hot path makes
          zero extra draws and golden digests are byte-identical, pinned
          by [test/test_golden.ml]). Tracking is sequential-only: with
          [workers <> 1] the engine logs a notice and explores
          sequentially. *)
  clock : Clock.config option;
      (** virtual-time clock config handed to every execution's runtime
          ([None] by default — zero draws, schedules untouched; see
          {!Runtime.config}[.clock]). Clock advances are a deterministic
          function of the schedule, so {!replay} and the shrinker — which
          receive the same config — reproduce identical timestamps. *)
  start_iteration : int;
      (** first global iteration index of the run ([0] by default). A
          campaign resume sets it to the number of executions already
          spent, so seeded strategies — whose execution seeds are a pure
          function of the global iteration — explore {e new} schedules
          instead of redoing the previous invocation's. The budget is
          still [max_executions] executions: the run covers iterations
          [start_iteration .. start_iteration + max_executions - 1]. *)
  prior_coverage : Coverage.t option;
      (** coverage carried over from previous invocations ([None] by
          default). When set, it seeds the run's accumulator before the
          first execution, so novelty feedback and the plateau bound are
          judged relative to everything already explored, and
          [stats.coverage] returns the {e cumulative} map (prior
          executions included). Implies coverage collection. *)
  fuzz_initial : Fuzz_strategy.corpus_entry list;
      (** pre-seeded corpus for the [Fuzz] strategy ([[]] by default);
          a campaign resume passes the persisted corpus — energy and
          novelty tags included — here. Ignored by other strategies. *)
  fuzz_exchange : Fuzz_strategy.Exchange.t option;
      (** cross-worker novelty hub for the [Fuzz] strategy ([None] by
          default). When set, fuzz becomes parallel-safe: each worker owns
          a private corpus and publishes/pulls coverage-novel schedules
          through the hub off the per-execution path. The caller keeps the
          hub and may {!Fuzz_strategy.Exchange.snapshot} it after the run
          (campaign persistence) or read its push accounting with
          {!Fuzz_strategy.Exchange.stats}. Without a hub, fuzz keeps its
          historical sequential-fallback behavior under [workers]. *)
  fuzz_energy : bool;
      (** energy scheduling for the [Fuzz] strategy ([false] by default —
          the v1 uniform corpus pick, draw-identical to before). When on,
          corpus entries that discovered new partial orders or fault
          points get proportionally more mutation attempts, and a new
          canonical partial order alone admits a trace to the corpus
          (see {!Fuzz_strategy.factory}). *)
  fuzz_mutate_faults : bool;
      (** fault-schedule mutation for the [Fuzz] strategy ([false] by
          default). When on, mutants may perturb the recorded fault draws
          (crash instants, delay latencies, drop/dup booleans) while
          keeping the scheduling spine intact. *)
  scenario : Scenario.t option;
      (** scenario constraint ([None] by default — zero draws, zero
          observation, schedules untouched). When set, every execution
          gets a fresh {!Scenario.Obs} observer in its runtime config and
          the strategy is wrapped in {!Scenario.wrap}, which prunes
          scheduling picks and forces fault draws so admitted schedules
          satisfy the scenario's clauses — the base strategy (random, PCT,
          delay-bounded, fuzz) still drives the search inside the
          constraint, and parallel safety is inherited. [Dfs] and
          [Replay_trace] keep their own schedule discipline: the observer
          is installed (deliveries land in the journal for conformance
          checking) but the strategy is not wrapped, with a notice.
          {!replay} and the shrinker likewise observe without wrapping —
          forced draws are ordinary recorded choices, so witnesses replay
          and shrink as always. The spec in [faults] must arm what the
          clauses need: pass it through {!Scenario.arm} first. *)
  scenario_audit : (Scenario.Obs.t -> unit) option;
      (** called once per execution with its fully-populated observer
          (journal, wedge count, violations) after the runtime returns —
          the conformance-test hook. In parallel runs the callback fires
          on worker domains and must be thread-safe. [None] by default;
          only meaningful together with [scenario]. *)
}

(** Random strategy, seed 0, 10,000 executions, 5,000-step bound, one
    worker, no coverage, no faults. *)
val default_config : config

type stats = {
  executions : int;  (** executions performed (including the buggy one) *)
  elapsed : float;  (** wall-clock seconds *)
  total_steps : int;
  search_exhausted : bool;  (** strategy ran out of schedules (DFS) *)
  coverage : Coverage.t option;
      (** merged coverage of every execution of the run; [Some] whenever
          the run collected coverage ([collect_coverage], a plateau bound,
          or a feedback-directed strategy) *)
  plateaued : bool;  (** run stopped early on the coverage plateau bound *)
  timed_out : bool;
      (** run stopped at [max_seconds] — between executions or {e inside}
          one: the engine threads an absolute deadline into the runtime
          step loop, so a single long execution aborts at the bound
          instead of overshooting it arbitrarily *)
}

type outcome =
  | Bug_found of Error.report * stats
  | No_bug of stats

(** Renders the outcome with self-describing run statistics — executions,
    total steps, elapsed time, and coverage totals when collected. *)
val pp_outcome : Format.formatter -> outcome -> unit

(** [run config ~monitors body] iterates executions of the harness [body]
    (the root machine). [monitors] is called before each execution so every
    run gets fresh monitor state. With [config.workers] other than [1] and
    a parallel-safe strategy, executions fan out across domains
    ({!Worker_pool}); the first bug raises an atomic stop flag and
    in-flight workers exit at their next iteration boundary. *)
val run :
  ?monitors:(unit -> Monitor.t list) ->
  config ->
  (Runtime.ctx -> unit) ->
  outcome

(** [explore config ~monitors body] runs the whole execution budget with
    coverage on and {e without} stopping at bugs, so coverage is
    comparable across strategies at a fixed budget (a strategy that trips
    a bug early is not charged fewer executions). Honors [max_seconds]
    and [coverage_plateau]; [stats.coverage] is always [Some]. *)
val explore :
  ?monitors:(unit -> Monitor.t list) ->
  config ->
  (Runtime.ctx -> unit) ->
  stats

(** [replay config ~monitors trace body] re-executes one recorded schedule
    (with [collect_log] on) and returns the raw execution result. *)
val replay :
  ?monitors:(unit -> Monitor.t list) ->
  config ->
  Trace.t ->
  (Runtime.ctx -> unit) ->
  Runtime.exec_result

(** Survey mode: run the whole execution budget without stopping at the
    first bug, deduplicating violations by kind. Returns, in order of first
    discovery, each distinct bug's first report and the number of
    executions that reproduced it — useful for judging how many distinct
    defects a harness exposes and how frequently each one fires. Honors
    [config.max_seconds] (partial results at the deadline) and
    [config.workers] like {!run}. *)
val survey :
  ?monitors:(unit -> Monitor.t list) ->
  config ->
  (Runtime.ctx -> unit) ->
  (Error.report * int) list

(** Number of nondeterministic choices in the buggy execution, the paper's
    #NDC column; [None] if no bug was found. *)
val ndc : outcome -> int option
