type Event.t += Fault_tick

(* Modeled like Timer: a self-message loop whose every decision is a
   recorded strategy draw, so crash schedules replay and shrink like any
   other nondeterminism. The crash instant is drawn uniformly over the
   driver's lifetime (a per-tick coin would concentrate every crash in the
   first few turns, never reaching machines the harness creates later);
   when the instant arrives, one crashable machine is chosen and crashed.
   The driver retires once it has crashed [max_crashes] machines, spent
   [max_ticks] turns, or the shared fault budget ran dry. *)
let body ~max_crashes ~max_ticks ctx =
  Registry.register_machine ~machine:"FaultDriver" ~kind:Registry.Machine
    ~states:1 ~handlers:1;
  Runtime.send ctx (Runtime.self ctx) Fault_tick;
  let crashes = ref 0 in
  let ticks = ref 0 in
  let crash_at = ref (1 + Runtime.nondet_int ctx max_ticks) in
  let rec loop () =
    match Runtime.receive ctx with
    | Fault_tick ->
      incr ticks;
      if
        !crashes >= max_crashes || !ticks > max_ticks
        || Runtime.fault_budget_left ctx <= 0
      then Runtime.halt ctx
      else begin
        (if !ticks >= !crash_at then
           match Runtime.crashable_machines ctx with
           | [] -> ()  (* no victim yet: strike at the next tick instead *)
           | victims ->
             Runtime.crash ctx (Runtime.choose ctx victims);
             incr crashes;
             crash_at := !ticks + 1 + Runtime.nondet_int ctx max_ticks);
        Runtime.send ctx (Runtime.self ctx) Fault_tick;
        loop ()
      end
    | e ->
      raise
        (Error.Bug
           (Error.Unhandled_event
              {
                machine = Id.to_string (Runtime.self ctx);
                state = "-";
                event = Event.to_string e;
              }))
  in
  loop ()

let install ?(max_crashes = 1) ?(max_ticks = 40) ctx =
  if max_crashes <= 0 then
    invalid_arg "Fault_driver.install: max_crashes must be positive";
  if max_ticks <= 0 then
    invalid_arg "Fault_driver.install: max_ticks must be positive";
  let spec = Runtime.fault_spec ctx in
  if spec.Fault.crash && spec.Fault.budget > 0 then
    ignore
      (Runtime.create ctx ~name:"FaultDriver" (body ~max_crashes ~max_ticks))
