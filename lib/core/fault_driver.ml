type Event.t += Fault_tick

(* Modeled like Timer: a self-message loop whose every decision is a
   recorded strategy draw, so crash schedules replay and shrink like any
   other nondeterminism. The crash instant is drawn uniformly over the
   driver's lifetime (a per-tick coin would concentrate every crash in the
   first few turns, never reaching machines the harness creates later);
   when the instant arrives, one crashable machine is chosen and crashed.
   The driver retires once it has crashed [max_crashes] machines, spent
   [max_ticks] turns, or the shared fault budget ran dry. *)
let body ~max_crashes ~max_ticks ctx =
  Registry.register_machine ~machine:"FaultDriver" ~kind:Registry.Machine
    ~states:1 ~handlers:1;
  Runtime.send ctx (Runtime.self ctx) Fault_tick;
  (* Scenario-steered mode: instead of drawing a crash instant up front,
     every tick marks the candidate victims ({!Runtime.scenario_crash_tick})
     and draws one coin, which the scenario wrapper forces — true exactly
     when an armed [crash] clause's trigger has fired and a victim matches.
     Both the coin and the victim pick are ordinary recorded draws, so
     scenario crash schedules replay and shrink like random ones (replay
     installs the same observer, so this branch is taken consistently). *)
  let steered = Runtime.scenario_crash_steering ctx in
  let crashes = ref 0 in
  let ticks = ref 0 in
  let crash_at =
    ref (if steered then 0 else 1 + Runtime.nondet_int ctx max_ticks)
  in
  let rec loop () =
    match Runtime.receive ctx with
    | Fault_tick ->
      incr ticks;
      if
        !crashes >= max_crashes || !ticks > max_ticks
        || Runtime.fault_budget_left ctx <= 0
      then Runtime.halt ctx
      else begin
        (if steered then begin
           match Runtime.crashable_machines ctx with
           | [] -> ()  (* no victim yet: mark again at the next tick *)
           | victims ->
             Runtime.scenario_crash_tick ctx
               ~victims:(List.map (Runtime.name_of ctx) victims);
             if Runtime.nondet ctx then begin
               Runtime.crash ctx (Runtime.choose ctx victims);
               incr crashes
             end
         end
         else if !ticks >= !crash_at then
           match Runtime.crashable_machines ctx with
           | [] -> ()  (* no victim yet: strike at the next tick instead *)
           | victims ->
             Runtime.crash ctx (Runtime.choose ctx victims);
             incr crashes;
             crash_at := !ticks + 1 + Runtime.nondet_int ctx max_ticks);
        Runtime.send ctx (Runtime.self ctx) Fault_tick;
        loop ()
      end
    | e ->
      raise
        (Error.Bug
           (Error.Unhandled_event
              {
                machine = Id.to_string (Runtime.self ctx);
                state = "-";
                event = Event.to_string e;
              }))
  in
  loop ()

let install ?(max_crashes = 1) ?(max_ticks = 40) ctx =
  if max_crashes <= 0 then
    invalid_arg "Fault_driver.install: max_crashes must be positive";
  if max_ticks <= 0 then
    invalid_arg "Fault_driver.install: max_ticks must be positive";
  let spec = Runtime.fault_spec ctx in
  if spec.Fault.crash && spec.Fault.budget > 0 then begin
    (* Under a crash-steering scenario, widen the allowance so every crash
       clause fits (rolling restarts need several) and give late triggers
       room: harness defaults tuned for one random crash retire the driver
       long before e.g. a quiescence-gated clause can fire. *)
    let max_crashes, max_ticks =
      if Runtime.scenario_crash_steering ctx then
        (max max_crashes (Runtime.scenario_crash_slots ctx), max max_ticks 160)
      else (max_crashes, max_ticks)
    in
    ignore
      (Runtime.create ctx ~name:"FaultDriver" (body ~max_crashes ~max_ticks))
  end
