(* Classic two-list deque: [front] is the head in order, [back] is the tail
   reversed, [len] counts both so [length]/[is_empty] are O(1). Filtered
   removal rebuilds at most one of the lists. Each entry carries the
   creation index of the sending machine (-1 when unknown) so the coverage
   layer can attribute deliveries, and the happens-before message stamp
   (-1 when hb tracking is off) so the dequeue can merge the sender's
   vector clock — neither tag changes the event type. *)

type entry = Event.t * int * int

type t = { mutable front : entry list; mutable back : entry list; mutable len : int }

let create () = { front = []; back = []; len = 0 }

let push ?(sender = -1) ?(stamp = -1) t e =
  t.back <- (e, sender, stamp) :: t.back;
  t.len <- t.len + 1

let normalize t =
  if t.front = [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let is_empty t = t.len = 0

let length t = t.len

let to_list t = List.map (fun (e, _, _) -> e) (t.front @ List.rev t.back)

let pop_entry t pred =
  normalize t;
  let rec remove acc = function
    | [] -> None
    | ((e, _, _) as entry) :: rest ->
      if pred e then Some (entry, List.rev_append acc rest)
      else remove (entry :: acc) rest
  in
  match remove [] t.front with
  | Some (entry, front') ->
    t.front <- front';
    t.len <- t.len - 1;
    Some entry
  | None ->
    (* Search [back] in FIFO order but leave it where it lives: removing
       from the reversed tail must not pay an O(|front|) append. *)
    (match remove [] (List.rev t.back) with
     | Some (entry, back_in_order) ->
       t.back <- List.rev back_in_order;
       t.len <- t.len - 1;
       Some entry
     | None -> None)

let pop_first t pred =
  Option.map (fun (e, _, _) -> e) (pop_entry t pred)

let peek_first t pred =
  let rec find = function
    | [] -> None
    | (e, _, _) :: rest -> if pred e then Some e else find rest
  in
  match find t.front with Some _ as r -> r | None -> find (List.rev t.back)

let exists t pred =
  List.exists (fun (e, _, _) -> pred e) t.front
  || List.exists (fun (e, _, _) -> pred e) t.back

let clear t =
  t.front <- [];
  t.back <- [];
  t.len <- 0
