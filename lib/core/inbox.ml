(* Classic two-list deque: [front] is the head in order, [back] is the tail
   reversed. Filtered removal rebuilds at most once. Each entry carries the
   creation index of the sending machine (-1 when unknown) so the coverage
   layer can attribute deliveries without changing the event type. *)

type entry = Event.t * int

type t = { mutable front : entry list; mutable back : entry list }

let create () = { front = []; back = [] }

let push ?(sender = -1) t e = t.back <- (e, sender) :: t.back

let normalize t =
  if t.front = [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let is_empty t = t.front = [] && t.back = []

let length t = List.length t.front + List.length t.back

let to_list t = List.map fst (t.front @ List.rev t.back)

let pop_entry t pred =
  normalize t;
  let rec remove acc = function
    | [] -> None
    | ((e, _) as entry) :: rest ->
      if pred e then Some (entry, List.rev_append acc rest)
      else remove (entry :: acc) rest
  in
  match remove [] t.front with
  | Some (entry, front') ->
    t.front <- front';
    Some entry
  | None ->
    (match remove [] (List.rev t.back) with
     | Some (entry, back_in_order) ->
       t.front <- t.front @ back_in_order;
       t.back <- [];
       Some entry
     | None -> None)

let pop_first t pred = Option.map fst (pop_entry t pred)

let exists t pred =
  List.exists (fun (e, _) -> pred e) t.front
  || List.exists (fun (e, _) -> pred e) t.back

let clear t =
  t.front <- [];
  t.back <- []
