(* Declarative scenarios compiled to a constraining strategy wrapper.

   The same small interpreter — latching triggers, from/until windows,
   clause states — backs both halves of the subsystem: the *enforcement*
   side (runtime hooks feed facts in, the wrapper prunes the enabled set
   and forces fault draws) and the *checking* side ([check] re-runs the
   interpreter over the recorded journal and validates every clause
   obligation with none of the enforcement code in the loop). Keeping one
   interpreter makes the conformance battery meaningful: agreement is
   about the fact stream, not about sharing the buggy code path. *)

(* ---------- patterns ---------- *)

type pat = { p_prefix : string; p_glob : bool }

let valid_pat_char c =
  (c >= 'A' && c <= 'Z')
  || (c >= 'a' && c <= 'z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let pat s =
  let n = String.length s in
  if n = 0 then invalid_arg "Scenario.pat: empty pattern"
  else if String.equal s "*" then { p_prefix = ""; p_glob = true }
  else begin
    let glob = s.[n - 1] = '*' in
    let body = if glob then String.sub s 0 (n - 1) else s in
    if String.length body = 0 then
      invalid_arg "Scenario.pat: empty pattern body";
    String.iter
      (fun c ->
        if not (valid_pat_char c) then
          invalid_arg (Printf.sprintf "Scenario.pat: bad character %C in %S" c s))
      body;
    { p_prefix = body; p_glob = glob }
  end

let pat_matches p s =
  if p.p_glob then String.starts_with ~prefix:p.p_prefix s
  else String.equal p.p_prefix s

let pat_to_string p = p.p_prefix ^ if p.p_glob then "*" else ""

let pat_opt s = try Some (pat s) with Invalid_argument _ -> None

(* state names share the pattern alphabet so the text form stays one-line *)
let valid_state s =
  String.length s > 0 && String.for_all valid_pat_char s

(* ---------- triggers ---------- *)

type trigger =
  | Start
  | At_step of int
  | At_time of int
  | Delivered of pat * int
  | Entered of pat * string
  | Quiet of pat
  | Crashed of pat

let start = Start

let at_step n =
  if n < 0 then invalid_arg "Scenario.at_step: negative step";
  At_step n

let at_time n =
  if n < 0 then invalid_arg "Scenario.at_time: negative time";
  At_time n

let delivered ?(count = 1) p =
  if count < 1 then invalid_arg "Scenario.delivered: count must be >= 1";
  Delivered (p, count)

let entered p state =
  if not (valid_state state) then
    invalid_arg (Printf.sprintf "Scenario.entered: bad state name %S" state);
  Entered (p, state)

let quiet p = Quiet p
let crashed p = Crashed p

let trigger_to_string = function
  | Start -> "start"
  | At_step n -> Printf.sprintf "step(%d)" n
  | At_time n -> Printf.sprintf "time(%d)" n
  | Delivered (p, 1) -> Printf.sprintf "delivered(%s)" (pat_to_string p)
  | Delivered (p, n) -> Printf.sprintf "delivered(%s x%d)" (pat_to_string p) n
  | Entered (p, s) -> Printf.sprintf "state(%s,%s)" (pat_to_string p) s
  | Quiet p -> Printf.sprintf "quiet(%s)" (pat_to_string p)
  | Crashed p -> Printf.sprintf "crashed(%s)" (pat_to_string p)

(* ---------- clauses ---------- *)

type window = { w_from : trigger; w_until : trigger }

type clause =
  | Order of pat * pat
  | Crash_when of pat * trigger
  | Partition of pat * pat * window
  | Drop_link of pat * pat * window
  | Dup_link of pat * pat * window
  | Delay_link of pat * pat * int * window
  | Pause of pat * window
  | Focus of pat * window

let window ~from_ ~until_ =
  (match until_ with
   | Start -> invalid_arg "Scenario: an until trigger of start never opens the window"
   | _ -> ());
  { w_from = from_; w_until = until_ }

let order a b =
  if pat_to_string a = pat_to_string b then
    invalid_arg "Scenario.order: identical patterns would deadlock";
  Order (a, b)

let crash_when v ~after = Crash_when (v, after)

let partition a b ~from_ ~until_ = Partition (a, b, window ~from_ ~until_)
let drop_link ~src ~dst ~from_ ~until_ = Drop_link (src, dst, window ~from_ ~until_)
let dup_link ~src ~dst ~from_ ~until_ = Dup_link (src, dst, window ~from_ ~until_)

let delay_link ~src ~dst ~latency ~from_ ~until_ =
  if latency < 1 then invalid_arg "Scenario.delay_link: latency must be >= 1";
  Delay_link (src, dst, latency, window ~from_ ~until_)

let pause m ~from_ ~until_ = Pause (m, window ~from_ ~until_)
let focus m ~from_ ~until_ = Focus (m, window ~from_ ~until_)

let window_to_string w =
  Printf.sprintf "from %s until %s" (trigger_to_string w.w_from)
    (trigger_to_string w.w_until)

let clause_to_string = function
  | Order (a, b) ->
    Printf.sprintf "order %s before %s" (pat_to_string a) (pat_to_string b)
  | Crash_when (v, t) ->
    Printf.sprintf "crash %s after %s" (pat_to_string v) (trigger_to_string t)
  | Partition (a, b, w) ->
    Printf.sprintf "partition %s|%s %s" (pat_to_string a) (pat_to_string b)
      (window_to_string w)
  | Drop_link (s, d, w) ->
    Printf.sprintf "drop %s->%s %s" (pat_to_string s) (pat_to_string d)
      (window_to_string w)
  | Dup_link (s, d, w) ->
    Printf.sprintf "dup %s->%s %s" (pat_to_string s) (pat_to_string d)
      (window_to_string w)
  | Delay_link (s, d, lat, w) ->
    Printf.sprintf "delay %s->%s lat=%d %s" (pat_to_string s) (pat_to_string d)
      lat (window_to_string w)
  | Pause (m, w) ->
    Printf.sprintf "pause %s %s" (pat_to_string m) (window_to_string w)
  | Focus (m, w) ->
    Printf.sprintf "focus %s %s" (pat_to_string m) (window_to_string w)

type t = clause list

let clauses t = t

let make cs =
  if cs = [] then invalid_arg "Scenario.make: empty scenario";
  let rec dup_check seen = function
    | [] -> ()
    | c :: rest ->
      let s = clause_to_string c in
      if List.mem s seen then
        invalid_arg (Printf.sprintf "Scenario.make: duplicate clause %S" s);
      dup_check (s :: seen) rest
  in
  dup_check [] cs;
  cs

let to_string t =
  String.concat "" (List.map (fun c -> clause_to_string c ^ "\n") t)

(* ---------- strict parser ---------- *)

(* find the first occurrence of [sub] in [s]; split around it *)
let cut sub s =
  let n = String.length s and k = String.length sub in
  let rec go i =
    if i + k > n then None
    else if String.equal (String.sub s i k) sub then
      Some (String.sub s 0 i, String.sub s (i + k) (n - i - k))
    else go (i + 1)
  in
  go 0

(* canonical non-negative integer: digits only, no leading zero *)
let parse_int s =
  let n = String.length s in
  if n = 0 then None
  else if not (String.for_all (fun c -> c >= '0' && c <= '9') s) then None
  else if n > 1 && s.[0] = '0' then None
  else int_of_string_opt s

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_pat s =
  match pat_opt s with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "bad pattern %S" s)

let paren_arg ~keyword s =
  let k = keyword ^ "(" in
  if String.starts_with ~prefix:k s && String.length s > String.length k
     && s.[String.length s - 1] = ')'
  then Some (String.sub s (String.length k) (String.length s - String.length k - 1))
  else None

let parse_trigger s =
  if String.equal s "start" then Ok Start
  else
    match paren_arg ~keyword:"step" s with
    | Some body -> (
        match parse_int body with
        | Some n -> Ok (At_step n)
        | None -> Error (Printf.sprintf "bad step trigger %S" s))
    | None ->
      match paren_arg ~keyword:"time" s with
      | Some body -> (
          match parse_int body with
          | Some n -> Ok (At_time n)
          | None -> Error (Printf.sprintf "bad time trigger %S" s))
      | None ->
        match paren_arg ~keyword:"delivered" s with
        | Some body -> (
            match cut " x" body with
            | None ->
              let* p = parse_pat body in
              Ok (Delivered (p, 1))
            | Some (pp, cc) -> (
                let* p = parse_pat pp in
                match parse_int cc with
                | Some n when n >= 2 -> Ok (Delivered (p, n))
                | _ -> Error (Printf.sprintf "bad delivery count in %S" s)))
        | None ->
          match paren_arg ~keyword:"state" s with
          | Some body -> (
              match cut "," body with
              | Some (mp, st) when valid_state st ->
                let* p = parse_pat mp in
                Ok (Entered (p, st))
              | _ -> Error (Printf.sprintf "bad state trigger %S" s))
          | None ->
            match paren_arg ~keyword:"quiet" s with
            | Some body ->
              let* p = parse_pat body in
              Ok (Quiet p)
            | None ->
              match paren_arg ~keyword:"crashed" s with
              | Some body ->
                let* p = parse_pat body in
                Ok (Crashed p)
              | None -> Error (Printf.sprintf "unknown trigger %S" s)

let parse_window s =
  if not (String.starts_with ~prefix:"from " s) then
    Error (Printf.sprintf "expected window, got %S" s)
  else
    let rest = String.sub s 5 (String.length s - 5) in
    match cut " until " rest with
    | None -> Error (Printf.sprintf "window missing until: %S" s)
    | Some (f, u) ->
      let* wf = parse_trigger f in
      let* wu = parse_trigger u in
      (try Ok (window ~from_:wf ~until_:wu)
       with Invalid_argument m -> Error m)

let parse_link s =
  match cut "->" s with
  | None -> Error (Printf.sprintf "expected link SRC->DST, got %S" s)
  | Some (a, b) ->
    let* src = parse_pat a in
    let* dst = parse_pat b in
    Ok (src, dst)

let parse_clause line =
  let result =
    match cut " " line with
    | None -> Error (Printf.sprintf "unparseable clause %S" line)
    | Some (kw, rest) -> (
        match kw with
        | "order" -> (
            match cut " before " rest with
            | None -> Error (Printf.sprintf "order clause missing before: %S" line)
            | Some (a, b) ->
              let* pa = parse_pat a in
              let* pb = parse_pat b in
              (try Ok (order pa pb) with Invalid_argument m -> Error m))
        | "crash" -> (
            match cut " after " rest with
            | None -> Error (Printf.sprintf "crash clause missing after: %S" line)
            | Some (v, t) ->
              let* pv = parse_pat v in
              let* trig = parse_trigger t in
              Ok (crash_when pv ~after:trig))
        | "partition" -> (
            match cut " " rest with
            | None -> Error (Printf.sprintf "partition clause missing window: %S" line)
            | Some (sides, w) -> (
                match cut "|" sides with
                | None -> Error (Printf.sprintf "partition sides need A|B: %S" line)
                | Some (a, b) ->
                  let* pa = parse_pat a in
                  let* pb = parse_pat b in
                  let* win = parse_window w in
                  Ok (Partition (pa, pb, win))))
        | "drop" | "dup" -> (
            match cut " " rest with
            | None -> Error (Printf.sprintf "%s clause missing window: %S" kw line)
            | Some (lnk, w) ->
              let* src, dst = parse_link lnk in
              let* win = parse_window w in
              Ok
                (if String.equal kw "drop" then Drop_link (src, dst, win)
                 else Dup_link (src, dst, win)))
        | "delay" -> (
            match cut " lat=" rest with
            | None -> Error (Printf.sprintf "delay clause missing lat=: %S" line)
            | Some (lnk, rest2) -> (
                match cut " " rest2 with
                | None -> Error (Printf.sprintf "delay clause missing window: %S" line)
                | Some (latstr, w) -> (
                    let* src, dst = parse_link lnk in
                    let* win = parse_window w in
                    match parse_int latstr with
                    | Some lat when lat >= 1 -> Ok (Delay_link (src, dst, lat, win))
                    | _ -> Error (Printf.sprintf "bad latency in %S" line))))
        | "pause" | "focus" -> (
            match cut " " rest with
            | None -> Error (Printf.sprintf "%s clause missing window: %S" kw line)
            | Some (m, w) ->
              let* pm = parse_pat m in
              let* win = parse_window w in
              Ok (if String.equal kw "pause" then Pause (pm, win) else Focus (pm, win)))
        | _ -> Error (Printf.sprintf "unknown clause keyword %S" kw))
  in
  match result with
  | Error _ as e -> e
  | Ok c ->
    (* canonical-form guarantee: the parse must render back to the exact
       input line, so every accepted spelling is the canonical one *)
    if String.equal (clause_to_string c) line then Ok c
    else Error (Printf.sprintf "non-canonical clause spelling %S" line)

let of_string s =
  if String.length s = 0 then Error "empty scenario"
  else if s.[String.length s - 1] <> '\n' then
    Error "scenario must end with a newline"
  else begin
    let lines = String.split_on_char '\n' (String.sub s 0 (String.length s - 1)) in
    let rec go acc seen lineno = function
      | [] -> Ok (List.rev acc)
      | "" :: _ -> Error (Printf.sprintf "line %d: blank clause" lineno)
      | line :: rest -> (
          if List.mem line seen then
            Error (Printf.sprintf "line %d: duplicate clause %S" lineno line)
          else
            match parse_clause line with
            | Ok c -> go (c :: acc) (line :: seen) (lineno + 1) rest
            | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
    in
    match go [] [] 1 lines with
    | Error _ as e -> e
    | Ok [] -> Error "empty scenario"
    | Ok cs -> Ok cs
  end

(* ---------- fault arming ---------- *)

let crash_slots t =
  List.length (List.filter (function Crash_when _ -> true | _ -> false) t)

let has_crash_clauses t = crash_slots t > 0

let link_needs = function
  | Partition _ | Drop_link _ -> Some Fault.Drop
  | Dup_link _ -> Some Fault.Duplicate
  | Delay_link _ -> Some Fault.Delay
  | _ -> None

let max_latency t =
  List.fold_left
    (fun acc c -> match c with Delay_link (_, _, l, _) -> max acc l | _ -> acc)
    0 t

(* budget headroom per forced-fault window: enough that a scenario window
   does not silently go inert mid-run because random injections elsewhere
   drained the shared budget *)
let window_budget = 48

let arm t (spec : Fault.spec) =
  let crashes = crash_slots t in
  let needs k = List.exists (fun c -> link_needs c = Some k) t in
  let needs_drop = needs Fault.Drop in
  let needs_dup = needs Fault.Duplicate in
  let max_lat = max_latency t in
  let link_windows =
    List.length (List.filter (fun c -> link_needs c <> None) t)
  in
  if crashes = 0 && link_windows = 0 then spec
  else
    {
      spec with
      Fault.drop = spec.Fault.drop || needs_drop;
      duplicate = spec.Fault.duplicate || needs_dup;
      delay = spec.Fault.delay || max_lat > 0;
      crash = spec.Fault.crash || crashes > 0;
      max_delay = max spec.Fault.max_delay max_lat;
      budget = spec.Fault.budget + crashes + (window_budget * link_windows);
    }

(* ---------- journal ---------- *)

type fate = Passed | Dropped | Dupped | Delayed

type journal_entry =
  | J_deliver of {
      step : int;
      time : int;
      sender : string;
      receiver : string;
      event : string;
    }
  | J_send of {
      step : int;
      time : int;
      sender : string;
      target : string;
      event : string;
      fate : fate;
      budget : int;
    }
  | J_state of { step : int; machine : string; state : string }
  | J_crash of { step : int; time : int; machine : string }
  | J_quiet of { step : int; machine : string }

let fate_to_string = function
  | Passed -> "pass"
  | Dropped -> "drop"
  | Dupped -> "dup"
  | Delayed -> "delay"

let journal_entry_to_string = function
  | J_deliver { step; time; sender; receiver; event } ->
    Printf.sprintf "deliver step=%d time=%d %s->%s %s" step time sender receiver
      event
  | J_send { step; time; sender; target; event; fate; budget } ->
    Printf.sprintf "send step=%d time=%d %s->%s %s fate=%s budget=%d" step time
      sender target event (fate_to_string fate) budget
  | J_state { step; machine; state } ->
    Printf.sprintf "state step=%d %s=%s" step machine state
  | J_crash { step; time; machine } ->
    Printf.sprintf "crash step=%d time=%d %s" step time machine
  | J_quiet { step; machine } -> Printf.sprintf "quiet step=%d %s" step machine

(* ---------- the shared interpreter ---------- *)

type fact =
  | F_step of int
  | F_time of int
  | F_deliver of string
  | F_state of string * string
  | F_quiet of string
  | F_crash of string

type tstate = { trig : trigger; mutable t_fired : bool; mutable t_count : int }

let tstate_of trig =
  { trig; t_fired = (match trig with Start -> true | _ -> false); t_count = 0 }

let tstate_apply ts fact =
  if not ts.t_fired then
    match (ts.trig, fact) with
    | At_step n, F_step s -> if s >= n then ts.t_fired <- true
    | At_time n, F_time tm -> if tm >= n then ts.t_fired <- true
    | Delivered (p, k), F_deliver ev ->
      if pat_matches p ev then begin
        ts.t_count <- ts.t_count + 1;
        if ts.t_count >= k then ts.t_fired <- true
      end
    | Entered (p, s0), F_state (m, s) ->
      if pat_matches p m && String.equal s0 s then ts.t_fired <- true
    | Quiet p, F_quiet m -> if pat_matches p m then ts.t_fired <- true
    | Crashed p, F_crash m -> if pat_matches p m then ts.t_fired <- true
    | _ -> ()

type wstate = { ws_from : tstate; ws_until : tstate }

let wstate_of w = { ws_from = tstate_of w.w_from; ws_until = tstate_of w.w_until }
let ws_active ws = ws.ws_from.t_fired && not ws.ws_until.t_fired

(* the until trigger only arms once the window has opened: events before
   [from] fires never count toward closing it. A fact that opens the
   window is immediately offered to the until trigger as well. *)
let ws_apply ws fact =
  tstate_apply ws.ws_from fact;
  if ws.ws_from.t_fired then tstate_apply ws.ws_until fact

type forced_kind = FK_drop | FK_dup | FK_delay of int

let fate_of_fk = function
  | FK_drop -> Dropped
  | FK_dup -> Dupped
  | FK_delay _ -> Delayed

type cstate =
  | CS_order of { a : pat; b : pat; mutable sat : bool }
  | CS_crash of { victim : pat; after : tstate; mutable used : bool }
  | CS_link of {
      fk : forced_kind;
      lmatches : string -> string -> bool;  (* sender name -> target name *)
      win : wstate;
    }
  | CS_pause of { m : pat; win : wstate }
  | CS_focus of { m : pat; win : wstate }

(* partition side membership: the [b] side wins on overlap, so
   [partition * N2] reads as "N2 against everyone else" *)
let cross a b s t =
  let side name =
    if pat_matches b name then `B else if pat_matches a name then `A else `N
  in
  match (side s, side t) with `A, `B | `B, `A -> true | _ -> false

let cstate_of = function
  | Order (a, b) -> CS_order { a; b; sat = false }
  | Crash_when (v, trig) ->
    CS_crash { victim = v; after = tstate_of trig; used = false }
  | Partition (a, b, w) ->
    CS_link { fk = FK_drop; lmatches = cross a b; win = wstate_of w }
  | Drop_link (s, d, w) ->
    CS_link
      {
        fk = FK_drop;
        lmatches = (fun sn tn -> pat_matches s sn && pat_matches d tn);
        win = wstate_of w;
      }
  | Dup_link (s, d, w) ->
    CS_link
      {
        fk = FK_dup;
        lmatches = (fun sn tn -> pat_matches s sn && pat_matches d tn);
        win = wstate_of w;
      }
  | Delay_link (s, d, lat, w) ->
    CS_link
      {
        fk = FK_delay lat;
        lmatches = (fun sn tn -> pat_matches s sn && pat_matches d tn);
        win = wstate_of w;
      }
  | Pause (m, w) -> CS_pause { m; win = wstate_of w }
  | Focus (m, w) -> CS_focus { m; win = wstate_of w }

let cstate_apply cs fact =
  match cs with
  | CS_order o -> (
      match fact with
      | F_deliver ev -> if (not o.sat) && pat_matches o.a ev then o.sat <- true
      | _ -> ())
  | CS_crash c -> tstate_apply c.after fact
  | CS_link l -> ws_apply l.win fact
  | CS_pause p -> ws_apply p.win fact
  | CS_focus f -> ws_apply f.win fact

let apply_fact states fact = Array.iter (fun cs -> cstate_apply cs fact) states

(* first matching active link clause wins — both the wrapper and the
   checker use this exact rule, so conflicting link clauses resolve
   identically on both sides *)
let forced_for states ~sender ~target =
  let n = Array.length states in
  let rec go i =
    if i >= n then None
    else
      match states.(i) with
      | CS_link l when ws_active l.win && l.lmatches sender target -> Some l.fk
      | _ -> go (i + 1)
  in
  go 0

(* ---------- per-execution observer ---------- *)

module Obs = struct
  type scenario = t

  type send_ctx = {
    sc_step : int;
    sc_time : int;
    sc_sender : string;
    sc_target : string;
    sc_event : string;
    sc_budget : int;
    sc_forced : forced_kind option;
  }

  type pending =
    | P_none
    | P_send_coin of send_ctx
    | P_kind of send_ctx
    | P_delay_mode of send_ctx
    | P_delay_lat of send_ctx * [ `Uniform | `Fast | `Slow ]
    | P_crash_coin of string list  (* crashable machine names, choose order *)
    | P_pick of int  (* forced value for the next int draw *)

  type t = {
    sc : scenario;
    faults : Fault.spec;
    kinds : Fault.kind array;  (* message-kind draw vocabulary, in order *)
    states : cstate array;
    crash_slots : int;
    mutable names : string array;
    mutable n_names : int;
    mutable seen_enabled : bool array;
    mutable quieted : bool array;
    mutable now_enabled : bool array;
    mutable scratch : int array;
    mutable peek : int -> string option;
    mutable pending : pending;
    mutable journal_rev : journal_entry list;
    mutable wedges : int;
    mutable violations_rev : string list;
    mutable crashed_by_us : string list;
    has_order : bool;
    has_pause : bool;
    has_focus : bool;
  }

  let scenario o = o.sc

  let create sc ~faults =
    let needs k = List.exists (fun c -> link_needs c = Some k) sc in
    let fail what =
      invalid_arg
        (Printf.sprintf
           "Scenario.Obs.create: scenario needs %s but the fault spec does \
            not arm it (apply Scenario.arm)"
           what)
    in
    if needs Fault.Drop && not faults.Fault.drop then fail "drop";
    if needs Fault.Duplicate && not faults.Fault.duplicate then fail "dup";
    if needs Fault.Delay && not faults.Fault.delay then fail "delay";
    if max_latency sc > faults.Fault.max_delay then fail "a large enough max_delay";
    if crash_slots sc > 0 && not faults.Fault.crash then fail "crash";
    if List.exists (fun c -> link_needs c <> None) sc && faults.Fault.budget <= 0
    then fail "a positive budget";
    let kinds =
      Array.of_list
        ((if faults.Fault.drop then [ Fault.Drop ] else [])
        @ (if faults.Fault.duplicate then [ Fault.Duplicate ] else [])
        @ if faults.Fault.delay then [ Fault.Delay ] else [])
    in
    {
      sc;
      faults;
      kinds;
      states = Array.of_list (List.map cstate_of sc);
      crash_slots = crash_slots sc;
      names = Array.make 8 "?";
      n_names = 0;
      seen_enabled = Array.make 8 false;
      quieted = Array.make 8 false;
      now_enabled = Array.make 8 false;
      scratch = [||];
      peek = (fun _ -> None);
      pending = P_none;
      journal_rev = [];
      wedges = 0;
      violations_rev = [];
      crashed_by_us = [];
      has_order = List.exists (function Order _ -> true | _ -> false) sc;
      has_pause = List.exists (function Pause _ -> true | _ -> false) sc;
      has_focus = List.exists (function Focus _ -> true | _ -> false) sc;
    }

  let grow arr n fill =
    if n < Array.length arr then arr
    else begin
      let bigger = Array.make (max 8 (2 * (n + 1))) fill in
      Array.blit arr 0 bigger 0 (Array.length arr);
      bigger
    end

  let name_of o i =
    if i < 0 then "-" else if i < o.n_names then o.names.(i) else "?"

  let push o e = o.journal_rev <- e :: o.journal_rev
  let fact o f = apply_fact o.states f

  let on_create o ~index ~name =
    o.names <- grow o.names index "?";
    o.seen_enabled <- grow o.seen_enabled index false;
    o.quieted <- grow o.quieted index false;
    o.now_enabled <- grow o.now_enabled index false;
    o.names.(index) <- name;
    if index >= o.n_names then o.n_names <- index + 1

  let on_state o ~step ~index ~state =
    fact o (F_step step);
    let m = name_of o index in
    push o (J_state { step; machine = m; state });
    fact o (F_state (m, state))

  let on_deliver o ~step ~time ~sender ~receiver ~event =
    fact o (F_step step);
    fact o (F_time time);
    push o
      (J_deliver
         { step; time; sender = name_of o sender; receiver = name_of o receiver;
           event });
    fact o (F_deliver event)

  let on_crash o ~step ~time ~target =
    fact o (F_step step);
    fact o (F_time time);
    let m = name_of o target in
    push o (J_crash { step; time; machine = m });
    fact o (F_crash m)

  let pre_send o ~step ~time ~sender ~target ~event ~budget =
    fact o (F_step step);
    fact o (F_time time);
    let sn = name_of o sender and tn = name_of o target in
    let forced = forced_for o.states ~sender:sn ~target:tn in
    o.pending <-
      P_send_coin
        {
          sc_step = step;
          sc_time = time;
          sc_sender = sn;
          sc_target = tn;
          sc_event = event;
          sc_budget = budget;
          sc_forced = forced;
        }

  let crash_steering o = o.crash_slots > 0
  let crash_slots o = o.crash_slots

  let pre_crash_tick o ~step ~victims =
    fact o (F_step step);
    o.pending <- P_crash_coin victims

  let set_peek o f = o.peek <- f
  let journal o = List.rev o.journal_rev
  let wedges o = o.wedges
  let violations o = List.rev o.violations_rev

  (* Pick the first eligible crash clause and its victim, marking the
     clause used; prefers victims this scenario has not crashed yet so
     stacked clauses roll through the fleet instead of hammering one
     machine. Returns the victim's index in [victims] (the fault
     driver's choose order). *)
  let pick_crash o victims =
    let n = Array.length o.states in
    let rec go i =
      if i >= n then None
      else
        match o.states.(i) with
        | CS_crash c when c.after.t_fired && not c.used -> (
            let matching =
              List.mapi (fun idx name -> (idx, name)) victims
              |> List.filter (fun (_, name) -> pat_matches c.victim name)
            in
            match matching with
            | [] -> go (i + 1)
            | _ ->
              let idx, name =
                match
                  List.find_opt
                    (fun (_, name) -> not (List.mem name o.crashed_by_us))
                    matching
                with
                | Some x -> x
                | None -> List.hd matching
              in
              c.used <- true;
              o.crashed_by_us <- name :: o.crashed_by_us;
              Some idx)
        | _ -> go (i + 1)
    in
    go 0
end

(* ---------- the wrapper ---------- *)

let journal_send (o : Obs.t) (sc : Obs.send_ctx) fate =
  o.Obs.journal_rev <-
    J_send
      {
        step = sc.Obs.sc_step;
        time = sc.Obs.sc_time;
        sender = sc.Obs.sc_sender;
        target = sc.Obs.sc_target;
        event = sc.Obs.sc_event;
        fate;
        budget = sc.Obs.sc_budget;
      }
    :: o.Obs.journal_rev

(* resolution after the kind is known: either finish the send record or
   set up the remaining delay draws *)
let resolve_kind (o : Obs.t) sc kind =
  match kind with
  | Fault.Drop ->
    journal_send o sc Dropped;
    o.Obs.pending <- Obs.P_none
  | Fault.Duplicate ->
    journal_send o sc Dupped;
    o.Obs.pending <- Obs.P_none
  | Fault.Delay -> (
      match o.Obs.faults.Fault.delay_dist with
      | Fault.Uniform -> o.Obs.pending <- Obs.P_delay_lat (sc, `Uniform)
      | Fault.Bimodal -> o.Obs.pending <- Obs.P_delay_mode sc)
  | Fault.Crash -> assert false

let kind_index (o : Obs.t) fk =
  let want =
    match fk with
    | FK_drop -> Fault.Drop
    | FK_dup -> Fault.Duplicate
    | FK_delay _ -> Fault.Delay
  in
  let rec go i =
    if i >= Array.length o.Obs.kinds then 0 else
    if o.Obs.kinds.(i) = want then i else go (i + 1)
  in
  go 0

let wrap ~(obs : Obs.t) (base : Strategy.t) =
  let o = obs in
  let next_schedule ~enabled ~n ~step =
    apply_fact o.Obs.states (F_step step);
    (* quiescence observation: a machine seen enabled before and absent
       now has settled at least once — latch it and tell the triggers *)
    let cap = o.Obs.n_names in
    if cap > 0 then begin
      Array.fill o.Obs.now_enabled 0 (Array.length o.Obs.now_enabled) false;
      for i = 0 to n - 1 do
        let m = enabled.(i) in
        if m < Array.length o.Obs.now_enabled then o.Obs.now_enabled.(m) <- true
      done;
      for m = 0 to cap - 1 do
        if o.Obs.now_enabled.(m) then o.Obs.seen_enabled.(m) <- true
        else if o.Obs.seen_enabled.(m) && not o.Obs.quieted.(m) then begin
          o.Obs.quieted.(m) <- true;
          let name = Obs.name_of o m in
          Obs.push o (J_quiet { step; machine = name });
          apply_fact o.Obs.states (F_quiet name)
        end
      done
    end;
    (* pruning *)
    let states = o.Obs.states in
    let ns = Array.length states in
    let focus_live =
      o.Obs.has_focus
      &&
      let live = ref false in
      for i = 0 to ns - 1 do
        match states.(i) with
        | CS_focus f when ws_active f.win ->
          let any = ref false in
          for k = 0 to n - 1 do
            if pat_matches f.m (Obs.name_of o enabled.(k)) then any := true
          done;
          if !any then live := true
        | _ -> ()
      done;
      !live
    in
    let keep m =
      let name = Obs.name_of o m in
      let pruned = ref false in
      if o.Obs.has_order then begin
        match o.Obs.peek m with
        | None -> ()
        | Some ev ->
          for i = 0 to ns - 1 do
            match states.(i) with
            | CS_order oc when (not oc.sat) && pat_matches oc.b ev ->
              pruned := true
            | _ -> ()
          done
      end;
      if (not !pruned) && o.Obs.has_pause then
        for i = 0 to ns - 1 do
          match states.(i) with
          | CS_pause p when ws_active p.win && pat_matches p.m name ->
            pruned := true
          | _ -> ()
        done;
      if (not !pruned) && focus_live then begin
        let matched = ref false in
        for i = 0 to ns - 1 do
          match states.(i) with
          | CS_focus f when ws_active f.win && pat_matches f.m name ->
            matched := true
          | _ -> ()
        done;
        if not !matched then pruned := true
      end;
      not !pruned
    in
    o.Obs.scratch <- Obs.grow o.Obs.scratch n 0;
    let n' = ref 0 in
    if o.Obs.has_order || o.Obs.has_pause || focus_live then
      for i = 0 to n - 1 do
        let m = enabled.(i) in
        if keep m then begin
          o.Obs.scratch.(!n') <- m;
          incr n'
        end
      done
    else begin
      Array.blit enabled 0 o.Obs.scratch 0 n;
      n' := n
    end;
    let arr, nn =
      if !n' = 0 then begin
        (* constraint pruning emptied the set: admit everything rather
           than manufacture a deadlock, and count the wedge — the
           conformance battery requires this counter to stay at zero *)
        o.Obs.wedges <- o.Obs.wedges + 1;
        Array.blit enabled 0 o.Obs.scratch 0 n;
        (o.Obs.scratch, n)
      end
      else (o.Obs.scratch, !n')
    in
    let choice = base.Strategy.next_schedule ~enabled:arr ~n:nn ~step in
    (* focus clauses leave no dequeue record for [check], so any post-
       wedge bypass is caught here instead *)
    if focus_live then
      for i = 0 to ns - 1 do
        match states.(i) with
        | CS_focus f when ws_active f.win ->
          let any = ref false in
          for k = 0 to n - 1 do
            if pat_matches f.m (Obs.name_of o enabled.(k)) then any := true
          done;
          if !any && not (pat_matches f.m (Obs.name_of o choice)) then
            o.Obs.violations_rev <-
              Printf.sprintf
                "focus %s bypassed at step %d: scheduled %s while a match \
                 was enabled"
                (pat_to_string f.m) step (Obs.name_of o choice)
              :: o.Obs.violations_rev
        | _ -> ()
      done;
    choice
  in
  let next_bool ~step =
    match o.Obs.pending with
    | Obs.P_send_coin sc ->
      let inject =
        match sc.Obs.sc_forced with
        | Some _ -> true
        | None -> base.Strategy.next_bool ~step
      in
      if not inject then begin
        journal_send o sc Passed;
        o.Obs.pending <- Obs.P_none;
        false
      end
      else begin
        if Array.length o.Obs.kinds > 1 then o.Obs.pending <- Obs.P_kind sc
        else resolve_kind o sc o.Obs.kinds.(0);
        true
      end
    | Obs.P_delay_mode sc ->
      let fast =
        match sc.Obs.sc_forced with
        | Some (FK_delay l) -> l <= 2
        | _ -> base.Strategy.next_bool ~step
      in
      o.Obs.pending <- Obs.P_delay_lat (sc, if fast then `Fast else `Slow);
      fast
    | Obs.P_crash_coin victims -> (
        (* always resolved by the wrapper in steering mode: crashes fire
           exactly when an eligible clause demands one, never otherwise *)
        match Obs.pick_crash o victims with
        | None ->
          o.Obs.pending <- Obs.P_none;
          false
        | Some idx ->
          o.Obs.pending <-
            (if List.length victims > 1 then Obs.P_pick idx else Obs.P_none);
          true)
    | _ -> base.Strategy.next_bool ~step
  in
  let next_int ~bound ~step =
    let clamp v = max 0 (min (bound - 1) v) in
    match o.Obs.pending with
    | Obs.P_kind sc ->
      let idx =
        match sc.Obs.sc_forced with
        | Some fk -> clamp (kind_index o fk)
        | None -> base.Strategy.next_int ~bound ~step
      in
      let kind =
        if idx < Array.length o.Obs.kinds then o.Obs.kinds.(idx) else Fault.Drop
      in
      resolve_kind o sc kind;
      idx
    | Obs.P_delay_lat (sc, mode) ->
      let idx =
        match (sc.Obs.sc_forced, mode) with
        | Some (FK_delay l), (`Uniform | `Fast) -> clamp (l - 1)
        | Some (FK_delay l), `Slow ->
          clamp (l - (2 * o.Obs.faults.Fault.max_delay))
        | _ -> base.Strategy.next_int ~bound ~step
      in
      journal_send o sc Delayed;
      o.Obs.pending <- Obs.P_none;
      idx
    | Obs.P_pick i ->
      o.Obs.pending <- Obs.P_none;
      clamp i
    | _ -> base.Strategy.next_int ~bound ~step
  in
  {
    Strategy.name = "scenario(" ^ base.Strategy.name ^ ")";
    next_schedule;
    next_bool;
    next_int;
  }

(* ---------- the independent checker ---------- *)

let check t journal =
  let states = Array.of_list (List.map cstate_of t) in
  let has_crash = has_crash_clauses t in
  let viols = ref [] in
  let add v = viols := v :: !viols in
  List.iter
    (fun entry ->
      match entry with
      | J_state { step; machine; state } ->
        apply_fact states (F_step step);
        apply_fact states (F_state (machine, state))
      | J_quiet { step; machine } ->
        apply_fact states (F_step step);
        apply_fact states (F_quiet machine)
      | J_deliver { step; time; sender = _; receiver; event } ->
        apply_fact states (F_step step);
        apply_fact states (F_time time);
        Array.iter
          (fun cs ->
            match cs with
            | CS_order o when (not o.sat) && pat_matches o.b event ->
              add
                (Printf.sprintf
                   "order %s before %s: %s delivered to %s at step %d before \
                    any %s"
                   (pat_to_string o.a) (pat_to_string o.b) event receiver step
                   (pat_to_string o.a))
            | CS_pause p when ws_active p.win && pat_matches p.m receiver ->
              add
                (Printf.sprintf
                   "pause %s: %s dequeued %s at step %d inside the window"
                   (pat_to_string p.m) receiver event step)
            | _ -> ())
          states;
        apply_fact states (F_deliver event)
      | J_send { step; time; sender; target; event; fate; budget } ->
        apply_fact states (F_step step);
        apply_fact states (F_time time);
        if budget > 0 then (
          match forced_for states ~sender ~target with
          | Some fk ->
            let expect = fate_of_fk fk in
            if fate <> expect then
              add
                (Printf.sprintf
                   "link clause: %s->%s %s at step %d resolved %s, expected %s"
                   sender target event step (fate_to_string fate)
                   (fate_to_string expect))
          | None -> ())
      | J_crash { step; time; machine } ->
        apply_fact states (F_step step);
        apply_fact states (F_time time);
        if has_crash then begin
          let n = Array.length states in
          let rec claim i =
            if i >= n then
              add
                (Printf.sprintf
                   "crash of %s at step %d not licensed by any fired crash \
                    clause"
                   machine step)
            else
              match states.(i) with
              | CS_crash c
                when c.after.t_fired && (not c.used)
                     && pat_matches c.victim machine ->
                c.used <- true
              | _ -> claim (i + 1)
          in
          claim 0
        end;
        apply_fact states (F_crash machine))
    journal;
  if !viols = [] then Ok () else Error (List.rev !viols)
