(** The systematic-testing runtime (one execution).

    Like P# (§2), the runtime serializes the whole system onto a single
    thread. Machines are delimited continuations (OCaml effects): a machine
    runs until it blocks on [receive], finishes, or halts; the scheduler
    then picks the next enabled machine. The scheduling points — which
    machine dequeues next, and every [nondet] choice — are resolved by a
    {!Strategy.t} and recorded in a {!Trace.t}, so any execution can be
    replayed deterministically. *)

(** Capability handed to a machine body; identifies the machine and carries
    the runtime. *)
type ctx

type config = {
  max_steps : int;
      (** executions longer than this are treated as infinite (§2.5) *)
  liveness_grace : int option;
      (** a liveness violation is reported at the step bound only if the
          monitor has been continuously hot for at least this many steps
          (default [max_steps / 2]); on deadlock any hot monitor reports *)
  deadlock_is_bug : bool;
      (** report a bug when no machine is enabled but some still wait *)
  collect_log : bool;
      (** record the human-readable global-order log. The contract is
          zero-cost-when-disabled: with [collect_log = false] no log line
          is formatted — not even the arguments are evaluated — and with
          it [true] only observation changes, never the schedule explored
          (pinned by [test/test_golden.ml]) *)
  coverage : Coverage.t option;
      (** when set, the execution records its coverage points — machine
          state visits, delivered event types, [(sender, event,
          receiver@state)] transition triples and nondet branch outcomes —
          into this per-execution map *)
  hb : Hb.t option;
      (** when set, the execution records its happens-before relation —
          per-machine vector clocks merged on delivery, with
          [send_faulty], [crash] and monitor notifications participating
          — into this per-execution recorder ({!Hb}). Same contract as
          [coverage]: recording draws nothing from the strategy and never
          perturbs the schedule (pinned by [test/test_golden.ml]); [None]
          costs one match per operation *)
  faults : Fault.spec;
      (** fault-injection spec. The contract mirrors [collect_log]: with
          {!Fault.none} (the default) [send_faulty] degenerates to [send]
          behind a single boolean load and makes {e zero} strategy draws,
          so schedules and golden digests are byte-identical to a build
          without fault support (pinned by [test/test_golden.ml] and
          [bench fault-overhead]) *)
  deadline : float option;
      (** absolute [Unix.gettimeofday] bound; when set the step loop
          checks it every 64 steps and aborts the current execution
          cleanly ([exec_result.timed_out]) instead of overshooting the
          run's time budget by a whole execution *)
  clock : Clock.config option;
      (** when set, the execution runs under {e virtual time}: a
          discrete-event clock ({!Clock}) that machines arm timed
          deliveries on ({!send_after}, {!sleep}, {!Timer} when built on
          it) and that advances {e only at quiescence} — when no machine
          is enabled, the earliest armed entry fires, so simulated seconds
          cost nothing. Delay faults become per-link latency durations
          (the drawn value is virtual time units instead of a delivery
          countdown). Advancing draws nothing from the strategy —
          timestamps are a deterministic function of the schedule. The
          contract mirrors [faults]: with [None] (the default) no code
          path draws or behaves differently from a build without clock
          support, so all pre-clock golden digests are byte-identical
          (pinned by [test/test_golden.ml]). *)
  scenario : Scenario.Obs.t option;
      (** when set, the execution feeds this per-execution scenario
          observer: machine creations, state declarations, deliveries,
          crashes and fault-draw markers ({!Scenario.Obs.pre_send}) — all
          draw-free, so installing an observer {e without} wrapping the
          strategy changes nothing about the schedule (which is exactly
          what replay and shrinking do: the forced draws are already in
          the trace). The same contract as [coverage]/[hb]: [None] costs
          one match per operation and zero draws. *)
}

val default_config : config

type exec_result = {
  bug : Error.kind option;
  bug_step : int;  (** step at which the bug was detected; [steps] if none *)
  steps : int;  (** scheduling steps taken *)
  choices : Trace.t;  (** all nondeterministic choices, in order *)
  log : string list;  (** oldest first; empty unless [collect_log] *)
  timed_out : bool;  (** the execution was aborted at [config.deadline] *)
  faults_injected : int;  (** faults actually injected this execution *)
  final_time : int;
      (** virtual time when the execution ended; [0] when [config.clock]
          is [None] *)
}

(** [execute config strategy ~monitors ~name body] runs one execution from
    scratch: a root machine called [name] running [body] is created, and the
    system runs until all machines halt, a bug is found, or [max_steps] is
    reached. [monitors] must be freshly created for this execution. *)
val execute :
  config ->
  Strategy.t ->
  monitors:Monitor.t list ->
  name:string ->
  (ctx -> unit) ->
  exec_result

(** {1 Machine API}

    These functions may only be called from within a machine body, on the
    [ctx] the runtime passed to it. *)

(** This machine's id. *)
val self : ctx -> Id.t

(** [create ctx ~name body] creates a new machine and returns its id. The
    machine starts when the scheduler first picks it.

    [?persistent] makes the machine {e crashable}: {!crash} discards its
    inbox and volatile state (the running body) and restarts it on the body
    [persistent ()] builds — typically a closure over a harness-owned
    "disk" record holding whatever state survives the crash. Machines
    created without it cannot be crashed. Registration is draw-free: a
    [persistent] hook alone never perturbs the schedule. *)
val create :
  ?persistent:(unit -> ctx -> unit) -> ctx -> name:string -> (ctx -> unit) ->
  Id.t

(** [send ctx target e] enqueues [e] in [target]'s inbox (non-blocking).
    Sends to halted machines are dropped, as in P#. *)
val send : ctx -> Id.t -> Event.t -> unit

(** [send_faulty ctx target e] is the fault-injection interposition point
    for harness protocol messages (§2.3: failures as controlled
    nondeterminism). With message faults disabled — [config.faults] =
    {!Fault.none}, budget exhausted, or only [crash] armed — it is exactly
    [send] and draws nothing. Otherwise it draws [nondet] to decide whether
    to inject here and, if so, drops, duplicates, or delays the message
    (re-enqueued behind [1 + nondet_int max_delay] later deliveries); each
    injection consumes one unit of the shared fault budget and is recorded
    in the trace, the execution log, and the coverage [fault] family.
    Delayed messages still in flight when the system quiesces are released
    rather than counted as a deadlock. *)
val send_faulty : ctx -> Id.t -> Event.t -> unit

(** Like [send], but coalesces: if the target's inbox already holds a
    duplicate (same constructor by default; [same] overrides the test), the
    new event is dropped. Used for periodic signals — timer ticks,
    heartbeats, sync reports — whose missed occurrences collapse, so they
    cannot flood a slow machine's queue. *)
val send_unless_pending :
  ?same:(Event.t -> bool) -> ctx -> Id.t -> Event.t -> unit

(** Block until an event is available, then dequeue it (FIFO). *)
val receive : ctx -> Event.t

(** Block until an event satisfying [pred] is available; dequeues the first
    such event, leaving others in order. *)
val receive_where : ctx -> (Event.t -> bool) -> Event.t

(** Controlled nondeterministic boolean (a scheduling choice point). *)
val nondet : ctx -> bool

(** Controlled nondeterministic integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val nondet_int : ctx -> int -> int

(** Uniform controlled choice among a list.
    @raise Invalid_argument on the empty list. *)
val choose : ctx -> 'a list -> 'a

(** Terminate this machine. Remaining queued events are dropped. *)
val halt : ctx -> 'a

(** [crash ctx target] crash-restarts a machine created with [~persistent]:
    its inbox, in-flight delayed messages, and volatile state are
    discarded, and it will re-run the body its restart hook builds when the
    scheduler next picks it. Consumes one unit of the fault budget and is
    recorded in coverage/log. No-op when [target] already halted (a crash
    cannot resurrect a finished machine).
    @raise Invalid_argument on self-crash or a non-persistent target. *)
val crash : ctx -> Id.t -> unit

(** [alive ctx id] is whether [id] names a machine that has not halted.
    A draw-free observation: restarted machines use it to tell a live
    peer from a torn-down one before announcing themselves. *)
val alive : ctx -> Id.t -> bool

(** The execution's fault spec (so helper machines like {!Fault_driver}
    can see which kinds are armed). *)
val fault_spec : ctx -> Fault.spec

(** Remaining shared fault budget for this execution. *)
val fault_budget_left : ctx -> int

(** Currently crashable machines — created with [~persistent], not halted,
    excluding the caller — in creation order (stable under replay). *)
val crashable_machines : ctx -> Id.t list

(** {1 Scenario steering}

    Draw-free observations {!Fault_driver} uses to run scenario-steered
    crash ticks; all three are inert (false/0/no-op) without a scenario
    observer in the config. *)

(** The installed scenario has crash clauses, so the driver should mark
    each tick's crash coin ({!scenario_crash_tick}) for the wrapper to
    force. *)
val scenario_crash_steering : ctx -> bool

(** Number of crash clauses — a floor for the driver's crash allowance so
    rolling-restart scenarios fit without harness changes. *)
val scenario_crash_slots : ctx -> int

(** Mark the imminent crash coin with the current victim candidates (names
    in {!crashable_machines} order). *)
val scenario_crash_tick : ctx -> victims:string list -> unit

(** [notify ctx monitor_name e] synchronously notifies the named monitor.
    Unknown monitor names are ignored (harnesses may run without their
    monitors installed). *)
val notify : ctx -> string -> Event.t -> unit

(** [assert_here ctx cond msg] reports an assertion-failure bug on this
    machine when [cond] is false. *)
val assert_here : ctx -> bool -> string -> unit

(** Append a line to the global-order log (no-op unless [collect_log]). *)
val log : ctx -> string -> unit

(** [history_point ctx point] files one completed client operation into
    the coverage [history] family ({!Coverage.history}); no-op without a
    coverage map. Draw-free, so recording a {!History} never perturbs the
    schedule. Harnesses pass it to [History.create ~on_complete]. *)
val history_point : ctx -> string -> unit

(** Current scheduling step (useful as a logical clock in models). *)
val step_count : ctx -> int

(** [set_state_name ctx s] declares this machine's current state for
    coverage purposes (a machine-state visit is recorded when coverage is
    on, and subsequent deliveries to this machine carry [s] as the
    receiver state). {!Statemachine} calls this on every transition; plain
    receive-loop machines may call it at interesting phase changes, or not
    at all (they then appear as state ["-"]). *)
val set_state_name : ctx -> string -> unit

(** Machine name for [id] in this execution. *)
val name_of : ctx -> Id.t -> string

(** {1 Virtual time}

    Available when the execution runs with [config.clock = Some _];
    see {!Clock}. *)

(** Whether this execution runs under virtual time. Draw-free, so
    harnesses can branch on it without perturbing clock-off schedules. *)
val clock_on : ctx -> bool

(** Current virtual time when the clock is on; falls back to
    {!step_count} (a logical clock) when off, so [now] is always a
    monotone per-execution timestamp. *)
val now : ctx -> int

(** [send_after ctx target e ~after] delivers [e] to [target] at virtual
    instant [now + after]. With the clock off it degrades to an immediate
    {!send} (the timed aspect is a refinement, not a semantic fork), so
    harness code using it stays runnable — and draw-free — in both modes.
    Sends to halted machines are dropped at fire time, and a {!crash} of
    [target] cancels its in-flight timed deliveries.
    @raise Invalid_argument if [after <= 0] while the clock is on. *)
val send_after : ctx -> Id.t -> Event.t -> after:int -> unit

(** [sleep ctx d] blocks this machine for [d] units of virtual time.
    Implemented as a timed self-delivery plus a filtered receive, so other
    events arriving during the sleep stay queued in order.
    @raise Invalid_argument if the clock is off (a sleeping machine would
    block forever) or [d <= 0]. *)
val sleep : ctx -> int -> unit

(** [sleep_until ctx t] is [sleep ctx (t - now ctx)] when [t] lies in the
    future, and a draw-free no-op otherwise.
    @raise Invalid_argument if the clock is off. *)
val sleep_until : ctx -> int -> unit
