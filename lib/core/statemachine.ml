type 'm transition =
  | Stay
  | Goto of string
  | Push of string
  | Pop
  | Halt_machine
  | Unhandled

type 'm handler = Runtime.ctx -> 'm -> Event.t -> 'm transition

type 'm state = {
  sname : string;
  entry : Runtime.ctx -> 'm -> unit;
  exit_ : Runtime.ctx -> 'm -> unit;
  handlers : (string * 'm handler) list;
  deferred : string list;
  ignored : string list;
}

let nop _ _ = ()

let state ?(entry = nop) ?(exit_ = nop) ?(defer = []) ?(ignore_ = []) sname
    handlers =
  { sname; entry; exit_; handlers; deferred = defer; ignored = ignore_ }

let find_state states name =
  match List.find_opt (fun s -> s.sname = name) states with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Statemachine: undeclared state %s" name)

type disposition = Handle of string | Defer_it | Ignore_it | Implicit_halt | Bug

let disposition st ev_name =
  if List.mem_assoc ev_name st.handlers then Handle ev_name
  else if List.mem ev_name st.deferred then Defer_it
  else if List.mem ev_name st.ignored then Ignore_it
  else if ev_name = Event.name Event.Halt_event then Implicit_halt
  else Bug

(* The active states form a stack (P# push/pop semantics): the top state
   handles events first; events it neither handles, defers nor ignores
   fall through to the states below it. *)
let stack_disposition stack ev_name =
  let rec walk = function
    | [] ->
      if ev_name = Event.name Event.Halt_event then `Halt else `Bug
    | st :: below ->
      (match disposition st ev_name with
       | Handle name -> `Handle (st, name)
       | Defer_it -> `Defer
       | Ignore_it -> `Ignore
       | Implicit_halt | Bug -> walk below)
  in
  walk stack

let run ctx ~machine ~states ~init model =
  Registry.register_machine ~machine ~kind:Registry.Machine
    ~states:(List.length states)
    ~handlers:
      (List.fold_left (fun n s -> n + List.length s.handlers) 0 states);
  let stack = ref [ find_state states init ] in
  let top () =
    match !stack with
    | st :: _ -> st
    | [] -> assert false
  in
  (* Deferred events, oldest first. *)
  let stash = ref [] in
  let unhandled e =
    raise
      (Error.Bug
         (Error.Unhandled_event
            {
              machine = Id.to_string (Runtime.self ctx);
              state = (top ()).sname;
              event = Event.to_string e;
            }))
  in
  let record target =
    Registry.record_transition ~machine ~from_:(top ()).sname ~to_:target;
    Runtime.set_state_name ctx target;
    Runtime.log ctx
      (Printf.sprintf "transition %s -> %s" (top ()).sname target)
  in
  let goto target =
    (top ()).exit_ ctx model;
    record target;
    stack := [ find_state states target ];
    (top ()).entry ctx model
  in
  let push target =
    record target;
    stack := find_state states target :: !stack;
    (top ()).entry ctx model
  in
  let pop () =
    match !stack with
    | [ _ ] ->
      raise
        (Error.Bug
           (Error.Machine_exception
              {
                machine = Id.to_string (Runtime.self ctx);
                exn = "Statemachine: pop from the initial state";
              }))
    | st :: rest ->
      st.exit_ ctx model;
      stack := rest;
      record (top ()).sname
    | [] -> assert false
  in
  let apply e =
    match stack_disposition !stack (Event.name e) with
    | `Handle (st, name) ->
      let h = List.assoc name st.handlers in
      (match h ctx model e with
       | Stay -> ()
       | Goto target -> goto target
       | Push target -> push target
       | Pop -> pop ()
       | Halt_machine -> Runtime.halt ctx
       | Unhandled -> unhandled e)
    | `Defer -> stash := !stash @ [ e ]
    | `Ignore -> ()
    | `Halt -> Runtime.halt ctx
    | `Bug -> unhandled e
  in
  (* Pull the first stashed event the current state stack no longer
     defers. *)
  let pop_replayable () =
    let rec split acc = function
      | [] -> None
      | e :: rest ->
        (match stack_disposition !stack (Event.name e) with
         | `Defer -> split (e :: acc) rest
         | `Handle _ | `Ignore | `Halt | `Bug ->
           Some (e, List.rev_append acc rest))
    in
    match split [] !stash with
    | Some (e, rest) ->
      stash := rest;
      Some e
    | None -> None
  in
  Runtime.set_state_name ctx init;
  (top ()).entry ctx model;
  let rec loop () =
    (match pop_replayable () with
     | Some e -> apply e
     | None -> apply (Runtime.receive ctx));
    loop ()
  in
  loop ()
