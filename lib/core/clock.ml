type config = { max_time : int }

let default_config = { max_time = 10_000 }

type entry = {
  at : int;
  seq : int;
  target : int;
  sender : int;
  stamp : int;
  event : Event.t;
}

(* Pending entries sorted by (at, seq): earliest deadline first, arming
   order as the tie-break. Pending counts are tiny (a handful of timers
   plus in-flight timed messages), so a sorted list beats a heap on both
   simplicity and constant factors. *)
type t = {
  mutable now : int;
  mutable next_seq : int;
  mutable pending : entry list;
}

let create () = { now = 0; next_seq = 0; pending = [] }
let now t = t.now
let is_empty t = t.pending = []
let pending t = List.length t.pending

let arm t ~after ~target ~sender ~stamp event =
  if after <= 0 then invalid_arg "Clock.arm: after must be positive";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e = { at = t.now + after; seq; target; sender; stamp; event } in
  let rec insert = function
    | [] -> [ e ]
    | hd :: tl ->
      if hd.at < e.at || (hd.at = e.at && hd.seq < e.seq) then hd :: insert tl
      else e :: hd :: tl
  in
  t.pending <- insert t.pending;
  seq

let next_due t =
  match t.pending with [] -> None | e :: _ -> Some e.at

(* Advance virtual time to the earliest pending entry and hand it out —
   unless that entry lies beyond [horizon], in which case time is never
   advanced past the end of the simulation and [None] is returned with the
   entry left in place (the caller distinguishes "idle" from "out of
   simulated time" via {!is_empty}). *)
let pop_due t ~horizon =
  match t.pending with
  | [] -> None
  | e :: rest ->
    if e.at > horizon then None
    else begin
      t.pending <- rest;
      if e.at > t.now then t.now <- e.at;
      Some e
    end

let cancel_target t target =
  t.pending <- List.filter (fun e -> e.target <> target) t.pending
