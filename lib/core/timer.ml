type Event.t +=
  | Timer_tick
  | Timer_repeat
  | Timer_stop

let body ~target ~tick ctx =
  Registry.register_machine ~machine:"Timer" ~kind:Registry.Machine ~states:1
    ~handlers:2;
  Runtime.send ctx (Runtime.self ctx) Timer_repeat;
  let rec loop () =
    match Runtime.receive ctx with
    | Timer_stop -> Runtime.halt ctx
    | Timer_repeat ->
      (* Coalescing send: a pending, not-yet-handled tick is not duplicated,
         as with a real periodic timer whose callback is still queued. *)
      if Runtime.nondet ctx then Runtime.send_unless_pending ctx target (tick ());
      Runtime.send ctx (Runtime.self ctx) Timer_repeat;
      loop ()
    | e ->
      (* A timer only understands its own protocol; anything else is a
         harness wiring bug, reported like any other unhandled event
         rather than silently swallowed. *)
      raise
        (Error.Bug
           (Error.Unhandled_event
              {
                machine = Id.to_string (Runtime.self ctx);
                state = "-";
                event = Event.to_string e;
              }))
  in
  loop ()

let create ctx ~target ?(tick = fun () -> Timer_tick) ?(name = "Timer") () =
  Runtime.create ctx ~name (body ~target ~tick)
