type Event.t +=
  | Timer_tick
  | Timer_repeat
  | Timer_fire
  | Timer_stop

let unhandled ctx e =
  (* A timer only understands its own protocol; anything else is a
     harness wiring bug, reported like any other unhandled event
     rather than silently swallowed. *)
  raise
    (Error.Bug
       (Error.Unhandled_event
          {
            machine = Id.to_string (Runtime.self ctx);
            state = "-";
            event = Event.to_string e;
          }))

(* Under virtual time the timer arms its next firing on the clock instead
   of self-sending: between firings the machine is blocked on [receive],
   so a timer-bearing harness quiesces and the runtime's deadlock and
   liveness checks stay reachable (the self-send loop kept the machine
   permanently enabled, burning the full step bound). The fire/skip
   [nondet] is preserved: whether a given period's tick is delivered is
   still a recorded scheduling choice, as in the paper's Fig. 9 model. *)
let clocked_body ~target ~tick ~period ctx =
  Registry.register_machine ~machine:"Timer" ~kind:Registry.Machine ~states:1
    ~handlers:2;
  Runtime.send_after ctx (Runtime.self ctx) Timer_fire ~after:period;
  let rec loop () =
    match Runtime.receive ctx with
    | Timer_stop -> Runtime.halt ctx
    | Timer_fire ->
      if Runtime.nondet ctx then Runtime.send_unless_pending ctx target (tick ());
      Runtime.send_after ctx (Runtime.self ctx) Timer_fire ~after:period;
      loop ()
    | e -> unhandled ctx e
  in
  loop ()

let body ~target ~tick ctx =
  Registry.register_machine ~machine:"Timer" ~kind:Registry.Machine ~states:1
    ~handlers:2;
  Runtime.send ctx (Runtime.self ctx) Timer_repeat;
  let rec loop () =
    match Runtime.receive ctx with
    | Timer_stop -> Runtime.halt ctx
    | Timer_repeat ->
      (* Coalescing send: a pending, not-yet-handled tick is not duplicated,
         as with a real periodic timer whose callback is still queued. *)
      if Runtime.nondet ctx then Runtime.send_unless_pending ctx target (tick ());
      Runtime.send ctx (Runtime.self ctx) Timer_repeat;
      loop ()
    | e -> unhandled ctx e
  in
  loop ()

let create ctx ~target ?(tick = fun () -> Timer_tick) ?(period = 10)
    ?(name = "Timer") () =
  if period <= 0 then invalid_arg "Timer.create: period must be positive";
  if Runtime.clock_on ctx then
    Runtime.create ctx ~name (clocked_body ~target ~tick ~period)
  else Runtime.create ctx ~name (body ~target ~tick)
