let diverged ~step message =
  raise (Error.Bug (Error.Replay_divergence { step; message }))

let make trace : Strategy.t =
  let choices = Trace.to_list trace |> Array.of_list in
  let cursor = ref 0 in
  let next ~step expected =
    if !cursor >= Array.length choices then
      diverged ~step
        (Printf.sprintf "trace exhausted after %d choices but a %s choice \
                         was requested"
           (Array.length choices) expected);
    let c = choices.(!cursor) in
    incr cursor;
    c
  in
  let next_schedule ~enabled ~n ~step =
    match next ~step "schedule" with
    | Trace.Schedule m ->
      if Strategy.enabled_mem enabled n m then m
      else
        diverged ~step
          (Printf.sprintf "machine %d from trace is not enabled" m)
    | Trace.Bool _ | Trace.Int _ ->
      diverged ~step "expected a schedule choice, trace has a nondet choice"
  in
  let next_bool ~step =
    match next ~step "bool" with
    | Trace.Bool b -> b
    | Trace.Schedule _ | Trace.Int _ ->
      diverged ~step "expected a bool choice"
  in
  let next_int ~bound ~step =
    match next ~step "int" with
    | Trace.Int i when i >= 0 && i < bound -> i
    | Trace.Int i ->
      diverged ~step
        (Printf.sprintf "int choice %d out of bound %d" i bound)
    | Trace.Schedule _ | Trace.Bool _ ->
      diverged ~step "expected an int choice"
  in
  { name = "replay"; next_schedule; next_bool; next_int }

let factory trace : Strategy.factory =
  {
    factory_name = "replay";
    (* Single-execution by construction; nothing to fan out. *)
    parallel_safe = false;
    fresh =
      (fun ~iteration -> if iteration = 0 then Some (make trace) else None);
    feedback = None;
  }
