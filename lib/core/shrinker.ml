(* Lenient replay: follow the recorded choices while they remain valid;
   afterwards (exhaustion or a stale schedule choice) continue randomly. *)
let lenient_strategy trace ~seed : Strategy.t =
  let choices = Array.of_list (Trace.to_list trace) in
  let cursor = ref 0 in
  let diverged = ref false in
  let rng = Prng.create ~seed in
  let next () =
    if !diverged || !cursor >= Array.length choices then None
    else begin
      let c = choices.(!cursor) in
      incr cursor;
      Some c
    end
  in
  let next_schedule ~enabled ~n ~step:_ =
    match next () with
    | Some (Trace.Schedule m) when Strategy.enabled_mem enabled n m -> m
    | Some _ | None ->
      diverged := true;
      enabled.(Prng.int rng n)
  in
  let next_bool ~step:_ =
    match next () with
    | Some (Trace.Bool b) -> b
    | Some _ | None ->
      diverged := true;
      Prng.bool rng
  in
  let next_int ~bound ~step:_ =
    match next () with
    (* A corrupted or hand-edited trace can carry a negative choice; treat
       it as a divergence rather than propagating an invalid value. *)
    | Some (Trace.Int i) when i >= 0 && i < bound -> i
    | Some _ | None ->
      diverged := true;
      Prng.int rng bound
  in
  { Strategy.name = "lenient-replay"; next_schedule; next_bool; next_int }

let same_kind (a : Error.kind) (b : Error.kind) =
  match (a, b) with
  | Error.Safety_violation x, Error.Safety_violation y -> x.monitor = y.monitor
  | Error.Liveness_violation x, Error.Liveness_violation y ->
    x.monitor = y.monitor
  | Error.Deadlock _, Error.Deadlock _ -> true
  | Error.Unhandled_event x, Error.Unhandled_event y -> x.machine = y.machine
  | Error.Assertion_failure x, Error.Assertion_failure y ->
    x.machine = y.machine
  | Error.Machine_exception x, Error.Machine_exception y ->
    x.machine = y.machine
  | _, _ -> false

let runtime_config (config : Engine.config) =
  {
    Runtime.max_steps = config.Engine.max_steps;
    liveness_grace = config.Engine.liveness_grace;
    deadlock_is_bug = config.Engine.deadlock_is_bug;
    collect_log = false;
    hb = None;
    coverage = None;
    (* fault draws are ordinary recorded choices: shrinking a fault-found
       trace needs the same spec so lenient replay interprets them *)
    faults = config.Engine.faults;
    deadline = None;
    (* same reason as faults: a clock-found trace only replays under the
       same time model *)
    clock = config.Engine.clock;
    (* observer only, never wrapped: scenario-forced draws are ordinary
       recorded choices, so lenient replay retraces them like any other —
       a fresh observer per attempt keeps the hooks' contract uniform
       without perturbing a single draw *)
    scenario =
      Option.map
        (fun s -> Scenario.Obs.create s ~faults:config.Engine.faults)
        config.Engine.scenario;
  }

(* Execute once under lenient replay of [candidate]; if the same bug kind
   fires, return the executed run's exact trace. *)
let attempt config ~monitors ~kind ~seed body candidate =
  let strategy = lenient_strategy candidate ~seed in
  let result =
    Runtime.execute (runtime_config config) strategy ~monitors:(monitors ())
      ~name:"Harness" body
  in
  match result.Runtime.bug with
  | Some found when same_kind found kind ->
    Some (found, result.Runtime.bug_step, result.Runtime.choices)
  | Some _ | None -> None

let drop_chunk list ~from_ ~len =
  List.filteri (fun i _ -> i < from_ || i >= from_ + len) list

let shrink ?(rounds = 3) ?(monitors = fun () -> []) config
    (report : Error.report) body =
  let kind = report.Error.kind in
  let best = ref report in
  let improved = ref true in
  let round = ref 0 in
  while !improved && !round < rounds do
    improved := false;
    incr round;
    let choices = Trace.to_list !best.Error.trace in
    let n = List.length choices in
    let chunk = ref (max 1 (n / 4)) in
    while !chunk >= 1 do
      let pos = ref 0 in
      while !pos < List.length (Trace.to_list !best.Error.trace) do
        let current = Trace.to_list !best.Error.trace in
        let candidate =
          Trace.of_list (drop_chunk current ~from_:!pos ~len:!chunk)
        in
        (match
           attempt config ~monitors ~kind
             ~seed:(Int64.of_int (!round * 1_000 + !pos))
             body candidate
         with
         | Some (found_kind, step, exact_trace)
           when Trace.length exact_trace < List.length current ->
           best :=
             {
               Error.kind = found_kind;
               step;
               trace = exact_trace;
               log = [];
             };
           improved := true
         | Some _ | None -> pos := !pos + !chunk)
      done;
      chunk := !chunk / 2
    done
  done;
  (* Recover the readable log for the final witness. *)
  let result = Engine.replay ~monitors config !best.Error.trace body in
  match result.Runtime.bug with
  | Some kind ->
    {
      Error.kind;
      step = result.Runtime.bug_step;
      trace = result.Runtime.choices;
      log = result.Runtime.log;
    }
  | None -> !best
