type strategy_spec =
  | Random
  | Pct of { change_points : int }
  | Dfs of { max_depth : int; int_cap : int }
  | Round_robin
  | Delay_bounded of { delays : int }
  | Replay_trace of Trace.t
  | Fuzz of { corpus_cap : int }

type reduction = No_reduction | Hb_track | Sleep_sets

type config = {
  strategy : strategy_spec;
  seed : int64;
  max_executions : int;
  max_seconds : float option;
  max_steps : int;
  liveness_grace : int option;
  deadlock_is_bug : bool;
  collect_log_on_bug : bool;
  workers : int;
  collect_coverage : bool;
  coverage_plateau : int option;
  plateau_family : Coverage.family_kind option;
  faults : Fault.spec;
  reduce : reduction;
  clock : Clock.config option;
  start_iteration : int;
  prior_coverage : Coverage.t option;
  fuzz_initial : Fuzz_strategy.corpus_entry list;
  fuzz_exchange : Fuzz_strategy.Exchange.t option;
  fuzz_energy : bool;
  fuzz_mutate_faults : bool;
  scenario : Scenario.t option;
  scenario_audit : (Scenario.Obs.t -> unit) option;
}

let default_config =
  {
    strategy = Random;
    seed = 0L;
    max_executions = 10_000;
    max_seconds = None;
    max_steps = 5_000;
    liveness_grace = None;
    deadlock_is_bug = true;
    collect_log_on_bug = false;
    workers = 1;
    collect_coverage = false;
    coverage_plateau = None;
    plateau_family = None;
    faults = Fault.none;
    reduce = No_reduction;
    clock = None;
    start_iteration = 0;
    prior_coverage = None;
    fuzz_initial = [];
    fuzz_exchange = None;
    fuzz_energy = false;
    fuzz_mutate_faults = false;
    scenario = None;
    scenario_audit = None;
  }

type stats = {
  executions : int;
  elapsed : float;
  total_steps : int;
  search_exhausted : bool;
  coverage : Coverage.t option;
  plateaued : bool;
  timed_out : bool;
}

type outcome =
  | Bug_found of Error.report * stats
  | No_bug of stats

let factory_of config =
  match config.strategy with
  | Random -> Random_strategy.factory ~seed:config.seed
  | Pct { change_points } ->
    Pct_strategy.factory ~seed:config.seed ~change_points
      ~max_steps:config.max_steps ()
  | Dfs { max_depth; int_cap } -> Dfs_strategy.factory ~max_depth ~int_cap ()
  | Round_robin -> Rr_strategy.factory ()
  | Delay_bounded { delays } ->
    Delay_strategy.factory ~seed:config.seed ~delays
      ~max_steps:config.max_steps ()
  | Replay_trace t -> Replay_strategy.factory t
  | Fuzz { corpus_cap } ->
    Fuzz_strategy.factory ~seed:config.seed ~corpus_cap
      ~initial:config.fuzz_initial ?exchange:config.fuzz_exchange
      ~energy:config.fuzz_energy ~mutate_faults:config.fuzz_mutate_faults ()

(* [deadline] is the run's absolute wall-clock bound (started +
   max_seconds); the runtime checks it inside the step loop, so a single
   long execution cannot overshoot the budget (replay never gets one — a
   recorded schedule must always re-execute in full). *)
let runtime_config ?coverage ?hb ?deadline ?scenario config ~collect_log =
  {
    Runtime.max_steps = config.max_steps;
    liveness_grace = config.liveness_grace;
    deadlock_is_bug = config.deadlock_is_bug;
    collect_log;
    coverage;
    hb;
    faults = config.faults;
    deadline;
    clock = config.clock;
    scenario;
  }

(* --- Scenario constraining ---------------------------------------------- *)

(* Per-execution scenario observer: fresh mutable state (journal, trigger
   latches, pending draw markers) for each execution, created from the
   immutable compiled scenario. [Scenario.Obs.create] validates that
   [config.faults] arms what the clauses need — callers go through
   {!Scenario.arm} before building the config, so a raise here is a
   programming error at the call site, not a user input error. *)
let scenario_obs config =
  Option.map
    (fun s -> Scenario.Obs.create s ~faults:config.faults)
    config.scenario

(* DFS enumerates its own tree and replay retraces recorded choices;
   forcing their draws would change what those strategies mean (and for
   replay the forced draws are already in the trace). The observer is
   still installed — deliveries/crashes land in the journal so conformance
   can be checked on replayed traces — but the strategy is not wrapped. *)
let scenario_steers config =
  match (config.scenario, config.strategy) with
  | None, _ -> false
  | Some _, (Dfs _ | Replay_trace _) -> false
  | Some _, _ -> true

let normalize_scenario config =
  (match (config.scenario, config.strategy) with
   | Some _, (Dfs _ | Replay_trace _) ->
     Printf.eprintf
       "[engine] strategy %s retraces its own choices; the scenario is \
        observed but does not steer\n\
        %!"
       (factory_of config).Strategy.factory_name
   | _ -> ());
  config

let scenario_wrap ~steer sobs strategy =
  match sobs with
  | Some o when steer -> Scenario.wrap ~obs:o strategy
  | _ -> strategy

(* Invoked once per execution, after the runtime returns, with the
   execution's fully-populated observer (journal, wedge count, violation
   list). In parallel runs the callback fires on worker domains and must
   be thread-safe. *)
let audit_scenario config sobs =
  match (config.scenario_audit, sobs) with
  | Some f, Some o -> f o
  | _ -> ()

(* --- Happens-before reduction ------------------------------------------ *)

(* Per-execution instrumentation: a fresh happens-before recorder
   (threaded into the runtime config) and, under [Sleep_sets], the
   sleep-set wrapper around the base strategy. *)
let instrument config strategy =
  match config.reduce with
  | No_reduction -> (strategy, None)
  | Hb_track -> (strategy, Some (Hb.create ()))
  | Sleep_sets ->
    let hb = Hb.create () in
    (Sleep_strategy.wrap ~hb strategy, Some hb)

(* When coverage is being collected, file the execution's canonical
   partial-order fingerprint into its per-execution map (absorbed into
   the run accumulator by [observe] right after). *)
let note_hb hb exec_cov =
  match (hb, exec_cov) with
  | Some h, Some cov ->
    Coverage.note_hb cov ~fingerprint:(Hb.canonical_fingerprint h)
  | _ -> ()

(* DFS enumerates its own tree and replay retraces exact recorded
   choices; pruning their enabled sets would change what they mean. Keep
   the recorder (partial orders still land in coverage) but drop the
   pruning. *)
let normalize_reduction config =
  match (config.reduce, config.strategy) with
  | Sleep_sets, (Dfs _ | Replay_trace _) ->
    Printf.eprintf
      "[engine] strategy %s is incompatible with sleep-set pruning; \
       tracking happens-before without pruning\n\
       %!"
      (factory_of config).Strategy.factory_name;
    { config with reduce = Hb_track }
  | _ -> config

let no_monitors () = []

let replay ?(monitors = no_monitors) config trace body =
  let strategy =
    match (Replay_strategy.factory trace).fresh ~iteration:0 with
    | Some s -> s
    | None -> assert false
  in
  let sobs = scenario_obs config in
  let result =
    Runtime.execute
      (runtime_config ?scenario:sobs config ~collect_log:true)
      strategy ~monitors:(monitors ()) ~name:"Harness" body
  in
  audit_scenario config sobs;
  result

(* Assemble the report of a buggy execution, optionally re-executing the
   schedule with logging on to capture a readable trace log. *)
let finish_report ~monitors config ~kind (result : Runtime.exec_result) body =
  let log =
    if config.collect_log_on_bug then
      (replay ~monitors config result.Runtime.choices body).Runtime.log
    else result.Runtime.log
  in
  {
    Error.kind;
    step = result.Runtime.bug_step;
    trace = result.Runtime.choices;
    log;
  }

(* --- Per-run coverage collection --------------------------------------- *)

(* Coverage is collected when explicitly requested, when a plateau bound
   needs it, when the strategy wants feedback (fuzz), or when a campaign
   resume carries prior coverage (which seeds the accumulator so novelty
   and the plateau are judged relative to history). *)
let wants_coverage config (factory : Strategy.factory) =
  config.collect_coverage
  || config.coverage_plateau <> None
  || config.prior_coverage <> None
  || factory.Strategy.feedback <> None

let seeded_acc config =
  let acc = Coverage.create () in
  (match config.prior_coverage with
   | Some prior -> ignore (Coverage.absorb ~into:acc prior)
   | None -> ());
  acc

(* Did this absorb count as plateau gain? Unkeyed, any core-family novelty
   does (the historical rule; schedule and hb fingerprints never count —
   see coverage.mli). Keyed on a family, only that family's novelty resets
   the counter, so e.g. [--plateau-family hb] stops a long fuzz campaign
   once it stops finding new partial orders even while coarser families
   still trickle in. *)
let plateau_gain family novelty =
  match family with
  | None -> Coverage.novel_core novelty
  | Some fam -> Coverage.novel_in novelty fam

(* The sequential accumulator: the run owns it exclusively, so merging an
   execution's map is a plain call — no lock anywhere on the path. *)
type collector = {
  acc : Coverage.t;
  gain_family : Coverage.family_kind option;
  mutable no_gain : int;  (* consecutive executions with no new point *)
}

let collector_of config (factory : Strategy.factory) =
  if wants_coverage config factory then
    Some
      {
        acc = seeded_acc config;
        gain_family = config.plateau_family;
        no_gain = 0;
      }
  else None

(* One execution's worth of coverage bookkeeping: fingerprint the schedule,
   merge into the run accumulator, update the plateau counter and feed the
   strategy back with the per-family novelty breakdown. Returns whether
   the execution was core-novel. *)
let observe collector (factory : Strategy.factory) (result : Runtime.exec_result)
    exec_cov =
  match (collector, exec_cov) with
  | Some c, Some exec ->
    Coverage.note_execution exec
      ~fingerprint:(Coverage.fingerprint result.Runtime.choices);
    let novelty = Coverage.absorb_tagged ~into:c.acc exec in
    if plateau_gain c.gain_family novelty then c.no_gain <- 0
    else c.no_gain <- c.no_gain + 1;
    (match factory.Strategy.feedback with
     | Some f -> f ~trace:result.Runtime.choices ~novelty
     | None -> ());
    Coverage.novel_core novelty
  | _ -> false

let exec_cov_of collector = Option.map (fun _ -> Coverage.create ()) collector

let hit_plateau config collector =
  match (config.coverage_plateau, collector) with
  | Some n, Some c -> c.no_gain >= n
  | _ -> false

let coverage_of collector = Option.map (fun c -> c.acc) collector

(* --- Parallel coverage: per-worker shards, batch-boundary merge -------- *)

(* The parallel accumulator. Workers never touch it per execution: each
   worker folds its executions into a private delta map and merges the
   delta here only at Worker_pool batch boundaries (and once at exit), so
   the per-execution hot path is mutex-free by construction. [absorb] is
   commutative and associative, so the merged map is identical to the
   sequential accumulator at the same budget regardless of merge order. *)
type shared_collector = {
  s_acc : Coverage.t;
  s_mu : Mutex.t;
  s_family : Coverage.family_kind option;
  s_no_gain : int Atomic.t;
      (* executions with no new point, sampled at merge epochs: a merge
         that brings novelty resets it, one that brings none adds the
         delta's execution count. Coarser than the sequential counter
         (batch granularity) but the same user-visible semantics. *)
}

let shared_collector_of config factory =
  if wants_coverage config factory then
    Some
      {
        s_acc = seeded_acc config;
        s_mu = Mutex.create ();
        s_family = config.plateau_family;
        s_no_gain = Atomic.make 0;
      }
  else None

(* Per-worker observation state, allocated in the worker's own domain.
   [view] is a worker-cumulative map used only to answer per-execution
   novelty for feedback strategies (fuzz) without consulting the shared
   accumulator — a local approximation of the sequential novelty signal. *)
type worker_obs = {
  w_factory : Strategy.factory;
  w_shared : shared_collector option;
  mutable w_delta : Coverage.t;
  mutable w_pending : int;  (* executions folded into [w_delta] *)
  w_view : Coverage.t option;
}

let worker_obs_of config shared ~worker:_ =
  let factory = factory_of config in
  {
    w_factory = factory;
    w_shared = shared;
    w_delta = Coverage.create ();
    w_pending = 0;
    w_view =
      (if factory.Strategy.feedback <> None then Some (Coverage.create ())
       else None);
  }

let obs_exec_cov obs =
  if obs.w_shared <> None || obs.w_view <> None then Some (Coverage.create ())
  else None

(* Per-execution bookkeeping, all worker-local: no locks, no shared
   writes. *)
let observe_local obs (result : Runtime.exec_result) exec_cov =
  match exec_cov with
  | None -> ()
  | Some exec ->
    Coverage.note_execution exec
      ~fingerprint:(Coverage.fingerprint result.Runtime.choices);
    (match (obs.w_view, obs.w_factory.Strategy.feedback) with
     | Some view, Some f ->
       let novelty = Coverage.absorb_tagged ~into:view exec in
       f ~trace:result.Runtime.choices ~novelty
     | _ -> ());
    (match obs.w_shared with
     | Some _ ->
       ignore (Coverage.absorb ~into:obs.w_delta exec);
       obs.w_pending <- obs.w_pending + 1
     | None -> ())

(* Batch-boundary merge: the only place worker coverage meets the shared
   accumulator (Worker_pool invokes it between batches and at exit). *)
let flush_obs obs =
  match obs.w_shared with
  | Some s when obs.w_pending > 0 ->
    let delta = obs.w_delta and pending = obs.w_pending in
    obs.w_delta <- Coverage.create ();
    obs.w_pending <- 0;
    let novelty =
      Mutex.protect s.s_mu (fun () -> Coverage.absorb_tagged ~into:s.s_acc delta)
    in
    if plateau_gain s.s_family novelty then Atomic.set s.s_no_gain 0
    else ignore (Atomic.fetch_and_add s.s_no_gain pending)
  | _ -> ()

let shared_hit_plateau config shared =
  match (config.coverage_plateau, shared) with
  | Some n, Some s -> Atomic.get s.s_no_gain >= n
  | _ -> false

let shared_coverage_of shared = Option.map (fun s -> s.s_acc) shared

(* ----------------------------------------------------------------------- *)

let run_sequential ~monitors config body =
  let factory = factory_of config in
  let collector = collector_of config factory in
  let steer = scenario_steers config in
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> started +. b) config.max_seconds in
  let total_steps = ref 0 in
  let out_of_time () =
    match deadline with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false
  in
  let stats_at ?(search_exhausted = false) ?(plateaued = false)
      ?(timed_out = false) i =
    {
      executions = i;
      elapsed = Unix.gettimeofday () -. started;
      total_steps = !total_steps;
      search_exhausted;
      coverage = coverage_of collector;
      plateaued;
      timed_out;
    }
  in
  let rec iterate i =
    if i >= config.max_executions then No_bug (stats_at i)
    else if out_of_time () then No_bug (stats_at ~timed_out:true i)
    else
      match factory.Strategy.fresh ~iteration:(config.start_iteration + i) with
      | None -> No_bug (stats_at ~search_exhausted:true i)
      | Some strategy ->
        let strategy, hb = instrument config strategy in
        let sobs = scenario_obs config in
        let strategy = scenario_wrap ~steer sobs strategy in
        let exec_cov = exec_cov_of collector in
        let result =
          Runtime.execute
            (runtime_config ?coverage:exec_cov ?hb ?deadline ?scenario:sobs
               config ~collect_log:false)
            strategy ~monitors:(monitors ()) ~name:"Harness" body
        in
        total_steps := !total_steps + result.Runtime.steps;
        note_hb hb exec_cov;
        ignore (observe collector factory result exec_cov);
        audit_scenario config sobs;
        (match result.Runtime.bug with
         | Some kind ->
           let report = finish_report ~monitors config ~kind result body in
           Bug_found (report, stats_at (i + 1))
         | None ->
           if result.Runtime.timed_out then
             No_bug (stats_at ~timed_out:true (i + 1))
           else if hit_plateau config collector then
             No_bug (stats_at ~plateaued:true (i + 1))
           else iterate (i + 1))
  in
  iterate 0

(* Parallel exploration: each worker domain owns a private factory built
   from the same config and explores the global iteration indices assigned
   to it by the pool, so the set of schedules explored is exactly the
   sequential set for every worker count (seeds derive from the global
   iteration index, not from the worker). Each worker folds coverage into
   a private shard and merges it into the shared accumulator only at batch
   boundaries; merge order varies with scheduling but the merged map does
   not (absorb is commutative). The per-execution hot path takes no lock
   and writes no shared atomic. *)
let run_parallel ~monitors ~workers config body =
  let shared = shared_collector_of config (factory_of config) in
  let steer = scenario_steers config in
  let deadline =
    Option.map (fun b -> Unix.gettimeofday () +. b) config.max_seconds
  in
  let exec_timed_out = Atomic.make false in
  let winner, pool_stats =
    Worker_pool.hunt ~workers ~max_iterations:config.max_executions
      ?max_seconds:config.max_seconds
      ~init:(worker_obs_of config shared)
      ~on_batch:flush_obs
      ~body:(fun obs ~iteration ->
        match
          obs.w_factory.Strategy.fresh
            ~iteration:(config.start_iteration + iteration)
        with
        | None -> (None, 0)
        | Some strategy ->
          let sobs = scenario_obs config in
          let strategy = scenario_wrap ~steer sobs strategy in
          let exec_cov = obs_exec_cov obs in
          let result =
            Runtime.execute
              (runtime_config ?coverage:exec_cov ?deadline ?scenario:sobs
                 config ~collect_log:false)
              strategy ~monitors:(monitors ()) ~name:"Harness" body
          in
          observe_local obs result exec_cov;
          audit_scenario config sobs;
          if result.Runtime.timed_out then Atomic.set exec_timed_out true;
          let payload =
            match result.Runtime.bug with
            | Some kind -> Some (`Bug (kind, result))
            | None ->
              if shared_hit_plateau config shared then Some `Plateau else None
          in
          (payload, result.Runtime.steps))
      ()
  in
  let stats ~plateaued =
    {
      executions = pool_stats.Worker_pool.executions;
      elapsed = pool_stats.Worker_pool.elapsed;
      total_steps = pool_stats.Worker_pool.total_steps;
      search_exhausted = false;
      coverage = shared_coverage_of shared;
      plateaued;
      timed_out =
        pool_stats.Worker_pool.timed_out || Atomic.get exec_timed_out;
    }
  in
  match winner with
  | None -> No_bug (stats ~plateaued:false)
  | Some (`Plateau, _iteration) -> No_bug (stats ~plateaued:true)
  | Some (`Bug (kind, result), _iteration) ->
    Bug_found (finish_report ~monitors config ~kind result body, stats ~plateaued:false)

(* Parallel mode needs a parallel-safe strategy (a stateless factory each
   worker can instantiate privately); otherwise fall back with a notice. *)
let parallel_plan config =
  let workers = Worker_pool.resolve config.workers in
  if workers <= 1 || config.max_executions <= 1 then `Sequential
  else if config.reduce <> No_reduction then begin
    (* the recorder and sleep sets are per-execution, but the reduction's
       value lies in the sequentially-shared coverage of partial orders;
       like DFS, fall back with a notice *)
    Printf.eprintf
      "[engine] happens-before reduction is sequential-only; ignoring \
       workers=%d and exploring sequentially\n\
       %!"
      workers;
    `Sequential
  end
  else begin
    let factory = factory_of config in
    if factory.Strategy.parallel_safe then `Parallel workers
    else begin
      Printf.eprintf
        "[engine] strategy %s keeps state across executions; ignoring \
         workers=%d and exploring sequentially\n\
         %!"
        factory.Strategy.factory_name workers;
      `Sequential
    end
  end

let run ?(monitors = no_monitors) config body =
  let config = normalize_scenario (normalize_reduction config) in
  match parallel_plan config with
  | `Sequential -> run_sequential ~monitors config body
  | `Parallel workers -> run_parallel ~monitors ~workers config body

(* --- Explore: full-budget coverage measurement ------------------------- *)

(* Like [run] but never stops at a bug: the whole budget executes (subject
   to max_seconds / plateau), which makes coverage comparable across
   strategies — a strategy that trips a bug early would otherwise be
   charged fewer executions than its rivals. *)
let explore_sequential ~monitors config body =
  let factory = factory_of config in
  let collector = collector_of config factory in
  let steer = scenario_steers config in
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> started +. b) config.max_seconds in
  let total_steps = ref 0 in
  let out_of_time () =
    match deadline with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false
  in
  let stats_at ?(search_exhausted = false) ?(plateaued = false)
      ?(timed_out = false) i =
    {
      executions = i;
      elapsed = Unix.gettimeofday () -. started;
      total_steps = !total_steps;
      search_exhausted;
      coverage = coverage_of collector;
      plateaued;
      timed_out;
    }
  in
  let rec iterate i =
    if i >= config.max_executions then stats_at i
    else if out_of_time () then stats_at ~timed_out:true i
    else
      match factory.Strategy.fresh ~iteration:(config.start_iteration + i) with
      | None -> stats_at ~search_exhausted:true i
      | Some strategy ->
        let strategy, hb = instrument config strategy in
        let sobs = scenario_obs config in
        let strategy = scenario_wrap ~steer sobs strategy in
        let exec_cov = exec_cov_of collector in
        let result =
          Runtime.execute
            (runtime_config ?coverage:exec_cov ?hb ?deadline ?scenario:sobs
               config ~collect_log:false)
            strategy ~monitors:(monitors ()) ~name:"Harness" body
        in
        total_steps := !total_steps + result.Runtime.steps;
        note_hb hb exec_cov;
        ignore (observe collector factory result exec_cov);
        audit_scenario config sobs;
        if result.Runtime.timed_out then stats_at ~timed_out:true (i + 1)
        else if hit_plateau config collector then
          stats_at ~plateaued:true (i + 1)
        else iterate (i + 1)
  in
  iterate 0

let explore_parallel ~monitors ~workers config body =
  let shared = shared_collector_of config (factory_of config) in
  let steer = scenario_steers config in
  let deadline =
    Option.map (fun b -> Unix.gettimeofday () +. b) config.max_seconds
  in
  let exec_timed_out = Atomic.make false in
  let winner, pool_stats =
    Worker_pool.hunt ~workers ~max_iterations:config.max_executions
      ?max_seconds:config.max_seconds
      ~init:(worker_obs_of config shared)
      ~on_batch:flush_obs
      ~body:(fun obs ~iteration ->
        match
          obs.w_factory.Strategy.fresh
            ~iteration:(config.start_iteration + iteration)
        with
        | None -> (None, 0)
        | Some strategy ->
          let sobs = scenario_obs config in
          let strategy = scenario_wrap ~steer sobs strategy in
          let exec_cov = obs_exec_cov obs in
          let result =
            Runtime.execute
              (runtime_config ?coverage:exec_cov ?deadline ?scenario:sobs
                 config ~collect_log:false)
              strategy ~monitors:(monitors ()) ~name:"Harness" body
          in
          observe_local obs result exec_cov;
          audit_scenario config sobs;
          if result.Runtime.timed_out then Atomic.set exec_timed_out true;
          ( (if shared_hit_plateau config shared then Some () else None),
            result.Runtime.steps ))
      ()
  in
  {
    executions = pool_stats.Worker_pool.executions;
    elapsed = pool_stats.Worker_pool.elapsed;
    total_steps = pool_stats.Worker_pool.total_steps;
    search_exhausted = false;
    coverage = shared_coverage_of shared;
    plateaued = winner <> None;
    timed_out = pool_stats.Worker_pool.timed_out || Atomic.get exec_timed_out;
  }

let explore ?(monitors = no_monitors) config body =
  let config =
    normalize_scenario
      (normalize_reduction { config with collect_coverage = true })
  in
  match parallel_plan config with
  | `Sequential -> explore_sequential ~monitors config body
  | `Parallel workers -> explore_parallel ~monitors ~workers config body

(* Survey mode: keep exploring after bugs are found, deduplicating by the
   rendered bug kind; returns each distinct bug's first report and how many
   executions reproduced it. *)
let report_of_result kind (result : Runtime.exec_result) =
  {
    Error.kind;
    step = result.Runtime.bug_step;
    trace = result.Runtime.choices;
    log = result.Runtime.log;
  }

let survey_sequential ~monitors config body =
  let factory = factory_of config in
  let steer = scenario_steers config in
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> started +. b) config.max_seconds in
  let out_of_time () =
    match deadline with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false
  in
  let found : (string, Error.report * int) Hashtbl.t = Hashtbl.create 8 in
  let order : string list ref = ref [] in
  let rec iterate i =
    (* The wall-clock budget applies here too: stop at the deadline and
       return the violations collected so far. *)
    if i >= config.max_executions || out_of_time () then ()
    else
      match factory.Strategy.fresh ~iteration:(config.start_iteration + i) with
      | None -> ()
      | Some strategy ->
        let strategy, hb = instrument config strategy in
        ignore hb;
        let sobs = scenario_obs config in
        let strategy = scenario_wrap ~steer sobs strategy in
        let result =
          Runtime.execute
            (runtime_config ?hb ?deadline ?scenario:sobs config
               ~collect_log:false)
            strategy ~monitors:(monitors ()) ~name:"Harness" body
        in
        audit_scenario config sobs;
        (match result.Runtime.bug with
         | None -> ()
         | Some kind ->
           let key = Error.kind_to_string kind in
           (match Hashtbl.find_opt found key with
            | Some (report, n) -> Hashtbl.replace found key (report, n + 1)
            | None ->
              Hashtbl.replace found key (report_of_result kind result, 1);
              order := key :: !order));
        iterate (i + 1)
  in
  iterate 0;
  List.rev_map (fun key -> Hashtbl.find found key) !order

(* Workers dedupe into a shared lock-protected table; each distinct kind
   keeps the report from the lowest global iteration, and kinds are
   returned ordered by that iteration — the same order the sequential
   survey discovers them in. *)
let survey_parallel ~monitors ~workers config body =
  let mu = Mutex.create () in
  let steer = scenario_steers config in
  let found : (string, Error.report * int * int) Hashtbl.t =
    Hashtbl.create 8
  in
  let deadline =
    Option.map (fun b -> Unix.gettimeofday () +. b) config.max_seconds
  in
  let (_ : (unit * int) list), (_ : Worker_pool.stats) =
    Worker_pool.sweep ~workers ~max_iterations:config.max_executions
      ?max_seconds:config.max_seconds
      ~init:(fun ~worker:_ -> factory_of config)
      ~body:(fun factory ~iteration ->
        match
          factory.Strategy.fresh ~iteration:(config.start_iteration + iteration)
        with
        | None -> (None, 0)
        | Some strategy ->
          let sobs = scenario_obs config in
          let strategy = scenario_wrap ~steer sobs strategy in
          let result =
            Runtime.execute
              (runtime_config ?deadline ?scenario:sobs config
                 ~collect_log:false)
              strategy ~monitors:(monitors ()) ~name:"Harness" body
          in
          audit_scenario config sobs;
          (match result.Runtime.bug with
           | None -> ()
           | Some kind ->
             let key = Error.kind_to_string kind in
             Mutex.protect mu (fun () ->
                 match Hashtbl.find_opt found key with
                 | Some (report, n, first) ->
                   if iteration < first then
                     Hashtbl.replace found key
                       (report_of_result kind result, n + 1, iteration)
                   else Hashtbl.replace found key (report, n + 1, first)
                 | None ->
                   Hashtbl.replace found key
                     (report_of_result kind result, 1, iteration)));
          (None, result.Runtime.steps))
      ()
  in
  Hashtbl.fold (fun _ entry acc -> entry :: acc) found []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  |> List.map (fun (report, n, _) -> (report, n))

let survey ?(monitors = no_monitors) config body =
  let config = normalize_scenario (normalize_reduction config) in
  match parallel_plan config with
  | `Sequential -> survey_sequential ~monitors config body
  | `Parallel workers -> survey_parallel ~monitors ~workers config body

let ndc = function
  | Bug_found (report, _) -> Some (Trace.length report.Error.trace)
  | No_bug _ -> None

let pp_stats_extra fmt stats =
  (match stats.coverage with
   | Some cov -> Format.fprintf fmt ", %a" Coverage.pp_totals cov
   | None -> ());
  if stats.plateaued then
    Format.fprintf fmt ", stopped on coverage plateau";
  if stats.timed_out then
    Format.fprintf fmt ", stopped at the time budget"

let pp_outcome fmt = function
  | Bug_found (report, stats) ->
    Format.fprintf fmt
      "@[<v>BUG FOUND after %d execution(s), %d total step(s), %.2fs%a:@,%a@]"
      stats.executions stats.total_steps stats.elapsed pp_stats_extra stats
      Error.pp_report report
  | No_bug stats ->
    Format.fprintf fmt "no bug found in %d execution(s) (%d total step(s), %.2fs%s%a)"
      stats.executions stats.total_steps stats.elapsed
      (if stats.search_exhausted then ", search space exhausted" else "")
      pp_stats_extra stats
