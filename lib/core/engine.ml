type strategy_spec =
  | Random
  | Pct of { change_points : int }
  | Dfs of { max_depth : int; int_cap : int }
  | Round_robin
  | Delay_bounded of { delays : int }
  | Replay_trace of Trace.t

type config = {
  strategy : strategy_spec;
  seed : int64;
  max_executions : int;
  max_seconds : float option;
  max_steps : int;
  liveness_grace : int option;
  deadlock_is_bug : bool;
  collect_log_on_bug : bool;
  workers : int;
}

let default_config =
  {
    strategy = Random;
    seed = 0L;
    max_executions = 10_000;
    max_seconds = None;
    max_steps = 5_000;
    liveness_grace = None;
    deadlock_is_bug = true;
    collect_log_on_bug = false;
    workers = 1;
  }

type stats = {
  executions : int;
  elapsed : float;
  total_steps : int;
  search_exhausted : bool;
}

type outcome =
  | Bug_found of Error.report * stats
  | No_bug of stats

let factory_of config =
  match config.strategy with
  | Random -> Random_strategy.factory ~seed:config.seed
  | Pct { change_points } ->
    Pct_strategy.factory ~seed:config.seed ~change_points
      ~max_steps:config.max_steps ()
  | Dfs { max_depth; int_cap } -> Dfs_strategy.factory ~max_depth ~int_cap ()
  | Round_robin -> Rr_strategy.factory ()
  | Delay_bounded { delays } ->
    Delay_strategy.factory ~seed:config.seed ~delays
      ~max_steps:config.max_steps ()
  | Replay_trace t -> Replay_strategy.factory t

let runtime_config config ~collect_log =
  {
    Runtime.max_steps = config.max_steps;
    liveness_grace = config.liveness_grace;
    deadlock_is_bug = config.deadlock_is_bug;
    collect_log;
  }

let no_monitors () = []

let replay ?(monitors = no_monitors) config trace body =
  let strategy =
    match (Replay_strategy.factory trace).fresh ~iteration:0 with
    | Some s -> s
    | None -> assert false
  in
  Runtime.execute
    (runtime_config config ~collect_log:true)
    strategy ~monitors:(monitors ()) ~name:"Harness" body

(* Assemble the report of a buggy execution, optionally re-executing the
   schedule with logging on to capture a readable trace log. *)
let finish_report ~monitors config ~kind (result : Runtime.exec_result) body =
  let log =
    if config.collect_log_on_bug then
      (replay ~monitors config result.Runtime.choices body).Runtime.log
    else result.Runtime.log
  in
  {
    Error.kind;
    step = result.Runtime.bug_step;
    trace = result.Runtime.choices;
    log;
  }

let run_sequential ~monitors config body =
  let factory = factory_of config in
  let started = Unix.gettimeofday () in
  let total_steps = ref 0 in
  let out_of_time () =
    match config.max_seconds with
    | Some budget -> Unix.gettimeofday () -. started >= budget
    | None -> false
  in
  let rec iterate i =
    if i >= config.max_executions || out_of_time () then
      No_bug
        {
          executions = i;
          elapsed = Unix.gettimeofday () -. started;
          total_steps = !total_steps;
          search_exhausted = false;
        }
    else
      match factory.Strategy.fresh ~iteration:i with
      | None ->
        No_bug
          {
            executions = i;
            elapsed = Unix.gettimeofday () -. started;
            total_steps = !total_steps;
            search_exhausted = true;
          }
      | Some strategy ->
        let result =
          Runtime.execute
            (runtime_config config ~collect_log:false)
            strategy ~monitors:(monitors ()) ~name:"Harness" body
        in
        total_steps := !total_steps + result.Runtime.steps;
        (match result.Runtime.bug with
         | None -> iterate (i + 1)
         | Some kind ->
           let report = finish_report ~monitors config ~kind result body in
           let stats =
             {
               executions = i + 1;
               elapsed = Unix.gettimeofday () -. started;
               total_steps = !total_steps;
               search_exhausted = false;
             }
           in
           Bug_found (report, stats))
  in
  iterate 0

(* Parallel exploration: each worker domain owns a private factory built
   from the same config and explores the global iteration indices assigned
   to it by the pool, so the set of schedules explored is exactly the
   sequential set for every worker count (seeds derive from the global
   iteration index, not from the worker). *)
let run_parallel ~monitors ~workers config body =
  let winner, pool_stats =
    Worker_pool.hunt ~workers ~max_iterations:config.max_executions
      ?max_seconds:config.max_seconds
      ~init:(fun ~worker:_ -> factory_of config)
      ~body:(fun factory ~iteration ->
        match factory.Strategy.fresh ~iteration with
        | None -> (None, 0)
        | Some strategy ->
          let result =
            Runtime.execute
              (runtime_config config ~collect_log:false)
              strategy ~monitors:(monitors ()) ~name:"Harness" body
          in
          let payload =
            match result.Runtime.bug with
            | None -> None
            | Some kind -> Some (kind, result)
          in
          (payload, result.Runtime.steps))
      ()
  in
  let stats =
    {
      executions = pool_stats.Worker_pool.executions;
      elapsed = pool_stats.Worker_pool.elapsed;
      total_steps = pool_stats.Worker_pool.total_steps;
      search_exhausted = false;
    }
  in
  match winner with
  | None -> No_bug stats
  | Some ((kind, result), _iteration) ->
    Bug_found (finish_report ~monitors config ~kind result body, stats)

(* Parallel mode needs a parallel-safe strategy (a stateless factory each
   worker can instantiate privately); otherwise fall back with a notice. *)
let parallel_plan config =
  let workers = Worker_pool.resolve config.workers in
  if workers <= 1 || config.max_executions <= 1 then `Sequential
  else begin
    let factory = factory_of config in
    if factory.Strategy.parallel_safe then `Parallel workers
    else begin
      Printf.eprintf
        "[engine] strategy %s keeps state across executions; ignoring \
         workers=%d and exploring sequentially\n\
         %!"
        factory.Strategy.factory_name workers;
      `Sequential
    end
  end

let run ?(monitors = no_monitors) config body =
  match parallel_plan config with
  | `Sequential -> run_sequential ~monitors config body
  | `Parallel workers -> run_parallel ~monitors ~workers config body

(* Survey mode: keep exploring after bugs are found, deduplicating by the
   rendered bug kind; returns each distinct bug's first report and how many
   executions reproduced it. *)
let report_of_result kind (result : Runtime.exec_result) =
  {
    Error.kind;
    step = result.Runtime.bug_step;
    trace = result.Runtime.choices;
    log = result.Runtime.log;
  }

let survey_sequential ~monitors config body =
  let factory = factory_of config in
  let started = Unix.gettimeofday () in
  let out_of_time () =
    match config.max_seconds with
    | Some budget -> Unix.gettimeofday () -. started >= budget
    | None -> false
  in
  let found : (string, Error.report * int) Hashtbl.t = Hashtbl.create 8 in
  let order : string list ref = ref [] in
  let rec iterate i =
    (* The wall-clock budget applies here too: stop at the deadline and
       return the violations collected so far. *)
    if i >= config.max_executions || out_of_time () then ()
    else
      match factory.Strategy.fresh ~iteration:i with
      | None -> ()
      | Some strategy ->
        let result =
          Runtime.execute
            (runtime_config config ~collect_log:false)
            strategy ~monitors:(monitors ()) ~name:"Harness" body
        in
        (match result.Runtime.bug with
         | None -> ()
         | Some kind ->
           let key = Error.kind_to_string kind in
           (match Hashtbl.find_opt found key with
            | Some (report, n) -> Hashtbl.replace found key (report, n + 1)
            | None ->
              Hashtbl.replace found key (report_of_result kind result, 1);
              order := key :: !order));
        iterate (i + 1)
  in
  iterate 0;
  List.rev_map (fun key -> Hashtbl.find found key) !order

(* Workers dedupe into a shared lock-protected table; each distinct kind
   keeps the report from the lowest global iteration, and kinds are
   returned ordered by that iteration — the same order the sequential
   survey discovers them in. *)
let survey_parallel ~monitors ~workers config body =
  let mu = Mutex.create () in
  let found : (string, Error.report * int * int) Hashtbl.t =
    Hashtbl.create 8
  in
  let (_ : (unit * int) list), (_ : Worker_pool.stats) =
    Worker_pool.sweep ~workers ~max_iterations:config.max_executions
      ?max_seconds:config.max_seconds
      ~init:(fun ~worker:_ -> factory_of config)
      ~body:(fun factory ~iteration ->
        match factory.Strategy.fresh ~iteration with
        | None -> (None, 0)
        | Some strategy ->
          let result =
            Runtime.execute
              (runtime_config config ~collect_log:false)
              strategy ~monitors:(monitors ()) ~name:"Harness" body
          in
          (match result.Runtime.bug with
           | None -> ()
           | Some kind ->
             let key = Error.kind_to_string kind in
             Mutex.protect mu (fun () ->
                 match Hashtbl.find_opt found key with
                 | Some (report, n, first) ->
                   if iteration < first then
                     Hashtbl.replace found key
                       (report_of_result kind result, n + 1, iteration)
                   else Hashtbl.replace found key (report, n + 1, first)
                 | None ->
                   Hashtbl.replace found key
                     (report_of_result kind result, 1, iteration)));
          (None, result.Runtime.steps))
      ()
  in
  Hashtbl.fold (fun _ entry acc -> entry :: acc) found []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  |> List.map (fun (report, n, _) -> (report, n))

let survey ?(monitors = no_monitors) config body =
  match parallel_plan config with
  | `Sequential -> survey_sequential ~monitors config body
  | `Parallel workers -> survey_parallel ~monitors ~workers config body

let ndc = function
  | Bug_found (report, _) -> Some (Trace.length report.Error.trace)
  | No_bug _ -> None

let pp_outcome fmt = function
  | Bug_found (report, stats) ->
    Format.fprintf fmt
      "@[<v>BUG FOUND after %d execution(s), %.2fs:@,%a@]" stats.executions
      stats.elapsed Error.pp_report report
  | No_bug stats ->
    Format.fprintf fmt "no bug found in %d execution(s) (%.2fs%s)"
      stats.executions stats.elapsed
      (if stats.search_exhausted then ", search space exhausted" else "")
