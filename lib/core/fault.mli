(** Fault-injection specifications.

    The paper's methodology (§2.3, §3.6) is to model failures as {e
    controlled nondeterminism}: whether and where a fault strikes is just
    another scheduling choice, drawn from the strategy and recorded in the
    trace. This module is the pure description half — which fault kinds are
    armed and under what budget; the actual injection lives in
    {!Runtime.send_faulty}, {!Runtime.crash} and {!Fault_driver}. *)

type kind =
  | Drop  (** the message is silently lost *)
  | Duplicate  (** the message is enqueued twice *)
  | Delay  (** the message is re-enqueued behind k later deliveries *)
  | Crash  (** a persistent machine loses inbox + volatile state, restarts *)

type spec = {
  drop : bool;
  duplicate : bool;
  delay : bool;
  crash : bool;
  budget : int;
      (** total faults injectable per execution, shared across kinds *)
  max_delay : int;
      (** a delayed message is held back [1 + nondet_int max_delay]
          deliveries *)
}

(** No faults: every [send_faulty] degenerates to a plain [send] with zero
    strategy draws, and no [Fault_driver] should be installed. *)
val none : spec

(** Some fault kind is armed and the budget is positive. *)
val enabled : spec -> bool

(** A message-fault kind (drop/dup/delay) is armed and the budget is
    positive — i.e. [send_faulty] will actually draw. *)
val message_faults : spec -> bool

(** [make ?budget ?max_delay kinds] builds a spec arming exactly [kinds].
    [budget] defaults to 1, [max_delay] to 3.
    @raise Invalid_argument on negative budget or non-positive max_delay. *)
val make : ?budget:int -> ?max_delay:int -> kind list -> spec

(** Armed kinds in canonical order (drop, dup, delay, crash). *)
val kinds : spec -> kind list

val kind_to_string : kind -> string

(** Parse a CLI spec like ["drop,dup,delay,crash"] (budget defaults to 1;
    override via record update), ["none"], or anything {!to_string}
    produces — ["drop,crash(budget=2)"]. Strict: unknown kinds, an empty
    list, or a malformed budget suffix are errors. [max_delay] is not part
    of the grammar, so [parse] of [to_string s] round-trips every spec
    with the default [max_delay]. *)
val parse : string -> (spec, string) result

(** Canonical rendering: ["none"] for a spec with no armed kinds,
    otherwise the comma-separated kind list with a ["(budget=N)"]
    suffix. A fixpoint of [parse]. *)
val to_string : spec -> string
