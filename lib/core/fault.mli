(** Fault-injection specifications.

    The paper's methodology (§2.3, §3.6) is to model failures as {e
    controlled nondeterminism}: whether and where a fault strikes is just
    another scheduling choice, drawn from the strategy and recorded in the
    trace. This module is the pure description half — which fault kinds are
    armed and under what budget; the actual injection lives in
    {!Runtime.send_faulty}, {!Runtime.crash} and {!Fault_driver}. *)

type kind =
  | Drop  (** the message is silently lost *)
  | Duplicate  (** the message is enqueued twice *)
  | Delay  (** the message is re-enqueued behind k later deliveries *)
  | Crash  (** a persistent machine loses inbox + volatile state, restarts *)

(** Latency distribution for {!Delay} faults. *)
type dist =
  | Uniform  (** one draw over [1..max_delay] — the historical behavior *)
  | Bimodal
      (** links are either {e fast} (latency 1–2) or {e slow} (latency
          [2*max_delay .. 3*max_delay - 1]) — the long-tail shape real
          networks show, giving timeout races both a "just missed" and a
          "wildly late" mode to explore *)

type spec = {
  drop : bool;
  duplicate : bool;
  delay : bool;
  crash : bool;
  budget : int;
      (** total faults injectable per execution, shared across kinds *)
  max_delay : int;
      (** scale of delay latencies: a [Uniform] delayed message is held
          back [1 + nondet_int max_delay] deliveries (clock off) or
          virtual-time units (clock on) *)
  delay_dist : dist;
      (** latency distribution for delayed messages; only meaningful with
          [delay] armed ({!make} normalizes it to [Uniform] otherwise) *)
}

(** No faults: every [send_faulty] degenerates to a plain [send] with zero
    strategy draws, and no [Fault_driver] should be installed. *)
val none : spec

(** Some fault kind is armed and the budget is positive. *)
val enabled : spec -> bool

(** A message-fault kind (drop/dup/delay) is armed and the budget is
    positive — i.e. [send_faulty] will actually draw. *)
val message_faults : spec -> bool

(** [make ?budget ?max_delay ?delay_dist kinds] builds a spec arming
    exactly [kinds]. [budget] defaults to 1, [max_delay] to 3,
    [delay_dist] to [Uniform] (and is forced to [Uniform] when [Delay] is
    not among [kinds]).
    @raise Invalid_argument on negative budget or non-positive max_delay. *)
val make : ?budget:int -> ?max_delay:int -> ?delay_dist:dist -> kind list -> spec

(** Armed kinds in canonical order (drop, dup, delay, crash). *)
val kinds : spec -> kind list

val kind_to_string : kind -> string

(** Parse a CLI spec like ["drop,dup,delay,crash"] (budget defaults to 1;
    override via record update), ["none"], or anything {!to_string}
    produces — ["drop,crash(budget=2)"]. The delay kind may carry a
    distribution: ["delay"] and ["delay:uniform"] are [Uniform],
    ["delay:bimodal"] is [Bimodal]; mixing spellings with different
    distributions in one spec is an error. Strict: unknown kinds or
    distributions, an empty list, or a malformed budget suffix are
    errors. [max_delay] is not part of the grammar, so [parse] of
    [to_string s] round-trips every spec with the default [max_delay]. *)
val parse : string -> (spec, string) result

(** Canonical rendering: ["none"] for a spec with no armed kinds,
    otherwise the comma-separated kind list with a ["(budget=N)"]
    suffix; the delay kind renders as ["delay:bimodal"] under [Bimodal]
    and plain ["delay"] under [Uniform]. A fixpoint of [parse]. *)
val to_string : spec -> string
