type ('op, 'res) operation = {
  id : int;
  client : string;
  op : 'op;
  op_repr : string;
  invoked_at : int;
  invoke_seq : int;
  mutable result : ('res * string * int * int) option;
}

(* Events in recording order, kept for serialization. The ops table is
   the checker-facing view; both reference the same operation records. *)
type ('op, 'res) event =
  | Ev_invoke of ('op, 'res) operation
  | Ev_respond of { op : ('op, 'res) operation; seq : int }

type ('op, 'res) t = {
  mutable ops : ('op, 'res) operation array;  (* indexed by id; grows *)
  mutable n_ops : int;
  mutable events_rev : ('op, 'res) event list;
  mutable next_seq : int;
  mutable n_completed : int;
  on_complete : (string -> unit) option;
}

let create ?on_complete () =
  {
    ops = [||];
    n_ops = 0;
    events_rev = [];
    next_seq = 0;
    n_completed = 0;
    on_complete;
  }

let check_repr ~what s =
  if String.contains s '\n' then
    invalid_arg (Printf.sprintf "History: %s contains a newline: %S" what s)

let check_client s =
  check_repr ~what:"client" s;
  if s = "" || String.contains s ' ' then
    invalid_arg (Printf.sprintf "History: bad client name %S" s)

let grow t =
  let cap = Array.length t.ops in
  if t.n_ops >= cap then begin
    let dummy = t.ops.(0) in
    let bigger = Array.make (max 8 (2 * cap)) dummy in
    Array.blit t.ops 0 bigger 0 t.n_ops;
    t.ops <- bigger
  end

let invoke t ~client ~at ~repr op =
  check_client client;
  check_repr ~what:"op repr" repr;
  let id = t.n_ops in
  let o =
    {
      id;
      client;
      op;
      op_repr = repr;
      invoked_at = at;
      invoke_seq = t.next_seq;
      result = None;
    }
  in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.ops = 0 then t.ops <- Array.make 8 o else grow t;
  t.ops.(id) <- o;
  t.n_ops <- t.n_ops + 1;
  t.events_rev <- Ev_invoke o :: t.events_rev;
  id

let respond t ~id ~at ~repr res =
  check_repr ~what:"result repr" repr;
  if id < 0 || id >= t.n_ops then
    invalid_arg (Printf.sprintf "History.respond: unknown operation id %d" id);
  let o = t.ops.(id) in
  (match o.result with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "History.respond: operation %d already completed" id)
  | None -> ());
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  o.result <- Some (res, repr, at, seq);
  t.n_completed <- t.n_completed + 1;
  t.events_rev <- Ev_respond { op = o; seq } :: t.events_rev;
  match t.on_complete with
  | None -> ()
  | Some f -> f (Printf.sprintf "%s %s -> %s" o.client o.op_repr repr)

let operations t = Array.to_list (Array.sub t.ops 0 t.n_ops)
let size t = t.n_ops
let completed t = t.n_completed

(* --- serialization --- *)

let render_event buf = function
  | Ev_invoke o ->
      Buffer.add_string buf
        (Printf.sprintf "i %d %d %d %s %s\n" o.id o.invoke_seq o.invoked_at
           o.client o.op_repr)
  | Ev_respond { op = o; seq } ->
      let repr, at =
        match o.result with
        | Some (_, repr, at, _) -> (repr, at)
        | None -> assert false
      in
      Buffer.add_string buf (Printf.sprintf "r %d %d %d %s\n" o.id seq at repr)

let to_string t =
  let buf = Buffer.create 256 in
  List.iter (render_event buf) (List.rev t.events_rev);
  Buffer.contents buf

let fail line msg =
  invalid_arg (Printf.sprintf "History.of_string: %s in line %S" msg line)

(* Strict int field: canonical decimal only (no leading zeros except "0",
   no signs) so to_string is a fixpoint of parsing. *)
let int_field line s =
  let ok =
    s <> ""
    && (String.length s = 1 || s.[0] <> '0')
    && String.for_all (fun c -> c >= '0' && c <= '9') s
  in
  if not ok then fail line "bad integer field";
  int_of_string s

(* Split [s] into at most [n] space-separated fields; the last field
   absorbs the remainder (reprs may contain spaces). *)
let split_fields line s n =
  let rec go start k acc =
    if k = n - 1 then
      List.rev (String.sub s start (String.length s - start) :: acc)
    else
      match String.index_from_opt s start ' ' with
      | None -> fail line "too few fields"
      | Some i ->
          if i = start then fail line "empty field";
          go (i + 1) (k + 1) (String.sub s start (i - start) :: acc)
  in
  if s = "" then fail line "too few fields" else go 0 0 []

let of_string s =
  let t = create () in
  let expect_seq = ref 0 in
  let lines = String.split_on_char '\n' s in
  let rec loop = function
    | [] -> ()
    | [ "" ] -> ()  (* trailing newline *)
    | line :: rest ->
        (if String.length line < 2 || line.[1] <> ' ' then
           fail line "expected \"i \" or \"r \" prefix"
         else
           let body = String.sub line 2 (String.length line - 2) in
           match line.[0] with
           | 'i' -> (
               match split_fields line body 5 with
               | [ id_s; seq_s; at_s; client; repr ] ->
                   let id = int_field line id_s in
                   let seq = int_field line seq_s in
                   let at = int_field line at_s in
                   if id <> t.n_ops then fail line "non-dense operation id";
                   if seq <> !expect_seq then fail line "out-of-order seq";
                   incr expect_seq;
                   if repr = "" then fail line "empty op repr";
                   (try ignore (invoke t ~client ~at ~repr repr : int)
                    with Invalid_argument m -> fail line m)
               | _ -> fail line "bad invoke record")
           | 'r' -> (
               match split_fields line body 4 with
               | [ id_s; seq_s; at_s; repr ] ->
                   let id = int_field line id_s in
                   let seq = int_field line seq_s in
                   let at = int_field line at_s in
                   if seq <> !expect_seq then fail line "out-of-order seq";
                   incr expect_seq;
                   if repr = "" then fail line "empty result repr";
                   (try respond t ~id ~at ~repr repr
                    with Invalid_argument m -> fail line m)
               | _ -> fail line "bad respond record")
           | _ -> fail line "expected \"i \" or \"r \" prefix");
        loop rest
  in
  loop lines;
  t

let save ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
