(** Client-operation histories.

    A history records the {e invocations} and {e responses} of client
    operations against a system under test — who asked for what, when, and
    what came back — so a generic correctness oracle
    ({!Linearizability}) can judge the execution afterwards instead of a
    bespoke in-harness spec check. This is the WGL-style testing
    methodology ("Model-based Testing of Practical Distributed Systems in
    Actor Model"): every new workload is a client history, not a new spec
    harness.

    A recorder is created {e inside} the harness body, so every execution
    gets a fresh one, and recording is draw-free: attaching a history to a
    harness never perturbs the schedule explored (the same zero-cost
    contract as logging and coverage).

    Each event carries two timestamps:
    - [at]: the {e virtual} time ({!Runtime.now}) at which it happened —
      coarse under the clock, the step count otherwise;
    - a {e sequence number} assigned by the recorder in recording order.
      The runtime serializes the whole system onto one thread, so
      recording order {e is} real-time order; the checker derives the
      precedence relation (op A finished before op B started) from
      sequence numbers, never from the coarser virtual clock.

    Histories serialize to a strict line-oriented text format (the same
    philosophy as {!Trace}), so a witness trace can be stored alongside
    the history it produced and replays can be checked byte-for-byte. *)

type ('op, 'res) operation = {
  id : int;  (** dense, assigned in invocation order *)
  client : string;  (** invoking machine's name (no spaces) *)
  op : 'op;
  op_repr : string;  (** rendering of [op]; stable, single-line *)
  invoked_at : int;  (** virtual timestamp of the invocation *)
  invoke_seq : int;  (** recording-order sequence of the invocation *)
  mutable result : ('res * string * int * int) option;
      (** [(res, res_repr, responded_at, respond_seq)]; [None] while the
          operation is pending *)
}

type ('op, 'res) t

(** [create ()] makes an empty recorder. [on_complete], when given, is
    called at every {!respond} with the completed operation rendered as
    ["client op_repr -> res_repr"] — the hook harnesses use to file
    operations into the coverage [history] family
    ({!Runtime.history_point}). *)
val create : ?on_complete:(string -> unit) -> unit -> ('op, 'res) t

(** [invoke t ~client ~at ~repr op] records an invocation and returns the
    operation's id.
    @raise Invalid_argument if [client] or [repr] contains a newline, or
    [client] contains a space. *)
val invoke : ('op, 'res) t -> client:string -> at:int -> repr:string -> 'op -> int

(** [respond t ~id ~at ~repr res] completes operation [id].
    @raise Invalid_argument on an unknown id, a double response, or a
    [repr] containing a newline. *)
val respond : ('op, 'res) t -> id:int -> at:int -> repr:string -> 'res -> unit

(** Operations in id (invocation) order. The checker treats an operation
    with [result = None] as pending: it may have taken effect or not. *)
val operations : ('op, 'res) t -> ('op, 'res) operation list

(** Total operations invoked. *)
val size : ('op, 'res) t -> int

(** Operations that have received a response. *)
val completed : ('op, 'res) t -> int

(** {1 Serialization}

    One event per line, in recording order:
    ["i <id> <seq> <at> <client> <op_repr>"] for invocations and
    ["r <id> <seq> <at> <res_repr>"] for responses. Reprs may contain
    spaces (they extend to the end of the line). [of_string] is strict in
    the {!Trace.of_string} sense: blank lines, malformed fields and
    non-canonical spellings are rejected — a corrupted history must fail
    loudly. A deserialized history carries the reprs as its ops and
    results, which is enough for round-trip checks and reporting;
    re-checking against a typed model starts from the recording harness,
    not from a file. *)

val to_string : ('op, 'res) t -> string

val of_string : string -> (string, string) t

val save : path:string -> ('op, 'res) t -> unit

val load : path:string -> (string, string) t
