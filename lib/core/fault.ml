type kind = Drop | Duplicate | Delay | Crash
type dist = Uniform | Bimodal

type spec = {
  drop : bool;
  duplicate : bool;
  delay : bool;
  crash : bool;
  budget : int;
  max_delay : int;
  delay_dist : dist;
}

let none =
  {
    drop = false;
    duplicate = false;
    delay = false;
    crash = false;
    budget = 0;
    max_delay = 3;
    delay_dist = Uniform;
  }

let message_faults s = s.budget > 0 && (s.drop || s.duplicate || s.delay)
let enabled s = message_faults s || (s.budget > 0 && s.crash)

let kind_to_string = function
  | Drop -> "drop"
  | Duplicate -> "dup"
  | Delay -> "delay"
  | Crash -> "crash"

let kind_of_string = function
  | "drop" -> Some Drop
  | "dup" | "duplicate" -> Some Duplicate
  | "delay" -> Some Delay
  | "crash" -> Some Crash
  | _ -> None

let make ?(budget = 1) ?(max_delay = 3) ?(delay_dist = Uniform) kinds =
  if budget < 0 then invalid_arg "Fault.make: budget must be non-negative";
  if max_delay <= 0 then invalid_arg "Fault.make: max_delay must be positive";
  {
    drop = List.mem Drop kinds;
    duplicate = List.mem Duplicate kinds;
    delay = List.mem Delay kinds;
    crash = List.mem Crash kinds;
    budget;
    max_delay;
    (* a distribution only means something with delay armed; normalizing
       keeps to_string/parse a proper round-trip *)
    delay_dist = (if List.mem Delay kinds then delay_dist else Uniform);
  }

let kinds s =
  (if s.drop then [ Drop ] else [])
  @ (if s.duplicate then [ Duplicate ] else [])
  @ (if s.delay then [ Delay ] else [])
  @ if s.crash then [ Crash ] else []

(* Accepts what {!to_string} produces — ["none"], or a comma-separated
   kind list with an optional ["(budget=N)"] suffix — plus plain kind
   lists with no suffix (budget 1), so CLI flags and serialized specs
   share one strict grammar. *)
let parse str =
  let str = String.trim str in
  if str = "none" then Ok none
  else
    let kinds_str, budget =
      match String.index_opt str '(' with
      | None -> (Ok str, Ok 1)
      | Some i ->
        let head = String.sub str 0 i in
        let tail = String.sub str i (String.length str - i) in
        let budget =
          let l = String.length tail in
          if l > 9 && String.sub tail 0 8 = "(budget=" && tail.[l - 1] = ')'
          then (
            match int_of_string_opt (String.sub tail 8 (l - 9)) with
            | Some n when n >= 0 -> Ok n
            | _ ->
              Error
                (Printf.sprintf
                   "malformed fault budget %S (expected a non-negative \
                    integer)" tail))
          else
            Error
              (Printf.sprintf
                 "malformed fault spec suffix %S (expected (budget=N))" tail)
        in
        (Ok head, budget)
    in
    match (kinds_str, budget) with
    | Error e, _ | _, Error e -> Error e
    | Ok kinds_str, Ok budget ->
      let parts =
        String.split_on_char ',' kinds_str
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      if parts = [] then
        Error "no fault kinds given (expected e.g. drop,crash)"
      else
        (* [delay] may carry a latency distribution: plain ["delay"] (and
           its alias ["delay:uniform"]) is one uniform draw over
           [1..max_delay]; ["delay:bimodal"] splits links into a fast and
           a slow mode. Mixing spellings with different distributions in
           one spec is ambiguous, hence rejected. *)
        let rec go acc dist = function
          | [] -> Ok (List.rev acc, dist)
          | p :: rest ->
            let parsed =
              match p with
              | "delay" | "delay:uniform" -> Ok (Delay, Some Uniform)
              | "delay:bimodal" -> Ok (Delay, Some Bimodal)
              | p when String.length p > 6 && String.sub p 0 6 = "delay:" ->
                Error
                  (Printf.sprintf
                     "unknown delay distribution %S (expected uniform or \
                      bimodal)"
                     (String.sub p 6 (String.length p - 6)))
              | p ->
                (match kind_of_string p with
                 | Some k -> Ok (k, None)
                 | None ->
                   Error
                     (Printf.sprintf
                        "unknown fault kind %S (expected drop, dup, delay or \
                         crash)" p))
            in
            (match parsed with
             | Error _ as e -> e
             | Ok (k, d) ->
               (match (dist, d) with
                | Some a, Some b when a <> b ->
                  Error "conflicting delay distributions in one fault spec"
                | _ -> go (k :: acc) (if d = None then dist else d) rest))
        in
        (match go [] None parts with
         | Error _ as e -> e
         | Ok (ks, dist) ->
           let delay_dist = Option.value dist ~default:Uniform in
           Ok (make ~budget ~delay_dist ks))

let to_string s =
  let kind_str = function
    | Delay when s.delay_dist = Bimodal -> "delay:bimodal"
    | k -> kind_to_string k
  in
  match kinds s with
  | [] -> "none"
  | ks ->
    Printf.sprintf "%s(budget=%d)"
      (String.concat "," (List.map kind_str ks))
      s.budget
