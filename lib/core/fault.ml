type kind = Drop | Duplicate | Delay | Crash

type spec = {
  drop : bool;
  duplicate : bool;
  delay : bool;
  crash : bool;
  budget : int;
  max_delay : int;
}

let none =
  {
    drop = false;
    duplicate = false;
    delay = false;
    crash = false;
    budget = 0;
    max_delay = 3;
  }

let message_faults s = s.budget > 0 && (s.drop || s.duplicate || s.delay)
let enabled s = message_faults s || (s.budget > 0 && s.crash)

let kind_to_string = function
  | Drop -> "drop"
  | Duplicate -> "dup"
  | Delay -> "delay"
  | Crash -> "crash"

let kind_of_string = function
  | "drop" -> Some Drop
  | "dup" | "duplicate" -> Some Duplicate
  | "delay" -> Some Delay
  | "crash" -> Some Crash
  | _ -> None

let make ?(budget = 1) ?(max_delay = 3) kinds =
  if budget < 0 then invalid_arg "Fault.make: budget must be non-negative";
  if max_delay <= 0 then invalid_arg "Fault.make: max_delay must be positive";
  {
    drop = List.mem Drop kinds;
    duplicate = List.mem Duplicate kinds;
    delay = List.mem Delay kinds;
    crash = List.mem Crash kinds;
    budget;
    max_delay;
  }

let kinds s =
  (if s.drop then [ Drop ] else [])
  @ (if s.duplicate then [ Duplicate ] else [])
  @ (if s.delay then [ Delay ] else [])
  @ if s.crash then [ Crash ] else []

let parse str =
  let parts =
    String.split_on_char ',' str
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "no fault kinds given (expected e.g. drop,crash)"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
        (match kind_of_string p with
         | Some k -> go (k :: acc) rest
         | None ->
           Error
             (Printf.sprintf
                "unknown fault kind %S (expected drop, dup, delay or crash)" p))
    in
    (match go [] parts with
     | Error _ as e -> e
     | Ok ks -> Ok (make ks))

let to_string s =
  match kinds s with
  | [] -> "none"
  | ks ->
    Printf.sprintf "%s(budget=%d)"
      (String.concat "," (List.map kind_to_string ks))
      s.budget
