(* Follow the mutated prefix while it stays valid for the unfolding
   execution; at the first mismatch (or exhaustion) abandon it and continue
   with seeded random choices, like Shrinker's lenient replay. *)
let guided ~seed ~(prefix : Trace.choice array) : Strategy.t =
  let cursor = ref 0 in
  let diverged = ref false in
  let rng = Prng.create ~seed in
  let next () =
    if !diverged || !cursor >= Array.length prefix then None
    else begin
      let c = prefix.(!cursor) in
      incr cursor;
      Some c
    end
  in
  let next_schedule ~enabled ~n ~step:_ =
    match next () with
    | Some (Trace.Schedule m) when Strategy.enabled_mem enabled n m -> m
    | Some _ | None ->
      diverged := true;
      enabled.(Prng.int rng n)
  in
  let next_bool ~step:_ =
    match next () with
    | Some (Trace.Bool b) -> b
    | Some _ | None ->
      diverged := true;
      Prng.bool rng
  in
  let next_int ~bound ~step:_ =
    match next () with
    | Some (Trace.Int i) when i >= 0 && i < bound -> i
    | Some _ | None ->
      diverged := true;
      Prng.int rng bound
  in
  { Strategy.name = "fuzz"; next_schedule; next_bool; next_int }

(* Corpus entries carry the typed novelty that admitted them: which
   coverage families the trace was the first to reach, and the mutation
   energy derived from those tags. Partial-order ([Hb]) and fault-point
   novelty weigh more than the coarse families — they are the signals the
   search is actually steering on. *)
type corpus_entry = {
  trace : Trace.t;
  energy : int;
  tags : Coverage.family_kind list;
}

let tag_weight = function Coverage.Hb -> 8 | Coverage.Fault -> 4 | _ -> 1
let energy_of_tags tags = 1 + List.fold_left (fun a t -> a + tag_weight t) 0 tags
let entry_of_trace trace = { trace; energy = 1; tags = [] }

(* Energy-proportional index selection over [energies]: draw a point in
   [0, total) with [draw] and walk the prefix sums. Exposed so tests can
   drive it with a counting draw and check the resulting distribution. *)
let weighted_pick ~draw (energies : int array) =
  let total = Array.fold_left (fun a e -> a + max 1 e) 0 energies in
  if total <= 0 then invalid_arg "Fuzz_strategy.weighted_pick: empty corpus";
  let r = draw total in
  let rec go i acc =
    let acc = acc + max 1 energies.(i) in
    if r < acc || i = Array.length energies - 1 then i else go (i + 1) acc
  in
  go 0 0

(* Mutation operators. [Truncate] and [Splice] are the original schedule
   mutators; [Rewindow] re-draws a bounded window of choices in place
   (keeping the suffix) — the repaired "re-randomize" operator, which
   previously only kept a prefix and was indistinguishable from
   [Truncate]; [Fault_tune] keeps the scheduling spine (every [Schedule]
   choice) byte-identical and perturbs only the recorded value draws —
   crash instants, delay latencies, drop/dup booleans — so a schedule
   that found a new partial order is re-run under neighboring fault
   timings. *)
type op = Truncate | Rewindow | Splice | Fault_tune

(* Schedule choices recorded in a trace are machine indices; when
   re-drawing one we need a plausible bound. The largest index seen in
   the entry (plus one) over-approximates the machine count without
   peeking at the harness. *)
let schedule_bound a =
  Array.fold_left
    (fun acc c -> match c with Trace.Schedule m -> max acc (m + 1) | _ -> acc)
    1 a

let apply_op rng ~pick op =
  let a = pick () in
  (* A cut point in [1, len]: mutants always keep a non-empty prefix. *)
  let cut a = 1 + Prng.int rng (Array.length a) in
  match op with
  | Truncate ->
    (* keep a uniformly short prefix, explore randomly after it *)
    Array.sub a 0 (cut a)
  | Rewindow ->
    (* re-draw a bounded window in place; prefix and suffix survive *)
    let len = Array.length a in
    let start = Prng.int rng len in
    let width = 1 + Prng.int rng (min 8 (len - start)) in
    let smax = schedule_bound a in
    let b = Array.copy a in
    for i = start to start + width - 1 do
      b.(i) <-
        (match a.(i) with
        | Trace.Schedule _ -> Trace.Schedule (Prng.int rng smax)
        | Trace.Bool _ -> Trace.Bool (Prng.bool rng)
        | Trace.Int v -> Trace.Int (Prng.int rng (v + 2)))
    done;
    b
  | Splice ->
    (* prefix of a continued by a suffix of b *)
    let b = pick () in
    let i = cut a and j = Prng.int rng (Array.length b) in
    Array.append (Array.sub a 0 i) (Array.sub b j (Array.length b - j))
  | Fault_tune ->
    (* perturb value draws only; the Schedule spine is untouched *)
    let b = Array.copy a in
    Array.iteri
      (fun i c ->
        match c with
        | Trace.Schedule _ -> ()
        | Trace.Bool v -> if Prng.int rng 4 = 0 then b.(i) <- Trace.Bool (not v)
        | Trace.Int v ->
          if Prng.int rng 4 = 0 then b.(i) <- Trace.Int (Prng.int rng (v + 2)))
      a;
    b

let mutate_for_test ~seed ~corpus op =
  let arrs =
    Array.of_list
      (List.filter_map
         (fun t ->
           let a = Array.of_list (Trace.to_list t) in
           if Array.length a = 0 then None else Some a)
         corpus)
  in
  if Array.length arrs = 0 then
    invalid_arg "Fuzz_strategy.mutate_for_test: empty corpus";
  let rng = Prng.create ~seed in
  let pick () = arrs.(Prng.int rng (Array.length arrs)) in
  Trace.of_list (Array.to_list (apply_op rng ~pick op))

(* Cross-worker novelty hub: an append-only, bounded pool of
   coverage-novel schedules shared by the per-worker corpora of a
   parallel fuzz run. Workers push the (rare) novel traces they find and
   pull the entries they have not yet seen; a lock-free version read in
   the common no-news case keeps the per-execution path free of the hub's
   mutex. The hub doubles as the run's corpus collection point: a
   campaign snapshots it after the run to persist the corpus.

   Pushes are deduplicated by schedule fingerprint — under parallel
   per-worker novelty views several workers publish the same trace, and
   without dedup duplicates would burn the cap. Nothing is dropped
   silently: both duplicate and over-cap rejections are counted and
   surfaced through {!stats}. *)
module Exchange = struct
  type slot = {
    s_choices : Trace.choice array;
    s_energy : int;
    s_tags : Coverage.family_kind list;
  }

  type t = {
    mu : Mutex.t;
    mutable entries : slot array;  (* append-only, first [len] valid *)
    mutable len : int;
    version : int Atomic.t;  (* = len; read without the lock *)
    cap : int;
    seen : (int64, unit) Hashtbl.t;  (* fingerprints of accepted entries *)
    mutable dropped_dup : int;
    mutable dropped_cap : int;
  }

  type stats = { accepted : int; dropped_dup : int; dropped_cap : int }

  let create ?(cap = 256) () =
    if cap <= 0 then
      invalid_arg "Fuzz_strategy.Exchange.create: cap must be positive";
    {
      mu = Mutex.create ();
      entries = [||];
      len = 0;
      version = Atomic.make 0;
      cap;
      seen = Hashtbl.create 64;
      dropped_dup = 0;
      dropped_cap = 0;
    }

  (* Callers hold [mu]. Once full the hub stops accepting — append-only
     storage keeps the pull cursors valid — but every rejection is
     counted, never silent. *)
  let push_locked t slot =
    let fp =
      Coverage.fingerprint (Trace.of_list (Array.to_list slot.s_choices))
    in
    if Hashtbl.mem t.seen fp then t.dropped_dup <- t.dropped_dup + 1
    else if t.len >= t.cap then t.dropped_cap <- t.dropped_cap + 1
    else begin
      Hashtbl.replace t.seen fp ();
      if t.len = Array.length t.entries then begin
        let cap = max 16 (2 * t.len) in
        let bigger = Array.make cap slot in
        Array.blit t.entries 0 bigger 0 t.len;
        t.entries <- bigger
      end;
      t.entries.(t.len) <- slot;
      t.len <- t.len + 1;
      Atomic.set t.version t.len
    end

  let snapshot t =
    Mutex.protect t.mu (fun () ->
        List.init t.len (fun i ->
            let s = t.entries.(i) in
            {
              trace = Trace.of_list (Array.to_list s.s_choices);
              energy = s.s_energy;
              tags = s.s_tags;
            }))

  let stats t =
    Mutex.protect t.mu (fun () ->
        { accepted = t.len; dropped_dup = t.dropped_dup; dropped_cap = t.dropped_cap })

  let of_entries ?cap entries =
    let t = create ?cap () in
    List.iter
      (fun e ->
        let choices = Array.of_list (Trace.to_list e.trace) in
        if Array.length choices > 0 then
          push_locked t
            { s_choices = choices; s_energy = e.energy; s_tags = e.tags })
      entries;
    t

  let of_traces ?cap traces = of_entries ?cap (List.map entry_of_trace traces)
end

let factory ~seed ?(corpus_cap = 32) ?(random_bias = 4) ?(initial = [])
    ?exchange ?(energy = false) ?(mutate_faults = false) () : Strategy.factory
    =
  if corpus_cap <= 0 then invalid_arg "Fuzz_strategy: corpus_cap must be positive";
  if random_bias <= 0 then invalid_arg "Fuzz_strategy: random_bias must be positive";
  (* Factory-level rng drives corpus selection and mutation; per-execution
     rngs are derived from (seed, iteration) like the other seeded
     strategies, so the random tail of each execution is independent of
     how many corpus decisions were made before it. *)
  let rng = Prng.create ~seed:(Int64.logxor seed 0x9e3779b97f4a7c15L) in
  (* Corpus slots pair the choice array with the entry's mutation energy;
     with [energy] off every slot holds 1 and selection stays uniform. *)
  let corpus : (Trace.choice array * int) array ref = ref [||] in
  let add_choices ?(entry_energy = 1) choices =
    if Array.length choices = 0 then ()
    else if Array.length !corpus < corpus_cap then
      corpus := Array.append !corpus [| (choices, entry_energy) |]
    else !corpus.(Prng.int rng corpus_cap) <- (choices, entry_energy)
  in
  let add ?entry_energy trace =
    add_choices ?entry_energy (Array.of_list (Trace.to_list trace))
  in
  (* A campaign resume re-seeds the corpus with the entries a previous
     invocation found novel — energy metadata included — so mutation
     starts warm instead of from scratch. *)
  List.iter (fun e -> add ~entry_energy:e.energy e.trace) initial;
  (* Exchange plumbing: [synced] counts the hub entries this factory has
     already incorporated (its own pushes included, so a worker never
     re-imports what it contributed). Pulls happen at execution
     boundaries and only when the lock-free version read says there is
     news — the per-execution fast path never touches the hub mutex. *)
  let synced = ref 0 in
  let pull_locked (ex : Exchange.t) =
    for i = !synced to ex.Exchange.len - 1 do
      let s = ex.Exchange.entries.(i) in
      add_choices ~entry_energy:s.Exchange.s_energy s.Exchange.s_choices
    done;
    synced := ex.Exchange.len
  in
  let pull_if_news () =
    match exchange with
    | Some ex when Atomic.get ex.Exchange.version > !synced ->
      Mutex.protect ex.Exchange.mu (fun () -> pull_locked ex)
    | _ -> ()
  in
  let publish entry =
    match exchange with
    | None -> ()
    | Some ex ->
      let choices = Array.of_list (Trace.to_list entry.trace) in
      if Array.length choices > 0 then
        Mutex.protect ex.Exchange.mu (fun () ->
            (* catch up before pushing so [synced] may skip our own entry *)
            pull_locked ex;
            Exchange.push_locked ex
              {
                Exchange.s_choices = choices;
                s_energy = entry.energy;
                s_tags = entry.tags;
              };
            synced := ex.Exchange.len)
  in
  (* Uniform selection with [energy] off (the historical draw, one
     [Prng.int] per pick); energy-proportional otherwise — entries that
     discovered new partial orders or fault points get proportionally
     more mutation attempts (AFL-style power schedule). *)
  let pick () =
    let n = Array.length !corpus in
    if not energy then fst !corpus.(Prng.int rng n)
    else begin
      let energies = Array.map snd !corpus in
      let i = weighted_pick ~draw:(fun total -> Prng.int rng total) energies in
      fst !corpus.(i)
    end
  in
  let mutate () =
    let n_ops = if mutate_faults then 4 else 3 in
    let op =
      match Prng.int rng n_ops with
      | 0 -> Truncate
      | 1 -> Rewindow
      | 2 -> Splice
      | _ -> Fault_tune
    in
    apply_op rng ~pick op
  in
  {
    Strategy.factory_name = "fuzz";
    (* The corpus is mutable state across iterations: sequential-only,
       unless an exchange hub links per-worker corpora — then every worker
       builds its own factory (private corpus, private rng) and the hub
       carries the rare novelty traffic between them. *)
    parallel_safe = exchange <> None;
    fresh =
      (fun ~iteration ->
        pull_if_news ();
        let exec_seed = Int64.add seed (Int64.of_int (iteration * 2 + 1)) in
        let prefix =
          if Array.length !corpus = 0 || Prng.int rng random_bias = 0 then [||]
          else mutate ()
        in
        Some (guided ~seed:exec_seed ~prefix));
    feedback =
      Some
        (fun ~trace ~novelty ->
          (* Core-family novelty always admits (the historical rule); with
             energy scheduling on, a new canonical partial order admits
             too — the finest interleaving signal we have. *)
          let admit =
            Coverage.novel_core novelty
            || (energy && novelty.Coverage.new_hb > 0)
          in
          if admit then begin
            let tags = if energy then Coverage.novel_families novelty else [] in
            let entry = { trace; energy = energy_of_tags tags; tags } in
            add ~entry_energy:entry.energy trace;
            publish entry
          end);
  }
