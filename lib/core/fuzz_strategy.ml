(* Follow the mutated prefix while it stays valid for the unfolding
   execution; at the first mismatch (or exhaustion) abandon it and continue
   with seeded random choices, like Shrinker's lenient replay. *)
let guided ~seed ~(prefix : Trace.choice array) : Strategy.t =
  let cursor = ref 0 in
  let diverged = ref false in
  let rng = Prng.create ~seed in
  let next () =
    if !diverged || !cursor >= Array.length prefix then None
    else begin
      let c = prefix.(!cursor) in
      incr cursor;
      Some c
    end
  in
  let next_schedule ~enabled ~n ~step:_ =
    match next () with
    | Some (Trace.Schedule m) when Strategy.enabled_mem enabled n m -> m
    | Some _ | None ->
      diverged := true;
      enabled.(Prng.int rng n)
  in
  let next_bool ~step:_ =
    match next () with
    | Some (Trace.Bool b) -> b
    | Some _ | None ->
      diverged := true;
      Prng.bool rng
  in
  let next_int ~bound ~step:_ =
    match next () with
    | Some (Trace.Int i) when i >= 0 && i < bound -> i
    | Some _ | None ->
      diverged := true;
      Prng.int rng bound
  in
  { Strategy.name = "fuzz"; next_schedule; next_bool; next_int }

(* Cross-worker novelty hub: an append-only, bounded pool of
   coverage-novel schedules shared by the per-worker corpora of a
   parallel fuzz run. Workers push the (rare) novel traces they find and
   pull the entries they have not yet seen; a lock-free version read in
   the common no-news case keeps the per-execution path free of the hub's
   mutex. The hub doubles as the run's corpus collection point: a
   campaign snapshots it after the run to persist the corpus. *)
module Exchange = struct
  type t = {
    mu : Mutex.t;
    mutable entries : Trace.choice array array;  (* append-only, first [len] valid *)
    mutable len : int;
    version : int Atomic.t;  (* = len; read without the lock *)
    cap : int;
  }

  let create ?(cap = 256) () =
    if cap <= 0 then
      invalid_arg "Fuzz_strategy.Exchange.create: cap must be positive";
    {
      mu = Mutex.create ();
      entries = [||];
      len = 0;
      version = Atomic.make 0;
      cap;
    }

  (* Callers hold [mu]. Once full the hub stops accepting — append-only
     storage keeps the pull cursors valid. *)
  let push_locked t choices =
    if t.len < t.cap then begin
      if t.len = Array.length t.entries then begin
        let cap = max 16 (2 * t.len) in
        let bigger = Array.make cap choices in
        Array.blit t.entries 0 bigger 0 t.len;
        t.entries <- bigger
      end;
      t.entries.(t.len) <- choices;
      t.len <- t.len + 1;
      Atomic.set t.version t.len
    end

  let snapshot t =
    Mutex.protect t.mu (fun () ->
        List.init t.len (fun i -> Trace.of_list (Array.to_list t.entries.(i))))

  let of_traces ?cap traces =
    let t = create ?cap () in
    List.iter
      (fun trace ->
        let choices = Array.of_list (Trace.to_list trace) in
        if Array.length choices > 0 then push_locked t choices)
      traces;
    t
end

let factory ~seed ?(corpus_cap = 32) ?(random_bias = 4) ?(initial = [])
    ?exchange () : Strategy.factory =
  if corpus_cap <= 0 then invalid_arg "Fuzz_strategy: corpus_cap must be positive";
  if random_bias <= 0 then invalid_arg "Fuzz_strategy: random_bias must be positive";
  (* Factory-level rng drives corpus selection and mutation; per-execution
     rngs are derived from (seed, iteration) like the other seeded
     strategies, so the random tail of each execution is independent of
     how many corpus decisions were made before it. *)
  let rng = Prng.create ~seed:(Int64.logxor seed 0x9e3779b97f4a7c15L) in
  let corpus : Trace.choice array array ref = ref [||] in
  let add_choices choices =
    if Array.length choices = 0 then ()
    else if Array.length !corpus < corpus_cap then
      corpus := Array.append !corpus [| choices |]
    else !corpus.(Prng.int rng corpus_cap) <- choices
  in
  let add trace = add_choices (Array.of_list (Trace.to_list trace)) in
  (* A campaign resume re-seeds the corpus with the traces a previous
     invocation found novel, so mutation starts warm instead of from
     scratch. *)
  List.iter add initial;
  (* Exchange plumbing: [synced] counts the hub entries this factory has
     already incorporated (its own pushes included, so a worker never
     re-imports what it contributed). Pulls happen at execution
     boundaries and only when the lock-free version read says there is
     news — the per-execution fast path never touches the hub mutex. *)
  let synced = ref 0 in
  let pull_locked (ex : Exchange.t) =
    for i = !synced to ex.Exchange.len - 1 do
      add_choices ex.Exchange.entries.(i)
    done;
    synced := ex.Exchange.len
  in
  let pull_if_news () =
    match exchange with
    | Some ex when Atomic.get ex.Exchange.version > !synced ->
      Mutex.protect ex.Exchange.mu (fun () -> pull_locked ex)
    | _ -> ()
  in
  let publish trace =
    match exchange with
    | None -> ()
    | Some ex ->
      let choices = Array.of_list (Trace.to_list trace) in
      if Array.length choices > 0 then
        Mutex.protect ex.Exchange.mu (fun () ->
            (* catch up before pushing so [synced] may skip our own entry *)
            pull_locked ex;
            Exchange.push_locked ex choices;
            synced := ex.Exchange.len)
  in
  let pick () = !corpus.(Prng.int rng (Array.length !corpus)) in
  (* A cut point in [1, len]: mutants always keep a non-empty prefix. *)
  let cut a = 1 + Prng.int rng (Array.length a) in
  let mutate () =
    let a = pick () in
    match Prng.int rng 3 with
    | 0 ->
      (* truncate: keep a uniformly short prefix *)
      Array.sub a 0 (cut a)
    | 1 ->
      (* re-randomize suffix: keep at least half, redo the tail *)
      let len = Array.length a in
      let keep = max 1 (len / 2 + Prng.int rng (max 1 ((len + 1) / 2))) in
      Array.sub a 0 (min len keep)
    | _ ->
      (* splice: prefix of a continued by a suffix of b *)
      let b = pick () in
      let i = cut a and j = Prng.int rng (Array.length b) in
      Array.append (Array.sub a 0 i) (Array.sub b j (Array.length b - j))
  in
  {
    Strategy.factory_name = "fuzz";
    (* The corpus is mutable state across iterations: sequential-only,
       unless an exchange hub links per-worker corpora — then every worker
       builds its own factory (private corpus, private rng) and the hub
       carries the rare novelty traffic between them. *)
    parallel_safe = exchange <> None;
    fresh =
      (fun ~iteration ->
        pull_if_news ();
        let exec_seed = Int64.add seed (Int64.of_int (iteration * 2 + 1)) in
        let prefix =
          if Array.length !corpus = 0 || Prng.int rng random_bias = 0 then [||]
          else mutate ()
        in
        Some (guided ~seed:exec_seed ~prefix));
    feedback =
      Some
        (fun ~trace ~novel ->
          if novel then begin
            add trace;
            publish trace
          end);
  }
