(* Follow the mutated prefix while it stays valid for the unfolding
   execution; at the first mismatch (or exhaustion) abandon it and continue
   with seeded random choices, like Shrinker's lenient replay. *)
let guided ~seed ~(prefix : Trace.choice array) : Strategy.t =
  let cursor = ref 0 in
  let diverged = ref false in
  let rng = Prng.create ~seed in
  let next () =
    if !diverged || !cursor >= Array.length prefix then None
    else begin
      let c = prefix.(!cursor) in
      incr cursor;
      Some c
    end
  in
  let next_schedule ~enabled ~n ~step:_ =
    match next () with
    | Some (Trace.Schedule m) when Strategy.enabled_mem enabled n m -> m
    | Some _ | None ->
      diverged := true;
      enabled.(Prng.int rng n)
  in
  let next_bool ~step:_ =
    match next () with
    | Some (Trace.Bool b) -> b
    | Some _ | None ->
      diverged := true;
      Prng.bool rng
  in
  let next_int ~bound ~step:_ =
    match next () with
    | Some (Trace.Int i) when i >= 0 && i < bound -> i
    | Some _ | None ->
      diverged := true;
      Prng.int rng bound
  in
  { Strategy.name = "fuzz"; next_schedule; next_bool; next_int }

let factory ~seed ?(corpus_cap = 32) ?(random_bias = 4) () : Strategy.factory =
  if corpus_cap <= 0 then invalid_arg "Fuzz_strategy: corpus_cap must be positive";
  if random_bias <= 0 then invalid_arg "Fuzz_strategy: random_bias must be positive";
  (* Factory-level rng drives corpus selection and mutation; per-execution
     rngs are derived from (seed, iteration) like the other seeded
     strategies, so the random tail of each execution is independent of
     how many corpus decisions were made before it. *)
  let rng = Prng.create ~seed:(Int64.logxor seed 0x9e3779b97f4a7c15L) in
  let corpus : Trace.choice array array ref = ref [||] in
  let add trace =
    let choices = Array.of_list (Trace.to_list trace) in
    if Array.length choices = 0 then ()
    else if Array.length !corpus < corpus_cap then
      corpus := Array.append !corpus [| choices |]
    else !corpus.(Prng.int rng corpus_cap) <- choices
  in
  let pick () = !corpus.(Prng.int rng (Array.length !corpus)) in
  (* A cut point in [1, len]: mutants always keep a non-empty prefix. *)
  let cut a = 1 + Prng.int rng (Array.length a) in
  let mutate () =
    let a = pick () in
    match Prng.int rng 3 with
    | 0 ->
      (* truncate: keep a uniformly short prefix *)
      Array.sub a 0 (cut a)
    | 1 ->
      (* re-randomize suffix: keep at least half, redo the tail *)
      let len = Array.length a in
      let keep = max 1 (len / 2 + Prng.int rng (max 1 ((len + 1) / 2))) in
      Array.sub a 0 (min len keep)
    | _ ->
      (* splice: prefix of a continued by a suffix of b *)
      let b = pick () in
      let i = cut a and j = Prng.int rng (Array.length b) in
      Array.append (Array.sub a 0 i) (Array.sub b j (Array.length b - j))
  in
  {
    Strategy.factory_name = "fuzz";
    (* The corpus is shared mutable state across iterations. *)
    parallel_safe = false;
    fresh =
      (fun ~iteration ->
        let exec_seed = Int64.add seed (Int64.of_int (iteration * 2 + 1)) in
        let prefix =
          if Array.length !corpus = 0 || Prng.int rng random_bias = 0 then [||]
          else mutate ()
        in
        Some (guided ~seed:exec_seed ~prefix));
    feedback =
      Some (fun ~trace ~novel -> if novel then add trace);
  }
