type config = {
  max_steps : int;
  liveness_grace : int option;
  deadlock_is_bug : bool;
  collect_log : bool;
  coverage : Coverage.t option;
}

let default_config =
  {
    max_steps = 5_000;
    liveness_grace = None;
    deadlock_is_bug = true;
    collect_log = false;
    coverage = None;
  }

(* A machine blocked on [receive] is a captured continuation expecting the
   dequeued event. The whole handled computation produces [unit]: both the
   effect branch (after stashing the continuation) and the return/exception
   branches just fall back to the scheduler. *)
type status =
  | Not_started of (ctx -> unit)
  | Waiting of (Event.t -> bool) option * (Event.t, unit) Effect.Deep.continuation
  | Running
  | Halted

and machine = {
  id : Id.t;
  inbox : Inbox.t;
  mutable status : status;
  mutable state_name : string;
      (* current declared state ("-" for plain machines); feeds the
         receiver-state component of coverage triples *)
  mutable enabled_cache : bool;
      (* last computed [machine_enabled], valid while not [dirty]. A
         waiting machine's enabledness is monotone between status changes
         (events are only ever added to its inbox until it runs), so the
         cache stays valid until a send or a status transition marks it
         dirty — which is what keeps filtered receives ([Waiting (Some
         pred, _)]) from re-running [Inbox.exists pred] every step. *)
  mutable dirty : bool;
}

and t = {
  config : config;
  log_on : bool;  (* config.collect_log, hoisted for the hot path *)
  strategy : Strategy.t;
  monitors : Monitor.t list;
  mutable machines : machine array;
  mutable n_machines : int;
  mutable enabled_buf : int array;
      (* scratch for the enabled prefix passed to the strategy; reused
         across steps, grown with the machine array *)
  mutable steps : int;
  trace : Trace.Builder.t;
  mutable log_rev : string list;
  mutable bug : Error.kind option;
  mutable bug_step : int;
}

and ctx = { rt : t; me : machine }

type exec_result = {
  bug : Error.kind option;
  bug_step : int;
  steps : int;
  choices : Trace.t;
  log : string list;
}

exception Halt_exn

type _ Effect.t += Receive_eff : (Event.t -> bool) option -> Event.t Effect.t

(* Zero-cost-when-disabled logging contract: [logf] itself always formats,
   so every call site is guarded by [rt.log_on] — with logging off the
   format arguments (Id.to_string, Event.to_string, ...) are never even
   evaluated, and the hot path pays one boolean load. *)
let logf (rt : t) fmt =
  Printf.ksprintf (fun s -> rt.log_rev <- s :: rt.log_rev) fmt

let set_bug (rt : t) kind =
  if rt.bug = None then begin
    rt.bug <- Some kind;
    rt.bug_step <- rt.steps;
    if rt.log_on then
      logf rt "[%d] BUG: %s" rt.steps (Error.kind_to_string kind)
  end

let mark_dirty m = m.dirty <- true

let add_machine rt ~name body =
  if rt.n_machines = Array.length rt.machines then begin
    let bigger =
      Array.make (max 8 (2 * rt.n_machines))
        { id = Id.make ~index:(-1) ~name:"<pad>";
          inbox = Inbox.create ();
          status = Halted;
          state_name = "-";
          enabled_cache = false;
          dirty = false }
    in
    Array.blit rt.machines 0 bigger 0 rt.n_machines;
    rt.machines <- bigger;
    rt.enabled_buf <- Array.make (Array.length bigger) 0
  end;
  let id = Id.make ~index:rt.n_machines ~name in
  let m =
    { id; inbox = Inbox.create (); status = Not_started body; state_name = "-";
      enabled_cache = true; dirty = false }
  in
  rt.machines.(rt.n_machines) <- m;
  rt.n_machines <- rt.n_machines + 1;
  (match rt.config.coverage with
   | Some cov -> Coverage.visit_state cov ~machine:name ~state:"-"
   | None -> ());
  m

(* --- Machine API --- *)

let self ctx = ctx.me.id

let name_of ctx id =
  (* Same bounds pattern as [send]/[send_unless_pending]: a forged or stale
     id with a negative index must not reach the machine array. *)
  if Id.index id >= 0 && Id.index id < ctx.rt.n_machines then
    Id.name ctx.rt.machines.(Id.index id).id
  else "<unknown>"

let create ctx ~name body =
  let m = add_machine ctx.rt ~name body in
  if ctx.rt.log_on then
    logf ctx.rt "[%d] %s creates %s" ctx.rt.steps (Id.to_string ctx.me.id)
      (Id.to_string m.id);
  m.id

let send ctx target e =
  let rt = ctx.rt in
  if Id.index target < 0 || Id.index target >= rt.n_machines then
    invalid_arg "Runtime.send: unknown target machine";
  let m = rt.machines.(Id.index target) in
  (match m.status with
   | Halted ->
     if rt.log_on then
       logf rt "[%d] %s -> %s: %s (dropped: target halted)" rt.steps
         (Id.to_string ctx.me.id) (Id.to_string target) (Event.to_string e)
   | Not_started _ | Waiting _ | Running ->
     Inbox.push ~sender:(Id.index ctx.me.id) m.inbox e;
     mark_dirty m;
     if rt.log_on then
       logf rt "[%d] %s -> %s: %s" rt.steps (Id.to_string ctx.me.id)
         (Id.to_string target) (Event.to_string e))

let send_unless_pending ?same ctx target e =
  let rt = ctx.rt in
  if Id.index target < 0 || Id.index target >= rt.n_machines then
    invalid_arg "Runtime.send_unless_pending: unknown target machine";
  let m = rt.machines.(Id.index target) in
  let duplicate =
    match same with
    | Some pred -> pred
    | None ->
      let name = Event.name e in
      fun e' -> Event.name e' = name
  in
  if Inbox.exists m.inbox duplicate then begin
    if rt.log_on then
      logf rt "[%d] %s -> %s: %s (coalesced)" rt.steps
        (Id.to_string ctx.me.id) (Id.to_string target) (Event.to_string e)
  end
  else send ctx target e

let receive _ctx = Effect.perform (Receive_eff None)

let receive_where _ctx pred = Effect.perform (Receive_eff (Some pred))

let nondet ctx =
  let rt = ctx.rt in
  let b = rt.strategy.next_bool ~step:rt.steps in
  Trace.Builder.add rt.trace (Trace.Bool b);
  (match rt.config.coverage with
   | Some cov -> Coverage.branch_bool cov ~machine:(Id.name ctx.me.id) b
   | None -> ());
  if rt.log_on then
    logf rt "[%d] %s nondet -> %b" rt.steps (Id.to_string ctx.me.id) b;
  b

let nondet_int ctx bound =
  if bound <= 0 then invalid_arg "Runtime.nondet_int: bound must be positive";
  let rt = ctx.rt in
  let i = rt.strategy.next_int ~bound ~step:rt.steps in
  Trace.Builder.add rt.trace (Trace.Int i);
  (match rt.config.coverage with
   | Some cov -> Coverage.branch_int cov ~machine:(Id.name ctx.me.id) ~bound i
   | None -> ());
  if rt.log_on then
    logf rt "[%d] %s nondet_int(%d) -> %d" rt.steps (Id.to_string ctx.me.id)
      bound i;
  i

let choose ctx xs =
  match xs with
  | [] -> invalid_arg "Runtime.choose: empty list"
  | [ x ] -> x
  | _ ->
    (* One traversal to an array, O(1) indexing; same [nondet_int] draw
       (bound = length) as the old List.length/List.nth pair. *)
    let arr = Array.of_list xs in
    arr.(nondet_int ctx (Array.length arr))

let halt _ctx = raise Halt_exn

let update_monitor_temperature (rt : t) mon =
  if Monitor.is_hot mon then begin
    if Monitor.hot_since mon = None then
      Monitor.set_hot_since mon (Some rt.steps)
  end
  else Monitor.set_hot_since mon None

let notify ctx monitor_name e =
  let rt = ctx.rt in
  match List.find_opt (fun m -> Monitor.name m = monitor_name) rt.monitors with
  | None -> ()
  | Some mon ->
    if rt.log_on then
      logf rt "[%d] %s notifies monitor %s: %s" rt.steps
        (Id.to_string ctx.me.id) monitor_name (Event.to_string e);
    Monitor.notify mon e;
    update_monitor_temperature rt mon;
    if rt.log_on then
      logf rt "[%d] monitor %s now in state %s%s" rt.steps monitor_name
        (Monitor.current mon)
        (if Monitor.is_hot mon then " (hot)" else "")

let assert_here ctx cond msg =
  if not cond then
    raise
      (Error.Bug
         (Error.Assertion_failure
            { machine = Id.to_string ctx.me.id; message = msg }))

let set_state_name ctx state =
  ctx.me.state_name <- state;
  match ctx.rt.config.coverage with
  | Some cov -> Coverage.visit_state cov ~machine:(Id.name ctx.me.id) ~state
  | None -> ()

let log ctx s =
  if ctx.rt.log_on then
    logf ctx.rt "[%d] %s: %s" ctx.rt.steps (Id.to_string ctx.me.id) s

let step_count ctx = ctx.rt.steps

(* --- Scheduler --- *)

let machine_enabled m =
  match m.status with
  | Not_started _ -> true
  | Waiting (None, _) -> not (Inbox.is_empty m.inbox)
  | Waiting (Some pred, _) -> Inbox.exists m.inbox pred
  | Running | Halted -> false

(* Refresh dirty machines and compact the enabled creation indices
   (ascending) into [rt.enabled_buf]; returns how many are enabled.
   Allocation-free: the buffer is reused across steps. *)
let compute_enabled rt =
  let buf = rt.enabled_buf in
  let n = ref 0 in
  for i = 0 to rt.n_machines - 1 do
    let m = Array.unsafe_get rt.machines i in
    if m.dirty then begin
      m.enabled_cache <- machine_enabled m;
      m.dirty <- false
    end;
    if m.enabled_cache then begin
      Array.unsafe_set buf !n i;
      incr n
    end
  done;
  !n

(* Run [m] until it blocks, halts, or finishes. The deep handler persists
   across resumptions, so exceptions and returns are funnelled here no
   matter how many receives the machine has performed. *)
let start_machine rt m =
  let ctx = { rt; me = m } in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc =
        (fun () ->
          m.status <- Halted;
          mark_dirty m;
          Inbox.clear m.inbox;
          if rt.log_on then
            logf rt "[%d] %s finished" rt.steps (Id.to_string m.id));
      exnc =
        (fun e ->
          match e with
          | Halt_exn ->
            m.status <- Halted;
            mark_dirty m;
            Inbox.clear m.inbox;
            if rt.log_on then
              logf rt "[%d] %s halted" rt.steps (Id.to_string m.id)
          | Error.Bug kind ->
            m.status <- Halted;
            mark_dirty m;
            set_bug rt kind
          | e ->
            m.status <- Halted;
            mark_dirty m;
            set_bug rt
              (Error.Machine_exception
                 {
                   machine = Id.to_string m.id;
                   exn = Printexc.to_string e;
                 }));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Receive_eff pred ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                m.status <- Waiting (pred, k);
                mark_dirty m)
          | _ -> None);
    }
  in
  match m.status with
  | Not_started body ->
    m.status <- Running;
    mark_dirty m;
    Effect.Deep.match_with (fun () -> body ctx) () handler
  | Waiting _ | Running | Halted -> assert false

let resume_machine rt m =
  match m.status with
  | Waiting (pred, k) ->
    let matches = Option.value pred ~default:(fun _ -> true) in
    (match Inbox.pop_entry m.inbox matches with
     | None -> assert false (* scheduler only picks enabled machines *)
     | Some (e, sender) ->
       m.status <- Running;
       mark_dirty m;
       (match rt.config.coverage with
        | Some cov ->
          let sender_name =
            if sender >= 0 && sender < rt.n_machines then
              Id.name rt.machines.(sender).id
            else "<external>"
          in
          Coverage.deliver cov ~sender:sender_name ~event:(Event.name e)
            ~receiver:(Id.name m.id) ~state:m.state_name
        | None -> ());
       if rt.log_on then
         logf rt "[%d] %s dequeues %s" rt.steps (Id.to_string m.id)
           (Event.to_string e);
       Effect.Deep.continue k e)
  | Not_started _ -> start_machine rt m
  | Running | Halted -> assert false

let check_end_of_execution (rt : t) ~at_bound =
  if rt.bug = None then begin
    (* A hot liveness monitor at the end of a bounded "infinite" execution,
       or when the system can make no further progress, is a liveness
       violation (§2.5). At the bound we additionally require the monitor to
       have been continuously hot for a grace period, so executions that the
       bound merely cut mid-progress do not count as violations. *)
    let grace =
      if at_bound then
        Option.value rt.config.liveness_grace
          ~default:(rt.config.max_steps / 2)
      else 0
    in
    let stuck mon =
      Monitor.is_hot mon
      &&
      match Monitor.hot_since mon with
      | Some since -> rt.steps - since >= grace
      | None -> false
    in
    match List.find_opt stuck rt.monitors with
    | Some mon ->
      set_bug rt
        (Error.Liveness_violation
           {
             monitor = Monitor.name mon;
             hot_since = Option.value (Monitor.hot_since mon) ~default:0;
             state = Monitor.current mon;
           })
    | None ->
      if (not at_bound) && rt.config.deadlock_is_bug then begin
        let blocked = ref [] in
        for i = rt.n_machines - 1 downto 0 do
          match rt.machines.(i).status with
          | Waiting _ -> blocked := Id.to_string rt.machines.(i).id :: !blocked
          | Not_started _ | Running | Halted -> ()
        done;
        if !blocked <> [] then set_bug rt (Error.Deadlock { blocked = !blocked })
      end
  end

let execute config strategy ~monitors ~name body =
  let rt =
    {
      config;
      log_on = config.collect_log;
      strategy;
      monitors;
      machines = [||];
      n_machines = 0;
      enabled_buf = [||];
      steps = 0;
      trace = Trace.Builder.create ();
      log_rev = [];
      bug = None;
      bug_step = 0;
    }
  in
  ignore (add_machine rt ~name body);
  let rec loop () =
    if rt.bug <> None then ()
    else if rt.steps >= config.max_steps then check_end_of_execution rt ~at_bound:true
    else begin
      let n = compute_enabled rt in
      if n = 0 then check_end_of_execution rt ~at_bound:false
      else begin
        (match
           (try Ok (strategy.next_schedule ~enabled:rt.enabled_buf ~n ~step:rt.steps)
            with Error.Bug kind -> Error kind)
         with
         | Error kind -> set_bug rt kind
         | Ok idx ->
           Trace.Builder.add rt.trace (Trace.Schedule idx);
           rt.steps <- rt.steps + 1;
           resume_machine rt rt.machines.(idx));
        loop ()
      end
    end
  in
  loop ();
  {
    bug = rt.bug;
    bug_step = (if rt.bug = None then rt.steps else rt.bug_step);
    steps = rt.steps;
    choices = Trace.Builder.finish rt.trace;
    log = List.rev rt.log_rev;
  }
