type config = {
  max_steps : int;
  liveness_grace : int option;
  deadlock_is_bug : bool;
  collect_log : bool;
  coverage : Coverage.t option;
  hb : Hb.t option;
  faults : Fault.spec;
  deadline : float option;
  clock : Clock.config option;
  scenario : Scenario.Obs.t option;
}

let default_config =
  {
    max_steps = 5_000;
    liveness_grace = None;
    deadlock_is_bug = true;
    collect_log = false;
    coverage = None;
    hb = None;
    faults = Fault.none;
    deadline = None;
    clock = None;
    scenario = None;
  }

(* A machine blocked on [receive] is a captured continuation expecting the
   dequeued event. The whole handled computation produces [unit]: both the
   effect branch (after stashing the continuation) and the return/exception
   branches just fall back to the scheduler. *)
type status =
  | Not_started of (ctx -> unit)
  | Waiting of (Event.t -> bool) option * (Event.t, unit) Effect.Deep.continuation
  | Running
  | Halted

and machine = {
  id : Id.t;
  inbox : Inbox.t;
  mutable status : status;
  mutable state_name : string;
      (* current declared state ("-" for plain machines); feeds the
         receiver-state component of coverage triples *)
  mutable enabled_cache : bool;
      (* last computed [machine_enabled], valid while not [dirty]. A
         waiting machine's enabledness is monotone between status changes
         (events are only ever added to its inbox until it runs), so the
         cache stays valid until a send or a status transition marks it
         dirty — which is what keeps filtered receives ([Waiting (Some
         pred, _)]) from re-running [Inbox.exists pred] every step. *)
  mutable dirty : bool;
  persistent : (unit -> ctx -> unit) option;
      (* restart hook: a machine created with one survives [crash] — the
         hook builds the body the machine re-runs from its durable state *)
}

(* A delayed in-flight message: delivered once [d_countdown] later
   deliveries have happened (or immediately if the system would otherwise
   be quiescent — a delayed message must not manufacture a deadlock). *)
and delayed = {
  d_target : int;
  d_sender : int;
  d_stamp : int;  (* hb message stamp, -1 when tracking is off *)
  d_event : Event.t;
  mutable d_countdown : int;
}

and t = {
  config : config;
  log_on : bool;  (* config.collect_log, hoisted for the hot path *)
  msg_faults_on : bool;
      (* Fault.message_faults config.faults, hoisted: with faults disabled
         [send_faulty] is one boolean load away from plain [send] and makes
         zero strategy draws (same zero-cost contract as logging) *)
  deadline_at : float;  (* config.deadline, hoisted; infinity when unset *)
  check_deadline : bool;
  strategy : Strategy.t;
  monitors : Monitor.t list;
  mutable machines : machine array;
  mutable n_machines : int;
  mutable enabled_buf : int array;
      (* scratch for the enabled prefix passed to the strategy; reused
         across steps, grown with the machine array *)
  mutable steps : int;
  trace : Trace.Builder.t;
  mutable log_rev : string list;
  mutable bug : Error.kind option;
  mutable bug_step : int;
  mutable faults_remaining : int;
  mutable faults_injected : int;
  mutable delayed : delayed list;  (* oldest first *)
  mutable timed_out : bool;
  clock : Clock.t option;
      (* the virtual clock, when [config.clock] enables simulated time;
         advanced only at quiescence, never by a strategy draw *)
  horizon : int;  (* config.clock.max_time; 0 when the clock is off *)
  mutable step_limit : int;
      (* the effective step bound: starts at [config.max_steps] and is
         extended exactly once when cut-off delayed messages are flushed at
         the bound, granting a bounded drain before the liveness verdict *)
  mutable draining : bool;
  mutable next_wakeup : int;  (* fresh tokens for [sleep] wakeup events *)
}

and ctx = { rt : t; me : machine }

type exec_result = {
  bug : Error.kind option;
  bug_step : int;
  steps : int;
  choices : Trace.t;
  log : string list;
  timed_out : bool;
  faults_injected : int;
  final_time : int;
}

exception Halt_exn

type _ Effect.t += Receive_eff : (Event.t -> bool) option -> Event.t Effect.t

(* Private wakeup event delivered by the clock to a sleeping machine; the
   token is the arming sequence number, so concurrent sleeps on one machine
   never cross wires. *)
type Event.t += Clock_wakeup of int

(* Zero-cost-when-disabled logging contract: [logf] itself always formats,
   so every call site is guarded by [rt.log_on] — with logging off the
   format arguments (Id.to_string, Event.to_string, ...) are never even
   evaluated, and the hot path pays one boolean load. With the clock on,
   every line is prefixed with the virtual timestamp, giving a timestamped
   global-order trace. *)
let logf (rt : t) fmt =
  Printf.ksprintf
    (fun s ->
      let s =
        match rt.clock with
        | Some ck -> Printf.sprintf "[t=%d] %s" (Clock.now ck) s
        | None -> s
      in
      rt.log_rev <- s :: rt.log_rev)
    fmt

let set_bug (rt : t) kind =
  if rt.bug = None then begin
    rt.bug <- Some kind;
    rt.bug_step <- rt.steps;
    if rt.log_on then
      logf rt "[%d] BUG: %s" rt.steps (Error.kind_to_string kind)
  end

let mark_dirty m = m.dirty <- true

let add_machine ?persistent rt ~name body =
  if rt.n_machines = Array.length rt.machines then begin
    let bigger =
      Array.make (max 8 (2 * rt.n_machines))
        { id = Id.make ~index:(-1) ~name:"<pad>";
          inbox = Inbox.create ();
          status = Halted;
          state_name = "-";
          enabled_cache = false;
          dirty = false;
          persistent = None }
    in
    Array.blit rt.machines 0 bigger 0 rt.n_machines;
    rt.machines <- bigger;
    rt.enabled_buf <- Array.make (Array.length bigger) 0
  end;
  let id = Id.make ~index:rt.n_machines ~name in
  let m =
    { id; inbox = Inbox.create (); status = Not_started body; state_name = "-";
      enabled_cache = true; dirty = false; persistent }
  in
  rt.machines.(rt.n_machines) <- m;
  rt.n_machines <- rt.n_machines + 1;
  (match rt.config.coverage with
   | Some cov -> Coverage.visit_state cov ~machine:name ~state:"-"
   | None -> ());
  (match rt.config.scenario with
   | Some o -> Scenario.Obs.on_create o ~index:(rt.n_machines - 1) ~name
   | None -> ());
  m

(* --- Machine API --- *)

let self ctx = ctx.me.id

let name_of ctx id =
  (* Same bounds pattern as [send]/[send_unless_pending]: a forged or stale
     id with a negative index must not reach the machine array. *)
  if Id.index id >= 0 && Id.index id < ctx.rt.n_machines then
    Id.name ctx.rt.machines.(Id.index id).id
  else "<unknown>"

let create ?persistent ctx ~name body =
  let m = add_machine ?persistent ctx.rt ~name body in
  (match ctx.rt.config.hb with
   | Some h ->
     Hb.on_create h ~parent:(Id.index ctx.me.id) ~child:(Id.index m.id)
   | None -> ());
  if ctx.rt.log_on then
    logf ctx.rt "[%d] %s creates %s" ctx.rt.steps (Id.to_string ctx.me.id)
      (Id.to_string m.id);
  m.id

let send ctx target e =
  let rt = ctx.rt in
  if Id.index target < 0 || Id.index target >= rt.n_machines then
    invalid_arg "Runtime.send: unknown target machine";
  let m = rt.machines.(Id.index target) in
  (match m.status with
   | Halted ->
     if rt.log_on then
       logf rt "[%d] %s -> %s: %s (dropped: target halted)" rt.steps
         (Id.to_string ctx.me.id) (Id.to_string target) (Event.to_string e)
   | Not_started _ | Waiting _ | Running ->
     (match rt.config.hb with
      | Some h ->
        Inbox.push ~sender:(Id.index ctx.me.id)
          ~stamp:(Hb.on_send h ~target:(Id.index target))
          m.inbox e
      | None -> Inbox.push ~sender:(Id.index ctx.me.id) m.inbox e);
     mark_dirty m;
     if rt.log_on then
       logf rt "[%d] %s -> %s: %s" rt.steps (Id.to_string ctx.me.id)
         (Id.to_string target) (Event.to_string e))

let send_unless_pending ?same ctx target e =
  let rt = ctx.rt in
  if Id.index target < 0 || Id.index target >= rt.n_machines then
    invalid_arg "Runtime.send_unless_pending: unknown target machine";
  let m = rt.machines.(Id.index target) in
  let duplicate =
    match same with
    | Some pred -> pred
    | None ->
      let name = Event.name e in
      fun e' -> Event.name e' = name
  in
  if Inbox.exists m.inbox duplicate then begin
    (* the coalesce decision read the target's inbox: conservatively
       ordered against it even though nothing was enqueued *)
    (match rt.config.hb with
     | Some h -> Hb.on_touch h ~target:(Id.index target)
     | None -> ());
    if rt.log_on then
      logf rt "[%d] %s -> %s: %s (coalesced)" rt.steps
        (Id.to_string ctx.me.id) (Id.to_string target) (Event.to_string e)
  end
  else send ctx target e

let receive _ctx = Effect.perform (Receive_eff None)

let receive_where _ctx pred = Effect.perform (Receive_eff (Some pred))

let nondet ctx =
  let rt = ctx.rt in
  let b = rt.strategy.next_bool ~step:rt.steps in
  Trace.Builder.add rt.trace (Trace.Bool b);
  (match rt.config.hb with Some h -> Hb.on_bool h b | None -> ());
  (match rt.config.coverage with
   | Some cov -> Coverage.branch_bool cov ~machine:(Id.name ctx.me.id) b
   | None -> ());
  if rt.log_on then
    logf rt "[%d] %s nondet -> %b" rt.steps (Id.to_string ctx.me.id) b;
  b

let nondet_int ctx bound =
  if bound <= 0 then invalid_arg "Runtime.nondet_int: bound must be positive";
  let rt = ctx.rt in
  let i = rt.strategy.next_int ~bound ~step:rt.steps in
  Trace.Builder.add rt.trace (Trace.Int i);
  (match rt.config.hb with Some h -> Hb.on_int h i | None -> ());
  (match rt.config.coverage with
   | Some cov -> Coverage.branch_int cov ~machine:(Id.name ctx.me.id) ~bound i
   | None -> ());
  if rt.log_on then
    logf rt "[%d] %s nondet_int(%d) -> %d" rt.steps (Id.to_string ctx.me.id)
      bound i;
  i

let choose ctx xs =
  match xs with
  | [] -> invalid_arg "Runtime.choose: empty list"
  | [ x ] -> x
  | _ ->
    (* One traversal to an array, O(1) indexing; same [nondet_int] draw
       (bound = length) as the old List.length/List.nth pair. *)
    let arr = Array.of_list xs in
    arr.(nondet_int ctx (Array.length arr))

let halt _ctx = raise Halt_exn

(* Draw-free, like all coverage recording: harnesses wire this into
   [History.create ~on_complete] so completed client operations land in
   the coverage [history] family. *)
let history_point ctx point =
  match ctx.rt.config.coverage with
  | Some cov -> Coverage.history cov ~point
  | None -> ()

(* --- Fault injection --- *)

let record_fault rt ~kind ~target =
  rt.faults_remaining <- rt.faults_remaining - 1;
  rt.faults_injected <- rt.faults_injected + 1;
  match rt.config.coverage with
  | Some cov -> Coverage.fault cov ~kind ~target:(Id.name target)
  | None -> ()

(* Interposition point for harness protocol messages. With message faults
   disabled this is a plain [send] after one boolean load — no strategy
   draw, so traces and golden digests are untouched. With them enabled it
   draws [nondet] (inject here?) and, when injecting, picks among the armed
   kinds / a delay distance with [nondet_int]; every decision is an
   ordinary recorded choice, so replay and shrinking see faults as just
   more schedule. *)
let send_faulty ctx target e =
  let rt = ctx.rt in
  if not rt.msg_faults_on || rt.faults_remaining <= 0 then send ctx target e
  else begin
    if Id.index target < 0 || Id.index target >= rt.n_machines then
      invalid_arg "Runtime.send_faulty: unknown target machine";
    let m = rt.machines.(Id.index target) in
    let halted = match m.status with Halted -> true | _ -> false in
    if halted then send ctx target e (* dropped anyway; no draw *)
    else begin
      (* Scenario marker: annotate the semantic purpose of the imminent
         fault draws (coin, kind, latency) so a scenario wrapper can force
         them on constrained links. Placed after every no-draw short
         circuit above, so a marker is never stale. Draw-free. *)
      (match rt.config.scenario with
       | Some o ->
         Scenario.Obs.pre_send o ~step:rt.steps
           ~time:(match rt.clock with Some ck -> Clock.now ck | None -> 0)
           ~sender:(Id.index ctx.me.id) ~target:(Id.index target)
           ~event:(Event.name e) ~budget:rt.faults_remaining
       | None -> ());
      if not (nondet ctx) then send ctx target e
      else begin
      let spec = rt.config.faults in
      let kinds =
        (if spec.drop then [ Fault.Drop ] else [])
        @ (if spec.duplicate then [ Fault.Duplicate ] else [])
        @ if spec.delay then [ Fault.Delay ] else []
      in
      let kind =
        match kinds with
        | [ k ] -> k
        | ks -> List.nth ks (nondet_int ctx (List.length ks))
      in
      match kind with
      | Fault.Drop ->
        (* the dropped message never lands, but the injection point read
           the target's liveness: keep fault schedules conservatively
           ordered under reduction *)
        (match rt.config.hb with
         | Some h -> Hb.on_touch h ~target:(Id.index target)
         | None -> ());
        record_fault rt ~kind:"drop" ~target:m.id;
        if rt.log_on then
          logf rt "[%d] FAULT drop %s -> %s: %s" rt.steps
            (Id.to_string ctx.me.id) (Id.to_string target) (Event.to_string e)
      | Fault.Duplicate ->
        record_fault rt ~kind:"dup" ~target:m.id;
        if rt.log_on then
          logf rt "[%d] FAULT dup %s -> %s: %s" rt.steps
            (Id.to_string ctx.me.id) (Id.to_string target) (Event.to_string e);
        send ctx target e;
        send ctx target e
      | Fault.Delay ->
        (* The latency's meaning depends on the time model. Clock off:
           [k] counts later deliveries (queue-position delay). Clock on:
           [k] is a latency duration — the message is armed on the clock
           and lands at [now + k] virtual time, so it races against timer
           deadlines rather than queue positions.

           Uniform keeps the historical single draw over [1..max_delay]
           (existing fault traces and golden digests depend on it).
           Bimodal first draws the link's mode, then a latency within the
           mode: fast links land in 1..2, slow ones in
           [2*max_delay .. 3*max_delay - 1] — a long-tail far past any
           uniform draw, so timeouts race both narrowly and hopelessly. *)
        let k =
          match spec.delay_dist with
          | Fault.Uniform -> 1 + nondet_int ctx spec.max_delay
          | Fault.Bimodal ->
            if nondet ctx then 1 + nondet_int ctx 2
            else (2 * spec.max_delay) + nondet_int ctx spec.max_delay
        in
        record_fault rt ~kind:"delay" ~target:m.id;
        if rt.log_on then
          logf rt "[%d] FAULT delay(%d) %s -> %s: %s" rt.steps k
            (Id.to_string ctx.me.id) (Id.to_string target) (Event.to_string e);
        let stamp =
          match rt.config.hb with
          | Some h -> Hb.on_send_delayed h ~target:(Id.index target)
          | None -> -1
        in
        (match rt.clock with
         | Some ck ->
           ignore
             (Clock.arm ck ~after:k ~target:(Id.index target)
                ~sender:(Id.index ctx.me.id) ~stamp e)
         | None ->
           rt.delayed <-
             rt.delayed
             @ [ { d_target = Id.index target; d_sender = Id.index ctx.me.id;
                   d_stamp = stamp; d_event = e; d_countdown = k } ])
      | Fault.Crash -> assert false (* not a message-fault kind *)
      end
    end
  end

(* Crash a persistent machine: its inbox and volatile state (the captured
   continuation) are discarded and it restarts as [Not_started] on the body
   its restart hook builds from durable state. The dropped continuation is
   never resumed nor discontinued — its fiber is simply abandoned to the
   GC, which is safe because crashed machines hold no external resources.
   Crashing an already-halted machine is a no-op (it "crashed" after
   finishing — nothing to lose), which keeps fault drivers from
   resurrecting machines that failed or completed gracefully. *)
let crash ctx target =
  let rt = ctx.rt in
  if Id.index target < 0 || Id.index target >= rt.n_machines then
    invalid_arg "Runtime.crash: unknown target machine";
  if Id.index target = Id.index ctx.me.id then
    invalid_arg "Runtime.crash: a machine cannot crash itself";
  let m = rt.machines.(Id.index target) in
  match m.status with
  | Halted -> ()
  | Running -> assert false (* only one machine runs at a time: the caller *)
  | Not_started _ | Waiting _ ->
    (match m.persistent with
     | None -> invalid_arg "Runtime.crash: target has no restart hook"
     | Some restart ->
       Inbox.clear m.inbox;
       rt.delayed <-
         List.filter (fun d -> d.d_target <> Id.index target) rt.delayed;
       (match rt.clock with
        | Some ck -> Clock.cancel_target ck (Id.index target)
        | None -> ());
       m.status <- Not_started (restart ());
       m.state_name <- "-";
       mark_dirty m;
       (match rt.config.hb with
        | Some h -> Hb.on_crash h ~target:(Id.index target)
        | None -> ());
       (match rt.config.scenario with
        | Some o ->
          Scenario.Obs.on_crash o ~step:rt.steps
            ~time:(match rt.clock with Some ck -> Clock.now ck | None -> 0)
            ~target:(Id.index target)
        | None -> ());
       record_fault rt ~kind:"crash" ~target:m.id;
       if rt.log_on then
         logf rt "[%d] FAULT crash %s (will restart)" rt.steps
           (Id.to_string m.id))

let fault_spec ctx = ctx.rt.config.faults
let fault_budget_left ctx = ctx.rt.faults_remaining

(* --- Scenario steering (draw-free observations for Fault_driver) --- *)

let scenario_crash_steering ctx =
  match ctx.rt.config.scenario with
  | Some o -> Scenario.Obs.crash_steering o
  | None -> false

let scenario_crash_slots ctx =
  match ctx.rt.config.scenario with
  | Some o -> Scenario.Obs.crash_slots o
  | None -> 0

let scenario_crash_tick ctx ~victims =
  match ctx.rt.config.scenario with
  | Some o -> Scenario.Obs.pre_crash_tick o ~step:ctx.rt.steps ~victims
  | None -> ()

(* --- Virtual time -------------------------------------------------------- *)

let clock_on ctx = ctx.rt.clock <> None

(* Draw-free observations: with the clock off, [now] degrades to the step
   count (a logical clock), so time-annotated harness logs stay meaningful
   in both modes. *)
let now ctx =
  match ctx.rt.clock with Some ck -> Clock.now ck | None -> ctx.rt.steps

(* Arm a timed delivery. Draw-free: the deadline is part of the model, not
   a scheduling choice — what the strategy controls is how the fired event
   interleaves with everything else once delivered. With the clock off the
   event is sent immediately (helpers stay usable, but gate new
   timeout/retry protocol paths on [clock_on] if clock-off executions must
   keep their exact pre-clock schedules). *)
let send_after ctx target e ~after =
  let rt = ctx.rt in
  match rt.clock with
  | None -> send ctx target e
  | Some ck ->
    if Id.index target < 0 || Id.index target >= rt.n_machines then
      invalid_arg "Runtime.send_after: unknown target machine";
    if after <= 0 then invalid_arg "Runtime.send_after: after must be positive";
    let stamp =
      match rt.config.hb with
      | Some h -> Hb.on_send_delayed h ~target:(Id.index target)
      | None -> -1
    in
    ignore
      (Clock.arm ck ~after ~target:(Id.index target)
         ~sender:(Id.index ctx.me.id) ~stamp e);
    if rt.log_on then
      logf rt "[%d] %s -> %s in %d: %s (armed)" rt.steps
        (Id.to_string ctx.me.id) (Id.to_string target) after (Event.to_string e)

(* Block this machine for [d] units of virtual time: arm a private wakeup
   on the clock and wait for exactly it. Other events arriving in the
   meantime stay queued (the filtered receive leaves them in order). While
   asleep the machine is idle, not deadlocked: its pending clock entry is
   what will make it progress. *)
let sleep ctx d =
  let rt = ctx.rt in
  match rt.clock with
  | None -> invalid_arg "Runtime.sleep: virtual time is off"
  | Some ck ->
    if d <= 0 then invalid_arg "Runtime.sleep: duration must be positive";
    let stamp =
      match rt.config.hb with
      | Some h -> Hb.on_send_delayed h ~target:(Id.index ctx.me.id)
      | None -> -1
    in
    let tok = rt.next_wakeup in
    rt.next_wakeup <- tok + 1;
    ignore
      (Clock.arm ck ~after:d ~target:(Id.index ctx.me.id)
         ~sender:(Id.index ctx.me.id) ~stamp (Clock_wakeup tok));
    if rt.log_on then
      logf rt "[%d] %s sleeps %d (until t=%d)" rt.steps
        (Id.to_string ctx.me.id) d (Clock.now ck + d);
    match
      Effect.perform
        (Receive_eff
           (Some (function Clock_wakeup t -> t = tok | _ -> false)))
    with
    | Clock_wakeup _ -> ()
    | _ -> assert false

let sleep_until ctx t =
  let n = now ctx in
  if t > n then sleep ctx (t - n)

(* Draw-free observation: restarted machines use it to tell a live peer
   from a torn-down one (e.g. a cluster whose manager already halted). *)
let alive ctx id =
  let rt = ctx.rt in
  let i = Id.index id in
  i >= 0 && i < rt.n_machines
  && (match rt.machines.(i).status with Halted -> false | _ -> true)

(* Machines that [crash] may currently strike: created with a restart hook
   and not halted. Creation order, so a strategy's [nondet_int] pick over
   this list is stable under replay. *)
let crashable_machines ctx =
  let rt = ctx.rt in
  let acc = ref [] in
  for i = rt.n_machines - 1 downto 0 do
    let m = rt.machines.(i) in
    let alive = match m.status with Halted -> false | _ -> true in
    if Option.is_some m.persistent && alive && i <> Id.index ctx.me.id then
      acc := m.id :: !acc
  done;
  !acc

let update_monitor_temperature (rt : t) mon =
  if Monitor.is_hot mon then begin
    if Monitor.hot_since mon = None then
      Monitor.set_hot_since mon (Some rt.steps)
  end
  else Monitor.set_hot_since mon None

let notify ctx monitor_name e =
  let rt = ctx.rt in
  match List.find_opt (fun m -> Monitor.name m = monitor_name) rt.monitors with
  | None -> ()
  | Some mon ->
    (match rt.config.hb with
     | Some h -> Hb.on_notify h ~monitor:monitor_name
     | None -> ());
    if rt.log_on then
      logf rt "[%d] %s notifies monitor %s: %s" rt.steps
        (Id.to_string ctx.me.id) monitor_name (Event.to_string e);
    Monitor.notify mon e;
    update_monitor_temperature rt mon;
    if rt.log_on then
      logf rt "[%d] monitor %s now in state %s%s" rt.steps monitor_name
        (Monitor.current mon)
        (if Monitor.is_hot mon then " (hot)" else "")

let assert_here ctx cond msg =
  if not cond then
    raise
      (Error.Bug
         (Error.Assertion_failure
            { machine = Id.to_string ctx.me.id; message = msg }))

let set_state_name ctx state =
  ctx.me.state_name <- state;
  (match ctx.rt.config.scenario with
   | Some o ->
     Scenario.Obs.on_state o ~step:ctx.rt.steps ~index:(Id.index ctx.me.id)
       ~state
   | None -> ());
  match ctx.rt.config.coverage with
  | Some cov -> Coverage.visit_state cov ~machine:(Id.name ctx.me.id) ~state
  | None -> ()

let log ctx s =
  if ctx.rt.log_on then
    logf ctx.rt "[%d] %s: %s" ctx.rt.steps (Id.to_string ctx.me.id) s

let step_count ctx = ctx.rt.steps

(* --- Scheduler --- *)

(* Hand a delayed message to its target's inbox (or drop it if the target
   halted in the meantime, matching [send]). *)
let deliver_delayed rt d =
  let m = rt.machines.(d.d_target) in
  match m.status with
  | Halted ->
    if rt.log_on then
      logf rt "[%d] delayed -> %s: %s (dropped: target halted)" rt.steps
        (Id.to_string m.id) (Event.to_string d.d_event)
  | Not_started _ | Waiting _ | Running ->
    (match rt.config.hb with
     | Some h when d.d_stamp >= 0 ->
       Hb.on_delayed_delivery h ~target:d.d_target ~msg:d.d_stamp
     | _ -> ());
    Inbox.push ~sender:d.d_sender ~stamp:d.d_stamp m.inbox d.d_event;
    mark_dirty m;
    if rt.log_on then
      logf rt "[%d] delayed -> %s: %s (delivered)" rt.steps (Id.to_string m.id)
        (Event.to_string d.d_event)

(* Called on every event delivery: age the delayed messages one delivery
   and release the due ones. *)
let tick_delayed rt =
  match rt.delayed with
  | [] -> ()
  | ds ->
    let due, still = List.partition (fun d -> d.d_countdown <= 1) ds in
    List.iter (fun d -> d.d_countdown <- d.d_countdown - 1) still;
    rt.delayed <- still;
    List.iter (deliver_delayed rt) due

(* When no machine is enabled but messages are still in flight, release
   them all: a delayed message models network latency, and latency cannot
   hold back a message forever once the system is otherwise quiescent —
   without this, every delay fault would read as a spurious deadlock.
   Release in remaining-countdown order (insertion order as the tie-break,
   via the stable sort): a message 1 delivery from landing must not arrive
   after one still 5 deliveries out just because it was delayed later. *)
let flush_delayed rt =
  let ds =
    List.stable_sort
      (fun a b -> compare a.d_countdown b.d_countdown)
      rt.delayed
  in
  rt.delayed <- [];
  List.iter (deliver_delayed rt) ds

(* Hand a fired clock entry to its target's inbox; mirrors
   [deliver_delayed], including the drop-on-halted rule. *)
let deliver_clock rt (e : Clock.entry) =
  let m = rt.machines.(e.Clock.target) in
  match m.status with
  | Halted ->
    if rt.log_on then
      logf rt "[%d] clock -> %s: %s (dropped: target halted)" rt.steps
        (Id.to_string m.id) (Event.to_string e.Clock.event)
  | Not_started _ | Waiting _ | Running ->
    (match rt.config.hb with
     | Some h when e.Clock.stamp >= 0 ->
       Hb.on_delayed_delivery h ~target:e.Clock.target ~msg:e.Clock.stamp
     | _ -> ());
    Inbox.push ~sender:e.Clock.sender ~stamp:e.Clock.stamp m.inbox
      e.Clock.event;
    mark_dirty m;
    if rt.log_on then
      logf rt "[%d] clock -> %s: %s (fired)" rt.steps (Id.to_string m.id)
        (Event.to_string e.Clock.event)

let machine_enabled m =
  match m.status with
  | Not_started _ -> true
  | Waiting (None, _) -> not (Inbox.is_empty m.inbox)
  | Waiting (Some pred, _) -> Inbox.exists m.inbox pred
  | Running | Halted -> false

(* Refresh dirty machines and compact the enabled creation indices
   (ascending) into [rt.enabled_buf]; returns how many are enabled.
   Allocation-free: the buffer is reused across steps. *)
let compute_enabled rt =
  let buf = rt.enabled_buf in
  let n = ref 0 in
  for i = 0 to rt.n_machines - 1 do
    let m = Array.unsafe_get rt.machines i in
    if m.dirty then begin
      m.enabled_cache <- machine_enabled m;
      m.dirty <- false
    end;
    if m.enabled_cache then begin
      Array.unsafe_set buf !n i;
      incr n
    end
  done;
  !n

(* Run [m] until it blocks, halts, or finishes. The deep handler persists
   across resumptions, so exceptions and returns are funnelled here no
   matter how many receives the machine has performed. *)
let start_machine rt m =
  let ctx = { rt; me = m } in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc =
        (fun () ->
          m.status <- Halted;
          mark_dirty m;
          Inbox.clear m.inbox;
          if rt.log_on then
            logf rt "[%d] %s finished" rt.steps (Id.to_string m.id));
      exnc =
        (fun e ->
          match e with
          | Halt_exn ->
            m.status <- Halted;
            mark_dirty m;
            Inbox.clear m.inbox;
            if rt.log_on then
              logf rt "[%d] %s halted" rt.steps (Id.to_string m.id)
          | Error.Bug kind ->
            m.status <- Halted;
            mark_dirty m;
            set_bug rt kind
          | e ->
            m.status <- Halted;
            mark_dirty m;
            set_bug rt
              (Error.Machine_exception
                 {
                   machine = Id.to_string m.id;
                   exn = Printexc.to_string e;
                 }));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Receive_eff pred ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                m.status <- Waiting (pred, k);
                mark_dirty m)
          | _ -> None);
    }
  in
  match m.status with
  | Not_started body ->
    m.status <- Running;
    mark_dirty m;
    (match rt.config.hb with
     | Some h -> Hb.begin_step h ~machine:(Id.index m.id) ~msg:(-1)
     | None -> ());
    Effect.Deep.match_with (fun () -> body ctx) () handler
  | Waiting _ | Running | Halted -> assert false

let resume_machine rt m =
  match m.status with
  | Waiting (pred, k) ->
    let matches = Option.value pred ~default:(fun _ -> true) in
    (match Inbox.pop_entry m.inbox matches with
     | None -> assert false (* scheduler only picks enabled machines *)
     | Some (e, sender, stamp) ->
       m.status <- Running;
       mark_dirty m;
       (match rt.config.hb with
        | Some h -> Hb.begin_step h ~machine:(Id.index m.id) ~msg:stamp
        | None -> ());
       (match rt.config.coverage with
        | Some cov ->
          let sender_name =
            if sender >= 0 && sender < rt.n_machines then
              Id.name rt.machines.(sender).id
            else "<external>"
          in
          Coverage.deliver cov ~sender:sender_name ~event:(Event.name e)
            ~receiver:(Id.name m.id) ~state:m.state_name
        | None -> ());
       (match rt.config.scenario with
        | Some o ->
          (* stamped with the deciding scheduling point (rt.steps was
             already incremented), so the checker sees window state
             exactly as the wrapper's pruning decision did *)
          Scenario.Obs.on_deliver o ~step:(rt.steps - 1)
            ~time:(match rt.clock with Some ck -> Clock.now ck | None -> 0)
            ~sender ~receiver:(Id.index m.id) ~event:(Event.name e)
        | None -> ());
       if rt.log_on then
         logf rt "[%d] %s dequeues %s" rt.steps (Id.to_string m.id)
           (Event.to_string e);
       tick_delayed rt;
       Effect.Deep.continue k e)
  | Not_started _ -> start_machine rt m
  | Running | Halted -> assert false

(* How an execution ran out of work, which decides how the end state is
   judged:
   - [Quiescent]: nothing can ever run again — deadlock detection applies
     and a hot liveness monitor is immediately a violation.
   - [Step_bound]: the step bound cut an "infinite" execution — no
     deadlock (machines may merely not have been scheduled), and liveness
     requires a grace period of continuous heat.
   - [Time_bound]: the virtual-time horizon cut it (the only remaining
     work was clock entries beyond [max_time]) — same bound-cut liveness
     caution, but graced against the steps actually taken, since a
     horizon-bound execution typically ends far below [max_steps]. *)
type ending = Quiescent | Step_bound | Time_bound

let check_end_of_execution (rt : t) ~ending =
  if rt.bug = None then begin
    (* A hot liveness monitor at the end of a bounded "infinite" execution,
       or when the system can make no further progress, is a liveness
       violation (§2.5). At the bound we additionally require the monitor to
       have been continuously hot for a grace period, so executions that the
       bound merely cut mid-progress do not count as violations. *)
    let at_bound = ending <> Quiescent in
    let grace =
      match ending with
      | Quiescent -> 0
      | Step_bound ->
        Option.value rt.config.liveness_grace
          ~default:(rt.config.max_steps / 2)
      | Time_bound ->
        Option.value rt.config.liveness_grace ~default:(rt.steps / 2)
    in
    let stuck mon =
      Monitor.is_hot mon
      &&
      match Monitor.hot_since mon with
      | Some since -> rt.steps - since >= grace
      | None -> false
    in
    match List.find_opt stuck rt.monitors with
    | Some mon ->
      set_bug rt
        (Error.Liveness_violation
           {
             monitor = Monitor.name mon;
             hot_since = Option.value (Monitor.hot_since mon) ~default:0;
             state = Monitor.current mon;
           })
    | None ->
      if (not at_bound) && rt.config.deadlock_is_bug then begin
        let blocked = ref [] in
        for i = rt.n_machines - 1 downto 0 do
          match rt.machines.(i).status with
          | Waiting _ -> blocked := Id.to_string rt.machines.(i).id :: !blocked
          | Not_started _ | Running | Halted -> ()
        done;
        if !blocked <> [] then set_bug rt (Error.Deadlock { blocked = !blocked })
      end
  end

(* Extra steps granted when delayed messages are flushed at the step
   bound: enough for the cut-off messages (and their immediate
   consequences) to be processed before the liveness verdict, while
   keeping the overrun bounded for harnesses that never quiesce. *)
let drain_budget (config : config) = max 64 (config.max_steps / 16)

let execute config strategy ~monitors ~name body =
  let rt =
    {
      config;
      log_on = config.collect_log;
      msg_faults_on = Fault.message_faults config.faults;
      deadline_at = Option.value config.deadline ~default:infinity;
      check_deadline = Option.is_some config.deadline;
      strategy;
      monitors;
      machines = [||];
      n_machines = 0;
      enabled_buf = [||];
      steps = 0;
      trace = Trace.Builder.create ();
      log_rev = [];
      bug = None;
      bug_step = 0;
      faults_remaining = config.faults.Fault.budget;
      faults_injected = 0;
      delayed = [];
      timed_out = false;
      clock = Option.map (fun (_ : Clock.config) -> Clock.create ()) config.clock;
      horizon =
        (match config.clock with Some c -> c.Clock.max_time | None -> 0);
      step_limit = config.max_steps;
      draining = false;
      next_wakeup = 0;
    }
  in
  (match config.scenario with
   | Some o ->
     (* order-clause enforcement peeks at what a machine would dequeue
        next; installed before the root machine so [on_create] hooks and
        peeks never race the machine array *)
     Scenario.Obs.set_peek o (fun i ->
         if i < 0 || i >= rt.n_machines then None
         else
           match rt.machines.(i).status with
           | Waiting (pred, _) ->
             let matches = Option.value pred ~default:(fun _ -> true) in
             Option.map Event.name
               (Inbox.peek_first rt.machines.(i).inbox matches)
           | _ -> None)
   | None -> ());
  ignore (add_machine rt ~name body);
  (match config.hb with
   | Some h -> Hb.on_create h ~parent:(-1) ~child:0
   | None -> ());
  let rec loop () =
    if rt.bug <> None then ()
    else if
      (* Deadline check every 64 steps (one land+compare per step when no
         deadline is set): a run over its time budget aborts the current
         execution cleanly instead of overshooting arbitrarily. *)
      rt.check_deadline
      && rt.steps land 63 = 0
      && Unix.gettimeofday () > rt.deadline_at
    then rt.timed_out <- true
    else if rt.steps >= rt.step_limit then begin
      if (not rt.draining) && rt.delayed <> [] then begin
        (* Messages still delayed in flight when the bound cuts the
           execution must not decide the liveness verdict: flush them and
           grant a bounded drain so their handlers run (a hot monitor one
           in-flight message away from cooling is not a violation). Fault
           injection stops — the execution is ending, and a fresh delay
           injected mid-drain would chase its own tail. *)
        rt.draining <- true;
        rt.faults_remaining <- 0;
        flush_delayed rt;
        rt.step_limit <- rt.steps + drain_budget config;
        loop ()
      end
      else check_end_of_execution rt ~ending:Step_bound
    end
    else begin
      let n = compute_enabled rt in
      let n =
        (* quiescent but messages still in flight: release the delays *)
        if n = 0 && rt.delayed <> [] then begin
          flush_delayed rt;
          compute_enabled rt
        end
        else n
      in
      if n = 0 then begin
        match rt.clock with
        | None -> check_end_of_execution rt ~ending:Quiescent
        | Some ck ->
          (* Quiescent with a clock: advance virtual time to the next
             armed entry and fire it — repeatedly, since an entry can land
             on a halted machine and enable nothing. Advancing draws
             nothing from the strategy, so timestamps are a deterministic
             function of the schedule. *)
          let rec advance () =
            match Clock.pop_due ck ~horizon:rt.horizon with
            | Some entry ->
              deliver_clock rt entry;
              if compute_enabled rt = 0 then advance () else `Work
            | None -> if Clock.is_empty ck then `Idle else `Out_of_time
          in
          (match advance () with
           | `Work -> loop ()
           | `Idle -> check_end_of_execution rt ~ending:Quiescent
           | `Out_of_time -> check_end_of_execution rt ~ending:Time_bound)
      end
      else begin
        (match
           (try Ok (strategy.next_schedule ~enabled:rt.enabled_buf ~n ~step:rt.steps)
            with Error.Bug kind -> Error kind)
         with
         | Error kind -> set_bug rt kind
         | Ok idx ->
           Trace.Builder.add rt.trace (Trace.Schedule idx);
           rt.steps <- rt.steps + 1;
           resume_machine rt rt.machines.(idx));
        loop ()
      end
    end
  in
  loop ();
  {
    bug = rt.bug;
    bug_step = (if rt.bug = None then rt.steps else rt.bug_step);
    steps = rt.steps;
    choices = Trace.Builder.finish rt.trace;
    log = List.rev rt.log_rev;
    timed_out = rt.timed_out;
    faults_injected = rt.faults_injected;
    final_time = (match rt.clock with Some ck -> Clock.now ck | None -> 0);
  }
