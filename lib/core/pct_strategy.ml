module Int_set = Set.Make (Int)

let make ~seed ~change_points ~max_steps ~iteration : Strategy.t =
  (* Domain-safety audit: the Prng, change-point set and priority table
     are all created fresh per execution and owned by the strategy value;
     no state escapes to other executions or worker domains. *)
  let rng =
    Prng.create ~seed:(Int64.add seed (Int64.of_int (iteration * 2 + 1)))
  in
  (* Steps at which the highest-priority enabled machine is demoted. *)
  let change_steps =
    let rec sample acc remaining =
      if remaining = 0 then acc
      else
        let s = Prng.int rng max_steps in
        if Int_set.mem s acc then sample acc remaining
        else sample (Int_set.add s acc) (remaining - 1)
    in
    sample Int_set.empty (min change_points max_steps)
  in
  let priorities : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let lowest = ref 0 in
  let priority_of m =
    match Hashtbl.find_opt priorities m with
    | Some p -> p
    | None ->
      (* Random initial priority, strictly above any demotion slot. *)
      let p = 1 + Prng.int rng 1_000_000 in
      Hashtbl.replace priorities m p;
      p
  in
  let best enabled n =
    let acc = ref None in
    for i = 0 to n - 1 do
      let m = enabled.(i) in
      match !acc with
      | None -> acc := Some m
      | Some b -> if priority_of m > priority_of b then acc := Some m
    done;
    !acc
  in
  let next_schedule ~enabled ~n ~step =
    match best enabled n with
    | None -> invalid_arg "Pct_strategy: empty enabled set"
    | Some b ->
      if Int_set.mem step change_steps then begin
        (* Demote the machine that would have run; rerun the choice. *)
        decr lowest;
        Hashtbl.replace priorities b !lowest;
        match best enabled n with
        | Some b' -> b'
        | None -> b
      end
      else b
  in
  {
    name = "pct";
    next_schedule;
    next_bool = (fun ~step:_ -> Prng.bool rng);
    next_int = (fun ~bound ~step:_ -> Prng.int rng bound);
  }

let factory ~seed ?(change_points = 2) ?(max_steps = 10_000) () =
  Strategy.stateless ~name:"pct" (fun ~iteration ->
      make ~seed ~change_points ~max_steps ~iteration)
