type choice =
  | Schedule of int
  | Bool of bool
  | Int of int

type t = choice array

let empty = [||]
let of_list = Array.of_list
let to_list = Array.to_list
let length = Array.length
let equal a b = a = b
let fold = Array.fold_left

let choice_to_string = function
  | Schedule i -> Printf.sprintf "s:%d" i
  | Bool b -> Printf.sprintf "b:%d" (if b then 1 else 0)
  | Int i -> Printf.sprintf "i:%d" i

let choice_of_string s =
  match String.split_on_char ':' s with
  | [ "s"; i ] -> Schedule (int_of_string i)
  | [ "b"; "0" ] -> Bool false
  | [ "b"; "1" ] -> Bool true
  | [ "i"; i ] -> Int (int_of_string i)
  | _ -> failwith (Printf.sprintf "Trace.of_string: malformed choice %S" s)

let to_string t =
  String.concat "\n" (List.map choice_to_string (to_list t))

let of_string s =
  (* Strict line-oriented parse: one choice per line, with at most one
     trailing newline (the [save] format). Blank lines (duplicate
     separators) and non-canonical spellings ("i:0x10", "s:01", trailing
     whitespace) are rejected rather than silently skipped — a corrupted
     trace must fail loudly, not replay a different schedule. *)
  let lines = String.split_on_char '\n' s in
  let lines =
    match List.rev lines with
    | "" :: rest -> List.rev rest
    | _ -> lines
  in
  let parse i line =
    if String.trim line = "" then
      failwith (Printf.sprintf "Trace.of_string: blank line %d" (i + 1))
    else begin
      let c = choice_of_string line in
      if choice_to_string c <> line then
        failwith
          (Printf.sprintf "Trace.of_string: trailing garbage on line %d: %S"
             (i + 1) line);
      c
    end
  in
  of_list (List.mapi parse lines)

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t); output_char oc '\n')

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))

module Builder = struct
  type trace = t

  (* Growable array rather than a reversed list: one boxed choice per
     [add] (amortized), no cons cell, and [finish] is a blit instead of a
     reverse — the builder sits on the every-step hot path. *)
  type t = { mutable buf : choice array; mutable len : int }

  let create () = { buf = [||]; len = 0 }

  let add t c =
    if t.len = Array.length t.buf then begin
      let bigger = Array.make (max 64 (2 * t.len)) c in
      Array.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    t.buf.(t.len) <- c;
    t.len <- t.len + 1

  let length t = t.len

  let finish t : trace = Array.sub t.buf 0 t.len
end
