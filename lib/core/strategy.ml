type t = {
  name : string;
  next_schedule : enabled:int array -> n:int -> step:int -> int;
  next_bool : step:int -> bool;
  next_int : bound:int -> step:int -> int;
}

type factory = {
  factory_name : string;
  parallel_safe : bool;
  fresh : iteration:int -> t option;
  feedback : (trace:Trace.t -> novelty:Coverage.novelty -> unit) option;
}

let stateless ?(parallel_safe = true) ?feedback ~name make =
  {
    factory_name = name;
    parallel_safe;
    fresh = (fun ~iteration -> Some (make ~iteration));
    feedback;
  }

(* Helpers over the enabled prefix [enabled.(0 .. n-1)]. *)

let enabled_mem enabled n m =
  let rec go i = i < n && (Array.unsafe_get enabled i = m || go (i + 1)) in
  go 0
