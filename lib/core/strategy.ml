type t = {
  name : string;
  next_schedule : enabled:int array -> step:int -> int;
  next_bool : step:int -> bool;
  next_int : bound:int -> step:int -> int;
}

type factory = {
  factory_name : string;
  parallel_safe : bool;
  fresh : iteration:int -> t option;
  feedback : (trace:Trace.t -> novel:bool -> unit) option;
}

let stateless ?(parallel_safe = true) ?feedback ~name make =
  {
    factory_name = name;
    parallel_safe;
    fresh = (fun ~iteration -> Some (make ~iteration));
    feedback;
  }
