(** Modeled timer (paper Fig. 9).

    All timing-related nondeterminism is delegated to the testing engine:
    the timer machine loops, nondeterministically deciding at each firing
    whether to deliver a tick to its target. The scheduler is thus free to
    interleave timeout events arbitrarily with regular system events.

    Two drive modes, chosen automatically from the execution's config:

    - {b clock off} (the legacy model): an infinite [Timer_repeat]
      self-send loop. The timer machine is permanently enabled, so a
      harness holding one never quiesces — every execution runs to the
      step bound and deadlock detection is unreachable.
    - {b clock on} ({!Runtime.config}[.clock]): each firing is a clock
      entry armed [period] units of virtual time ahead
      ({!Runtime.send_after}). Between firings the machine is blocked, so
      timer-bearing harnesses quiesce between ticks and the runtime's
      deadlock/liveness machinery stays live; executions end at the
      simulation horizon instead of burning [max_steps].

    In both modes whether a given firing actually delivers its tick is a
    recorded [nondet] choice, and delivery coalesces
    ({!Runtime.send_unless_pending}) so ticks cannot flood a slow
    target. *)

type Event.t +=
  | Timer_tick  (** default tick delivered to the target *)
  | Timer_repeat  (** internal self-message driving the clock-off loop *)
  | Timer_fire  (** internal timed self-delivery driving the clock-on loop *)
  | Timer_stop  (** stops and halts the timer machine *)

(** [create ctx ~target ()] spawns a timer machine that repeatedly,
    nondeterministically sends [tick ()] (default [Timer_tick]) to
    [target]. Returns the timer's id; send it [Timer_stop] to stop it.
    [period] (default [10]) is the virtual-time interval between firings —
    only meaningful with the clock on; ignored otherwise.
    @raise Invalid_argument if [period <= 0]. *)
val create :
  Runtime.ctx ->
  target:Id.t ->
  ?tick:(unit -> Event.t) ->
  ?period:int ->
  ?name:string ->
  unit ->
  Id.t
